// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Figure 4 — "Performance overhead introduced in real systems, computed on
// the benchmark-specific metric. Maximum overhead is 2.6% for JBoss and
// 7.17% for MySQL JDBC."
//
// Substitution (DESIGN.md §2): JBoss/RUBiS -> the broker serving a
// dispatch-heavy workload; MySQL/JDBCBench -> MiniDb serving a mixed
// read/write multi-client workload. Synthetic signatures are built, as in
// the paper, "as random combinations of real program stacks with which the
// target system performs synchronization", sampled from a warmup run.

#include <atomic>
#include <latch>
#include <random>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/activemq.h"
#include "src/apps/minidb.h"
#include "src/benchlib/workload.h"
#include "src/stack/annotation.h"

namespace dimmunix {
namespace {

// Adds `count` signatures made of random pairs of stacks the app actually
// synchronized with (§7.2.1).
void AddSampledSignatures(Runtime& rt, int count, unsigned seed) {
  const std::size_t population = rt.stacks().size();
  if (population < 2) {
    return;
  }
  std::mt19937 rng(seed);
  int added_total = 0;
  int attempts = 0;
  while (added_total < count && attempts < count * 20) {
    ++attempts;
    const StackId a = static_cast<StackId>(rng() % population);
    StackId b = static_cast<StackId>(rng() % population);
    if (a == b) {
      continue;
    }
    bool added = false;
    rt.history().Add(SignatureKind::kDeadlock, {a, b}, 4, &added);
    if (added) {
      ++added_total;
    }
  }
  rt.engine().NotifyHistoryChanged();
}

double RunMiniDbWorkload(Runtime& rt, int clients, Duration duration) {
  MiniDb db(rt);
  db.CreateTable("orders");
  std::atomic<bool> stop{false};
  std::atomic<long> queries{0};
  std::latch ready(clients + 1);
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      std::mt19937 rng(static_cast<unsigned>(c) * 13u + 1u);
      ready.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        // Mixed read/write mix, deadlock-free by construction — like
        // JDBCBench, the measurement workload itself must not deadlock (the
        // dangerous TRUNCATE path is exercised by examples/minidb_server and
        // the Table 1 bench, not here). Each query descends a randomized
        // application call chain first, mirroring the stack diversity of a
        // real client tier (without it, random signature pairs over a
        // handful of stacks are instantiated constantly — see the broker
        // workload's note).
        ScopedFrame q1(FrameFromName("client::txBegin_v" + std::to_string(rng() % 8)));
        ScopedFrame q2(FrameFromName("client::execute_v" + std::to_string(rng() % 8)));
        const unsigned op = rng() % 100;
        if (op < 50) {
          db.Insert("orders", static_cast<int>(rng() % 512));
        } else if (op < 90) {
          (void)db.Count("orders");
        } else {
          (void)db.IndexContains("orders", static_cast<int>(rng() % 512));
        }
        queries.fetch_add(1, std::memory_order_relaxed);
        // Client think time / network round-trip: the paper's realistic
        // settings do ~500 lock operations per second across the whole
        // server (§7.2.1), not a tight lock loop.
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });
  }
  ready.arrive_and_wait();
  const MonoTime start = Now();
  std::this_thread::sleep_for(duration);
  stop.store(true);
  for (auto& worker : workers) {
    worker.join();
  }
  const double secs = std::chrono::duration<double>(Now() - start).count();
  return static_cast<double>(queries.load()) / secs;
}

double RunBrokerWorkload(Runtime& rt, int producers, Duration duration) {
  BrokerSession session(rt);
  std::vector<BrokerConsumer*> consumers;
  for (int i = 0; i < 4; ++i) {
    consumers.push_back(session.CreateConsumer());
  }
  for (BrokerConsumer* consumer : consumers) {
    consumer->SetListener([](const std::string&) {});
  }
  std::atomic<bool> stop{false};
  std::atomic<long> messages{0};
  std::latch ready(producers + 1);
  std::vector<std::thread> workers;
  for (int p = 0; p < producers; ++p) {
    workers.emplace_back([&, p] {
      std::mt19937 rng(static_cast<unsigned>(p) * 29u + 3u);
      ready.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        // Dispatch-only during measurement: the listener-churn inversion is
        // the Table 1 bug, not the RUBiS-like steady-state workload. Each
        // request descends a randomized handler chain first — the onEvent ->
        // handleRequest -> doFilter call-flow diversity of a real app server
        // (paper Figure 2). Without it every dispatch shares one call stack
        // and synthesized signatures instantiate on every concurrent pair,
        // which no MLOC system exhibits.
        ScopedFrame h1(FrameFromName("handler::onEvent_v" + std::to_string(rng() % 8)));
        ScopedFrame h2(FrameFromName("handler::handleRequest_v" + std::to_string(rng() % 8)));
        ScopedFrame h3(FrameFromName("handler::doFilter_v" + std::to_string(rng() % 8)));
        session.DispatchOne("m");
        messages.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::microseconds(500));  // client think time
      }
    });
  }
  ready.arrive_and_wait();
  const MonoTime start = Now();
  std::this_thread::sleep_for(duration);
  stop.store(true);
  for (auto& worker : workers) {
    worker.join();
  }
  const double secs = std::chrono::duration<double>(Now() - start).count();
  return static_cast<double>(messages.load()) / secs;
}

using AppWorkload = double (*)(Runtime&, int, Duration);

void RunSeries(const char* name, AppWorkload workload, int clients, double paper_max) {
  const Duration duration = PointDuration();
  // Baseline: engine disabled (uninstrumented path).
  Config base_config;
  base_config.enabled = false;
  base_config.start_monitor = false;
  double baseline = 0;
  {
    Runtime rt(base_config);
    (void)workload(rt, clients, duration);  // warmup
    Runtime rt2(base_config);
    baseline = workload(rt2, clients, duration);
  }
  std::printf("%s baseline: %.0f ops/s (paper max overhead: %.2f%%)\n", name, baseline,
              paper_max);
  for (int signatures : {32, 64, 128}) {
    Config config;
    config.monitor_period = std::chrono::milliseconds(100);
    // Synthesized signatures over tiny apps instantiate far more often than
    // over MLOC systems; bound the cost of each (false-positive) avoidance
    // the way §5.7 prescribes.
    config.yield_timeout = std::chrono::milliseconds(5);
    config.auto_disable_aborts = 0;
    Runtime rt(config);
    // Warmup populates the stack table with real synchronization stacks...
    (void)workload(rt, clients, std::chrono::milliseconds(100));
    // ...from which the synthetic history is sampled.
    AddSampledSignatures(rt, signatures, static_cast<unsigned>(signatures));
    const double measured = workload(rt, clients, duration);
    std::printf("  H=%3d signatures: %8.0f ops/s  overhead %+5.2f%%  (yields: %llu)\n",
                signatures, measured, OverheadPercent(baseline, measured),
                static_cast<unsigned long long>(rt.engine().stats().yields.load()));
  }
}

}  // namespace
}  // namespace dimmunix

int main() {
  using namespace dimmunix;
  PrintHeader("Figure 4: end-to-end overhead in real systems vs. history size",
              "JBoss/RUBiS <= 2.6%, MySQL-JDBC/JDBCBench <= 7.17% at 32..128 signatures; "
              "overhead roughly flat in history size");
  RunSeries("minidb/jdbcbench-like", RunMiniDbWorkload, 8, 7.17);
  RunSeries("broker/rubis-like", RunBrokerWorkload, 8, 2.6);
  std::printf("shape check: overhead stays single-digit %% and flat as H grows.\n");
  return 0;
}
