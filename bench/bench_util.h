// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Shared helpers for the paper-reproduction benchmarks.

#ifndef DIMMUNIX_BENCH_BENCH_UTIL_H_
#define DIMMUNIX_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "src/common/clock.h"

namespace dimmunix {

// DIMMUNIX_BENCH_FULL=1 switches every bench to the paper's full parameter
// ranges; the default ranges are trimmed so the suite finishes in minutes on
// one core.
inline bool FullScale() {
  const char* v = std::getenv("DIMMUNIX_BENCH_FULL");
  return v != nullptr && std::strcmp(v, "1") == 0;
}

// Per-point measurement duration.
inline Duration PointDuration() {
  return FullScale() ? std::chrono::milliseconds(1500) : std::chrono::milliseconds(300);
}

inline std::string TempFile(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("dimmunix_bench_" + tag + "_" + std::to_string(::getpid())))
      .string();
}

inline double OverheadPercent(double baseline, double measured) {
  if (baseline <= 0) {
    return 0.0;
  }
  return (baseline - measured) / baseline * 100.0;
}

inline void PrintHeader(const char* title, const char* paper_reference) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title);
  std::printf("paper: %s\n", paper_reference);
  std::printf("mode: %s (set DIMMUNIX_BENCH_FULL=1 for paper-scale ranges)\n",
              FullScale() ? "FULL" : "trimmed");
  std::printf("==================================================================\n");
}

// Canonical output path for a machine-readable report: BENCH_<name>.json in
// the current working directory (CI runs from the repo root, so the
// trajectory files land at the top level). tools/benchjson accepts --out to
// override.
inline std::string BenchJsonPath(const std::string& bench) {
  return "BENCH_" + bench + ".json";
}

// Latency sampling rate shared by the JSON-emitting benchmarks: every 16th
// acquisition, cheap enough to leave on for every measured series.
inline constexpr int kBenchLatencySampleEvery = 16;

}  // namespace dimmunix

#endif  // DIMMUNIX_BENCH_BENCH_UTIL_H_
