// Copyright (c) dimmunix-cpp authors. MIT license.
//
// §7.4 — "Resource Utilization": memory overhead of the immunized workload
// (paper: 6-25 MB for the pthreads implementation across 2-1024 threads,
// 8-32 locks, 64 two-thread signatures), history footprint (paper: 200-1000
// bytes per signature), and CPU time of the monitor (paper: "virtually
// zero").
//
// Each configuration runs in a forked child; the child reports its peak RSS
// (getrusage) through a temp file, so measurements do not contaminate each
// other.

#include <sys/resource.h>

#include <fstream>

#include "bench/bench_util.h"
#include "src/benchlib/synth_history.h"
#include "src/benchlib/trial.h"
#include "src/benchlib/workload.h"

namespace dimmunix {
namespace {

long PeakRssKb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

long MeasureChildRss(bool dimmunix_mode, int threads, int locks) {
  const std::string rss_file = TempFile("rss");
  TrialResult result = RunTrial(
      [&] {
        WorkloadParams params;
        params.threads = threads;
        params.locks = locks;
        params.delta_in_us = 1;
        params.delta_out_us = 1000;
        params.duration = std::chrono::milliseconds(300);
        Runtime* rt = nullptr;
        if (dimmunix_mode) {
          Config config;
          config.default_match_depth = 4;
          rt = new Runtime(config);
          SynthHistoryParams sigs;
          sigs.signatures = 64;
          GenerateSyntheticHistory(&rt->history(), &rt->stacks(), sigs);
          rt->engine().NotifyHistoryChanged();
          params.mode = WorkloadMode::kDimmunix;
          params.runtime = rt;
        }
        (void)RunWorkload(params);
        std::ofstream out(rss_file, std::ios::trunc);
        out << PeakRssKb() << "\n";
        return 0;
      },
      std::chrono::seconds(30));
  long rss = 0;
  std::ifstream in(rss_file);
  in >> rss;
  std::remove(rss_file.c_str());
  return result.completed ? rss : -1;
}

}  // namespace
}  // namespace dimmunix

int main() {
  using namespace dimmunix;
  PrintHeader("Section 7.4: resource utilization",
              "pthreads memory overhead 6-25 MB across 2-1024 threads with 64 two-thread "
              "signatures; history ~200-1000 bytes/signature; CPU overhead ~0");

  std::printf("-- memory (peak RSS of the workload process) --\n");
  std::printf("%7s %6s | %10s %10s | %10s\n", "threads", "locks", "base KiB", "dimx KiB",
              "delta KiB");
  std::vector<std::pair<int, int>> configs = {{2, 8}, {16, 8}, {64, 32}};
  if (FullScale()) {
    configs.push_back({256, 32});
    configs.push_back({1024, 32});
  }
  for (auto [threads, locks] : configs) {
    const long base = MeasureChildRss(false, threads, locks);
    const long dimx = MeasureChildRss(true, threads, locks);
    std::printf("%7d %6d | %10ld %10ld | %10ld\n", threads, locks, base, dimx, dimx - base);
  }

  std::printf("-- history footprint on disk --\n");
  {
    StackTable table(10);
    History history(&table);
    SynthHistoryParams sigs;
    sigs.signatures = 64;
    sigs.stack_depth = 10;
    GenerateSyntheticHistory(&history, &table, sigs);
    const std::string path = TempFile("hist");
    history.Save(path);
    const auto bytes = std::filesystem::file_size(path);
    std::printf("64 signatures -> %ju bytes (%.0f bytes/signature; paper: 200-1000)\n",
                static_cast<uintmax_t>(bytes), static_cast<double>(bytes) / 64.0);
    std::remove(path.c_str());
  }

  std::printf("-- monitor CPU --\n");
  {
    Config config;
    config.monitor_period = std::chrono::milliseconds(100);
    Runtime rt(config);
    struct rusage before {};
    getrusage(RUSAGE_SELF, &before);
    std::this_thread::sleep_for(std::chrono::seconds(1));
    struct rusage after {};
    getrusage(RUSAGE_SELF, &after);
    const double cpu_ms =
        (after.ru_utime.tv_sec - before.ru_utime.tv_sec) * 1000.0 +
        (after.ru_utime.tv_usec - before.ru_utime.tv_usec) / 1000.0 +
        (after.ru_stime.tv_sec - before.ru_stime.tv_sec) * 1000.0 +
        (after.ru_stime.tv_usec - before.ru_stime.tv_usec) / 1000.0;
    std::printf("idle monitor over 1 s wall time: %.1f ms CPU (paper: virtually zero)\n",
                cpu_ms);
  }
  return 0;
}
