// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Ablations of Dimmunix design choices (not a paper figure; DESIGN.md §5):
//
//  A. Engine-guard mechanism: TAS spin lock vs. the paper's generalized
//     Peterson filter lock (§5.6). Peterson is O(n) per entry with only
//     loads/stores; the ablation quantifies what the "lock-free" guard
//     costs on modern hardware.
//  B. Stack source: deterministic annotations vs. native backtrace().
//     The paper's pthreads implementation pays backtrace() on every lock
//     request; annotations are this repo's cheaper, deterministic
//     substitute.
//  C. Monitor period τ: detection latency is bounded by τ (§3); the
//     ablation confirms throughput is insensitive to τ (all heavy work is
//     off the critical path).

#include "bench/bench_util.h"
#include "src/benchlib/synth_history.h"
#include "src/benchlib/workload.h"
#include "src/stack/annotation.h"
#include "src/stack/capture.h"

namespace dimmunix {
namespace {

WorkloadParams AblationParams(Runtime* rt) {
  WorkloadParams params;
  params.threads = 8;
  params.locks = 8;
  params.delta_in_us = 0;
  params.delta_out_us = 0;  // expose per-op engine cost
  params.duration = PointDuration();
  params.mode = WorkloadMode::kDimmunix;
  params.runtime = rt;
  return params;
}

double RunGuard(bool peterson) {
  Config config;
  config.use_peterson_guard = peterson;
  config.peterson_slots = 16;
  config.start_monitor = true;
  Runtime rt(config);
  SynthHistoryParams sigs;
  sigs.signatures = 64;
  GenerateSyntheticHistory(&rt.history(), &rt.stacks(), sigs);
  rt.engine().NotifyHistoryChanged();
  return RunWorkload(AblationParams(&rt)).ops_per_sec;
}

}  // namespace
}  // namespace dimmunix

int main() {
  using namespace dimmunix;
  PrintHeader("Ablations: guard mechanism, stack source, monitor period",
              "design-choice sensitivity; no direct paper counterpart");

  std::printf("-- A. engine guard: TAS spin vs generalized Peterson (8 threads) --\n");
  const double spin = RunGuard(false);
  const double peterson = RunGuard(true);
  std::printf("spin guard:     %12.0f ops/s\n", spin);
  std::printf("peterson guard: %12.0f ops/s (%.2fx of spin)\n", peterson,
              spin > 0 ? peterson / spin : 0.0);

  std::printf("-- B. stack capture cost per operation --\n");
  {
    const int iters = 20000;
    // Annotated capture.
    ScopedFrame f1(FrameFromName("abl_a"));
    ScopedFrame f2(FrameFromName("abl_b"));
    ScopedFrame f3(FrameFromName("abl_c"));
    MonoTime start = Now();
    std::size_t sink = 0;
    for (int i = 0; i < iters; ++i) {
      sink += CaptureStack().size();
    }
    const double annotated_ns =
        static_cast<double>(ToMicros(Now() - start)) * 1000.0 / iters;
    start = Now();
    for (int i = 0; i < iters; ++i) {
      sink += CaptureNativeStack(1).size();
    }
    const double native_ns = static_cast<double>(ToMicros(Now() - start)) * 1000.0 / iters;
    std::printf("annotated: %8.0f ns/capture | backtrace(): %8.0f ns/capture (%.1fx) "
                "[sink=%zu]\n",
                annotated_ns, native_ns, annotated_ns > 0 ? native_ns / annotated_ns : 0.0,
                sink);
  }

  std::printf("-- C. monitor period tau sensitivity (throughput should be flat) --\n");
  for (int tau_ms : {10, 50, 100, 500}) {
    Config config;
    config.monitor_period = std::chrono::milliseconds(tau_ms);
    Runtime rt(config);
    SynthHistoryParams sigs;
    sigs.signatures = 64;
    GenerateSyntheticHistory(&rt.history(), &rt.stacks(), sigs);
    rt.engine().NotifyHistoryChanged();
    const WorkloadResult result = RunWorkload(AblationParams(&rt));
    std::printf("tau=%4d ms: %12.0f ops/s\n", tau_ms, result.ops_per_sec);
  }
  return 0;
}
