// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Figure 5 — "Dimmunix microbenchmark lock throughput as a function of
// number of threads. Overhead is 0.6% to 4.5% for FreeBSD pthreads."
// Parameters: 64 sigs, siglen 2, 8 locks, δin=1µs, δout=1ms; 2..1024
// threads; second axis reports yields/second.

#include "bench/bench_util.h"
#include "src/benchlib/synth_history.h"
#include "src/benchlib/workload.h"

int main() {
  using namespace dimmunix;
  PrintHeader("Figure 5: lock throughput vs. number of threads",
              "pthreads overhead 0.6%..4.5% from 2 to 1024 threads; both curves rise "
              "then plateau; yields/second stays modest");
  std::printf("%7s | %12s %12s | %8s | %10s\n", "threads", "base ops/s", "dimx ops/s",
              "ovhd %", "yields/s");
  std::printf("------------------------------------------------------------------\n");

  std::vector<int> thread_counts = {2, 4, 8, 16, 32, 64, 128};
  if (FullScale()) {
    thread_counts.push_back(256);
    thread_counts.push_back(512);
    thread_counts.push_back(1024);
  }

  for (int threads : thread_counts) {
    WorkloadParams params;
    params.threads = threads;
    params.locks = 8;
    params.delta_in_us = 1;
    params.delta_out_us = 1000;
    params.duration = PointDuration();

    params.mode = WorkloadMode::kBaseline;
    const WorkloadResult baseline = RunWorkload(params);

    Config config;
    config.start_monitor = true;
    config.default_match_depth = 4;
    config.yield_timeout = std::chrono::milliseconds(50);
    Runtime rt(config);
    SynthHistoryParams sigs;
    sigs.signatures = 64;
    sigs.signature_size = 2;
    sigs.match_depth = 4;
    GenerateSyntheticHistory(&rt.history(), &rt.stacks(), sigs);
    rt.engine().NotifyHistoryChanged();

    params.mode = WorkloadMode::kDimmunix;
    params.runtime = &rt;
    const WorkloadResult dimx = RunWorkload(params);

    std::printf("%7d | %12.0f %12.0f | %+7.2f%% | %10.1f\n", threads, baseline.ops_per_sec,
                dimx.ops_per_sec, OverheadPercent(baseline.ops_per_sec, dimx.ops_per_sec),
                static_cast<double>(dimx.yields) / dimx.elapsed_sec);
  }
  std::printf("shape check: overhead small at every thread count; no collapse at scale.\n");
  return 0;
}
