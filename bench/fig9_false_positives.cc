// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Figure 9 — "Overhead induced by false positives" plus the gate-lock
// comparison (§7.3).
//
// Setup follows the paper: D=10 frame towers, 64 threads, 8 locks, 64
// signatures of size 2, δin=δout=1ms, calibration off. Matching depth k
// sweeps 1..10. An avoidance is a *true* positive when the signature cover
// still matches at depth D, a *false* positive otherwise (the engine counts
// these directly: stats.depth_true_yields / stats.depth_fp_yields).
//
// Reference results from the paper: gate locks needed 45 gate locks for the
// 64 signatures, incurred 70% overhead and 561,627 false positives;
// Dimmunix ranged from 61.2% overhead / 573,912 FPs at depth 1 down to
// 4.6% / ~0 at depth >= 8.

#include "bench/bench_util.h"
#include "src/baseline/gate_lock.h"
#include "src/benchlib/synth_history.h"
#include "src/benchlib/workload.h"

namespace dimmunix {
namespace {

// ~100 distinct lock sites + branching-2 towers reproduce the paper's two
// anchor facts simultaneously: the gate union-find yields tens of gates for
// 64 signatures (paper: 45), and with 64 threads over only 8 locks some
// signature is nearly always instantiable at depth 1 (hence the paper's
// ~5.7e5 FPs there). δout sleeps so lost parallelism shows in throughput on
// a single-core host (see WorkloadParams::sleep_outside).
constexpr int kSites = 100;
constexpr int kBranching = 2;

WorkloadParams Fig9Params() {
  WorkloadParams params;
  params.threads = FullScale() ? 64 : 32;
  params.locks = 8;
  params.delta_in_us = 1000;
  params.delta_out_us = 1000;
  params.stack_depth = 10;  // D
  params.branching = kBranching;
  params.site_choices = kSites;
  params.sleep_inside = true;
  params.sleep_outside = true;
  params.duration = PointDuration();
  return params;
}

}  // namespace
}  // namespace dimmunix

int main() {
  using namespace dimmunix;
  PrintHeader("Figure 9: overhead induced by false positives + gate-lock baseline",
              "FP overhead falls monotonically as matching depth 1 -> 10 (61.2% -> 4.6%); "
              "hardly any FPs at depth >= 8; gate locks: 45 gates, 70% overhead, 5.6e5 FPs "
              "(an order of magnitude worse than deep-matching Dimmunix)");

  WorkloadParams params = Fig9Params();
  const double baseline = RunWorkload(params).ops_per_sec;
  std::printf("baseline: %.0f ops/s\n", baseline);

  std::printf("%6s | %12s | %8s | %10s %10s\n", "depth", "dimx ops/s", "ovhd %", "FPs",
              "true pos");
  std::printf("------------------------------------------------------------------\n");
  double depth1_overhead = 0;
  double depth10_overhead = 0;
  std::uint64_t depth1_fps = 0;
  std::uint64_t depth10_fps = 0;
  for (int depth = 1; depth <= 10; ++depth) {
    Config config;
    config.default_match_depth = depth;
    config.max_match_depth = 10;
    config.yield_timeout = std::chrono::milliseconds(20);
    config.auto_disable_aborts = 0;  // keep avoiding even when aborted often
    Runtime rt(config);
    SynthHistoryParams sigs;
    sigs.signatures = 64;
    sigs.signature_size = 2;
    sigs.stack_depth = 10;
    sigs.match_depth = depth;
    sigs.branching = kBranching;
    sigs.site_choices = kSites;
    GenerateSyntheticHistory(&rt.history(), &rt.stacks(), sigs);
    rt.engine().NotifyHistoryChanged();

    params.mode = WorkloadMode::kDimmunix;
    params.runtime = &rt;
    const WorkloadResult result = RunWorkload(params);
    const double overhead = OverheadPercent(baseline, result.ops_per_sec);
    const std::uint64_t fps = rt.engine().stats().depth_fp_yields.load();
    const std::uint64_t tps = rt.engine().stats().depth_true_yields.load();
    if (depth == 1) {
      depth1_overhead = overhead;
      depth1_fps = fps;
    }
    if (depth == 10) {
      depth10_overhead = overhead;
      depth10_fps = fps;
    }
    std::printf("%6d | %12.0f | %+7.2f%% | %10llu %10llu\n", depth, result.ops_per_sec,
                overhead, static_cast<unsigned long long>(fps),
                static_cast<unsigned long long>(tps));
  }

  // Gate-lock baseline [17] over the same 64 signatures.
  StackTable gate_table(10);
  History gate_history(&gate_table);
  SynthHistoryParams sigs;
  sigs.signatures = 64;
  sigs.signature_size = 2;
  sigs.stack_depth = 10;
  sigs.branching = kBranching;
  sigs.site_choices = kSites;
  GenerateSyntheticHistory(&gate_history, &gate_table, sigs);
  GateLockAvoider gates(gate_history, gate_table);
  params.mode = WorkloadMode::kGateLocks;
  params.runtime = nullptr;
  params.gates = &gates;
  const WorkloadResult gate_result = RunWorkload(params);
  std::printf("------------------------------------------------------------------\n");
  std::printf("gate locks [17]: %zu gates (paper: 45) | %12.0f ops/s | %+7.2f%% | "
              "%llu contended serializations (the baseline's FPs)\n",
              gates.gate_count(), gate_result.ops_per_sec,
              OverheadPercent(baseline, gate_result.ops_per_sec),
              static_cast<unsigned long long>(gates.contended_acquisitions()));
  std::printf("shape check: FPs fall with depth (%llu @1 -> %llu @10); overhead falls "
              "(%.1f%% @1 -> %.1f%% @10); every lock op through a gated position is "
              "serialized regardless of danger.\n",
              static_cast<unsigned long long>(depth1_fps),
              static_cast<unsigned long long>(depth10_fps), depth1_overhead, depth10_overhead);
  return 0;
}
