// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Figure 8 — "Breakdown of overhead": selectively disable parts of Dimmunix
// (§7.2.2): base instrumentation only, + data-structure lookups/updates,
// then full avoidance. The paper finds the bulk of pthreads overhead in the
// instrumentation, and of Java overhead in the data-structure updates.
// 64 sigs, siglen 2, 8 locks, δin=1µs, δout=1ms, threads 8..1024.

#include "bench/bench_util.h"
#include "src/benchlib/synth_history.h"
#include "src/benchlib/workload.h"

namespace dimmunix {
namespace {

double RunStage(EngineStage stage, int threads, std::int64_t din, std::int64_t dout) {
  Config config;
  config.stage = stage;
  config.default_match_depth = 4;
  config.yield_timeout = std::chrono::milliseconds(50);
  Runtime rt(config);
  SynthHistoryParams sigs;
  sigs.signatures = 64;
  GenerateSyntheticHistory(&rt.history(), &rt.stacks(), sigs);
  rt.engine().NotifyHistoryChanged();

  WorkloadParams params;
  params.threads = threads;
  params.locks = 8;
  params.delta_in_us = din;
  params.delta_out_us = dout;
  params.duration = PointDuration();
  params.mode = WorkloadMode::kDimmunix;
  params.runtime = &rt;
  return RunWorkload(params).ops_per_sec;
}

void RunSeries(const char* label, std::int64_t din, std::int64_t dout,
               const std::vector<int>& thread_counts) {
  std::printf("-- %s (din=%lldus dout=%lldus) --\n", label, static_cast<long long>(din),
              static_cast<long long>(dout));
  std::printf("%7s | %10s | %8s %8s %8s\n", "threads", "base op/s", "instr%", "+data%",
              "+avoid%");
  for (int threads : thread_counts) {
    WorkloadParams base_params;
    base_params.threads = threads;
    base_params.locks = 8;
    base_params.delta_in_us = din;
    base_params.delta_out_us = dout;
    base_params.duration = PointDuration();
    const double baseline = RunWorkload(base_params).ops_per_sec;

    const double instr = RunStage(EngineStage::kInstrumentationOnly, threads, din, dout);
    const double data = RunStage(EngineStage::kDataStructures, threads, din, dout);
    const double full = RunStage(EngineStage::kFull, threads, din, dout);
    std::printf("%7d | %10.0f | %+7.2f%% %+7.2f%% %+7.2f%%\n", threads, baseline,
                OverheadPercent(baseline, instr), OverheadPercent(baseline, data),
                OverheadPercent(baseline, full));
  }
}

}  // namespace
}  // namespace dimmunix

int main() {
  using namespace dimmunix;
  PrintHeader("Figure 8: breakdown of Dimmunix overhead by stage",
              "stacked overhead: instrumentation < +data structures < +avoidance; "
              "total stays bounded (Java: <= ~25% at 1024 threads; pthreads lower)");
  std::vector<int> thread_counts = {8, 16, 32, 64};
  if (FullScale()) {
    thread_counts = {8, 16, 32, 64, 128, 256, 512, 1024};
  }
  // Paper parameters: with 1 ms between critical sections the engine cost is
  // absorbed (on a single core every stage is equally CPU-bound — expect ~0%).
  RunSeries("paper parameters", 1, 1000, thread_counts);
  // Stress series: with no inter-section delay the per-operation engine cost
  // dominates, exposing the stacked stage costs the paper's 8-core testbed
  // showed at its paper parameters.
  RunSeries("delta=0 stress (exposes per-op stage cost)", 0, 0, {2, 4, 8});
  std::printf("shape check: in the stress series each stage adds overhead on top of "
              "the previous one.\n");
  return 0;
}
