// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Figure 6 — "Variation of lock throughput as a function of δin and δout."
// 64 threads, 8 locks, 64 signatures, siglen 2. Overhead is highest when
// the program does nothing but lock/unlock (δin=δout=0) and is absorbed as
// the time between critical sections grows.

#include "bench/bench_util.h"
#include "src/benchlib/synth_history.h"
#include "src/benchlib/workload.h"

namespace dimmunix {
namespace {

WorkloadResult RunPoint(WorkloadMode mode, std::int64_t din, std::int64_t dout, Runtime* rt) {
  WorkloadParams params;
  params.threads = FullScale() ? 64 : 16;
  params.locks = 8;
  params.delta_in_us = din;
  params.delta_out_us = dout;
  params.duration = PointDuration();
  params.mode = mode;
  params.runtime = rt;
  return RunWorkload(params);
}

Runtime* MakeImmunizedRuntime() {
  Config config;
  config.default_match_depth = 4;
  config.yield_timeout = std::chrono::milliseconds(50);
  auto* rt = new Runtime(config);  // leaked deliberately: lives to process end
  SynthHistoryParams sigs;
  sigs.signatures = 64;
  GenerateSyntheticHistory(&rt->history(), &rt->stacks(), sigs);
  rt->engine().NotifyHistoryChanged();
  return rt;
}

}  // namespace
}  // namespace dimmunix

int main() {
  using namespace dimmunix;
  PrintHeader("Figure 6: lock throughput vs. delta_in and delta_out",
              "throughput falls with growing deltas for BOTH curves; the gap between "
              "baseline and Dimmunix shrinks as deltas grow (overhead absorbed); "
              "largest relative gap at delta=0");
  const std::vector<std::int64_t> deltas = {0, 1, 10, 100, 1000, 10000};

  std::printf("-- sweep delta_in (delta_out = 1000 us) --\n");
  std::printf("%9s | %14s %14s | %8s\n", "din[us]", "base ops/ms", "dimx ops/ms", "ovhd %");
  for (std::int64_t din : deltas) {
    const WorkloadResult baseline = RunPoint(WorkloadMode::kBaseline, din, 1000, nullptr);
    Runtime* rt = MakeImmunizedRuntime();
    const WorkloadResult dimx = RunPoint(WorkloadMode::kDimmunix, din, 1000, rt);
    std::printf("%9lld | %14.2f %14.2f | %+7.2f%%\n", static_cast<long long>(din),
                baseline.ops_per_sec / 1000.0, dimx.ops_per_sec / 1000.0,
                OverheadPercent(baseline.ops_per_sec, dimx.ops_per_sec));
  }

  std::printf("-- sweep delta_out (delta_in = 1 us) --\n");
  std::printf("%9s | %14s %14s | %8s\n", "dout[us]", "base ops/ms", "dimx ops/ms", "ovhd %");
  for (std::int64_t dout : deltas) {
    const WorkloadResult baseline = RunPoint(WorkloadMode::kBaseline, 1, dout, nullptr);
    Runtime* rt = MakeImmunizedRuntime();
    const WorkloadResult dimx = RunPoint(WorkloadMode::kDimmunix, 1, dout, rt);
    std::printf("%9lld | %14.2f %14.2f | %+7.2f%%\n", static_cast<long long>(dout),
                baseline.ops_per_sec / 1000.0, dimx.ops_per_sec / 1000.0,
                OverheadPercent(baseline.ops_per_sec, dimx.ops_per_sec));
  }
  std::printf("shape check: overhead largest at delta=0, absorbed at >= 1 ms.\n");
  return 0;
}
