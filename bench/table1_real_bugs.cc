// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Table 1 — "A few reported deadlock bugs avoided by Dimmunix in popular
// server and desktop applications."
//
// For every bug the paper's three-configuration protocol runs fork-isolated:
//   (1) unprotected                 -> must deadlock
//   (2) instrumented, yields ignored -> must still deadlock
//   (3) full Dimmunix with history   -> must complete; yields are counted
//
// Columns mirror the paper: yields per trial (min/avg/max) and the number
// of deadlock-pattern signatures captured. Trials default to 3 per bug
// (paper: 100); pass --trials=N or DIMMUNIX_BENCH_FULL=1 for more.

#include <cstring>
#include <fstream>

#include "bench/bench_util.h"
#include "src/apps/exploits.h"
#include "src/benchlib/trial.h"

namespace dimmunix {
namespace {

constexpr auto kTrialTimeout = std::chrono::seconds(4);

struct BugResult {
  bool baseline_deadlocked = true;
  bool ignored_deadlocked = true;
  bool immune_completed = true;
  long yields_min = 0;
  long yields_avg = 0;
  long yields_max = 0;
  std::size_t patterns = 0;
};

// Child exit code for "deadlocked, signature persisted" — the child exits as
// soon as the monitor has archived the cycle, so deadlocked trials do not
// have to run into the kill timeout.
constexpr int kDeadlockExit = 42;

// Child-side: run the exploit and report yields through a side file (exit
// codes are 8-bit; ActiveMQ-style yield counts are not).
int RunChild(const Exploit& exploit, const std::string& history, const std::string& stats_file,
             bool ignore_yields) {
  Config config;
  config.history_path = history;
  config.monitor_period = std::chrono::milliseconds(10);
  config.ignore_yield_decisions = ignore_yields;
  Runtime rt(config);
  rt.monitor().SetDeadlockHook([](const DeadlockCycle&, int) { _exit(kDeadlockExit); });
  exploit.run(rt);
  std::ofstream out(stats_file, std::ios::trunc);
  out << rt.engine().stats().yields.load() << "\n";
  return 0;
}

bool Deadlocked(const TrialResult& result) {
  return result.deadlocked || result.exit_code == kDeadlockExit;
}

BugResult RunProtocol(const Exploit& exploit, int trials) {
  BugResult result;
  const std::string history = TempFile("t1_" + exploit.id + ".hist");
  const std::string stats_file = TempFile("t1_" + exploit.id + ".stats");
  std::remove(history.c_str());

  // (1) Unprotected: no history file.
  TrialResult unprotected =
      RunTrial([&] { return RunChild(exploit, "", stats_file, false); }, kTrialTimeout);
  result.baseline_deadlocked = Deadlocked(unprotected);

  // Capture incarnations: a bug with n deadlock patterns needs n deadlocks
  // before full immunity develops (§5.4's "after exactly n occurrences"
  // argument) — restart until an incarnation completes.
  for (int attempt = 0; attempt < 6; ++attempt) {
    TrialResult capture =
        RunTrial([&] { return RunChild(exploit, history, stats_file, false); }, kTrialTimeout);
    if (capture.completed && capture.exit_code == 0) {
      break;
    }
  }

  // (2) Full instrumentation, yields ignored.
  TrialResult ignored =
      RunTrial([&] { return RunChild(exploit, history, stats_file, true); }, kTrialTimeout);
  result.ignored_deadlocked = Deadlocked(ignored);

  // (3) Immunized trials.
  long total = 0;
  result.yields_min = -1;
  for (int t = 0; t < trials; ++t) {
    std::remove(stats_file.c_str());
    TrialResult immune =
        RunTrial([&] { return RunChild(exploit, history, stats_file, false); }, kTrialTimeout);
    result.immune_completed =
        result.immune_completed && immune.completed && immune.exit_code == 0;
    long yields = 0;
    std::ifstream in(stats_file);
    in >> yields;
    total += yields;
    result.yields_min = result.yields_min < 0 ? yields : std::min(result.yields_min, yields);
    result.yields_max = std::max(result.yields_max, yields);
  }
  result.yields_avg = trials > 0 ? total / trials : 0;

  // Pattern count: signatures accumulated in the history.
  {
    StackTable table(16);
    History loaded(&table);
    loaded.Load(history);
    result.patterns = loaded.size();
  }
  std::remove(history.c_str());
  std::remove(stats_file.c_str());
  return result;
}

}  // namespace
}  // namespace dimmunix

int main(int argc, char** argv) {
  using namespace dimmunix;
  int trials = FullScale() ? 10 : 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trials=", 9) == 0) {
      trials = std::atoi(argv[i] + 9);
    }
  }
  PrintHeader("Table 1: real deadlock bugs avoided by Dimmunix",
              "all 10 bugs: unprotected & yields-ignored deadlock every trial; "
              "immunized completes (yields/trial min=avg=max=1 for most, 10 for "
              "HawkNL, ~1e5 for ActiveMQ #336)");
  std::printf("%-16s %-7s | %-5s %-6s %-6s | %4s %4s %4s | %8s | %s\n", "System", "Bug#",
              "base", "ignore", "immune", "min", "avg", "max", "pat/ref", "verdict");
  std::printf("------------------------------------------------------------------\n");
  bool all_ok = true;
  for (const Exploit& exploit : Table1Exploits()) {
    const BugResult r = RunProtocol(exploit, trials);
    const bool ok = r.baseline_deadlocked && r.ignored_deadlocked && r.immune_completed &&
                    r.yields_min >= 1;
    all_ok = all_ok && ok;
    std::printf("%-16s %-7s | %-5s %-6s %-6s | %4ld %4ld %4ld | %4zu/%-3d | %s\n",
                exploit.system.c_str(), exploit.bug.c_str(),
                r.baseline_deadlocked ? "dlk" : "OK?", r.ignored_deadlocked ? "dlk" : "OK?",
                r.immune_completed ? "done" : "DLK!", r.yields_min, r.yields_avg, r.yields_max,
                r.patterns, exploit.paper_patterns, ok ? "reproduced" : "MISMATCH");
  }
  std::printf("------------------------------------------------------------------\n");
  std::printf("Table 1 shape %s: deadlock without immunity, completion with it.\n",
              all_ok ? "REPRODUCED" : "NOT fully reproduced");
  return all_ok ? 0 : 1;
}
