// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Table 2 — "Java JDK 1.6 deadlocks avoided by Dimmunix": the synchronized
// Collection "invitations to deadlock" (§7.1.2). Protocol per scenario:
// unprotected deadlocks; after one capturing incarnation, the immunized
// run completes with no library modification.

#include <fstream>

#include "bench/bench_util.h"
#include "src/apps/exploits.h"
#include "src/benchlib/trial.h"

namespace dimmunix {
namespace {

constexpr auto kTrialTimeout = std::chrono::seconds(4);

constexpr int kDeadlockExit = 42;

int RunChild(const Exploit& exploit, const std::string& history, const std::string& stats_file) {
  Config config;
  config.history_path = history;
  config.monitor_period = std::chrono::milliseconds(10);
  Runtime rt(config);
  rt.monitor().SetDeadlockHook([](const DeadlockCycle&, int) { _exit(kDeadlockExit); });
  exploit.run(rt);
  std::ofstream out(stats_file, std::ios::trunc);
  out << rt.engine().stats().yields.load() << "\n";
  return 0;
}

}  // namespace
}  // namespace dimmunix

int main() {
  using namespace dimmunix;
  PrintHeader("Table 2: JDK 'invitations to deadlock' avoided by Dimmunix",
              "all 5 scenarios (PrintWriter, Vector, Hashtable, StringBuffer, "
              "BeanContextSupport) successfully avoided");
  std::printf("%-18s | %-10s %-9s %-7s | %s\n", "Class", "unprotected", "immunized", "yields",
              "verdict");
  std::printf("------------------------------------------------------------------\n");
  bool all_ok = true;
  for (const Exploit& exploit : Table2Exploits()) {
    const std::string history = TempFile("t2_" + exploit.id + ".hist");
    const std::string stats_file = TempFile("t2_" + exploit.id + ".stats");
    std::remove(history.c_str());

    TrialResult unprotected =
        RunTrial([&] { return RunChild(exploit, "", stats_file); }, kTrialTimeout);
    RunTrial([&] { return RunChild(exploit, history, stats_file); }, kTrialTimeout);  // capture
    std::remove(stats_file.c_str());
    TrialResult immune =
        RunTrial([&] { return RunChild(exploit, history, stats_file); }, kTrialTimeout);
    long yields = 0;
    {
      std::ifstream in(stats_file);
      in >> yields;
    }
    const bool unprotected_deadlocked =
        unprotected.deadlocked || unprotected.exit_code == kDeadlockExit;
    const bool immune_ok = immune.completed && immune.exit_code == 0;
    const bool ok = unprotected_deadlocked && immune_ok && yields >= 1;
    all_ok = all_ok && ok;
    std::printf("%-18s | %-10s %-9s %-7ld | %s\n", exploit.bug.c_str(),
                unprotected_deadlocked ? "deadlock" : "OK?", immune_ok ? "completes" : "DLK!",
                yields, ok ? "avoided" : "MISMATCH");
    std::remove(history.c_str());
    std::remove(stats_file.c_str());
  }
  std::printf("------------------------------------------------------------------\n");
  std::printf("Table 2 shape %s.\n", all_ok ? "REPRODUCED" : "NOT fully reproduced");
  return all_ok ? 0 : 1;
}
