// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Figure 7 — "Lock throughput as a function of history size and matching
// depth. The overhead introduced by history size and matching depth is
// relatively constant across this range, which means that searching through
// history is a negligible component of Dimmunix overhead."
// 64 threads, 8 locks, δin=1µs, δout=1ms; H = 2..256; depth 4 and 8.

#include "bench/bench_util.h"
#include "src/benchlib/synth_history.h"
#include "src/benchlib/workload.h"

namespace dimmunix {
namespace {

double RunPoint(int signatures, int depth) {
  Config config;
  config.default_match_depth = depth;
  config.yield_timeout = std::chrono::milliseconds(50);
  Runtime rt(config);
  SynthHistoryParams sigs;
  sigs.signatures = signatures;
  sigs.match_depth = depth;
  GenerateSyntheticHistory(&rt.history(), &rt.stacks(), sigs);
  rt.engine().NotifyHistoryChanged();

  WorkloadParams params;
  params.threads = FullScale() ? 64 : 16;
  params.locks = 8;
  params.delta_in_us = 1;
  params.delta_out_us = 1000;
  params.duration = PointDuration();
  params.mode = WorkloadMode::kDimmunix;
  params.runtime = &rt;
  return RunWorkload(params).ops_per_sec;
}

}  // namespace
}  // namespace dimmunix

int main() {
  using namespace dimmunix;
  PrintHeader("Figure 7: lock throughput vs. history size and matching depth",
              "curves for depth 4 and depth 8 both flat across H = 2..256 and close "
              "to the baseline (searching the history is negligible)");

  WorkloadParams base_params;
  base_params.threads = FullScale() ? 64 : 16;
  base_params.locks = 8;
  base_params.delta_in_us = 1;
  base_params.delta_out_us = 1000;
  base_params.duration = PointDuration();
  const double baseline = RunWorkload(base_params).ops_per_sec;
  std::printf("baseline: %.0f ops/s\n", baseline);

  std::printf("%6s | %14s %8s | %14s %8s\n", "H", "depth4 ops/s", "ovhd %", "depth8 ops/s",
              "ovhd %");
  std::printf("------------------------------------------------------------------\n");
  double min_tp = 1e18;
  double max_tp = 0;
  for (int signatures : {2, 4, 8, 16, 32, 64, 128, 256}) {
    const double d4 = RunPoint(signatures, 4);
    const double d8 = RunPoint(signatures, 8);
    min_tp = std::min({min_tp, d4, d8});
    max_tp = std::max({max_tp, d4, d8});
    std::printf("%6d | %14.0f %+7.2f%% | %14.0f %+7.2f%%\n", signatures, d4,
                OverheadPercent(baseline, d4), d8, OverheadPercent(baseline, d8));
  }
  std::printf("flatness: max/min throughput across all points = %.3f (paper: ~1.0x)\n",
              min_tp > 0 ? max_tp / min_tp : 0.0);
  return 0;
}
