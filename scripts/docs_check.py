#!/usr/bin/env python3
"""Docs lane: keep the documentation from silently rotting.

Two checks, both cheap enough to run on every push:

1. Link check — every relative markdown link in docs/*.md and README.md
   must point at a file that exists in the repo (anchors are stripped;
   external http(s)/mailto links are skipped: CI must not depend on the
   network).
2. Subsystem guard — every `src/<subsystem>/` directory must be named in
   docs/architecture.md's subsystem map. Adding a new subsystem without
   documenting where it sits in the architecture fails CI.

Exit status is the number of violations (0 = clean).
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

# [text](target) — good enough for the hand-written markdown in this repo;
# fenced code blocks are excluded below so code samples can't false-positive.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def strip_fenced_code(text: str) -> str:
    out, in_fence = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def check_links(md_path: pathlib.Path) -> list[str]:
    errors = []
    text = strip_fenced_code(md_path.read_text(encoding="utf-8"))
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:  # pure in-page anchor
            continue
        resolved = (md_path.parent / path_part).resolve()
        if not resolved.exists():
            errors.append(f"{md_path.relative_to(ROOT)}: broken link -> {target}")
    return errors


def check_subsystems() -> list[str]:
    arch = ROOT / "docs" / "architecture.md"
    if not arch.exists():
        return ["docs/architecture.md is missing"]
    text = arch.read_text(encoding="utf-8")
    errors = []
    for sub in sorted((ROOT / "src").iterdir()):
        if not sub.is_dir():
            continue
        needle = f"src/{sub.name}/"
        if needle not in text:
            errors.append(
                f"docs/architecture.md: subsystem {needle} is not documented "
                "(add it to the subsystem map)"
            )
    return errors


def main() -> int:
    errors = []
    for md in [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]:
        errors.extend(check_links(md))
    errors.extend(check_subsystems())
    for err in errors:
        print(f"docs-check: {err}", file=sys.stderr)
    if not errors:
        print("docs-check: all links resolve, all subsystems documented")
    return min(len(errors), 99)


if __name__ == "__main__":
    sys.exit(main())
