#!/usr/bin/env python3
"""Nightly perf-trend diff: fresh full-length BENCH_*.json vs committed.

Compares the benches the repo commits (fig4, fig5, fig8) and writes two
artifacts: a JSON diff and a one-line markdown summary.

What is *informational* vs what *fails the job*:

  * Absolute numbers (throughput, p50, p99) are reported per sample but
    never gated across hosts — the committed files were generated on one
    machine, the nightly runs on another, and an absolute nanosecond is
    not portable.
  * Normalized metrics are gated at the ±25% threshold because they are
    dimensionless and survive a hardware change:
      - overhead factor: baseline / instrumented throughput at the same
        thread count (fig5's headline number, paper §7.1.2);
      - tail ratio: p99 / p50 of instrumented samples, but only where
        threads <= 2*cpus of the *fresh* run (see bench_gate.py and
        docs/performance.md for why oversubscribed points are scheduler
        measurements, not engine measurements);
      - retry rate: match_fast_retries per lock op (the churn signal the
        match_churn health rule alerts on), diffed only when both the
        committed and the fresh sample carry it — older committed reports
        predate the field, and a missing side is not a regression.

Usage:
  perf_trend.py --committed DIR --fresh DIR --out-json F --out-md F
                [--threshold 0.25]
"""

import argparse
import json
import os
import sys

BENCHES = ("fig4", "fig5", "fig8")
# Instrumented labels paired against this baseline label for overhead factors.
BASELINE_LABEL = "baseline"
INSTRUMENTED_LABELS = {"dimmunix", "full", "full+persist", "instr"}


def load(dirpath, bench):
    path = os.path.join(dirpath, f"BENCH_{bench}.json")
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)


def by_key(report):
    """Index samples by (label, threads)."""
    return {(s["label"], s["threads"]): s for s in report.get("samples", [])}


def overhead_factors(report):
    """baseline/instrumented throughput per (label, threads) pair."""
    samples = by_key(report)
    factors = {}
    for (label, threads), s in samples.items():
        if label not in INSTRUMENTED_LABELS:
            continue
        base = samples.get((BASELINE_LABEL, threads))
        if base and s["throughput_ops_s"] > 0:
            factors[(label, threads)] = base["throughput_ops_s"] / s["throughput_ops_s"]
    return factors


def tail_ratios(report, cpus):
    ratios = {}
    for (label, threads), s in by_key(report).items():
        if label not in INSTRUMENTED_LABELS or s.get("p50_ns", 0) <= 0:
            continue
        if cpus > 0 and threads > 2 * cpus:
            continue
        ratios[(label, threads)] = s["p99_ns"] / s["p50_ns"]
    return ratios


def retry_rates(report):
    """retries_per_op of instrumented samples that measured it.

    Absolute-delta semantics downstream: rates are often ~0, where a
    percentage diff is meaningless.
    """
    rates = {}
    for (label, threads), s in by_key(report).items():
        if label not in INSTRUMENTED_LABELS:
            continue
        rate = s.get("retries_per_op")
        if rate is not None and rate >= 0:
            rates[(label, threads)] = rate
    return rates


def pct(old, new):
    return (new - old) / old * 100.0 if old else 0.0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--committed", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--out-json", required=True)
    parser.add_argument("--out-md", required=True)
    parser.add_argument("--threshold", type=float, default=0.25)
    args = parser.parse_args()

    diff = {"threshold_pct": args.threshold * 100.0, "benches": {}, "breaches": []}
    for bench in BENCHES:
        old = load(args.committed, bench)
        new = load(args.fresh, bench)
        if old is None or new is None:
            diff["benches"][bench] = {"error": "missing report"}
            diff["breaches"].append(f"{bench}: missing report")
            continue

        cpus = int(new.get("config", {}).get("cpus", 0) or 0)
        entry = {
            "absolute": {},   # informational only
            "normalized": {},  # gated at the threshold
        }
        # Absolute numbers, per shared sample — trend context for humans.
        old_samples, new_samples = by_key(old), by_key(new)
        for key in sorted(old_samples.keys() & new_samples.keys()):
            o, n = old_samples[key], new_samples[key]
            entry["absolute"][f"{key[0]}@{key[1]}t"] = {
                "throughput_ops_s": [o["throughput_ops_s"], n["throughput_ops_s"],
                                     round(pct(o["throughput_ops_s"], n["throughput_ops_s"]), 1)],
                "p50_ns": [o["p50_ns"], n["p50_ns"], round(pct(o["p50_ns"], n["p50_ns"]), 1)],
                "p99_ns": [o["p99_ns"], n["p99_ns"], round(pct(o["p99_ns"], n["p99_ns"]), 1)],
            }
        # Normalized metrics — the gated surface.
        for name, fn in (("overhead_factor", overhead_factors),
                         ("tail_ratio", lambda r: tail_ratios(r, cpus))):
            old_m, new_m = fn(old), fn(new)
            for key in sorted(old_m.keys() & new_m.keys()):
                delta = pct(old_m[key], new_m[key])
                label = f"{name}:{key[0]}@{key[1]}t"
                entry["normalized"][label] = {
                    "committed": round(old_m[key], 3),
                    "fresh": round(new_m[key], 3),
                    "delta_pct": round(delta, 1),
                }
                if delta > args.threshold * 100.0:
                    diff["breaches"].append(
                        f"{bench} {label}: {old_m[key]:.2f} -> {new_m[key]:.2f} "
                        f"(+{delta:.0f}%)"
                    )
        # Retry rate is gated on absolute growth (threshold retries/op), not
        # percentage: the healthy value is ~0, where a relative diff divides
        # by noise. Pairs missing on either side are skipped, so committed
        # reports predating the field produce no metric and no breach.
        old_r, new_r = retry_rates(old), retry_rates(new)
        for key in sorted(old_r.keys() & new_r.keys()):
            label = f"retry_rate:{key[0]}@{key[1]}t"
            delta_abs = new_r[key] - old_r[key]
            entry["normalized"][label] = {
                "committed": round(old_r[key], 4),
                "fresh": round(new_r[key], 4),
                "delta_abs": round(delta_abs, 4),
            }
            if delta_abs > args.threshold:
                diff["breaches"].append(
                    f"{bench} {label}: {old_r[key]:.3f} -> {new_r[key]:.3f} "
                    f"(+{delta_abs:.3f}/op)"
                )
        diff["benches"][bench] = entry

    with open(args.out_json, "w") as f:
        json.dump(diff, f, indent=2)

    if diff["breaches"]:
        line = (f"**perf-trend: REGRESSED** — {len(diff['breaches'])} metric(s) past "
                f"±{args.threshold * 100:.0f}%: " + "; ".join(diff["breaches"]))
    else:
        n = sum(len(b.get("normalized", {})) for b in diff["benches"].values()
                if isinstance(b, dict))
        line = (f"perf-trend: OK — {n} normalized metric(s) across "
                f"{len(BENCHES)} benches within ±{args.threshold * 100:.0f}%")
    with open(args.out_md, "w") as f:
        f.write(line + "\n")
    print(line)
    return 1 if diff["breaches"] else 0


if __name__ == "__main__":
    sys.exit(main())
