#!/usr/bin/env bash
# One-command verification gate: configure + build (warnings are errors) +
# full ctest run. Later PRs run this before merging.
#
#   scripts/check.sh              # fresh build in build-check/
#   BUILD_DIR=build scripts/check.sh   # reuse an existing tree

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-check}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "${BUILD_DIR}" -S . -DDIMMUNIX_WERROR=ON
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
