#!/usr/bin/env bash
# One-command verification gate: configure + build (warnings are errors) +
# full ctest run. CI and local use share this entry point; the environment
# selects the matrix cell:
#
#   scripts/check.sh                                # fresh build in build-check/
#   BUILD_DIR=build scripts/check.sh                # reuse an existing tree
#   CC=clang CXX=clang++ scripts/check.sh           # compiler matrix
#   CMAKE_BUILD_TYPE=Release scripts/check.sh       # build-type pass-through
#   DIMMUNIX_SANITIZE=thread scripts/check.sh       # sanitizer matrix
#   DIMMUNIX_SANITIZE=address,undefined scripts/check.sh
#   CTEST_REGEX='^(sync|core|rag)_' scripts/check.sh  # test subset
#
# Re-configuring an existing BUILD_DIR with the same flags is a no-op, so CI
# can cache the build directory across runs (keyed on compiler + CMakeLists).

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-check}"
JOBS="$(nproc 2>/dev/null || echo 4)"

CMAKE_ARGS=(-DDIMMUNIX_WERROR=ON)
if [[ -n "${CMAKE_BUILD_TYPE:-}" ]]; then
  CMAKE_ARGS+=("-DCMAKE_BUILD_TYPE=${CMAKE_BUILD_TYPE}")
fi
if [[ -n "${CC:-}" ]]; then
  CMAKE_ARGS+=("-DCMAKE_C_COMPILER=${CC}")
fi
if [[ -n "${CXX:-}" ]]; then
  CMAKE_ARGS+=("-DCMAKE_CXX_COMPILER=${CXX}")
fi
CMAKE_ARGS+=("-DDIMMUNIX_SANITIZE=${DIMMUNIX_SANITIZE:-}")
# Compiler cache when available (CI installs ccache; DIMMUNIX_CCACHE=0 opts
# out, e.g. to benchmark raw compile times).
if command -v ccache >/dev/null 2>&1 && [[ "${DIMMUNIX_CCACHE:-1}" != "0" ]]; then
  CMAKE_ARGS+=("-DCMAKE_C_COMPILER_LAUNCHER=ccache" "-DCMAKE_CXX_COMPILER_LAUNCHER=ccache")
fi

# Per-test wall-clock bound (also set per test in CMakeLists): a real
# deadlock regression fails its one test fast instead of hanging the job.
CTEST_ARGS=(--output-on-failure -j "${JOBS}" --timeout 180)
if [[ -n "${CTEST_REGEX:-}" ]]; then
  CTEST_ARGS+=(-R "${CTEST_REGEX}")
fi

cmake -B "${BUILD_DIR}" -S . "${CMAKE_ARGS[@]}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" "${CTEST_ARGS[@]}"
