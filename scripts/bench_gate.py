#!/usr/bin/env python3
"""Validate BENCH_*.json reports and enforce the bench-smoke gates.

Three layers, in order of what they catch:

  1. Structural: well-formed JSON, required keys, non-empty samples,
     nonzero throughput everywhere. Catches a dead or truncated bench.
  2. Absolute p99 budget (p99_budget_ns): the aggregate p99 of a *quick*
     report must stay under its committed budget. Quick-only because the
     budgets are calibrated against quick-mode runs on CI runners; full
     reports are covered by the scale-free layer below.
  3. Tail-ratio gate (tail_budget_ratio): every instrumented sample with
     threads <= 2*cpus must keep p99 <= budget * p50. Samples beyond
     2*cpus are reported but not gated: with more busy threads than the
     machine can run, a parked yielder's wake-to-run time is decided by
     the kernel run queue (milliseconds under EEVDF), so the sampled p99
     measures the host's scheduler, not the engine. See
     docs/performance.md ("Reading the tail numbers").

Usage:
  bench_gate.py [--tail-budget RATIO] [--quick-slack S] FILE...

  --tail-budget  Override every report's committed tail_budget_ratio.
                 CI uses this to prove the gate trips (a run that passes
                 at 10x must fail at 0.5x).
  --quick-slack  Multiplier applied to the tail budget for quick-mode
                 reports (default 2.5): 250 ms points on shared runners
                 are noisy; full-length runs get no slack.
"""

import argparse
import json
import sys

# Instrumented configurations whose tail the gate owns. Baseline and the
# partial fig8 stages are reported but never gated.
GATED_LABELS = {"dimmunix", "full", "full+persist"}

REQUIRED_KEYS = ("bench", "config", "samples", "p50_ns", "p99_ns", "throughput_ops_s")


def fail(msg):
    print(f"bench_gate: FAIL: {msg}")
    return 1


def check_report(path, tail_override, quick_slack):
    with open(path) as f:
        report = json.load(f)

    errors = 0
    for key in REQUIRED_KEYS:
        if key not in report:
            return fail(f"{path}: missing key {key!r}")
    if not report["samples"]:
        return fail(f"{path}: no samples")
    if report["throughput_ops_s"] <= 0:
        errors += fail(f"{path}: zero aggregate throughput")
    for sample in report["samples"]:
        if sample["throughput_ops_s"] <= 0:
            errors += fail(f"{path}: zero-throughput sample {sample['label']!r}")

    config = report.get("config", {})
    mode = config.get("mode", "full")
    cpus = int(config.get("cpus", 0) or 0)

    # Layer 2: absolute p99 budget, quick reports only (see module docstring).
    budget_ns = report.get("p99_budget_ns")
    if budget_ns and mode == "quick" and report["p99_ns"] > budget_ns:
        errors += fail(
            f"{path}: aggregate p99 {report['p99_ns']} ns exceeds budget {budget_ns} ns"
        )

    # Layer 3: per-sample tail ratio on samples the machine can actually run.
    ratio_budget = tail_override if tail_override is not None else report.get(
        "tail_budget_ratio", 0.0
    )
    if ratio_budget:
        effective = ratio_budget * (quick_slack if mode == "quick" else 1.0)
        gated_any = False
        for sample in report["samples"]:
            if sample["label"] not in GATED_LABELS:
                continue
            ratio = sample.get("p99_p50_ratio")
            if ratio is None:
                ratio = sample["p99_ns"] / sample["p50_ns"] if sample["p50_ns"] else 0.0
            in_scope = cpus > 0 and sample["threads"] <= 2 * cpus
            verdict = "SKIP (oversubscribed)" if not in_scope else (
                "ok" if ratio <= effective else "FAIL"
            )
            print(
                f"{path}: tail {sample['label']}@{sample['threads']}t "
                f"p50={sample['p50_ns']}ns p99={sample['p99_ns']}ns "
                f"ratio={ratio:.1f} budget={effective:.1f} [{verdict}]"
            )
            if in_scope:
                gated_any = True
                if ratio > effective:
                    errors += fail(
                        f"{path}: {sample['label']}@{sample['threads']}t tail ratio "
                        f"{ratio:.1f} exceeds budget {effective:.1f} "
                        f"(cpus={cpus}, mode={mode})"
                    )
        if not gated_any:
            # A gate that silently gates nothing is worse than no gate.
            errors += fail(
                f"{path}: tail budget declared but no in-scope sample "
                f"(cpus={cpus}) — bench thread counts and runner size diverged"
            )

    if errors == 0:
        print(
            f"{path}: OK (throughput {report['throughput_ops_s']:.0f} ops/s, "
            f"p50 {report['p50_ns']} ns, p99 {report['p99_ns']} ns, mode={mode})"
        )
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tail-budget", type=float, default=None)
    parser.add_argument("--quick-slack", type=float, default=2.5)
    parser.add_argument("files", nargs="+")
    args = parser.parse_args()

    errors = 0
    for path in args.files:
        errors += check_report(path, args.tail_budget, args.quick_slack)
    if errors:
        print(f"bench_gate: {errors} failure(s)")
        return 1
    print("bench_gate: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
