// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/common/peterson_lock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace dimmunix {
namespace {

TEST(PetersonLockTest, SingleThreadLockUnlock) {
  PetersonLock lock(4);
  lock.Lock(0);
  lock.Unlock(0);
  lock.Lock(3);
  lock.Unlock(3);
}

TEST(PetersonLockTest, TwoThreadMutualExclusion) {
  PetersonLock lock(2);
  long counter = 0;
  constexpr int kIters = 20000;
  std::thread t0([&] {
    for (int i = 0; i < kIters; ++i) {
      lock.Lock(0);
      ++counter;
      lock.Unlock(0);
    }
  });
  std::thread t1([&] {
    for (int i = 0; i < kIters; ++i) {
      lock.Lock(1);
      ++counter;
      lock.Unlock(1);
    }
  });
  t0.join();
  t1.join();
  EXPECT_EQ(counter, 2L * kIters);
}

// The filter lock must exclude among n > 2 threads too (§5.6 uses the
// n-thread generalization to guard the shared Allowed sets).
TEST(PetersonLockTest, NThreadMutualExclusionAndNoLostUpdates) {
  constexpr int kThreads = 6;
  constexpr int kIters = 3000;
  PetersonLock lock(kThreads);
  long counter = 0;
  std::atomic<int> inside{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        lock.Lock(static_cast<std::size_t>(t));
        if (inside.fetch_add(1) != 0) {
          violation.store(true);
        }
        ++counter;
        inside.fetch_sub(1);
        lock.Unlock(static_cast<std::size_t>(t));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

}  // namespace
}  // namespace dimmunix
