// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/common/mpsc_queue.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

namespace dimmunix {
namespace {

TEST(MpscQueueTest, EmptyOnConstruction) {
  MpscQueue<int> queue;
  EXPECT_TRUE(queue.Empty());
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(MpscQueueTest, FifoSingleProducer) {
  MpscQueue<int> queue;
  for (int i = 0; i < 100; ++i) {
    queue.Push(i);
  }
  for (int i = 0; i < 100; ++i) {
    auto value = queue.Pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, i);
  }
  EXPECT_TRUE(queue.Empty());
}

TEST(MpscQueueTest, MoveOnlyPayload) {
  MpscQueue<std::unique_ptr<int>> queue;
  queue.Push(std::make_unique<int>(7));
  auto out = queue.Pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 7);
}

// §5.2 requires per-producer ordering: events enqueued by the same thread
// must be drained in program order.
TEST(MpscQueueTest, PerProducerOrderPreservedUnderContention) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 10000;
  MpscQueue<std::pair<int, int>> queue;  // (producer, seq)
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue.Push({p, i});
      }
    });
  }
  std::map<int, int> next_expected;
  int drained = 0;
  // Consume concurrently with production.
  while (drained < kProducers * kPerProducer) {
    auto item = queue.Pop();
    if (!item.has_value()) {
      std::this_thread::yield();
      continue;
    }
    auto [producer, seq] = *item;
    EXPECT_EQ(seq, next_expected[producer]) << "producer " << producer;
    next_expected[producer] = seq + 1;
    ++drained;
  }
  for (auto& thread : producers) {
    thread.join();
  }
  EXPECT_TRUE(queue.Empty());
}

TEST(MpscQueueTest, DrainAfterProducersFinish) {
  MpscQueue<int> queue;
  std::vector<std::thread> producers;
  for (int p = 0; p < 8; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        queue.Push(i);
      }
    });
  }
  for (auto& thread : producers) {
    thread.join();
  }
  int count = 0;
  while (queue.Pop().has_value()) {
    ++count;
  }
  EXPECT_EQ(count, 8000);
}

}  // namespace
}  // namespace dimmunix
