// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/common/config.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace dimmunix {
namespace {

// Paper defaults (§5.2, §5.5, §5.7).
TEST(ConfigTest, PaperDefaults) {
  Config config;
  EXPECT_EQ(config.monitor_period.count(), 100);  // τ = 100 msec
  EXPECT_EQ(config.default_match_depth, 4);       // fixed depth 4
  EXPECT_EQ(config.calibration_na, 20);           // NA = 20
  EXPECT_EQ(config.calibration_nt, 10000);        // NT = 10^4
  EXPECT_EQ(config.yield_timeout.count(), 200);   // 200 msec bound
  EXPECT_EQ(config.immunity, ImmunityMode::kWeak);
  EXPECT_EQ(config.stage, EngineStage::kFull);
  EXPECT_FALSE(config.calibration_enabled);
}

TEST(ConfigTest, EnvironmentOverrides) {
  setenv("DIMMUNIX_HISTORY", "/tmp/test.hist", 1);
  setenv("DIMMUNIX_TAU_MS", "25", 1);
  setenv("DIMMUNIX_DEPTH", "6", 1);
  setenv("DIMMUNIX_IMMUNITY", "strong", 1);
  setenv("DIMMUNIX_CALIBRATION", "1", 1);
  setenv("DIMMUNIX_YIELD_TIMEOUT_MS", "75", 1);
  setenv("DIMMUNIX_IGNORE_YIELDS", "1", 1);
  setenv("DIMMUNIX_STAGE", "data", 1);
  setenv("DIMMUNIX_STRIPES", "16", 1);
  setenv("DIMMUNIX_CONTROL", "/tmp/test.sock", 1);

  Config config = Config::FromEnvironment();
  EXPECT_EQ(config.history_path, "/tmp/test.hist");
  EXPECT_EQ(config.control_socket_path, "/tmp/test.sock");
  EXPECT_EQ(config.monitor_period.count(), 25);
  EXPECT_EQ(config.default_match_depth, 6);
  EXPECT_EQ(config.immunity, ImmunityMode::kStrong);
  EXPECT_TRUE(config.calibration_enabled);
  EXPECT_EQ(config.yield_timeout.count(), 75);
  EXPECT_TRUE(config.ignore_yield_decisions);
  EXPECT_EQ(config.stage, EngineStage::kDataStructures);
  EXPECT_EQ(config.engine_stripes, 16);

  unsetenv("DIMMUNIX_HISTORY");
  unsetenv("DIMMUNIX_TAU_MS");
  unsetenv("DIMMUNIX_DEPTH");
  unsetenv("DIMMUNIX_IMMUNITY");
  unsetenv("DIMMUNIX_CALIBRATION");
  unsetenv("DIMMUNIX_YIELD_TIMEOUT_MS");
  unsetenv("DIMMUNIX_IGNORE_YIELDS");
  unsetenv("DIMMUNIX_STAGE");
  unsetenv("DIMMUNIX_STRIPES");
  unsetenv("DIMMUNIX_CONTROL");
}

TEST(ConfigTest, ControlSocketDefaultsToDisabled) {
  Config config = Config::FromEnvironment();
  EXPECT_TRUE(config.control_socket_path.empty());
}

TEST(ConfigTest, MalformedEnvironmentFallsBack) {
  setenv("DIMMUNIX_TAU_MS", "not-a-number", 1);
  setenv("DIMMUNIX_IMMUNITY", "bogus", 1);
  Config config = Config::FromEnvironment();
  EXPECT_EQ(config.monitor_period.count(), 100);
  EXPECT_EQ(config.immunity, ImmunityMode::kWeak);
  unsetenv("DIMMUNIX_TAU_MS");
  unsetenv("DIMMUNIX_IMMUNITY");
}

}  // namespace
}  // namespace dimmunix
