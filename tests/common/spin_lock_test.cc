// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/common/spin_lock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace dimmunix {
namespace {

TEST(SpinLockTest, LockUnlockSingleThread) {
  SpinLock lock;
  lock.Lock();
  lock.Unlock();
  lock.Lock();
  lock.Unlock();
}

TEST(SpinLockTest, TryLockFailsWhileHeld) {
  SpinLock lock;
  lock.Lock();
  EXPECT_FALSE(lock.TryLock());
  lock.Unlock();
  EXPECT_TRUE(lock.TryLock());
  lock.Unlock();
}

TEST(SpinLockTest, WorksWithLockGuard) {
  SpinLock lock;
  {
    std::lock_guard<SpinLock> guard(lock);
    EXPECT_FALSE(lock.TryLock());
  }
  EXPECT_TRUE(lock.TryLock());
  lock.Unlock();
}

TEST(SpinLockTest, MutualExclusionCounter) {
  SpinLock lock;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.Lock();
        ++counter;
        lock.Unlock();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

}  // namespace
}  // namespace dimmunix
