// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Integration tests for the control server: a live Runtime exposes its UNIX
// control socket, an avoidance is provoked, and the §5.7 pop-up-blocker flow
// (disable-last, then history showing disabled=1) is driven entirely over
// the socket — first with a raw client, then through the real `dimctl`
// binary, exactly as an operator would.

#include "src/control/server.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "src/control/protocol.h"
#include "src/persist/file.h"
#include "src/core/runtime.h"
#include "src/stack/annotation.h"

namespace dimmunix {
namespace control {
namespace {

#ifndef DIMCTL_PATH
#define DIMCTL_PATH ""
#endif

std::string TempSocket(const char* tag) {
  // Keep it short: sun_path allows ~107 bytes.
  return "/tmp/dimx_" + std::string(tag) + "_" + std::to_string(::getpid()) + ".sock";
}

Config TestConfig(const std::string& socket_path) {
  Config config;
  config.start_monitor = false;
  config.default_match_depth = 1;
  config.control_socket_path = socket_path;
  return config;
}

// Raw one-shot client: connect, send `line`, read the reply until EOF.
std::string Roundtrip(const std::string& socket_path, const std::string& line) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return "<socket failed>";
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "<connect failed>";
  }
  const std::string request = line + "\n";
  (void)!::write(fd, request.data(), request.size());
  ::shutdown(fd, SHUT_WR);
  std::string reply;
  char buf[1024];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

int SeedSignature(Runtime& rt, const char* fa, const char* fb) {
  bool added = false;
  const int index = rt.history().Add(
      SignatureKind::kDeadlock,
      {rt.stacks().Intern({FrameFromName(fa)}), rt.stacks().Intern({FrameFromName(fb)})}, 1,
      &added);
  rt.engine().NotifyHistoryChanged();
  return index;
}

void TriggerAvoidance(Runtime& rt) {
  const ThreadId main_tid = rt.RegisterCurrentThread();
  {
    ScopedFrame frame(FrameFromName("holdX"));
    ASSERT_EQ(rt.engine().Request(main_tid, 500), RequestDecision::kGo);
    rt.engine().Acquired(main_tid, 500);
  }
  std::thread other([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName("reqY"));
    EXPECT_EQ(rt.engine().RequestNonblocking(tid, 600), RequestDecision::kBusy);
  });
  other.join();
  rt.engine().Release(main_tid, 500);
}

// True when a fresh {holdX-held, reqY-requested} pattern is still refused.
bool PatternIsAvoided(Runtime& rt) {
  const ThreadId main_tid = rt.RegisterCurrentThread();
  bool avoided = false;
  {
    ScopedFrame frame(FrameFromName("holdX"));
    EXPECT_EQ(rt.engine().Request(main_tid, 500), RequestDecision::kGo);
    rt.engine().Acquired(main_tid, 500);
  }
  std::thread other([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName("reqY"));
    if (rt.engine().RequestNonblocking(tid, 600) == RequestDecision::kGo) {
      rt.engine().CancelRequest(tid, 600);
    } else {
      avoided = true;
    }
  });
  other.join();
  rt.engine().Release(main_tid, 500);
  return avoided;
}

TEST(ControlServerTest, StartsWithRuntimeAndAnswersStatus) {
  const std::string sock = TempSocket("status");
  Runtime rt(TestConfig(sock));
  ASSERT_NE(rt.control_server(), nullptr);
  EXPECT_TRUE(rt.control_server()->running());
  EXPECT_TRUE(std::filesystem::exists(sock));

  const std::string reply = Roundtrip(sock, "status");
  EXPECT_EQ(reply.rfind("ok\n", 0), 0u);
  EXPECT_NE(reply.find("pid=" + std::to_string(::getpid()) + "\n"), std::string::npos);
}

TEST(ControlServerTest, SocketFileIsRemovedOnShutdown) {
  const std::string sock = TempSocket("cleanup");
  {
    Runtime rt(TestConfig(sock));
    ASSERT_TRUE(std::filesystem::exists(sock));
  }
  EXPECT_FALSE(std::filesystem::exists(sock));
}

TEST(ControlServerTest, ReplacesStaleSocketFile) {
  const std::string sock = TempSocket("stale");
  {
    Runtime first(TestConfig(sock));  // leaves no file, but simulate a crash:
  }
  // Create a stale file where the socket will go.
  FILE* f = std::fopen(sock.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  Runtime rt(TestConfig(sock));
  ASSERT_NE(rt.control_server(), nullptr);
  EXPECT_EQ(Roundtrip(sock, "status").rfind("ok\n", 0), 0u);
}

TEST(ControlServerTest, UnusableSocketPathDegradesGracefully) {
  Config config;
  config.start_monitor = false;
  config.control_socket_path = "/nonexistent-dir/deep/ctl.sock";
  Runtime rt(config);
  EXPECT_EQ(rt.control_server(), nullptr);  // runtime still works, no control plane
  EXPECT_GE(rt.RegisterCurrentThread(), 0);
}

TEST(ControlServerTest, MalformedAndOversizedRequests) {
  const std::string sock = TempSocket("bad");
  Runtime rt(TestConfig(sock));
  EXPECT_EQ(Roundtrip(sock, "frobnicate").rfind("err unknown command", 0), 0u);
  EXPECT_EQ(Roundtrip(sock, "disable 999").rfind("err ", 0), 0u);
  const std::string huge(8192, 'x');
  EXPECT_EQ(Roundtrip(sock, huge).rfind("err ", 0), 0u);
}

TEST(ControlServerTest, ServesManySequentialConnections) {
  const std::string sock = TempSocket("seq");
  Runtime rt(TestConfig(sock));
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(Roundtrip(sock, "status").rfind("ok\n", 0), 0u);
  }
}

// The acceptance-criterion flow, raw-socket edition: provoke an avoidance,
// `disable-last` over the socket, `history` shows disabled=1 with the
// recorded avoidance count, and the signature stops being avoided.
TEST(ControlServerTest, DisableLastOverSocketStopsAvoidance) {
  const std::string sock = TempSocket("flow");
  const std::string history_path = "/tmp/dimx_flow_" + std::to_string(::getpid()) + ".hist";
  persist::RemoveHistoryFiles(history_path);
  Config config = TestConfig(sock);
  config.history_path = history_path;
  Runtime rt(config);
  SeedSignature(rt, "holdX", "reqY");
  TriggerAvoidance(rt);
  ASSERT_TRUE(PatternIsAvoided(rt));  // still live before the operator acts

  const std::string disable_reply = Roundtrip(sock, "disable-last");
  EXPECT_EQ(disable_reply.rfind("ok\n", 0), 0u);
  EXPECT_NE(disable_reply.find("index=0\n"), std::string::npos);

  const std::string history = Roundtrip(sock, "history");
  EXPECT_NE(history.find("disabled=1"), std::string::npos);
  // Two avoidances recorded: the provoked one plus the PatternIsAvoided probe.
  EXPECT_NE(history.find("avoidance=2"), std::string::npos);

  EXPECT_FALSE(PatternIsAvoided(rt));  // "the menu is usable again"
  EXPECT_TRUE(std::filesystem::exists(history_path));  // persisted for next run
  persist::RemoveHistoryFiles(history_path);
}

// Same flow, but driven by the real dimctl binary — no manual steps.
TEST(ControlServerTest, DimctlDisableLastAgainstLiveProcess) {
  ASSERT_TRUE(std::filesystem::exists(DIMCTL_PATH));
  const std::string sock = TempSocket("ctl");
  Runtime rt(TestConfig(sock));
  SeedSignature(rt, "holdX", "reqY");
  TriggerAvoidance(rt);

  const std::string base = std::string(DIMCTL_PATH) + " -s " + sock + " ";
  auto run = [&](const std::string& cmd, int* exit_code) {
    FILE* pipe = ::popen((base + cmd + " 2>&1").c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string output;
    char buf[512];
    while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      output += buf;
    }
    const int status = ::pclose(pipe);
    *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return output;
  };

  int code = -1;
  const std::string disable_out = run("disable-last", &code);
  EXPECT_EQ(code, 0) << disable_out;
  EXPECT_NE(disable_out.find("index=0"), std::string::npos) << disable_out;
  EXPECT_NE(disable_out.find("avoidance=1"), std::string::npos) << disable_out;

  const std::string history_out = run("history", &code);
  EXPECT_EQ(code, 0) << history_out;
  EXPECT_NE(history_out.find("disabled=1"), std::string::npos) << history_out;
  EXPECT_NE(history_out.find("avoidance=1"), std::string::npos) << history_out;

  EXPECT_FALSE(PatternIsAvoided(rt));

  // err replies surface as exit code 2.
  const std::string err_out = run("disable 999", &code);
  EXPECT_EQ(code, 2) << err_out;
}

}  // namespace
}  // namespace control
}  // namespace dimmunix
