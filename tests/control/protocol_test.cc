// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Unit tests for the control-plane protocol layer: request parsing (valid,
// malformed, unknown), bounds-checked execution against a Runtime, and the
// reply format contract (first line "ok"/"err ...", key=value payload).
// Everything here is socket-free by design.

#include "src/control/protocol.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <thread>

#include "src/core/runtime.h"
#include "src/fleet/daemon.h"
#include "src/obs/health.h"
#include "src/obs/incident.h"
#include "src/persist/file.h"
#include "src/stack/annotation.h"

namespace dimmunix {
namespace control {
namespace {

Config TestConfig() {
  Config config;
  config.start_monitor = false;
  config.default_match_depth = 1;
  return config;
}

int SeedSignature(Runtime& rt, const char* fa, const char* fb) {
  bool added = false;
  const int index = rt.history().Add(
      SignatureKind::kDeadlock,
      {rt.stacks().Intern({FrameFromName(fa)}), rt.stacks().Intern({FrameFromName(fb)})}, 1,
      &added);
  rt.engine().NotifyHistoryChanged();
  return index;
}

// One avoidance of the {holdX, reqY} signature (same idiom as runtime_test).
void TriggerAvoidance(Runtime& rt) {
  const ThreadId main_tid = rt.RegisterCurrentThread();
  {
    ScopedFrame frame(FrameFromName("holdX"));
    ASSERT_EQ(rt.engine().Request(main_tid, 500), RequestDecision::kGo);
    rt.engine().Acquired(main_tid, 500);
  }
  std::thread other([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName("reqY"));
    EXPECT_EQ(rt.engine().RequestNonblocking(tid, 600), RequestDecision::kBusy);
  });
  other.join();
  rt.engine().Release(main_tid, 500);
}

TEST(ProtocolParseTest, SimpleCommands) {
  std::string error;
  EXPECT_EQ(ParseRequest("status", &error)->kind, CommandKind::kStatus);
  EXPECT_EQ(ParseRequest("stats", &error)->kind, CommandKind::kStats);
  EXPECT_EQ(ParseRequest("history", &error)->kind, CommandKind::kHistory);
  EXPECT_EQ(ParseRequest("disable-last", &error)->kind, CommandKind::kDisableLast);
  EXPECT_EQ(ParseRequest("reload", &error)->kind, CommandKind::kReload);
  EXPECT_EQ(ParseRequest("rag", &error)->kind, CommandKind::kRag);
  EXPECT_EQ(ParseRequest("config", &error)->kind, CommandKind::kConfig);
  EXPECT_EQ(ParseRequest("help", &error)->kind, CommandKind::kHelp);
}

TEST(ProtocolParseTest, ArgumentsAndFraming) {
  std::string error;
  const auto disable = ParseRequest("disable 7", &error);
  ASSERT_TRUE(disable.has_value());
  EXPECT_EQ(disable->kind, CommandKind::kDisable);
  EXPECT_EQ(disable->index, 7);

  // Trailing CRLF and extra whitespace are tolerated.
  const auto enable = ParseRequest("  enable \t 3\r\n", &error);
  ASSERT_TRUE(enable.has_value());
  EXPECT_EQ(enable->kind, CommandKind::kEnable);
  EXPECT_EQ(enable->index, 3);

  const auto depth = ParseRequest("set-depth 2 5", &error);
  ASSERT_TRUE(depth.has_value());
  EXPECT_EQ(depth->index, 2);
  EXPECT_EQ(depth->depth, 5);
}

TEST(ProtocolParseTest, MalformedCommands) {
  std::string error;
  EXPECT_FALSE(ParseRequest("", &error).has_value());
  EXPECT_EQ(error, "empty command");
  EXPECT_FALSE(ParseRequest("   \r\n", &error).has_value());

  EXPECT_FALSE(ParseRequest("frobnicate", &error).has_value());
  EXPECT_NE(error.find("unknown command"), std::string::npos);

  EXPECT_FALSE(ParseRequest("disable", &error).has_value());         // missing arg
  EXPECT_FALSE(ParseRequest("disable 1 2", &error).has_value());     // extra arg
  EXPECT_FALSE(ParseRequest("disable x", &error).has_value());       // non-numeric
  EXPECT_FALSE(ParseRequest("disable -4", &error).has_value());      // negative
  EXPECT_FALSE(ParseRequest("disable 1x", &error).has_value());      // trailing junk
  EXPECT_FALSE(ParseRequest("set-depth 1", &error).has_value());     // missing depth
  EXPECT_FALSE(ParseRequest("set-depth 1 0", &error).has_value());   // depth < 1
  EXPECT_FALSE(ParseRequest("status extra", &error).has_value());    // no args allowed
}

TEST(ProtocolExecuteTest, StatusAndHistoryReflectRuntimeState) {
  Runtime rt(TestConfig());
  const int index = SeedSignature(rt, "holdX", "reqY");
  TriggerAvoidance(rt);

  const std::string status = HandleLine(rt, "status");
  EXPECT_EQ(status.rfind("ok\n", 0), 0u);
  EXPECT_NE(status.find("signatures=1\n"), std::string::npos);
  EXPECT_NE(status.find("last_avoided=" + std::to_string(index) + "\n"), std::string::npos);

  const std::string history = HandleLine(rt, "history");
  EXPECT_EQ(history.rfind("ok\n", 0), 0u);
  EXPECT_NE(history.find("sig 0 kind=deadlock"), std::string::npos);
  EXPECT_NE(history.find("disabled=0"), std::string::npos);
  EXPECT_NE(history.find("avoidance=1"), std::string::npos);
}

TEST(ProtocolExecuteTest, DisableEnableRoundTrip) {
  Runtime rt(TestConfig());
  const int index = SeedSignature(rt, "holdX", "reqY");

  EXPECT_EQ(HandleLine(rt, "disable " + std::to_string(index)).rfind("ok\n", 0), 0u);
  EXPECT_TRUE(rt.history().Get(index).disabled);
  EXPECT_NE(HandleLine(rt, "history").find("disabled=1"), std::string::npos);

  EXPECT_EQ(HandleLine(rt, "enable " + std::to_string(index)).rfind("ok\n", 0), 0u);
  EXPECT_FALSE(rt.history().Get(index).disabled);
}

TEST(ProtocolExecuteTest, SignatureIndicesAreBoundsChecked) {
  Runtime rt(TestConfig());
  SeedSignature(rt, "holdX", "reqY");
  // One signature: index 1 is out of range; so is any huge index.
  EXPECT_EQ(HandleLine(rt, "disable 1").rfind("err ", 0), 0u);
  EXPECT_EQ(HandleLine(rt, "enable 1000000").rfind("err ", 0), 0u);
  EXPECT_EQ(HandleLine(rt, "set-depth 1 2").rfind("err ", 0), 0u);
  // Depth beyond max_match_depth is rejected too.
  EXPECT_EQ(HandleLine(rt, "set-depth 0 99").rfind("err ", 0), 0u);
}

TEST(ProtocolExecuteTest, SetDepthChangesMatchingDepth) {
  Runtime rt(TestConfig());
  const int index = SeedSignature(rt, "holdX", "reqY");
  const std::string reply = HandleLine(rt, "set-depth " + std::to_string(index) + " 3");
  EXPECT_EQ(reply.rfind("ok\n", 0), 0u);
  EXPECT_EQ(rt.history().Get(index).match_depth, 3);
}

TEST(ProtocolExecuteTest, DisableLastRequiresAnAvoidance) {
  Runtime rt(TestConfig());
  SeedSignature(rt, "holdX", "reqY");
  EXPECT_EQ(HandleLine(rt, "disable-last").rfind("err ", 0), 0u);  // nothing avoided yet
  TriggerAvoidance(rt);
  const std::string reply = HandleLine(rt, "disable-last");
  EXPECT_EQ(reply.rfind("ok\n", 0), 0u);
  EXPECT_NE(reply.find("index=0\n"), std::string::npos);
  EXPECT_NE(reply.find("avoidance=1\n"), std::string::npos);
  EXPECT_TRUE(rt.history().Get(0).disabled);
}

TEST(ProtocolExecuteTest, ReloadWithoutHistoryPathIsAnError) {
  Runtime rt(TestConfig());
  EXPECT_EQ(HandleLine(rt, "reload").rfind("err ", 0), 0u);
}

TEST(ProtocolParseTest, HistorySubcommands) {
  std::string error;
  EXPECT_EQ(ParseRequest("history", &error)->kind, CommandKind::kHistory);
  EXPECT_EQ(ParseRequest("history save", &error)->kind, CommandKind::kHistorySave);
  const auto merge = ParseRequest("history merge /tmp/vendor.hist", &error);
  ASSERT_TRUE(merge.has_value());
  EXPECT_EQ(merge->kind, CommandKind::kHistoryMerge);
  EXPECT_EQ(merge->path, "/tmp/vendor.hist");
  const auto exp = ParseRequest("history export /tmp/out.hist", &error);
  ASSERT_TRUE(exp.has_value());
  EXPECT_EQ(exp->kind, CommandKind::kHistoryExport);
  EXPECT_EQ(exp->path, "/tmp/out.hist");

  EXPECT_FALSE(ParseRequest("history frobnicate", &error).has_value());
  EXPECT_FALSE(ParseRequest("history merge", &error).has_value());   // missing path
  EXPECT_FALSE(ParseRequest("history export", &error).has_value());  // missing path
  EXPECT_FALSE(ParseRequest("history save extra", &error).has_value());
}

TEST(ProtocolExecuteTest, HistorySaveRequiresAHistoryPath) {
  Runtime rt(TestConfig());
  EXPECT_EQ(HandleLine(rt, "history save").rfind("err ", 0), 0u);
}

TEST(ProtocolExecuteTest, HistoryExportAndMergeRoundTrip) {
  const std::string exported =
      (std::filesystem::temp_directory_path() /
       ("proto_export_" + std::to_string(::getpid()) + ".hist"))
          .string();
  persist::RemoveHistoryFiles(exported);
  {
    Runtime rt(TestConfig());
    SeedSignature(rt, "exportA", "exportB");
    const std::string reply = HandleLine(rt, "history export " + exported);
    EXPECT_EQ(reply.rfind("ok\n", 0), 0u);
    EXPECT_NE(reply.find("exported=1\n"), std::string::npos);
  }
  ASSERT_TRUE(std::filesystem::exists(exported));

  // A second runtime merges the exported signatures live.
  Runtime rt2(TestConfig());
  EXPECT_EQ(rt2.history().size(), 0u);
  const std::string merged = HandleLine(rt2, "history merge " + exported);
  EXPECT_EQ(merged.rfind("ok\n", 0), 0u);
  EXPECT_NE(merged.find("merged_new=1\n"), std::string::npos);
  EXPECT_EQ(rt2.history().size(), 1u);
  // Idempotent, and a missing source is a clean error.
  EXPECT_NE(HandleLine(rt2, "history merge " + exported).find("merged_new=0\n"),
            std::string::npos);
  EXPECT_EQ(HandleLine(rt2, "history merge /nonexistent/x.hist").rfind("err ", 0), 0u);
  persist::RemoveHistoryFiles(exported);
}

TEST(ProtocolExecuteTest, HistorySavePersistsDurably) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("proto_save_" + std::to_string(::getpid()) + ".hist"))
          .string();
  persist::RemoveHistoryFiles(path);
  Config config = TestConfig();
  config.history_path = path;
  Runtime rt(config);
  SeedSignature(rt, "saveA", "saveB");
  const std::string reply = HandleLine(rt, "history save");
  EXPECT_EQ(reply.rfind("ok\n", 0), 0u);
  EXPECT_NE(reply.find("signatures=1\n"), std::string::npos);
  // On return the signature is durable in the snapshot (no pending journal).
  StackTable table(10);
  History loaded(&table);
  ASSERT_TRUE(loaded.Load(path));
  EXPECT_EQ(loaded.size(), 1u);
  persist::RemoveHistoryFiles(path);
}

TEST(ProtocolExecuteTest, RagSnapshotShowsHeldLocks) {
  Runtime rt(TestConfig());
  const ThreadId tid = rt.RegisterCurrentThread();
  ScopedFrame frame(FrameFromName("holder"));
  ASSERT_EQ(rt.engine().Request(tid, 42), RequestDecision::kGo);
  rt.engine().Acquired(tid, 42);
  rt.monitor().RunOnce();  // drain events into the RAG

  const std::string reply = HandleLine(rt, "rag");
  EXPECT_EQ(reply.rfind("ok\n", 0), 0u);
  EXPECT_NE(reply.find("locks=1\n"), std::string::npos);
  EXPECT_NE(reply.find("held_locks=42"), std::string::npos);
  rt.engine().Release(tid, 42);
}

TEST(ProtocolExecuteTest, RagSnapshotTagsHoldAndRequestModes) {
  Runtime rt(TestConfig());
  const ThreadId main_tid = rt.RegisterCurrentThread();
  ScopedFrame frame(FrameFromName("mode_holder"));
  // Main holds 42 shared; a second thread holds 42 shared too (two shared
  // holders) and 43 exclusive, then waits for 44 in shared mode.
  ASSERT_EQ(rt.engine().Request(main_tid, 42, AcquireMode::kShared), RequestDecision::kGo);
  rt.engine().Acquired(main_tid, 42, AcquireMode::kShared);
  std::thread other([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame inner(FrameFromName("mode_other"));
    ASSERT_EQ(rt.engine().Request(tid, 42, AcquireMode::kShared), RequestDecision::kGo);
    rt.engine().Acquired(tid, 42, AcquireMode::kShared);
    ASSERT_EQ(rt.engine().Request(tid, 43), RequestDecision::kGo);
    rt.engine().Acquired(tid, 43);
    ASSERT_EQ(rt.engine().Request(tid, 44, AcquireMode::kShared), RequestDecision::kGo);
  });
  other.join();
  rt.monitor().RunOnce();

  const std::string reply = HandleLine(rt, "rag");
  EXPECT_EQ(reply.rfind("ok\n", 0), 0u);
  EXPECT_NE(reply.find("held_locks=42:S\n"), std::string::npos) << reply;   // main: shared hold
  EXPECT_NE(reply.find("42:S,43:X"), std::string::npos) << reply;           // other: both modes
  EXPECT_NE(reply.find("wait_lock=44 wait_mode=S"), std::string::npos) << reply;
}

TEST(ProtocolExecuteTest, MalformedLinesBecomeErrReplies) {
  Runtime rt(TestConfig());
  EXPECT_EQ(HandleLine(rt, "frobnicate").rfind("err unknown command", 0), 0u);
  EXPECT_EQ(HandleLine(rt, "").rfind("err ", 0), 0u);
}

TEST(ProtocolExecuteTest, HelpListsEveryCommand) {
  Runtime rt(TestConfig());
  const std::string reply = HandleLine(rt, "help");
  EXPECT_EQ(reply.rfind("ok\n", 0), 0u);
  for (const char* cmd : {"status", "stats", "history", "disable", "enable", "disable-last",
                          "reload", "set-depth", "rag", "config", "trace start", "trace stop",
                          "trace dump", "metrics", "histo", "alerts", "incidents",
                          "incidents show", "fleet status", "fleet peers", "fleet push",
                          "fleet pull", "fleet exec", "fleet alerts"}) {
    EXPECT_NE(reply.find(cmd), std::string::npos) << cmd;
  }
}

TEST(ProtocolParseTest, ObservabilityCommands) {
  std::string error;
  EXPECT_EQ(ParseRequest("trace start", &error)->kind, CommandKind::kTraceStart);
  EXPECT_EQ(ParseRequest("trace stop", &error)->kind, CommandKind::kTraceStop);
  EXPECT_EQ(ParseRequest("trace dump", &error)->kind, CommandKind::kTraceDump);
  EXPECT_EQ(ParseRequest("metrics", &error)->kind, CommandKind::kMetrics);
  const auto histo = ParseRequest("histo acquire_latency_ns", &error);
  ASSERT_TRUE(histo.has_value());
  EXPECT_EQ(histo->kind, CommandKind::kHisto);
  EXPECT_EQ(histo->path, "acquire_latency_ns");

  EXPECT_FALSE(ParseRequest("trace", &error).has_value());             // missing subcommand
  EXPECT_FALSE(ParseRequest("trace frobnicate", &error).has_value());  // unknown subcommand
  EXPECT_FALSE(ParseRequest("trace dump extra", &error).has_value());
  EXPECT_FALSE(ParseRequest("metrics extra", &error).has_value());
  EXPECT_FALSE(ParseRequest("histo", &error).has_value());  // missing name
}

TEST(ProtocolParseTest, AlertsAndIncidentCommands) {
  std::string error;
  EXPECT_EQ(ParseRequest("alerts", &error)->kind, CommandKind::kAlerts);

  const auto list = ParseRequest("incidents", &error);
  ASSERT_TRUE(list.has_value());
  EXPECT_EQ(list->kind, CommandKind::kIncidents);
  EXPECT_EQ(list->index, -1);  // -1 = list mode
  const auto show = ParseRequest("incidents show 2", &error);
  ASSERT_TRUE(show.has_value());
  EXPECT_EQ(show->kind, CommandKind::kIncidents);
  EXPECT_EQ(show->index, 2);

  EXPECT_FALSE(ParseRequest("alerts extra", &error).has_value());
  EXPECT_FALSE(ParseRequest("incidents show", &error).has_value());     // missing index
  EXPECT_FALSE(ParseRequest("incidents show -1", &error).has_value());  // negative
  EXPECT_FALSE(ParseRequest("incidents show x", &error).has_value());   // non-numeric
  EXPECT_FALSE(ParseRequest("incidents frobnicate", &error).has_value());
  EXPECT_NE(error.find("usage: incidents"), std::string::npos);
}

// Strict-enough Prometheus text-format check: every line is a HELP/TYPE
// comment or a `name[{labels}] <number>` sample, TYPE values are legal, and
// every sample belongs to a previously announced family.
void ExpectValidPrometheusText(const std::string& body) {
  std::istringstream in(body);
  std::string line;
  std::string last_family;
  int samples = 0;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) {
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string family;
      std::string type;
      fields >> family >> type;
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << "bad TYPE line: " << line;
      last_family = family;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment form: " << line;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << "sample without value: " << line;
    std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    for (const char c : value) {
      EXPECT_TRUE((c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e')
          << "non-numeric value in: " << line;
    }
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << "unterminated labels: " << line;
      name = name.substr(0, brace);
    }
    // Histogram families expose name_bucket/_sum/_count samples.
    EXPECT_EQ(name.rfind(last_family, 0), 0u)
        << "sample " << name << " outside announced family " << last_family;
    ++samples;
  }
  EXPECT_GT(samples, 0) << "no samples in exposition";
}

TEST(ProtocolExecuteTest, MetricsIsValidPrometheusExposition) {
  Runtime rt(TestConfig());
  SeedSignature(rt, "holdX", "reqY");
  TriggerAvoidance(rt);

  const std::string reply = HandleLine(rt, "metrics");
  ASSERT_EQ(reply.rfind("ok\n", 0), 0u);
  const std::string body = reply.substr(3);
  ExpectValidPrometheusText(body);
  // The avoidance above went through the engine: requests counted, and the
  // always-on acquire-latency histogram saw at least one sample.
  EXPECT_NE(body.find("dimmunix_lock_requests_total "), std::string::npos) << body;
  EXPECT_EQ(body.find("dimmunix_lock_requests_total 0\n"), std::string::npos)
      << "requests counter must be non-zero after an acquisition";
  EXPECT_NE(body.find("dimmunix_acquire_latency_ns_count "), std::string::npos) << body;
  EXPECT_EQ(body.find("dimmunix_acquire_latency_ns_count 0\n"), std::string::npos)
      << "acquire-latency histogram must have recorded the acquisition";
  EXPECT_NE(body.find("dimmunix_acquire_latency_ns_bucket{le=\"+Inf\"}"), std::string::npos);
  // The self-diagnosis plane is always exposed: one labeled gauge per health
  // rule (0 while nothing is wrong) plus the incident-log counters and the
  // per-thread flight-recorder ring families.
  EXPECT_NE(body.find("dimmunix_alert_active{rule=\"match_churn\"} 0\n"), std::string::npos)
      << body;
  EXPECT_NE(body.find("dimmunix_alert_fired_total{rule=\"resync_stale\"} 0\n"),
            std::string::npos);
  EXPECT_NE(body.find("dimmunix_incidents_captured_total 0\n"), std::string::npos);
  EXPECT_NE(body.find("# TYPE dimmunix_trace_ring_written_total counter\n"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE dimmunix_trace_ring_dropped_total counter\n"),
            std::string::npos);
}

TEST(ProtocolExecuteTest, AlertsFollowSyntheticChurnThroughTheirLifecycle) {
  Config config = TestConfig();
  config.health_enabled = false;  // the test owns every Tick deterministically
  Runtime rt(config);

  // All quiet: every rule listed, nothing raised, status carries the count.
  std::string reply = HandleLine(rt, "alerts");
  ASSERT_EQ(reply.rfind("ok\n", 0), 0u) << reply;
  EXPECT_NE(reply.find("alerts_raised=0\n"), std::string::npos);
  EXPECT_NE(reply.find("alerts_total=8\n"), std::string::npos);
  for (const char* rule : {"match_churn", "epoch_stall", "ipc_backlog", "ipc_flush_latency",
                           "arena_exhaustion", "ring_drops", "store_backlog", "resync_stale"}) {
    EXPECT_NE(reply.find(std::string("alert ") + rule + " state=inactive"), std::string::npos)
        << rule << " missing from: " << reply;
  }
  EXPECT_NE(HandleLine(rt, "status").find("alerts=0/8\n"), std::string::npos);

  // Synthetic retry churn: prime the deltas, then 80 retries / 100 requests.
  obs::HealthSample s;
  s.now_ns = 1'000'000'000ULL;
  s.requests = 1000;
  rt.health().Tick(s);
  s.now_ns = 2'000'000'000ULL;
  s.requests = 1100;
  s.match_fast_retries = 80;
  rt.health().Tick(s);

  reply = HandleLine(rt, "alerts");
  EXPECT_NE(reply.find("alerts_firing=1\n"), std::string::npos) << reply;
  EXPECT_NE(reply.find("alert match_churn state=firing"), std::string::npos);
  EXPECT_NE(HandleLine(rt, "status").find("alerts=1/8\n"), std::string::npos);
  std::string metrics = HandleLine(rt, "metrics");
  EXPECT_NE(metrics.find("dimmunix_alert_active{rule=\"match_churn\"} 1\n"), std::string::npos);

  // Confirm, then two quiet windows: active -> resolved (latched), and the
  // Prometheus gauge drops back to zero while fired_total keeps the event.
  s.now_ns = 3'000'000'000ULL;
  s.requests = 1200;
  s.match_fast_retries = 160;
  rt.health().Tick(s);
  EXPECT_NE(HandleLine(rt, "alerts").find("alert match_churn state=active"), std::string::npos);
  s.now_ns = 4'000'000'000ULL;
  s.requests = 1300;
  rt.health().Tick(s);
  s.now_ns = 5'000'000'000ULL;
  s.requests = 1400;
  rt.health().Tick(s);

  reply = HandleLine(rt, "alerts");
  EXPECT_NE(reply.find("alerts_raised=0\n"), std::string::npos) << reply;
  EXPECT_NE(reply.find("alerts_resolved=1\n"), std::string::npos);
  EXPECT_NE(reply.find("alert match_churn state=resolved"), std::string::npos);
  EXPECT_NE(HandleLine(rt, "status").find("alerts=0/8\n"), std::string::npos);
  metrics = HandleLine(rt, "metrics");
  EXPECT_NE(metrics.find("dimmunix_alert_active{rule=\"match_churn\"} 0\n"), std::string::npos);
  EXPECT_NE(metrics.find("dimmunix_alert_fired_total{rule=\"match_churn\"} 1\n"),
            std::string::npos);
  ExpectValidPrometheusText(metrics.substr(3));
}

TEST(ProtocolExecuteTest, IncidentsVerbListsAndShowsBundles) {
  char tmpl[] = "/tmp/dimmunix_proto_inc_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  Config config = TestConfig();
  config.incident_dir = dir;
  Runtime rt(config);

  obs::IncidentContext ctx;
  ctx.kind = "deadlock";
  ctx.signature_hash = 0x1234ULL;
  ctx.signature_stacks = {"protoA", "protoB"};
  ASSERT_FALSE(rt.incident_log().Capture(ctx).empty());

  const std::string list = HandleLine(rt, "incidents");
  ASSERT_EQ(list.rfind("ok\n", 0), 0u) << list;
  EXPECT_NE(list.find("count=1\n"), std::string::npos);
  EXPECT_NE(list.find("incident 0 incident-"), std::string::npos);

  const std::string shown = HandleLine(rt, "incidents show 0");
  ASSERT_EQ(shown.rfind("ok\n", 0), 0u) << shown;
  EXPECT_NE(shown.find("\"schema\":\"dimmunix-incident-v1\""), std::string::npos);
  EXPECT_NE(shown.find("\"hash\":\"0x1234\""), std::string::npos);
  EXPECT_NE(shown.find("protoA"), std::string::npos);

  EXPECT_EQ(HandleLine(rt, "incidents show 5").rfind("err incident index out of range", 0), 0u);
  std::filesystem::remove_all(dir);
}

TEST(ProtocolExecuteTest, IncidentsVerbErrorsWhenForensicsDisabled) {
  Runtime rt(TestConfig());  // no incident_dir
  const std::string reply = HandleLine(rt, "incidents");
  EXPECT_EQ(reply.rfind("err incident forensics disabled", 0), 0u) << reply;
  EXPECT_NE(reply.find("DIMMUNIX_INCIDENT_DIR"), std::string::npos);
}

TEST(ProtocolExecuteTest, TraceStartDumpStopRoundTrip) {
  Config config = TestConfig();
  config.trace_enabled = true;  // armed from the first lock op
  Runtime rt(config);
  SeedSignature(rt, "holdX", "reqY");
  TriggerAvoidance(rt);

  const std::string dump = HandleLine(rt, "trace dump");
  ASSERT_EQ(dump.rfind("ok\n", 0), 0u);
  const std::string json = dump.substr(3);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 80);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"acquire\""), std::string::npos)
      << "the acquisitions above must appear as spans";

  EXPECT_EQ(HandleLine(rt, "trace stop"), "ok\ntracing=0\n");
  EXPECT_FALSE(rt.recorder().tracing());
  EXPECT_NE(HandleLine(rt, "status").find("tracing=0\n"), std::string::npos);
  EXPECT_EQ(HandleLine(rt, "trace start"), "ok\ntracing=1\n");
  EXPECT_TRUE(rt.recorder().tracing());

  // The traced threads above own flight-recorder rings, so `metrics` breaks
  // the written/dropped totals out per thread.
  const std::string metrics = HandleLine(rt, "metrics");
  EXPECT_NE(metrics.find("dimmunix_trace_ring_written_total{thread=\""), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("dimmunix_trace_ring_dropped_total{thread=\""), std::string::npos);
  ExpectValidPrometheusText(metrics.substr(3));
}

TEST(ProtocolParseTest, FleetCommands) {
  std::string error;
  EXPECT_EQ(ParseRequest("fleet status", &error)->kind, CommandKind::kFleetStatus);
  EXPECT_EQ(ParseRequest("fleet peers", &error)->kind, CommandKind::kFleetPeers);

  const auto push = ParseRequest("fleet push 10.0.0.8:7077", &error);
  ASSERT_TRUE(push.has_value());
  EXPECT_EQ(push->kind, CommandKind::kFleetPush);
  EXPECT_EQ(push->path, "10.0.0.8:7077");

  const auto pull = ParseRequest("fleet pull hub:7077", &error);
  ASSERT_TRUE(pull.has_value());
  EXPECT_EQ(pull->kind, CommandKind::kFleetPull);
  EXPECT_EQ(pull->path, "hub:7077");

  // exec keeps the fanned-out command verbatim (normalized whitespace).
  const auto exec = ParseRequest("fleet exec disable-last", &error);
  ASSERT_TRUE(exec.has_value());
  EXPECT_EQ(exec->kind, CommandKind::kFleetExec);
  EXPECT_EQ(exec->rest, "disable-last");
  const auto exec2 = ParseRequest("fleet exec  history   merge /tmp/v.hist", &error);
  ASSERT_TRUE(exec2.has_value());
  EXPECT_EQ(exec2->rest, "history merge /tmp/v.hist");

  EXPECT_EQ(ParseRequest("fleet alerts", &error)->kind, CommandKind::kFleetAlerts);
  // alerts-report is the machine half of alert gossip: records pass verbatim.
  const auto report = ParseRequest("fleet alerts-report h:1;2;8;0;match_churn h:2;0;8;5;-",
                                   &error);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->kind, CommandKind::kFleetAlertsReport);
  EXPECT_EQ(report->rest, "h:1;2;8;0;match_churn h:2;0;8;5;-");
  EXPECT_FALSE(ParseRequest("fleet alerts extra", &error).has_value());
  EXPECT_FALSE(ParseRequest("fleet alerts-report", &error).has_value());  // missing record

  EXPECT_FALSE(ParseRequest("fleet", &error).has_value());
  EXPECT_NE(error.find("usage: fleet"), std::string::npos);
  EXPECT_FALSE(ParseRequest("fleet frobnicate", &error).has_value());
  EXPECT_FALSE(ParseRequest("fleet status extra", &error).has_value());
  EXPECT_FALSE(ParseRequest("fleet push", &error).has_value());   // missing addr
  EXPECT_FALSE(ParseRequest("fleet pull a b", &error).has_value());  // extra arg
  EXPECT_FALSE(ParseRequest("fleet exec", &error).has_value());   // missing command
}

TEST(ProtocolExecuteTest, FleetVerbsRequireAnAttachedDaemon) {
  Runtime rt(TestConfig());  // no fleet_daemon configured
  for (const char* line : {"fleet status", "fleet peers", "fleet push h:1", "fleet pull h:1",
                           "fleet exec status", "fleet alerts"}) {
    const std::string reply = HandleLine(rt, line);
    EXPECT_EQ(reply.rfind("err no fleet daemon attached", 0), 0u) << line << ": " << reply;
    EXPECT_NE(reply.find("DIMMUNIX_FLEET"), std::string::npos) << reply;
  }
  // And `status` simply omits the fleet= line rather than erroring.
  EXPECT_EQ(HandleLine(rt, "status").find("fleet="), std::string::npos);
}

TEST(ProtocolExecuteTest, FleetVerbsProxyToTheAttachedDaemon) {
  const std::string history =
      (std::filesystem::temp_directory_path() /
       ("proto_fleet_" + std::to_string(::getpid()) + ".hist"))
          .string();
  persist::RemoveHistoryFiles(history);
  fleet::DaemonOptions options;
  options.history_paths.push_back(history);
  options.gossip_period = std::chrono::milliseconds(0);
  fleet::Daemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  Config config = TestConfig();
  config.fleet_daemon = daemon.listen_address();
  Runtime rt(config);

  const std::string reply = HandleLine(rt, "fleet status");
  ASSERT_EQ(reply.rfind("ok\n", 0), 0u) << reply;
  EXPECT_NE(reply.find("daemon=dimmunixd\n"), std::string::npos) << reply;

  // `status` carries the condensed fleet= line when a daemon is attached.
  const std::string status = HandleLine(rt, "status");
  EXPECT_NE(status.find("fleet=" + daemon.listen_address() + ",peers=0"), std::string::npos)
      << status;
  // `config` reports the attachment.
  EXPECT_NE(HandleLine(rt, "config").find("fleet_daemon=" + daemon.listen_address() + "\n"),
            std::string::npos);

  // Alert gossip round-trips through the daemon: a report lands in its
  // table and both `fleet alerts` and `fleet status` attribute it to the
  // reporting host. (Counts are not asserted — this runtime's own health
  // thread may report too.)
  const std::string pushed =
      HandleLine(rt, "fleet alerts-report peer9:42;2;8;0;match_churn+ring_drops");
  ASSERT_EQ(pushed.rfind("ok\n", 0), 0u) << pushed;
  EXPECT_NE(pushed.find("accepted=1\n"), std::string::npos);
  const std::string alerts = HandleLine(rt, "fleet alerts");
  ASSERT_EQ(alerts.rfind("ok\n", 0), 0u) << alerts;
  EXPECT_NE(alerts.find("alert peer9:42 active=2 total=8"), std::string::npos) << alerts;
  EXPECT_NE(alerts.find("rules=match_churn+ring_drops"), std::string::npos);
  EXPECT_NE(HandleLine(rt, "fleet status").find("reporter peer9:42 alerts=2/8"),
            std::string::npos);

  daemon.Stop();
  persist::RemoveHistoryFiles(history);
}

TEST(ProtocolExecuteTest, UnreachableFleetDaemonDegradesGracefully) {
  Config config = TestConfig();
  config.fleet_daemon = "127.0.0.1:1";  // nothing listens there
  Runtime rt(config);
  EXPECT_EQ(HandleLine(rt, "fleet peers").rfind("err fleet daemon 127.0.0.1:1 unreachable", 0),
            0u);
  // `status` must not fail outright when the daemon is down.
  const std::string status = HandleLine(rt, "status");
  EXPECT_EQ(status.rfind("ok\n", 0), 0u);
  EXPECT_NE(status.find("fleet=unreachable(127.0.0.1:1)\n"), std::string::npos) << status;
}

TEST(ProtocolExecuteTest, HistoReadoutAndUnknownName) {
  Runtime rt(TestConfig());
  SeedSignature(rt, "holdX", "reqY");
  TriggerAvoidance(rt);

  const std::string reply = HandleLine(rt, "histo acquire_latency_ns");
  ASSERT_EQ(reply.rfind("ok\n", 0), 0u);
  EXPECT_NE(reply.find("count="), std::string::npos);
  EXPECT_NE(reply.find("p99_ns="), std::string::npos);
  EXPECT_EQ(reply.find("count=0\n"), std::string::npos)
      << "acquisitions above must have landed in the histogram";

  const std::string bad = HandleLine(rt, "histo bogus");
  EXPECT_EQ(bad.rfind("err unknown histogram", 0), 0u) << bad;
  EXPECT_NE(bad.find("acquire_latency_ns"), std::string::npos)
      << "the error must list the valid names";
}

}  // namespace
}  // namespace control
}  // namespace dimmunix
