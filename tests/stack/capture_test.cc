// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/stack/capture.h"

#include <gtest/gtest.h>

#include "src/stack/annotation.h"

namespace dimmunix {
namespace {

TEST(CaptureTest, AnnotatedStackWinsAndIsInnermostFirst) {
  const Frame outer = FrameFromName("cap_outer@t:1");
  const Frame inner = FrameFromName("cap_inner@t:2");
  ScopedFrame a(outer);
  ScopedFrame b(inner);
  const std::vector<Frame> stack = CaptureStack();
  ASSERT_EQ(stack.size(), 2u);
  EXPECT_EQ(stack[0], inner);  // most recent frame first (suffix matching)
  EXPECT_EQ(stack[1], outer);
}

TEST(CaptureTest, NativeFallbackProducesFrames) {
  ASSERT_TRUE(ThreadAnnotationStack().empty());
  const std::vector<Frame> stack = CaptureStack();
  EXPECT_FALSE(stack.empty());
  EXPECT_LE(stack.size(), static_cast<std::size_t>(kMaxCapturedFrames));
}

TEST(CaptureTest, NativeCaptureIsStableAtSameCallSite) {
  auto capture_here = []() { return CaptureNativeStack(0); };
  const auto a = capture_here();
  const auto b = capture_here();
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  // Same call site, same process: the innermost frame (the unwinder's
  // immediate caller) is identical; outer frames may differ because the
  // optimizer inlines the helper at each call site.
  EXPECT_EQ(a[0], b[0]);
}

TEST(CaptureTest, DeepAnnotationIsTruncated) {
  std::vector<std::unique_ptr<ScopedFrame>> frames;
  for (int i = 0; i < kMaxCapturedFrames + 10; ++i) {
    frames.push_back(
        std::make_unique<ScopedFrame>(FrameFromName("deep@f:" + std::to_string(i))));
  }
  const std::vector<Frame> stack = CaptureStack();
  EXPECT_EQ(stack.size(), static_cast<std::size_t>(kMaxCapturedFrames));
}

}  // namespace
}  // namespace dimmunix
