// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/stack/annotation.h"

#include <gtest/gtest.h>

#include <thread>

namespace dimmunix {
namespace {

TEST(AnnotationTest, EmptyByDefault) { EXPECT_TRUE(ThreadAnnotationStack().empty()); }

TEST(AnnotationTest, ScopedFramePushesAndPops) {
  const Frame f = FrameFromName("outer@file:1");
  {
    ScopedFrame scope(f);
    ASSERT_EQ(ThreadAnnotationStack().size(), 1u);
    EXPECT_EQ(ThreadAnnotationStack().back(), f);
  }
  EXPECT_TRUE(ThreadAnnotationStack().empty());
}

TEST(AnnotationTest, NestingOrderIsOutermostFirst) {
  const Frame outer = FrameFromName("outer@file:1");
  const Frame inner = FrameFromName("inner@file:2");
  ScopedFrame a(outer);
  {
    ScopedFrame b(inner);
    ASSERT_EQ(ThreadAnnotationStack().size(), 2u);
    EXPECT_EQ(ThreadAnnotationStack()[0], outer);
    EXPECT_EQ(ThreadAnnotationStack()[1], inner);
  }
  EXPECT_EQ(ThreadAnnotationStack().size(), 1u);
}

TEST(AnnotationTest, MacroCapturesFunctionAndLine) {
  DIMMUNIX_FRAME();
  ASSERT_EQ(ThreadAnnotationStack().size(), 1u);
  const std::string name = FrameName(ThreadAnnotationStack()[0]);
  // Inside a gtest body __func__ is "TestBody"; the file:line part is ours.
  EXPECT_NE(name.find("TestBody"), std::string::npos) << name;
  EXPECT_NE(name.find("annotation_test.cc"), std::string::npos) << name;
}

TEST(AnnotationTest, PerThreadIsolation) {
  const Frame f = FrameFromName("main-thread@x:1");
  ScopedFrame scope(f);
  std::thread other([] { EXPECT_TRUE(ThreadAnnotationStack().empty()); });
  other.join();
  EXPECT_EQ(ThreadAnnotationStack().size(), 1u);
}

TEST(AnnotationTest, FrameNamesAreDeterministic) {
  // Signatures must be portable across executions (§5.3): the frame id is a
  // pure function of the position string.
  EXPECT_EQ(FrameFromName("Foo::Bar@baz.cc:17"), FrameFromName("Foo::Bar@baz.cc:17"));
  EXPECT_NE(FrameFromName("Foo::Bar@baz.cc:17"), FrameFromName("Foo::Bar@baz.cc:18"));
}

}  // namespace
}  // namespace dimmunix
