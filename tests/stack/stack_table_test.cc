// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/stack/stack_table.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace dimmunix {
namespace {

std::vector<Frame> MakeStack(std::initializer_list<const char*> names) {
  std::vector<Frame> frames;
  for (const char* name : names) {
    frames.push_back(FrameFromName(name));
  }
  return frames;
}

TEST(StackTableTest, InternIsIdempotent) {
  StackTable table(10);
  const auto frames = MakeStack({"a", "b", "c"});
  const StackId first = table.Intern(frames);
  const StackId second = table.Intern(frames);
  EXPECT_EQ(first, second);
  EXPECT_EQ(table.size(), 1u);
}

TEST(StackTableTest, DistinctStacksGetDistinctIds) {
  StackTable table(10);
  const StackId a = table.Intern(MakeStack({"a", "b"}));
  const StackId b = table.Intern(MakeStack({"a", "c"}));
  const StackId c = table.Intern(MakeStack({"a"}));
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
}

TEST(StackTableTest, GetReturnsFrames) {
  StackTable table(10);
  const auto frames = MakeStack({"x", "y"});
  const StackId id = table.Intern(frames);
  EXPECT_EQ(table.Get(id).frames, frames);
  EXPECT_EQ(table.Get(id).id, id);
}

TEST(StackTableTest, MatchesAtDepthComparesSuffix) {
  StackTable table(10);
  // Same top-2 frames, divergence at the third.
  const StackId a = table.Intern(MakeStack({"lock", "mid", "outerA"}));
  const StackId b = table.Intern(MakeStack({"lock", "mid", "outerB"}));
  EXPECT_TRUE(table.MatchesAtDepth(a, b, 1));
  EXPECT_TRUE(table.MatchesAtDepth(a, b, 2));
  EXPECT_FALSE(table.MatchesAtDepth(a, b, 3));
  EXPECT_FALSE(table.MatchesAtDepth(a, b, 10));  // clamped to max, still differs
}

TEST(StackTableTest, ShorterStackMatchesOnlyWhenFullyContainedAtSameEffectiveDepth) {
  StackTable table(10);
  const StackId two = table.Intern(MakeStack({"lock", "mid"}));
  const StackId three = table.Intern(MakeStack({"lock", "mid", "outer"}));
  EXPECT_TRUE(table.MatchesAtDepth(two, three, 2));
  // At depth 3 the effective lengths differ (2 vs 3): no match.
  EXPECT_FALSE(table.MatchesAtDepth(two, three, 3));
}

TEST(StackTableTest, DeepestMatchDepth) {
  StackTable table(10);
  const StackId a = table.Intern(MakeStack({"l", "m1", "m2", "m3", "oA"}));
  const StackId b = table.Intern(MakeStack({"l", "m1", "m2", "m3", "oB"}));
  EXPECT_EQ(table.DeepestMatchDepth(a, b), 4);
  EXPECT_EQ(table.DeepestMatchDepth(a, a), 10);
  const StackId c = table.Intern(MakeStack({"other"}));
  EXPECT_EQ(table.DeepestMatchDepth(a, c), 0);
}

TEST(StackTableTest, MatchingAtDepthFindsAllSuffixSharers) {
  StackTable table(10);
  const StackId a = table.Intern(MakeStack({"l", "m", "o1"}));
  const StackId b = table.Intern(MakeStack({"l", "m", "o2"}));
  const StackId c = table.Intern(MakeStack({"l", "x", "o3"}));
  auto matches = table.MatchingAtDepth(a, 2);
  std::sort(matches.begin(), matches.end());
  EXPECT_EQ(matches, (std::vector<StackId>{a, b}));
  matches = table.MatchingAtDepth(a, 1);
  EXPECT_EQ(matches.size(), 3u);
  matches = table.MatchingAtDepth(c, 2);
  EXPECT_EQ(matches, (std::vector<StackId>{c}));
}

TEST(StackTableTest, NewStackObserverFires) {
  StackTable table(10);
  std::vector<StackId> observed;
  table.AddNewStackObserver([&](const StackEntry& entry) { observed.push_back(entry.id); });
  const StackId a = table.Intern(MakeStack({"a"}));
  table.Intern(MakeStack({"a"}));  // duplicate: no callback
  const StackId b = table.Intern(MakeStack({"b"}));
  EXPECT_EQ(observed, (std::vector<StackId>{a, b}));
}

TEST(StackTableTest, DescribeUsesSymbolizedNames) {
  StackTable table(10);
  const StackId id = table.Intern(MakeStack({"Foo@f:1", "Bar@f:2"}));
  EXPECT_EQ(table.Describe(id), "Foo@f:1;Bar@f:2");
}

}  // namespace
}  // namespace dimmunix
