// Copyright (c) dimmunix-cpp authors. MIT license.
//
// HealthEngine hysteresis: the state machine is driven with synthetic
// counter samples (the same flat HealthSample the Runtime assembles), so
// every transition — prime, fire, confirm, flap-suppress, resolve-latch,
// re-fire — is deterministic and timed by the test, not by wall clocks.

#include "src/obs/health.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace dimmunix {
namespace obs {
namespace {

AlertSnapshot Find(const HealthEngine& engine, const std::string& rule) {
  for (const AlertSnapshot& a : engine.Snapshot()) {
    if (a.rule == rule) {
      return a;
    }
  }
  ADD_FAILURE() << "rule '" << rule << "' missing from Snapshot()";
  return {};
}

HealthThresholds FastThresholds() {
  HealthThresholds t;
  t.fire_ticks = 2;
  t.resolve_ticks = 2;
  return t;
}

// A quiet sample `seconds` into the run with `requests` total lock requests.
HealthSample Quiet(std::uint64_t seconds, std::uint64_t requests) {
  HealthSample s;
  s.now_ns = seconds * 1'000'000'000ULL;
  s.requests = requests;
  return s;
}

TEST(HealthEngineTest, SnapshotListsEveryRuleWithStableNames) {
  HealthEngine engine{HealthThresholds{}};
  const std::vector<AlertSnapshot> snap = engine.Snapshot();
  ASSERT_EQ(snap.size(), static_cast<std::size_t>(HealthEngine::kRuleCount));
  const char* expected[] = {"match_churn",      "epoch_stall", "ipc_backlog",
                            "ipc_flush_latency", "arena_exhaustion", "ring_drops",
                            "store_backlog",    "resync_stale"};
  for (int i = 0; i < HealthEngine::kRuleCount; ++i) {
    EXPECT_EQ(snap[i].rule, expected[i]) << "rule order/name is API (Prometheus labels)";
    EXPECT_EQ(snap[i].state, AlertState::kInactive);
    EXPECT_GT(snap[i].threshold, 0.0) << snap[i].rule
                                      << ": threshold must show before first evaluation";
    EXPECT_FALSE(snap[i].signal.empty());
  }
  const HealthEngine::Summary summary = engine.GetSummary();
  EXPECT_EQ(summary.raised(), 0);
  EXPECT_EQ(summary.total, HealthEngine::kRuleCount);
}

TEST(HealthEngineTest, MatchChurnFiresConfirmsResolvesAndRefires) {
  HealthEngine engine{FastThresholds()};

  // Tick 1 primes the deltas; rate rules cannot evaluate yet.
  engine.Tick(Quiet(1, 1000));
  EXPECT_EQ(Find(engine, "match_churn").state, AlertState::kInactive);

  // 80 retries over 100 requests = 0.8 > 0.5: first breach -> firing.
  HealthSample s = Quiet(2, 1100);
  s.match_fast_retries = 80;
  engine.Tick(s);
  AlertSnapshot churn = Find(engine, "match_churn");
  EXPECT_EQ(churn.state, AlertState::kFiring);
  EXPECT_EQ(churn.fired_count, 1u);
  EXPECT_DOUBLE_EQ(churn.value, 0.8);
  EXPECT_EQ(engine.GetSummary().raised(), 1);

  // Second consecutive breach confirms: firing -> active.
  s = Quiet(3, 1200);
  s.match_fast_retries = 160;
  engine.Tick(s);
  EXPECT_EQ(Find(engine, "match_churn").state, AlertState::kActive);
  EXPECT_EQ(engine.GetSummary().active, 1);

  // Quiet windows: the first clear leaves it active, the second resolves.
  s = Quiet(4, 1300);
  s.match_fast_retries = 160;
  engine.Tick(s);
  EXPECT_EQ(Find(engine, "match_churn").state, AlertState::kActive);
  s = Quiet(5, 1400);
  s.match_fast_retries = 160;
  engine.Tick(s);
  churn = Find(engine, "match_churn");
  EXPECT_EQ(churn.state, AlertState::kResolved) << "resolved is latched, not inactive";
  EXPECT_EQ(engine.GetSummary().raised(), 0);
  EXPECT_EQ(engine.GetSummary().resolved, 1);

  // A new storm re-fires from resolved and bumps the fired counter.
  s = Quiet(6, 1500);
  s.match_fast_retries = 260;
  engine.Tick(s);
  churn = Find(engine, "match_churn");
  EXPECT_EQ(churn.state, AlertState::kFiring);
  EXPECT_EQ(churn.fired_count, 2u);
}

TEST(HealthEngineTest, OneTickFlapNeverReachesActiveOrResolved) {
  HealthEngine engine{FastThresholds()};
  engine.Tick(Quiet(1, 1000));

  HealthSample s = Quiet(2, 1100);
  s.match_fast_retries = 90;
  engine.Tick(s);
  EXPECT_EQ(Find(engine, "match_churn").state, AlertState::kFiring);

  // Clears before fire_ticks confirmations: suppressed back to inactive.
  engine.Tick(Quiet(3, 1200));
  const AlertSnapshot churn = Find(engine, "match_churn");
  EXPECT_EQ(churn.state, AlertState::kInactive);
  EXPECT_EQ(engine.GetSummary().resolved, 0);
  EXPECT_EQ(churn.fired_count, 1u) << "the flap still counts as a fire event";
}

TEST(HealthEngineTest, ChurnWindowBelowMinRequestsDoesNotEvaluate) {
  HealthEngine engine{FastThresholds()};
  engine.Tick(Quiet(1, 1000));
  // 10 requests with 10 retries is a 1.0 ratio — but over a window too small
  // to mean anything, so the rule must not fire.
  HealthSample s = Quiet(2, 1010);
  s.match_fast_retries = 10;
  engine.Tick(s);
  EXPECT_EQ(Find(engine, "match_churn").state, AlertState::kInactive);
}

TEST(HealthEngineTest, EpochStallAndRingDropRatesUseElapsedTime) {
  HealthEngine engine{FastThresholds()};
  engine.Tick(Quiet(1, 0));

  // 100ms of stall in a 1s window = 10% > 5%; 1000 drops/s > 100/s.
  HealthSample s = Quiet(2, 0);
  s.epoch_stall_ns = 100'000'000;
  s.ring_dropped = 1000;
  engine.Tick(s);
  const AlertSnapshot stall = Find(engine, "epoch_stall");
  EXPECT_EQ(stall.state, AlertState::kFiring);
  EXPECT_DOUBLE_EQ(stall.value, 10.0);
  const AlertSnapshot drops = Find(engine, "ring_drops");
  EXPECT_EQ(drops.state, AlertState::kFiring);
  EXPECT_DOUBLE_EQ(drops.value, 1000.0);

  // Same totals a second later: rates fall to zero, both flaps suppress.
  s = Quiet(3, 0);
  s.epoch_stall_ns = 100'000'000;
  s.ring_dropped = 1000;
  engine.Tick(s);
  EXPECT_EQ(Find(engine, "epoch_stall").state, AlertState::kInactive);
  EXPECT_EQ(Find(engine, "ring_drops").state, AlertState::kInactive);
}

TEST(HealthEngineTest, SubsystemGatesKeepRulesUnevaluated) {
  HealthEngine engine{FastThresholds()};
  // Huge backlog numbers, but neither the IPC bridge nor the store is
  // running: every gated rule must stay inactive.
  HealthSample s = Quiet(1, 0);
  s.ipc_running = false;
  s.ipc_pending_ops = 100000;
  s.store_running = false;
  s.store_queued = 100000;
  s.resync_period_ms = 100;
  s.last_resync_age_ms = 100000;
  engine.Tick(s);
  engine.Tick(s);
  EXPECT_EQ(Find(engine, "ipc_backlog").state, AlertState::kInactive);
  EXPECT_EQ(Find(engine, "store_backlog").state, AlertState::kInactive);
  EXPECT_EQ(Find(engine, "resync_stale").state, AlertState::kInactive);
}

TEST(HealthEngineTest, GaugeRulesFireAndActiveAlertVanishesWhenSubsystemStops) {
  HealthEngine engine{FastThresholds()};
  HealthSample s = Quiet(1, 0);
  s.ipc_running = true;
  s.ipc_pending_ops = 500;  // > 256
  s.arena_participants_used = 60;
  s.arena_participants_cap = 64;  // 93.75% > 80%
  s.arena_edges_used = 1;
  s.arena_edges_cap = 128;
  s.store_running = true;
  s.store_queued = 100;  // > 64
  s.resync_period_ms = 100;
  s.last_resync_age_ms = 1000;  // 10x > 3x
  engine.Tick(s);
  s.now_ns = Quiet(2, 0).now_ns;
  engine.Tick(s);
  EXPECT_EQ(Find(engine, "ipc_backlog").state, AlertState::kActive);
  EXPECT_EQ(Find(engine, "arena_exhaustion").state, AlertState::kActive);
  EXPECT_EQ(Find(engine, "store_backlog").state, AlertState::kActive);
  EXPECT_EQ(Find(engine, "resync_stale").state, AlertState::kActive);
  EXPECT_EQ(engine.GetSummary().active, 4);

  // Subsystems shut down: unevaluable counts as clear, actives resolve.
  HealthSample off = Quiet(3, 0);
  engine.Tick(off);
  off = Quiet(4, 0);
  engine.Tick(off);
  EXPECT_EQ(engine.GetSummary().raised(), 0);
  EXPECT_EQ(engine.GetSummary().resolved, 4);
}

TEST(HealthEngineTest, IpcFlushLatencyConvertsToMicroseconds) {
  HealthThresholds t = FastThresholds();
  t.fire_ticks = 1;
  HealthEngine engine{t};
  HealthSample s = Quiet(1, 0);
  s.ipc_running = true;
  s.ipc_flush_p99_ns = 20'000'000ULL;  // 20ms -> 20000us > 10000us
  engine.Tick(s);
  const AlertSnapshot flush = Find(engine, "ipc_flush_latency");
  EXPECT_EQ(flush.state, AlertState::kActive) << "fire_ticks=1 confirms immediately";
  EXPECT_DOUBLE_EQ(flush.value, 20'000.0);
}

}  // namespace
}  // namespace obs
}  // namespace dimmunix
