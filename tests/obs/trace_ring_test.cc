// Copyright (c) dimmunix-cpp authors. MIT license.
//
// TraceRing: the single-writer seqlock flight-recorder ring. The properties
// under test are exactly the ones the instrumentation relies on:
//
//   * overwrite-oldest semantics with exact written/dropped accounting;
//   * Snapshot() from another thread never yields a torn event, even while
//     16 writer-owned rings are hammered and snapshotted concurrently (this
//     is the TSan lane's main target for src/obs);
//   * the Recorder gates: tracing off = nothing recorded, no ring created.

#include "src/obs/trace_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/obs/recorder.h"
#include "src/obs/trace_event.h"

namespace dimmunix {
namespace obs {
namespace {

TraceEvent MakeEvent(std::uint64_t i) {
  TraceEvent event;
  // Every field derived from `i`, so a torn read (fields from two different
  // pushes) is detectable by cross-checking.
  event.end_ns = i;
  event.data = i * 3;
  event.dur_ns = static_cast<std::uint32_t>(i & 0xffffffu);
  event.aux = static_cast<std::uint16_t>(i & 0x7fffu);
  event.mode = static_cast<std::uint8_t>(i & 1u);
  event.type = static_cast<std::uint8_t>(1 + (i % kTraceEventTypeMax));
  return event;
}

bool EventConsistent(const TraceEvent& e) {
  const std::uint64_t i = e.end_ns;
  return e.data == i * 3 && e.dur_ns == static_cast<std::uint32_t>(i & 0xffffffu) &&
         e.aux == static_cast<std::uint16_t>(i & 0x7fffu) &&
         e.mode == static_cast<std::uint8_t>(i & 1u) &&
         e.type == static_cast<std::uint8_t>(1 + (i % kTraceEventTypeMax));
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 8u);   // minimum
  EXPECT_EQ(TraceRing(8).capacity(), 8u);
  EXPECT_EQ(TraceRing(9).capacity(), 16u);
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
}

TEST(TraceRingTest, KeepsEverythingUnderCapacity) {
  TraceRing ring(16);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.Push(MakeEvent(i));
  }
  EXPECT_EQ(ring.written(), 10u);
  EXPECT_EQ(ring.dropped(), 0u);
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (std::uint64_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].end_ns, i) << "snapshot must be in push order";
    EXPECT_TRUE(EventConsistent(events[i]));
  }
}

TEST(TraceRingTest, WraparoundDropsOldestKeepsNewest) {
  TraceRing ring(16);  // capacity rounds to 16
  const std::uint64_t total = 100;
  for (std::uint64_t i = 0; i < total; ++i) {
    ring.Push(MakeEvent(i));
  }
  EXPECT_EQ(ring.written(), total);
  EXPECT_EQ(ring.dropped(), total - ring.capacity());
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), ring.capacity());
  // The flight recorder keeps the most recent window: [total-cap, total).
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].end_ns, total - ring.capacity() + i);
    EXPECT_TRUE(EventConsistent(events[i]));
  }
}

TEST(TraceRingTest, ConcurrentSnapshotsNeverSeeTornEvents) {
  // 16 single-writer rings hammered while a reader thread snapshots them
  // all in a loop — the shape the Recorder produces under `dimctl trace
  // dump` against a live process. Torn events would show mixed fields.
  constexpr int kWriters = 16;
  constexpr std::uint64_t kPushes = 20000;
  std::vector<std::unique_ptr<TraceRing>> rings;
  for (int w = 0; w < kWriters; ++w) {
    rings.push_back(std::make_unique<TraceRing>(64));  // small: constant wrap
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> snapshots{0};
  std::atomic<std::uint64_t> torn{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (auto& ring : rings) {
        const std::vector<TraceEvent> events = ring->Snapshot();
        snapshots.fetch_add(1, std::memory_order_relaxed);
        for (const TraceEvent& e : events) {
          if (!EventConsistent(e)) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPushes; ++i) {
        rings[static_cast<std::size_t>(w)]->Push(MakeEvent(i));
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(snapshots.load(), 0u);
  for (auto& ring : rings) {
    EXPECT_EQ(ring->written(), kPushes);
    EXPECT_EQ(ring->dropped(), kPushes - ring->capacity());
    // Post-join snapshot is exact: the newest capacity() events, in order.
    const std::vector<TraceEvent> events = ring->Snapshot();
    ASSERT_EQ(events.size(), ring->capacity());
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(events[i].end_ns, kPushes - ring->capacity() + i);
    }
  }
}

TEST(RecorderTest, TracingOffRecordsNothing) {
  Recorder::Options options;
  options.trace_enabled = false;
  Recorder recorder(options);
  EXPECT_FALSE(recorder.tracing());
  recorder.Span(TraceEventType::kAcquire, 100, 10);
  EXPECT_TRUE(recorder.SnapshotRings().empty()) << "no ring may be created while disarmed";
}

TEST(RecorderTest, SpansLandOnTheCallersRing) {
  Recorder::Options options;
  options.trace_enabled = true;
  options.ring_capacity = 64;
  Recorder recorder(options);
  recorder.Span(TraceEventType::kYield, 1000, 250, /*aux=*/7, /*mode=*/1, /*data=*/42);
  std::thread other([&] {
    recorder.NameThisThread("other");
    recorder.Span(TraceEventType::kEpoch, 2000, 100);
  });
  other.join();
  const auto dumps = recorder.SnapshotRings();
  ASSERT_EQ(dumps.size(), 2u);
  int named = 0;
  for (const auto& dump : dumps) {
    ASSERT_EQ(dump.events.size(), 1u);
    if (dump.name == "other") {
      ++named;
      EXPECT_EQ(dump.events[0].type, static_cast<std::uint8_t>(TraceEventType::kEpoch));
    } else {
      EXPECT_EQ(dump.events[0].type, static_cast<std::uint8_t>(TraceEventType::kYield));
      EXPECT_EQ(dump.events[0].aux, 7);
      EXPECT_EQ(dump.events[0].mode, 1);
      EXPECT_EQ(dump.events[0].data, 42u);
    }
  }
  EXPECT_EQ(named, 1);
}

TEST(RecorderTest, StartStopGateIsLive) {
  Recorder::Options options;
  options.trace_enabled = false;
  Recorder recorder(options);
  recorder.Span(TraceEventType::kAcquire, 1, 1);
  recorder.StartTracing();
  recorder.Span(TraceEventType::kAcquire, 2, 1);
  recorder.StopTracing();
  recorder.Span(TraceEventType::kAcquire, 3, 1);
  const auto dumps = recorder.SnapshotRings();
  ASSERT_EQ(dumps.size(), 1u);
  ASSERT_EQ(dumps[0].events.size(), 1u);
  EXPECT_EQ(dumps[0].events[0].end_ns, 2u) << "only the armed-window span may record";
}

}  // namespace
}  // namespace obs
}  // namespace dimmunix
