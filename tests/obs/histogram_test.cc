// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Log-linear histogram: the CI p99 gate trusts two properties, so both are
// tested exhaustively here:
//
//   * bucket geometry — BucketIndex/LowerBound/UpperBound bracket every
//     value with <= 1/16 (6.25%) relative bucket width;
//   * Percentile() vs a sorted reference — for random sample sets, the
//     nearest-rank percentile read from the histogram must equal the
//     bucket upper bound of the exact order statistic, i.e. sit in
//     [exact, exact * 1.0625].

#include "src/obs/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

namespace dimmunix {
namespace obs {
namespace {

TEST(HistogramTest, BucketBoundsBracketEveryProbedValue) {
  // Exhaustive through two octaves, then probe around every power of two —
  // the boundaries are where off-by-one shift bugs live.
  std::vector<std::uint64_t> probes;
  for (std::uint64_t v = 0; v < 4096; ++v) {
    probes.push_back(v);
  }
  for (int bit = 12; bit < 63; ++bit) {
    const std::uint64_t p = std::uint64_t{1} << bit;
    for (std::uint64_t delta : {std::uint64_t{0}, std::uint64_t{1}, p / 16, p - 1}) {
      probes.push_back(p - 1 + delta);
      probes.push_back(p + delta);
    }
  }
  for (const std::uint64_t v : probes) {
    const std::size_t index = Histogram::BucketIndex(v);
    ASSERT_LT(index, Histogram::kBucketCount) << "value " << v;
    const std::uint64_t lo = Histogram::BucketLowerBound(index);
    const std::uint64_t hi = Histogram::BucketUpperBound(index);
    EXPECT_LE(lo, v) << "value " << v << " bucket " << index;
    EXPECT_GE(hi, v) << "value " << v << " bucket " << index;
    // Relative bucket width: (hi - lo) <= lo / 16 once past the exact range.
    if (lo >= 2 * Histogram::kSubBuckets) {
      EXPECT_LE(hi - lo, lo / Histogram::kSubBuckets)
          << "bucket " << index << " wider than 6.25% at lo=" << lo;
    } else {
      EXPECT_EQ(hi, lo) << "values < 32 must map exactly";
    }
  }
}

TEST(HistogramTest, BucketIndexIsMonotone) {
  // A smaller value must never land in a later bucket.
  std::mt19937_64 rng(7);
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t a = rng() >> (rng() % 40);
    const std::uint64_t b = rng() >> (rng() % 40);
    const std::uint64_t lo = std::min(a, b);
    const std::uint64_t hi = std::max(a, b);
    ASSERT_LE(Histogram::BucketIndex(lo), Histogram::BucketIndex(hi))
        << "lo=" << lo << " hi=" << hi;
  }
}

TEST(HistogramTest, CountAndSumAreExact) {
  Histogram h;
  std::uint64_t expected_sum = 0;
  for (std::uint64_t v = 0; v < 10000; ++v) {
    h.Record(v * 13);
    expected_sum += v * 13;
  }
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 10000u);
  EXPECT_EQ(snap.sum, expected_sum);
  EXPECT_EQ(snap.Mean(), expected_sum / 10000);
}

TEST(HistogramTest, PercentileMatchesSortedReference) {
  // Property test: for random heavy-tailed samples, every percentile read
  // from the histogram equals BucketUpperBound(BucketIndex(exact)) — the
  // tightest answer a bucketed histogram can give — and therefore sits in
  // [exact, exact * (1 + 1/16)].
  std::mt19937_64 rng(42);
  for (int round = 0; round < 20; ++round) {
    Histogram h;
    std::vector<std::uint64_t> reference;
    const int n = 1 + static_cast<int>(rng() % 5000);
    for (int i = 0; i < n; ++i) {
      // Log-uniform: exercise every octave from ns to minutes.
      const std::uint64_t v = rng() >> (rng() % 50);
      h.Record(v);
      reference.push_back(v);
    }
    std::sort(reference.begin(), reference.end());
    const HistogramSnapshot snap = h.Snapshot();
    ASSERT_EQ(snap.count, reference.size());
    for (const double p : {1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
      // Same nearest-rank rule as HistogramSnapshot::Percentile.
      std::uint64_t rank =
          static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(reference.size()));
      if (static_cast<double>(rank) < p / 100.0 * static_cast<double>(reference.size())) {
        ++rank;
      }
      rank = std::max<std::uint64_t>(rank, 1);
      rank = std::min<std::uint64_t>(rank, reference.size());
      const std::uint64_t exact = reference[rank - 1];
      const std::uint64_t got = snap.Percentile(p);
      EXPECT_EQ(got, Histogram::BucketUpperBound(Histogram::BucketIndex(exact)))
          << "round " << round << " p" << p;
      EXPECT_GE(got, exact);
      // got - exact <= exact/16, written subtraction-side so samples near
      // 2^64 (top octave) don't overflow the bound.
      EXPECT_LE(got - exact, exact / Histogram::kSubBuckets)
          << "round " << round << " p" << p << " exact=" << exact;
    }
  }
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h;
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.Percentile(99.0), 0u);
  EXPECT_EQ(snap.Mean(), 0u);
}

TEST(HistogramTest, ConcurrentRecordLosesNothing) {
  // 8 threads record disjoint value sets while a reader snapshots; the
  // final fold must account for every sample (Record is wait-free and
  // exact, Snapshot folds all shards).
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<std::uint64_t>(t) * kPerThread + i);
      }
    });
  }
  // Concurrent reads must see a monotonically growing, never-corrupt fold.
  std::uint64_t last_count = 0;
  for (int i = 0; i < 50; ++i) {
    const HistogramSnapshot snap = h.Snapshot();
    EXPECT_GE(snap.count, last_count);
    last_count = snap.count;
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::uint64_t expected_sum = 0;
  for (std::uint64_t v = 0; v < kThreads * kPerThread; ++v) {
    expected_sum += v;
  }
  EXPECT_EQ(snap.sum, expected_sum);
}

}  // namespace
}  // namespace obs
}  // namespace dimmunix
