// Copyright (c) dimmunix-cpp authors. MIT license.
//
// IncidentLog forensics: bundles must be strictly parseable JSON (a tiny
// recursive-descent validator here — CI additionally runs python's
// json.tool over a real deadlock bundle), the file ring must stay bounded
// with oldest-first eviction, and the rate limiter must suppress storms.

#include "src/obs/incident.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/health.h"

namespace dimmunix {
namespace obs {
namespace {

// --- Minimal strict JSON validator (syntax only, no external deps) -----------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // unescaped control character
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() && (std::isdigit(text_[pos_]) || text_[pos_] == '.' ||
                                   text_[pos_] == 'e' || text_[pos_] == 'E' ||
                                   text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(text_[pos_ - 1]));
  }

  bool Literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) {
      return false;
    }
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string MakeTempDir() {
  char tmpl[] = "/tmp/dimmunix_incident_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

IncidentContext SampleContext() {
  IncidentContext ctx;
  ctx.kind = "deadlock";
  ctx.signature_index = 3;
  ctx.signature_hash = 0xdeadbeefULL;
  ctx.match_depth = 4;
  ctx.signature_stacks = {"lock_a;outer", "lock_b;\"quoted\"\nframe"};
  ctx.threads = {1, 2};
  ctx.victim = 1;
  ctx.victim_os_tid = 0;  // no ring: "trace":null must still parse
  RagThreadInfo t;
  t.id = 1;
  t.waiting = true;
  t.wait_lock = 0xabc;
  t.held.push_back({0xdef, AcquireMode::kExclusive});
  ctx.rag.threads.push_back(t);
  ctx.rag.lock_count = 2;
  return ctx;
}

TEST(IncidentLogTest, DisabledLogIsInert) {
  IncidentLog log(IncidentLog::Options{}, nullptr, nullptr);
  EXPECT_FALSE(log.enabled());
  EXPECT_EQ(log.Capture(SampleContext()), "");
  EXPECT_TRUE(log.List().empty());
  EXPECT_EQ(log.GetStats().captured, 0u);
}

TEST(IncidentLogTest, BundleIsStrictJsonAndNamesTheSignature) {
  const std::string dir = MakeTempDir();
  IncidentLog::Options options;
  options.dir = dir;
  options.min_period = std::chrono::milliseconds(0);
  HealthEngine health{HealthThresholds{}};
  IncidentLog log(options, nullptr, &health);
  log.SetRuntimeJsonProvider([] { return std::string("{\"signatures\":7}"); });

  const std::string path = log.Capture(SampleContext());
  ASSERT_FALSE(path.empty());
  const std::string body = ReadFile(path);
  ASSERT_FALSE(body.empty());
  EXPECT_TRUE(JsonChecker(body).Valid()) << body;
  EXPECT_NE(body.find("\"schema\":\"dimmunix-incident-v1\""), std::string::npos);
  EXPECT_NE(body.find("\"kind\":\"deadlock\""), std::string::npos);
  EXPECT_NE(body.find("\"hash\":\"0xdeadbeef\""), std::string::npos);
  EXPECT_NE(body.find("lock_a;outer"), std::string::npos);
  EXPECT_NE(body.find("\"signatures\":7"), std::string::npos);
  EXPECT_NE(body.find("\"trace\":null"), std::string::npos);
  EXPECT_EQ(log.GetStats().captured, 1u);
  EXPECT_EQ(log.GetStats().errors, 0u);
}

TEST(IncidentLogTest, RingEvictsOldestBeyondMaxFiles) {
  const std::string dir = MakeTempDir();
  IncidentLog::Options options;
  options.dir = dir;
  options.max_files = 3;
  options.min_period = std::chrono::milliseconds(0);
  IncidentLog log(options, nullptr, nullptr);

  std::vector<std::string> paths;
  for (int i = 0; i < 7; ++i) {
    const std::string path = log.Capture(SampleContext());
    ASSERT_FALSE(path.empty()) << "capture " << i;
    paths.push_back(path);
  }
  const std::vector<std::string> names = log.List();
  ASSERT_EQ(names.size(), 3u);
  // The survivors are the newest three, oldest first (lexicographic ==
  // chronological via the zero-padded wall-ms + seq filename).
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(dir + "/" + names[i], paths[paths.size() - 3 + i]);
  }
  EXPECT_EQ(log.GetStats().captured, 7u);
}

TEST(IncidentLogTest, RateLimiterSuppressesStorms) {
  const std::string dir = MakeTempDir();
  IncidentLog::Options options;
  options.dir = dir;
  options.min_period = std::chrono::minutes(10);
  IncidentLog log(options, nullptr, nullptr);

  EXPECT_FALSE(log.Capture(SampleContext()).empty());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(log.Capture(SampleContext()).empty());
  }
  EXPECT_EQ(log.GetStats().captured, 1u);
  EXPECT_EQ(log.GetStats().suppressed, 5u);
  EXPECT_EQ(log.List().size(), 1u);
}

TEST(IncidentLogTest, UnwritableDirectoryCountsErrors) {
  IncidentLog::Options options;
  options.dir = "/nonexistent/dimmunix-incidents";
  options.min_period = std::chrono::milliseconds(0);
  IncidentLog log(options, nullptr, nullptr);
  EXPECT_EQ(log.Capture(SampleContext()), "");
  EXPECT_EQ(log.GetStats().errors, 1u);
  EXPECT_TRUE(log.List().empty());
}

}  // namespace
}  // namespace obs
}  // namespace dimmunix
