// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Fleet-scale immunity, end to end: a deadlock signature archived on "host
// A" travels  daemon A -> gossip -> daemon B -> B's history file ->
// live-resync -> a running Runtime attached to B's file  — which then
// *avoids* the deadlock pattern it never saw locally. The reverse direction
// (an operator disabling the signature on A) must propagate the same way
// and switch avoidance back off. `history_tool diff` is the convergence
// check, exactly as CI's fleet-smoke lane uses it.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>

#include "src/core/runtime.h"
#include "src/fleet/daemon.h"
#include "src/persist/file.h"
#include "src/stack/annotation.h"

namespace dimmunix {
namespace {

// Exit code of `history_tool diff <a> <b>` (0 identical, 1 differs).
int DiffExit(const std::string& a, const std::string& b) {
  const std::string cmd =
      std::string(HISTORY_TOOL_PATH) + " diff " + a + " " + b + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

bool WaitFor(const std::function<bool()>& pred,
             std::chrono::seconds timeout = std::chrono::seconds(60)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

class FleetImmunityTest : public ::testing::Test {
 protected:
  std::string TempHistory(const char* tag) {
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("dimx_fleetimm_" + std::string(tag) + "_" + std::to_string(::getpid())))
            .string();
    persist::RemoveHistoryFiles(path);
    cleanup_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& path : cleanup_) {
      persist::RemoveHistoryFiles(path);
    }
  }

  std::vector<std::string> cleanup_;
};

TEST_F(FleetImmunityTest, SignatureGossipedFromPeerIsAvoidedByLiveRuntime) {
  const std::string history_a = TempHistory("a");
  const std::string history_b = TempHistory("b");

  // "Host A" archived a deadlock between the fleetHold and fleetReq call
  // sites (what an escape + BreakVictim would have written there).
  persist::SignatureRecord sig;
  sig.match_depth = 1;
  sig.stacks.push_back({FrameFromName("fleetHold")});
  sig.stacks.push_back({FrameFromName("fleetReq")});
  sig.Canonicalize();
  persist::HistoryImage seed;
  seed.records.push_back(sig);
  std::string error;
  ASSERT_TRUE(persist::SaveHistoryFile(history_a, seed, &error)) << error;

  // Files differ before any gossip (diff(1) convention: exit 1).
  ASSERT_EQ(DiffExit(history_a, history_b), 3) << "b does not exist yet";

  fleet::DaemonOptions options_a;
  options_a.history_paths.push_back(history_a);
  options_a.gossip_period = std::chrono::milliseconds(0);  // serve-only
  fleet::Daemon daemon_a(options_a);
  ASSERT_TRUE(daemon_a.Start(&error)) << error;

  fleet::DaemonOptions options_b;
  options_b.history_paths.push_back(history_b);
  options_b.peers.push_back(daemon_a.listen_address());
  options_b.gossip_period = std::chrono::milliseconds(25);
  fleet::Daemon daemon_b(options_b);
  ASSERT_TRUE(daemon_b.Start(&error)) << error;

  // A runtime on "host B", attached to B's history file with live resync on
  // — the application end of the propagation pipeline.
  Config config;
  config.start_monitor = false;
  config.history_path = history_b;
  config.history_resync_period = std::chrono::milliseconds(25);
  Runtime rt(config);
  ASSERT_EQ(rt.history().size(), 0u);

  // Gossip + resync deliver the signature into the live runtime.
  ASSERT_TRUE(WaitFor([&] { return rt.history().size() == 1; }))
      << "signature never reached the live runtime";
  ASSERT_TRUE(WaitFor([&] { return DiffExit(history_a, history_b) == 0; }))
      << "history files never converged";

  // The runtime now *avoids* the pattern: holding 500 at fleetHold makes a
  // nonblocking request at fleetReq yield (kBusy), though 600 is free.
  const ThreadId main_tid = rt.RegisterCurrentThread();
  const auto probe = [&rt](ThreadId holder) {
    RequestDecision decision = RequestDecision::kGo;
    {
      ScopedFrame hold(FrameFromName("fleetHold"));
      EXPECT_EQ(rt.engine().Request(holder, 500), RequestDecision::kGo);
      rt.engine().Acquired(holder, 500);
      std::thread other([&] {
        const ThreadId tid = rt.RegisterCurrentThread();
        ScopedFrame req(FrameFromName("fleetReq"));
        decision = rt.engine().RequestNonblocking(tid, 600);
        if (decision == RequestDecision::kGo) {
          rt.engine().Acquired(tid, 600);
          rt.engine().Release(tid, 600);
        }
      });
      other.join();
    }
    rt.engine().Release(holder, 500);
    return decision;
  };
  EXPECT_EQ(probe(main_tid), RequestDecision::kBusy)
      << "gossiped signature was not avoided";
  EXPECT_GE(rt.history().Get(0).avoidance_count, 1u);

  // The propagation metric recorded the hop on B's side.
  const std::string status = daemon_b.HandleCommandLine("fleet status");
  EXPECT_EQ(status.find("propagation_count=0\n"), std::string::npos) << status;

  // Now the operator on host A disables the signature (false positive, §5.7
  // pop-up blocker). The knob-epoch bump must win fleet-wide and reach the
  // live runtime, which stops avoiding.
  persist::SignatureRecord disabled_sig = sig;
  disabled_sig.disabled = true;
  disabled_sig.knob_epoch = 1;
  persist::HistoryImage knob_change;
  knob_change.records.push_back(disabled_sig);
  ASSERT_TRUE(persist::MergeIntoFile(history_a, knob_change));

  ASSERT_TRUE(WaitFor([&] {
    return rt.history().size() == 1 && rt.history().Get(0).disabled;
  })) << "disable knob never reached the live runtime";
  EXPECT_EQ(probe(main_tid), RequestDecision::kGo)
      << "disabled signature must not be avoided";

  daemon_b.Stop();
  daemon_a.Stop();
}

}  // namespace
}  // namespace dimmunix
