// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Calibration end to end (§5.5): real threads repeatedly re-encounter an
// avoided pattern that is a *genuine* AB-BA deadlock; the monitor's
// retrospective probes observe the lock inversion (true positives), the
// ladder completes, and — crucially — the signature is NOT discarded as
// obsolete. A companion test drives a pure-FP pattern and checks that the
// §8 obsolete-discard *does* retire it.

#include <gtest/gtest.h>

#include <thread>

#include "src/stack/annotation.h"
#include "src/sync/mutex.h"

namespace dimmunix {
namespace {

Config CalConfig() {
  Config config;
  config.monitor_period = std::chrono::milliseconds(5);
  config.calibration_enabled = true;
  config.calibration_na = 2;
  config.max_match_depth = 3;
  // Wide enough to observe the woken thread's inverse-order acquisitions.
  config.fp_probe_window = std::chrono::milliseconds(150);
  config.yield_timeout = std::chrono::milliseconds(100);
  return config;
}

int SeedCalibratingSignature(Runtime& rt, const char* fa, const char* fb) {
  bool added = false;
  const int index = rt.history().Add(
      SignatureKind::kDeadlock,
      {rt.stacks().Intern({FrameFromName(fa)}), rt.stacks().Intern({FrameFromName(fb)})}, 1,
      &added);
  rt.history().Mutate(index, [&](Signature& s) {
    s.calibration = CalibrationState(rt.config().max_match_depth, rt.config().calibration_na,
                                     rt.config().calibration_nt);
    s.match_depth = s.calibration.current_depth();
  });
  rt.engine().NotifyHistoryChanged();
  return index;
}

TEST(CalibrationE2eTest, TruePositivePatternSurvivesCalibration) {
  Runtime rt(CalConfig());
  const int index = SeedCalibratingSignature(rt, "cal_holdA", "cal_holdB");
  Mutex a(rt);
  Mutex b(rt);

  // Each round is a real AB-BA near-miss: main takes A then B; the worker
  // takes B then A. The avoidance pauses the worker at its first lock; once
  // main finishes, the worker proceeds through the inverse order, giving
  // the probe its lock inversion.
  for (int round = 0; round < 8; ++round) {
    {
      ScopedFrame frame(FrameFromName("cal_holdA"));
      ASSERT_EQ(a.Lock(), LockResult::kOk);
    }
    std::thread worker([&] {
      {
        ScopedFrame frame(FrameFromName("cal_holdB"));
        ASSERT_EQ(b.Lock(), LockResult::kOk);  // avoided while main holds A
      }
      ASSERT_EQ(a.Lock(), LockResult::kOk);  // inverse order: (B, A)
      a.Unlock();
      b.Unlock();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_EQ(b.Lock(), LockResult::kOk);  // main: (A, B)
    b.Unlock();
    a.Unlock();
    worker.join();
  }
  // Let outstanding probes expire and be judged.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  rt.monitor().RunOnce();

  const Signature sig = rt.history().Get(index);
  EXPECT_GE(rt.engine().stats().yields.load(), 6u);
  EXPECT_FALSE(sig.calibration.calibrating()) << "ladder should have completed";
  EXPECT_FALSE(sig.disabled) << "a genuinely dangerous pattern must not be discarded";
  EXPECT_GE(rt.monitor().stats().fp_probes_opened.load(), 6u);
  EXPECT_GE(rt.monitor().stats().true_positives.load(), 1u);
  EXPECT_EQ(rt.monitor().stats().false_positives.load() +
                rt.monitor().stats().true_positives.load(),
            rt.monitor().stats().fp_probes_opened.load());
}

TEST(CalibrationE2eTest, PureFalsePositivePatternIsDiscardedAsObsolete) {
  Config config = CalConfig();
  config.fp_probe_window = std::chrono::milliseconds(10);
  Runtime rt(config);
  const int index = SeedCalibratingSignature(rt, "fp_holdA", "fp_reqB");
  Mutex a(rt);
  Mutex b(rt);

  // The "pattern" never actually inverts: main holds A; the worker merely
  // takes B and releases it. Every avoidance is a false positive.
  for (int round = 0; round < 6; ++round) {
    {
      ScopedFrame frame(FrameFromName("fp_holdA"));
      ASSERT_EQ(a.Lock(), LockResult::kOk);
    }
    std::thread worker([&] {
      ScopedFrame frame(FrameFromName("fp_reqB"));
      ASSERT_EQ(b.Lock(), LockResult::kOk);
      b.Unlock();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    a.Unlock();
    worker.join();
    if (rt.history().Get(index).disabled) {
      break;
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  rt.monitor().RunOnce();

  const Signature sig = rt.history().Get(index);
  EXPECT_FALSE(sig.calibration.calibrating());
  EXPECT_TRUE(sig.disabled) << "100%-FP signature should be auto-discarded (§8)";
  EXPECT_GE(rt.monitor().stats().signatures_discarded.load(), 1u);
  EXPECT_GE(rt.monitor().stats().false_positives.load(), 2u);
}

}  // namespace
}  // namespace dimmunix
