// Copyright (c) dimmunix-cpp authors. MIT license.
//
// End-to-end reader-writer deadlock immunity through the acquisition port
// (library deployment mode; the LD_PRELOAD path is covered by
// tests/integration/preload_test.cc): the writer-vs-writer-through-reader
// cycle and the token-upgrade deadlock of src/apps/rwlock_cycle both
// deadlock on the first run, persist a signature, and are avoided on the
// second run — while a reader-only workload never perturbs the engine.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <latch>
#include <thread>
#include <vector>

#include "src/apps/rwlock_cycle.h"
#include "src/benchlib/trial.h"
#include "src/persist/file.h"

namespace dimmunix {
namespace {

constexpr auto kTrialTimeout = std::chrono::seconds(2);

// Runs two opposing paths of the scenario concurrently; returns engine
// yields (avoidance count) observed in-process.
template <typename PathA, typename PathB>
int RunPaths(const Config& base, PathA path_a, PathB path_b) {
  Config config = base;
  config.monitor_period = std::chrono::milliseconds(10);
  Runtime rt(config);
  RwlockCycle app(rt);
  app.pause_between_locks = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  };
  std::latch start(2);
  std::thread t1([&] {
    start.arrive_and_wait();
    (app.*path_a)();
  });
  std::thread t2([&] {
    start.arrive_and_wait();
    (app.*path_b)();
  });
  t1.join();
  t2.join();
  return static_cast<int>(rt.engine().stats().yields.load());
}

class RwlockImmunityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    history_ = (std::filesystem::temp_directory_path() /
                ("rwlock_immunity_" + std::to_string(::getpid()) + ".hist"))
                   .string();
    persist::RemoveHistoryFiles(history_);
  }
  void TearDown() override { persist::RemoveHistoryFiles(history_); }

  // The three-step protocol for one pair of opposing paths.
  template <typename PathA, typename PathB>
  void ExpectImmunity(PathA path_a, PathB path_b) {
    // Run 1 (capture): the exploit deadlocks; the monitor persists the
    // signature before the harness kills the child.
    TrialResult capture = RunTrial(
        [&] {
          Config config;
          config.history_path = history_;
          RunPaths(config, path_a, path_b);
          return 0;
        },
        kTrialTimeout);
    EXPECT_TRUE(capture.deadlocked) << "exploit should deadlock without immunity";
    ASSERT_TRUE(std::filesystem::exists(history_)) << "signature must be persisted";

    // Run 2 (immune): completes, with at least one avoidance yield.
    TrialResult immune = RunTrial(
        [&] {
          Config config;
          config.history_path = history_;
          const int yields = RunPaths(config, path_a, path_b);
          return yields > 0 ? 0 : 3;
        },
        kTrialTimeout);
    EXPECT_TRUE(immune.completed) << "immunized run must complete";
    EXPECT_EQ(immune.exit_code, 0) << "immunized run must actually yield";
  }

  std::string history_;
};

TEST_F(RwlockImmunityTest, WriterVsWriterThroughReaderCycle) {
  ExpectImmunity(&RwlockCycle::UpdateAJoinB, &RwlockCycle::UpdateBJoinA);
}

TEST_F(RwlockImmunityTest, TokenUpgradeDeadlock) {
  ExpectImmunity(&RwlockCycle::UpgradeViaToken, &RwlockCycle::ReadThenToken);
}

TEST_F(RwlockImmunityTest, ReaderOnlyWorkloadIsInvisible) {
  // Reader-reader coexistence must produce zero yields and zero signatures:
  // shared-shared edges never conflict, so no cycle and no perturbation.
  Config config;
  config.history_path = history_;
  config.start_monitor = false;
  Runtime rt(config);
  RwlockCycle app(rt);
  app.pause_between_locks = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  };
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        app.ReadOnly();
      }
    });
  }
  for (auto& reader : readers) {
    reader.join();
  }
  rt.monitor().RunOnce();
  EXPECT_EQ(rt.history().size(), 0u);
  EXPECT_EQ(rt.engine().stats().yields.load(), 0u);
  EXPECT_EQ(rt.monitor().stats().deadlocks_detected.load(), 0u);
}

}  // namespace
}  // namespace dimmunix
