// Copyright (c) dimmunix-cpp authors. MIT license.
//
// End-to-end cross-process immunity with real Runtimes in real processes:
//
//   run 1: two forked processes form an AB-BA cycle over two global locks;
//          each monitor folds the peer's arena edges into its RAG, detects
//          the cross-process deadlock, and journals the proc-qualified
//          signature into the shared history file.
//   run 2: fresh incarnations load that history; the staggered process
//          refuses to take its first lock into the known pattern (yield),
//          the other completes, its release flows through the arena, and
//          both finish.
//
// The "deadlock" is modeled without real blocking: each side holds its
// first lock and keeps an allow edge on the second standing while it
// sleeps, which is exactly the RAG state a blocked acquisition produces —
// so the test cannot hang, only fail.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "src/core/runtime.h"
#include "src/persist/file.h"
#include "src/stack/annotation.h"

namespace dimmunix {
namespace {

constexpr LockId kLock1 = kGlobalLockBit | 0xA1;
constexpr LockId kLock2 = kGlobalLockBit | 0xB2;

struct Paths {
  std::string history;
  std::string arena;
};

Paths TestPaths() {
  const std::string stem = (std::filesystem::temp_directory_path() /
                            ("ipc_immunity_" + std::to_string(::getpid())))
                               .string();
  return Paths{stem + ".hist", stem + ".arena"};
}

Config ChildConfig(const Paths& paths) {
  Config config;
  config.history_path = paths.history;
  config.ipc_path = paths.arena;
  config.ipc_bridge_period = std::chrono::milliseconds(20);
  config.monitor_period = std::chrono::milliseconds(20);
  config.yield_timeout = std::chrono::milliseconds(3000);
  return config;
}

// One side of the AB-BA pattern. Returns the child's exit code:
//   0 = completed;  +1 = at least one avoidance yield happened;
//   10+ = error.
int RunSide(const Paths& paths, bool side_a, bool expect_detection) {
  Runtime rt(ChildConfig(paths));
  if (rt.ipc_bridge() == nullptr) {
    return 10;
  }
  const LockId first = side_a ? kLock1 : kLock2;
  const LockId second = side_a ? kLock2 : kLock1;
  static const Frame frame_a = FrameFromName("ipc_immunity::side_a");
  static const Frame frame_b = FrameFromName("ipc_immunity::side_b");
  ScopedFrame scope(side_a ? frame_a : frame_b);

  if (!side_a) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));  // stagger
  }
  // First lock: in run 2 the staggered side yields here until the peer's
  // release is mirrored out of the arena (bounded by yield_timeout).
  AcquireOp op_first = rt.BeginAcquire(first, AcquireMode::kExclusive);
  if (!op_first.Granted()) {
    return 11;
  }
  op_first.Commit();

  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  // Second lock: hold the allow edge standing for a while — the RAG state
  // of a blocked acquisition — then retract instead of really blocking.
  AcquireOp op_second = rt.BeginAcquire(second, AcquireMode::kExclusive);
  if (op_second.Granted()) {
    if (expect_detection) {
      // Keep the cross-process cycle standing long enough for both
      // monitors (τ = 20 ms) to see it.
      std::this_thread::sleep_for(std::chrono::milliseconds(800));
      op_second.Cancel();
    } else {
      op_second.Commit();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      rt.EndRelease(second);
    }
  }
  rt.EndRelease(first);

  const bool yielded = rt.engine().stats().yields.load() > 0;
  if (expect_detection) {
    // Give the monitor one more period to drain + archive, then require
    // the detection to have happened in at least one process — this one
    // reports its own view.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return rt.monitor().stats().deadlocks_detected.load() > 0 ? 0 : 12;
  }
  return yielded ? 1 : 0;
}

int ForkSide(const Paths& paths, bool side_a, bool expect_detection) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::_exit(RunSide(paths, side_a, expect_detection));
  }
  return pid;
}

int WaitFor(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : 100 + WTERMSIG(status);
}

TEST(IpcImmunityTest, TwoProcessCycleIsDetectedThenAvoided) {
  const Paths paths = TestPaths();
  persist::RemoveHistoryFiles(paths.history);
  std::filesystem::remove(paths.arena);

  // Run 1: the cycle forms; both processes must detect it (each one sees
  // the full cycle through mirrored edges) and the signature must reach
  // the shared history.
  {
    const pid_t a = ForkSide(paths, /*side_a=*/true, /*expect_detection=*/true);
    const pid_t b = ForkSide(paths, /*side_a=*/false, /*expect_detection=*/true);
    EXPECT_EQ(WaitFor(a), 0) << "side A must detect the cross-process deadlock";
    EXPECT_EQ(WaitFor(b), 0) << "side B must detect the cross-process deadlock";
  }
  ASSERT_TRUE(std::filesystem::exists(paths.history));

  // Run 2: fresh incarnations are immune — the staggered side yields once,
  // both complete. Exit codes: A completes without yielding (0), B yields
  // at its first lock (1).
  {
    const pid_t a = ForkSide(paths, /*side_a=*/true, /*expect_detection=*/false);
    const pid_t b = ForkSide(paths, /*side_a=*/false, /*expect_detection=*/false);
    const int code_a = WaitFor(a);
    const int code_b = WaitFor(b);
    EXPECT_LE(code_a, 1) << "side A must complete";
    EXPECT_LE(code_b, 1) << "side B must complete";
    EXPECT_EQ(code_a + code_b, 1) << "exactly one side should have yielded";
  }

  persist::RemoveHistoryFiles(paths.history);
  std::filesystem::remove(paths.arena);
}

TEST(IpcImmunityTest, SigkilledHolderIsReapedAndPeerProceeds) {
  const Paths paths = TestPaths();
  persist::RemoveHistoryFiles(paths.history);
  std::filesystem::remove(paths.arena);

  // A child claims the arena and holds a global lock, then is SIGKILL'd.
  int ready[2];
  ASSERT_EQ(::pipe(ready), 0);
  const pid_t child = ::fork();
  if (child == 0) {
    Runtime rt(ChildConfig(paths));
    ScopedFrame scope(FrameFromName("ipc_immunity::doomed"));
    AcquireOp op = rt.BeginAcquire(kLock1, AcquireMode::kExclusive);
    op.Commit();
    char byte = 'r';
    (void)!::write(ready[1], &byte, 1);
    for (;;) {
      ::pause();  // hold the lock until SIGKILL
    }
  }
  char byte = 0;
  ASSERT_EQ(::read(ready[0], &byte, 1), 1);
  ::close(ready[0]);
  ::close(ready[1]);

  Runtime rt(ChildConfig(paths));
  ASSERT_NE(rt.ipc_bridge(), nullptr);
  // The dead-to-be holder is currently visible...
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (rt.engine().LockOwner(kLock1) == kInvalidThreadId &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(rt.engine().LockOwner(kLock1), kForeignThreadBase);

  ::kill(child, SIGKILL);
  ::waitpid(child, nullptr, 0);

  // ...until a liveness sweep reclaims its slot: the phantom hold must
  // disappear without any cooperation from the corpse.
  const auto reap_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (rt.engine().LockOwner(kLock1) != kInvalidThreadId &&
         std::chrono::steady_clock::now() < reap_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(rt.engine().LockOwner(kLock1), kInvalidThreadId)
      << "a SIGKILL'd participant must never wedge the arena";

  persist::RemoveHistoryFiles(paths.history);
  std::filesystem::remove(paths.arena);
}

}  // namespace
}  // namespace dimmunix
