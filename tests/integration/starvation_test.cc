// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Avoidance-induced starvation, end to end (§3, §5.2): a signature whose
// avoidance traps one thread behind another *blocked* thread produces a
// yield cycle; the monitor detects it, saves a starvation signature, and
// (weak immunity) breaks the yield. The broken avoidance then leads to the
// original deadlock — "in the worst case, each new starvation situation
// will lead (after breaking) to the deadlock that was being avoided" — which
// the configured kBreakVictim recovery unwinds so the test can join.
//
// The choreography (signature = {[f], [f]} at depth 1):
//   T1: LockVia(A)           -> holds A with stack [f]
//   T2: plain B.Lock()       -> holds B with a native stack (no match)
//   T1: LockVia(B)           -> GO (no second distinct-lock tuple matches),
//                               allow edge (T1, B, [f]); blocks on raw B
//   T2: LockVia(A)           -> tentative (T2, A, [f]) + allow (T1, B, [f])
//                               instantiate the signature -> T2 yields on T1
//   T1 is blocked, T2 yields on T1  => yield cycle => starvation.

#include <gtest/gtest.h>

#include <latch>
#include <thread>

#include "src/stack/annotation.h"
#include "src/sync/mutex.h"

namespace dimmunix {
namespace {

// All signature-relevant acquisitions funnel through one function so their
// stacks are identical.
LockResult LockVia(Mutex& m) {
  static const Frame f = FrameFromName("starvation::LockVia");
  ScopedFrame scope(f);
  return m.Lock();
}

Config StarvationConfig() {
  Config config;
  config.monitor_period = std::chrono::milliseconds(10);
  config.default_match_depth = 1;
  config.deadlock_action = DeadlockAction::kBreakVictim;  // unwind the endgame
  config.yield_timeout = std::chrono::seconds(5);  // let the monitor act first
  return config;
}

void SeedSignature(Runtime& rt) {
  const StackId f_stack = rt.stacks().Intern({FrameFromName("starvation::LockVia")});
  bool added = false;
  rt.history().Add(SignatureKind::kDeadlock, {f_stack, f_stack}, 1, &added);
  ASSERT_TRUE(added);
  rt.engine().NotifyHistoryChanged();
}

// Returns when both threads have unwound (via completion or kBroken).
void RunChoreography(Runtime& rt) {
  Mutex a(rt);
  Mutex b(rt);
  std::latch start(2);
  std::thread t1([&] {
    start.arrive_and_wait();
    ASSERT_EQ(LockVia(a), LockResult::kOk);  // hold A with [f]
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    const LockResult r = LockVia(b);  // allow (T1, B, [f]); blocks on raw B
    if (r == LockResult::kOk) {
      b.Unlock();
    }
    a.Unlock();
  });
  std::thread t2([&] {
    start.arrive_and_wait();
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    ASSERT_EQ(b.Lock(), LockResult::kOk);  // native stack: no signature match
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    const LockResult r = LockVia(a);  // instantiates {[f],[f]} -> yield -> starvation
    if (r == LockResult::kOk) {
      a.Unlock();
    }
    b.Unlock();
  });
  t1.join();
  t2.join();
}

TEST(StarvationTest, InducedStarvationIsDetectedSavedAndBroken) {
  Runtime rt(StarvationConfig());
  SeedSignature(rt);
  RunChoreography(rt);

  const auto& mstats = rt.monitor().stats();
  EXPECT_GE(rt.engine().stats().yields.load(), 1u);
  EXPECT_GE(mstats.starvations_detected.load(), 1u);
  EXPECT_GE(mstats.starvations_broken.load(), 1u);
  // The starvation signature is archived like a deadlock (§5.2).
  bool has_starvation_sig = false;
  rt.history().ForEach([&](int, const Signature& sig) {
    has_starvation_sig = has_starvation_sig || sig.kind == SignatureKind::kStarvation;
  });
  EXPECT_TRUE(has_starvation_sig);
  // Breaking the starvation led to the avoided deadlock, which recovery
  // unwound (the paper's n + k occurrences argument, §5.4).
  EXPECT_GE(mstats.deadlocks_detected.load(), 1u);
}

TEST(StarvationTest, StrongImmunityRequestsRestartOnStarvation) {
  Config config = StarvationConfig();
  config.immunity = ImmunityMode::kStrong;
  Runtime rt(config);
  SeedSignature(rt);

  std::atomic<bool> restart{false};
  rt.monitor().SetRestartHook([&] {
    restart.store(true);
    // A real deployment would exec() itself; emulate by breaking every
    // thread's yield so the choreography unwinds (the deadlock endgame is
    // then handled by kBreakVictim).
    for (ThreadId t = 0; t < 8; ++t) {
      rt.engine().BreakYield(t);
    }
  });
  RunChoreography(rt);
  EXPECT_TRUE(restart.load());
  EXPECT_GE(rt.monitor().stats().restarts_requested.load(), 1u);
  EXPECT_GE(rt.monitor().stats().starvations_detected.load(), 1u);
}

}  // namespace
}  // namespace dimmunix
