// Copyright (c) dimmunix-cpp authors. MIT license.
//
// In-process deadlock recovery through the §3 resolution hook: with
// DeadlockAction::kBreakVictim the monitor cancels one victim's pending
// acquisition, whose Lock() returns kBroken — the application-level handler
// then backs out, letting the other thread finish.

#include <gtest/gtest.h>

#include <latch>
#include <thread>

#include "src/stack/annotation.h"
#include "src/sync/mutex.h"

namespace dimmunix {
namespace {

TEST(RecoveryTest, BreakVictimUnwindsRealDeadlock) {
  Config config;
  config.monitor_period = std::chrono::milliseconds(10);
  config.deadlock_action = DeadlockAction::kBreakVictim;
  Runtime rt(config);
  Mutex a(rt);
  Mutex b(rt);

  std::atomic<int> completed{0};
  std::atomic<int> broken{0};
  std::latch start(2);

  auto body = [&](Mutex& first, Mutex& second, const char* frame_name) {
    ScopedFrame frame(FrameFromName(frame_name));
    start.arrive_and_wait();
    ASSERT_EQ(first.Lock(), LockResult::kOk);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    const LockResult result = second.Lock();
    if (result == LockResult::kOk) {
      second.Unlock();
      completed.fetch_add(1);
    } else if (result == LockResult::kBroken) {
      broken.fetch_add(1);  // application-level back-out
    }
    first.Unlock();
  };

  std::thread t1([&] { body(a, b, "recovery::t1"); });
  std::thread t2([&] { body(b, a, "recovery::t2"); });
  t1.join();
  t2.join();

  // One thread was broken out, the other completed.
  EXPECT_EQ(broken.load(), 1);
  EXPECT_EQ(completed.load(), 1);
  EXPECT_GE(rt.monitor().stats().deadlocks_detected.load(), 1u);
  EXPECT_GE(rt.engine().stats().broken_acquisitions.load(), 1u);
  // And the signature was archived: the program is immune from now on.
  EXPECT_GE(rt.history().size(), 1u);
}

TEST(RecoveryTest, HookObservesCycleBeforeRecovery) {
  Config config;
  config.monitor_period = std::chrono::milliseconds(10);
  config.deadlock_action = DeadlockAction::kBreakVictim;
  Runtime rt(config);
  Mutex a(rt);
  Mutex b(rt);

  std::atomic<int> hook_threads{0};
  rt.monitor().SetDeadlockHook([&](const DeadlockCycle& cycle, int index) {
    hook_threads.store(static_cast<int>(cycle.threads.size()));
    EXPECT_GE(index, 0);
  });

  std::latch start(2);
  auto body = [&](Mutex& first, Mutex& second, const char* frame_name) {
    ScopedFrame frame(FrameFromName(frame_name));
    start.arrive_and_wait();
    (void)first.Lock();
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    const LockResult result = second.Lock();
    if (result == LockResult::kOk) {
      second.Unlock();
    }
    first.Unlock();
  };
  std::thread t1([&] { body(a, b, "hook::t1"); });
  std::thread t2([&] { body(b, a, "hook::t2"); });
  t1.join();
  t2.join();
  EXPECT_EQ(hook_threads.load(), 2);
}

}  // namespace
}  // namespace dimmunix
