// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Live-scrape test for `dimctl metrics`: an unmodified rwlock victim runs
// under the LD_PRELOAD shim with a control socket; while it executes its
// immunized (second) run, this test scrapes the Prometheus exposition off
// the live socket like a node agent would. The scrape must parse as
// Prometheus text format and show the avoidance actually happening: a
// non-zero yield counter and a populated acquire-latency histogram.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>

#include "src/benchlib/trial.h"
#include "src/persist/file.h"

namespace dimmunix {
namespace {

#ifndef PRELOAD_SO_PATH
#define PRELOAD_SO_PATH ""
#endif
#ifndef RWLOCK_VICTIM_PATH
#define RWLOCK_VICTIM_PATH ""
#endif

// Raw one-shot control client (mirrors dimctl's protocol).
std::string ControlQuery(const std::string& socket_path, const std::string& line) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return "";
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  std::string reply;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
    const std::string request = line + "\n";
    (void)!::write(fd, request.data(), request.size());
    ::shutdown(fd, SHUT_WR);
    char buf[4096];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
      reply.append(buf, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return reply;
}

// Minimal Prometheus text-format parser: HELP/TYPE comments and
// `name[{labels}] <number>` samples only — exactly what a scraper accepts.
bool ParsePrometheusText(const std::string& body, std::string* why) {
  std::istringstream in(body);
  std::string line;
  int samples = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line.rfind("# HELP ", 0) == 0) {
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string family;
      std::string type;
      fields >> family >> type;
      if (type != "counter" && type != "gauge" && type != "histogram") {
        *why = "bad TYPE: " + line;
        return false;
      }
      continue;
    }
    if (line[0] == '#') {
      *why = "unknown comment: " + line;
      return false;
    }
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space + 1 >= line.size()) {
      *why = "sample without value: " + line;
      return false;
    }
    const std::string name = line.substr(0, space);
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos && name.back() != '}') {
      *why = "unterminated labels: " + line;
      return false;
    }
    for (std::size_t i = space + 1; i < line.size(); ++i) {
      const char c = line[i];
      if (!((c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e')) {
        *why = "non-numeric value: " + line;
        return false;
      }
    }
    ++samples;
  }
  if (samples == 0) {
    *why = "no samples";
    return false;
  }
  return true;
}

// Value of the sample line starting with `name ` (exact, unlabeled), or -1.
long long SampleValue(const std::string& body, const std::string& name) {
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(name + " ", 0) == 0) {
      return std::stoll(line.substr(name.size() + 1));
    }
  }
  return -1;
}

TEST(MetricsScrapeTest, LiveVictimExposesYieldsAndLatencyHistogram) {
  ASSERT_TRUE(std::filesystem::exists(PRELOAD_SO_PATH));
  ASSERT_TRUE(std::filesystem::exists(RWLOCK_VICTIM_PATH));
  const std::string stem = (std::filesystem::temp_directory_path() /
                            ("metrics_scrape_" + std::to_string(::getpid())))
                               .string();
  const std::string history = stem + ".hist";
  const std::string socket_path = stem + ".sock";
  persist::RemoveHistoryFiles(history);
  std::filesystem::remove(socket_path);

  // Run 1: learn the signature (the victim deadlocks and is killed).
  TrialResult first = RunTrial(
      [&] {
        setenv("LD_PRELOAD", PRELOAD_SO_PATH, 1);
        setenv("DIMMUNIX_HISTORY", history.c_str(), 1);
        setenv("DIMMUNIX_TAU_MS", "20", 1);
        execl(RWLOCK_VICTIM_PATH, RWLOCK_VICTIM_PATH, static_cast<char*>(nullptr));
        return 127;
      },
      std::chrono::seconds(3));
  ASSERT_TRUE(first.deadlocked) << "victim should deadlock on first run";
  ASSERT_TRUE(std::filesystem::exists(history));

  // Run 2: immune — avoidance yields instead of deadlocking. Scrape the
  // control socket the whole time, keeping the newest parseable reply.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    setenv("LD_PRELOAD", PRELOAD_SO_PATH, 1);
    setenv("DIMMUNIX_HISTORY", history.c_str(), 1);
    setenv("DIMMUNIX_CONTROL", socket_path.c_str(), 1);
    setenv("DIMMUNIX_TAU_MS", "20", 1);
    execl(RWLOCK_VICTIM_PATH, RWLOCK_VICTIM_PATH, static_cast<char*>(nullptr));
    ::_exit(127);
  }

  // Counters are monotonic, so the maximum seen across scrapes is what the
  // final exposition contained — robust even if the victim exits between
  // the last yield and the next poll.
  std::string last_good;
  long long max_yields = -1;
  long long max_latency_count = -1;
  long long max_requests = -1;
  int scrapes = 0;
  int status = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    const pid_t done = ::waitpid(child, &status, WNOHANG);
    const std::string reply = ControlQuery(socket_path, "metrics");
    if (reply.rfind("ok\n", 0) == 0) {
      last_good = reply.substr(3);
      ++scrapes;
      max_yields = std::max(max_yields, SampleValue(last_good, "dimmunix_avoidance_yields_total"));
      max_latency_count =
          std::max(max_latency_count, SampleValue(last_good, "dimmunix_acquire_latency_ns_count"));
      max_requests = std::max(max_requests, SampleValue(last_good, "dimmunix_lock_requests_total"));
    }
    if (done == child) {
      break;
    }
    if (std::chrono::steady_clock::now() > deadline) {
      ::kill(child, SIGKILL);
      ::waitpid(child, &status, 0);
      FAIL() << "immunized victim did not finish within 10s";
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "immunized victim must complete cleanly";
  ASSERT_GT(scrapes, 0) << "no successful scrape off the live control socket";

  std::string why;
  EXPECT_TRUE(ParsePrometheusText(last_good, &why)) << why;
  // The avoided deadlock is visible in the metrics: the engine yielded at
  // least once, and every acquisition fed the latency histogram.
  EXPECT_GT(max_yields, 0) << last_good;
  EXPECT_GT(max_latency_count, 0) << last_good;
  EXPECT_GT(max_requests, 0);

  persist::RemoveHistoryFiles(history);
  std::filesystem::remove(socket_path);
}

}  // namespace
}  // namespace dimmunix
