// Copyright (c) dimmunix-cpp authors. MIT license.
//
// End-to-end test of the LD_PRELOAD pthread interposition shim (§6): an
// unmodified pthreads binary (examples/preload_victim) deadlocks on its
// first run; the shim's monitor persists the signature; the second run of
// the very same binary completes. No recompilation, no source access.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "src/benchlib/trial.h"
#include "src/persist/file.h"

namespace dimmunix {
namespace {

#ifndef PRELOAD_SO_PATH
#define PRELOAD_SO_PATH ""
#endif
#ifndef VICTIM_PATH
#define VICTIM_PATH ""
#endif
#ifndef RWLOCK_VICTIM_PATH
#define RWLOCK_VICTIM_PATH ""
#endif
#ifndef CONDVAR_VICTIM_PATH
#define CONDVAR_VICTIM_PATH ""
#endif
#ifndef ROBUST_VICTIM_PATH
#define ROBUST_VICTIM_PATH ""
#endif

TrialResult RunVictimBinary(const char* victim, const std::string& history) {
  return RunTrial(
      [&] {
        setenv("LD_PRELOAD", PRELOAD_SO_PATH, 1);
        setenv("DIMMUNIX_HISTORY", history.c_str(), 1);
        setenv("DIMMUNIX_TAU_MS", "20", 1);
        execl(victim, victim, static_cast<char*>(nullptr));
        return 127;  // exec failed
      },
      std::chrono::seconds(3));
}

TrialResult RunVictim(const std::string& history) {
  return RunVictimBinary(VICTIM_PATH, history);
}

TEST(PreloadTest, UnmodifiedBinaryAcquiresImmunity) {
  ASSERT_TRUE(std::filesystem::exists(PRELOAD_SO_PATH));
  ASSERT_TRUE(std::filesystem::exists(VICTIM_PATH));
  const std::string history =
      (std::filesystem::temp_directory_path() /
       ("preload_" + std::to_string(::getpid()) + ".hist"))
          .string();
  persist::RemoveHistoryFiles(history);

  // Run 1: the victim deadlocks; the shim's monitor captures the signature
  // before the harness kills the process.
  TrialResult first = RunVictim(history);
  EXPECT_TRUE(first.deadlocked) << "victim should deadlock on first run";
  EXPECT_TRUE(std::filesystem::exists(history)) << "signature must be persisted";

  // Run 2: same binary, same command — now immune.
  TrialResult second = RunVictim(history);
  EXPECT_TRUE(second.completed) << "immunized victim must complete";
  EXPECT_EQ(second.exit_code, 0);
  persist::RemoveHistoryFiles(history);
}

TEST(PreloadTest, UnmodifiedRwlockBinaryAcquiresImmunity) {
  // Same protocol as above, but the victim deadlocks through
  // pthread_rwlock_{wrlock,rdlock}: writer-vs-writer through a reader. The
  // shim's rwlock wrappers run the acquisition port in the right mode, so
  // the shared/exclusive cycle is detected, persisted, and avoided.
  ASSERT_TRUE(std::filesystem::exists(PRELOAD_SO_PATH));
  ASSERT_TRUE(std::filesystem::exists(RWLOCK_VICTIM_PATH));
  const std::string history =
      (std::filesystem::temp_directory_path() /
       ("preload_rwlock_" + std::to_string(::getpid()) + ".hist"))
          .string();
  persist::RemoveHistoryFiles(history);

  TrialResult first = RunVictimBinary(RWLOCK_VICTIM_PATH, history);
  EXPECT_TRUE(first.deadlocked) << "rwlock victim should deadlock on first run";
  EXPECT_TRUE(std::filesystem::exists(history)) << "signature must be persisted";

  TrialResult second = RunVictimBinary(RWLOCK_VICTIM_PATH, history);
  EXPECT_TRUE(second.completed) << "immunized rwlock victim must complete";
  EXPECT_EQ(second.exit_code, 0);
  persist::RemoveHistoryFiles(history);
}

// Raw one-shot control client (mirrors dimctl's protocol).
std::string ControlQuery(const std::string& socket_path, const std::string& line) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return "<path too long>";
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return "<socket failed>";
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "<connect failed>";
  }
  const std::string request = line + "\n";
  (void)!::write(fd, request.data(), request.size());
  ::shutdown(fd, SHUT_WR);
  std::string reply;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

TEST(PreloadTest, CondWaitReleasesTheMutexInTheOwnerMap) {
  // Regression for the pthread_cond_wait interposition: while the victim's
  // waiter thread is parked inside cond_wait, the mutex it entered with is
  // factually released — the engine's owner map (via `rag` over the control
  // socket) must NOT credit any thread with it. Without the wrapper the
  // phantom hold stays for the whole wait.
  ASSERT_TRUE(std::filesystem::exists(PRELOAD_SO_PATH));
  ASSERT_TRUE(std::filesystem::exists(CONDVAR_VICTIM_PATH));
  const std::string stem = (std::filesystem::temp_directory_path() /
                            ("condvar_" + std::to_string(::getpid())))
                               .string();
  const std::string socket_path = stem + ".sock";
  const std::string out_path = stem + ".out";
  std::filesystem::remove(socket_path);
  std::filesystem::remove(out_path);

  const pid_t child = ::fork();
  if (child == 0) {
    const int out = ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    ::dup2(out, STDOUT_FILENO);
    setenv("LD_PRELOAD", PRELOAD_SO_PATH, 1);
    setenv("DIMMUNIX_CONTROL", socket_path.c_str(), 1);
    setenv("DIMMUNIX_TAU_MS", "20", 1);
    execl(CONDVAR_VICTIM_PATH, CONDVAR_VICTIM_PATH, static_cast<char*>(nullptr));
    ::_exit(127);
  }

  // The victim prints its mutex's LockId, then keeps the waiter parked in
  // pthread_cond_wait for ~700 ms.
  std::string lock_id;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (lock_id.empty() && std::chrono::steady_clock::now() < deadline) {
    std::ifstream out(out_path);
    std::string line;
    while (std::getline(out, line)) {
      if (line.rfind("mutex_lock_id=", 0) == 0) {
        lock_id = line.substr(std::strlen("mutex_lock_id="));
      }
    }
    if (lock_id.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  ASSERT_FALSE(lock_id.empty()) << "victim never reported its mutex id";
  // Give the waiter time to lock the mutex and park inside cond_wait.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));

  std::string rag;
  for (int attempt = 0; attempt < 50; ++attempt) {
    rag = ControlQuery(socket_path, "rag");
    if (rag.rfind("ok\n", 0) == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(rag.rfind("ok\n", 0), 0u) << rag;
  EXPECT_EQ(rag.find("held_locks=" + lock_id), std::string::npos)
      << "waiter parked in cond_wait must not be credited with the mutex:\n"
      << rag;
  EXPECT_EQ(rag.find(lock_id + ":X"), std::string::npos)
      << "no thread may hold the mutex during the wait:\n"
      << rag;

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  std::ifstream out(out_path);
  std::stringstream content;
  content << out.rdbuf();
  EXPECT_NE(content.str().find("completed without deadlock"), std::string::npos)
      << "the signal/reacquire path must still work under interposition";
  std::filesystem::remove(socket_path);
  std::filesystem::remove(out_path);
}

TEST(PreloadTest, RobustMutexOwnerDeathRecoversUnderTheShim) {
  // Regression for EOWNERDEAD handling: the victim's holder dies (a thread
  // exits holding a robust mutex; a forked child SIGKILLs itself holding a
  // robust+pshared one). The next lock returns EOWNERDEAD — a *successful*
  // acquisition. The wrapper must commit it, reap the corpse's engine-side
  // hold, and hand EOWNERDEAD through unchanged so the app can run
  // pthread_mutex_consistent. A leaked hold would make the victim's relock
  // hang until the 3 s harness timeout reports a deadlock.
  ASSERT_TRUE(std::filesystem::exists(PRELOAD_SO_PATH));
  ASSERT_TRUE(std::filesystem::exists(ROBUST_VICTIM_PATH));
  const std::string history =
      (std::filesystem::temp_directory_path() /
       ("preload_robust_" + std::to_string(::getpid()) + ".hist"))
          .string();
  persist::RemoveHistoryFiles(history);

  TrialResult result = RunVictimBinary(ROBUST_VICTIM_PATH, history);
  EXPECT_TRUE(result.completed) << "robust victim must complete under the shim";
  EXPECT_EQ(result.exit_code, 0);
  persist::RemoveHistoryFiles(history);

  // Control: the same binary without the shim behaves identically, i.e. the
  // victim itself is a valid robust-mutex program, not a shim artifact.
  TrialResult bare = RunTrial(
      [&] {
        unsetenv("LD_PRELOAD");
        execl(ROBUST_VICTIM_PATH, ROBUST_VICTIM_PATH, static_cast<char*>(nullptr));
        return 127;
      },
      std::chrono::seconds(3));
  EXPECT_TRUE(bare.completed);
  EXPECT_EQ(bare.exit_code, 0);
}

TEST(PreloadTest, ShimIsHarmlessOnDeadlockFreePrograms) {
  // /bin/true under the shim: loads, runs, exits 0.
  TrialResult result = RunTrial(
      [&] {
        setenv("LD_PRELOAD", PRELOAD_SO_PATH, 1);
        execl("/bin/true", "/bin/true", static_cast<char*>(nullptr));
        return 127;
      },
      std::chrono::seconds(3));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.exit_code, 0);
}

}  // namespace
}  // namespace dimmunix
