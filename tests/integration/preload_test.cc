// Copyright (c) dimmunix-cpp authors. MIT license.
//
// End-to-end test of the LD_PRELOAD pthread interposition shim (§6): an
// unmodified pthreads binary (examples/preload_victim) deadlocks on its
// first run; the shim's monitor persists the signature; the second run of
// the very same binary completes. No recompilation, no source access.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "src/benchlib/trial.h"
#include "src/persist/file.h"

namespace dimmunix {
namespace {

#ifndef PRELOAD_SO_PATH
#define PRELOAD_SO_PATH ""
#endif
#ifndef VICTIM_PATH
#define VICTIM_PATH ""
#endif
#ifndef RWLOCK_VICTIM_PATH
#define RWLOCK_VICTIM_PATH ""
#endif

TrialResult RunVictimBinary(const char* victim, const std::string& history) {
  return RunTrial(
      [&] {
        setenv("LD_PRELOAD", PRELOAD_SO_PATH, 1);
        setenv("DIMMUNIX_HISTORY", history.c_str(), 1);
        setenv("DIMMUNIX_TAU_MS", "20", 1);
        execl(victim, victim, static_cast<char*>(nullptr));
        return 127;  // exec failed
      },
      std::chrono::seconds(3));
}

TrialResult RunVictim(const std::string& history) {
  return RunVictimBinary(VICTIM_PATH, history);
}

TEST(PreloadTest, UnmodifiedBinaryAcquiresImmunity) {
  ASSERT_TRUE(std::filesystem::exists(PRELOAD_SO_PATH));
  ASSERT_TRUE(std::filesystem::exists(VICTIM_PATH));
  const std::string history =
      (std::filesystem::temp_directory_path() /
       ("preload_" + std::to_string(::getpid()) + ".hist"))
          .string();
  persist::RemoveHistoryFiles(history);

  // Run 1: the victim deadlocks; the shim's monitor captures the signature
  // before the harness kills the process.
  TrialResult first = RunVictim(history);
  EXPECT_TRUE(first.deadlocked) << "victim should deadlock on first run";
  EXPECT_TRUE(std::filesystem::exists(history)) << "signature must be persisted";

  // Run 2: same binary, same command — now immune.
  TrialResult second = RunVictim(history);
  EXPECT_TRUE(second.completed) << "immunized victim must complete";
  EXPECT_EQ(second.exit_code, 0);
  persist::RemoveHistoryFiles(history);
}

TEST(PreloadTest, UnmodifiedRwlockBinaryAcquiresImmunity) {
  // Same protocol as above, but the victim deadlocks through
  // pthread_rwlock_{wrlock,rdlock}: writer-vs-writer through a reader. The
  // shim's rwlock wrappers run the acquisition port in the right mode, so
  // the shared/exclusive cycle is detected, persisted, and avoided.
  ASSERT_TRUE(std::filesystem::exists(PRELOAD_SO_PATH));
  ASSERT_TRUE(std::filesystem::exists(RWLOCK_VICTIM_PATH));
  const std::string history =
      (std::filesystem::temp_directory_path() /
       ("preload_rwlock_" + std::to_string(::getpid()) + ".hist"))
          .string();
  persist::RemoveHistoryFiles(history);

  TrialResult first = RunVictimBinary(RWLOCK_VICTIM_PATH, history);
  EXPECT_TRUE(first.deadlocked) << "rwlock victim should deadlock on first run";
  EXPECT_TRUE(std::filesystem::exists(history)) << "signature must be persisted";

  TrialResult second = RunVictimBinary(RWLOCK_VICTIM_PATH, history);
  EXPECT_TRUE(second.completed) << "immunized rwlock victim must complete";
  EXPECT_EQ(second.exit_code, 0);
  persist::RemoveHistoryFiles(history);
}

TEST(PreloadTest, ShimIsHarmlessOnDeadlockFreePrograms) {
  // /bin/true under the shim: loads, runs, exits 0.
  TrialResult result = RunTrial(
      [&] {
        setenv("LD_PRELOAD", PRELOAD_SO_PATH, 1);
        execl("/bin/true", "/bin/true", static_cast<char*>(nullptr));
        return 127;
      },
      std::chrono::seconds(3));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.exit_code, 0);
}

}  // namespace
}  // namespace dimmunix
