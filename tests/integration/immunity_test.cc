// Copyright (c) dimmunix-cpp authors. MIT license.
//
// End-to-end deadlock immunity (§3, §7.1): the three-configuration protocol
// of the paper's evaluation, fork-isolated so deadlocked incarnations can be
// killed like real restarts.
//
//   1. unprotected      -> deadlocks
//   2. full Dimmunix, yields ignored -> still deadlocks (instrumentation
//      timing does not mask the bug)
//   3. full Dimmunix with history    -> completes

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <latch>
#include <thread>

#include "src/benchlib/trial.h"
#include "src/persist/file.h"
#include "src/stack/annotation.h"
#include "src/sync/mutex.h"

namespace dimmunix {
namespace {

constexpr auto kTrialTimeout = std::chrono::seconds(2);

void LockInOrder(Mutex& first, Mutex& second, const Frame frame) {
  ScopedFrame scope(frame);
  std::lock_guard<Mutex> g1(first);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  std::lock_guard<Mutex> g2(second);
}

// Runs the canonical AB-BA scenario; returns the engine yield count.
int RunScenario(const Config& base) {
  Config config = base;
  config.monitor_period = std::chrono::milliseconds(10);
  Runtime rt(config);
  Mutex a(rt);
  Mutex b(rt);
  static const Frame f1 = FrameFromName("immunity::path1");
  static const Frame f2 = FrameFromName("immunity::path2");
  std::latch start(2);
  std::thread t1([&] {
    start.arrive_and_wait();
    LockInOrder(a, b, f1);
  });
  std::thread t2([&] {
    start.arrive_and_wait();
    LockInOrder(b, a, f2);
  });
  t1.join();
  t2.join();
  return static_cast<int>(rt.engine().stats().yields.load());
}

class ImmunityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    history_ = (std::filesystem::temp_directory_path() /
                ("immunity_" + std::to_string(::getpid()) + ".hist"))
                   .string();
    persist::RemoveHistoryFiles(history_);
  }
  void TearDown() override { persist::RemoveHistoryFiles(history_); }
  std::string history_;
};

TEST_F(ImmunityTest, FullThreeConfigurationProtocol) {
  // Config 1: unprotected (no history file, avoidance finds nothing) — the
  // exploit deadlocks deterministically.
  TrialResult unprotected = RunTrial(
      [&] {
        Config config;
        RunScenario(config);
        return 0;
      },
      kTrialTimeout);
  EXPECT_TRUE(unprotected.deadlocked) << "exploit should deadlock without immunity";

  // Capture the signature: run with a history file; the monitor saves the
  // cycle before the child is killed.
  TrialResult capture = RunTrial(
      [&] {
        Config config;
        config.history_path = history_;
        RunScenario(config);
        return 0;
      },
      kTrialTimeout);
  EXPECT_TRUE(capture.deadlocked);
  ASSERT_TRUE(std::filesystem::exists(history_)) << "signature must be persisted";

  // Config 2: full instrumentation, yields ignored — deadlock still occurs
  // (§7.1.1: "timing changes introduced by the instrumentation did not
  // affect the deadlock").
  TrialResult ignored = RunTrial(
      [&] {
        Config config;
        config.history_path = history_;
        config.ignore_yield_decisions = true;
        RunScenario(config);
        return 0;
      },
      kTrialTimeout);
  EXPECT_TRUE(ignored.deadlocked);

  // Config 3: full Dimmunix with the signature in history — completes, with
  // at least one yield.
  TrialResult immune = RunTrial(
      [&] {
        Config config;
        config.history_path = history_;
        const int yields = RunScenario(config);
        return yields > 0 ? 0 : 3;
      },
      kTrialTimeout);
  EXPECT_TRUE(immune.completed) << "immunized run must complete";
  EXPECT_EQ(immune.exit_code, 0) << "immunized run must actually yield";
}

TEST_F(ImmunityTest, ImmunityPersistsAcrossManyIncarnations) {
  // Capture once...
  TrialResult capture = RunTrial(
      [&] {
        Config config;
        config.history_path = history_;
        RunScenario(config);
        return 0;
      },
      kTrialTimeout);
  ASSERT_TRUE(capture.deadlocked);
  // ...then every subsequent incarnation completes (strong regression
  // of the "resistance against future occurrences" property).
  for (int incarnation = 0; incarnation < 3; ++incarnation) {
    TrialResult run = RunTrial(
        [&] {
          Config config;
          config.history_path = history_;
          RunScenario(config);
          return 0;
        },
        kTrialTimeout);
    EXPECT_TRUE(run.completed) << "incarnation " << incarnation;
  }
}

TEST_F(ImmunityTest, HotReloadImmunizesRunningProcess) {
  // §8: "it can be 'patched' against deadlock bugs by simply inserting the
  // corresponding bug's signature into the deadlock history and asking
  // Dimmunix to reload the history."
  // First capture a signature into the file.
  TrialResult capture = RunTrial(
      [&] {
        Config config;
        config.history_path = history_;
        RunScenario(config);
        return 0;
      },
      kTrialTimeout);
  ASSERT_TRUE(capture.deadlocked);

  // A fresh runtime starts with load disabled (empty immune system)...
  TrialResult hot = RunTrial(
      [&] {
        Config config;
        config.history_path = history_;
        config.load_history_on_init = false;
        config.monitor_period = std::chrono::milliseconds(10);
        Runtime rt(config);
        if (rt.history().size() != 0) {
          return 4;
        }
        // ...the vendor ships the signature; reload without restarting.
        if (!rt.ReloadHistory() || rt.history().size() == 0) {
          return 5;
        }
        Mutex a(rt);
        Mutex b(rt);
        std::latch start(2);
        std::thread t1([&] {
          start.arrive_and_wait();
          LockInOrder(a, b, FrameFromName("immunity::path1"));
        });
        std::thread t2([&] {
          start.arrive_and_wait();
          LockInOrder(b, a, FrameFromName("immunity::path2"));
        });
        t1.join();
        t2.join();
        return 0;
      },
      kTrialTimeout);
  EXPECT_TRUE(hot.completed);
  EXPECT_EQ(hot.exit_code, 0);
}

TEST_F(ImmunityTest, DeadlockFreeProgramIsNeverPerturbed) {
  // §5.7: "a program that never deadlocks will have a perpetually empty
  // history, which means no avoidance will ever be done."
  Config config;
  config.history_path = history_;
  config.start_monitor = false;
  Runtime rt(config);
  Mutex a(rt);
  Mutex b(rt);
  // Consistent lock order: no deadlock possible.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        std::lock_guard<Mutex> ga(a);
        std::lock_guard<Mutex> gb(b);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  rt.monitor().RunOnce();
  EXPECT_EQ(rt.history().size(), 0u);
  EXPECT_EQ(rt.engine().stats().yields.load(), 0u);
}

}  // namespace
}  // namespace dimmunix
