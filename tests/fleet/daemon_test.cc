// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Tests for fleet::Daemon: two-daemon loopback convergence (records, knob
// epochs, disabled flags), push/pull directionality, the command plane
// (fleet status / peers / exec), and the allowlist rejection path. Every
// daemon here listens on an ephemeral loopback port with its own temp
// history files.

#include "src/fleet/daemon.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>

#include "src/fleet/net.h"
#include "src/persist/file.h"

namespace dimmunix {
namespace fleet {
namespace {

persist::SignatureRecord MakeRecord(std::uint64_t seed, std::uint16_t epoch = 0,
                                    bool disabled = false) {
  persist::SignatureRecord rec;
  rec.knob_epoch = epoch;
  rec.disabled = disabled;
  rec.stacks.push_back({Frame{seed * 31 + 1}, Frame{seed * 31 + 2}});
  rec.stacks.push_back({Frame{seed * 97 + 5}});
  rec.Canonicalize();
  return rec;
}

class DaemonTest : public ::testing::Test {
 protected:
  std::string TempHistory(const char* tag) {
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("dimx_fleet_" + std::string(tag) + "_" + std::to_string(::getpid()) + "_" +
          std::to_string(counter_++)))
            .string();
    persist::RemoveHistoryFiles(path);
    cleanup_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& path : cleanup_) {
      persist::RemoveHistoryFiles(path);
    }
  }

  static void Seed(const std::string& path, const persist::HistoryImage& image) {
    std::string error;
    ASSERT_TRUE(persist::SaveHistoryFile(path, image, &error)) << error;
  }

  static persist::HistoryImage LoadFile(const std::string& path) {
    persist::HistoryImage image;
    (void)persist::LoadHistoryFile(path, &image);
    return image;
  }

  // Polls until `pred` holds; the deadline only bounds a broken test.
  static bool WaitFor(const std::function<bool()>& pred,
                      std::chrono::seconds timeout = std::chrono::seconds(30)) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
  }

  static DaemonOptions ServeOnly(const std::string& history) {
    DaemonOptions options;
    options.history_paths.push_back(history);
    options.gossip_period = std::chrono::milliseconds(0);
    return options;
  }

  int counter_ = 0;
  std::vector<std::string> cleanup_;
};

TEST_F(DaemonTest, StartRequiresAHistoryPath) {
  Daemon daemon{DaemonOptions{}};
  std::string error;
  EXPECT_FALSE(daemon.Start(&error));
  EXPECT_NE(error.find("history"), std::string::npos);
}

TEST_F(DaemonTest, OneSyncRoundConvergesBothSides) {
  const std::string history_a = TempHistory("a");
  const std::string history_b = TempHistory("b");
  persist::HistoryImage seed_a;
  seed_a.records.push_back(MakeRecord(1));
  Seed(history_a, seed_a);
  persist::HistoryImage seed_b;
  seed_b.records.push_back(MakeRecord(2));
  Seed(history_b, seed_b);

  Daemon a(ServeOnly(history_a));
  Daemon b(ServeOnly(history_b));
  std::string error;
  ASSERT_TRUE(a.Start(&error)) << error;
  ASSERT_TRUE(b.Start(&error)) << error;

  std::uint64_t in = 0;
  std::uint64_t out = 0;
  ASSERT_TRUE(b.SyncWith(a.listen_address(), /*do_send=*/true, /*do_merge=*/true, &in, &out,
                         &error))
      << error;
  EXPECT_EQ(in, 1u);   // learned a's record
  EXPECT_EQ(out, 1u);  // shipped b's record

  // One push-pull round: both files now hold the identical two-record union.
  EXPECT_EQ(LoadFile(history_a).records.size(), 2u);
  EXPECT_EQ(LoadFile(history_b).records.size(), 2u);
  EXPECT_TRUE(persist::DiffImages(LoadFile(history_a), LoadFile(history_b)).identical());

  const DaemonStatsSnapshot stats_b = b.stats();
  EXPECT_EQ(stats_b.rounds_ok, 1u);
  EXPECT_EQ(stats_b.records_new, 1u);
  EXPECT_GE(stats_b.last_sync_age_ms, 0);
  const DaemonStatsSnapshot stats_a = a.stats();
  EXPECT_EQ(stats_a.syncs_served, 1u);
  EXPECT_EQ(stats_a.records_new, 1u);
  // The learned record went through the propagation histogram on both sides.
  EXPECT_EQ(a.propagation_ms().count, 1u);
  EXPECT_EQ(b.propagation_ms().count, 1u);
}

TEST_F(DaemonTest, GossipConvergesAndPropagatesKnobChanges) {
  const std::string history_a = TempHistory("a");
  const std::string history_b = TempHistory("b");
  persist::HistoryImage seed_a;
  seed_a.records.push_back(MakeRecord(1));
  Seed(history_a, seed_a);
  persist::HistoryImage seed_b;
  seed_b.records.push_back(MakeRecord(2));
  Seed(history_b, seed_b);

  Daemon a(ServeOnly(history_a));
  std::string error;
  ASSERT_TRUE(a.Start(&error)) << error;

  DaemonOptions options_b;
  options_b.history_paths.push_back(history_b);
  options_b.peers.push_back(a.listen_address());
  options_b.gossip_period = std::chrono::milliseconds(25);
  Daemon b(options_b);
  ASSERT_TRUE(b.Start(&error)) << error;

  ASSERT_TRUE(WaitFor([&] {
    return persist::DiffImages(LoadFile(history_a), LoadFile(history_b)).identical() &&
           LoadFile(history_b).records.size() == 2;
  })) << "daemons never converged";

  // An operator action lands on host A: signature 1 disabled at epoch 1
  // (merged under the file lock, exactly like `history_tool disable`).
  persist::HistoryImage knob_change;
  knob_change.records.push_back(MakeRecord(1, /*epoch=*/1, /*disabled=*/true));
  ASSERT_TRUE(persist::MergeIntoFile(history_a, knob_change));

  // Within a few gossip rounds B holds the disabled copy — epoch wins.
  ASSERT_TRUE(WaitFor([&] {
    const persist::HistoryImage image = LoadFile(history_b);
    const int index = image.Find(knob_change.records[0]);
    return index >= 0 && image.records[index].disabled &&
           image.records[index].knob_epoch == 1;
  })) << "knob change never reached B";

  EXPECT_GE(b.stats().rounds_ok, 1u);
  EXPECT_GE(a.stats().syncs_served, 1u);
}

TEST_F(DaemonTest, PushShipsWithoutMerging) {
  const std::string history_a = TempHistory("a");
  const std::string history_b = TempHistory("b");
  persist::HistoryImage seed_a;
  seed_a.records.push_back(MakeRecord(1));
  Seed(history_a, seed_a);
  persist::HistoryImage seed_b;
  seed_b.records.push_back(MakeRecord(2));
  Seed(history_b, seed_b);

  Daemon a(ServeOnly(history_a));
  Daemon b(ServeOnly(history_b));
  std::string error;
  ASSERT_TRUE(a.Start(&error)) << error;
  ASSERT_TRUE(b.Start(&error)) << error;

  const std::string reply = b.HandleCommandLine("fleet push " + a.listen_address());
  ASSERT_EQ(reply.rfind("ok\n", 0), 0u) << reply;
  EXPECT_NE(reply.find("records_out=1\n"), std::string::npos) << reply;
  EXPECT_NE(reply.find("records_in=0\n"), std::string::npos) << reply;

  // A received b's record; b deliberately did not merge a's.
  EXPECT_EQ(LoadFile(history_a).records.size(), 2u);
  EXPECT_EQ(LoadFile(history_b).records.size(), 1u);
}

TEST_F(DaemonTest, PullMergesWithoutShipping) {
  const std::string history_a = TempHistory("a");
  const std::string history_b = TempHistory("b");
  persist::HistoryImage seed_a;
  seed_a.records.push_back(MakeRecord(1));
  Seed(history_a, seed_a);
  persist::HistoryImage seed_b;
  seed_b.records.push_back(MakeRecord(2));
  Seed(history_b, seed_b);

  Daemon a(ServeOnly(history_a));
  Daemon b(ServeOnly(history_b));
  std::string error;
  ASSERT_TRUE(a.Start(&error)) << error;
  ASSERT_TRUE(b.Start(&error)) << error;

  const std::string reply = b.HandleCommandLine("fleet pull " + a.listen_address());
  ASSERT_EQ(reply.rfind("ok\n", 0), 0u) << reply;
  EXPECT_NE(reply.find("records_in=1\n"), std::string::npos) << reply;
  EXPECT_NE(reply.find("records_out=0\n"), std::string::npos) << reply;

  // B merged a's record; a learned nothing.
  EXPECT_EQ(LoadFile(history_b).records.size(), 2u);
  EXPECT_EQ(LoadFile(history_a).records.size(), 1u);
}

TEST_F(DaemonTest, FleetStatusAndConfigReplies) {
  const std::string history = TempHistory("s");
  Seed(history, persist::HistoryImage{});
  DaemonOptions options = ServeOnly(history);
  options.peers.push_back("10.1.2.3:7077");  // never contacted (gossip off)
  Daemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  const std::string status = daemon.HandleCommandLine("fleet status");
  ASSERT_EQ(status.rfind("ok\n", 0), 0u) << status;
  EXPECT_NE(status.find("daemon=dimmunixd\n"), std::string::npos);
  EXPECT_NE(status.find("listen=" + daemon.listen_address() + "\n"), std::string::npos);
  EXPECT_NE(status.find("history=" + history + "\n"), std::string::npos);
  EXPECT_NE(status.find("peers=1\n"), std::string::npos);
  EXPECT_NE(status.find("last_sync_age_ms=-1\n"), std::string::npos);  // never synced
  EXPECT_NE(status.find("propagation_count=0\n"), std::string::npos);
  // `status` is an alias, for symmetry with the runtime control plane.
  EXPECT_EQ(daemon.HandleCommandLine("status"), status);

  const std::string config = daemon.HandleCommandLine("config");
  ASSERT_EQ(config.rfind("ok\n", 0), 0u) << config;
  EXPECT_NE(config.find("peer=10.1.2.3:7077\n"), std::string::npos);

  const std::string peers = daemon.HandleCommandLine("fleet peers");
  ASSERT_EQ(peers.rfind("ok\npeers=1\n", 0), 0u) << peers;
  EXPECT_NE(peers.find("peer 10.1.2.3:7077 rounds_ok=0"), std::string::npos) << peers;
}

TEST_F(DaemonTest, FleetExecFansOutToPeers) {
  const std::string history_a = TempHistory("a");
  const std::string history_b = TempHistory("b");
  Seed(history_a, persist::HistoryImage{});
  Seed(history_b, persist::HistoryImage{});

  Daemon a(ServeOnly(history_a));
  std::string error;
  ASSERT_TRUE(a.Start(&error)) << error;

  DaemonOptions options_b = ServeOnly(history_b);
  options_b.peers.push_back(a.listen_address());
  Daemon b(options_b);
  ASSERT_TRUE(b.Start(&error)) << error;

  const std::string reply = b.HandleCommandLine("fleet exec config");
  ASSERT_EQ(reply.rfind("ok\n", 0), 0u) << reply;
  EXPECT_NE(reply.find("== self ==\n"), std::string::npos) << reply;
  EXPECT_NE(reply.find("== " + a.listen_address() + " ==\n"), std::string::npos) << reply;
  // Both hosts answered with their own listen address.
  EXPECT_NE(reply.find("listen=" + b.listen_address() + "\n"), std::string::npos) << reply;
  EXPECT_NE(reply.find("listen=" + a.listen_address() + "\n"), std::string::npos) << reply;

  // Fan-out of a fan-out (or of the binary sync verb) must be refused.
  EXPECT_EQ(b.HandleCommandLine("fleet exec fleet exec status").rfind("err ", 0), 0u);
  EXPECT_EQ(b.HandleCommandLine("fleet exec fleet sync").rfind("err ", 0), 0u);

  // An unreachable peer degrades to a per-host error block, not a failure.
  DaemonOptions options_c = ServeOnly(TempHistory("c"));
  options_c.peers.push_back("127.0.0.1:1");  // nothing listens there
  Daemon c(options_c);
  ASSERT_TRUE(c.Start(&error)) << error;
  const std::string degraded = c.HandleCommandLine("fleet exec config");
  ASSERT_EQ(degraded.rfind("ok\n", 0), 0u) << degraded;
  EXPECT_NE(degraded.find("err unreachable"), std::string::npos) << degraded;
}

TEST_F(DaemonTest, RuntimeOnlyCommandsAreRefused) {
  const std::string history = TempHistory("r");
  Seed(history, persist::HistoryImage{});
  Daemon daemon(ServeOnly(history));
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;
  // Parseable but runtime-bound verbs get a pointed error; garbage gets the
  // parser's error. Either way the reply grammar holds.
  EXPECT_EQ(daemon.HandleCommandLine("disable 0").rfind("err not supported", 0), 0u);
  EXPECT_EQ(daemon.HandleCommandLine("rag").rfind("err not supported", 0), 0u);
  EXPECT_EQ(daemon.HandleCommandLine("frobnicate").rfind("err unknown command", 0), 0u);
  EXPECT_EQ(daemon.HandleCommandLine("help").rfind("ok\n", 0), 0u);
}

TEST_F(DaemonTest, MetricsExposeFleetCounters) {
  const std::string history_a = TempHistory("a");
  const std::string history_b = TempHistory("b");
  persist::HistoryImage seed_a;
  seed_a.records.push_back(MakeRecord(1));
  Seed(history_a, seed_a);
  Seed(history_b, persist::HistoryImage{});

  Daemon a(ServeOnly(history_a));
  Daemon b(ServeOnly(history_b));
  std::string error;
  ASSERT_TRUE(a.Start(&error)) << error;
  ASSERT_TRUE(b.Start(&error)) << error;
  ASSERT_TRUE(b.SyncWith(a.listen_address(), true, true, nullptr, nullptr, &error)) << error;

  const std::string reply = b.HandleCommandLine("metrics");
  ASSERT_EQ(reply.rfind("ok\n", 0), 0u) << reply;
  EXPECT_NE(reply.find("dimmunix_fleet_rounds_total 1\n"), std::string::npos) << reply;
  EXPECT_NE(reply.find("dimmunix_fleet_records_new_total 1\n"), std::string::npos) << reply;
  EXPECT_NE(reply.find("dimmunix_fleet_propagation_ms_count 1\n"), std::string::npos)
      << reply;
  EXPECT_NE(reply.find("dimmunix_fleet_propagation_ms_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos)
      << reply;
}

TEST_F(DaemonTest, AlertReportsIngestFreshestWinsAndPruneByAge) {
  const std::string history = TempHistory("al");
  Seed(history, persist::HistoryImage{});
  Daemon daemon(ServeOnly(history));
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  // Two hosts report; malformed records are dropped, not fatal.
  std::string reply = daemon.HandleCommandLine(
      "fleet alerts-report h:1;2;8;5000;match_churn+ring_drops h:2;0;8;0;- bogus;;x");
  ASSERT_EQ(reply.rfind("ok\n", 0), 0u) << reply;
  EXPECT_NE(reply.find("accepted=2\n"), std::string::npos) << reply;

  reply = daemon.HandleCommandLine("fleet alerts");
  ASSERT_EQ(reply.rfind("ok\n", 0), 0u) << reply;
  EXPECT_NE(reply.find("reporters=2\n"), std::string::npos) << reply;
  EXPECT_NE(reply.find("alerts_active=2\n"), std::string::npos);
  EXPECT_NE(reply.find("alert h:1 active=2 total=8"), std::string::npos) << reply;
  EXPECT_NE(reply.find("rules=match_churn+ring_drops"), std::string::npos);
  EXPECT_NE(reply.find("alert h:2 active=0 total=8"), std::string::npos);

  // A staler record for h:1 (60s old vs the stored 5s) must not roll the
  // table back; a fresher one replaces it.
  daemon.HandleCommandLine("fleet alerts-report h:1;1;8;60000;stale_rule");
  EXPECT_NE(daemon.HandleCommandLine("fleet alerts").find("alert h:1 active=2"),
            std::string::npos);
  daemon.HandleCommandLine("fleet alerts-report h:1;4;8;0;arena_exhaustion");
  EXPECT_NE(daemon.HandleCommandLine("fleet alerts").find("alert h:1 active=4"),
            std::string::npos);

  // A report already older than the TTL at ingest time is pruned on sight —
  // crashed processes age out instead of haunting the table.
  daemon.HandleCommandLine("fleet alerts-report h:3;9;8;999000;ghost");
  reply = daemon.HandleCommandLine("fleet alerts");
  EXPECT_EQ(reply.find("h:3"), std::string::npos) << reply;

  // `fleet status` and `metrics` carry the per-reporter rollup.
  const std::string status = daemon.HandleCommandLine("fleet status");
  EXPECT_NE(status.find("alert_reporters=2\n"), std::string::npos) << status;
  EXPECT_NE(status.find("reporter h:1 alerts=4/8"), std::string::npos) << status;
  const std::string metrics = daemon.HandleCommandLine("metrics");
  EXPECT_NE(metrics.find("dimmunix_fleet_alert_reporters 2\n"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("dimmunix_fleet_alerts_active 4\n"), std::string::npos) << metrics;
}

TEST_F(DaemonTest, AlertReportsGossipToPeers) {
  const std::string history_a = TempHistory("a");
  const std::string history_b = TempHistory("b");
  Seed(history_a, persist::HistoryImage{});
  Seed(history_b, persist::HistoryImage{});

  Daemon a(ServeOnly(history_a));
  std::string error;
  ASSERT_TRUE(a.Start(&error)) << error;

  DaemonOptions options_b = ServeOnly(history_b);
  options_b.peers.push_back(a.listen_address());
  options_b.gossip_period = std::chrono::milliseconds(25);
  Daemon b(options_b);
  ASSERT_TRUE(b.Start(&error)) << error;

  // A runtime reports to B; within a few gossip rounds A's hub view names
  // the same reporter with its rule set intact.
  ASSERT_EQ(b.HandleCommandLine("fleet alerts-report peer1:7;3;8;0;ring_drops")
                .rfind("ok\n", 0),
            0u);
  ASSERT_TRUE(WaitFor([&] {
    for (const AlertReport& r : a.alert_reports()) {
      if (r.reporter == "peer1:7" && r.active == 3 && r.rules == "ring_drops") {
        return true;
      }
    }
    return false;
  })) << "alert report never gossiped to A";
}

TEST_F(DaemonTest, AllowlistRejectsUnlistedSources) {
  const std::string history = TempHistory("x");
  Seed(history, persist::HistoryImage{});
  DaemonOptions options = ServeOnly(history);
  options.reject_loopback = true;  // test hook: makes 127.0.0.1 "unlisted"
  Daemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  std::string reply;
  ASSERT_TRUE(QueryTcp(daemon.listen_address(), "fleet status", std::chrono::seconds(5),
                       &reply, &error))
      << error;
  EXPECT_EQ(reply.rfind("err source 127.0.0.1 not allowed", 0), 0u) << reply;
  EXPECT_EQ(daemon.stats().rejected_conns, 1u);

  // The same source on the allowlist goes through.
  DaemonOptions allowed = ServeOnly(history);
  allowed.reject_loopback = true;
  allowed.allow.push_back("127.0.0.1");
  Daemon daemon2(allowed);
  ASSERT_TRUE(daemon2.Start(&error)) << error;
  ASSERT_TRUE(QueryTcp(daemon2.listen_address(), "fleet status", std::chrono::seconds(5),
                       &reply, &error))
      << error;
  EXPECT_EQ(reply.rfind("ok\n", 0), 0u) << reply;
}

TEST_F(DaemonTest, SyncWithUnreachablePeerFailsCleanly) {
  const std::string history = TempHistory("u");
  Seed(history, persist::HistoryImage{});
  DaemonOptions options = ServeOnly(history);
  options.io_timeout = std::chrono::milliseconds(500);
  Daemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  EXPECT_FALSE(daemon.SyncWith("127.0.0.1:1", true, true, nullptr, nullptr, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(daemon.stats().rounds_failed, 1u);
  EXPECT_FALSE(daemon.SyncWith("no-colon", true, true, nullptr, nullptr, &error));
  EXPECT_NE(error.find("malformed"), std::string::npos);
}

}  // namespace
}  // namespace fleet
}  // namespace dimmunix
