// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Tests for the fleet wire format: digest/delta frame round-trips and the
// strict decoder's rejection paths (truncation, CRC damage, bad magic/kind,
// oversize counts). A daemon feeds every byte a peer sends through these
// decoders, so "reject, don't salvage" is load-bearing for robustness.

#include "src/fleet/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/persist/format.h"

namespace dimmunix {
namespace fleet {
namespace {

persist::SignatureRecord MakeRecord(std::uint64_t seed, std::uint16_t epoch = 0) {
  persist::SignatureRecord rec;
  rec.knob_epoch = epoch;
  rec.match_depth = 4;
  rec.stacks.push_back({Frame{seed * 31 + 1}, Frame{seed * 31 + 2}});
  rec.stacks.push_back({Frame{seed * 97 + 5}});
  rec.Canonicalize();
  return rec;
}

TEST(WireTest, DigestRoundTrip) {
  std::vector<persist::DigestEntry> digest = {
      {0x1111222233334444ull, 3},
      {0xFFFFFFFFFFFFFFFFull, 0},
      {0x0000000000000001ull, 65535},
  };
  const std::string frame = EncodeDigestFrame(digest);
  ASSERT_FALSE(frame.empty());
  EXPECT_EQ(frame.size(), kFrameHeaderBytes + 4 + digest.size() * 10);

  FrameKind kind{};
  std::uint32_t length = 0;
  ASSERT_EQ(PeekFrame(frame, &kind, &length), DecodeStatus::kOk);
  EXPECT_EQ(kind, FrameKind::kDigest);
  EXPECT_EQ(kFrameHeaderBytes + length, frame.size());

  std::vector<persist::DigestEntry> decoded;
  ASSERT_EQ(DecodeDigestFrame(frame, &decoded), DecodeStatus::kOk);
  ASSERT_EQ(decoded.size(), digest.size());
  for (std::size_t i = 0; i < digest.size(); ++i) {
    EXPECT_EQ(decoded[i].hash, digest[i].hash);
    EXPECT_EQ(decoded[i].knob_epoch, digest[i].knob_epoch);
  }
}

TEST(WireTest, EmptyDigestRoundTrip) {
  const std::string frame = EncodeDigestFrame({});
  ASSERT_FALSE(frame.empty());
  std::vector<persist::DigestEntry> decoded = {{1, 1}};
  ASSERT_EQ(DecodeDigestFrame(frame, &decoded), DecodeStatus::kOk);
  EXPECT_TRUE(decoded.empty());
}

TEST(WireTest, DeltaRoundTrip) {
  Delta delta;
  delta.image.records.push_back(MakeRecord(1, /*epoch=*/2));
  delta.image.records.push_back(MakeRecord(2, /*epoch=*/0));
  delta.image.records[1].disabled = true;
  delta.image.records[1].avoidance_count = 42;
  delta.ages_ms = {120, 98000};

  const std::string frame = EncodeDeltaFrame(delta);
  ASSERT_FALSE(frame.empty());

  Delta decoded;
  ASSERT_EQ(DecodeDeltaFrame(frame, &decoded), DecodeStatus::kOk);
  ASSERT_EQ(decoded.image.records.size(), 2u);
  ASSERT_EQ(decoded.ages_ms, delta.ages_ms);
  EXPECT_TRUE(decoded.image.records[0].SameSignatureAs(delta.image.records[0]));
  EXPECT_TRUE(decoded.image.records[1].SameSignatureAs(delta.image.records[1]));
  EXPECT_EQ(decoded.image.records[0].knob_epoch, 2);
  EXPECT_TRUE(decoded.image.records[1].disabled);
  EXPECT_EQ(decoded.image.records[1].avoidance_count, 42u);
}

TEST(WireTest, EmptyDeltaRoundTrip) {
  // Pull-only rounds ship an empty delta; it must be a valid frame.
  const std::string frame = EncodeDeltaFrame(Delta{});
  ASSERT_FALSE(frame.empty());
  Delta decoded;
  decoded.ages_ms = {7};
  ASSERT_EQ(DecodeDeltaFrame(frame, &decoded), DecodeStatus::kOk);
  EXPECT_TRUE(decoded.image.records.empty());
  EXPECT_TRUE(decoded.ages_ms.empty());
}

TEST(WireTest, TruncatedFramesRejected) {
  const std::string frame = EncodeDigestFrame({{0xAB, 1}});
  // Every proper prefix must be rejected, never crash or accept.
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const std::string_view prefix(frame.data(), len);
    std::vector<persist::DigestEntry> decoded;
    EXPECT_EQ(DecodeDigestFrame(prefix, &decoded), DecodeStatus::kTruncated)
        << "prefix length " << len;
  }
}

TEST(WireTest, EveryFlippedByteIsRejected) {
  Delta delta;
  delta.image.records.push_back(MakeRecord(9));
  delta.ages_ms = {1};
  const std::string frame = EncodeDeltaFrame(delta);
  // Flip one bit in each byte: the decoder must reject every variant (the
  // specific status depends on which field was hit). Bytes 5..7 are the
  // reserved header pad, deliberately not validated (forward compatibility),
  // so they are skipped.
  for (std::size_t i = 0; i < frame.size(); ++i) {
    if (i >= 5 && i <= 7) {
      continue;
    }
    std::string damaged = frame;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x20);
    Delta decoded;
    EXPECT_NE(DecodeDeltaFrame(damaged, &decoded), DecodeStatus::kOk) << "byte " << i;
  }
}

TEST(WireTest, BadCrcRejected) {
  std::string frame = EncodeDigestFrame({{0x1234, 0}});
  frame[frame.size() - 1] = static_cast<char>(frame[frame.size() - 1] ^ 0xFF);
  std::vector<persist::DigestEntry> decoded;
  EXPECT_EQ(DecodeDigestFrame(frame, &decoded), DecodeStatus::kBadCrc);
}

TEST(WireTest, BadMagicRejected) {
  std::string frame = EncodeDigestFrame({});
  frame[0] = 'X';
  FrameKind kind{};
  std::uint32_t length = 0;
  EXPECT_EQ(PeekFrame(frame, &kind, &length), DecodeStatus::kBadMagic);
}

TEST(WireTest, KindMismatchRejected) {
  // A digest frame handed to the delta decoder (and vice versa) must fail
  // cleanly — the sync protocol fixes which frame comes when.
  const std::string digest = EncodeDigestFrame({{0x77, 1}});
  Delta delta_out;
  EXPECT_EQ(DecodeDeltaFrame(digest, &delta_out), DecodeStatus::kBadKind);

  Delta delta;
  delta.image.records.push_back(MakeRecord(3));
  delta.ages_ms = {0};
  std::vector<persist::DigestEntry> digest_out;
  EXPECT_EQ(DecodeDigestFrame(EncodeDeltaFrame(delta), &digest_out),
            DecodeStatus::kBadKind);
}

TEST(WireTest, OversizeCountRejected) {
  // Forge a digest frame claiming kMaxDigestEntries+1 entries, with a valid
  // CRC, so the oversize bound (not the CRC) is what rejects it — the bound
  // must hold even against a "well-formed" hostile frame.
  std::string frame = EncodeDigestFrame({{1, 1}});
  const std::uint32_t count = kMaxDigestEntries + 1;
  std::memcpy(&frame[kFrameHeaderBytes], &count, sizeof(count));
  const std::uint32_t crc = persist::Crc32(frame.data() + kFrameHeaderBytes,
                                           frame.size() - kFrameHeaderBytes);
  std::memcpy(&frame[kFrameHeaderBytes - sizeof(crc)], &crc, sizeof(crc));
  std::vector<persist::DigestEntry> decoded;
  EXPECT_EQ(DecodeDigestFrame(frame, &decoded), DecodeStatus::kOversize);

  // And the encoder refuses to build one in the first place.
  std::vector<persist::DigestEntry> huge(kMaxDigestEntries + 1);
  EXPECT_TRUE(EncodeDigestFrame(huge).empty());
}

TEST(WireTest, DeltaCountAgeMismatchRejected) {
  // ages_ms and records must stay parallel end to end; an encoder bug that
  // breaks that must not produce a decodable frame.
  Delta delta;
  delta.image.records.push_back(MakeRecord(5));
  delta.ages_ms = {1, 2};  // one record, two ages
  EXPECT_TRUE(EncodeDeltaFrame(delta).empty());
}

TEST(WireTest, DecodeStatusNamesAreStable) {
  EXPECT_STREQ(DecodeStatusName(DecodeStatus::kOk), "ok");
  EXPECT_STREQ(DecodeStatusName(DecodeStatus::kBadCrc), "payload CRC mismatch");
  EXPECT_STREQ(DecodeStatusName(DecodeStatus::kTruncated), "truncated frame");
}

}  // namespace
}  // namespace fleet
}  // namespace dimmunix
