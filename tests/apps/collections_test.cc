// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Functional tests of the mini applications (no deadlocks here — the
// deadlock behavior is exercised by exploits_test).

#include "src/apps/collections.h"

#include <gtest/gtest.h>

#include "src/apps/activemq.h"
#include "src/apps/hawknl.h"
#include "src/apps/jdbc.h"
#include "src/apps/minidb.h"
#include "src/apps/sqlite_rlock.h"
#include "src/apps/taskqueue.h"

namespace dimmunix {
namespace {

Config TestConfig() {
  Config config;
  config.start_monitor = false;
  return config;
}

TEST(MiniDbTest, InsertCountTruncate) {
  Runtime rt(TestConfig());
  MiniDb db(rt);
  db.CreateTable("t");
  db.Insert("t", 3);
  db.Insert("t", 1);
  db.Insert("t", 2);
  EXPECT_EQ(db.Count("t"), 3u);
  EXPECT_TRUE(db.IndexContains("t", 2));
  EXPECT_FALSE(db.IndexContains("t", 9));
  db.Truncate("t");
  EXPECT_EQ(db.Count("t"), 0u);
  EXPECT_FALSE(db.IndexContains("t", 2));
}

TEST(SqliteRecursiveLockTest, ReentrantEnter) {
  Runtime rt(TestConfig());
  SqliteRecursiveLock lock(rt);
  lock.Enter();
  lock.Enter();  // reentrant
  EXPECT_EQ(lock.recursion_count(), 2);
  lock.Leave();
  lock.Leave();
  EXPECT_EQ(lock.recursion_count(), 0);
}

TEST(HawkNlTest, OpenCloseShutdown) {
  Runtime rt(TestConfig());
  MiniHawkNl nl(rt);
  const int s0 = nl.Open();
  nl.Open();
  EXPECT_EQ(nl.open_sockets(), 2);
  nl.Close(s0);
  EXPECT_EQ(nl.open_sockets(), 1);
  nl.Shutdown();
  EXPECT_EQ(nl.open_sockets(), 0);
}

TEST(JdbcTest, StatementLifecycle) {
  Runtime rt(TestConfig());
  JdbcConnection conn(rt);
  JdbcStatement* stmt = conn.PrepareStatement("SELECT 1");
  EXPECT_EQ(stmt->GetWarnings(), "");
  EXPECT_EQ(stmt->ExecuteQuery().size(), 1u);
  stmt->Close();
  EXPECT_TRUE(stmt->closed());
  conn.Close();
  EXPECT_TRUE(conn.closed());
  EXPECT_EQ(conn.server_round_trips(), 1);
}

TEST(TaskQueueTest, SubmitCancelShutdown) {
  Runtime rt(TestConfig());
  TaskQueue queue(rt);
  const int t0 = queue.Submit();
  const int t1 = queue.Submit();
  EXPECT_EQ(queue.live_tasks(), 2);
  queue.CancelFromUser(t0);
  EXPECT_EQ(queue.live_tasks(), 1);
  queue.CancelFromTimer(t1);
  EXPECT_EQ(queue.live_tasks(), 0);
  queue.Shutdown();
}

TEST(BrokerTest, DispatchBuffersUntilListener) {
  Runtime rt(TestConfig());
  BrokerSession session(rt);
  BrokerConsumer* consumer = session.CreateConsumer();
  session.DispatchOne("before");
  EXPECT_EQ(consumer->received(), 0u);  // buffered
  consumer->SetListener([](const std::string&) {});
  EXPECT_EQ(consumer->received(), 1u);  // drained on install
  session.DispatchOne("after");
  EXPECT_EQ(consumer->received(), 2u);
}

TEST(BrokerQueueTest, DropAndAddCount) {
  Runtime rt(TestConfig());
  BrokerQueue queue(rt);
  queue.DropEventOnOverflow();
  queue.DropEventOnExpiry();
  queue.DropEventOnPurge();
  queue.SubscriptionAdd();
  EXPECT_EQ(queue.drops(), 3);
  EXPECT_EQ(queue.adds(), 1);
}

TEST(CollectionsTest, VectorAddAll) {
  Runtime rt(TestConfig());
  SyncVector v1(rt);
  SyncVector v2(rt);
  v1.Add(1);
  v2.Add(2);
  v2.Add(3);
  v1.AddAll(v2);
  EXPECT_EQ(v1.Size(), 3u);
}

TEST(CollectionsTest, HashtableEquals) {
  Runtime rt(TestConfig());
  SyncHashtable h1(rt);
  SyncHashtable h2(rt);
  h1.Put(1, &h2);
  h2.Put(2, &h1);
  EXPECT_TRUE(h1.Equals(h2));
}

TEST(CollectionsTest, StringBufferAppend) {
  Runtime rt(TestConfig());
  SyncStringBuffer s1(rt);
  SyncStringBuffer s2(rt);
  s1.Set("foo");
  s2.Set("bar");
  s1.Append(s2);
  EXPECT_EQ(s1.Get(), "foobar");
}

TEST(CollectionsTest, PrintWriterRoundtrip) {
  Runtime rt(TestConfig());
  SyncPrintWriter w(rt);
  SyncCharArrayWriter buffer(rt);
  buffer.Append("hello");
  buffer.WriteTo(w);
  w.Write(buffer);
  EXPECT_EQ(w.Output(), "hellohello");
}

TEST(CollectionsTest, BeanContext) {
  Runtime rt(TestConfig());
  BeanContextSupport ctx(rt);
  ctx.Add(1);
  ctx.Add(2);
  ctx.PropertyChange();
  ctx.Remove(1);
  EXPECT_EQ(ctx.ChildCount(), 1u);
}

}  // namespace
}  // namespace dimmunix
