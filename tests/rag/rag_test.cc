// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Drives the RAG with synthetic event streams — no real threads — and
// checks deadlock-cycle and yield-cycle (starvation) detection semantics
// against the definitions of §5.2, including the Figure 3 scenario.

#include "src/rag/rag.h"

#include <gtest/gtest.h>

namespace dimmunix {
namespace {

Event Ev(EventType type, ThreadId t, LockId l, StackId s = 0,
         AcquireMode mode = AcquireMode::kExclusive) {
  Event event;
  event.type = type;
  event.thread = t;
  event.lock = l;
  event.stack = s;
  event.mode = mode;
  return event;
}

Event YieldEv(ThreadId t, LockId l, std::vector<YieldCause> causes) {
  Event event = Ev(EventType::kYield, t, l);
  event.causes = std::move(causes);
  return event;
}

class RagTest : public ::testing::Test {
 protected:
  void Acquire(ThreadId t, LockId l, StackId s,
               AcquireMode mode = AcquireMode::kExclusive) {
    rag_.Apply(Ev(EventType::kRequest, t, l, s, mode));
    rag_.Apply(Ev(EventType::kAllow, t, l, s, mode));
    rag_.Apply(Ev(EventType::kAcquired, t, l, s, mode));
  }
  void Wait(ThreadId t, LockId l, StackId s, AcquireMode mode = AcquireMode::kExclusive) {
    rag_.Apply(Ev(EventType::kRequest, t, l, s, mode));
    rag_.Apply(Ev(EventType::kAllow, t, l, s, mode));
  }
  Rag rag_;
};

TEST_F(RagTest, NoCycleNoDeadlock) {
  Acquire(1, 100, 10);
  Wait(2, 100, 20);  // waits for a held lock: no cycle
  EXPECT_TRUE(rag_.DetectDeadlocks().empty());
}

TEST_F(RagTest, TwoThreadAbBaCycle) {
  Acquire(1, 100, 10);  // T1 holds A (stack 10)
  Acquire(2, 200, 20);  // T2 holds B (stack 20)
  Wait(1, 200, 11);     // T1 waits for B
  Wait(2, 100, 21);     // T2 waits for A
  auto cycles = rag_.DetectDeadlocks();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].threads.size(), 2u);
  // Signature stacks are the hold-edge labels (§5.3): acquisition stacks.
  std::vector<StackId> stacks = cycles[0].stacks;
  std::sort(stacks.begin(), stacks.end());
  EXPECT_EQ(stacks, (std::vector<StackId>{10, 20}));
}

TEST_F(RagTest, ThreeThreadRingCycle) {
  Acquire(1, 100, 10);
  Acquire(2, 200, 20);
  Acquire(3, 300, 30);
  Wait(1, 200, 11);
  Wait(2, 300, 21);
  Wait(3, 100, 31);
  auto cycles = rag_.DetectDeadlocks();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].threads.size(), 3u);
  EXPECT_EQ(cycles[0].stacks.size(), 3u);
}

TEST_F(RagTest, CycleReportedOnlyOnce) {
  Acquire(1, 100, 10);
  Acquire(2, 200, 20);
  Wait(1, 200, 11);
  Wait(2, 100, 21);
  EXPECT_EQ(rag_.DetectDeadlocks().size(), 1u);
  // Re-touch the same waiters: the cycle is already flagged.
  rag_.Apply(Ev(EventType::kRequest, 1, 200, 11));
  EXPECT_TRUE(rag_.DetectDeadlocks().empty());
}

TEST_F(RagTest, AllowEdgesCountTowardDeadlock) {
  // A thread that is *allowed* to wait commits to blocking: allow edges are
  // part of deadlock cycles (§5.4).
  Acquire(1, 100, 10);
  Acquire(2, 200, 20);
  Wait(1, 200, 11);
  rag_.Apply(Ev(EventType::kRequest, 2, 100, 21));  // request-only edge
  auto cycles = rag_.DetectDeadlocks();
  EXPECT_EQ(cycles.size(), 1u);
}

TEST_F(RagTest, ReentrantHoldNeedsMatchingReleases) {
  Acquire(1, 100, 10);
  rag_.Apply(Ev(EventType::kAcquired, 1, 100, 10));  // re-acquisition
  rag_.Apply(Ev(EventType::kRelease, 1, 100, 10));
  EXPECT_TRUE(rag_.HoldsAnyLock(1));  // still held: one release remaining
  rag_.Apply(Ev(EventType::kRelease, 1, 100, 10));
  EXPECT_FALSE(rag_.HoldsAnyLock(1));
}

TEST_F(RagTest, ReleaseBreaksPotentialCycle) {
  Acquire(1, 100, 10);
  Acquire(2, 200, 20);
  rag_.Apply(Ev(EventType::kRelease, 1, 100, 10));
  Wait(1, 200, 11);
  Wait(2, 100, 21);  // A is free now
  EXPECT_TRUE(rag_.DetectDeadlocks().empty());
}

TEST_F(RagTest, CancelClearsWaitEdge) {
  Acquire(1, 100, 10);
  Wait(2, 100, 21);
  rag_.Apply(Ev(EventType::kCancel, 2, 100, 21));
  EXPECT_FALSE(rag_.HasWaitEdge(2));
}

// --- Reader-writer (mode-aware) cycles ----------------------------------------

TEST_F(RagTest, SharedRequestOnSharedHoldersIsNoEdge) {
  // Readers waiting behind readers can never deadlock: shared-shared is
  // non-conflicting, so no wait-for edge exists at all.
  Acquire(1, 100, 10, AcquireMode::kShared);
  Acquire(2, 100, 20, AcquireMode::kShared);
  Wait(3, 100, 30, AcquireMode::kShared);
  EXPECT_TRUE(rag_.DetectDeadlocks().empty());
}

TEST_F(RagTest, WriterVsWriterThroughReaderCycle) {
  // T1 holds A exclusively and wants B shared; T2 holds B exclusively and
  // wants A shared. Each shared request conflicts with the other's
  // exclusive hold: a two-thread cycle with shared request edges.
  Acquire(1, 100, 10);                          // T1 holds A (X)
  Acquire(2, 200, 20);                          // T2 holds B (X)
  Wait(1, 200, 11, AcquireMode::kShared);       // T1 wants B (S)
  Wait(2, 100, 21, AcquireMode::kShared);       // T2 wants A (S)
  auto cycles = rag_.DetectDeadlocks();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].threads.size(), 2u);
  std::vector<StackId> stacks = cycles[0].stacks;
  std::sort(stacks.begin(), stacks.end());
  EXPECT_EQ(stacks, (std::vector<StackId>{10, 20}));  // the exclusive hold labels
}

TEST_F(RagTest, UpgradeRaceOverOneLockIsACycle) {
  // Both threads hold L shared and both request it exclusively: each
  // exclusive request conflicts with the *other* shared holder (the
  // requester's own hold is not a cycle edge), closing a two-thread cycle
  // over a single lock.
  Acquire(1, 100, 10, AcquireMode::kShared);
  Acquire(2, 100, 20, AcquireMode::kShared);
  Wait(1, 100, 11, AcquireMode::kExclusive);
  Wait(2, 100, 21, AcquireMode::kExclusive);
  auto cycles = rag_.DetectDeadlocks();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].threads.size(), 2u);
  std::vector<StackId> stacks = cycles[0].stacks;
  std::sort(stacks.begin(), stacks.end());
  EXPECT_EQ(stacks, (std::vector<StackId>{10, 20}));  // the shared hold labels
}

TEST_F(RagTest, SoleUpgraderIsNotACycle) {
  // A thread upgrading while being the only reader blocks on itself; the
  // self-hold is not a cycle edge, so this is not reported as a deadlock.
  Acquire(1, 100, 10, AcquireMode::kShared);
  Wait(1, 100, 11, AcquireMode::kExclusive);
  EXPECT_TRUE(rag_.DetectDeadlocks().empty());
}

TEST_F(RagTest, DistinctCyclesThroughSharedHoldersAreAllReported) {
  // One exclusive request fanning out to two shared holders can close two
  // distinct cycles at once; both must be reported in the same batch.
  Acquire(1, 200, 12);                          // T1 holds M1 (X)
  Acquire(1, 300, 13);                          // T1 holds M2 (X)
  Acquire(2, 100, 20, AcquireMode::kShared);    // T2 holds L (S)
  Acquire(3, 100, 30, AcquireMode::kShared);    // T3 holds L (S)
  Wait(2, 200, 21);                             // T2 waits for M1 -> T1
  Wait(3, 300, 31);                             // T3 waits for M2 -> T1
  Wait(1, 100, 11, AcquireMode::kExclusive);    // T1 waits for L -> {T2, T3}
  auto cycles = rag_.DetectDeadlocks();
  ASSERT_EQ(cycles.size(), 2u);
  for (const DeadlockCycle& cycle : cycles) {
    EXPECT_EQ(cycle.threads.size(), 2u);
  }
}

TEST_F(RagTest, SharedHoldersReleaseIndependently) {
  Acquire(1, 100, 10, AcquireMode::kShared);
  Acquire(2, 100, 20, AcquireMode::kShared);
  rag_.Apply(Ev(EventType::kRelease, 1, 100, 10, AcquireMode::kShared));
  EXPECT_FALSE(rag_.HoldsAnyLock(1));
  EXPECT_TRUE(rag_.HoldsAnyLock(2));  // the other reader still holds
  // A writer waiting now conflicts only with the remaining reader.
  Wait(3, 100, 30, AcquireMode::kExclusive);
  EXPECT_TRUE(rag_.DetectDeadlocks().empty());
}

// --- Starvation (yield cycles) ------------------------------------------------

TEST_F(RagTest, SimpleMutualYieldIsStarvation) {
  // T1 yields because of T2's hold; T2 yields because of T1's hold.
  Acquire(1, 100, 10);
  Acquire(2, 200, 20);
  rag_.Apply(YieldEv(1, 200, {{2, 200, 20}}));
  rag_.Apply(YieldEv(2, 100, {{1, 100, 10}}));
  auto starvations = rag_.DetectStarvations();
  ASSERT_GE(starvations.size(), 1u);
  EXPECT_NE(starvations[0].starved, kInvalidThreadId);
}

TEST_F(RagTest, YieldOnRunningThreadIsNotStarvation) {
  // T1 yields because of T2, but T2 holds nothing else and isn't blocked —
  // T2 does not reach back to T1, so nobody is starved.
  Acquire(2, 200, 20);
  rag_.Apply(YieldEv(1, 200, {{2, 200, 20}}));
  EXPECT_TRUE(rag_.DetectStarvations().empty());
}

// The Figure 3 scenario: T1 yields on T2 and T3; T4 yields on T5 and T6;
// T3 waits for lock L held by T4. Starvation exists only when *both* of
// T4's escape routes lead back to T1.
TEST_F(RagTest, Figure3EscapeRoutePreventsStarvation) {
  Acquire(4, 500, 40);                         // T4 holds L
  Wait(3, 500, 30);                            // T3 waits for L
  rag_.Apply(YieldEv(2, 900, {{1, 910, 11}})); // T2 yields back toward T1's hold
  Acquire(1, 910, 11);
  rag_.Apply(YieldEv(1, 901, {{2, 900, 20}, {3, 500, 30}}));
  // T4 yields on T5 and T6; T6 leads back to T1, but T5 escapes (T5 is
  // running free).
  rag_.Apply(YieldEv(6, 902, {{1, 910, 11}}));
  rag_.Apply(YieldEv(4, 903, {{5, 904, 50}, {6, 902, 60}}));
  EXPECT_TRUE(rag_.DetectStarvations().empty());
}

TEST_F(RagTest, Figure3FullEntanglementIsStarvation) {
  Acquire(4, 500, 40);
  Wait(3, 500, 30);
  rag_.Apply(YieldEv(2, 900, {{1, 910, 11}}));
  Acquire(1, 910, 11);
  rag_.Apply(YieldEv(1, 901, {{2, 900, 20}, {3, 500, 30}}));
  // Both of T4's yield targets now lead back to T1.
  rag_.Apply(YieldEv(6, 902, {{1, 910, 11}}));
  rag_.Apply(YieldEv(5, 904, {{1, 910, 11}}));
  rag_.Apply(YieldEv(4, 903, {{5, 904, 50}, {6, 902, 60}}));
  auto starvations = rag_.DetectStarvations();
  ASSERT_GE(starvations.size(), 1u);
  const StarvationCycle& cycle = starvations[0];
  EXPECT_FALSE(cycle.stacks.empty());
  // The break victim must be a yielding thread; T1 and T4 hold locks, and
  // among yielding threads the most-holding one is picked (§3).
  EXPECT_TRUE(cycle.break_victim == 1 || cycle.break_victim == 4);
}

TEST_F(RagTest, WakeClearsYieldEdges) {
  Acquire(1, 100, 10);
  Acquire(2, 200, 20);
  rag_.Apply(YieldEv(1, 200, {{2, 200, 20}}));
  rag_.Apply(Ev(EventType::kWake, 1, 200, 11));
  // T1 abandons the request entirely (e.g. trylock rollback).
  rag_.Apply(Ev(EventType::kCancel, 1, 200, 11));
  rag_.Apply(YieldEv(2, 100, {{1, 100, 10}}));
  // T1's yield edges were retired by the wake: no mutual entanglement.
  EXPECT_TRUE(rag_.DetectStarvations().empty());
}

TEST_F(RagTest, ThreadExitReleasesHolds) {
  Acquire(1, 100, 10);
  rag_.Apply(Ev(EventType::kThreadExit, 1, 0, 0));
  Wait(2, 100, 21);
  EXPECT_TRUE(rag_.DetectDeadlocks().empty());
  EXPECT_EQ(rag_.HeldLockCount(1), 0);
}

TEST_F(RagTest, HeldLocksAccessor) {
  Acquire(1, 100, 10);
  Acquire(1, 101, 11);
  const auto held = rag_.HeldLocks(1);
  EXPECT_EQ(held.size(), 2u);
}

}  // namespace
}  // namespace dimmunix
