// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/baseline/gate_lock.h"

#include <gtest/gtest.h>

#include <thread>

namespace dimmunix {
namespace {

class GateLockTest : public ::testing::Test {
 protected:
  GateLockTest() : table_(10), history_(&table_) {}

  StackId Stack(std::initializer_list<const char*> names) {
    std::vector<Frame> frames;
    for (const char* name : names) {
      frames.push_back(FrameFromName(name));
    }
    return table_.Intern(frames);
  }

  void AddSignature(std::initializer_list<const char*> inner_frames) {
    std::vector<StackId> stacks;
    for (const char* name : inner_frames) {
      stacks.push_back(Stack({name, "outer"}));
    }
    bool added = false;
    history_.Add(SignatureKind::kDeadlock, std::move(stacks), 4, &added);
  }

  StackTable table_;
  History history_;
};

TEST_F(GateLockTest, OneGatePerDisjointSignature) {
  AddSignature({"p1", "p2"});
  AddSignature({"p3", "p4"});
  GateLockAvoider avoider(history_, table_);
  EXPECT_EQ(avoider.gate_count(), 2u);
}

TEST_F(GateLockTest, OverlappingSignaturesShareAGate) {
  // Signatures {p1,p2} and {p2,p3} interact through p2: one gate (the paper
  // needed only 45 gates for 64 signatures for exactly this reason).
  AddSignature({"p1", "p2"});
  AddSignature({"p2", "p3"});
  AddSignature({"p9", "p10"});
  GateLockAvoider avoider(history_, table_);
  EXPECT_EQ(avoider.gate_count(), 2u);
}

TEST_F(GateLockTest, UngatedPositionIsNoOp) {
  AddSignature({"p1", "p2"});
  GateLockAvoider avoider(history_, table_);
  {
    GateLockAvoider::Guard guard(avoider, FrameFromName("unrelated"));
  }
  EXPECT_EQ(avoider.total_gated_acquisitions(), 0u);
}

TEST_F(GateLockTest, GateSerializesGatedPositions) {
  AddSignature({"g1", "g2"});
  GateLockAvoider avoider(history_, table_);
  int counter = 0;
  std::thread a([&] {
    for (int i = 0; i < 5000; ++i) {
      GateLockAvoider::Guard guard(avoider, FrameFromName("g1"));
      ++counter;
    }
  });
  std::thread b([&] {
    for (int i = 0; i < 5000; ++i) {
      GateLockAvoider::Guard guard(avoider, FrameFromName("g2"));
      ++counter;
    }
  });
  a.join();
  b.join();
  EXPECT_EQ(counter, 10000);
  EXPECT_EQ(avoider.total_gated_acquisitions(), 10000u);
}

TEST_F(GateLockTest, GateIsRecursive) {
  AddSignature({"r1", "r2"});
  GateLockAvoider avoider(history_, table_);
  GateLockAvoider::Guard outer(avoider, FrameFromName("r1"));
  GateLockAvoider::Guard inner(avoider, FrameFromName("r2"));  // same gate, nested
  SUCCEED();
}

TEST_F(GateLockTest, ContentionIsCounted) {
  AddSignature({"c1", "c2"});
  GateLockAvoider avoider(history_, table_);
  std::atomic<bool> hold{true};
  std::thread holder([&] {
    GateLockAvoider::Guard guard(avoider, FrameFromName("c1"));
    while (hold.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread contender([&] {
    GateLockAvoider::Guard guard(avoider, FrameFromName("c2"));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  hold.store(false);
  holder.join();
  contender.join();
  EXPECT_GE(avoider.contended_acquisitions(), 1u);
}

}  // namespace
}  // namespace dimmunix
