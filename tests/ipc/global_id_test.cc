// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Cross-process lock identities: the same lock must hash to the same LockId
// through any fd / mapping that reaches it, different locks must not
// collide, and every global id must carry kGlobalLockBit. The per-thread
// resolution caches must be invisible: hits return exactly what the slow
// path would, and invalidation (close / munmap churn) forces a re-resolve
// instead of serving a stale identity.

#include "src/ipc/global_id.h"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/common/config.h"
#include "src/core/avoidance.h"
#include "src/event/event_queue.h"
#include "src/signature/history.h"
#include "src/stack/annotation.h"
#include "src/stack/stack_table.h"

namespace dimmunix {
namespace ipc {
namespace {

std::string TempPath(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("global_id_") + tag + "_" + std::to_string(::getpid())))
      .string();
}

TEST(GlobalIdTest, FileLockIdentityIsStableAcrossDescriptors) {
  const std::string path = TempPath("file");
  const int fd1 = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd1, 0);
  const int fd2 = ::open(path.c_str(), O_RDWR);  // independent open
  ASSERT_GE(fd2, 0);

  const LockId a = GlobalIdForFileLock(fd1, GlobalLockKind::kFlock, 0);
  const LockId b = GlobalIdForFileLock(fd2, GlobalLockKind::kFlock, 0);
  EXPECT_NE(a, kInvalidLockId);
  EXPECT_EQ(a, b) << "same file through different fds must be the same lock";
  EXPECT_TRUE(IsGlobalLockId(a));

  ::close(fd1);
  ::close(fd2);
  // This binary is not preloaded, so the shim's close wrapper never runs:
  // invalidate by hand or a later test reusing these fd numbers would be
  // served this file's identity from the cache.
  InvalidateFdCache(fd1);
  InvalidateFdCache(fd2);
  std::filesystem::remove(path);
}

TEST(GlobalIdTest, OffsetsAndKindsAreDisjointNamespaces) {
  const std::string path = TempPath("kinds");
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);

  const LockId flock_id = GlobalIdForFileLock(fd, GlobalLockKind::kFlock, 0);
  const LockId fcntl0 = GlobalIdForFileLock(fd, GlobalLockKind::kFcntlRange, 0);
  const LockId fcntl8 = GlobalIdForFileLock(fd, GlobalLockKind::kFcntlRange, 8);
  // flock and fcntl locks on one file never interact in the kernel; their
  // ids must differ even at offset 0. Distinct ranges are distinct locks.
  EXPECT_NE(flock_id, fcntl0);
  EXPECT_NE(fcntl0, fcntl8);

  // Range identity includes the length: fcntl [8, 8+16) and [8, 8+32) are
  // different kernel locks, and the whole-file lock (l_len 0, "to EOF")
  // differs from any bounded range at the same start. Equal (start, len)
  // pairs agree across independent opens.
  const LockId fcntl8_len16 = GlobalIdForFileLock(fd, GlobalLockKind::kFcntlRange, 8, 16);
  const LockId fcntl8_len32 = GlobalIdForFileLock(fd, GlobalLockKind::kFcntlRange, 8, 32);
  EXPECT_NE(fcntl8_len16, fcntl8_len32);
  EXPECT_NE(fcntl8, fcntl8_len16) << "to-EOF lock must not alias a bounded range";
  const int fd_again = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd_again, 0);
  EXPECT_EQ(fcntl8_len16, GlobalIdForFileLock(fd_again, GlobalLockKind::kFcntlRange, 8, 16));
  ::close(fd_again);
  InvalidateFdCache(fd_again);

  ::close(fd);
  InvalidateFdCache(fd);
  std::filesystem::remove(path);
}

TEST(GlobalIdTest, BadDescriptorYieldsInvalid) {
  EXPECT_EQ(GlobalIdForFileLock(-1, GlobalLockKind::kFlock, 0), kInvalidLockId);
}

TEST(GlobalIdTest, SharedMappingIdentityFollowsTheBackingFile) {
  const std::string path = TempPath("shm");
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, 8192), 0);

  // Two independent mappings of the same file: same byte => same identity,
  // regardless of virtual address.
  void* map1 = ::mmap(nullptr, 8192, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  void* map2 = ::mmap(nullptr, 8192, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ASSERT_NE(map1, MAP_FAILED);
  ASSERT_NE(map2, MAP_FAILED);
  ASSERT_NE(map1, map2);
  InvalidateMapsCache();  // the mappings postdate any cached parse

  const LockId a = GlobalIdForSharedAddress(static_cast<char*>(map1) + 128);
  const LockId b = GlobalIdForSharedAddress(static_cast<char*>(map2) + 128);
  const LockId other = GlobalIdForSharedAddress(static_cast<char*>(map1) + 256);
  EXPECT_TRUE(IsGlobalLockId(a));
  EXPECT_EQ(a, b) << "same file offset through different mappings";
  EXPECT_NE(a, other) << "different offsets are different locks";

  ::munmap(map1, 8192);
  ::munmap(map2, 8192);
  ::close(fd);
  std::filesystem::remove(path);
}

TEST(GlobalIdTest, AnonymousSharedMemoryFallsBackToAddressIdentity) {
  void* map = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(map, MAP_FAILED);
  InvalidateMapsCache();
  const LockId id = GlobalIdForSharedAddress(map);
  EXPECT_TRUE(IsGlobalLockId(id));
  EXPECT_NE(id, kInvalidLockId);
  ::munmap(map, 4096);
}

TEST(GlobalIdTest, CacheHitAndMissAccounting) {
  const std::string path = TempPath("cache_stats");
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  InvalidateFdCache(fd);  // clear residue from earlier tests' reuse of this number

  const GlobalIdCacheStats before = GlobalIdCacheCounters();
  const LockId first = GlobalIdForFileLock(fd, GlobalLockKind::kFlock, 0);
  const GlobalIdCacheStats after_miss = GlobalIdCacheCounters();
  const LockId second = GlobalIdForFileLock(fd, GlobalLockKind::kFlock, 0);
  const GlobalIdCacheStats after_hit = GlobalIdCacheCounters();

  EXPECT_EQ(first, second);
  EXPECT_GT(after_miss.misses, before.misses) << "first resolution must run the slow path";
  EXPECT_GT(after_hit.hits, after_miss.hits) << "repeat resolution must be a cache hit";
  EXPECT_EQ(after_hit.misses, after_miss.misses) << "a hit must not also count as a miss";

  ::close(fd);
  InvalidateFdCache(fd);
  std::filesystem::remove(path);
}

TEST(GlobalIdTest, FdCacheInvalidationPreventsStaleIdentityOnFdReuse) {
  const std::string path1 = TempPath("reuse_a");
  const std::string path2 = TempPath("reuse_b");
  const int fd = ::open(path1.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  InvalidateFdCache(fd);  // clear residue from earlier tests' reuse of this number
  // Prime the cache for this descriptor.
  const LockId id1 = GlobalIdForFileLock(fd, GlobalLockKind::kFlock, 0);
  ASSERT_EQ(id1, GlobalIdForFileLock(fd, GlobalLockKind::kFlock, 0));
  ::close(fd);
  InvalidateFdCache(fd);  // what the preload shim's close wrapper does

  // The kernel hands back the lowest free descriptor — the very number we
  // just cached. Without the generation bump, this lookup would return the
  // OLD file's identity.
  const int fd_reused = ::open(path2.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_EQ(fd_reused, fd) << "test requires the descriptor number to be reused";
  const LockId id2 = GlobalIdForFileLock(fd_reused, GlobalLockKind::kFlock, 0);
  EXPECT_NE(id2, id1) << "a reused fd must resolve to the new file";

  // Cross-check against an uncached resolution through an independent fd.
  const int fd_other = ::open(path2.c_str(), O_RDWR);
  ASSERT_GE(fd_other, 0);
  InvalidateFdCache(fd_other);
  EXPECT_EQ(id2, GlobalIdForFileLock(fd_other, GlobalLockKind::kFlock, 0));

  ::close(fd_reused);
  InvalidateFdCache(fd_reused);
  ::close(fd_other);
  InvalidateFdCache(fd_other);
  std::filesystem::remove(path1);
  std::filesystem::remove(path2);
}

TEST(GlobalIdTest, AddressCacheInvalidationAfterRemap) {
  const std::string path1 = TempPath("remap_a");
  const std::string path2 = TempPath("remap_b");
  const int fd1 = ::open(path1.c_str(), O_RDWR | O_CREAT, 0644);
  const int fd2 = ::open(path2.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd1, 0);
  ASSERT_GE(fd2, 0);
  ASSERT_EQ(::ftruncate(fd1, 4096), 0);
  ASSERT_EQ(::ftruncate(fd2, 4096), 0);

  // Pin one virtual address, map file 1 there, and cache its resolution.
  void* probe = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE, MAP_SHARED, fd1, 0);
  ASSERT_NE(probe, MAP_FAILED);
  InvalidateMapsCache();
  const LockId id1 = GlobalIdForSharedAddress(probe);
  ASSERT_EQ(id1, GlobalIdForSharedAddress(probe));  // hot in the thread cache

  // Remap the SAME address to file 2 (MAP_FIXED implies the munmap). The
  // shim's munmap wrapper would call InvalidateMapsCache; do it by hand
  // here. A stale cache would keep handing out file 1's identity for an
  // address now backed by file 2 — a cross-process misidentification.
  void* remapped =
      ::mmap(probe, 4096, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_FIXED, fd2, 0);
  ASSERT_EQ(remapped, probe);
  InvalidateMapsCache();
  const LockId id2 = GlobalIdForSharedAddress(probe);
  EXPECT_NE(id2, id1) << "remapped address must resolve to the new backing file";

  // Cross-check: the same byte of file 2 through a second mapping at a
  // different address must agree with the re-resolved identity.
  void* other = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE, MAP_SHARED, fd2, 0);
  ASSERT_NE(other, MAP_FAILED);
  InvalidateMapsCache();
  EXPECT_EQ(id2, GlobalIdForSharedAddress(other));

  ::munmap(probe, 4096);
  ::munmap(other, 4096);
  InvalidateMapsCache();
  ::close(fd1);
  ::close(fd2);
  std::filesystem::remove(path1);
  std::filesystem::remove(path2);
}

TEST(GlobalIdTest, SingleStripeEngineTortureWithCacheChurn) {
  // A single-stripe engine (DIMMUNIX_STRIPES=1, the pre-striping topology)
  // hammered with global-lock cycles whose ids resolve through the
  // per-thread cache on every iteration, while a churn thread keeps
  // invalidating the maps epoch. The property under test: a cache hit or a
  // racing invalidation never yields a wrong identity, so every thread
  // always locks the same engine-level lock for the same address.
  const std::string path = TempPath("torture");
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, 4096), 0);
  void* map = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ASSERT_NE(map, MAP_FAILED);
  InvalidateMapsCache();

  Config config;
  config.start_monitor = false;
  config.engine_stripes = 1;
  StackTable stacks(config.max_match_depth);
  History history(&stacks);
  EventQueue queue;
  AvoidanceEngine engine(config, &stacks, &history, &queue);

  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  const LockId expected = GlobalIdForSharedAddress(map);
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::thread churn([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      InvalidateMapsCache();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      ScopedFrame frame(FrameFromName("global_id::torture"));
      const ThreadId self = engine.registry().RegisterCurrentThread();
      for (int i = 0; i < kIters; ++i) {
        const LockId id = GlobalIdForSharedAddress(map);
        if (id != expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (engine.Request(self, id) == RequestDecision::kGo) {
          engine.Acquired(self, id);
          engine.Release(self, id);
        }
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  stop.store(true, std::memory_order_relaxed);
  churn.join();
  EXPECT_EQ(mismatches.load(), 0) << "cache churn must never change an identity";

  ::munmap(map, 4096);
  InvalidateMapsCache();
  ::close(fd);
  std::filesystem::remove(path);
}

TEST(GlobalIdTest, OverlapQueriesAreScopedToTheFilesGroup) {
  const std::string path_a = TempPath("group_a");
  const std::string path_b = TempPath("group_b");
  const int fda = ::open(path_a.c_str(), O_RDWR | O_CREAT, 0644);
  const int fdb = ::open(path_b.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fda, 0);
  ASSERT_GE(fdb, 0);

  const LockId low_a = GlobalIdForFileLock(fda, GlobalLockKind::kFcntlRange, 0, 16);
  const LockId mid_a = GlobalIdForFileLock(fda, GlobalLockKind::kFcntlRange, 8, 24);
  const LockId far_a = GlobalIdForFileLock(fda, GlobalLockKind::kFcntlRange, 64, 8);
  // File B covers the same byte offsets — a different file must never
  // alias, even though the intervals overlap numerically.
  const LockId whole_b = GlobalIdForFileLock(fdb, GlobalLockKind::kFcntlRange, 0, 0);
  ASSERT_NE(low_a, kInvalidLockId);
  ASSERT_NE(whole_b, kInvalidLockId);

  const std::vector<LockId> over = OverlappingLockIds(LookupLockRange(low_a), low_a);
  EXPECT_NE(std::find(over.begin(), over.end(), mid_a), over.end())
      << "[0,16) and [8,32) on one file must conflict";
  EXPECT_EQ(std::find(over.begin(), over.end(), far_a), over.end())
      << "disjoint ranges must not conflict";
  EXPECT_EQ(std::find(over.begin(), over.end(), whole_b), over.end())
      << "another file's ranges are another group entirely";

  ::close(fda);
  ::close(fdb);
  InvalidateFdCache(fda);
  InvalidateFdCache(fdb);
  std::filesystem::remove(path_a);
  std::filesystem::remove(path_b);
}

TEST(GlobalIdTest, RangeRegistryIsBoundedWithLruEviction) {
  const std::string path = TempPath("range_cap");
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);

  // The registry must not grow without bound when a process cycles through
  // distinct ranges (the open hole: ranges were registered forever). Flood
  // it past the cap and check the oldest entry is evicted while fresh ones
  // stay resident and still answer overlap queries.
  const LockId first = GlobalIdForFileLock(fd, GlobalLockKind::kFcntlRange, 0, 8);
  ASSERT_NE(first, kInvalidLockId);
  ASSERT_TRUE(LookupLockRange(first).valid());

  constexpr std::uint64_t kFlood = kMaxRegisteredRanges + 64;
  LockId last = kInvalidLockId;
  for (std::uint64_t i = 1; i <= kFlood; ++i) {
    // Disjoint 8-byte ranges starting past `first`, so nothing overlaps it.
    last = GlobalIdForFileLock(fd, GlobalLockKind::kFcntlRange, 1024 + 16 * i, 8);
    ASSERT_NE(last, kInvalidLockId);
  }
  EXPECT_FALSE(LookupLockRange(first).valid())
      << "the least-recently-touched range must have been evicted";
  ASSERT_TRUE(LookupLockRange(last).valid()) << "fresh ranges must stay resident";

  // An overlapping neighbor of the newest range is still found via its
  // group bucket.
  const LockId neighbor =
      GlobalIdForFileLock(fd, GlobalLockKind::kFcntlRange, 1024 + 16 * kFlood + 4, 8);
  const std::vector<LockId> over = OverlappingLockIds(LookupLockRange(neighbor), neighbor);
  EXPECT_NE(std::find(over.begin(), over.end(), last), over.end());

  // An evicted-but-live range re-registers on its next slow-path
  // resolution (the fd cache was flooded past `first`'s slot too, or the
  // caller re-resolves after close/reopen) — re-resolving restores it.
  InvalidateFdCache(fd);
  ASSERT_EQ(first, GlobalIdForFileLock(fd, GlobalLockKind::kFcntlRange, 0, 8));
  EXPECT_TRUE(LookupLockRange(first).valid());

  ::close(fd);
  InvalidateFdCache(fd);
  std::filesystem::remove(path);
}

TEST(GlobalIdTest, DupStyleInvalidationRetiresTheTargetDescriptor) {
  // What the shim's dup2/dup3 wrappers (and F_DUPFD result bump) enforce:
  // after a descriptor number is redirected to another file, the cached
  // identity for that number must die. This exercises the same
  // InvalidateFdCache path the wrappers call.
  const std::string path1 = TempPath("dup_a");
  const std::string path2 = TempPath("dup_b");
  const int fd1 = ::open(path1.c_str(), O_RDWR | O_CREAT, 0644);
  const int fd2 = ::open(path2.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd1, 0);
  ASSERT_GE(fd2, 0);
  InvalidateFdCache(fd1);
  InvalidateFdCache(fd2);

  const LockId id1 = GlobalIdForFileLock(fd1, GlobalLockKind::kFlock, 0);
  ASSERT_EQ(id1, GlobalIdForFileLock(fd1, GlobalLockKind::kFlock, 0));  // cached

  // dup2: fd1 now refers to file 2. Without the wrapper's bump the cache
  // would keep serving file 1's identity for this number.
  ASSERT_EQ(::dup2(fd2, fd1), fd1);
  InvalidateFdCache(fd1);  // the dup2 wrapper's bump
  const LockId id_redirected = GlobalIdForFileLock(fd1, GlobalLockKind::kFlock, 0);
  EXPECT_NE(id_redirected, id1) << "redirected descriptor must resolve to the new file";
  EXPECT_EQ(id_redirected, GlobalIdForFileLock(fd2, GlobalLockKind::kFlock, 0));

  ::close(fd1);
  ::close(fd2);
  InvalidateFdCache(fd1);
  InvalidateFdCache(fd2);
  std::filesystem::remove(path1);
  std::filesystem::remove(path2);
}

TEST(GlobalIdTest, ProcessIdentityFrameIsStable) {
  const Frame a = ProcessIdentityFrame();
  const Frame b = ProcessIdentityFrame();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, kInvalidFrame);
}

}  // namespace
}  // namespace ipc
}  // namespace dimmunix
