// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Cross-process lock identities: the same lock must hash to the same LockId
// through any fd / mapping that reaches it, different locks must not
// collide, and every global id must carry kGlobalLockBit.

#include "src/ipc/global_id.h"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <filesystem>
#include <string>

namespace dimmunix {
namespace ipc {
namespace {

std::string TempPath(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("global_id_") + tag + "_" + std::to_string(::getpid())))
      .string();
}

TEST(GlobalIdTest, FileLockIdentityIsStableAcrossDescriptors) {
  const std::string path = TempPath("file");
  const int fd1 = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd1, 0);
  const int fd2 = ::open(path.c_str(), O_RDWR);  // independent open
  ASSERT_GE(fd2, 0);

  const LockId a = GlobalIdForFileLock(fd1, GlobalLockKind::kFlock, 0);
  const LockId b = GlobalIdForFileLock(fd2, GlobalLockKind::kFlock, 0);
  EXPECT_NE(a, kInvalidLockId);
  EXPECT_EQ(a, b) << "same file through different fds must be the same lock";
  EXPECT_TRUE(IsGlobalLockId(a));

  ::close(fd1);
  ::close(fd2);
  std::filesystem::remove(path);
}

TEST(GlobalIdTest, OffsetsAndKindsAreDisjointNamespaces) {
  const std::string path = TempPath("kinds");
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);

  const LockId flock_id = GlobalIdForFileLock(fd, GlobalLockKind::kFlock, 0);
  const LockId fcntl0 = GlobalIdForFileLock(fd, GlobalLockKind::kFcntlRange, 0);
  const LockId fcntl8 = GlobalIdForFileLock(fd, GlobalLockKind::kFcntlRange, 8);
  // flock and fcntl locks on one file never interact in the kernel; their
  // ids must differ even at offset 0. Distinct ranges are distinct locks.
  EXPECT_NE(flock_id, fcntl0);
  EXPECT_NE(fcntl0, fcntl8);

  // Range identity includes the length: fcntl [8, 8+16) and [8, 8+32) are
  // different kernel locks, and the whole-file lock (l_len 0, "to EOF")
  // differs from any bounded range at the same start. Equal (start, len)
  // pairs agree across independent opens.
  const LockId fcntl8_len16 = GlobalIdForFileLock(fd, GlobalLockKind::kFcntlRange, 8, 16);
  const LockId fcntl8_len32 = GlobalIdForFileLock(fd, GlobalLockKind::kFcntlRange, 8, 32);
  EXPECT_NE(fcntl8_len16, fcntl8_len32);
  EXPECT_NE(fcntl8, fcntl8_len16) << "to-EOF lock must not alias a bounded range";
  const int fd_again = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd_again, 0);
  EXPECT_EQ(fcntl8_len16, GlobalIdForFileLock(fd_again, GlobalLockKind::kFcntlRange, 8, 16));
  ::close(fd_again);

  ::close(fd);
  std::filesystem::remove(path);
}

TEST(GlobalIdTest, BadDescriptorYieldsInvalid) {
  EXPECT_EQ(GlobalIdForFileLock(-1, GlobalLockKind::kFlock, 0), kInvalidLockId);
}

TEST(GlobalIdTest, SharedMappingIdentityFollowsTheBackingFile) {
  const std::string path = TempPath("shm");
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, 8192), 0);

  // Two independent mappings of the same file: same byte => same identity,
  // regardless of virtual address.
  void* map1 = ::mmap(nullptr, 8192, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  void* map2 = ::mmap(nullptr, 8192, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ASSERT_NE(map1, MAP_FAILED);
  ASSERT_NE(map2, MAP_FAILED);
  ASSERT_NE(map1, map2);
  InvalidateMapsCache();  // the mappings postdate any cached parse

  const LockId a = GlobalIdForSharedAddress(static_cast<char*>(map1) + 128);
  const LockId b = GlobalIdForSharedAddress(static_cast<char*>(map2) + 128);
  const LockId other = GlobalIdForSharedAddress(static_cast<char*>(map1) + 256);
  EXPECT_TRUE(IsGlobalLockId(a));
  EXPECT_EQ(a, b) << "same file offset through different mappings";
  EXPECT_NE(a, other) << "different offsets are different locks";

  ::munmap(map1, 8192);
  ::munmap(map2, 8192);
  ::close(fd);
  std::filesystem::remove(path);
}

TEST(GlobalIdTest, AnonymousSharedMemoryFallsBackToAddressIdentity) {
  void* map = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(map, MAP_FAILED);
  InvalidateMapsCache();
  const LockId id = GlobalIdForSharedAddress(map);
  EXPECT_TRUE(IsGlobalLockId(id));
  EXPECT_NE(id, kInvalidLockId);
  ::munmap(map, 4096);
}

TEST(GlobalIdTest, ProcessIdentityFrameIsStable) {
  const Frame a = ProcessIdentityFrame();
  const Frame b = ProcessIdentityFrame();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, kInvalidFrame);
}

}  // namespace
}  // namespace ipc
}  // namespace dimmunix
