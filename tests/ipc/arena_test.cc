// Copyright (c) dimmunix-cpp authors. MIT license.
//
// The shared-memory arena: publish/snapshot round trips, seqlock-guarded
// records, slot claiming, clean release, and the PID+start-time liveness
// sweep that makes a SIGKILL'd participant unable to wedge the fleet.

#include "src/ipc/arena.h"

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace dimmunix {
namespace ipc {
namespace {

class ArenaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("arena_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

TEST_F(ArenaTest, PublishSnapshotRoundTrip) {
  std::string error;
  auto a = IpcArena::OpenOrCreate(path_, &error);
  ASSERT_NE(a, nullptr) << error;
  auto b = IpcArena::OpenOrCreate(path_, &error);
  ASSERT_NE(b, nullptr) << error;
  EXPECT_NE(a->participant_index(), b->participant_index());

  const LockId lock = kGlobalLockBit | 0x42;
  const std::vector<Frame> frames{0x1111, 0x2222, 0x3333};
  a->PublishWait(7, lock, AcquireMode::kShared, frames);

  auto edges = b->SnapshotForeign();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].participant, a->participant_index());
  EXPECT_EQ(edges[0].thread, 7);
  EXPECT_EQ(edges[0].lock, lock);
  EXPECT_FALSE(edges[0].hold);
  EXPECT_EQ(edges[0].mode, AcquireMode::kShared);
  EXPECT_EQ(edges[0].frames, frames);

  // Wait -> hold reuses the row; the old wait edge is gone.
  a->PublishHold(7, lock, AcquireMode::kExclusive, frames);
  edges = b->SnapshotForeign();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_TRUE(edges[0].hold);
  EXPECT_EQ(edges[0].mode, AcquireMode::kExclusive);
  EXPECT_EQ(edges[0].count, 1u);

  // A's own snapshot excludes its own edges.
  EXPECT_TRUE(a->SnapshotForeign().empty());

  a->ClearHold(7, lock);
  EXPECT_TRUE(b->SnapshotForeign().empty());
}

TEST_F(ArenaTest, ReentrantHoldsCountAndUnwind) {
  std::string error;
  auto a = IpcArena::OpenOrCreate(path_, &error);
  ASSERT_NE(a, nullptr) << error;
  auto b = IpcArena::OpenOrCreate(path_, &error);
  ASSERT_NE(b, nullptr) << error;

  const LockId lock = kGlobalLockBit | 0x99;
  const std::vector<Frame> frames{0xaa};
  a->PublishHold(3, lock, AcquireMode::kExclusive, frames);
  a->PublishHold(3, lock, AcquireMode::kExclusive, frames);
  auto edges = b->SnapshotForeign();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].count, 2u);

  a->ClearHold(3, lock);  // reentrant unwind: still held
  edges = b->SnapshotForeign();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].count, 1u);

  a->ClearHold(3, lock);  // final release
  EXPECT_TRUE(b->SnapshotForeign().empty());
}

TEST_F(ArenaTest, ClearWaitNeverRetractsAPromotedHold) {
  std::string error;
  auto a = IpcArena::OpenOrCreate(path_, &error);
  ASSERT_NE(a, nullptr) << error;
  auto b = IpcArena::OpenOrCreate(path_, &error);
  ASSERT_NE(b, nullptr) << error;

  const LockId lock = kGlobalLockBit | 0x7;
  a->PublishWait(1, lock, AcquireMode::kExclusive, {0x1});
  a->PublishHold(1, lock, AcquireMode::kExclusive, {0x1});
  a->ClearWait(1, lock);  // stale rollback after the acquisition committed
  auto edges = b->SnapshotForeign();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_TRUE(edges[0].hold);

  // And an upgrade's wait never hides the standing hold: the wait takes a
  // second row of its own (lifecycle covered by UpgradeWaitGetsDistinctRow).
  a->PublishWait(1, lock, AcquireMode::kExclusive, {0x1});
  edges = b->SnapshotForeign();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_NE(edges[0].hold, edges[1].hold);
}

TEST_F(ArenaTest, UpgradeWaitGetsDistinctRow) {
  std::string error;
  auto a = IpcArena::OpenOrCreate(path_, &error);
  ASSERT_NE(a, nullptr) << error;
  auto b = IpcArena::OpenOrCreate(path_, &error);
  ASSERT_NE(b, nullptr) << error;

  const LockId lock = kGlobalLockBit | 0x8;
  a->PublishHold(4, lock, AcquireMode::kShared, {0x1});
  // Shared -> exclusive upgrade: peers must see the shared hold AND the
  // exclusive wait side by side, or cross-process upgrade-upgrade cycles
  // are invisible.
  a->PublishWait(4, lock, AcquireMode::kExclusive, {0x2});
  auto edges = b->SnapshotForeign();
  ASSERT_EQ(edges.size(), 2u);
  const auto& hold = edges[0].hold ? edges[0] : edges[1];
  const auto& wait = edges[0].hold ? edges[1] : edges[0];
  EXPECT_TRUE(hold.hold);
  EXPECT_EQ(hold.mode, AcquireMode::kShared);
  EXPECT_FALSE(wait.hold);
  EXPECT_EQ(wait.mode, AcquireMode::kExclusive);
  EXPECT_EQ(hold.thread, wait.thread);
  EXPECT_EQ(hold.lock, wait.lock);

  // A withdrawn upgrade (trylock rollback / yield timeout) retracts only
  // the wait row; the shared hold stays published.
  a->ClearWait(4, lock);
  edges = b->SnapshotForeign();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_TRUE(edges[0].hold);
  EXPECT_EQ(edges[0].mode, AcquireMode::kShared);

  // A committed upgrade frees the wait row and promotes the hold row.
  a->PublishWait(4, lock, AcquireMode::kExclusive, {0x2});
  a->PublishHold(4, lock, AcquireMode::kExclusive, {0x2});
  edges = b->SnapshotForeign();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_TRUE(edges[0].hold);
  EXPECT_EQ(edges[0].mode, AcquireMode::kExclusive);

  // Full unwind leaks nothing (reentrant count was bumped by the commit).
  a->ClearHold(4, lock);
  a->ClearHold(4, lock);
  EXPECT_TRUE(b->SnapshotForeign().empty());
}

TEST_F(ArenaTest, OverflowDropsInsteadOfBlocking) {
  std::string error;
  auto a = IpcArena::OpenOrCreate(path_, &error);
  ASSERT_NE(a, nullptr) << error;
  for (int i = 0; i < IpcArena::kEdgesPerParticipant + 5; ++i) {
    a->PublishWait(1, kGlobalLockBit | static_cast<LockId>(0x1000 + i),
                   AcquireMode::kExclusive, {0x1});
  }
  EXPECT_EQ(a->dropped_publishes(), 5u);
}

TEST_F(ArenaTest, CleanShutdownReleasesSlotAndEdges) {
  std::string error;
  {
    auto a = IpcArena::OpenOrCreate(path_, &error);
    ASSERT_NE(a, nullptr) << error;
    a->PublishHold(1, kGlobalLockBit | 0x5, AcquireMode::kExclusive, {0x1});
  }
  auto b = IpcArena::OpenOrCreate(path_, &error);
  ASSERT_NE(b, nullptr) << error;
  EXPECT_EQ(b->participant_index(), 0) << "released slot must be reusable";
  EXPECT_TRUE(b->SnapshotForeign().empty()) << "released edges must be gone";
}

TEST_F(ArenaTest, RejectsForeignFilesWithoutTouchingThem) {
  const std::string junk_content = "this is not an arena, but it is not empty either";
  {
    std::ofstream junk(path_, std::ios::binary);
    junk << junk_content;
  }
  std::string error;
  auto a = IpcArena::OpenOrCreate(path_, &error);
  EXPECT_EQ(a, nullptr);
  EXPECT_NE(error.find("not a Dimmunix IPC arena"), std::string::npos) << error;
  // The innocent file must be byte-identical — never truncated or resized.
  std::ifstream check(path_, std::ios::binary);
  std::string after((std::istreambuf_iterator<char>(check)), std::istreambuf_iterator<char>());
  EXPECT_EQ(after, junk_content);
}

TEST_F(ArenaTest, SweepReclaimsSigkilledParticipant) {
  std::string error;
  auto survivor = IpcArena::OpenOrCreate(path_, &error);
  ASSERT_NE(survivor, nullptr) << error;

  int ready[2];
  ASSERT_EQ(::pipe(ready), 0);
  const pid_t child = ::fork();
  if (child == 0) {
    // Child: claim a slot, publish a hold, report readiness, hang forever —
    // then die by SIGKILL with the edge still standing.
    std::string child_error;
    auto arena = IpcArena::OpenOrCreate(path_, &child_error);
    if (arena == nullptr) {
      ::_exit(1);
    }
    arena->PublishHold(1, kGlobalLockBit | 0xdead, AcquireMode::kExclusive, {0xbeef});
    char byte = 'r';
    (void)!::write(ready[1], &byte, 1);
    for (;;) {
      ::pause();
    }
  }
  char byte = 0;
  ASSERT_EQ(::read(ready[0], &byte, 1), 1);
  ::close(ready[0]);
  ::close(ready[1]);

  ASSERT_EQ(survivor->SnapshotForeign().size(), 1u) << "child's hold must be visible";
  ::kill(child, SIGKILL);
  ::waitpid(child, nullptr, 0);

  // The corpse's pid is gone: one sweep reclaims the slot and its edges.
  EXPECT_EQ(survivor->SweepDeadParticipants(), 1);
  EXPECT_TRUE(survivor->SnapshotForeign().empty());
  EXPECT_EQ(survivor->SweepDeadParticipants(), 0) << "sweep is idempotent";
}

TEST_F(ArenaTest, ParticipantsReportLiveness) {
  std::string error;
  auto a = IpcArena::OpenOrCreate(path_, &error);
  ASSERT_NE(a, nullptr) << error;
  a->Heartbeat();
  a->PublishWait(1, kGlobalLockBit | 0x1, AcquireMode::kExclusive, {0x1});
  auto parts = a->Participants();
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_TRUE(parts[0].self);
  EXPECT_TRUE(parts[0].alive);
  EXPECT_EQ(parts[0].pid, static_cast<std::uint32_t>(::getpid()));
  EXPECT_EQ(parts[0].edges, 1u);
  EXPECT_GE(parts[0].heartbeat_age_ms, 0);
}

TEST(ArenaLivenessTest, ProcessStartTimeDetectsDeath) {
  EXPECT_NE(ProcessStartTime(static_cast<std::uint32_t>(::getpid())), 0u);
  const pid_t child = ::fork();
  if (child == 0) {
    ::_exit(0);
  }
  ::waitpid(child, nullptr, 0);
  EXPECT_EQ(ProcessStartTime(static_cast<std::uint32_t>(child)), 0u);
}

}  // namespace
}  // namespace ipc
}  // namespace dimmunix
