// Copyright (c) dimmunix-cpp authors. MIT license.
//
// The bridge: foreign arena edges folded into a local engine as
// synthetic-thread tuples, cross-process signature instantiation, and the
// retirement of a vanished participant's edges. Two complete engine stacks
// ("process" A and B) share one arena file inside this test process; the
// bridges run deterministically via Tick().
//
// Publication is batched (docs/ipc-arena.md): an engine transition lands in
// the publisher's pending op-log, not the arena, so tests drain the
// publishing side with FlushPending() before the peer's mirroring Tick —
// exactly the one-flush-epoch visibility contract the protocol documents.

#include "src/ipc/bridge.h"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>

#include "src/common/config.h"
#include "src/core/avoidance.h"
#include "src/event/event_queue.h"
#include "src/ipc/global_id.h"
#include "src/rag/rag.h"
#include "src/signature/history.h"
#include "src/stack/annotation.h"
#include "src/stack/stack_table.h"

namespace dimmunix {
namespace ipc {
namespace {

constexpr LockId kLock1 = kGlobalLockBit | 0x101;
constexpr LockId kLock2 = kGlobalLockBit | 0x202;

// One in-process "process": engine + bridge over the shared arena.
struct Side {
  explicit Side(const std::string& arena_path) {
    Config config;
    config.start_monitor = false;
    stacks = std::make_unique<StackTable>(config.max_match_depth);
    history = std::make_unique<History>(stacks.get());
    queue = std::make_unique<EventQueue>();
    engine = std::make_unique<AvoidanceEngine>(config, stacks.get(), history.get(),
                                               queue.get());
    IpcBridge::Options options;
    options.arena_path = arena_path;
    options.start_thread = false;  // ticks are driven by the test
    bridge = std::make_unique<IpcBridge>(options, engine.get(), stacks.get());
    std::string error;
    started = bridge->Start(&error);
  }

  std::unique_ptr<StackTable> stacks;
  std::unique_ptr<History> history;
  std::unique_ptr<EventQueue> queue;
  std::unique_ptr<AvoidanceEngine> engine;
  std::unique_ptr<IpcBridge> bridge;
  bool started = false;
};

class BridgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    arena_path_ = (std::filesystem::temp_directory_path() /
                   ("bridge_" + std::to_string(::getpid()) + "_" +
                    ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                      .string();
    std::filesystem::remove(arena_path_);
  }
  void TearDown() override { std::filesystem::remove(arena_path_); }

  std::string arena_path_;
};

TEST_F(BridgeTest, ForeignHoldBecomesLocalOwnerAndTuple) {
  Side a(arena_path_);
  Side b(arena_path_);
  ASSERT_TRUE(a.started);
  ASSERT_TRUE(b.started);

  // A acquires a global lock through the full protocol.
  const ThreadId ta = a.engine->registry().RegisterCurrentThread();
  ScopedFrame frame(FrameFromName("bridge::holder"));
  ASSERT_EQ(a.engine->Request(ta, kLock1), RequestDecision::kGo);
  a.engine->Acquired(ta, kLock1);
  a.bridge->FlushPending();

  // B's next tick folds the hold in under a synthetic foreign thread id.
  b.bridge->Tick();
  const ThreadId foreign = b.engine->LockOwner(kLock1);
  EXPECT_GE(foreign, kForeignThreadBase);
  EXPECT_FALSE(b.engine->registry().Contains(foreign))
      << "synthetic ids must not alias registry slots";
  EXPECT_EQ(b.bridge->SnapshotStatus().foreign_edges_mirrored, 1u);

  // Release in A; B's next tick retires the mirrored hold.
  a.engine->Release(ta, kLock1);
  a.bridge->FlushPending();
  b.bridge->Tick();
  EXPECT_EQ(b.engine->LockOwner(kLock1), kInvalidThreadId);
  EXPECT_EQ(b.bridge->SnapshotStatus().foreign_edges_mirrored, 0u);
}

TEST_F(BridgeTest, CrossProcessInstantiationRefusesTheDeadlyAcquisition) {
  Side a(arena_path_);
  Side b(arena_path_);
  ASSERT_TRUE(a.started);
  ASSERT_TRUE(b.started);

  // The cross-process signature: proc-qualified first-lock stacks of both
  // sides, as the monitor would have archived after run 1.
  const Frame proc = ProcessIdentityFrame();
  const Frame frame_a = FrameFromName("bridge::side_a");
  const Frame frame_b = FrameFromName("bridge::side_b");
  bool added = false;
  for (Side* side : {&a, &b}) {
    const StackId sa = side->stacks->Intern({proc, frame_a});
    const StackId sb = side->stacks->Intern({proc, frame_b});
    side->history->Add(SignatureKind::kDeadlock, {sa, sb}, /*match_depth=*/4, &added);
    side->engine->NotifyHistoryChanged();
  }

  // A holds lock1 (its first lock, at its signature stack).
  const ThreadId ta = a.engine->registry().RegisterCurrentThread();
  {
    ScopedFrame frame(frame_a);
    ASSERT_EQ(a.engine->Request(ta, kLock1), RequestDecision::kGo);
    a.engine->Acquired(ta, kLock1);
  }
  a.bridge->FlushPending();
  b.bridge->Tick();

  // B's first acquisition would complete the instantiation: the engine must
  // refuse (kBusy in the nonblocking form — the blocking form would yield).
  const ThreadId tb = b.engine->registry().RegisterCurrentThread();
  {
    ScopedFrame frame(frame_b);
    EXPECT_EQ(b.engine->RequestNonblocking(tb, kLock2), RequestDecision::kBusy);
  }
  EXPECT_EQ(b.engine->stats().yields.load(), 1u);

  // Once A releases (and the bridge mirrors it), the same acquisition is
  // safe again — one process's escape unblocks the peer.
  a.engine->Release(ta, kLock1);
  a.bridge->FlushPending();
  b.bridge->Tick();
  {
    ScopedFrame frame(frame_b);
    EXPECT_EQ(b.engine->RequestNonblocking(tb, kLock2), RequestDecision::kGo);
  }
  b.engine->CancelRequest(tb, kLock2);
}

TEST_F(BridgeTest, StoppedPeerEdgesAreRetired) {
  Side b(arena_path_);
  ASSERT_TRUE(b.started);
  {
    Side a(arena_path_);
    ASSERT_TRUE(a.started);
    const ThreadId ta = a.engine->registry().RegisterCurrentThread();
    ScopedFrame frame(FrameFromName("bridge::transient"));
    ASSERT_EQ(a.engine->Request(ta, kLock1), RequestDecision::kGo);
    a.engine->Acquired(ta, kLock1);
    a.bridge->FlushPending();
    b.bridge->Tick();
    EXPECT_NE(b.engine->LockOwner(kLock1), kInvalidThreadId);
    // A's bridge shuts down cleanly here (participant slot released, edges
    // cleared) — the library-mode equivalent of a process exit.
  }
  b.bridge->Tick();
  EXPECT_EQ(b.engine->LockOwner(kLock1), kInvalidThreadId);
}

TEST_F(BridgeTest, WaitEdgesMirrorAndClear) {
  Side a(arena_path_);
  Side b(arena_path_);
  ASSERT_TRUE(a.started);
  ASSERT_TRUE(b.started);

  const ThreadId ta = a.engine->registry().RegisterCurrentThread();
  ScopedFrame frame(FrameFromName("bridge::waiter"));
  ASSERT_EQ(a.engine->Request(ta, kLock2), RequestDecision::kGo);  // wait standing
  a.bridge->FlushPending();
  b.bridge->Tick();
  EXPECT_EQ(b.bridge->SnapshotStatus().foreign_edges_mirrored, 1u);

  a.engine->CancelRequest(ta, kLock2);  // trylock-style rollback
  a.bridge->FlushPending();
  b.bridge->Tick();
  EXPECT_EQ(b.bridge->SnapshotStatus().foreign_edges_mirrored, 0u);
}

TEST_F(BridgeTest, UpgradeUpgradeCycleAcrossProcessesIsDetectable) {
  Side a(arena_path_);
  Side b(arena_path_);
  ASSERT_TRUE(a.started);
  ASSERT_TRUE(b.started);

  // Both "processes" read-lock the same global lock, then request the
  // exclusive upgrade — the SQLite RESERVED-lock shape, across processes.
  // Neither upgrade can commit while the other side's shared hold stands.
  const ThreadId ta = a.engine->registry().RegisterCurrentThread();
  const ThreadId tb = b.engine->registry().RegisterCurrentThread();
  ScopedFrame frame(FrameFromName("bridge::upgrader"));
  ASSERT_EQ(a.engine->Request(ta, kLock1, AcquireMode::kShared), RequestDecision::kGo);
  a.engine->Acquired(ta, kLock1, AcquireMode::kShared);
  ASSERT_EQ(b.engine->Request(tb, kLock1, AcquireMode::kShared), RequestDecision::kGo);
  b.engine->Acquired(tb, kLock1, AcquireMode::kShared);
  a.bridge->FlushPending();
  b.bridge->Tick();  // B mirrors A's shared hold

  // Upgrade requests (granted by avoidance — no signature matches — so the
  // wait edges stand while the raw layer would block).
  ASSERT_EQ(a.engine->Request(ta, kLock1, AcquireMode::kExclusive), RequestDecision::kGo);
  ASSERT_EQ(b.engine->Request(tb, kLock1, AcquireMode::kExclusive), RequestDecision::kGo);
  a.bridge->FlushPending();
  b.bridge->Tick();

  // The arena publishes A's upgrade as hold + wait side by side, so B
  // mirrors TWO foreign edges for the one foreign thread.
  EXPECT_EQ(b.bridge->SnapshotStatus().foreign_edges_mirrored, 2u);

  // B's monitor-side RAG now sees the cycle: tb (exclusive waiter) conflicts
  // with the foreign shared holder, whose own exclusive wait conflicts with
  // tb's shared hold. Before upgrade waits were published, this deadlock
  // was undetectable from either process.
  Rag rag;
  // tb's own allow/acquired events are staged in its slot buffer (hot-event
  // batching); sweep them into the queue the way the monitor's drain does.
  b.engine->FlushAllThreadEvents();
  while (auto ev = b.queue->Pop()) {
    rag.Apply(*ev);
  }
  EXPECT_FALSE(rag.DetectDeadlocks().empty())
      << "cross-process upgrade-upgrade cycle must form a detectable RAG cycle";
}

TEST_F(BridgeTest, MirrorToleratesUnflushedPublisherLag) {
  Side a(arena_path_);
  Side b(arena_path_);
  ASSERT_TRUE(a.started);
  ASSERT_TRUE(b.started);

  // A's wait sits in the pending log. B's mirror pass must see a consistent
  // (empty) arena — deferred publication is invisible, never torn.
  const ThreadId ta = a.engine->registry().RegisterCurrentThread();
  ScopedFrame frame(FrameFromName("bridge::lagged"));
  ASSERT_EQ(a.engine->Request(ta, kLock1), RequestDecision::kGo);
  b.bridge->Tick();
  EXPECT_EQ(b.bridge->SnapshotStatus().foreign_edges_mirrored, 0u);
  EXPECT_GT(a.bridge->SnapshotStatus().pending_ops, 0u);

  // One flush epoch later the edge is there — the documented visibility
  // bound (docs/ipc-arena.md).
  a.bridge->FlushPending();
  b.bridge->Tick();
  EXPECT_EQ(b.bridge->SnapshotStatus().foreign_edges_mirrored, 1u);
  EXPECT_EQ(a.bridge->SnapshotStatus().pending_ops, 0u);
  a.engine->CancelRequest(ta, kLock1);
}

TEST_F(BridgeTest, UncontendedAcquireReleaseCoalescesToNothing) {
  Side a(arena_path_);
  Side b(arena_path_);
  ASSERT_TRUE(a.started);
  ASSERT_TRUE(b.started);

  // The whole point of batching: a full uncontended acquire/release cycle
  // (wait -> hold -> clear) annihilates inside the op-log, so the flush has
  // nothing to write and the arena is never touched.
  const ThreadId ta = a.engine->registry().RegisterCurrentThread();
  ScopedFrame frame(FrameFromName("bridge::uncontended"));
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.engine->Request(ta, kLock1), RequestDecision::kGo);
    a.engine->Acquired(ta, kLock1);
    a.engine->Release(ta, kLock1);
  }
  EXPECT_EQ(a.bridge->SnapshotStatus().pending_ops, 0u);
  a.bridge->FlushPending();  // must be a no-op
  EXPECT_EQ(a.bridge->SnapshotStatus().flushes, 0u);
  EXPECT_EQ(a.bridge->SnapshotStatus().flush_ops, 0u);
  b.bridge->Tick();
  EXPECT_EQ(b.bridge->SnapshotStatus().foreign_edges_mirrored, 0u);
}

TEST_F(BridgeTest, FlushedWaitIsClearedWhenGrantAndReleaseCoalesce) {
  Side a(arena_path_);
  Side b(arena_path_);
  ASSERT_TRUE(a.started);
  ASSERT_TRUE(b.started);

  // The op-log leak regression: A's wait is flushed to the arena (the
  // pre-park contention flush, the epoch timer, or the backlog cap all do
  // this), and THEN the grant + release land in the log and annihilate
  // (ClearHold pops Hold). Nothing in that pair reaches the arena — so the
  // bridge must enqueue a compensating ClearWait, or the flushed wait row
  // leaks and peers mirror a phantom waiter forever.
  const ThreadId ta = a.engine->registry().RegisterCurrentThread();
  ScopedFrame frame(FrameFromName("bridge::flushed_waiter"));
  ASSERT_EQ(a.engine->Request(ta, kLock1), RequestDecision::kGo);
  a.bridge->FlushPending();  // wait row is now arena-visible
  b.bridge->Tick();
  EXPECT_EQ(b.bridge->SnapshotStatus().foreign_edges_mirrored, 1u);

  a.engine->Acquired(ta, kLock1);
  a.engine->Release(ta, kLock1);
  a.bridge->FlushPending();
  b.bridge->Tick();
  EXPECT_EQ(b.engine->LockOwner(kLock1), kInvalidThreadId);
  EXPECT_EQ(b.bridge->SnapshotStatus().foreign_edges_mirrored, 0u)
      << "a flushed wait whose grant/release pair coalesced away must not "
         "leave a phantom wait row in the arena";
}

TEST_F(BridgeTest, ParkThenGrantPromotesFlushedWaitToHold) {
  Side a(arena_path_);
  Side b(arena_path_);
  ASSERT_TRUE(a.started);
  ASSERT_TRUE(b.started);

  // The park-then-grant path: wait flushed first (as before parking), the
  // grant's Hold flushed on a later epoch. The hold must replace — not
  // stack beside — the published wait row, and the eventual release must
  // retire everything.
  const ThreadId ta = a.engine->registry().RegisterCurrentThread();
  ScopedFrame frame(FrameFromName("bridge::parked_waiter"));
  ASSERT_EQ(a.engine->Request(ta, kLock1), RequestDecision::kGo);
  a.bridge->FlushPending();
  b.bridge->Tick();
  EXPECT_EQ(b.bridge->SnapshotStatus().foreign_edges_mirrored, 1u);
  EXPECT_EQ(b.engine->LockOwner(kLock1), kInvalidThreadId) << "wait edge, not a hold";

  a.engine->Acquired(ta, kLock1);
  a.bridge->FlushPending();
  b.bridge->Tick();
  EXPECT_EQ(b.bridge->SnapshotStatus().foreign_edges_mirrored, 1u)
      << "the grant must promote the wait row, not publish a second edge";
  EXPECT_NE(b.engine->LockOwner(kLock1), kInvalidThreadId);

  a.engine->Release(ta, kLock1);
  a.bridge->FlushPending();
  b.bridge->Tick();
  EXPECT_EQ(b.engine->LockOwner(kLock1), kInvalidThreadId);
  EXPECT_EQ(b.bridge->SnapshotStatus().foreign_edges_mirrored, 0u);
}

TEST_F(BridgeTest, OverlappingFcntlRangesConflictInTheMirror) {
  Side a(arena_path_);
  Side b(arena_path_);
  ASSERT_TRUE(a.started);
  ASSERT_TRUE(b.started);

  // Two distinct fcntl ranges on one file: [0,16) and [8,32) overlap, so
  // the kernel would conflict them — and so must the mirrored RAG, even
  // though their LockIds differ. [40,48) stays disjoint as the control.
  const std::string file_path = arena_path_ + ".lockfile";
  const int fd = ::open(file_path.c_str(), O_CREAT | O_RDWR, 0600);
  ASSERT_GE(fd, 0);
  const LockId low = GlobalIdForFileLock(fd, GlobalLockKind::kFcntlRange, 0, 16);
  const LockId mid = GlobalIdForFileLock(fd, GlobalLockKind::kFcntlRange, 8, 24);
  const LockId far = GlobalIdForFileLock(fd, GlobalLockKind::kFcntlRange, 40, 8);
  ASSERT_NE(low, kInvalidLockId);
  ASSERT_NE(low, mid);
  ASSERT_NE(low, far);

  // A holds [0,16).
  const ThreadId ta = a.engine->registry().RegisterCurrentThread();
  ScopedFrame frame(FrameFromName("bridge::range_holder"));
  ASSERT_EQ(a.engine->Request(ta, low), RequestDecision::kGo);
  a.engine->Acquired(ta, low);
  a.bridge->FlushPending();
  b.bridge->Tick();

  // B sees the foreign hold under A's id AND under the overlapping local
  // id — the regression this test pins: pre-range-awareness, [0,16) vs
  // [8,32) were independent locks and the cycle through them had a gap.
  EXPECT_NE(b.engine->LockOwner(low), kInvalidThreadId);
  EXPECT_NE(b.engine->LockOwner(mid), kInvalidThreadId);
  EXPECT_EQ(b.engine->LockOwner(far), kInvalidThreadId)
      << "disjoint ranges must not alias";
  EXPECT_EQ(b.bridge->SnapshotStatus().foreign_edges_mirrored, 2u);

  // Release retires both the original and the alias.
  a.engine->Release(ta, low);
  a.bridge->FlushPending();
  b.bridge->Tick();
  EXPECT_EQ(b.engine->LockOwner(low), kInvalidThreadId);
  EXPECT_EQ(b.engine->LockOwner(mid), kInvalidThreadId);
  ::close(fd);
  std::filesystem::remove(file_path);
}

TEST_F(BridgeTest, LocalLocksNeverReachTheArena) {
  Side a(arena_path_);
  Side b(arena_path_);
  ASSERT_TRUE(a.started);
  ASSERT_TRUE(b.started);

  const ThreadId ta = a.engine->registry().RegisterCurrentThread();
  ScopedFrame frame(FrameFromName("bridge::local"));
  const LockId local = 0x1234;  // no kGlobalLockBit
  ASSERT_EQ(a.engine->Request(ta, local), RequestDecision::kGo);
  a.engine->Acquired(ta, local);
  b.bridge->Tick();
  EXPECT_EQ(b.bridge->SnapshotStatus().foreign_edges_mirrored, 0u);
  a.engine->Release(ta, local);
}

}  // namespace
}  // namespace ipc
}  // namespace dimmunix
