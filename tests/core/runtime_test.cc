// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Runtime facade: wiring, history hot-reload (§8), the user signature-
// disable workflow (§5.7), and post-upgrade calibration restart (§8).

#include "src/core/runtime.h"
#include "src/persist/file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <thread>
#include <unistd.h>

#include "src/stack/annotation.h"

namespace dimmunix {
namespace {

Config TestConfig() {
  Config config;
  config.start_monitor = false;
  config.default_match_depth = 1;
  return config;
}

std::string TempHistory(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("runtime_") + tag + "_" + std::to_string(::getpid()) + ".hist"))
      .string();
}

int SeedSignature(Runtime& rt, const char* fa, const char* fb) {
  bool added = false;
  const int index = rt.history().Add(
      SignatureKind::kDeadlock,
      {rt.stacks().Intern({FrameFromName(fa)}), rt.stacks().Intern({FrameFromName(fb)})}, 1,
      &added);
  rt.engine().NotifyHistoryChanged();
  return index;
}

// Triggers one avoidance of the {holdX, reqY} signature.
void TriggerAvoidance(Runtime& rt) {
  const ThreadId main_tid = rt.RegisterCurrentThread();
  {
    ScopedFrame frame(FrameFromName("holdX"));
    ASSERT_EQ(rt.engine().Request(main_tid, 500), RequestDecision::kGo);
    rt.engine().Acquired(main_tid, 500);
  }
  std::thread other([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName("reqY"));
    EXPECT_EQ(rt.engine().RequestNonblocking(tid, 600), RequestDecision::kBusy);
  });
  other.join();
  rt.engine().Release(main_tid, 500);
}

TEST(RuntimeTest, ComponentsAreWired) {
  Runtime rt(TestConfig());
  EXPECT_EQ(rt.history().size(), 0u);
  EXPECT_EQ(rt.stacks().max_depth(), rt.config().max_match_depth);
  EXPECT_GE(rt.RegisterCurrentThread(), 0);
}

TEST(RuntimeTest, GlobalRuntimeIsSingleton) {
  Runtime& a = Runtime::Global();
  Runtime& b = Runtime::Global();
  EXPECT_EQ(&a, &b);
}

TEST(RuntimeTest, DisableLastAvoidedSignature) {
  Runtime rt(TestConfig());
  EXPECT_EQ(rt.DisableLastAvoidedSignature(), -1);  // nothing avoided yet
  const int index = SeedSignature(rt, "holdX", "reqY");
  TriggerAvoidance(rt);
  EXPECT_EQ(rt.engine().last_avoided_signature(), index);
  EXPECT_EQ(rt.DisableLastAvoidedSignature(), index);
  EXPECT_TRUE(rt.history().Get(index).disabled);
  // The pattern is no longer avoided ("the menu is usable again").
  const ThreadId main_tid = rt.RegisterCurrentThread();
  {
    ScopedFrame frame(FrameFromName("holdX"));
    ASSERT_EQ(rt.engine().Request(main_tid, 500), RequestDecision::kGo);
    rt.engine().Acquired(main_tid, 500);
  }
  std::thread other([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName("reqY"));
    EXPECT_EQ(rt.engine().RequestNonblocking(tid, 600), RequestDecision::kGo);
    rt.engine().CancelRequest(tid, 600);
  });
  other.join();
  rt.engine().Release(main_tid, 500);
}

TEST(RuntimeTest, ReloadHistoryPicksUpVendorSignatures) {
  const std::string path = TempHistory("reload");
  persist::RemoveHistoryFiles(path);
  // "Vendor" writes a signature file.
  {
    StackTable table(10);
    History vendor(&table);
    bool added = false;
    vendor.Add(SignatureKind::kDeadlock,
               {table.Intern({FrameFromName("vendorA")}),
                table.Intern({FrameFromName("vendorB")})},
               4, &added);
    ASSERT_TRUE(vendor.Save(path));
  }
  Config config = TestConfig();
  config.history_path = path;
  config.load_history_on_init = false;
  Runtime rt(config);
  EXPECT_EQ(rt.history().size(), 0u);
  EXPECT_TRUE(rt.ReloadHistory());
  EXPECT_EQ(rt.history().size(), 1u);
  persist::RemoveHistoryFiles(path);
}

TEST(RuntimeTest, RestartCalibrationAfterUpgrade) {
  Config config = TestConfig();
  config.calibration_enabled = true;
  config.max_match_depth = 6;
  Runtime rt(config);
  const int index = SeedSignature(rt, "upA", "upB");
  rt.history().SetMatchDepth(index, 5);
  rt.RestartCalibrationAfterUpgrade();
  const Signature sig = rt.history().Get(index);
  EXPECT_TRUE(sig.calibration.calibrating());
  EXPECT_EQ(sig.match_depth, 1);  // ladder restarted from depth 1
}

TEST(RuntimeTest, RestartCalibrationIsNoOpWhenDisabled) {
  Runtime rt(TestConfig());
  const int index = SeedSignature(rt, "noA", "noB");
  rt.history().SetMatchDepth(index, 1);
  rt.RestartCalibrationAfterUpgrade();
  EXPECT_FALSE(rt.history().Get(index).calibration.calibrating());
}

TEST(RuntimeTest, MonitorDiscardsObsoleteSignatureAfterFullFpRecalibration) {
  // §8 endgame: a signature that is 100% false positives after a
  // recalibration is auto-disabled as obsolete (e.g. the bug was fixed by
  // the upgrade).
  Config config = TestConfig();
  config.calibration_enabled = true;
  config.calibration_na = 1;
  config.max_match_depth = 2;
  config.fp_probe_window = std::chrono::milliseconds(0);
  Runtime rt(config);
  const int index = SeedSignature(rt, "obsA", "obsB");
  // Signatures archived by the monitor get an active ladder; seeding
  // directly requires installing it explicitly.
  rt.history().Mutate(index, [&](Signature& s) {
    s.calibration = CalibrationState(config.max_match_depth, config.calibration_na,
                                     config.calibration_nt);
    s.match_depth = s.calibration.current_depth();
  });
  // Feed avoided events whose probes will all be judged FPs (no lock
  // inversions follow).
  for (int i = 0; i < 2; ++i) {
    Event avoided;
    avoided.type = EventType::kAvoided;
    avoided.signature_index = index;
    avoided.match_depth = i + 1;
    avoided.deepest_match_depth = i + 1;
    avoided.causes = {YieldCause{0, 1, 0}, YieldCause{1, 2, 0}};
    rt.events().Push(avoided);
    rt.monitor().RunOnce();  // probe opens and immediately expires as FP
  }
  EXPECT_TRUE(rt.history().Get(index).disabled);
  EXPECT_EQ(rt.monitor().stats().signatures_discarded.load(), 1u);
}

TEST(RuntimeTest, EnabledFalseIsTransparent) {
  Config config = TestConfig();
  config.enabled = false;
  Runtime rt(config);
  SeedSignature(rt, "passA", "passB");
  const ThreadId tid = rt.RegisterCurrentThread();
  ScopedFrame frame(FrameFromName("passA"));
  EXPECT_EQ(rt.engine().Request(tid, 7), RequestDecision::kGo);
  rt.engine().Acquired(tid, 7);
  rt.engine().Release(tid, 7);
  EXPECT_EQ(rt.engine().stats().requests.load(), 0u);  // nothing recorded
}

}  // namespace
}  // namespace dimmunix
