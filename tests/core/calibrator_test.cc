// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/core/calibrator.h"

#include <gtest/gtest.h>

namespace dimmunix {
namespace {

Config ProbeConfig() {
  Config config;
  config.fp_probe_window = std::chrono::milliseconds(50);
  config.fp_probe_max_ops = 16;
  return config;
}

Event AvoidedEvent(int sig, int depth, int deepest, std::vector<ThreadId> involved) {
  Event event;
  event.type = EventType::kAvoided;
  event.signature_index = sig;
  event.match_depth = depth;
  event.deepest_match_depth = deepest;
  for (ThreadId t : involved) {
    event.causes.push_back(YieldCause{t, 0, 0});
  }
  return event;
}

Event LockOp(EventType type, ThreadId t, LockId l) {
  Event event;
  event.type = type;
  event.thread = t;
  event.lock = l;
  return event;
}

TEST(CalibratorTest, NoInversionIsFalsePositive) {
  Calibrator calibrator(ProbeConfig());
  const MonoTime t0 = Now();
  calibrator.OnAvoided(AvoidedEvent(3, 2, 5, {1, 2}), {}, t0);
  // Thread 1 takes X then Y; thread 2 also takes X then Y: same order, no
  // inversion -> the avoidance prevented nothing.
  calibrator.OnLockOp(LockOp(EventType::kAcquired, 1, 10));
  calibrator.OnLockOp(LockOp(EventType::kAcquired, 1, 20));
  calibrator.OnLockOp(LockOp(EventType::kRelease, 1, 20));
  calibrator.OnLockOp(LockOp(EventType::kRelease, 1, 10));
  calibrator.OnLockOp(LockOp(EventType::kAcquired, 2, 10));
  calibrator.OnLockOp(LockOp(EventType::kAcquired, 2, 20));
  auto verdicts = calibrator.Expire(t0 + std::chrono::milliseconds(60));
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].false_positive);
  EXPECT_EQ(verdicts[0].signature_index, 3);
  EXPECT_EQ(verdicts[0].depth, 2);
  EXPECT_EQ(verdicts[0].deepest, 5);
}

TEST(CalibratorTest, InversionIsTruePositive) {
  Calibrator calibrator(ProbeConfig());
  const MonoTime t0 = Now();
  calibrator.OnAvoided(AvoidedEvent(0, 1, 1, {1, 2}), {}, t0);
  // Thread 1: X then Y. Thread 2: Y then X — a real lock inversion, the
  // avoidance was justified.
  calibrator.OnLockOp(LockOp(EventType::kAcquired, 1, 10));
  calibrator.OnLockOp(LockOp(EventType::kAcquired, 1, 20));
  calibrator.OnLockOp(LockOp(EventType::kAcquired, 2, 20));
  calibrator.OnLockOp(LockOp(EventType::kAcquired, 2, 10));
  auto verdicts = calibrator.Expire(t0 + std::chrono::milliseconds(60));
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].false_positive);
}

TEST(CalibratorTest, HeldSeedParticipatesInInversions) {
  Calibrator calibrator(ProbeConfig());
  const MonoTime t0 = Now();
  // Thread 1 already holds lock 10 when the probe opens (seeded from the
  // RAG); thread 2 already holds 20.
  std::unordered_map<ThreadId, std::vector<LockId>> seed;
  seed[1] = {10};
  seed[2] = {20};
  calibrator.OnAvoided(AvoidedEvent(0, 1, 1, {1, 2}), seed, t0);
  calibrator.OnLockOp(LockOp(EventType::kAcquired, 1, 20));  // (10, 20) under hold
  calibrator.OnLockOp(LockOp(EventType::kAcquired, 2, 10));  // (20, 10) under hold
  auto verdicts = calibrator.Expire(t0 + std::chrono::milliseconds(60));
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].false_positive);  // inversion across the seed
}

TEST(CalibratorTest, UninvolvedThreadsAreIgnored) {
  Calibrator calibrator(ProbeConfig());
  const MonoTime t0 = Now();
  calibrator.OnAvoided(AvoidedEvent(0, 1, 1, {1, 2}), {}, t0);
  // Inversion pattern, but produced by threads 8 and 9 (not involved).
  calibrator.OnLockOp(LockOp(EventType::kAcquired, 8, 10));
  calibrator.OnLockOp(LockOp(EventType::kAcquired, 8, 20));
  calibrator.OnLockOp(LockOp(EventType::kAcquired, 9, 20));
  calibrator.OnLockOp(LockOp(EventType::kAcquired, 9, 10));
  auto verdicts = calibrator.Expire(t0 + std::chrono::milliseconds(60));
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].false_positive);
}

TEST(CalibratorTest, ProbeSaturatesAtMaxOps) {
  Config config = ProbeConfig();
  config.fp_probe_max_ops = 4;
  Calibrator calibrator(config);
  const MonoTime t0 = Now();
  calibrator.OnAvoided(AvoidedEvent(0, 1, 1, {1}), {}, t0);
  for (int i = 0; i < 4; ++i) {
    calibrator.OnLockOp(LockOp(EventType::kAcquired, 1, static_cast<LockId>(100 + i)));
  }
  // Window not yet over, but the probe saturated.
  auto verdicts = calibrator.Expire(t0 + std::chrono::milliseconds(1));
  EXPECT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(calibrator.open_probes(), 0u);
}

TEST(CalibratorTest, ProbesAreIndependent) {
  Calibrator calibrator(ProbeConfig());
  const MonoTime t0 = Now();
  calibrator.OnAvoided(AvoidedEvent(0, 1, 1, {1, 2}), {}, t0);
  calibrator.OnAvoided(AvoidedEvent(1, 2, 2, {3, 4}), {}, t0);
  EXPECT_EQ(calibrator.open_probes(), 2u);
  // Inversion only among {3, 4}.
  calibrator.OnLockOp(LockOp(EventType::kAcquired, 3, 1));
  calibrator.OnLockOp(LockOp(EventType::kAcquired, 3, 2));
  calibrator.OnLockOp(LockOp(EventType::kAcquired, 4, 2));
  calibrator.OnLockOp(LockOp(EventType::kAcquired, 4, 1));
  auto verdicts = calibrator.Expire(t0 + std::chrono::milliseconds(60));
  ASSERT_EQ(verdicts.size(), 2u);
  // Order matches probe creation order.
  EXPECT_TRUE(verdicts[0].false_positive);
  EXPECT_FALSE(verdicts[1].false_positive);
}

}  // namespace
}  // namespace dimmunix
