// Copyright (c) dimmunix-cpp authors. MIT license.
//
// The acquisition port's rollback contract: a granted-but-abandoned
// AcquireOp is rolled back by its destructor, Cancel() retracts shared-mode
// allow edges, and the whole protocol behaves identically on the
// single-stripe degenerate engine (DIMMUNIX_STRIPES=1).

#include "src/core/acquire.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/core/runtime.h"
#include "src/stack/annotation.h"

namespace dimmunix {
namespace {

Config QuietConfig() {
  Config config;
  config.start_monitor = false;
  return config;
}

TEST(AcquireOpTest, DestructorRollsBackAbandonedGrant) {
  Runtime rt(QuietConfig());
  ScopedFrame scope(FrameFromName("acquire::abandoned"));
  constexpr LockId kLock = 0x51;

  // A granted op abandoned without Commit/Cancel asserts in debug builds
  // (the adapter is buggy); in release builds it must roll the allow edge
  // back so the engine cannot leak a phantom waiter.
#ifdef NDEBUG
  {
    AcquireOp op = rt.TryBeginAcquire(kLock, AcquireMode::kExclusive);
    ASSERT_TRUE(op.Granted());
    EXPECT_EQ(rt.engine().Snapshot().allowed_tuples, 1u);
  }
  EXPECT_EQ(rt.engine().Snapshot().allowed_tuples, 0u)
      << "destructor must retract the abandoned allow edge";
  EXPECT_EQ(rt.engine().stats().trylock_cancels.load(), 1u);
#else
  EXPECT_DEATH(
      {
        AcquireOp op = rt.TryBeginAcquire(kLock, AcquireMode::kExclusive);
        (void)op;
      },
      "Commit");
#endif
}

TEST(AcquireOpTest, MoveTransfersTheSettleObligation) {
  Runtime rt(QuietConfig());
  ScopedFrame scope(FrameFromName("acquire::moved"));
  constexpr LockId kLock = 0x52;

  AcquireOp op = rt.TryBeginAcquire(kLock, AcquireMode::kExclusive);
  ASSERT_TRUE(op.Granted());
  AcquireOp moved = std::move(op);
  // The moved-from handle is settled; destroying it must not roll back.
  moved.Commit();
  EXPECT_EQ(rt.engine().LockOwner(kLock), moved.thread());
  rt.EndRelease(kLock);
}

TEST(AcquireOpTest, CancelRetractsSharedAllowEdge) {
  Runtime rt(QuietConfig());
  ScopedFrame scope(FrameFromName("acquire::shared_cancel"));
  constexpr LockId kLock = 0x53;

  AcquireOp op = rt.BeginAcquire(kLock, AcquireMode::kShared);
  ASSERT_TRUE(op.Granted());
  EXPECT_EQ(op.mode(), AcquireMode::kShared);
  EXPECT_EQ(rt.engine().Snapshot().allowed_tuples, 1u);
  op.Cancel();  // tryrdlock-style contention rollback
  EXPECT_EQ(rt.engine().Snapshot().allowed_tuples, 0u);
  EXPECT_EQ(rt.engine().SharedHolderCount(kLock), 0u);
  EXPECT_EQ(rt.engine().stats().trylock_cancels.load(), 1u);
}

TEST(AcquireOpTest, SharedCommitJoinsTheHolderSet) {
  Runtime rt(QuietConfig());
  ScopedFrame scope(FrameFromName("acquire::shared_commit"));
  constexpr LockId kLock = 0x54;

  AcquireOp op = rt.BeginAcquire(kLock, AcquireMode::kShared);
  ASSERT_TRUE(op.Granted());
  op.Commit();
  EXPECT_EQ(rt.engine().SharedHolderCount(kLock), 1u);
  EXPECT_EQ(rt.engine().LockOwner(kLock), kInvalidThreadId) << "shared hold, no exclusive owner";

  std::thread other([&] {
    ScopedFrame other_scope(FrameFromName("acquire::shared_commit_other"));
    AcquireOp other_op = rt.BeginAcquire(kLock, AcquireMode::kShared);
    ASSERT_TRUE(other_op.Granted());
    other_op.Commit();
    EXPECT_EQ(rt.engine().SharedHolderCount(kLock), 2u);
    rt.EndRelease(kLock);
  });
  other.join();
  EXPECT_EQ(rt.engine().SharedHolderCount(kLock), 1u);
  rt.EndRelease(kLock);
  EXPECT_EQ(rt.engine().SharedHolderCount(kLock), 0u);
}

// --- DIMMUNIX_STRIPES=1: the degenerate single-stripe engine ----------------

TEST(DegenerateStripingTest, SingleStripeEngineStillAvoids) {
  Config config = QuietConfig();
  config.engine_stripes = 1;
  Runtime rt(config);
  ASSERT_EQ(rt.engine().stripe_count(), 1u);

  static const Frame f1 = FrameFromName("stripes1::path1");
  static const Frame f2 = FrameFromName("stripes1::path2");
  constexpr LockId kLockA = 0xA;
  constexpr LockId kLockB = 0xB;

  // Seed the AB-BA signature exactly as the monitor would archive it.
  const StackId s1 = rt.stacks().Intern({f1});
  const StackId s2 = rt.stacks().Intern({f2});
  bool added = false;
  rt.history().Add(SignatureKind::kDeadlock, {s1, s2}, /*match_depth=*/4, &added);
  ASSERT_TRUE(added);
  rt.engine().NotifyHistoryChanged();

  // Thread 1 holds A on path 1.
  {
    ScopedFrame scope(f1);
    AcquireOp op = rt.BeginAcquire(kLockA, AcquireMode::kExclusive);
    ASSERT_TRUE(op.Granted());
    op.Commit();
  }
  // A second thread on path 2 would complete the instantiation: the
  // nonblocking port must refuse, exactly like the striped engine.
  std::thread t2([&] {
    ScopedFrame scope(f2);
    AcquireOp op = rt.TryBeginAcquire(kLockB, AcquireMode::kExclusive);
    EXPECT_EQ(op.Decision(), RequestDecision::kBusy);
  });
  t2.join();
  EXPECT_EQ(rt.engine().stats().yields.load(), 1u);

  // After the holder releases, the same acquisition is safe.
  rt.EndRelease(kLockA);
  std::thread t3([&] {
    ScopedFrame scope(f2);
    AcquireOp op = rt.TryBeginAcquire(kLockB, AcquireMode::kExclusive);
    EXPECT_TRUE(op.Granted());
    op.Cancel();
  });
  t3.join();
}

TEST(DegenerateStripingTest, SingleStripeSnapshotIsConsistent) {
  Config config = QuietConfig();
  config.engine_stripes = 1;
  Runtime rt(config);
  ScopedFrame scope(FrameFromName("stripes1::snapshot"));

  AcquireOp op = rt.BeginAcquire(0xC1, AcquireMode::kExclusive);
  ASSERT_TRUE(op.Granted());
  op.Commit();
  const EngineView view = rt.engine().Snapshot();
  EXPECT_EQ(view.stripes, 1u);
  EXPECT_EQ(view.tracked_locks, 1u);
  EXPECT_EQ(view.allowed_tuples, 1u);
  rt.EndRelease(0xC1);
}

}  // namespace
}  // namespace dimmunix
