// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Signature-instantiation matching edge cases (§5.3, §5.4): multiset
// signatures (repeated stacks), signatures wider than two threads,
// starvation signatures avoided like deadlock signatures, and cache
// refresh on history changes.

#include <gtest/gtest.h>

#include <latch>
#include <thread>

#include "src/core/runtime.h"
#include "src/stack/annotation.h"

namespace dimmunix {
namespace {

Config TestConfig() {
  Config config;
  config.start_monitor = false;
  config.default_match_depth = 1;
  return config;
}

StackId Intern(Runtime& rt, const char* name) {
  return rt.stacks().Intern({FrameFromName(name)});
}

// Acquires `lock` under frame `name` on the current thread.
void Hold(Runtime& rt, const char* name, LockId lock) {
  const ThreadId tid = rt.RegisterCurrentThread();
  ScopedFrame frame(FrameFromName(name));
  ASSERT_EQ(rt.engine().Request(tid, lock), RequestDecision::kGo);
  rt.engine().Acquired(tid, lock);
}

// True if a trylock-style request under `name` for `lock` is refused
// (i.e. the pattern would be dangerous), run on a fresh thread.
bool RefusedOnFreshThread(Runtime& rt, const char* name, LockId lock) {
  bool refused = false;
  std::thread t([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName(name));
    if (rt.engine().RequestNonblocking(tid, lock) == RequestDecision::kBusy) {
      refused = true;
    } else {
      rt.engine().CancelRequest(tid, lock);
    }
  });
  t.join();
  return refused;
}

TEST(MatchingTest, MultisetSignatureRequiresBothInstances) {
  // {same, same}: two different threads holding different locks with the
  // SAME call stack (§5.3: "different threads may have acquired different
  // locks while having the same call stack, by virtue of executing the same
  // code").
  Runtime rt(TestConfig());
  bool added = false;
  const StackId s = Intern(rt, "same");
  rt.history().Add(SignatureKind::kDeadlock, {s, s}, 1, &added);
  rt.engine().NotifyHistoryChanged();

  // Only this thread holds a lock with stack "same": a second tuple is
  // missing, so a request from a fresh thread on a DIFFERENT stack is fine,
  // and even a "same"-stack request on the same lock is fine...
  Hold(rt, "same", 100);
  EXPECT_FALSE(RefusedOnFreshThread(rt, "other", 200));
  EXPECT_FALSE(RefusedOnFreshThread(rt, "same", 100));  // same lock: no instance
  // ...but a "same"-stack request on a different lock completes the
  // multiset: refused.
  EXPECT_TRUE(RefusedOnFreshThread(rt, "same", 200));
}

TEST(MatchingTest, ThreeThreadSignatureNeedsAllThreeTuples) {
  Runtime rt(TestConfig());
  bool added = false;
  rt.history().Add(SignatureKind::kDeadlock,
                   {Intern(rt, "ring1"), Intern(rt, "ring2"), Intern(rt, "ring3")}, 1, &added);
  rt.engine().NotifyHistoryChanged();

  Hold(rt, "ring1", 100);
  // Two of three positions filled: not yet dangerous.
  EXPECT_FALSE(RefusedOnFreshThread(rt, "ring3", 300));
  // Fill position 2 from another thread that *keeps* its hold.
  std::latch held(1);
  std::latch release(1);
  std::thread holder([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName("ring2"));
    ASSERT_EQ(rt.engine().Request(tid, 200), RequestDecision::kGo);
    rt.engine().Acquired(tid, 200);
    held.count_down();
    release.wait();
    rt.engine().Release(tid, 200);
  });
  held.wait();
  // All three positions can now be covered: refused.
  EXPECT_TRUE(RefusedOnFreshThread(rt, "ring3", 300));
  release.count_down();
  holder.join();
  // Holder released: safe again.
  EXPECT_FALSE(RefusedOnFreshThread(rt, "ring3", 300));
}

TEST(MatchingTest, StarvationSignaturesAreAvoidedLikeDeadlocks) {
  // §5.2: "Dimmunix uses the same logic to avoid both deadlock patterns and
  // induced starvation patterns."
  Runtime rt(TestConfig());
  bool added = false;
  rt.history().Add(SignatureKind::kStarvation, {Intern(rt, "stA"), Intern(rt, "stB")}, 1,
                   &added);
  rt.engine().NotifyHistoryChanged();
  Hold(rt, "stA", 100);
  EXPECT_TRUE(RefusedOnFreshThread(rt, "stB", 200));
}

TEST(MatchingTest, SignatureAddedMidRunIsPickedUp) {
  // The engine's candidate caches must refresh when the monitor archives a
  // new signature (NotifyHistoryChanged) — including for stacks interned
  // *before* the signature existed.
  Runtime rt(TestConfig());
  Hold(rt, "lateA", 100);
  EXPECT_FALSE(RefusedOnFreshThread(rt, "lateB", 200));
  bool added = false;
  rt.history().Add(SignatureKind::kDeadlock, {Intern(rt, "lateA"), Intern(rt, "lateB")}, 1,
                   &added);
  rt.engine().NotifyHistoryChanged();
  EXPECT_TRUE(RefusedOnFreshThread(rt, "lateB", 200));
}

TEST(MatchingTest, NewStackInternedAfterCacheBuildIsMatched) {
  // Inverse of the above: the signature exists first; a runtime stack that
  // suffix-matches it is interned only later (the new-stack observer path).
  Runtime rt(TestConfig());
  bool added = false;
  // Signature stacks are 2 frames deep; matching depth 2.
  const StackId sa = rt.stacks().Intern(
      {FrameFromName("obsSite"), FrameFromName("obsCallerA")});
  const StackId sb = rt.stacks().Intern(
      {FrameFromName("obsSite2"), FrameFromName("obsCallerB")});
  rt.history().Add(SignatureKind::kDeadlock, {sa, sb}, 2, &added);
  rt.engine().NotifyHistoryChanged();
  // Force a cache build with an unrelated request.
  Hold(rt, "unrelatedWarmup", 900);

  // Now produce the matching stacks for the first time.
  std::thread holder([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame outer(FrameFromName("obsCallerA"));
    ScopedFrame inner(FrameFromName("obsSite"));
    ASSERT_EQ(rt.engine().Request(tid, 100), RequestDecision::kGo);
    rt.engine().Acquired(tid, 100);
  });
  holder.join();
  bool refused = false;
  std::thread requester([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame outer(FrameFromName("obsCallerB"));
    ScopedFrame inner(FrameFromName("obsSite2"));
    refused = rt.engine().RequestNonblocking(tid, 200) == RequestDecision::kBusy;
  });
  requester.join();
  EXPECT_TRUE(refused);
}

TEST(MatchingTest, HoldEdgesAndAllowEdgesBothInstantiate) {
  // §5.4: "checking for signature instantiation takes into consideration
  // allow edges in addition to hold edges, because an allow edge represents
  // a commitment by a thread to block waiting for a lock."
  Runtime rt(TestConfig());
  bool added = false;
  rt.history().Add(SignatureKind::kDeadlock, {Intern(rt, "alA"), Intern(rt, "alB")}, 1, &added);
  rt.engine().NotifyHistoryChanged();
  // Thread 1 is merely ALLOWED to wait (request granted, never acquired).
  std::thread allower([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName("alA"));
    ASSERT_EQ(rt.engine().Request(tid, 100), RequestDecision::kGo);
    // no Acquired: the thread is "blocked" on lock 100
  });
  allower.join();
  EXPECT_TRUE(RefusedOnFreshThread(rt, "alB", 200));
}

}  // namespace
}  // namespace dimmunix
