// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/core/thread_registry.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace dimmunix {
namespace {

TEST(ThreadRegistryTest, IdsAreDenseFromZero) {
  ThreadRegistry registry;
  EXPECT_EQ(registry.RegisterCurrentThread(), 0);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ThreadRegistryTest, RegistrationIsIdempotent) {
  ThreadRegistry registry;
  const ThreadId first = registry.RegisterCurrentThread();
  const ThreadId second = registry.RegisterCurrentThread();
  EXPECT_EQ(first, second);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ThreadRegistryTest, DistinctThreadsGetDistinctIds) {
  ThreadRegistry registry;
  std::set<ThreadId> ids;
  std::mutex m;
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      const ThreadId id = registry.RegisterCurrentThread();
      std::lock_guard<std::mutex> guard(m);
      ids.insert(id);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(ids.size(), 8u);
  EXPECT_EQ(registry.size(), 8u);
}

TEST(ThreadRegistryTest, IndependentRegistriesIndependentIds) {
  ThreadRegistry a;
  ThreadRegistry b;
  EXPECT_EQ(a.RegisterCurrentThread(), 0);
  EXPECT_EQ(b.RegisterCurrentThread(), 0);  // separate id spaces
}

TEST(ThreadRegistryTest, SlotIsStableAndOwned) {
  ThreadRegistry registry;
  const ThreadId id = registry.RegisterCurrentThread();
  ThreadSlot& slot = registry.Slot(id);
  EXPECT_EQ(slot.id, id);
  EXPECT_EQ(&slot, &registry.Slot(id));
}

}  // namespace
}  // namespace dimmunix
