// Copyright (c) dimmunix-cpp authors. MIT license.
//
// The incremental cover matcher (the tail fix): steady-state requests must
// decide from per-stripe snapshots (match_fast_path) without entering the
// stop-the-stripes epoch; the epoch survives only as the rare slow path
// (cache rebuilds after history churn, fallback validation). Decisions must
// be identical with the matcher on and off — the fast path is an
// optimization, never a semantic fork.

#include <gtest/gtest.h>

#include <latch>
#include <thread>
#include <vector>

#include "src/core/avoidance.h"
#include "src/core/runtime.h"
#include "src/stack/annotation.h"

namespace dimmunix {
namespace {

Config TestConfig(bool incremental) {
  Config config;
  config.start_monitor = false;
  config.default_match_depth = 1;
  config.incremental_matcher = incremental;
  return config;
}

constexpr const char* kFrameA = "incr_match::side_a";
constexpr const char* kFrameB = "incr_match::side_b";
void SeedSignature(Runtime& rt) {
  const StackId sa = rt.stacks().Intern({FrameFromName(kFrameA)});
  const StackId sb = rt.stacks().Intern({FrameFromName(kFrameB)});
  bool added = false;
  rt.history().Add(SignatureKind::kDeadlock, {sa, sb}, /*match_depth=*/1, &added);
  rt.engine().NotifyHistoryChanged();
}

// Holder parks on lock_a through the signature's A side; the probe asks for
// lock_b through the B side and reports the engine's decision.
RequestDecision ProbeSecondEdge(Runtime& rt, LockId lock_a, LockId lock_b) {
  std::latch held(1);
  std::latch done(1);
  std::thread holder([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName(kFrameA));
    EXPECT_EQ(rt.engine().Request(tid, lock_a), RequestDecision::kGo);
    rt.engine().Acquired(tid, lock_a);
    held.count_down();
    done.wait();
    rt.engine().Release(tid, lock_a);
  });
  held.wait();
  RequestDecision decision;
  {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName(kFrameB));
    decision = rt.engine().RequestNonblocking(tid, lock_b);
    if (decision == RequestDecision::kGo) {
      rt.engine().CancelRequest(tid, lock_b);
    }
  }
  done.count_down();
  holder.join();
  return decision;
}

TEST(IncrementalMatchTest, SteadyStateStaysOffTheEpoch) {
  Runtime rt(TestConfig(/*incremental=*/true));
  SeedSignature(rt);

  // A standing A-side hold keeps the signature's A position live, so the
  // §5.6 trivial reject cannot short-circuit: every probe below runs a real
  // per-stripe scan. The probes ask for the SAME lock the holder owns, so no
  // cover can form (one lock cannot fill two exclusive positions) — the
  // scans are genuine no-match decisions, exactly the steady-state shape
  // that used to stop the stripes.
  std::latch held(1);
  std::latch done(1);
  std::thread holder([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName(kFrameA));
    EXPECT_EQ(rt.engine().Request(tid, 0x10), RequestDecision::kGo);
    rt.engine().Acquired(tid, 0x10);
    held.count_down();
    done.wait();
    rt.engine().Release(tid, 0x10);
  });
  held.wait();

  const ThreadId tid = rt.RegisterCurrentThread();
  ScopedFrame frame(FrameFromName(kFrameB));

  // One warm-up request absorbs the post-seed cache rebuild.
  EXPECT_EQ(rt.engine().RequestNonblocking(tid, 0x10), RequestDecision::kGo);
  rt.engine().CancelRequest(tid, 0x10);
  const EngineStatsSnapshot before = rt.engine().stats().Snapshot();

  constexpr std::uint64_t kOps = 200;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    EXPECT_EQ(rt.engine().RequestNonblocking(tid, 0x10), RequestDecision::kGo);
    rt.engine().CancelRequest(tid, 0x10);
  }
  const EngineStatsSnapshot after = rt.engine().stats().Snapshot();
  done.count_down();
  holder.join();

  // Every steady-state decision came off per-stripe snapshots; the
  // stop-the-stripes epoch was never entered. This is the tail fix.
  EXPECT_GE(after.match_fast_path - before.match_fast_path, kOps);
  EXPECT_EQ(after.epoch_entries, before.epoch_entries);
  EXPECT_EQ(after.match_slow_path, before.match_slow_path);
}

TEST(IncrementalMatchTest, DecisionsIdenticalWithMatcherOnAndOff) {
  Runtime fast_rt(TestConfig(/*incremental=*/true));
  Runtime slow_rt(TestConfig(/*incremental=*/false));
  SeedSignature(fast_rt);
  SeedSignature(slow_rt);

  // The same probe sequence, both engines: a covered instantiation must be
  // refused, and releasing the cover must make the identical pattern pass.
  for (Runtime* rt : {&fast_rt, &slow_rt}) {
    EXPECT_EQ(ProbeSecondEdge(*rt, 0x100, 0x101), RequestDecision::kBusy);
    EXPECT_EQ(ProbeSecondEdge(*rt, 0x110, 0x111), RequestDecision::kBusy);
    // No holder: the B-side edge alone matches nothing.
    const ThreadId tid = rt->RegisterCurrentThread();
    ScopedFrame frame(FrameFromName(kFrameB));
    EXPECT_EQ(rt->engine().RequestNonblocking(tid, 0x120), RequestDecision::kGo);
    rt->engine().CancelRequest(tid, 0x120);
  }

  // Same answers, different machinery: the fast engine decided without the
  // epoch, the legacy engine routed every plausible match through it.
  const EngineStatsSnapshot fast = fast_rt.engine().stats().Snapshot();
  const EngineStatsSnapshot slow = slow_rt.engine().stats().Snapshot();
  EXPECT_GT(fast.match_fast_path, 0u);
  EXPECT_GT(slow.match_slow_path, 0u);
  EXPECT_GT(slow.epoch_entries, 0u);
}

TEST(IncrementalMatchTest, HistoryChurnRebuildsAndRecovers) {
  Runtime rt(TestConfig(/*incremental=*/true));
  SeedSignature(rt);

  // Decisions stay oracle-correct across repeated cache invalidations, and
  // the fast path resumes after each rebuild instead of pinning requests on
  // the slow path.
  for (int round = 0; round < 5; ++round) {
    rt.engine().NotifyHistoryChanged();  // version bump: caches are stale
    EXPECT_EQ(ProbeSecondEdge(rt, 0x200 + 2 * round, 0x201 + 2 * round),
              RequestDecision::kBusy)
        << "round " << round;
  }
  const EngineStatsSnapshot stats = rt.engine().stats().Snapshot();
  EXPECT_GT(stats.match_fast_path, 0u);
  // Rebuilds are bounded by the churn we injected — the epoch is rare, not
  // per-request (13 requests ran above: 5 probes x 2 edges + seeding).
  EXPECT_LE(stats.epoch_entries, 16u);
}

}  // namespace
}  // namespace dimmunix
