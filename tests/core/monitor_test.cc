// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Monitor semantics (§5.2): event draining, deadlock detection from the
// engine's event stream, signature archiving + persistence, starvation
// handling under weak/strong immunity, and calibration bookkeeping.

#include "src/core/monitor.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/core/runtime.h"
#include "src/stack/annotation.h"

namespace dimmunix {
namespace {

Config TestConfig() {
  Config config;
  config.start_monitor = false;
  config.default_match_depth = 1;
  return config;
}

// Emulates a thread that acquired `held` and is now blocked waiting for
// `wanted` (an allow edge without a matching acquired) — detection works on
// the event stream alone, no real blocking needed.
void EmulateBlockedThread(Runtime& rt, ThreadId tid, LockId held, const char* held_frame,
                          LockId wanted, const char* want_frame) {
  {
    ScopedFrame frame(FrameFromName(held_frame));
    ASSERT_EQ(rt.engine().Request(tid, held), RequestDecision::kGo);
    rt.engine().Acquired(tid, held);
  }
  ScopedFrame frame(FrameFromName(want_frame));
  ASSERT_EQ(rt.engine().Request(tid, wanted), RequestDecision::kGo);
  // No Acquired: the thread is "blocked" on `wanted`.
}

TEST(MonitorTest, DetectsAbBaDeadlockAndArchivesSignature) {
  Runtime rt(TestConfig());
  ThreadId t1 = kInvalidThreadId;
  ThreadId t2 = kInvalidThreadId;
  std::thread a([&] {
    t1 = rt.RegisterCurrentThread();
    EmulateBlockedThread(rt, t1, 100, "acqA", 200, "wantB");
  });
  a.join();
  std::thread b([&] {
    t2 = rt.RegisterCurrentThread();
    EmulateBlockedThread(rt, t2, 200, "acqB", 100, "wantA");
  });
  b.join();

  int hook_calls = 0;
  rt.monitor().SetDeadlockHook([&](const DeadlockCycle& cycle, int index) {
    ++hook_calls;
    EXPECT_EQ(cycle.threads.size(), 2u);
    EXPECT_GE(index, 0);
  });
  rt.monitor().RunOnce();
  EXPECT_EQ(rt.monitor().stats().deadlocks_detected.load(), 1u);
  EXPECT_EQ(rt.monitor().stats().signatures_saved.load(), 1u);
  EXPECT_EQ(hook_calls, 1);
  ASSERT_EQ(rt.history().size(), 1u);
  // Signature = acquisition stacks of the held locks (§5.3).
  const Signature sig = rt.history().Get(0);
  std::vector<std::string> names;
  for (StackId id : sig.stacks) {
    names.push_back(rt.stacks().Describe(id));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names[0], "acqA");
  EXPECT_EQ(names[1], "acqB");
  // Same cycle is not re-reported on the next period.
  rt.monitor().RunOnce();
  EXPECT_EQ(rt.monitor().stats().deadlocks_detected.load(), 1u);
}

TEST(MonitorTest, PersistsSignatureToHistoryFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dimmunix_monitor_test.hist").string();
  std::remove(path.c_str());
  Config config = TestConfig();
  config.history_path = path;
  {
    Runtime rt(config);
    std::thread a([&] {
      EmulateBlockedThread(rt, rt.RegisterCurrentThread(), 100, "pA", 200, "pWantB");
    });
    a.join();
    std::thread b([&] {
      EmulateBlockedThread(rt, rt.RegisterCurrentThread(), 200, "pB", 100, "pWantA");
    });
    b.join();
    rt.monitor().RunOnce();
  }
  // A fresh runtime loads immunity from disk (§5.4).
  Runtime rt2(config);
  EXPECT_EQ(rt2.history().size(), 1u);
  std::remove(path.c_str());
}

TEST(MonitorTest, NoDeadlockNoSignature) {
  // "Dimmunix never adds a false deadlock to the history" (§5.7).
  Runtime rt(TestConfig());
  std::thread a([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName("cleanA"));
    ASSERT_EQ(rt.engine().Request(tid, 100), RequestDecision::kGo);
    rt.engine().Acquired(tid, 100);
    rt.engine().Release(tid, 100);
  });
  a.join();
  rt.monitor().RunOnce();
  EXPECT_EQ(rt.history().size(), 0u);
  EXPECT_EQ(rt.monitor().stats().deadlocks_detected.load(), 0u);
}

TEST(MonitorTest, StarvationWeakImmunityBreaksVictim) {
  Runtime rt(TestConfig());
  // Synthesize a mutual-yield entanglement directly in the event stream.
  const StackId sa = rt.stacks().Intern({FrameFromName("starveA")});
  const StackId sb = rt.stacks().Intern({FrameFromName("starveB")});
  auto push = [&](Event event) { rt.events().Push(event); };
  Event hold1;
  hold1.type = EventType::kAcquired;
  hold1.thread = 0;
  hold1.lock = 100;
  hold1.stack = sa;
  push(hold1);
  Event hold2 = hold1;
  hold2.thread = 1;
  hold2.lock = 200;
  hold2.stack = sb;
  push(hold2);
  Event y1;
  y1.type = EventType::kYield;
  y1.thread = 0;
  y1.lock = 200;
  y1.stack = sa;
  y1.causes = {YieldCause{1, 200, sb}};
  push(y1);
  Event y2;
  y2.type = EventType::kYield;
  y2.thread = 1;
  y2.lock = 100;
  y2.stack = sb;
  y2.causes = {YieldCause{0, 100, sa}};
  push(y2);

  int starvation_hooks = 0;
  rt.monitor().SetStarvationHook(
      [&](const StarvationCycle&, int) { ++starvation_hooks; });
  rt.monitor().RunOnce();
  EXPECT_EQ(rt.monitor().stats().starvations_detected.load(), 1u);
  EXPECT_EQ(rt.monitor().stats().starvations_broken.load(), 1u);
  EXPECT_EQ(starvation_hooks, 1);
  // Starvation signatures are archived like deadlocks (§5.2).
  ASSERT_EQ(rt.history().size(), 1u);
  EXPECT_EQ(rt.history().Get(0).kind, SignatureKind::kStarvation);
}

TEST(MonitorTest, StarvationStrongImmunityRequestsRestart) {
  Config config = TestConfig();
  config.immunity = ImmunityMode::kStrong;
  Runtime rt(config);
  const StackId sa = rt.stacks().Intern({FrameFromName("strongA")});
  const StackId sb = rt.stacks().Intern({FrameFromName("strongB")});
  Event y1;
  y1.type = EventType::kYield;
  y1.thread = 0;
  y1.lock = 200;
  y1.stack = sa;
  y1.causes = {YieldCause{1, 200, sb}};
  rt.events().Push(y1);
  Event y2;
  y2.type = EventType::kYield;
  y2.thread = 1;
  y2.lock = 100;
  y2.stack = sb;
  y2.causes = {YieldCause{0, 100, sa}};
  rt.events().Push(y2);

  bool restart_requested = false;
  rt.monitor().SetRestartHook([&] { restart_requested = true; });
  rt.monitor().RunOnce();
  EXPECT_EQ(rt.monitor().stats().restarts_requested.load(), 1u);
  EXPECT_TRUE(restart_requested);
}

TEST(MonitorTest, BackgroundThreadDetectsWithoutManualDrive) {
  Config config = TestConfig();
  config.start_monitor = true;
  config.monitor_period = std::chrono::milliseconds(5);  // τ
  Runtime rt(config);
  std::thread a([&] {
    EmulateBlockedThread(rt, rt.RegisterCurrentThread(), 100, "bgA", 200, "bgWantB");
  });
  a.join();
  std::thread b([&] {
    EmulateBlockedThread(rt, rt.RegisterCurrentThread(), 200, "bgB", 100, "bgWantA");
  });
  b.join();
  // The detection delay is bounded by the wakeup frequency (§3).
  const MonoTime deadline = Now() + std::chrono::seconds(2);
  while (rt.monitor().stats().deadlocks_detected.load() == 0 && Now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(rt.monitor().stats().deadlocks_detected.load(), 1u);
}

TEST(MonitorTest, CalibrationLadderAdvancesViaAvoidedEvents) {
  Config config = TestConfig();
  config.calibration_enabled = true;
  config.calibration_na = 2;
  config.max_match_depth = 3;
  config.fp_probe_window = std::chrono::milliseconds(0);  // immediate verdicts
  Runtime rt(config);
  // Archive a signature through the monitor so calibration state is set up.
  std::thread a([&] {
    EmulateBlockedThread(rt, rt.RegisterCurrentThread(), 100, "calA", 200, "calWantB");
  });
  a.join();
  std::thread b([&] {
    EmulateBlockedThread(rt, rt.RegisterCurrentThread(), 200, "calB", 100, "calWantA");
  });
  b.join();
  rt.monitor().RunOnce();
  ASSERT_EQ(rt.history().size(), 1u);
  EXPECT_EQ(rt.history().Get(0).match_depth, 1);  // ladder starts at depth 1

  // Feed synthetic avoided events: NA=2 per rung, deepest=1 (no credit).
  for (int i = 0; i < 2; ++i) {
    Event avoided;
    avoided.type = EventType::kAvoided;
    avoided.signature_index = 0;
    avoided.match_depth = 1;
    avoided.deepest_match_depth = 1;
    avoided.causes = {YieldCause{0, 100, 0}, YieldCause{1, 200, 0}};
    rt.events().Push(avoided);
  }
  rt.monitor().RunOnce();
  EXPECT_EQ(rt.history().Get(0).match_depth, 2);  // rung advanced
  EXPECT_EQ(rt.monitor().stats().fp_probes_opened.load(), 2u);
}

}  // namespace
}  // namespace dimmunix
