// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Regression test for the stats snapshot API: the control server reads
// counters from arbitrary threads while the engine and monitor hammer them;
// Snapshot() must never observe torn or out-of-thin-air values.

#include "src/core/stats.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace dimmunix {
namespace {

TEST(StatsTest, SnapshotCopiesEveryCounter) {
  EngineStats engine;
  engine.requests.store(1);
  engine.gos.store(2);
  engine.yields.store(3);
  engine.wakes.store(4);
  engine.yield_timeouts.store(5);
  engine.reentrant_acquisitions.store(6);
  engine.acquisitions.store(7);
  engine.releases.store(8);
  engine.trylock_cancels.store(9);
  engine.broken_acquisitions.store(10);
  engine.signatures_disabled.store(11);
  engine.depth_true_yields.store(12);
  engine.depth_fp_yields.store(13);
  const EngineStatsSnapshot e = engine.Snapshot();
  EXPECT_EQ(e.requests, 1u);
  EXPECT_EQ(e.gos, 2u);
  EXPECT_EQ(e.yields, 3u);
  EXPECT_EQ(e.wakes, 4u);
  EXPECT_EQ(e.yield_timeouts, 5u);
  EXPECT_EQ(e.reentrant_acquisitions, 6u);
  EXPECT_EQ(e.acquisitions, 7u);
  EXPECT_EQ(e.releases, 8u);
  EXPECT_EQ(e.trylock_cancels, 9u);
  EXPECT_EQ(e.broken_acquisitions, 10u);
  EXPECT_EQ(e.signatures_disabled, 11u);
  EXPECT_EQ(e.depth_true_yields, 12u);
  EXPECT_EQ(e.depth_fp_yields, 13u);

  MonitorStats monitor;
  monitor.batches.store(21);
  monitor.events_processed.store(22);
  monitor.deadlocks_detected.store(23);
  monitor.starvations_detected.store(24);
  monitor.signatures_saved.store(25);
  monitor.starvations_broken.store(26);
  monitor.restarts_requested.store(27);
  monitor.fp_probes_opened.store(28);
  monitor.false_positives.store(29);
  monitor.true_positives.store(30);
  monitor.signatures_discarded.store(31);
  const MonitorStatsSnapshot m = monitor.Snapshot();
  EXPECT_EQ(m.batches, 21u);
  EXPECT_EQ(m.events_processed, 22u);
  EXPECT_EQ(m.deadlocks_detected, 23u);
  EXPECT_EQ(m.starvations_detected, 24u);
  EXPECT_EQ(m.signatures_saved, 25u);
  EXPECT_EQ(m.starvations_broken, 26u);
  EXPECT_EQ(m.restarts_requested, 27u);
  EXPECT_EQ(m.fp_probes_opened, 28u);
  EXPECT_EQ(m.false_positives, 29u);
  EXPECT_EQ(m.true_positives, 30u);
  EXPECT_EQ(m.signatures_discarded, 31u);
}

TEST(StatsTest, ConcurrentSnapshotsSeeOnlyWrittenValues) {
  // Writers add the same delta to two counters in lockstep; readers snapshot
  // continuously. Every observed value must be a multiple of the delta and
  // bounded by the final total — a torn 64-bit read or a non-atomic counter
  // would violate one of the two.
  constexpr std::uint64_t kDelta = 0x0101010101ULL;  // spans several bytes
  constexpr int kWriters = 4;
  constexpr int kIncrementsPerWriter = 20000;
  constexpr std::uint64_t kFinal = kDelta * kWriters * kIncrementsPerWriter;

  EngineStats stats;
  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const EngineStatsSnapshot snap = stats.Snapshot();
        for (const std::uint64_t v : {snap.requests, snap.acquisitions}) {
          if (v % kDelta != 0 || v > kFinal) {
            failed.store(true, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerWriter; ++i) {
        stats.requests.fetch_add(kDelta, std::memory_order_relaxed);
        stats.acquisitions.fetch_add(kDelta, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) {
    t.join();
  }

  EXPECT_FALSE(failed.load());
  const EngineStatsSnapshot final_snap = stats.Snapshot();
  EXPECT_EQ(final_snap.requests, kFinal);
  EXPECT_EQ(final_snap.acquisitions, kFinal);
}

}  // namespace
}  // namespace dimmunix
