// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Engine-level avoidance semantics (§5.4): GO/YIELD decisions, signature
// instantiation matching, yield parking and waking, the §5.7 timeout bound,
// and the Figure 8 stage knobs. Uses isolated Runtimes with the monitor
// stopped so every behavior is deterministic.

#include "src/core/avoidance.h"

#include <gtest/gtest.h>

#include <latch>
#include <thread>

#include "src/core/runtime.h"
#include "src/stack/annotation.h"

namespace dimmunix {
namespace {

Config TestConfig() {
  Config config;
  config.start_monitor = false;
  config.default_match_depth = 1;
  return config;
}

// Seeds history with one two-stack signature at `depth`.
int SeedSignature(Runtime& rt, const char* frame_a, const char* frame_b, int depth = 1) {
  const StackId sa = rt.stacks().Intern({FrameFromName(frame_a)});
  const StackId sb = rt.stacks().Intern({FrameFromName(frame_b)});
  bool added = false;
  const int index = rt.history().Add(SignatureKind::kDeadlock, {sa, sb}, depth, &added);
  rt.engine().NotifyHistoryChanged();
  return index;
}

TEST(AvoidanceTest, GoWhenHistoryEmpty) {
  Runtime rt(TestConfig());
  const ThreadId tid = rt.RegisterCurrentThread();
  ScopedFrame frame(FrameFromName("siteX"));
  EXPECT_EQ(rt.engine().Request(tid, 1), RequestDecision::kGo);
  rt.engine().Acquired(tid, 1);
  rt.engine().Release(tid, 1);
  EXPECT_EQ(rt.engine().stats().gos.load(), 1u);
  EXPECT_EQ(rt.engine().stats().yields.load(), 0u);
}

TEST(AvoidanceTest, ReentrantAcquisitionSkipsAvoidance) {
  Runtime rt(TestConfig());
  const ThreadId tid = rt.RegisterCurrentThread();
  ScopedFrame frame(FrameFromName("siteR"));
  ASSERT_EQ(rt.engine().Request(tid, 5), RequestDecision::kGo);
  rt.engine().Acquired(tid, 5);
  EXPECT_EQ(rt.engine().Request(tid, 5), RequestDecision::kReentrant);
  rt.engine().Acquired(tid, 5);  // reentrant count 2
  rt.engine().Release(tid, 5);
  EXPECT_EQ(rt.engine().LockOwner(5), tid);  // still held
  rt.engine().Release(tid, 5);
  EXPECT_EQ(rt.engine().LockOwner(5), kInvalidThreadId);
}

TEST(AvoidanceTest, YieldsOnSignatureInstanceAndWakesOnRelease) {
  Runtime rt(TestConfig());
  SeedSignature(rt, "holdA", "reqB");
  const ThreadId main_tid = rt.RegisterCurrentThread();
  {
    ScopedFrame frame(FrameFromName("holdA"));
    ASSERT_EQ(rt.engine().Request(main_tid, 100), RequestDecision::kGo);
    rt.engine().Acquired(main_tid, 100);
  }
  std::latch started(1);
  std::thread other([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName("reqB"));
    started.count_down();
    // Dangerous: (main holds 100 @holdA) + (this @reqB) covers the
    // signature. This blocks until main releases.
    EXPECT_EQ(rt.engine().Request(tid, 200), RequestDecision::kGo);
    rt.engine().Acquired(tid, 200);
    rt.engine().Release(tid, 200);
  });
  started.wait();
  // Give the other thread time to park.
  while (rt.engine().stats().yields.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rt.engine().Release(main_tid, 100);  // wakes the yielder
  other.join();
  EXPECT_GE(rt.engine().stats().yields.load(), 1u);
  EXPECT_GE(rt.engine().stats().wakes.load(), 1u);
  EXPECT_EQ(rt.history().Get(0).avoidance_count, rt.engine().stats().yields.load());
}

TEST(AvoidanceTest, NoYieldWhenStacksDoNotMatch) {
  Runtime rt(TestConfig());
  SeedSignature(rt, "holdA", "reqB");
  const ThreadId main_tid = rt.RegisterCurrentThread();
  {
    ScopedFrame frame(FrameFromName("holdA"));
    ASSERT_EQ(rt.engine().Request(main_tid, 100), RequestDecision::kGo);
    rt.engine().Acquired(main_tid, 100);
  }
  std::thread other([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName("unrelated"));
    EXPECT_EQ(rt.engine().Request(tid, 200), RequestDecision::kGo);
    rt.engine().Acquired(tid, 200);
    rt.engine().Release(tid, 200);
  });
  other.join();
  EXPECT_EQ(rt.engine().stats().yields.load(), 0u);
}

TEST(AvoidanceTest, InstantiationRequiresDistinctLocks) {
  // Both tuples on the same lock cannot form an instance ("all thread-lock-
  // stack tuples in the instance must correspond to distinct threads and
  // locks", §3).
  Runtime rt(TestConfig());
  SeedSignature(rt, "holdA", "reqB");
  const ThreadId main_tid = rt.RegisterCurrentThread();
  {
    ScopedFrame frame(FrameFromName("holdA"));
    ASSERT_EQ(rt.engine().Request(main_tid, 100), RequestDecision::kGo);
    rt.engine().Acquired(main_tid, 100);
  }
  std::thread other([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName("reqB"));
    // Same lock 100: no instance, should proceed (and then block on the
    // real mutex in a real program; here we only exercise the decision).
    EXPECT_EQ(rt.engine().Request(tid, 100), RequestDecision::kGo);
    rt.engine().CancelRequest(tid, 100);
  });
  other.join();
  EXPECT_EQ(rt.engine().stats().yields.load(), 0u);
}

TEST(AvoidanceTest, DisabledSignatureIsNotAvoided) {
  Runtime rt(TestConfig());
  const int index = SeedSignature(rt, "holdA", "reqB");
  rt.history().SetDisabled(index, true);
  rt.engine().NotifyHistoryChanged();
  const ThreadId main_tid = rt.RegisterCurrentThread();
  {
    ScopedFrame frame(FrameFromName("holdA"));
    ASSERT_EQ(rt.engine().Request(main_tid, 100), RequestDecision::kGo);
    rt.engine().Acquired(main_tid, 100);
  }
  std::thread other([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName("reqB"));
    EXPECT_EQ(rt.engine().Request(tid, 200), RequestDecision::kGo);
    rt.engine().CancelRequest(tid, 200);
  });
  other.join();
  EXPECT_EQ(rt.engine().stats().yields.load(), 0u);
}

TEST(AvoidanceTest, TryLockReportsBusyInsteadOfYielding) {
  Runtime rt(TestConfig());
  SeedSignature(rt, "holdA", "reqB");
  const ThreadId main_tid = rt.RegisterCurrentThread();
  {
    ScopedFrame frame(FrameFromName("holdA"));
    ASSERT_EQ(rt.engine().Request(main_tid, 100), RequestDecision::kGo);
    rt.engine().Acquired(main_tid, 100);
  }
  std::thread other([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName("reqB"));
    EXPECT_EQ(rt.engine().RequestNonblocking(tid, 200), RequestDecision::kBusy);
  });
  other.join();
  EXPECT_GE(rt.engine().stats().yields.load(), 1u);  // counted as an avoidance
}

TEST(AvoidanceTest, IgnoreYieldDecisionsProceedsButCounts) {
  Config config = TestConfig();
  config.ignore_yield_decisions = true;  // Table 1's middle configuration
  Runtime rt(config);
  SeedSignature(rt, "holdA", "reqB");
  const ThreadId main_tid = rt.RegisterCurrentThread();
  {
    ScopedFrame frame(FrameFromName("holdA"));
    ASSERT_EQ(rt.engine().Request(main_tid, 100), RequestDecision::kGo);
    rt.engine().Acquired(main_tid, 100);
  }
  std::thread other([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName("reqB"));
    EXPECT_EQ(rt.engine().Request(tid, 200), RequestDecision::kGo);  // not enforced
    rt.engine().CancelRequest(tid, 200);
  });
  other.join();
  EXPECT_GE(rt.engine().stats().yields.load(), 1u);
}

TEST(AvoidanceTest, YieldTimeoutRecordsAbortAndAutoDisables) {
  Config config = TestConfig();
  config.yield_timeout = std::chrono::milliseconds(20);  // §5.7 bound
  config.auto_disable_aborts = 2;
  Runtime rt(config);
  const int index = SeedSignature(rt, "holdA", "reqB");
  const ThreadId main_tid = rt.RegisterCurrentThread();
  {
    ScopedFrame frame(FrameFromName("holdA"));
    ASSERT_EQ(rt.engine().Request(main_tid, 100), RequestDecision::kGo);
    rt.engine().Acquired(main_tid, 100);
  }
  // The cause (main) never releases: each yield times out, is recorded as
  // an abort, and after the threshold the signature is disabled.
  for (int i = 0; i < 2; ++i) {
    std::thread other([&] {
      const ThreadId tid = rt.RegisterCurrentThread();
      ScopedFrame frame(FrameFromName("reqB"));
      EXPECT_EQ(rt.engine().Request(tid, 200), RequestDecision::kGo);  // released by timeout
      rt.engine().CancelRequest(tid, 200);
    });
    other.join();
  }
  EXPECT_EQ(rt.engine().stats().yield_timeouts.load(), 2u);
  EXPECT_EQ(rt.history().Get(index).abort_count, 2u);
  EXPECT_TRUE(rt.history().Get(index).disabled);
  EXPECT_EQ(rt.engine().stats().signatures_disabled.load(), 1u);
}

TEST(AvoidanceTest, StageKnobsDisableAvoidance) {
  for (EngineStage stage : {EngineStage::kInstrumentationOnly, EngineStage::kDataStructures}) {
    Config config = TestConfig();
    config.stage = stage;
    Runtime rt(config);
    SeedSignature(rt, "holdA", "reqB");
    const ThreadId main_tid = rt.RegisterCurrentThread();
    {
      ScopedFrame frame(FrameFromName("holdA"));
      ASSERT_EQ(rt.engine().Request(main_tid, 100), RequestDecision::kGo);
      rt.engine().Acquired(main_tid, 100);
    }
    std::thread other([&] {
      const ThreadId tid = rt.RegisterCurrentThread();
      ScopedFrame frame(FrameFromName("reqB"));
      EXPECT_EQ(rt.engine().Request(tid, 200), RequestDecision::kGo);
      rt.engine().CancelRequest(tid, 200);
    });
    other.join();
    EXPECT_EQ(rt.engine().stats().yields.load(), 0u) << static_cast<int>(stage);
  }
}

TEST(AvoidanceTest, MatchDepthControlsGenerality) {
  // Signature stacks recorded three-deep; runtime stacks share only the top
  // two frames. At signature depth 2 the pattern matches; at depth 3 it
  // does not (§5.5).
  for (int sig_depth : {2, 3}) {
    Config config = TestConfig();
    Runtime rt(config);
    const StackId sa = rt.stacks().Intern(
        {FrameFromName("lockA"), FrameFromName("mid"), FrameFromName("sigOuterA")});
    const StackId sb = rt.stacks().Intern(
        {FrameFromName("lockB"), FrameFromName("mid"), FrameFromName("sigOuterB")});
    bool added = false;
    rt.history().Add(SignatureKind::kDeadlock, {sa, sb}, sig_depth, &added);
    rt.engine().NotifyHistoryChanged();

    const ThreadId main_tid = rt.RegisterCurrentThread();
    {
      ScopedFrame outer(FrameFromName("runtimeOuterA"));
      ScopedFrame mid(FrameFromName("mid"));
      ScopedFrame inner(FrameFromName("lockA"));
      ASSERT_EQ(rt.engine().Request(main_tid, 100), RequestDecision::kGo);
      rt.engine().Acquired(main_tid, 100);
    }
    std::uint64_t yields_seen = 0;
    std::thread other([&] {
      const ThreadId tid = rt.RegisterCurrentThread();
      ScopedFrame outer(FrameFromName("runtimeOuterB"));
      ScopedFrame mid(FrameFromName("mid"));
      ScopedFrame inner(FrameFromName("lockB"));
      if (rt.engine().RequestNonblocking(tid, 200) == RequestDecision::kBusy) {
        yields_seen = 1;
      } else {
        rt.engine().CancelRequest(tid, 200);
      }
    });
    other.join();
    if (sig_depth == 2) {
      EXPECT_EQ(yields_seen, 1u) << "depth-2 match should avoid";
    } else {
      EXPECT_EQ(yields_seen, 0u) << "depth-3 mismatch should not avoid";
    }
  }
}

TEST(AvoidanceTest, CancelAcquisitionBreaksAParkedYielder) {
  // Deadlock recovery can target a thread that is parked in a yield (not
  // just one blocked on the raw mutex): its Request returns kBroken.
  Config config = TestConfig();
  config.yield_timeout = std::chrono::seconds(10);
  Runtime rt(config);
  SeedSignature(rt, "brk_holdA", "brk_reqB");
  const ThreadId main_tid = rt.RegisterCurrentThread();
  {
    ScopedFrame frame(FrameFromName("brk_holdA"));
    ASSERT_EQ(rt.engine().Request(main_tid, 100), RequestDecision::kGo);
    rt.engine().Acquired(main_tid, 100);
  }
  std::atomic<ThreadId> victim{kInvalidThreadId};
  std::atomic<bool> broken{false};
  std::thread other([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    victim.store(tid);
    ScopedFrame frame(FrameFromName("brk_reqB"));
    broken.store(rt.engine().Request(tid, 200) == RequestDecision::kBroken);
  });
  while (rt.engine().stats().yields.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rt.engine().CancelAcquisition(victim.load());
  other.join();
  EXPECT_TRUE(broken.load());
  EXPECT_GE(rt.engine().stats().broken_acquisitions.load(), 1u);
}

TEST(AvoidanceTest, AllowedSetBookkeeping) {
  Runtime rt(TestConfig());
  const ThreadId tid = rt.RegisterCurrentThread();
  ScopedFrame frame(FrameFromName("bookkeeping"));
  const StackId stack = rt.stacks().Intern({FrameFromName("bookkeeping")});
  EXPECT_EQ(rt.engine().AllowedCount(stack), 0u);
  ASSERT_EQ(rt.engine().Request(tid, 42), RequestDecision::kGo);
  EXPECT_EQ(rt.engine().AllowedCount(stack), 1u);  // allow edge
  rt.engine().Acquired(tid, 42);
  EXPECT_EQ(rt.engine().AllowedCount(stack), 1u);  // now a hold edge
  rt.engine().Release(tid, 42);
  EXPECT_EQ(rt.engine().AllowedCount(stack), 0u);
}

TEST(AvoidanceTest, PetersonGuardWorks) {
  Config config = TestConfig();
  config.use_peterson_guard = true;  // §5.6 substrate
  config.peterson_slots = 8;
  Runtime rt(config);
  SeedSignature(rt, "holdA", "reqB");
  const ThreadId main_tid = rt.RegisterCurrentThread();
  {
    ScopedFrame frame(FrameFromName("holdA"));
    ASSERT_EQ(rt.engine().Request(main_tid, 100), RequestDecision::kGo);
    rt.engine().Acquired(main_tid, 100);
  }
  std::thread other([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName("reqB"));
    EXPECT_EQ(rt.engine().RequestNonblocking(tid, 200), RequestDecision::kBusy);
  });
  other.join();
  EXPECT_GE(rt.engine().stats().yields.load(), 1u);
}

TEST(AvoidanceTest, SharedHolderUpgradingRunsTheFullProtocol) {
  // A shared holder re-requesting shared is reentrant; the same holder
  // requesting exclusive (an upgrade) is not — it must run avoidance.
  Runtime rt(TestConfig());
  const ThreadId tid = rt.RegisterCurrentThread();
  ScopedFrame frame(FrameFromName("upgrade_site"));
  ASSERT_EQ(rt.engine().Request(tid, 7, AcquireMode::kShared), RequestDecision::kGo);
  rt.engine().Acquired(tid, 7, AcquireMode::kShared);
  EXPECT_EQ(rt.engine().Request(tid, 7, AcquireMode::kShared), RequestDecision::kReentrant);
  EXPECT_EQ(rt.engine().RequestNonblocking(tid, 7, AcquireMode::kExclusive),
            RequestDecision::kGo);  // upgrade: full protocol (empty history -> GO)
  rt.engine().CancelRequest(tid, 7, AcquireMode::kExclusive);
  rt.engine().Release(tid, 7);
  EXPECT_EQ(rt.engine().SharedHolderCount(7), 0u);
}

TEST(AvoidanceTest, CommittedUpgradePromotesTheOwnerSet) {
  // If the raw layer grants an upgrade (sole reader -> writer), the owner
  // set must flip to exclusive — not record a second "shared" hold.
  Runtime rt(TestConfig());
  const ThreadId tid = rt.RegisterCurrentThread();
  ScopedFrame frame(FrameFromName("promote_site"));
  ASSERT_EQ(rt.engine().Request(tid, 9, AcquireMode::kShared), RequestDecision::kGo);
  rt.engine().Acquired(tid, 9, AcquireMode::kShared);
  EXPECT_EQ(rt.engine().SharedHolderCount(9), 1u);
  ASSERT_EQ(rt.engine().Request(tid, 9, AcquireMode::kExclusive), RequestDecision::kGo);
  rt.engine().Acquired(tid, 9, AcquireMode::kExclusive);
  EXPECT_EQ(rt.engine().LockOwner(9), tid);  // promoted
  EXPECT_EQ(rt.engine().SharedHolderCount(9), 0u);
  rt.engine().Release(tid, 9);
  EXPECT_EQ(rt.engine().LockOwner(9), tid);  // one hold remains
  rt.engine().Release(tid, 9);
  EXPECT_EQ(rt.engine().LockOwner(9), kInvalidThreadId);
}

TEST(AvoidanceTest, SharedCoverMayReuseALockAcrossHolders) {
  // A signature instantiation may visit one lock once per *shared* holder
  // (an upgrade-race cycle has two hold edges on the same rwlock). Seed the
  // two shared-hold stacks as a signature and re-create the dangerous
  // state: one thread holds L shared at rd1; a second thread requesting L
  // shared at rd2 completes the instance and must be refused.
  Runtime rt(TestConfig());
  SeedSignature(rt, "rd1", "rd2");
  const ThreadId main_tid = rt.RegisterCurrentThread();
  {
    ScopedFrame frame(FrameFromName("rd1"));
    ASSERT_EQ(rt.engine().Request(main_tid, 100, AcquireMode::kShared), RequestDecision::kGo);
    rt.engine().Acquired(main_tid, 100, AcquireMode::kShared);
  }
  std::thread other([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName("rd2"));
    EXPECT_EQ(rt.engine().RequestNonblocking(tid, 100, AcquireMode::kShared),
              RequestDecision::kBusy);
  });
  other.join();
  EXPECT_GE(rt.engine().stats().yields.load(), 1u);

  // An *exclusive* re-use of the same lock never covers two positions: with
  // the lock held exclusively elsewhere, the same request is a plain GO.
  Runtime rt2(TestConfig());
  SeedSignature(rt2, "rd1", "rd2");
  const ThreadId main2 = rt2.RegisterCurrentThread();
  {
    ScopedFrame frame(FrameFromName("rd1"));
    ASSERT_EQ(rt2.engine().Request(main2, 100), RequestDecision::kGo);
    rt2.engine().Acquired(main2, 100);
  }
  std::thread other2([&] {
    const ThreadId tid = rt2.RegisterCurrentThread();
    ScopedFrame frame(FrameFromName("rd2"));
    EXPECT_EQ(rt2.engine().RequestNonblocking(tid, 100, AcquireMode::kExclusive),
              RequestDecision::kGo);
    rt2.engine().CancelRequest(tid, 100, AcquireMode::kExclusive);
  });
  other2.join();
  EXPECT_EQ(rt2.engine().stats().yields.load(), 0u);
}

}  // namespace
}  // namespace dimmunix
