// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Stress test for the striped engine hot path: many threads hammer disjoint
// locks spread across stripes while a control thread concurrently takes
// stop-the-stripes snapshots (EngineView, RAG) and performs control-plane
// mutations (signature disable toggles — the `dimctl disable-last`
// equivalent — which eagerly rebuild the signature cache under the epoch).
//
// What it pins down:
//  * counters are exact — sharded EngineStats lose no increments;
//  * stripe locks and the global epoch compose without deadlock (the test
//    finishing inside the ctest timeout is the assertion);
//  * the lock-free stack interning and registry survive concurrent use
//    (TSan-verified by the sanitizers CI job).

#include <gtest/gtest.h>

#include <atomic>
#include <latch>
#include <string>
#include <thread>
#include <vector>

#include "src/core/avoidance.h"
#include "src/core/runtime.h"
#include "src/stack/annotation.h"

namespace dimmunix {
namespace {

TEST(StripingTest, ConcurrentHotPathVsSnapshotsAndHistoryMutations) {
  constexpr int kThreads = 16;
  constexpr int kIterations = 400;
  constexpr int kLocksPerThread = 4;

  Config config;
  config.start_monitor = true;  // the monitor drains events concurrently
  config.monitor_period = std::chrono::milliseconds(5);
  config.default_match_depth = 1;
  config.engine_stripes = 8;  // force several stripes even on small hosts
  Runtime rt(config);
  ASSERT_EQ(rt.engine().stripe_count(), 8u);

  // A signature over frames no worker ever uses: matching machinery runs
  // (the cache rebuilds on every toggle below) but never yields.
  const StackId sa = rt.stacks().Intern({FrameFromName("striping_sig_a")});
  const StackId sb = rt.stacks().Intern({FrameFromName("striping_sig_b")});
  bool added = false;
  const int sig = rt.history().Add(SignatureKind::kDeadlock, {sa, sb}, 1, &added);
  rt.engine().NotifyHistoryChanged();

  std::latch ready(kThreads + 1);
  std::atomic<bool> workers_done{false};
  std::atomic<std::uint64_t> non_go_decisions{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const ThreadId tid = rt.RegisterCurrentThread();
      ready.arrive_and_wait();
      for (int i = 0; i < kIterations; ++i) {
        // Disjoint locks per thread: contention is on stripes and shared
        // engine structures, never on lock ownership itself.
        const LockId lock =
            1000 + static_cast<LockId>(t) * kLocksPerThread + (i % kLocksPerThread);
        // A mix of thread-private and shared frames churns the lock-free
        // stack interning from every thread at once.
        ScopedFrame outer(FrameFromName(i % 3 == 0
                                            ? std::string("striping_shared_outer")
                                            : "striping_t" + std::to_string(t)));
        ScopedFrame inner(FrameFromName("striping_site" + std::to_string(i % 5)));
        if (rt.engine().Request(tid, lock) != RequestDecision::kGo) {
          non_go_decisions.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        rt.engine().Acquired(tid, lock);
        rt.engine().Release(tid, lock);
      }
    });
  }

  // The control thread: consistent snapshots + disable-last-equivalent
  // history mutations, as `dimctl` would issue them over the socket.
  std::thread control([&] {
    bool disabled = false;
    std::uint64_t snapshots = 0;
    while (!workers_done.load(std::memory_order_acquire)) {
      const EngineView view = rt.engine().Snapshot();
      EXPECT_EQ(view.stripes, 8u);
      const RagSnapshot rag = rt.monitor().SnapshotRag();
      (void)rag;
      const EngineStatsSnapshot stats = rt.engine().stats().Snapshot();
      EXPECT_GE(stats.requests, stats.yields);
      disabled = !disabled;
      rt.SetSignatureDisabled(sig, disabled);  // rebuilds the cache generation
      EXPECT_EQ(rt.DisableLastAvoidedSignature(), -1);  // nothing ever avoided
      ++snapshots;
    }
    EXPECT_GT(snapshots, 0u);
  });

  ready.arrive_and_wait();
  for (std::thread& worker : workers) {
    worker.join();
  }
  workers_done.store(true, std::memory_order_release);
  control.join();

  // Exactness: every increment of the sharded counters must be visible.
  constexpr std::uint64_t kTotalOps = static_cast<std::uint64_t>(kThreads) * kIterations;
  EXPECT_EQ(non_go_decisions.load(), 0u);
  const EngineStatsSnapshot stats = rt.engine().stats().Snapshot();
  EXPECT_EQ(stats.requests, kTotalOps);
  EXPECT_EQ(stats.gos, kTotalOps);
  EXPECT_EQ(stats.acquisitions, kTotalOps);
  EXPECT_EQ(stats.releases, kTotalOps);
  EXPECT_EQ(stats.yields, 0u);

  // Quiesced state: no lingering tuples, owners, or yielders anywhere in
  // the stripes.
  const EngineView view = rt.engine().Snapshot();
  EXPECT_EQ(view.allowed_tuples, 0u);
  EXPECT_EQ(view.live_stacks, 0u);
  EXPECT_EQ(view.tracked_locks, 0u);
  EXPECT_EQ(view.yielding_threads, 0u);
}

TEST(StripingTest, StripeCountConfiguration) {
  {
    Config config;
    config.start_monitor = false;
    config.engine_stripes = 5;  // rounded up to a power of two
    Runtime rt(config);
    EXPECT_EQ(rt.engine().stripe_count(), 8u);
  }
  {
    Config config;
    config.start_monitor = false;
    config.engine_stripes = 1;  // the pre-striping single-guard engine
    Runtime rt(config);
    EXPECT_EQ(rt.engine().stripe_count(), 1u);
  }
  {
    Config config;
    config.start_monitor = false;  // auto: 2*nproc rounded up, at least 2
    Runtime rt(config);
    EXPECT_GE(rt.engine().stripe_count(), 2u);
  }
}

}  // namespace
}  // namespace dimmunix
