// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/sync/cond_var.h"

#include <gtest/gtest.h>

#include <thread>

namespace dimmunix {
namespace {

Config TestConfig() {
  Config config;
  config.start_monitor = false;
  return config;
}

TEST(CondVarTest, WaitNotifyOne) {
  Runtime rt(TestConfig());
  Mutex m(rt);
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    (void)m.Lock();
    cv.Wait(m, [&] { return ready; });
    EXPECT_TRUE(ready);
    m.Unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  (void)m.Lock();
  ready = true;
  m.Unlock();
  cv.NotifyOne();
  waiter.join();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Runtime rt(TestConfig());
  Mutex m(rt);
  CondVar cv;
  bool go = false;
  int woken = 0;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] {
      (void)m.Lock();
      cv.Wait(m, [&] { return go; });
      ++woken;
      m.Unlock();
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  (void)m.Lock();
  go = true;
  m.Unlock();
  cv.NotifyAll();
  for (auto& waiter : waiters) {
    waiter.join();
  }
  EXPECT_EQ(woken, 4);
}

TEST(CondVarTest, WaitForTimesOut) {
  Runtime rt(TestConfig());
  Mutex m(rt);
  CondVar cv;
  (void)m.Lock();
  const MonoTime start = Now();
  EXPECT_FALSE(cv.WaitFor(m, std::chrono::milliseconds(30)));
  EXPECT_GE(Now() - start, std::chrono::milliseconds(25));
  m.Unlock();
}

TEST(CondVarTest, MutexReleasedDuringWait) {
  Runtime rt(TestConfig());
  Mutex m(rt);
  CondVar cv;
  bool observed_free = false;
  bool done = false;
  std::thread waiter([&] {
    (void)m.Lock();
    cv.Wait(m, [&] { return done; });
    m.Unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // While the waiter sleeps in Wait, the mutex must be acquirable.
  if (m.TryLock()) {
    observed_free = true;
    done = true;
    m.Unlock();
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_TRUE(observed_free);
}

}  // namespace
}  // namespace dimmunix
