// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/sync/cond_var.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/stack/annotation.h"

namespace dimmunix {
namespace {

Config TestConfig() {
  Config config;
  config.start_monitor = false;
  return config;
}

TEST(CondVarTest, WaitNotifyOne) {
  Runtime rt(TestConfig());
  Mutex m(rt);
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    (void)m.Lock();
    cv.Wait(m, [&] { return ready; });
    EXPECT_TRUE(ready);
    m.Unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  (void)m.Lock();
  ready = true;
  m.Unlock();
  cv.NotifyOne();
  waiter.join();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Runtime rt(TestConfig());
  Mutex m(rt);
  CondVar cv;
  bool go = false;
  int woken = 0;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] {
      (void)m.Lock();
      cv.Wait(m, [&] { return go; });
      ++woken;
      m.Unlock();
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  (void)m.Lock();
  go = true;
  m.Unlock();
  cv.NotifyAll();
  for (auto& waiter : waiters) {
    waiter.join();
  }
  EXPECT_EQ(woken, 4);
}

TEST(CondVarTest, WaitForTimesOut) {
  Runtime rt(TestConfig());
  Mutex m(rt);
  CondVar cv;
  (void)m.Lock();
  const MonoTime start = Now();
  EXPECT_FALSE(cv.WaitFor(m, std::chrono::milliseconds(30)));
  EXPECT_GE(Now() - start, std::chrono::milliseconds(25));
  m.Unlock();
}

TEST(CondVarTest, TimedOutWaitReacquiresMutexThroughTheEngine) {
  // §6: a timed-out wait must re-acquire the mutex through the full
  // protocol — the release and re-acquire both reach the monitor's RAG.
  Runtime rt(TestConfig());
  Mutex m(rt);
  CondVar cv;
  const ThreadId tid = rt.RegisterCurrentThread();
  ScopedFrame frame(FrameFromName("condvar::timed_waiter"));

  (void)m.Lock();
  rt.monitor().RunOnce();
  EXPECT_EQ(rt.monitor().rag().HeldLockCount(tid), 1);
  const auto releases_before = rt.engine().stats().releases.load();
  const auto acquisitions_before = rt.engine().stats().acquisitions.load();

  EXPECT_FALSE(cv.WaitFor(m, std::chrono::milliseconds(30)));  // times out

  // The mutex is held again by the waiter: another thread cannot take it.
  std::thread prober([&] { EXPECT_FALSE(m.TryLock()); });
  prober.join();
  // The release (entering the wait) and re-acquisition (leaving it) went
  // through the engine, not around it...
  EXPECT_EQ(rt.engine().stats().releases.load(), releases_before + 1);
  EXPECT_GE(rt.engine().stats().acquisitions.load(), acquisitions_before + 1);
  // ...and the monitor's RAG observed the hold handoff.
  rt.monitor().RunOnce();
  EXPECT_EQ(rt.monitor().rag().HeldLockCount(tid), 1);

  m.Unlock();
  rt.monitor().RunOnce();
  EXPECT_EQ(rt.monitor().rag().HeldLockCount(tid), 0);
}

TEST(CondVarTest, MutexReleasedDuringWait) {
  Runtime rt(TestConfig());
  Mutex m(rt);
  CondVar cv;
  bool observed_free = false;
  bool done = false;
  std::thread waiter([&] {
    (void)m.Lock();
    cv.Wait(m, [&] { return done; });
    m.Unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // While the waiter sleeps in Wait, the mutex must be acquirable.
  if (m.TryLock()) {
    observed_free = true;
    done = true;
    m.Unlock();
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_TRUE(observed_free);
}

}  // namespace
}  // namespace dimmunix
