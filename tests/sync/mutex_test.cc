// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/sync/mutex.h"

#include <gtest/gtest.h>

#include <latch>
#include <thread>
#include <vector>

#include "src/stack/annotation.h"

namespace dimmunix {
namespace {

Config TestConfig() {
  Config config;
  config.start_monitor = false;
  return config;
}

TEST(MutexTest, LockUnlockBasic) {
  Runtime rt(TestConfig());
  Mutex m(rt);
  EXPECT_EQ(m.Lock(), LockResult::kOk);
  m.Unlock();
}

TEST(MutexTest, SelfDeadlockIsReported) {
  // PTHREAD_MUTEX_ERRORCHECK semantics: Dimmunix itself "does not watch for
  // self-deadlocks" (§6).
  Runtime rt(TestConfig());
  Mutex m(rt);
  ASSERT_EQ(m.Lock(), LockResult::kOk);
  EXPECT_EQ(m.Lock(), LockResult::kSelfDeadlock);
  m.Unlock();
}

TEST(MutexDeathTest, ScopedLockFailureAbortsLoudly) {
  // lock() has no channel for a failure result, so scoped misuse must not
  // silently run the critical section without the lock: it aborts.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Runtime rt(TestConfig());
  Mutex m(rt);
  ASSERT_EQ(m.Lock(), LockResult::kOk);
  EXPECT_DEATH(m.lock(), "self-deadlock");
  m.Unlock();
}

TEST(MutexTest, MutualExclusionCounter) {
  Runtime rt(TestConfig());
  Mutex m(rt);
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        std::lock_guard<Mutex> guard(m);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, 8000);
  EXPECT_EQ(rt.engine().stats().acquisitions.load(), 8000u);
  EXPECT_EQ(rt.engine().stats().releases.load(), 8000u);
}

TEST(MutexTest, TryLockSemantics) {
  Runtime rt(TestConfig());
  Mutex m(rt);
  ASSERT_TRUE(m.TryLock());
  std::thread other([&] { EXPECT_FALSE(m.TryLock()); });
  other.join();
  m.Unlock();
  EXPECT_TRUE(m.TryLock());
  m.Unlock();
  // A failed contended trylock must roll back its request (§6 cancel).
  EXPECT_GE(rt.engine().stats().trylock_cancels.load(), 1u);
}

TEST(MutexTest, TimedLockTimesOutWhileHeld) {
  Runtime rt(TestConfig());
  Mutex m(rt);
  ASSERT_EQ(m.Lock(), LockResult::kOk);
  std::thread other([&] {
    const MonoTime start = Now();
    EXPECT_FALSE(m.LockFor(std::chrono::milliseconds(30)));
    EXPECT_GE(Now() - start, std::chrono::milliseconds(25));
  });
  other.join();
  m.Unlock();
  std::thread other2([&] { EXPECT_TRUE(m.LockFor(std::chrono::milliseconds(30))); });
  other2.join();
  // Still locked by other2's acquisition... unlock from this thread is not
  // legal; re-check by trylock failure.
  EXPECT_FALSE(m.TryLock());
}

TEST(MutexTest, RecursiveMutexNesting) {
  Runtime rt(TestConfig());
  RecursiveMutex m(rt);
  ASSERT_EQ(m.Lock(), LockResult::kOk);
  ASSERT_EQ(m.Lock(), LockResult::kOk);
  EXPECT_EQ(m.recursion_depth(), 2);
  m.Unlock();
  // Still held: another thread cannot take it.
  std::thread other([&] { EXPECT_FALSE(m.TryLock()); });
  other.join();
  m.Unlock();
  std::thread other2([&] {
    EXPECT_TRUE(m.TryLock());
    m.Unlock();
  });
  other2.join();
}

TEST(MutexTest, RecursiveTryLockNests) {
  Runtime rt(TestConfig());
  RecursiveMutex m(rt);
  ASSERT_TRUE(m.TryLock());
  ASSERT_TRUE(m.TryLock());
  m.Unlock();
  m.Unlock();
}

TEST(MutexTest, ContendedHandoff) {
  Runtime rt(TestConfig());
  Mutex m(rt);
  std::latch started(1);
  ASSERT_EQ(m.Lock(), LockResult::kOk);
  std::thread waiter([&] {
    started.count_down();
    EXPECT_EQ(m.Lock(), LockResult::kOk);
    m.Unlock();
  });
  started.wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  m.Unlock();
  waiter.join();
}

TEST(MutexTest, TimedLockDeadlineBoundsTheYieldToo) {
  // A timed acquisition that is forced to yield must still respect the
  // caller's deadline (Park's deadline path), not just the raw-mutex wait.
  Config config = TestConfig();
  config.default_match_depth = 1;
  config.yield_timeout = std::chrono::seconds(10);  // yield bound far away
  Runtime rt(config);
  bool added = false;
  rt.history().Add(SignatureKind::kDeadlock,
                   {rt.stacks().Intern({FrameFromName("timed_holdA")}),
                    rt.stacks().Intern({FrameFromName("timed_reqB")})},
                   1, &added);
  rt.engine().NotifyHistoryChanged();
  Mutex a(rt);
  Mutex b(rt);
  {
    ScopedFrame frame(FrameFromName("timed_holdA"));
    ASSERT_EQ(a.Lock(), LockResult::kOk);  // the never-released cause
  }
  std::thread other([&] {
    ScopedFrame frame(FrameFromName("timed_reqB"));
    const MonoTime start = Now();
    EXPECT_FALSE(b.LockFor(std::chrono::milliseconds(40)));  // yields, then deadline
    const auto waited = Now() - start;
    EXPECT_GE(waited, std::chrono::milliseconds(35));
    EXPECT_LT(waited, std::chrono::seconds(5));  // did NOT wait out the yield bound
  });
  other.join();
  a.Unlock();
  EXPECT_GE(rt.engine().stats().yields.load(), 1u);
}

TEST(MutexTest, EngineSeesAnnotatedStacks) {
  Runtime rt(TestConfig());
  Mutex m(rt);
  {
    DIMMUNIX_NAMED_FRAME("MutexTest::EngineSeesAnnotatedStacks");
    std::lock_guard<Mutex> guard(m);
  }
  // The acquisition interned a stack whose innermost frame is our named one.
  EXPECT_GE(rt.stacks().size(), 1u);
}

}  // namespace
}  // namespace dimmunix
