// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Stress: mixed Lock/TryLock/LockFor/CondVar traffic over many mutexes with
// the monitor running. Checks conservation invariants (acquisitions ==
// releases, no residual owners, no yields without signatures) and that the
// whole engine holds up under schedule churn.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "src/stack/annotation.h"
#include "src/sync/cond_var.h"
#include "src/sync/mutex.h"

namespace dimmunix {
namespace {

TEST(SyncStressTest, MixedOperationsConserveState) {
  Config config;
  config.monitor_period = std::chrono::milliseconds(10);
  Runtime rt(config);
  constexpr int kLocks = 6;
  constexpr int kThreads = 6;
  constexpr int kIters = 400;
  std::vector<std::unique_ptr<Mutex>> locks;
  for (int i = 0; i < kLocks; ++i) {
    locks.push_back(std::make_unique<Mutex>(rt));
  }
  std::atomic<long> critical_sections{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(static_cast<unsigned>(t) * 51u + 17u);
      for (int i = 0; i < kIters; ++i) {
        ScopedFrame frame(FrameFromName("stress_" + std::to_string(rng() % 3)));
        Mutex& m = *locks[rng() % kLocks];
        const unsigned op = rng() % 3;
        if (op == 0) {
          if (m.Lock() == LockResult::kOk) {
            critical_sections.fetch_add(1);
            m.Unlock();
          }
        } else if (op == 1) {
          if (m.TryLock()) {
            critical_sections.fetch_add(1);
            m.Unlock();
          }
        } else {
          if (m.LockFor(std::chrono::milliseconds(5))) {
            critical_sections.fetch_add(1);
            m.Unlock();
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  rt.monitor().RunOnce();
  const auto& stats = rt.engine().stats();
  EXPECT_EQ(stats.acquisitions.load(), stats.releases.load());
  EXPECT_EQ(stats.acquisitions.load(), static_cast<std::uint64_t>(critical_sections.load()));
  for (const auto& lock : locks) {
    EXPECT_EQ(rt.engine().LockOwner(lock->id()), kInvalidThreadId);
  }
  EXPECT_EQ(rt.history().size(), 0u);  // single-lock sections cannot deadlock
  EXPECT_EQ(stats.yields.load(), 0u);
}

TEST(SyncStressTest, CondVarPipelineUnderImmunizedLocks) {
  Config config;
  config.monitor_period = std::chrono::milliseconds(10);
  Runtime rt(config);
  Mutex m(rt);
  CondVar cv;
  std::vector<int> queue;
  bool done = false;
  constexpr int kItems = 500;

  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      (void)m.Lock();
      queue.push_back(i);
      m.Unlock();
      cv.NotifyOne();
    }
    (void)m.Lock();
    done = true;
    m.Unlock();
    cv.NotifyAll();
  });
  long consumed = 0;
  std::thread consumer([&] {
    for (;;) {
      (void)m.Lock();
      cv.Wait(m, [&] { return !queue.empty() || done; });
      while (!queue.empty()) {
        queue.pop_back();
        ++consumed;
      }
      const bool finished = done;
      m.Unlock();
      if (finished) {
        break;
      }
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(consumed, kItems);
  EXPECT_EQ(rt.engine().stats().acquisitions.load(), rt.engine().stats().releases.load());
}

TEST(SyncStressTest, ManyShortLivedMutexes) {
  // Lock identities are addresses; rapid create/destroy cycles must not
  // confuse the engine's owner map (stale ids are erased on final release).
  Config config;
  config.start_monitor = false;
  Runtime rt(config);
  for (int round = 0; round < 200; ++round) {
    Mutex m(rt);
    ASSERT_EQ(m.Lock(), LockResult::kOk);
    m.Unlock();
  }
  EXPECT_EQ(rt.engine().stats().acquisitions.load(), 200u);
  EXPECT_EQ(rt.engine().stats().releases.load(), 200u);
}

}  // namespace
}  // namespace dimmunix
