// Copyright (c) dimmunix-cpp authors. MIT license.
//
// SharedMutex semantics on top of the acquisition port: reader-reader
// coexistence, writer exclusion, try/timed variants, recursion, upgrade
// self-deadlock detection, and the engine's mode-aware owner set.

#include "src/sync/shared_mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <latch>
#include <shared_mutex>
#include <thread>
#include <vector>

namespace dimmunix {
namespace {

Config TestConfig() {
  Config config;
  config.start_monitor = false;
  return config;
}

TEST(SharedMutexTest, ManyConcurrentReaders) {
  Runtime rt(TestConfig());
  SharedMutex m(rt);
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::latch start(4);
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      start.arrive_and_wait();
      ASSERT_EQ(m.LockShared(), LockResult::kOk);
      const int now = inside.fetch_add(1) + 1;
      int seen = max_inside.load();
      while (now > seen && !max_inside.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      inside.fetch_sub(1);
      m.UnlockShared();
    });
  }
  for (auto& reader : readers) {
    reader.join();
  }
  // All four readers overlapped in the critical section at least pairwise.
  EXPECT_GE(max_inside.load(), 2);
  EXPECT_EQ(rt.engine().stats().yields.load(), 0u);
}

TEST(SharedMutexTest, WriterExcludesReadersAndWriters) {
  Runtime rt(TestConfig());
  SharedMutex m(rt);
  ASSERT_EQ(m.Lock(), LockResult::kOk);
  EXPECT_FALSE(m.TryLockShared());  // reader blocked by the writer
  std::thread other([&] {
    EXPECT_FALSE(m.TryLock());  // second writer blocked too
  });
  other.join();
  m.Unlock();
  EXPECT_TRUE(m.TryLockShared());
  m.UnlockShared();
}

TEST(SharedMutexTest, ReadersBlockWriterUntilDrained) {
  Runtime rt(TestConfig());
  SharedMutex m(rt);
  ASSERT_EQ(m.LockShared(), LockResult::kOk);
  std::thread other([&] {
    EXPECT_FALSE(m.TryLock());                                  // reader still in
    EXPECT_FALSE(m.LockFor(std::chrono::milliseconds(30)));     // timed writer gives up
  });
  other.join();
  m.UnlockShared();
  std::thread writer([&] {
    EXPECT_TRUE(m.LockFor(std::chrono::milliseconds(200)));
    m.Unlock();
  });
  writer.join();
}

TEST(SharedMutexTest, RecursiveReadHoldsBySameThread) {
  Runtime rt(TestConfig());
  SharedMutex m(rt);
  ASSERT_EQ(m.LockShared(), LockResult::kOk);
  ASSERT_EQ(m.LockShared(), LockResult::kOk);  // rdlock is recursive
  m.UnlockShared();
  std::thread other([&] {
    EXPECT_FALSE(m.TryLock());  // one read hold remains
  });
  other.join();
  m.UnlockShared();
  std::thread writer([&] {
    EXPECT_TRUE(m.TryLock());
    m.Unlock();
  });
  writer.join();
}

TEST(SharedMutexTest, SelfUpgradeAndSelfRelockAreLoudErrors) {
  Runtime rt(TestConfig());
  SharedMutex m(rt);
  ASSERT_EQ(m.LockShared(), LockResult::kOk);
  // Upgrading while holding a read lock would block on our own hold.
  EXPECT_EQ(m.Lock(), LockResult::kSelfDeadlock);
  EXPECT_FALSE(m.TryLock());
  m.UnlockShared();
  ASSERT_EQ(m.Lock(), LockResult::kOk);
  EXPECT_EQ(m.Lock(), LockResult::kSelfDeadlock);        // writer re-lock
  EXPECT_EQ(m.LockShared(), LockResult::kSelfDeadlock);  // rdlock while writing
  m.Unlock();
}

TEST(SharedMutexTest, StdSharedLockCompatibility) {
  Runtime rt(TestConfig());
  SharedMutex m(rt);
  {
    std::shared_lock<SharedMutex> read(m);
    std::shared_lock<SharedMutex> read_again(m, std::try_to_lock);
    EXPECT_TRUE(read_again.owns_lock());
  }
  {
    std::unique_lock<SharedMutex> write(m);
    EXPECT_TRUE(write.owns_lock());
  }
}

TEST(SharedMutexTest, EngineTracksModeAwareOwnerSet) {
  Runtime rt(TestConfig());
  SharedMutex m(rt);
  const ThreadId main_tid = rt.RegisterCurrentThread();

  ASSERT_EQ(m.LockShared(), LockResult::kOk);
  EXPECT_EQ(rt.engine().SharedHolderCount(m.id()), 1u);
  EXPECT_EQ(rt.engine().LockOwner(m.id()), kInvalidThreadId);  // no exclusive owner
  std::thread reader([&] {
    ASSERT_EQ(m.LockShared(), LockResult::kOk);
    EXPECT_EQ(rt.engine().SharedHolderCount(m.id()), 2u);
    m.UnlockShared();
  });
  reader.join();
  EXPECT_EQ(rt.engine().SharedHolderCount(m.id()), 1u);
  m.UnlockShared();
  EXPECT_EQ(rt.engine().SharedHolderCount(m.id()), 0u);

  ASSERT_EQ(m.Lock(), LockResult::kOk);
  EXPECT_EQ(rt.engine().LockOwner(m.id()), main_tid);
  EXPECT_EQ(rt.engine().SharedHolderCount(m.id()), 0u);
  m.Unlock();
  EXPECT_EQ(rt.engine().LockOwner(m.id()), kInvalidThreadId);
}

}  // namespace
}  // namespace dimmunix
