// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Engine-level invariants under randomized workloads:
//
//  1. Never-false-history (§5.7): deadlock-free random workloads leave the
//     history empty and trigger no yields, across many schedules.
//  2. Immunity (§3): for randomized AB-BA scenarios over random lock pairs
//     and frame sets, a seeded signature makes the scenario complete.
//  3. Conservation: every acquisition is eventually released; the engine's
//     Allowed sets drain to empty.

#include <gtest/gtest.h>

#include <latch>
#include <random>
#include <thread>

#include "src/stack/annotation.h"
#include "src/sync/mutex.h"

namespace dimmunix {
namespace {

struct EngineSweep {
  unsigned seed;
  int threads;
  int locks;
  int iterations;
};

class EngineProperty : public ::testing::TestWithParam<EngineSweep> {};

TEST_P(EngineProperty, DeadlockFreeWorkloadIsNeverPerturbed) {
  const EngineSweep params = GetParam();
  Config config;
  config.start_monitor = false;
  Runtime rt(config);
  std::vector<std::unique_ptr<Mutex>> locks;
  for (int i = 0; i < params.locks; ++i) {
    locks.push_back(std::make_unique<Mutex>(rt));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < params.threads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(params.seed + static_cast<unsigned>(t));
      for (int i = 0; i < params.iterations; ++i) {
        // Locks always taken in ascending index order: deadlock-free.
        int first = static_cast<int>(rng() % static_cast<unsigned>(params.locks));
        int second = static_cast<int>(rng() % static_cast<unsigned>(params.locks));
        if (first > second) {
          std::swap(first, second);
        }
        ScopedFrame frame(FrameFromName("engine_prop_" + std::to_string(rng() % 4)));
        std::lock_guard<Mutex> g1(*locks[static_cast<std::size_t>(first)]);
        if (second != first) {
          std::lock_guard<Mutex> g2(*locks[static_cast<std::size_t>(second)]);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  rt.monitor().RunOnce();
  EXPECT_EQ(rt.history().size(), 0u) << "no deadlock -> no signature, ever";
  EXPECT_EQ(rt.engine().stats().yields.load(), 0u);
  EXPECT_EQ(rt.monitor().stats().deadlocks_detected.load(), 0u);
  // Conservation: everything released.
  EXPECT_EQ(rt.engine().stats().acquisitions.load(), rt.engine().stats().releases.load());
}

TEST_P(EngineProperty, SeededSignatureImmunizesRandomAbBaPairs) {
  const EngineSweep params = GetParam();
  std::mt19937 rng(params.seed * 977u + 5u);
  Config config;
  config.start_monitor = false;
  config.default_match_depth = 1;
  Runtime rt(config);

  // Random frame pair for the two code paths.
  const std::string fa = "prop_pathA_" + std::to_string(rng() % 1000);
  const std::string fb = "prop_pathB_" + std::to_string(rng() % 1000);
  bool added = false;
  rt.history().Add(SignatureKind::kDeadlock,
                   {rt.stacks().Intern({FrameFromName(fa)}),
                    rt.stacks().Intern({FrameFromName(fb)})},
                   1, &added);
  ASSERT_TRUE(added);
  rt.engine().NotifyHistoryChanged();

  for (int round = 0; round < 3; ++round) {
    Mutex a(rt);
    Mutex b(rt);
    std::latch start(2);
    std::thread t1([&] {
      ScopedFrame frame(FrameFromName(fa));
      start.arrive_and_wait();
      std::lock_guard<Mutex> g1(a);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      std::lock_guard<Mutex> g2(b);
    });
    std::thread t2([&] {
      ScopedFrame frame(FrameFromName(fb));
      start.arrive_and_wait();
      std::lock_guard<Mutex> g1(b);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      std::lock_guard<Mutex> g2(a);
    });
    // With the signature seeded, the pair must complete (this join would
    // hang forever on a real deadlock; gtest's per-test timeout plus the
    // deterministic hold windows make this a real regression check).
    t1.join();
    t2.join();
  }
  EXPECT_GE(rt.engine().stats().yields.load(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineProperty,
                         ::testing::Values(EngineSweep{11, 2, 2, 150},
                                           EngineSweep{12, 4, 3, 100},
                                           EngineSweep{13, 3, 5, 120},
                                           EngineSweep{14, 6, 4, 60},
                                           EngineSweep{15, 2, 8, 200}));

}  // namespace
}  // namespace dimmunix
