// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Incremental-matcher properties under stripe-count sweeps and control-plane
// churn, parameterized over DIMMUNIX_STRIPES ∈ {1, 4, auto}:
//
//  1. Sequential oracle: after concurrent acquire/release traffic racing
//     disable/re-enable and set-depth churn, the engine's decision for the
//     canonical two-sided probe equals the sequential prediction in every
//     reachable control state (enabled@1 -> refuse, enabled@2 with a
//     non-matching outer frame -> allow, disabled -> allow) — and therefore
//     is identical across stripe counts.
//
//  2. Add-before-scan litmus: two threads racing the *second* edges of an
//     instantiation are never both granted, at any stripe count. The
//     incremental matcher publishes the requester's allow tuple before
//     scanning, so concurrent requesters cannot miss each other; this is
//     the invariant that keeps the fast path semantics equal to the
//     stop-the-stripes search it replaced.

#include <gtest/gtest.h>

#include <stdlib.h>

#include <atomic>
#include <latch>
#include <string>
#include <thread>
#include <vector>

#include "src/core/avoidance.h"
#include "src/core/runtime.h"
#include "src/stack/annotation.h"

namespace dimmunix {
namespace {

struct StripeSweep {
  const char* stripes_env;  // DIMMUNIX_STRIPES value ("0" = auto)
};

class MatcherProperty : public ::testing::TestWithParam<StripeSweep> {
 protected:
  // The runtime reads the stripe count the same way production does: from
  // DIMMUNIX_STRIPES via Config::FromEnvironment.
  Config SweptConfig() {
    ::setenv("DIMMUNIX_STRIPES", GetParam().stripes_env, 1);
    Config base;
    base.start_monitor = false;
    base.default_match_depth = 1;
    Config config = Config::FromEnvironment(base);
    ::unsetenv("DIMMUNIX_STRIPES");
    return config;
  }
};

constexpr const char* kOuterSig = "matcher_prop::outer_sig";
constexpr const char* kOuterWork = "matcher_prop::outer_work";
constexpr const char* kInnerA = "matcher_prop::path_a";
constexpr const char* kInnerB = "matcher_prop::path_b";

// Seeds the two-stack signature with two-frame stacks. Interned stacks are
// innermost-first (CaptureStack reverses the outermost-first annotation
// stack), so depth 1 compares only the inner path frames while depth 2
// additionally requires the signature's own outer frame — which the
// workload does NOT run under. SetMatchDepth(index, 2) therefore turns
// refusals into grants.
int SeedDepthSensitiveSignature(Runtime& rt) {
  const StackId sa =
      rt.stacks().Intern({FrameFromName(kInnerA), FrameFromName(kOuterSig)});
  const StackId sb =
      rt.stacks().Intern({FrameFromName(kInnerB), FrameFromName(kOuterSig)});
  bool added = false;
  const int index = rt.history().Add(SignatureKind::kDeadlock, {sa, sb}, 1, &added);
  rt.engine().NotifyHistoryChanged();
  return index;
}

// The canonical probe, run sequentially: one thread parks on a hold of
// `lock_a` through path A; the probing thread then asks for `lock_b`
// through path B. Returns the engine's decision for that second edge.
RequestDecision ProbeSecondEdge(Runtime& rt, LockId lock_a, LockId lock_b) {
  std::latch held(1);
  std::latch done(1);
  std::thread holder([&] {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame outer(FrameFromName(kOuterWork));
    ScopedFrame inner(FrameFromName(kInnerA));
    EXPECT_EQ(rt.engine().Request(tid, lock_a), RequestDecision::kGo);
    rt.engine().Acquired(tid, lock_a);
    held.count_down();
    done.wait();
    rt.engine().Release(tid, lock_a);
  });
  held.wait();
  RequestDecision decision;
  {
    const ThreadId tid = rt.RegisterCurrentThread();
    ScopedFrame outer(FrameFromName(kOuterWork));
    ScopedFrame inner(FrameFromName(kInnerB));
    decision = rt.engine().RequestNonblocking(tid, lock_b);
    if (decision == RequestDecision::kGo) {
      rt.engine().CancelRequest(tid, lock_b);
    }
  }
  done.count_down();
  holder.join();
  return decision;
}

TEST_P(MatcherProperty, ChurnedDecisionsMatchSequentialOracle) {
  Runtime rt(SweptConfig());
  const int sig = SeedDepthSensitiveSignature(rt);

  // Concurrent phase: two-sided AB-BA traffic races control-plane churn.
  // Decisions taken mid-churn may land on either side of a toggle; the
  // property is that the engine never wedges, never corrupts its Allowed
  // sets (conservation below), and settles to oracle-exact decisions.
  constexpr int kWorkers = 4;
  constexpr int kIterations = 250;
  std::atomic<bool> churn_on{true};
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      const ThreadId tid = rt.RegisterCurrentThread();
      const bool side_a = (w % 2) == 0;
      const LockId first = side_a ? 0x1001 : 0x1002;
      const LockId second = side_a ? 0x1002 : 0x1001;
      ScopedFrame outer(FrameFromName(kOuterWork));
      ScopedFrame inner(FrameFromName(side_a ? kInnerA : kInnerB));
      for (int i = 0; i < kIterations; ++i) {
        if (rt.engine().RequestNonblocking(tid, first) != RequestDecision::kGo) {
          continue;  // refused the first edge under a foreign cover; retry
        }
        rt.engine().Acquired(tid, first);
        const RequestDecision d = rt.engine().RequestNonblocking(tid, second);
        if (d == RequestDecision::kGo) {
          rt.engine().Acquired(tid, second);
          rt.engine().Release(tid, second);
        }
        rt.engine().Release(tid, first);
      }
    });
  }
  std::thread churn([&] {
    int round = 0;
    while (churn_on.load(std::memory_order_relaxed)) {
      rt.SetSignatureDisabled(sig, (round & 1) != 0);
      rt.SetSignatureMatchDepth(sig, (round & 2) != 0 ? 2 : 1);
      if (rt.DisableLastAvoidedSignature() >= 0) {
        rt.SetSignatureDisabled(sig, false);  // §5.7 disable-last, undone
      }
      ++round;
    }
    // Leave the signature in a known state for the oracle phase.
    rt.SetSignatureDisabled(sig, false);
    rt.SetSignatureMatchDepth(sig, 1);
  });
  for (auto& worker : workers) {
    worker.join();
  }
  churn_on.store(false, std::memory_order_relaxed);
  churn.join();

  // Conservation: the churned traffic drained completely.
  const EngineStatsSnapshot stats = rt.engine().stats().Snapshot();
  EXPECT_EQ(stats.acquisitions, stats.releases);

  // Sequential oracle, all three control states. Fresh locks per probe so
  // no state bleeds between checks; identical expectations across every
  // stripe count in the sweep.
  EXPECT_EQ(ProbeSecondEdge(rt, 0x2001, 0x2002), RequestDecision::kBusy)
      << "enabled at depth 1: the instantiation must be refused";

  rt.SetSignatureDisabled(sig, true);
  EXPECT_EQ(ProbeSecondEdge(rt, 0x2101, 0x2102), RequestDecision::kGo)
      << "disabled: the same pattern must be allowed";
  rt.SetSignatureDisabled(sig, false);

  rt.SetSignatureMatchDepth(sig, 2);
  EXPECT_EQ(ProbeSecondEdge(rt, 0x2201, 0x2202), RequestDecision::kGo)
      << "depth 2: the workload's outer frame differs from the signature's";
  rt.SetSignatureMatchDepth(sig, 1);

  EXPECT_EQ(ProbeSecondEdge(rt, 0x2301, 0x2302), RequestDecision::kBusy)
      << "back to depth 1: refusal must return";

  // The refusing probes above ran real per-stripe scans (the holder keeps
  // one signature position live), so the incremental fast path must have
  // carried them. (The churned phase itself may see only §5.6 trivial
  // rejects on a small host — those deliberately skip the counter.)
  EXPECT_GT(rt.engine().stats().Snapshot().match_fast_path, 0u)
      << "incremental matcher must carry the matching probes";
}

TEST_P(MatcherProperty, RacingSecondEdgesNeverBothPass) {
  Runtime rt(SweptConfig());
  SeedDepthSensitiveSignature(rt);

  constexpr int kRounds = 40;
  for (int round = 0; round < kRounds; ++round) {
    const LockId lock_a = 0x3000 + 2 * round;
    const LockId lock_b = 0x3001 + 2 * round;
    std::latch both_held(2);
    std::latch both_decided(2);
    std::atomic<int> grants{0};
    auto side = [&](bool is_a) {
      const ThreadId tid = rt.RegisterCurrentThread();
      const LockId first = is_a ? lock_a : lock_b;
      const LockId second = is_a ? lock_b : lock_a;
      ScopedFrame outer(FrameFromName(kOuterWork));
      ScopedFrame inner(FrameFromName(is_a ? kInnerA : kInnerB));
      ASSERT_EQ(rt.engine().Request(tid, first), RequestDecision::kGo);
      rt.engine().Acquired(tid, first);
      both_held.arrive_and_wait();
      const RequestDecision d = rt.engine().RequestNonblocking(tid, second);
      if (d == RequestDecision::kGo) {
        grants.fetch_add(1, std::memory_order_relaxed);
      }
      // A granted thread would now block on the raw mutex (the peer holds
      // it), its wait edge standing — hold that edge until both sides have
      // decided, or the litmus degenerates into two sequential trylocks.
      both_decided.arrive_and_wait();
      if (d == RequestDecision::kGo) {
        rt.engine().CancelRequest(tid, second);
      }
      rt.engine().Release(tid, first);
    };
    std::thread t1([&] { side(true); });
    std::thread t2([&] { side(false); });
    t1.join();
    t2.join();
    EXPECT_LE(grants.load(), 1)
        << "round " << round
        << ": both racing second edges granted — the add-before-scan litmus broke";
  }
}

INSTANTIATE_TEST_SUITE_P(Stripes, MatcherProperty,
                         ::testing::Values(StripeSweep{"1"}, StripeSweep{"4"},
                                           StripeSweep{"0"}),
                         [](const ::testing::TestParamInfo<StripeSweep>& info) {
                           return std::string("stripes_") +
                                  (std::string(info.param.stripes_env) == "0"
                                       ? "auto"
                                       : info.param.stripes_env);
                         });

}  // namespace
}  // namespace dimmunix
