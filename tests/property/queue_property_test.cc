// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Randomized stress properties of the event queue: no loss, no duplication,
// per-producer FIFO — under varying producer counts and batch sizes.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/event/event_queue.h"

namespace dimmunix {
namespace {

struct QueueParams {
  int producers;
  int per_producer;
};

class QueueProperty : public ::testing::TestWithParam<QueueParams> {};

TEST_P(QueueProperty, NoLossNoDuplicationPerProducerFifo) {
  const QueueParams params = GetParam();
  EventQueue queue;
  std::vector<std::thread> producers;
  for (int p = 0; p < params.producers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < params.per_producer; ++i) {
        Event event;
        event.type = EventType::kRequest;
        event.thread = static_cast<ThreadId>(p);
        event.lock = static_cast<LockId>(i + 1);
        queue.Push(event);
      }
    });
  }
  std::vector<LockId> next(static_cast<std::size_t>(params.producers), 1);
  std::size_t drained = 0;
  const std::size_t expected =
      static_cast<std::size_t>(params.producers) * static_cast<std::size_t>(params.per_producer);
  while (drained < expected) {
    auto event = queue.Pop();
    if (!event.has_value()) {
      std::this_thread::yield();
      continue;
    }
    auto& expected_lock = next[static_cast<std::size_t>(event->thread)];
    ASSERT_EQ(event->lock, expected_lock) << "per-producer FIFO violated";
    ++expected_lock;
    ++drained;
  }
  for (auto& producer : producers) {
    producer.join();
  }
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.total_pushed(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QueueProperty,
                         ::testing::Values(QueueParams{1, 20000}, QueueParams{2, 10000},
                                           QueueParams{4, 5000}, QueueParams{8, 2500},
                                           QueueParams{16, 1000}));

}  // namespace
}  // namespace dimmunix
