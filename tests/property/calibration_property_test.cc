// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Property sweeps for the calibration ladder (§5.5): for randomized verdict
// profiles, the chosen depth is always the smallest depth among those with
// the minimal observed FP rate.

#include <gtest/gtest.h>

#include <random>

#include "src/signature/calibration_state.h"

namespace dimmunix {
namespace {

struct CalibSweep {
  unsigned seed;
  int max_depth;
  int na;
};

class CalibrationProperty : public ::testing::TestWithParam<CalibSweep> {};

TEST_P(CalibrationProperty, ChoosesSmallestMinRateDepth) {
  const CalibSweep params = GetParam();
  std::mt19937 rng(params.seed);
  // Random per-depth FP probability profile.
  std::vector<double> fp_prob(static_cast<std::size_t>(params.max_depth));
  for (double& p : fp_prob) {
    p = static_cast<double>(rng() % 100) / 100.0;
  }

  CalibrationState state(params.max_depth, params.na, 1000000);
  // Drive the ladder: every avoidance is observed at the current rung only
  // (deepest == rung) so rungs fill sequentially and rates stay exact.
  while (state.calibrating()) {
    const int depth = state.current_depth();
    const bool fp =
        (static_cast<double>(rng() % 1000) / 1000.0) < fp_prob[static_cast<std::size_t>(depth - 1)];
    state.RecordVerdict(depth, depth, fp);
    state.RecordAvoidance(depth);
  }

  // Reference: smallest depth with minimal observed (not theoretical) rate.
  double best_rate = 2.0;
  int best_depth = 1;
  for (int d = 1; d <= params.max_depth; ++d) {
    const double rate = state.FpRate(d);
    if (rate >= 0 && rate < best_rate) {
      best_rate = rate;
      best_depth = d;
    }
  }
  EXPECT_EQ(state.current_depth(), best_depth);
  EXPECT_DOUBLE_EQ(state.FpRate(state.current_depth()), best_rate);
}

TEST_P(CalibrationProperty, LadderAlwaysTerminates) {
  const CalibSweep params = GetParam();
  std::mt19937 rng(params.seed ^ 0xbeefu);
  CalibrationState state(params.max_depth, params.na, 1000000);
  int steps = 0;
  const int bound = params.max_depth * params.na + 1;
  while (state.calibrating()) {
    // Random deepest-credit: may skip rungs but never stall.
    const int deepest =
        state.current_depth() +
        static_cast<int>(rng() % static_cast<unsigned>(params.max_depth));
    state.RecordAvoidance(deepest);
    ASSERT_LE(++steps, bound) << "calibration ladder failed to terminate";
  }
  EXPECT_GE(state.current_depth(), 1);
  EXPECT_LE(state.current_depth(), params.max_depth);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CalibrationProperty,
                         ::testing::Values(CalibSweep{21, 10, 20}, CalibSweep{22, 5, 10},
                                           CalibSweep{23, 8, 5}, CalibSweep{24, 3, 30},
                                           CalibSweep{25, 16, 8}, CalibSweep{26, 10, 1}));

}  // namespace
}  // namespace dimmunix
