// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Property sweeps for the stack table: the per-depth suffix-hash index must
// agree with a brute-force reference implementation for randomized stack
// populations.

#include <gtest/gtest.h>

#include <random>

#include "src/stack/stack_table.h"

namespace dimmunix {
namespace {

struct SweepParams {
  unsigned seed;
  int stacks;
  int max_len;
  int alphabet;  // distinct frames
};

class StackTableProperty : public ::testing::TestWithParam<SweepParams> {};

// Reference semantics: equal effective suffixes at a given depth.
bool RefMatches(const std::vector<Frame>& a, const std::vector<Frame>& b, int depth) {
  const std::size_t n = std::min(a.size(), static_cast<std::size_t>(depth));
  const std::size_t m = std::min(b.size(), static_cast<std::size_t>(depth));
  if (n != m) {
    return false;
  }
  return std::equal(a.begin(), a.begin() + static_cast<long>(n), b.begin());
}

TEST_P(StackTableProperty, IndexAgreesWithBruteForce) {
  const SweepParams params = GetParam();
  std::mt19937 rng(params.seed);
  StackTable table(8);
  std::vector<std::vector<Frame>> stacks;
  std::vector<StackId> ids;
  for (int i = 0; i < params.stacks; ++i) {
    const int len = 1 + static_cast<int>(rng() % static_cast<unsigned>(params.max_len));
    std::vector<Frame> frames;
    for (int j = 0; j < len; ++j) {
      frames.push_back(FrameFromName(
          "prop_f" + std::to_string(rng() % static_cast<unsigned>(params.alphabet))));
    }
    ids.push_back(table.Intern(frames));
    stacks.push_back(std::move(frames));
  }
  // Interning identical content must be idempotent.
  for (std::size_t i = 0; i < stacks.size(); ++i) {
    EXPECT_EQ(table.Intern(stacks[i]), ids[i]);
  }
  // MatchesAtDepth vs reference, and MatchingAtDepth completeness.
  for (int depth = 1; depth <= 8; ++depth) {
    for (std::size_t i = 0; i < stacks.size(); ++i) {
      auto matches = table.MatchingAtDepth(ids[i], depth);
      std::set<StackId> match_set(matches.begin(), matches.end());
      for (std::size_t j = 0; j < stacks.size(); ++j) {
        const bool expected = RefMatches(stacks[i], stacks[j], depth);
        EXPECT_EQ(table.MatchesAtDepth(ids[i], ids[j], depth), expected)
            << "depth " << depth << " i=" << i << " j=" << j;
        EXPECT_EQ(match_set.count(ids[j]) > 0, expected)
            << "index disagreement at depth " << depth;
      }
    }
  }
}

TEST_P(StackTableProperty, DeepestMatchDepthIsConsistent) {
  const SweepParams params = GetParam();
  std::mt19937 rng(params.seed ^ 0x5a5au);
  StackTable table(8);
  std::vector<StackId> ids;
  for (int i = 0; i < params.stacks; ++i) {
    const int len = 1 + static_cast<int>(rng() % static_cast<unsigned>(params.max_len));
    std::vector<Frame> frames;
    for (int j = 0; j < len; ++j) {
      frames.push_back(FrameFromName(
          "deep_f" + std::to_string(rng() % static_cast<unsigned>(params.alphabet))));
    }
    ids.push_back(table.Intern(frames));
  }
  for (StackId a : ids) {
    for (StackId b : ids) {
      const int deepest = table.DeepestMatchDepth(a, b);
      for (int d = 1; d <= 8; ++d) {
        if (d <= deepest) {
          EXPECT_TRUE(table.MatchesAtDepth(a, b, d));
        }
      }
      if (deepest < 8) {
        EXPECT_FALSE(table.MatchesAtDepth(a, b, deepest + 1));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StackTableProperty,
                         ::testing::Values(SweepParams{1, 20, 4, 3}, SweepParams{2, 40, 6, 2},
                                           SweepParams{3, 15, 8, 5}, SweepParams{4, 60, 3, 2},
                                           SweepParams{5, 30, 5, 4}));

}  // namespace
}  // namespace dimmunix
