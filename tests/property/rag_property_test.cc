// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Property: the RAG's incremental deadlock detection agrees with a
// brute-force wait-for-graph cycle search over randomized schedules of
// acquire / release / block operations.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "src/rag/rag.h"

namespace dimmunix {
namespace {

struct RagSweep {
  unsigned seed;
  int threads;
  int locks;
  int steps;
};

class RagProperty : public ::testing::TestWithParam<RagSweep> {};

// Shadow model of the schedule.
struct Model {
  struct Thread {
    std::set<LockId> held;
    LockId waiting = kInvalidLockId;
    bool deadlocked = false;
  };
  std::vector<Thread> threads;
  std::unordered_map<LockId, int> owner;  // lock -> thread (-1 free)

  explicit Model(int n) : threads(static_cast<std::size_t>(n)) {}

  // Brute force: is `start` on a wait-for cycle?
  bool OnCycle(int start) const {
    int current = start;
    std::set<int> seen;
    while (true) {
      const Thread& t = threads[static_cast<std::size_t>(current)];
      if (t.waiting == kInvalidLockId) {
        return false;
      }
      auto it = owner.find(t.waiting);
      if (it == owner.end() || it->second < 0) {
        return false;
      }
      current = it->second;
      if (current == start) {
        return true;
      }
      if (!seen.insert(current).second) {
        return false;  // cycle not through start
      }
    }
  }
};

Event Ev(EventType type, ThreadId t, LockId l, StackId s) {
  Event event;
  event.type = type;
  event.thread = t;
  event.lock = l;
  event.stack = s;
  return event;
}

TEST_P(RagProperty, DetectionMatchesBruteForce) {
  const RagSweep params = GetParam();
  std::mt19937 rng(params.seed);
  Rag rag;
  Model model(params.threads);
  std::set<int> rag_deadlocked;
  std::set<int> ref_deadlocked;

  for (int step = 0; step < params.steps; ++step) {
    // Pick a runnable thread.
    std::vector<int> runnable;
    for (int t = 0; t < params.threads; ++t) {
      const auto& thread = model.threads[static_cast<std::size_t>(t)];
      if (thread.waiting == kInvalidLockId && !thread.deadlocked) {
        runnable.push_back(t);
      }
    }
    if (runnable.empty()) {
      break;  // everything deadlocked — a fine end state
    }
    const int t = runnable[rng() % runnable.size()];
    auto& thread = model.threads[static_cast<std::size_t>(t)];
    const LockId lock = 1 + rng() % static_cast<unsigned>(params.locks);
    const StackId stack = static_cast<StackId>(rng() % 5);
    const auto owner_it = model.owner.find(lock);
    const int owner = owner_it == model.owner.end() ? -1 : owner_it->second;

    const unsigned action = rng() % 3;
    if (action == 0 && !thread.held.empty()) {
      // Release a random held lock.
      auto it = thread.held.begin();
      std::advance(it, static_cast<long>(rng() % thread.held.size()));
      const LockId released = *it;
      thread.held.erase(it);
      model.owner[released] = -1;
      rag.Apply(Ev(EventType::kRelease, t, released, stack));
      // A release can unblock a waiter in the model.
      for (int w = 0; w < params.threads; ++w) {
        auto& waiter = model.threads[static_cast<std::size_t>(w)];
        if (waiter.waiting == released && !waiter.deadlocked) {
          waiter.waiting = kInvalidLockId;
          waiter.held.insert(released);
          model.owner[released] = w;
          rag.Apply(Ev(EventType::kAcquired, w, released, stack));
          break;
        }
      }
    } else if (owner < 0) {
      // Acquire a free lock.
      if (thread.held.count(lock) > 0) {
        continue;  // model keeps locks non-reentrant here
      }
      thread.held.insert(lock);
      model.owner[lock] = t;
      rag.Apply(Ev(EventType::kRequest, t, lock, stack));
      rag.Apply(Ev(EventType::kAllow, t, lock, stack));
      rag.Apply(Ev(EventType::kAcquired, t, lock, stack));
    } else if (owner != t) {
      // Block on a held lock.
      thread.waiting = lock;
      rag.Apply(Ev(EventType::kRequest, t, lock, stack));
      rag.Apply(Ev(EventType::kAllow, t, lock, stack));
      if (model.OnCycle(t)) {
        // Reference: every thread on the cycle is deadlocked.
        int current = t;
        do {
          model.threads[static_cast<std::size_t>(current)].deadlocked = true;
          ref_deadlocked.insert(current);
          current = model.owner.at(
              model.threads[static_cast<std::size_t>(current)].waiting);
        } while (current != t);
      }
    }

    for (const DeadlockCycle& cycle : rag.DetectDeadlocks()) {
      for (ThreadId tid : cycle.threads) {
        rag_deadlocked.insert(static_cast<int>(tid));
      }
    }
  }
  // One final drain.
  for (const DeadlockCycle& cycle : rag.DetectDeadlocks()) {
    for (ThreadId tid : cycle.threads) {
      rag_deadlocked.insert(static_cast<int>(tid));
    }
  }
  EXPECT_EQ(rag_deadlocked, ref_deadlocked) << "seed " << params.seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RagProperty,
                         ::testing::Values(RagSweep{101, 4, 4, 400}, RagSweep{102, 6, 3, 600},
                                           RagSweep{103, 3, 6, 500}, RagSweep{104, 8, 8, 800},
                                           RagSweep{105, 5, 2, 300}, RagSweep{106, 2, 2, 200},
                                           RagSweep{107, 10, 5, 1000},
                                           RagSweep{108, 7, 7, 700}));

}  // namespace
}  // namespace dimmunix
