// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/signature/calibration_state.h"

#include <gtest/gtest.h>

namespace dimmunix {
namespace {

TEST(CalibrationStateTest, StartsAtDepthOneAndCalibrating) {
  CalibrationState state(10, 20, 10000);
  EXPECT_TRUE(state.calibrating());
  EXPECT_EQ(state.current_depth(), 1);
}

TEST(CalibrationStateTest, LadderAdvancesAfterNaAvoidances) {
  CalibrationState state(3, 5, 100);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(state.RecordAvoidance(1));
    EXPECT_EQ(state.current_depth(), 1);
  }
  EXPECT_FALSE(state.RecordAvoidance(1));  // 5th: rung advances
  EXPECT_EQ(state.current_depth(), 2);
}

TEST(CalibrationStateTest, DeepestCreditSkipsRungs) {
  // §5.5 fast-path: avoidances at depth k that would also match at k+1, k+2
  // credit those rungs, so the ladder "runs fewer than NA iterations at the
  // larger depths".
  CalibrationState state(3, 5, 100);
  for (int i = 0; i < 5; ++i) {
    state.RecordAvoidance(3);  // credits depths 1..3 each time
  }
  // All rungs already have >= NA avoidances: ladder completes immediately.
  EXPECT_FALSE(state.calibrating());
}

TEST(CalibrationStateTest, ChoosesSmallestDepthWithMinFpRate) {
  CalibrationState state(3, 2, 100);
  // Depth 1: 2 avoidances, both FPs.
  state.RecordVerdict(1, 1, true);
  state.RecordAvoidance(1);
  state.RecordVerdict(1, 1, true);
  state.RecordAvoidance(1);
  // Depth 2: 2 avoidances, one FP.
  state.RecordVerdict(2, 2, true);
  state.RecordAvoidance(2);
  state.RecordVerdict(2, 2, false);
  state.RecordAvoidance(2);
  // Depth 3: 2 avoidances, no FPs -> rate 0, smallest such depth is 3.
  state.RecordVerdict(3, 3, false);
  state.RecordAvoidance(3);
  state.RecordVerdict(3, 3, false);
  EXPECT_TRUE(state.RecordAvoidance(3));  // ladder completes
  EXPECT_FALSE(state.calibrating());
  EXPECT_EQ(state.current_depth(), 3);
}

TEST(CalibrationStateTest, TieBreaksTowardSmallestDepth) {
  // "multiple depths can have the same FPmin rate; choosing the smallest
  // depth gives us the most general pattern."
  CalibrationState state(3, 1, 100);
  state.RecordVerdict(1, 3, false);
  // One avoidance crediting all rungs completes the whole ladder.
  EXPECT_TRUE(state.RecordAvoidance(3));
  EXPECT_EQ(state.current_depth(), 1);
}

TEST(CalibrationStateTest, FpVerdictPropagatesToDeeperRungs) {
  CalibrationState state(5, 100, 100);
  state.RecordVerdict(2, 4, true);
  EXPECT_EQ(state.fp_count(2), 1u);
  EXPECT_EQ(state.fp_count(3), 1u);
  EXPECT_EQ(state.fp_count(4), 1u);
  EXPECT_EQ(state.fp_count(5), 0u);
  EXPECT_EQ(state.fp_count(1), 0u);
}

TEST(CalibrationStateTest, RecalibrationAfterNt) {
  CalibrationState state(2, 1, 3);
  state.RecordAvoidance(2);  // completes the ladder (credits both rungs)
  ASSERT_FALSE(state.calibrating());
  EXPECT_FALSE(state.CountTowardRecalibration());
  EXPECT_FALSE(state.CountTowardRecalibration());
  EXPECT_TRUE(state.CountTowardRecalibration());  // NT = 3 reached
  state.Restart();
  EXPECT_TRUE(state.calibrating());
  EXPECT_EQ(state.current_depth(), 1);
  EXPECT_EQ(state.avoid_count(1), 0u);
}

TEST(CalibrationStateTest, FpRateReportsMinusOneWithoutData) {
  CalibrationState state(4, 5, 100);
  EXPECT_LT(state.FpRate(3), 0.0);
  state.RecordAvoidance(1);
  EXPECT_DOUBLE_EQ(state.FpRate(1), 0.0);
  state.RecordVerdict(1, 1, true);
  EXPECT_DOUBLE_EQ(state.FpRate(1), 1.0);
}

}  // namespace
}  // namespace dimmunix
