// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/signature/history.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "src/persist/file.h"

namespace dimmunix {
namespace {

class HistoryTest : public ::testing::Test {
 protected:
  HistoryTest() : table_(10), history_(&table_) {}

  StackId Stack(std::initializer_list<const char*> names) {
    std::vector<Frame> frames;
    for (const char* name : names) {
      frames.push_back(FrameFromName(name));
    }
    return table_.Intern(frames);
  }

  std::string TempPath() {
    return (std::filesystem::temp_directory_path() /
            ("dimmunix_hist_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++)))
        .string();
  }

  StackTable table_;
  History history_;
  int counter_ = 0;
};

TEST_F(HistoryTest, AddAndGet) {
  bool added = false;
  const int index = history_.Add(SignatureKind::kDeadlock,
                                 {Stack({"a", "b"}), Stack({"c", "d"})}, 4, &added);
  EXPECT_TRUE(added);
  EXPECT_EQ(history_.size(), 1u);
  const Signature sig = history_.Get(index);
  EXPECT_EQ(sig.kind, SignatureKind::kDeadlock);
  EXPECT_EQ(sig.match_depth, 4);
  EXPECT_EQ(sig.stacks.size(), 2u);
}

TEST_F(HistoryTest, DuplicatesAreDisallowed) {
  // §5.3: "duplicate signatures are disallowed", so the history cannot grow
  // indefinitely.
  bool added = false;
  const StackId a = Stack({"a"});
  const StackId b = Stack({"b"});
  const int first = history_.Add(SignatureKind::kDeadlock, {a, b}, 4, &added);
  EXPECT_TRUE(added);
  // Same multiset, different order.
  const int second = history_.Add(SignatureKind::kDeadlock, {b, a}, 4, &added);
  EXPECT_FALSE(added);
  EXPECT_EQ(first, second);
  EXPECT_EQ(history_.size(), 1u);
}

TEST_F(HistoryTest, MultisetSignatureAllowsRepeatedStacks) {
  // Different threads deadlocked with the *same* call stack: the signature
  // must be a multiset (§5.3).
  bool added = false;
  const StackId s = Stack({"same", "stack"});
  history_.Add(SignatureKind::kDeadlock, {s, s}, 4, &added);
  EXPECT_TRUE(added);
  history_.Add(SignatureKind::kDeadlock, {s}, 4, &added);
  EXPECT_TRUE(added);  // {s} differs from {s, s}
  EXPECT_EQ(history_.size(), 2u);
}

TEST_F(HistoryTest, VersionBumpsOnMutation) {
  bool added = false;
  const std::uint64_t v0 = history_.version();
  const int index =
      history_.Add(SignatureKind::kDeadlock, {Stack({"a"}), Stack({"b"})}, 4, &added);
  EXPECT_GT(history_.version(), v0);
  const std::uint64_t v1 = history_.version();
  history_.SetDisabled(index, true);
  EXPECT_GT(history_.version(), v1);
  const std::uint64_t v2 = history_.version();
  history_.SetMatchDepth(index, 7);
  EXPECT_GT(history_.version(), v2);
  const std::uint64_t v3 = history_.version();
  history_.RecordAvoidance(index);  // counters do not affect matching: no bump
  EXPECT_EQ(history_.version(), v3);
}

TEST_F(HistoryTest, SaveLoadRoundtrip) {
  bool added = false;
  const int index = history_.Add(SignatureKind::kStarvation,
                                 {Stack({"f1", "f2", "f3"}), Stack({"g1"})}, 6, &added);
  history_.SetDisabled(index, true);
  history_.RecordAvoidance(index);
  history_.RecordAvoidance(index);
  history_.RecordAbort(index);
  const std::string path = TempPath();
  ASSERT_TRUE(history_.Save(path));

  StackTable table2(10);
  History loaded(&table2);
  ASSERT_TRUE(loaded.Load(path));
  ASSERT_EQ(loaded.size(), 1u);
  const Signature sig = loaded.Get(0);
  EXPECT_EQ(sig.kind, SignatureKind::kStarvation);
  EXPECT_EQ(sig.match_depth, 6);
  EXPECT_TRUE(sig.disabled);
  EXPECT_EQ(sig.avoidance_count, 2u);
  EXPECT_EQ(sig.abort_count, 1u);
  // The stacks round-trip frame-for-frame.
  const StackEntry& entry = table2.Get(sig.stacks[0]);
  EXPECT_FALSE(entry.frames.empty());
  std::remove(path.c_str());
}

TEST_F(HistoryTest, LoadMergesWithoutDuplicating) {
  bool added = false;
  history_.Add(SignatureKind::kDeadlock, {Stack({"m1"}), Stack({"m2"})}, 4, &added);
  const std::string path = TempPath();
  ASSERT_TRUE(history_.Save(path));
  // Loading our own file back must not duplicate.
  ASSERT_TRUE(history_.Load(path));
  EXPECT_EQ(history_.size(), 1u);
  std::remove(path.c_str());
}

TEST_F(HistoryTest, MissingFileIsNotAnError) {
  EXPECT_TRUE(history_.Load("/nonexistent/dimmunix.hist"));
  EXPECT_EQ(history_.size(), 0u);
}

TEST_F(HistoryTest, MalformedLinesAreSkipped) {
  const std::string path = TempPath();
  {
    std::ofstream out(path);
    out << "# dimmunix history v1\n";
    out << "garbage line\n";
    out << "sig kind=deadlock depth=3 disabled=0 avoided=0 aborts=0\n";
    out << "stack ff aa\n";
    out << "end\n";
  }
  ASSERT_TRUE(history_.Load(path));
  EXPECT_EQ(history_.size(), 1u);
  EXPECT_EQ(history_.Get(0).match_depth, 3);
  std::remove(path.c_str());
}

TEST_F(HistoryTest, SaveWritesFormatV2) {
  bool added = false;
  history_.Add(SignatureKind::kDeadlock, {Stack({"v2a"}), Stack({"v2b"})}, 4, &added);
  const std::string path = TempPath();
  ASSERT_TRUE(history_.Save(path));
  std::ifstream in(path, std::ios::binary);
  char magic[4] = {};
  in.read(magic, 4);
  EXPECT_EQ(std::string(magic, 4), "DIMX");
  persist::RemoveHistoryFiles(path);
}

TEST_F(HistoryTest, LegacyV1FileUpgradesOnResave) {
  const std::string path = TempPath();
  {
    std::ofstream out(path);
    out << "# dimmunix history v1\n";
    out << "sig kind=deadlock depth=3 disabled=1 avoided=9 aborts=1\n";
    out << "stack ff aa\n";
    out << "stack 1b\n";
    out << "end\n";
  }
  ASSERT_TRUE(history_.Load(path));
  ASSERT_EQ(history_.size(), 1u);
  EXPECT_TRUE(history_.Get(0).disabled);
  EXPECT_EQ(history_.Get(0).avoidance_count, 9u);
  // Saving re-encodes as v2; a fresh History loads it identically.
  ASSERT_TRUE(history_.Save(path));
  StackTable table2(10);
  History reloaded(&table2);
  ASSERT_TRUE(reloaded.Load(path));
  ASSERT_EQ(reloaded.size(), 1u);
  EXPECT_EQ(reloaded.Get(0).match_depth, 3);
  EXPECT_EQ(reloaded.Get(0).avoidance_count, 9u);
  persist::RemoveHistoryFiles(path);
}

TEST_F(HistoryTest, LoadReplaysJournalSidecar) {
  bool added = false;
  history_.Add(SignatureKind::kDeadlock, {Stack({"snap1"}), Stack({"snap2"})}, 4, &added);
  const std::string path = TempPath();
  ASSERT_TRUE(history_.Save(path));
  // A crashed process left one extra signature only in the journal.
  persist::SignatureRecord extra;
  extra.match_depth = 2;
  extra.stacks.push_back({0x111});
  extra.stacks.push_back({0x222});
  ASSERT_TRUE(persist::AppendJournalRecord(path, extra, /*fsync_after=*/false));

  StackTable table2(10);
  History loaded(&table2);
  ASSERT_TRUE(loaded.Load(path));
  EXPECT_EQ(loaded.size(), 2u);
  persist::RemoveHistoryFiles(path);
}

TEST_F(HistoryTest, MergeImagePolicyGovernsKnobs) {
  bool added = false;
  const int index =
      history_.Add(SignatureKind::kDeadlock, {Stack({"pol1"}), Stack({"pol2"})}, 4, &added);
  // Build an image of the same signature with different knobs/counters.
  persist::HistoryImage image = history_.ExportImage();
  image.records[0].disabled = true;
  image.records[0].match_depth = 2;
  image.records[0].avoidance_count = 50;

  // Compaction policy: my knobs win, counters still ratchet up.
  EXPECT_EQ(history_.MergeImage(image, persist::MergePolicy::kPreferExisting), 0);
  EXPECT_FALSE(history_.Get(index).disabled);
  EXPECT_EQ(history_.Get(index).match_depth, 4);
  EXPECT_EQ(history_.Get(index).avoidance_count, 50u);

  // Reload policy (§8): the file wins the knobs.
  const std::uint64_t version_before = history_.version();
  EXPECT_EQ(history_.MergeImage(image, persist::MergePolicy::kPreferIncoming), 0);
  EXPECT_TRUE(history_.Get(index).disabled);
  EXPECT_EQ(history_.Get(index).match_depth, 2);
  EXPECT_GT(history_.version(), version_before);
}

TEST_F(HistoryTest, ForEachVisitsAll) {
  bool added = false;
  history_.Add(SignatureKind::kDeadlock, {Stack({"x1"}), Stack({"x2"})}, 4, &added);
  history_.Add(SignatureKind::kDeadlock, {Stack({"y1"}), Stack({"y2"})}, 4, &added);
  int visited = 0;
  history_.ForEach([&](int, const Signature&) { ++visited; });
  EXPECT_EQ(visited, 2);
}

}  // namespace
}  // namespace dimmunix
