// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Tests for the delta-extraction layer fleet gossip is built on:
// order-independent signature hashing, sorted digests, DeltaAgainst's
// missing/newer-epoch selection, and DiffImages (history_tool diff).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "src/persist/image.h"

namespace dimmunix {
namespace persist {
namespace {

// A record whose stack multiset is derived from `seed` — distinct seeds give
// distinct signatures, same seed (in any stack order) the same signature.
SignatureRecord MakeRecord(std::uint64_t seed, std::uint16_t epoch = 0,
                           bool disabled = false) {
  SignatureRecord rec;
  rec.knob_epoch = epoch;
  rec.disabled = disabled;
  rec.stacks.push_back({Frame{seed * 31 + 1}, Frame{seed * 31 + 2}});
  rec.stacks.push_back({Frame{seed * 97 + 5}});
  return rec;
}

TEST(DeltaTest, SignatureHashIgnoresStackOrder) {
  SignatureRecord forward = MakeRecord(7);
  SignatureRecord reversed = forward;
  std::reverse(reversed.stacks.begin(), reversed.stacks.end());
  EXPECT_EQ(SignatureHash(forward), SignatureHash(reversed));

  // Canonicalization must not change the hash either.
  SignatureRecord canonical = reversed;
  canonical.Canonicalize();
  EXPECT_EQ(SignatureHash(forward), SignatureHash(canonical));
}

TEST(DeltaTest, SignatureHashSeparatesDistinctSignatures) {
  EXPECT_NE(SignatureHash(MakeRecord(1)), SignatureHash(MakeRecord(2)));
  // Frame order *within* one stack is significant (different call path).
  SignatureRecord rec = MakeRecord(3);
  SignatureRecord swapped = rec;
  std::swap(swapped.stacks[0][0], swapped.stacks[0][1]);
  EXPECT_NE(SignatureHash(rec), SignatureHash(swapped));
}

TEST(DeltaTest, SignatureHashIgnoresKnobsAndCounters) {
  // The hash is identity, not state: knob/counter changes must not fork it.
  SignatureRecord rec = MakeRecord(4);
  SignatureRecord tweaked = rec;
  tweaked.knob_epoch = 9;
  tweaked.disabled = true;
  tweaked.match_depth = 1;
  tweaked.avoidance_count = 1000;
  EXPECT_EQ(SignatureHash(rec), SignatureHash(tweaked));
}

TEST(DeltaTest, DigestOfIsSortedAndCarriesEpochs) {
  HistoryImage image;
  image.records.push_back(MakeRecord(11, /*epoch=*/3));
  image.records.push_back(MakeRecord(5, /*epoch=*/1));
  image.records.push_back(MakeRecord(29, /*epoch=*/7));

  const std::vector<DigestEntry> digest = DigestOf(image);
  ASSERT_EQ(digest.size(), 3u);
  EXPECT_TRUE(std::is_sorted(digest.begin(), digest.end(),
                             [](const DigestEntry& a, const DigestEntry& b) {
                               return a.hash < b.hash;
                             }));
  for (const SignatureRecord& rec : image.records) {
    const std::uint64_t hash = SignatureHash(rec);
    const auto it = std::find_if(digest.begin(), digest.end(),
                                 [&](const DigestEntry& e) { return e.hash == hash; });
    ASSERT_NE(it, digest.end());
    EXPECT_EQ(it->knob_epoch, rec.knob_epoch);
  }
}

TEST(DeltaTest, DeltaAgainstShipsMissingAndNewerEpochRecords) {
  HistoryImage mine;
  mine.records.push_back(MakeRecord(1, /*epoch=*/0));  // peer has it, same epoch
  mine.records.push_back(MakeRecord(2, /*epoch=*/5));  // peer has epoch 2 -> ship
  mine.records.push_back(MakeRecord(3, /*epoch=*/0));  // peer missing -> ship
  mine.records.push_back(MakeRecord(4, /*epoch=*/1));  // peer has epoch 8 -> keep

  HistoryImage theirs;
  theirs.records.push_back(MakeRecord(1, /*epoch=*/0));
  theirs.records.push_back(MakeRecord(2, /*epoch=*/2));
  theirs.records.push_back(MakeRecord(4, /*epoch=*/8));

  const HistoryImage delta = DeltaAgainst(mine, DigestOf(theirs));
  ASSERT_EQ(delta.records.size(), 2u);
  std::vector<std::uint64_t> shipped;
  for (const SignatureRecord& rec : delta.records) {
    shipped.push_back(SignatureHash(rec));
  }
  EXPECT_NE(std::find(shipped.begin(), shipped.end(), SignatureHash(MakeRecord(2))),
            shipped.end());
  EXPECT_NE(std::find(shipped.begin(), shipped.end(), SignatureHash(MakeRecord(3))),
            shipped.end());
}

TEST(DeltaTest, DeltaAgainstEmptyDigestShipsEverything) {
  HistoryImage mine;
  mine.records.push_back(MakeRecord(1));
  mine.records.push_back(MakeRecord(2));
  EXPECT_EQ(DeltaAgainst(mine, {}).records.size(), 2u);
  EXPECT_TRUE(DeltaAgainst(HistoryImage{}, {}).records.empty());
}

TEST(DeltaTest, DiffImagesClassifiesDifferences) {
  HistoryImage a;
  a.records.push_back(MakeRecord(1, /*epoch=*/0));
  a.records.push_back(MakeRecord(2, /*epoch=*/3));
  a.records.push_back(MakeRecord(3, /*epoch=*/0));

  HistoryImage b;
  b.records.push_back(MakeRecord(1, /*epoch=*/0));
  b.records.push_back(MakeRecord(2, /*epoch=*/4));
  b.records.push_back(MakeRecord(4, /*epoch=*/0));

  const ImageDiff diff = DiffImages(a, b);
  EXPECT_FALSE(diff.identical());
  ASSERT_EQ(diff.only_in_a.size(), 1u);
  EXPECT_EQ(diff.only_in_a[0], SignatureHash(MakeRecord(3)));
  ASSERT_EQ(diff.only_in_b.size(), 1u);
  EXPECT_EQ(diff.only_in_b[0], SignatureHash(MakeRecord(4)));
  ASSERT_EQ(diff.knob_differs.size(), 1u);
  EXPECT_EQ(diff.knob_differs[0].hash, SignatureHash(MakeRecord(2)));
  EXPECT_EQ(diff.knob_differs[0].epoch_a, 3);
  EXPECT_EQ(diff.knob_differs[0].epoch_b, 4);
}

TEST(DeltaTest, DiffImagesFlagsDisabledMismatchAtEqualEpoch) {
  // Same epoch but diverged knobs (possible after an epoch wrap or a manual
  // edit) must still show as a difference — diff is about convergence.
  HistoryImage a;
  a.records.push_back(MakeRecord(1, /*epoch=*/2, /*disabled=*/false));
  HistoryImage b;
  b.records.push_back(MakeRecord(1, /*epoch=*/2, /*disabled=*/true));
  const ImageDiff diff = DiffImages(a, b);
  ASSERT_EQ(diff.knob_differs.size(), 1u);
  EXPECT_FALSE(diff.identical());
}

TEST(DeltaTest, DiffImagesIdentical) {
  HistoryImage a;
  a.records.push_back(MakeRecord(1, /*epoch=*/2));
  HistoryImage b = a;
  // Stack order must not matter for diff either.
  std::reverse(b.records[0].stacks.begin(), b.records[0].stacks.end());
  EXPECT_TRUE(DiffImages(a, b).identical());
  EXPECT_TRUE(DiffImages(HistoryImage{}, HistoryImage{}).identical());
}

}  // namespace
}  // namespace persist
}  // namespace dimmunix
