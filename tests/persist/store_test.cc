// Copyright (c) dimmunix-cpp authors. MIT license.
//
// HistoryStore tests: the async journal path, threshold compaction, the
// synchronous lock-merge-save (SaveNow), export/merge, and live resync
// between two stores sharing one history file.

#include "src/persist/store.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "src/signature/history.h"
#include "src/stack/annotation.h"
#include "src/stack/stack_table.h"

namespace dimmunix {
namespace persist {
namespace {

using namespace std::chrono_literals;

// Polls until `pred` holds or ~2s elapse.
template <typename Pred>
bool Eventually(Pred pred) {
  for (int i = 0; i < 400; ++i) {
    if (pred()) {
      return true;
    }
    std::this_thread::sleep_for(5ms);
  }
  return pred();
}

class StoreTest : public ::testing::Test {
 protected:
  StoreTest() : table_(10), history_(&table_) {}

  std::string TempPath() {
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("dimx_store_" + std::to_string(::getpid()) + "_" + std::to_string(counter_++)))
            .string();
    RemoveHistoryFiles(path);
    cleanup_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& path : cleanup_) {
      RemoveHistoryFiles(path);
    }
  }

  int AddSignature(History* history, const char* fa, const char* fb) {
    bool added = false;
    return history->Add(
        SignatureKind::kDeadlock,
        {table_.Intern({FrameFromName(fa)}), table_.Intern({FrameFromName(fb)})}, 2, &added);
  }

  StackTable table_;
  History history_;
  int counter_ = 0;
  std::vector<std::string> cleanup_;
};

TEST_F(StoreTest, StartCreatesTheFileImmediately) {
  const std::string path = TempPath();
  StoreOptions options;
  options.path = path;
  HistoryStore store(options, &history_, &table_);
  EXPECT_FALSE(std::filesystem::exists(path));
  store.Start();
  EXPECT_TRUE(std::filesystem::exists(path));
  store.Stop();
}

TEST_F(StoreTest, NotifyJournalsAsynchronously) {
  const std::string path = TempPath();
  StoreOptions options;
  options.path = path;
  options.journal_threshold = 1000;  // never compact during the test
  HistoryStore store(options, &history_, &table_);
  store.Start();

  const int index = AddSignature(&history_, "async::a", "async::b");
  store.NotifySignatureChanged(index);  // O(1), no I/O on this thread

  ASSERT_TRUE(Eventually([&] { return std::filesystem::exists(JournalPathFor(path)); }));
  ASSERT_TRUE(Eventually([&] { return store.stats().appends >= 1; }));

  // The journal alone (snapshot is still empty) must round-trip the delta.
  StackTable table2(10);
  History loaded(&table2);
  ASSERT_TRUE(loaded.Load(path));
  EXPECT_EQ(loaded.size(), 1u);
  store.Stop();
}

TEST_F(StoreTest, ThresholdTriggersCompaction) {
  const std::string path = TempPath();
  StoreOptions options;
  options.path = path;
  options.journal_threshold = 3;
  HistoryStore store(options, &history_, &table_);
  store.Start();
  for (int i = 0; i < 3; ++i) {
    const std::string fa = "thresh::a" + std::to_string(i);
    const std::string fb = "thresh::b" + std::to_string(i);
    store.NotifySignatureChanged(AddSignature(&history_, fa.c_str(), fb.c_str()));
  }
  // Threshold reached -> journal folded into the snapshot and removed.
  ASSERT_TRUE(Eventually([&] { return store.stats().compactions >= 2; }));
  ASSERT_TRUE(Eventually([&] { return !std::filesystem::exists(JournalPathFor(path)); }));

  StackTable table2(10);
  History loaded(&table2);
  ASSERT_TRUE(loaded.Load(path));
  EXPECT_EQ(loaded.size(), 3u);
  store.Stop();
}

TEST_F(StoreTest, StopFlushesEverything) {
  const std::string path = TempPath();
  StoreOptions options;
  options.path = path;
  options.journal_threshold = 1000;
  {
    HistoryStore store(options, &history_, &table_);
    store.Start();
    store.NotifySignatureChanged(AddSignature(&history_, "stop::a", "stop::b"));
    store.Stop();
  }
  EXPECT_FALSE(std::filesystem::exists(JournalPathFor(path)));  // compacted
  StackTable table2(10);
  History loaded(&table2);
  ASSERT_TRUE(loaded.Load(path));
  EXPECT_EQ(loaded.size(), 1u);
}

TEST_F(StoreTest, SaveNowMergesForeignSignaturesIntoLiveHistory) {
  const std::string path = TempPath();
  // Another "process" wrote its own signature to the shared file.
  {
    StackTable other_table(10);
    History other(&other_table);
    bool added = false;
    other.Add(SignatureKind::kDeadlock,
              {other_table.Intern({FrameFromName("foreign::a")}),
               other_table.Intern({FrameFromName("foreign::b")})},
              2, &added);
    ASSERT_TRUE(other.Save(path));
  }

  StoreOptions options;
  options.path = path;
  options.merge_on_start = false;  // isolate the SaveNow behavior
  HistoryStore store(options, &history_, &table_);
  int merged_callbacks = 0;
  store.SetOnHistoryMerged([&] { ++merged_callbacks; });
  store.Start();

  AddSignature(&history_, "local::a", "local::b");
  const std::uint64_t version_before = history_.version();
  ASSERT_TRUE(store.SaveNow());

  // Both signatures now live in memory AND on disk; the engine was told.
  EXPECT_EQ(history_.size(), 2u);
  EXPECT_GT(history_.version(), version_before);
  EXPECT_EQ(merged_callbacks, 1);
  EXPECT_EQ(store.stats().foreign_merged, 1u);

  StackTable table2(10);
  History loaded(&table2);
  ASSERT_TRUE(loaded.Load(path));
  EXPECT_EQ(loaded.size(), 2u);
  store.Stop();
}

TEST_F(StoreTest, ResyncConsumesOtherProcesssWritesLive) {
  const std::string path = TempPath();

  StoreOptions options_a;
  options_a.path = path;
  HistoryStore store_a(options_a, &history_, &table_);
  store_a.Start();

  StackTable table_b(10);
  History history_b(&table_b);
  StoreOptions options_b;
  options_b.path = path;
  options_b.resync_period = 20ms;
  HistoryStore store_b(options_b, &history_b, &table_b);
  store_b.Start();

  // A detects a deadlock and persists; B must learn it without any call.
  store_a.NotifySignatureChanged(AddSignature(&history_, "resync::a", "resync::b"));
  ASSERT_TRUE(store_a.SaveNow());
  EXPECT_TRUE(Eventually([&] { return history_b.size() == 1; }))
      << "store B never resynced the shared file";

  store_b.Stop();
  store_a.Stop();
}

TEST_F(StoreTest, KnobEpochPreventsCompactionFromRevertingForeignDisable) {
  // Process B disables a signature and persists; process A (stale copy in
  // memory) then runs a threshold-style compaction with kPreferExisting.
  // The higher knob_epoch in the file must win — A adopts the disable
  // instead of clobbering it.
  const std::string path = TempPath();
  const int index = AddSignature(&history_, "epoch::a", "epoch::b");

  StoreOptions options;
  options.path = path;
  HistoryStore store_a(options, &history_, &table_);
  store_a.Start();
  ASSERT_TRUE(store_a.SaveNow());

  {
    // "Process B": loads the shared file, disables, saves.
    StackTable table_b(10);
    History history_b(&table_b);
    ASSERT_TRUE(history_b.Load(path));
    ASSERT_EQ(history_b.size(), 1u);
    history_b.SetDisabled(0, true);  // bumps knob_epoch
    ASSERT_TRUE(history_b.Save(path));
  }

  ASSERT_FALSE(history_.Get(index).disabled);
  ASSERT_TRUE(store_a.SaveNow());  // kPreferExisting — epoch must override it
  EXPECT_TRUE(history_.Get(index).disabled)
      << "compaction reverted another process's disable";

  StackTable table_c(10);
  History loaded(&table_c);
  ASSERT_TRUE(loaded.Load(path));
  EXPECT_TRUE(loaded.Get(0).disabled);
  store_a.Stop();
}

TEST_F(StoreTest, ExportAndMergeRoundTrip) {
  const std::string path = TempPath();
  const std::string exported = TempPath();
  StoreOptions options;
  options.path = path;
  HistoryStore store(options, &history_, &table_);
  store.Start();
  AddSignature(&history_, "exp::a", "exp::b");
  ASSERT_TRUE(store.ExportTo(exported));

  // Merge the export into a different history via its own store.
  StackTable table2(10);
  History history2(&table2);
  const std::string path2 = TempPath();
  StoreOptions options2;
  options2.path = path2;
  HistoryStore store2(options2, &history2, &table2);
  store2.Start();
  EXPECT_EQ(store2.MergeFrom(exported), 1);
  EXPECT_EQ(history2.size(), 1u);
  EXPECT_EQ(store2.MergeFrom(exported), 0);  // idempotent
  EXPECT_EQ(store2.MergeFrom("/nonexistent/x.hist"), -1);

  store2.Stop();
  store.Stop();
}

}  // namespace
}  // namespace persist
}  // namespace dimmunix
