// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Crash-safety and multi-process tests — the acceptance criteria of the
// durable-immunity work:
//
//  * SIGKILL at an arbitrary point during journal appends leaves a file
//    History::Load accepts (at most the torn final record is lost).
//  * N processes doing concurrent load-merge-save on one history file lose
//    no signatures (the fcntl lock protocol).
//
// Children are forked before this binary spawns any threads and run only
// persist-layer file I/O, so fork() is safe here.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "src/persist/file.h"
#include "src/signature/history.h"
#include "src/stack/stack_table.h"

namespace dimmunix {
namespace persist {
namespace {

std::string TempPath(const char* tag) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       (std::string("dimx_crash_") + tag + "_" + std::to_string(::getpid())))
          .string();
  RemoveHistoryFiles(path);
  return path;
}

SignatureRecord UniqueRecord(std::uint64_t child, std::uint64_t i) {
  SignatureRecord rec;
  rec.kind = 0;
  rec.match_depth = 2;
  rec.avoidance_count = i;
  rec.stacks.push_back({child * 1000000 + i * 2 + 1});
  rec.stacks.push_back({child * 1000000 + i * 2 + 2});
  rec.Canonicalize();
  return rec;
}

TEST(CrashTest, SigkillMidJournalAppendLeavesLoadableFile) {
  const std::string path = TempPath("kill");
  // Seed one durable signature so there is always something to protect.
  {
    HistoryImage seed;
    seed.records.push_back(UniqueRecord(99, 0));
    ASSERT_TRUE(SaveHistoryFile(path, seed));
  }

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Append records as fast as possible until killed. Any write() may be
    // the one the SIGKILL lands in.
    for (std::uint64_t i = 1;; ++i) {
      AppendJournalRecord(path, UniqueRecord(1, i), /*fsync_after=*/false);
    }
  }
  ::usleep(60 * 1000);  // let it get a few hundred appends in
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));

  // The file must be accepted by a tolerant load...
  HistoryImage image;
  const LoadResult result = LoadHistoryFile(path, &image);
  EXPECT_EQ(result.status, LoadStatus::kOk);
  EXPECT_GE(image.records.size(), 1u) << "the seed signature must survive";
  // ...at most the torn final record may be missing.
  EXPECT_LE(result.records_dropped, 1u);

  // And by the full History stack (what a restarting runtime does).
  StackTable table(10);
  History history(&table);
  EXPECT_TRUE(history.Load(path));
  EXPECT_GE(history.size(), 1u);

  // Compaction (what the next runtime's store does at startup) folds the
  // survivors into a snapshot that then validates clean.
  ASSERT_TRUE(SaveHistoryFile(path, image));
  EXPECT_EQ(ValidateHistoryFile(path).status, LoadStatus::kOk);
  RemoveHistoryFiles(path);
}

TEST(CrashTest, TwoProcessConcurrentMergeLosesNoSignatures) {
  const std::string path = TempPath("merge2");
  constexpr int kPerChild = 25;

  pid_t children[2] = {-1, -1};
  for (std::uint64_t c = 0; c < 2; ++c) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Each child checkpoints kPerChild distinct signatures one at a time —
      // the worst-case interleaving for a lost-update bug.
      for (std::uint64_t i = 0; i < kPerChild; ++i) {
        HistoryImage mine;
        mine.records.push_back(UniqueRecord(c + 1, i));
        if (!MergeIntoFile(path, mine)) {
          _exit(10);
        }
      }
      _exit(0);
    }
    children[c] = pid;
  }
  for (pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);
  }

  HistoryImage image;
  const LoadResult result = LoadHistoryFile(path, &image);
  ASSERT_EQ(result.status, LoadStatus::kOk);
  EXPECT_EQ(result.records_dropped, 0u);
  ASSERT_EQ(image.records.size(), 2u * kPerChild) << "signatures were lost in the merge";
  for (std::uint64_t c = 1; c <= 2; ++c) {
    for (std::uint64_t i = 0; i < kPerChild; ++i) {
      EXPECT_GE(image.Find(UniqueRecord(c, i)), 0) << "child " << c << " record " << i;
    }
  }
  RemoveHistoryFiles(path);
}

TEST(CrashTest, ConcurrentAppendersInterleaveWithoutCorruption) {
  // Two processes appending journal records under the file lock: the journal
  // must replay every record from both.
  const std::string path = TempPath("append2");
  constexpr int kPerChild = 40;

  pid_t children[2] = {-1, -1};
  for (std::uint64_t c = 0; c < 2; ++c) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      for (std::uint64_t i = 0; i < kPerChild; ++i) {
        if (!AppendJournalRecord(path, UniqueRecord(c + 1, i), false)) {
          _exit(10);
        }
      }
      _exit(0);
    }
    children[c] = pid;
  }
  for (pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);
  }

  HistoryImage image;
  const LoadResult result = LoadHistoryFile(path, &image);
  ASSERT_EQ(result.status, LoadStatus::kOk);
  EXPECT_EQ(result.records_dropped, 0u);
  EXPECT_EQ(image.records.size(), 2u * kPerChild);
  RemoveHistoryFiles(path);
}

}  // namespace
}  // namespace persist
}  // namespace dimmunix
