// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Tests for the durable-triple file layer: atomic snapshot saves, journal
// sidecar replay, lock-merge-save, validation, and the byte-identical
// save -> load -> save property over randomized images.

#include "src/persist/file.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <thread>

namespace dimmunix {
namespace persist {
namespace {

class FileTest : public ::testing::Test {
 protected:
  std::string TempPath() {
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("dimx_persist_" + std::to_string(::getpid()) + "_" + std::to_string(counter_++)))
            .string();
    RemoveHistoryFiles(path);
    cleanup_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& path : cleanup_) {
      RemoveHistoryFiles(path);
    }
  }

  int counter_ = 0;
  std::vector<std::string> cleanup_;
};

// Tiny deterministic PRNG (xorshift) — test must not depend on seed quirks.
struct Rng {
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  std::uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

HistoryImage RandomImage(Rng* rng, std::size_t records) {
  HistoryImage image;
  for (std::size_t r = 0; r < records; ++r) {
    SignatureRecord rec;
    rec.kind = rng->Next() % 2;
    rec.disabled = rng->Next() % 4 == 0;
    rec.match_depth = 1 + static_cast<std::int32_t>(rng->Next() % 10);
    rec.avoidance_count = rng->Next() % 1000;
    rec.abort_count = rng->Next() % 100;
    rec.fp_count = rng->Next() % 100;
    const std::size_t stacks = 1 + rng->Next() % 4;
    for (std::size_t s = 0; s < stacks; ++s) {
      std::vector<Frame> frames;
      const std::size_t depth = 1 + rng->Next() % 6;
      for (std::size_t f = 0; f < depth; ++f) {
        frames.push_back(rng->Next() | 1);  // never kInvalidFrame
      }
      rec.stacks.push_back(std::move(frames));
    }
    rec.Canonicalize();
    image.records.push_back(std::move(rec));
  }
  return image;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

TEST_F(FileTest, SaveLoadSaveIsByteIdentical) {
  // The round-trip property over 20 randomized images.
  Rng rng;
  for (int round = 0; round < 20; ++round) {
    const std::string path = TempPath();
    const HistoryImage image = RandomImage(&rng, 1 + rng.Next() % 8);
    ASSERT_TRUE(SaveHistoryFile(path, image));
    const std::string first = ReadBytes(path);

    HistoryImage loaded;
    const LoadResult result = LoadHistoryFile(path, &loaded);
    ASSERT_EQ(result.status, LoadStatus::kOk);
    ASSERT_EQ(result.records_dropped, 0u);

    ASSERT_TRUE(SaveHistoryFile(path, loaded));
    EXPECT_EQ(ReadBytes(path), first) << "round " << round;
  }
}

TEST_F(FileTest, MissingFileIsNotFound) {
  HistoryImage image;
  const LoadResult result = LoadHistoryFile("/nonexistent/dir/x.hist", &image);
  EXPECT_EQ(result.status, LoadStatus::kNotFound);
  EXPECT_TRUE(image.records.empty());
}

TEST_F(FileTest, JournalSidecarIsReplayedOverSnapshot) {
  const std::string path = TempPath();
  Rng rng;
  HistoryImage snapshot = RandomImage(&rng, 2);
  ASSERT_TRUE(SaveHistoryFile(path, snapshot));

  // A third signature arrives only via the journal.
  const HistoryImage extra = RandomImage(&rng, 1);
  ASSERT_TRUE(AppendJournalRecord(path, extra.records[0], /*fsync_after=*/false));

  HistoryImage loaded;
  const LoadResult result = LoadHistoryFile(path, &loaded);
  EXPECT_EQ(result.status, LoadStatus::kOk);
  EXPECT_EQ(result.journal_records, 1u);
  EXPECT_EQ(loaded.records.size(), 3u);
  EXPECT_GE(loaded.Find(extra.records[0]), 0);
}

TEST_F(FileTest, SaveRemovesStaleJournal) {
  const std::string path = TempPath();
  Rng rng;
  const HistoryImage image = RandomImage(&rng, 1);
  ASSERT_TRUE(AppendJournalRecord(path, image.records[0], false));
  ASSERT_TRUE(std::filesystem::exists(JournalPathFor(path)));
  ASSERT_TRUE(SaveHistoryFile(path, image));
  EXPECT_FALSE(std::filesystem::exists(JournalPathFor(path)))
      << "a snapshot must supersede (and remove) the journal";
}

TEST_F(FileTest, JournalAloneIsLoadable) {
  // A process can die after its first append but before any compaction:
  // journal with no snapshot. Load must accept it.
  const std::string path = TempPath();
  Rng rng;
  const HistoryImage image = RandomImage(&rng, 1);
  ASSERT_TRUE(AppendJournalRecord(path, image.records[0], false));
  HistoryImage loaded;
  const LoadResult result = LoadHistoryFile(path, &loaded);
  EXPECT_EQ(result.status, LoadStatus::kOk);
  EXPECT_EQ(loaded.records.size(), 1u);
}

TEST_F(FileTest, MergeIntoFileIsLossless) {
  const std::string path = TempPath();
  Rng rng;
  const HistoryImage a = RandomImage(&rng, 3);
  const HistoryImage b = RandomImage(&rng, 3);
  MergeStats stats;
  ASSERT_TRUE(MergeIntoFile(path, a, &stats));
  EXPECT_EQ(stats.added, 3u);
  ASSERT_TRUE(MergeIntoFile(path, b, &stats));
  EXPECT_EQ(stats.added, 3u);

  HistoryImage loaded;
  ASSERT_EQ(LoadHistoryFile(path, &loaded).status, LoadStatus::kOk);
  EXPECT_EQ(loaded.records.size(), 6u);
  for (const SignatureRecord& rec : a.records) {
    EXPECT_GE(loaded.Find(rec), 0);
  }
  for (const SignatureRecord& rec : b.records) {
    EXPECT_GE(loaded.Find(rec), 0);
  }
}

TEST_F(FileTest, ValidateRejectsBitFlippedFile) {
  const std::string path = TempPath();
  Rng rng;
  ASSERT_TRUE(SaveHistoryFile(path, RandomImage(&rng, 4)));
  EXPECT_EQ(ValidateHistoryFile(path).status, LoadStatus::kOk);

  std::string bytes = ReadBytes(path);
  bytes[bytes.size() - 5] ^= 0x10;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  EXPECT_EQ(ValidateHistoryFile(path).status, LoadStatus::kCorrupt);
}

TEST_F(FileTest, ValidateRejectsTruncatedFile) {
  const std::string path = TempPath();
  Rng rng;
  ASSERT_TRUE(SaveHistoryFile(path, RandomImage(&rng, 4)));
  std::string bytes = ReadBytes(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, bytes.size() - 9);
  }
  EXPECT_EQ(ValidateHistoryFile(path).status, LoadStatus::kCorrupt);
}

TEST_F(FileTest, FileLocksExcludeEachOtherWithinOneProcess) {
  // Two Runtimes sharing one history path in a single process must truly
  // serialize their load-merge-save sequences; OFD locks (unlike classic
  // fcntl record locks) conflict between fds of the same process.
  const std::string path = TempPath();
  FileLock first(LockPathFor(path));
  ASSERT_TRUE(first.Acquire());

  std::atomic<bool> second_acquired{false};
  std::thread contender([&] {
    FileLock second(LockPathFor(path));
    ASSERT_TRUE(second.Acquire());
    second_acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_acquired.load()) << "second FileLock acquired while the first was held";
  first.Release();
  contender.join();
  EXPECT_TRUE(second_acquired.load());
}

TEST_F(FileTest, LegacyV1TextAutoDetects) {
  const std::string path = TempPath();
  {
    std::ofstream out(path);
    out << "# dimmunix history v1\n"
        << "sig kind=deadlock depth=2 disabled=0 avoided=4 aborts=0\n"
        << "stack ff aa\n"
        << "stack 1b\n"
        << "end\n";
  }
  HistoryImage loaded;
  const LoadResult result = LoadHistoryFile(path, &loaded);
  EXPECT_EQ(result.status, LoadStatus::kOk);
  EXPECT_EQ(result.format_version, 1);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records[0].avoidance_count, 4u);
}

}  // namespace
}  // namespace persist
}  // namespace dimmunix
