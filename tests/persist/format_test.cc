// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Unit tests for the pure encoding layer: CRC-32, snapshot v2
// encode/decode, journal records, legacy v1 text, and the corruption
// taxonomy (bit flips are dropped per record, torn tails end a replay,
// header damage is fatal).

#include "src/persist/format.h"

#include <gtest/gtest.h>

namespace dimmunix {
namespace persist {
namespace {

SignatureRecord MakeRecord(std::uint64_t seed, std::size_t stacks = 2,
                           std::size_t frames = 3) {
  SignatureRecord rec;
  rec.kind = seed % 2 == 0 ? 0 : 1;
  rec.disabled = (seed % 3) == 0;
  rec.match_depth = 1 + static_cast<std::int32_t>(seed % 8);
  rec.avoidance_count = seed * 17;
  rec.abort_count = seed % 5;
  rec.fp_count = seed % 7;
  for (std::size_t s = 0; s < stacks; ++s) {
    std::vector<Frame> frame_vec;
    for (std::size_t f = 0; f < frames; ++f) {
      frame_vec.push_back(seed * 1000 + s * 100 + f + 1);
    }
    rec.stacks.push_back(std::move(frame_vec));
  }
  rec.Canonicalize();
  return rec;
}

bool SameRecord(const SignatureRecord& a, const SignatureRecord& b) {
  return a.kind == b.kind && a.disabled == b.disabled && a.match_depth == b.match_depth &&
         a.avoidance_count == b.avoidance_count && a.abort_count == b.abort_count &&
         a.fp_count == b.fp_count && a.stacks == b.stacks;
}

TEST(Crc32Test, KnownVector) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(SnapshotV2Test, EncodeDecodeRoundTrip) {
  HistoryImage image;
  for (std::uint64_t i = 0; i < 5; ++i) {
    image.records.push_back(MakeRecord(i));
  }
  const std::string bytes = EncodeSnapshotV2(image);
  ASSERT_EQ(bytes.substr(0, 4), kSnapshotMagic);

  HistoryImage decoded;
  LoadResult result;
  ASSERT_TRUE(DecodeSnapshotV2(bytes, &decoded, &result));
  EXPECT_EQ(result.records_loaded, 5u);
  EXPECT_EQ(result.records_dropped, 0u);
  ASSERT_EQ(decoded.records.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(SameRecord(decoded.records[i], image.records[i])) << "record " << i;
  }
}

TEST(SnapshotV2Test, EncodingIsDeterministic) {
  HistoryImage image;
  for (std::uint64_t i = 0; i < 4; ++i) {
    image.records.push_back(MakeRecord(i, /*stacks=*/3));
  }
  // Shared stacks across records must intern to one copy.
  image.records[3].stacks = image.records[0].stacks;
  const std::string a = EncodeSnapshotV2(image);
  const std::string b = EncodeSnapshotV2(image);
  EXPECT_EQ(a, b);

  // decode -> re-encode is byte-identical (the save->load->save property).
  HistoryImage decoded;
  LoadResult result;
  ASSERT_TRUE(DecodeSnapshotV2(a, &decoded, &result));
  EXPECT_EQ(EncodeSnapshotV2(decoded), a);
}

TEST(SnapshotV2Test, BitFlipInRecordDropsOnlyThatRecord) {
  HistoryImage image;
  for (std::uint64_t i = 0; i < 4; ++i) {
    image.records.push_back(MakeRecord(i));
  }
  std::string bytes = EncodeSnapshotV2(image);
  // Flip a bit in the *last* record's payload (well past header + stacks).
  bytes[bytes.size() - 3] ^= 0x40;
  HistoryImage decoded;
  LoadResult result;
  ASSERT_TRUE(DecodeSnapshotV2(bytes, &decoded, &result));
  EXPECT_EQ(result.records_dropped, 1u);
  EXPECT_EQ(result.records_loaded, 3u);
}

TEST(SnapshotV2Test, HeaderDamageIsFatal) {
  HistoryImage image;
  image.records.push_back(MakeRecord(1));
  std::string bytes = EncodeSnapshotV2(image);
  bytes[9] ^= 0x01;  // inside the counts, protected by the header CRC
  HistoryImage decoded;
  LoadResult result;
  EXPECT_FALSE(DecodeSnapshotV2(bytes, &decoded, &result));
  EXPECT_EQ(result.status, LoadStatus::kCorrupt);
  EXPECT_TRUE(decoded.records.empty());
}

TEST(SnapshotV2Test, TruncationDropsTailRecords) {
  HistoryImage image;
  for (std::uint64_t i = 0; i < 6; ++i) {
    image.records.push_back(MakeRecord(i));
  }
  const std::string bytes = EncodeSnapshotV2(image);
  const std::string cut = bytes.substr(0, bytes.size() - 10);
  HistoryImage decoded;
  LoadResult result;
  ASSERT_TRUE(DecodeSnapshotV2(cut, &decoded, &result));
  EXPECT_GT(result.records_dropped, 0u);
  EXPECT_EQ(result.records_loaded + result.records_dropped, 6u);
  EXPECT_EQ(decoded.records.size(), result.records_loaded);
}

TEST(JournalTest, AppendedRecordsReplayInOrder) {
  std::string bytes = EncodeJournalHeader();
  for (std::uint64_t i = 0; i < 3; ++i) {
    bytes += EncodeJournalRecord(MakeRecord(i));
  }
  HistoryImage image;
  LoadResult result;
  ReplayJournal(bytes, &image, &result);
  EXPECT_EQ(result.journal_records, 3u);
  EXPECT_EQ(result.records_dropped, 0u);
  ASSERT_EQ(image.records.size(), 3u);
}

TEST(JournalTest, ReplayDeduplicatesAndUpgradesCounters) {
  SignatureRecord rec = MakeRecord(7);
  rec.avoidance_count = 1;
  std::string bytes = EncodeJournalHeader();
  bytes += EncodeJournalRecord(rec);
  rec.avoidance_count = 9;  // later snapshot of the same signature
  rec.disabled = true;
  bytes += EncodeJournalRecord(rec);
  HistoryImage image;
  LoadResult result;
  ReplayJournal(bytes, &image, &result);
  ASSERT_EQ(image.records.size(), 1u);
  EXPECT_EQ(image.records[0].avoidance_count, 9u);
  EXPECT_TRUE(image.records[0].disabled);  // journal order wins (newer)
}

TEST(JournalTest, TornTailIsDroppedEverythingBeforeSurvives) {
  std::string bytes = EncodeJournalHeader();
  bytes += EncodeJournalRecord(MakeRecord(1));
  bytes += EncodeJournalRecord(MakeRecord(2));
  const std::string full_two = bytes;
  bytes += EncodeJournalRecord(MakeRecord(3));
  // Tear the third record anywhere: every prefix length must still load
  // exactly the first two records (the SIGKILL-mid-append contract).
  for (std::size_t cut = full_two.size() + 1; cut < bytes.size(); cut += 7) {
    HistoryImage image;
    LoadResult result;
    ReplayJournal(std::string_view(bytes).substr(0, cut), &image, &result);
    EXPECT_EQ(image.records.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(result.records_dropped, 1u) << "cut at " << cut;
  }
}

TEST(JournalTest, StaleJournalCannotRollBackKnobs) {
  // The rename-then-unlink crash window: a journal created against an older
  // snapshot (binding mismatch) must not override the newer snapshot's
  // operator knobs, but its signatures/counters still merge.
  SignatureRecord known = MakeRecord(5);
  known.disabled = true;  // the operator's decision, already in the snapshot
  known.avoidance_count = 3;
  HistoryImage image;
  image.records.push_back(known);

  SignatureRecord stale = known;
  stale.disabled = false;  // pre-disable journal record
  stale.avoidance_count = 8;
  std::string bytes = EncodeJournalHeader(/*snapshot_crc=*/0xDEADBEEF);
  bytes += EncodeJournalRecord(stale);
  bytes += EncodeJournalRecord(MakeRecord(6));  // a genuinely new signature

  LoadResult result;
  ReplayJournal(bytes, &image, &result, /*current_snapshot_crc=*/0x12345678);
  ASSERT_EQ(image.records.size(), 2u);
  EXPECT_TRUE(image.records[0].disabled) << "stale journal re-enabled a disabled signature";
  EXPECT_EQ(image.records[0].avoidance_count, 8u);  // counters still ratchet

  // Matching binding: the journal is fresh and its knobs win as usual.
  HistoryImage image2;
  image2.records.push_back(known);
  LoadResult result2;
  ReplayJournal(bytes, &image2, &result2, /*current_snapshot_crc=*/0xDEADBEEF);
  EXPECT_FALSE(image2.records[0].disabled);
}

TEST(TextV1Test, ParsesLegacyFormat) {
  const std::string text =
      "# dimmunix history v1\n"
      "garbage line\n"
      "sig kind=starvation depth=3 disabled=1 avoided=12 aborts=2\n"
      "stack ff aa\n"
      "stack 1b\n"
      "end\n";
  HistoryImage image;
  LoadResult result;
  ParseTextV1(text, &image, &result);
  EXPECT_EQ(result.format_version, 1);
  ASSERT_EQ(image.records.size(), 1u);
  const SignatureRecord& rec = image.records[0];
  EXPECT_EQ(rec.kind, 1);
  EXPECT_EQ(rec.match_depth, 3);
  EXPECT_TRUE(rec.disabled);
  EXPECT_EQ(rec.avoidance_count, 12u);
  EXPECT_EQ(rec.abort_count, 2u);
  ASSERT_EQ(rec.stacks.size(), 2u);
  // Canonical order: {0x1b} sorts before {0xff, 0xaa}.
  EXPECT_EQ(rec.stacks[0], (std::vector<Frame>{0x1b}));
  EXPECT_EQ(rec.stacks[1], (std::vector<Frame>{0xff, 0xaa}));
}

TEST(MergeTest, PolicyControlsOperatorKnobs) {
  HistoryImage mine;
  mine.records.push_back(MakeRecord(4));
  mine.records[0].disabled = false;
  mine.records[0].avoidance_count = 10;

  HistoryImage theirs;
  theirs.records.push_back(mine.records[0]);
  theirs.records[0].disabled = true;
  theirs.records[0].avoidance_count = 3;

  HistoryImage a = mine;
  MergeInto(&a, theirs, MergePolicy::kPreferExisting);
  EXPECT_FALSE(a.records[0].disabled);           // my knob survives
  EXPECT_EQ(a.records[0].avoidance_count, 10u);  // max()

  HistoryImage b = mine;
  MergeInto(&b, theirs, MergePolicy::kPreferIncoming);
  EXPECT_TRUE(b.records[0].disabled);            // file wins (§8 reload)
  EXPECT_EQ(b.records[0].avoidance_count, 10u);  // counters still never shrink
}

}  // namespace
}  // namespace persist
}  // namespace dimmunix
