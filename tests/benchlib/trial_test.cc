// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/benchlib/trial.h"

#include <gtest/gtest.h>

#include <thread>

namespace dimmunix {
namespace {

TEST(TrialTest, CompletingChildReportsExitCode) {
  TrialResult result = RunTrial([] { return 42; }, std::chrono::seconds(2));
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.exit_code, 42);
}

TEST(TrialTest, HangingChildIsKilledAndReportedAsDeadlock) {
  const MonoTime start = Now();
  TrialResult result = RunTrial(
      [] {
        for (;;) {
          std::this_thread::sleep_for(std::chrono::hours(1));
        }
        return 0;
      },
      std::chrono::milliseconds(200));
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.deadlocked);
  EXPECT_GE(Now() - start, std::chrono::milliseconds(190));
}

TEST(TrialTest, ChildSideEffectsAreIsolated) {
  int parent_value = 1;
  TrialResult result = RunTrial(
      [&] {
        parent_value = 999;  // only mutates the child's copy
        return 0;
      },
      std::chrono::seconds(2));
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(parent_value, 1);
}

TEST(TrialTest, ElapsedIsMeasured) {
  TrialResult result = RunTrial(
      [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return 0;
      },
      std::chrono::seconds(2));
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.elapsed, std::chrono::milliseconds(45));
}

}  // namespace
}  // namespace dimmunix
