// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/benchlib/workload.h"

#include <gtest/gtest.h>

#include "src/benchlib/synth_history.h"

namespace dimmunix {
namespace {

WorkloadParams SmallParams() {
  WorkloadParams params;
  params.threads = 4;
  params.locks = 4;
  params.delta_in_us = 0;
  params.delta_out_us = 50;
  params.duration = std::chrono::milliseconds(100);
  return params;
}

TEST(WorkloadTest, BaselineProducesThroughput) {
  WorkloadParams params = SmallParams();
  const WorkloadResult result = RunWorkload(params);
  EXPECT_GT(result.lock_ops, 0u);
  EXPECT_GT(result.ops_per_sec, 0.0);
  EXPECT_EQ(result.yields, 0u);
}

TEST(WorkloadTest, DimmunixModeRunsWithEmptyHistory) {
  Config config;
  config.start_monitor = false;
  Runtime rt(config);
  WorkloadParams params = SmallParams();
  params.mode = WorkloadMode::kDimmunix;
  params.runtime = &rt;
  const WorkloadResult result = RunWorkload(params);
  EXPECT_GT(result.lock_ops, 0u);
  EXPECT_EQ(result.yields, 0u);  // nothing in history, nothing to avoid
  EXPECT_GE(rt.engine().stats().acquisitions.load(), result.lock_ops);
}

TEST(WorkloadTest, DimmunixModeYieldsAgainstSyntheticHistory) {
  Config config;
  config.start_monitor = false;
  config.default_match_depth = 1;
  config.yield_timeout = std::chrono::milliseconds(2);
  config.auto_disable_aborts = 0;
  Runtime rt(config);
  SynthHistoryParams sigs;
  sigs.signatures = 64;
  sigs.match_depth = 1;  // shallow matching: many false positives by design
  sigs.branching = 2;    // few distinct sites: depth-1 matches are frequent
  GenerateSyntheticHistory(&rt.history(), &rt.stacks(), sigs);
  rt.engine().NotifyHistoryChanged();

  WorkloadParams params = SmallParams();
  params.threads = 8;
  params.branching = 2;
  params.delta_in_us = 200;  // long holds maximize concurrent tuple overlap
  params.sleep_inside = true;
  params.sleep_outside = true;
  params.mode = WorkloadMode::kDimmunix;
  params.runtime = &rt;
  params.duration = std::chrono::milliseconds(400);
  const WorkloadResult result = RunWorkload(params);
  EXPECT_GT(result.lock_ops, 0u);
  EXPECT_GT(result.yields, 0u) << "depth-1 matching against 64 signatures must trigger";
}

TEST(WorkloadTest, GateLockModeSerializes) {
  StackTable table(10);
  History history(&table);
  SynthHistoryParams sigs;
  sigs.signatures = 16;
  GenerateSyntheticHistory(&history, &table, sigs);
  GateLockAvoider gates(history, table);
  EXPECT_GT(gates.gate_count(), 0u);

  WorkloadParams params = SmallParams();
  params.mode = WorkloadMode::kGateLocks;
  params.gates = &gates;
  const WorkloadResult result = RunWorkload(params);
  EXPECT_GT(result.lock_ops, 0u);
  EXPECT_GT(gates.total_gated_acquisitions(), 0u);
}

TEST(WorkloadTest, FrameNamingSchemeIsStable) {
  EXPECT_EQ(TowerFrameName(3, 1), "bench::tower_L3_F1");
  EXPECT_EQ(LockSiteFrameName(0), "bench::lock_site_F0");
}

}  // namespace
}  // namespace dimmunix
