// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/benchlib/synth_history.h"

#include <gtest/gtest.h>

namespace dimmunix {
namespace {

TEST(SynthHistoryTest, GeneratesRequestedCount) {
  StackTable table(10);
  History history(&table);
  SynthHistoryParams params;
  params.signatures = 64;
  params.signature_size = 2;
  const int added = GenerateSyntheticHistory(&history, &table, params);
  EXPECT_EQ(added, 64);
  EXPECT_EQ(history.size(), 64u);
}

TEST(SynthHistoryTest, SignatureShapeMatchesParams) {
  StackTable table(10);
  History history(&table);
  SynthHistoryParams params;
  params.signatures = 4;
  params.signature_size = 3;
  params.stack_depth = 10;
  params.match_depth = 6;
  GenerateSyntheticHistory(&history, &table, params);
  history.ForEach([&](int, const Signature& sig) {
    EXPECT_EQ(sig.stacks.size(), 3u);
    EXPECT_EQ(sig.match_depth, 6);
    for (StackId id : sig.stacks) {
      EXPECT_EQ(table.Get(id).frames.size(), 10u);
    }
  });
}

TEST(SynthHistoryTest, DeterministicForSameSeed) {
  StackTable table_a(10);
  History history_a(&table_a);
  StackTable table_b(10);
  History history_b(&table_b);
  SynthHistoryParams params;
  params.signatures = 8;
  params.seed = 123;
  GenerateSyntheticHistory(&history_a, &table_a, params);
  GenerateSyntheticHistory(&history_b, &table_b, params);
  ASSERT_EQ(history_a.size(), history_b.size());
  // Frame content identical (frames are name-hash based).
  for (std::size_t i = 0; i < history_a.size(); ++i) {
    const Signature sa = history_a.Get(static_cast<int>(i));
    const Signature sb = history_b.Get(static_cast<int>(i));
    ASSERT_EQ(sa.stacks.size(), sb.stacks.size());
    for (std::size_t j = 0; j < sa.stacks.size(); ++j) {
      EXPECT_EQ(table_a.Get(sa.stacks[j]).frames, table_b.Get(sb.stacks[j]).frames);
    }
  }
}

TEST(SynthHistoryTest, StacksUseWorkloadNamingScheme) {
  StackTable table(10);
  History history(&table);
  SynthHistoryParams params;
  params.signatures = 1;
  GenerateSyntheticHistory(&history, &table, params);
  const Signature sig = history.Get(0);
  const std::string description = table.Describe(sig.stacks[0]);
  EXPECT_NE(description.find("bench::lock_site"), std::string::npos) << description;
  EXPECT_NE(description.find("bench::tower_L1"), std::string::npos) << description;
}

}  // namespace
}  // namespace dimmunix
