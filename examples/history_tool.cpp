// Copyright (c) dimmunix-cpp authors. MIT license.
//
// history_tool — inspect and edit Dimmunix history files (§8: vendors can
// ship signatures as "patches"; users can disable signatures that cause
// functionality loss).
//
//   $ ./history_tool show app.dimmunix
//   $ ./history_tool disable app.dimmunix 2
//   $ ./history_tool enable app.dimmunix 2
//   $ ./history_tool merge dst.dimmunix src.dimmunix   # vendor-shipped sigs

#include <cstdio>
#include <cstring>

#include "src/signature/history.h"
#include "src/stack/stack_table.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: history_tool show <file>\n"
               "       history_tool disable <file> <index>\n"
               "       history_tool enable <file> <index>\n"
               "       history_tool merge <dst> <src>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  dimmunix::StackTable stacks(16);
  dimmunix::History history(&stacks);
  const char* command = argv[1];
  const char* path = argv[2];
  if (!history.Load(path)) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 1;
  }

  if (std::strcmp(command, "show") == 0) {
    std::printf("%zu signature(s) in %s\n", history.size(), path);
    history.ForEach([&](int index, const dimmunix::Signature& sig) {
      std::printf("[%d] %s depth=%d avoided=%llu aborts=%llu%s\n", index,
                  sig.kind == dimmunix::SignatureKind::kStarvation ? "starvation" : "deadlock",
                  sig.match_depth, static_cast<unsigned long long>(sig.avoidance_count),
                  static_cast<unsigned long long>(sig.abort_count),
                  sig.disabled ? " DISABLED" : "");
      for (dimmunix::StackId id : sig.stacks) {
        std::printf("      %s\n", stacks.Describe(id).c_str());
      }
    });
    return 0;
  }
  if (std::strcmp(command, "disable") == 0 || std::strcmp(command, "enable") == 0) {
    if (argc < 4) {
      return Usage();
    }
    const int index = std::atoi(argv[3]);
    if (index < 0 || static_cast<std::size_t>(index) >= history.size()) {
      std::fprintf(stderr, "no signature %d\n", index);
      return 1;
    }
    history.SetDisabled(index, std::strcmp(command, "disable") == 0);
    return history.Save(path) ? 0 : 1;
  }
  if (std::strcmp(command, "merge") == 0) {
    if (argc < 4) {
      return Usage();
    }
    const std::size_t before = history.size();
    if (!history.Load(argv[3])) {
      std::fprintf(stderr, "cannot read %s\n", argv[3]);
      return 1;
    }
    std::printf("merged %zu new signature(s)\n", history.size() - before);
    return history.Save(path) ? 0 : 1;
  }
  return Usage();
}
