// Copyright (c) dimmunix-cpp authors. MIT license.
//
// history_tool — inspect, validate, and edit Dimmunix history files (§8:
// vendors can ship signatures as "patches"; users can disable signatures
// that cause functionality loss).
//
//   $ ./history_tool show app.dimmunix
//   $ ./history_tool validate app.dimmunix       # strict integrity check
//   $ ./history_tool upgrade legacy.dimmunix     # v1 text -> v2 binary
//   $ ./history_tool disable app.dimmunix 2
//   $ ./history_tool enable app.dimmunix 2
//   $ ./history_tool merge dst.dimmunix src.dimmunix   # vendor-shipped sigs
//   $ ./history_tool diff a.dimmunix b.dimmunix        # fleet convergence check
//
// Exit codes (distinct on purpose, so scripts can react):
//   0  success (warnings about salvaged records go to stderr)
//   1  file missing or unreadable / write failure
//   2  usage error
//   3  corrupt or truncated file (validate/upgrade refuse it)
//   4  signature index out of range
//
// `diff` follows the diff(1) convention instead: 0 = identical signature
// sets (same hashes, same knob epochs/flags/depths), 1 = the files differ,
// 2 = usage, 3 = either input missing/unreadable/corrupt. CI's fleet-smoke
// lane polls it to decide when two daemons have converged.

#include <cstdio>
#include <cstring>

#include "src/persist/file.h"
#include "src/signature/history.h"
#include "src/stack/stack_table.h"

namespace {

enum ExitCode {
  kOk = 0,
  kIoError = 1,
  kUsage = 2,
  kCorrupt = 3,
  kBadIndex = 4,
};

int Usage() {
  std::fprintf(stderr,
               "usage: history_tool show <file>\n"
               "       history_tool validate <file>\n"
               "       history_tool upgrade <file>\n"
               "       history_tool disable <file> <index>\n"
               "       history_tool enable <file> <index>\n"
               "       history_tool merge <dst> <src>\n"
               "       history_tool diff <a> <b>\n");
  return kUsage;
}

// diff: loads strictly (any damage is exit 3 — comparing a salvaged view
// against a healthy file would report phantom differences).
int LoadImageStrict(const char* path, dimmunix::persist::HistoryImage* image) {
  const dimmunix::persist::LoadResult result = dimmunix::persist::LoadHistoryFile(path, image);
  if (result.status != dimmunix::persist::LoadStatus::kOk || result.records_dropped > 0) {
    std::fprintf(stderr, "%s: %s\n", path,
                 result.message.empty() ? "missing or damaged" : result.message.c_str());
    return kCorrupt;
  }
  return kOk;
}

// Loads `path` into `history`, distinguishing missing/unreadable/salvaged.
// Returns kOk on success (warnings printed), an ExitCode otherwise.
int LoadInto(const char* path, dimmunix::History* history,
             dimmunix::persist::LoadResult* out_result) {
  dimmunix::persist::HistoryImage image;
  const dimmunix::persist::LoadResult result = dimmunix::persist::LoadHistoryFile(path, &image);
  if (out_result != nullptr) {
    *out_result = result;
  }
  if (result.status == dimmunix::persist::LoadStatus::kNotFound) {
    std::fprintf(stderr, "%s: no such history file\n", path);
    return kIoError;
  }
  if (result.status == dimmunix::persist::LoadStatus::kIoError) {
    std::fprintf(stderr, "%s: cannot read: %s\n", path, result.message.c_str());
    return kIoError;
  }
  if (result.status == dimmunix::persist::LoadStatus::kCorrupt) {
    std::fprintf(stderr, "%s: corrupt: %s\n", path, result.message.c_str());
    return kCorrupt;
  }
  if (result.records_dropped > 0) {
    std::fprintf(stderr, "warning: %s: %zu record(s) dropped (%s)\n", path,
                 result.records_dropped, result.message.c_str());
  }
  history->MergeImage(image, dimmunix::persist::MergePolicy::kPreferIncoming);
  return kOk;
}

int SaveFrom(const dimmunix::History& history, const char* path) {
  if (!history.Save(path)) {
    std::fprintf(stderr, "%s: cannot write\n", path);
    return kIoError;
  }
  return kOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  const char* command = argv[1];
  const char* path = argv[2];
  dimmunix::StackTable stacks(16);
  dimmunix::History history(&stacks);

  if (std::strcmp(command, "validate") == 0) {
    const dimmunix::persist::LoadResult result = dimmunix::persist::ValidateHistoryFile(path);
    switch (result.status) {
      case dimmunix::persist::LoadStatus::kNotFound:
        std::fprintf(stderr, "%s: no such history file\n", path);
        return kIoError;
      case dimmunix::persist::LoadStatus::kIoError:
        std::fprintf(stderr, "%s: cannot read: %s\n", path, result.message.c_str());
        return kIoError;
      case dimmunix::persist::LoadStatus::kCorrupt:
        std::fprintf(stderr, "%s: INVALID: %s (%zu record(s) lost)\n", path,
                     result.message.c_str(), result.records_dropped);
        return kCorrupt;
      case dimmunix::persist::LoadStatus::kOk:
        break;
    }
    std::printf("%s: valid (format v%d, %zu signature(s), %zu from journal)\n", path,
                result.format_version, result.records_loaded, result.journal_records);
    return kOk;
  }

  if (std::strcmp(command, "upgrade") == 0) {
    dimmunix::persist::LoadResult result;
    const int rc = LoadInto(path, &history, &result);
    if (rc != kOk) {
      return rc;
    }
    if (result.records_dropped > 0) {
      // Refuse to bless data loss: a clean v2 written from a damaged source
      // would silently make the loss permanent.
      std::fprintf(stderr, "%s: refusing to upgrade a damaged file (run validate)\n", path);
      return kCorrupt;
    }
    const int save_rc = SaveFrom(history, path);
    if (save_rc != kOk) {
      return save_rc;
    }
    std::printf("%s: upgraded to format v2 (%zu signature(s))\n", path, history.size());
    return kOk;
  }

  if (std::strcmp(command, "show") == 0) {
    dimmunix::persist::LoadResult result;
    const int rc = LoadInto(path, &history, &result);
    if (rc == kCorrupt) {
      return rc;  // nothing salvageable to show
    }
    if (rc != kOk) {
      return rc;
    }
    std::printf("%zu signature(s) in %s (format v%d)\n", history.size(), path,
                result.format_version);
    history.ForEach([&](int index, const dimmunix::Signature& sig) {
      std::printf("[%d] %s depth=%d avoided=%llu aborts=%llu fp=%llu%s\n", index,
                  sig.kind == dimmunix::SignatureKind::kStarvation ? "starvation" : "deadlock",
                  sig.match_depth, static_cast<unsigned long long>(sig.avoidance_count),
                  static_cast<unsigned long long>(sig.abort_count),
                  static_cast<unsigned long long>(sig.fp_count),
                  sig.disabled ? " DISABLED" : "");
      for (dimmunix::StackId id : sig.stacks) {
        std::printf("      %s\n", stacks.Describe(id).c_str());
      }
    });
    return kOk;
  }

  if (std::strcmp(command, "disable") == 0 || std::strcmp(command, "enable") == 0) {
    if (argc < 4) {
      return Usage();
    }
    dimmunix::persist::LoadResult result;
    const int rc = LoadInto(path, &history, &result);
    if (rc != kOk) {
      return rc;
    }
    if (result.records_dropped > 0) {
      // Same rule as merge/upgrade: rewriting a damaged file would make the
      // salvage loss permanent.
      std::fprintf(stderr, "%s: refusing to rewrite a damaged file (run validate)\n", path);
      return kCorrupt;
    }
    const int index = std::atoi(argv[3]);
    if (index < 0 || static_cast<std::size_t>(index) >= history.size()) {
      std::fprintf(stderr, "no signature %d\n", index);
      return kBadIndex;
    }
    history.SetDisabled(index, std::strcmp(command, "disable") == 0);
    return SaveFrom(history, path);
  }

  if (std::strcmp(command, "diff") == 0) {
    if (argc < 4) {
      return Usage();
    }
    dimmunix::persist::HistoryImage a;
    dimmunix::persist::HistoryImage b;
    if (LoadImageStrict(path, &a) != kOk || LoadImageStrict(argv[3], &b) != kOk) {
      return kCorrupt;
    }
    const dimmunix::persist::ImageDiff diff = dimmunix::persist::DiffImages(a, b);
    for (const std::uint64_t hash : diff.only_in_a) {
      std::printf("only-in-a %016llx\n", static_cast<unsigned long long>(hash));
    }
    for (const std::uint64_t hash : diff.only_in_b) {
      std::printf("only-in-b %016llx\n", static_cast<unsigned long long>(hash));
    }
    for (const dimmunix::persist::ImageDiff::KnobDiff& knob : diff.knob_differs) {
      std::printf("knobs-differ %016llx epoch_a=%u epoch_b=%u\n",
                  static_cast<unsigned long long>(knob.hash), knob.epoch_a, knob.epoch_b);
    }
    if (diff.identical()) {
      std::printf("identical (%zu signature(s))\n", a.records.size());
      return kOk;
    }
    return 1;  // "files differ", diff(1) convention
  }

  if (std::strcmp(command, "merge") == 0) {
    if (argc < 4) {
      return Usage();
    }
    // The destination may not exist yet (merging a vendor patch into a fresh
    // deployment); the source must. A *damaged* destination is refused: the
    // merge rewrites it, which would make whatever was lost permanent.
    dimmunix::persist::HistoryImage dst_image;
    const dimmunix::persist::LoadResult dst_result =
        dimmunix::persist::LoadHistoryFile(path, &dst_image);
    if (dst_result.status == dimmunix::persist::LoadStatus::kIoError) {
      std::fprintf(stderr, "%s: cannot read: %s\n", path, dst_result.message.c_str());
      return kIoError;
    }
    if (dst_result.status == dimmunix::persist::LoadStatus::kCorrupt ||
        dst_result.records_dropped > 0) {
      std::fprintf(stderr, "%s: refusing to merge into a damaged file (run validate)\n",
                   path);
      return kCorrupt;
    }
    history.MergeImage(dst_image, dimmunix::persist::MergePolicy::kPreferIncoming);
    const std::size_t before = history.size();
    const int src_rc = LoadInto(argv[3], &history, nullptr);
    if (src_rc != kOk) {
      return src_rc;
    }
    std::printf("merged %zu new signature(s)\n", history.size() - before);
    return SaveFrom(history, path);
  }

  return Usage();
}
