// Copyright (c) dimmunix-cpp authors. MIT license.
//
// rwlock_victim — an ordinary pthreads program with a reader-writer
// deadlock (writer-vs-writer through a reader), built with NO Dimmunix
// linkage. Used to demonstrate the rwlock side of the LD_PRELOAD shim:
//
//   $ DIMMUNIX_HISTORY=/tmp/v.hist DIMMUNIX_TAU_MS=20
//     LD_PRELOAD=build/libdimmunix_preload.so ./rwlock_victim
//
// Each thread write-locks its own table and then read-locks the other; in
// opposite orders the shared requests deadlock against the exclusive holds.
// Run 1 deadlocks (kill it; the signature is already on disk). Run 2 under
// the same command completes.

#include <pthread.h>
#include <unistd.h>

#include <cstdio>

namespace {

pthread_rwlock_t g_table_a = PTHREAD_RWLOCK_INITIALIZER;
pthread_rwlock_t g_table_b = PTHREAD_RWLOCK_INITIALIZER;

void* UpdateAJoinB(void*) {
  pthread_rwlock_wrlock(&g_table_a);
  usleep(100 * 1000);
  pthread_rwlock_rdlock(&g_table_b);
  pthread_rwlock_unlock(&g_table_b);
  pthread_rwlock_unlock(&g_table_a);
  return nullptr;
}

void* UpdateBJoinA(void*) {
  pthread_rwlock_wrlock(&g_table_b);
  usleep(100 * 1000);
  pthread_rwlock_rdlock(&g_table_a);
  pthread_rwlock_unlock(&g_table_a);
  pthread_rwlock_unlock(&g_table_b);
  return nullptr;
}

}  // namespace

int main() {
  pthread_t t1;
  pthread_t t2;
  pthread_create(&t1, nullptr, UpdateAJoinB, nullptr);
  pthread_create(&t2, nullptr, UpdateBJoinA, nullptr);
  pthread_join(t1, nullptr);
  pthread_join(t2, nullptr);
  std::printf("completed without deadlock\n");
  return 0;
}
