// Copyright (c) dimmunix-cpp authors. MIT license.
//
// condvar_victim — regression vehicle for the shim's pthread_cond_wait
// interposition. A waiter thread blocks in pthread_cond_wait (which
// releases the mutex inside the call); the main thread signals it after a
// fixed window. The integration test runs this under LD_PRELOAD with a
// control socket and asserts — via `rag` — that NO thread is credited with
// the mutex while the waiter is parked: without the cond_wait wrapper the
// engine's owner map keeps the phantom hold for the whole wait.
//
// The mutex address is printed as the engine's LockId so the test can
// target its hold edges precisely.

#include <pthread.h>
#include <unistd.h>

#include <cstdio>

namespace {

pthread_mutex_t g_m = PTHREAD_MUTEX_INITIALIZER;
pthread_cond_t g_cv = PTHREAD_COND_INITIALIZER;
bool g_signaled = false;

void* Waiter(void*) {
  pthread_mutex_lock(&g_m);
  while (!g_signaled) {
    pthread_cond_wait(&g_cv, &g_m);  // releases g_m while parked
  }
  pthread_mutex_unlock(&g_m);
  return nullptr;
}

}  // namespace

int main() {
  std::printf("mutex_lock_id=%llu\n", static_cast<unsigned long long>(
                                          reinterpret_cast<unsigned long>(&g_m)));
  std::fflush(stdout);
  pthread_t waiter;
  pthread_create(&waiter, nullptr, Waiter, nullptr);
  // Window for the test to snapshot the RAG while the waiter is parked
  // inside pthread_cond_wait.
  usleep(700 * 1000);
  pthread_mutex_lock(&g_m);
  g_signaled = true;
  pthread_cond_signal(&g_cv);
  pthread_mutex_unlock(&g_m);
  pthread_join(waiter, nullptr);
  std::printf("completed without deadlock\n");
  return 0;
}
