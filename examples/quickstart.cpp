// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Quickstart: watch a program develop deadlock immunity.
//
// Incarnation 1 (a forked child): two threads lock A/B in opposite orders
// and deadlock. The monitor detects the cycle, saves its signature to the
// history file, and the "user" restarts the program (the parent kills the
// hung child — recovery is restart-based, §3).
//
// Incarnation 2 (this process): the same code runs with the signature in
// history; the dangerous interleaving is avoided by yielding one thread,
// and the program completes.
//
//   $ ./quickstart
//   incarnation 1: deadlocked (as expected); signature captured
//   incarnation 2: completed; yields=1  -> the program is now immune

#include <cstdio>
#include <filesystem>
#include <latch>
#include <thread>

#include "src/benchlib/trial.h"
#include "src/stack/annotation.h"
#include "src/sync/mutex.h"

namespace {

// The buggy code: classic AB-BA.
void TransferAthenB(dimmunix::Mutex& a, dimmunix::Mutex& b) {
  DIMMUNIX_FRAME();
  std::lock_guard<dimmunix::Mutex> ga(a);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::lock_guard<dimmunix::Mutex> gb(b);
}

void TransferBthenA(dimmunix::Mutex& a, dimmunix::Mutex& b) {
  DIMMUNIX_FRAME();
  std::lock_guard<dimmunix::Mutex> gb(b);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::lock_guard<dimmunix::Mutex> ga(a);
}

int RunScenario(const std::string& history_path) {
  dimmunix::Config config;
  config.history_path = history_path;
  config.monitor_period = std::chrono::milliseconds(20);
  dimmunix::Runtime runtime(config);
  dimmunix::Mutex a(runtime);
  dimmunix::Mutex b(runtime);
  std::latch start(2);
  std::thread t1([&] {
    start.arrive_and_wait();
    TransferAthenB(a, b);
  });
  std::thread t2([&] {
    start.arrive_and_wait();
    TransferBthenA(a, b);
  });
  t1.join();
  t2.join();
  return static_cast<int>(runtime.engine().stats().yields.load());
}

}  // namespace

int main() {
  const std::string history =
      (std::filesystem::temp_directory_path() / "quickstart.dimmunix").string();
  std::remove(history.c_str());

  // Incarnation 1, isolated in a child process because it will hang.
  dimmunix::TrialResult first = dimmunix::RunTrial(
      [&] { return RunScenario(history); }, std::chrono::seconds(2));
  if (first.deadlocked) {
    std::printf("incarnation 1: deadlocked (as expected); signature captured\n");
  } else {
    std::printf("incarnation 1: completed unexpectedly (lucky interleaving)\n");
  }

  // Incarnation 2: immune.
  const int yields = RunScenario(history);
  std::printf("incarnation 2: completed; yields=%d  -> the program is now immune\n", yields);
  std::remove(history.c_str());
  return 0;
}
