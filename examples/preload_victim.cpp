// Copyright (c) dimmunix-cpp authors. MIT license.
//
// preload_victim — an ordinary pthreads program with an AB-BA deadlock,
// built with NO Dimmunix linkage. Used to demonstrate the LD_PRELOAD shim:
//
//   $ DIMMUNIX_HISTORY=/tmp/v.hist DIMMUNIX_TAU_MS=20 (one line:)
//       LD_PRELOAD=build/libdimmunix_preload.so ./preload_victim
//
// Run 1 deadlocks (kill it; the signature is already on disk). Run 2 under
// the same command completes: the binary acquired immunity without being
// recompiled or even restarted from a different build.

#include <pthread.h>
#include <unistd.h>

#include <cstdio>

namespace {

pthread_mutex_t g_a = PTHREAD_MUTEX_INITIALIZER;
pthread_mutex_t g_b = PTHREAD_MUTEX_INITIALIZER;

void* LockAthenB(void*) {
  pthread_mutex_lock(&g_a);
  usleep(100 * 1000);
  pthread_mutex_lock(&g_b);
  pthread_mutex_unlock(&g_b);
  pthread_mutex_unlock(&g_a);
  return nullptr;
}

void* LockBthenA(void*) {
  pthread_mutex_lock(&g_b);
  usleep(100 * 1000);
  pthread_mutex_lock(&g_a);
  pthread_mutex_unlock(&g_a);
  pthread_mutex_unlock(&g_b);
  return nullptr;
}

}  // namespace

int main() {
  pthread_t t1;
  pthread_t t2;
  pthread_create(&t1, nullptr, LockAthenB, nullptr);
  pthread_create(&t2, nullptr, LockBthenA, nullptr);
  pthread_join(t1, nullptr);
  pthread_join(t2, nullptr);
  std::printf("completed without deadlock\n");
  return 0;
}
