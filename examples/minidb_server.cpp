// Copyright (c) dimmunix-cpp authors. MIT license.
//
// MiniDb "server": the workload the paper's intro motivates — a storage
// engine with a deadlock bug (MySQL #37080-style INSERT vs. TRUNCATE)
// serving many concurrent clients, kept alive by deadlock immunity.
//
// The history is pre-seeded by reproducing the deadlock once in a forked
// child (the vendor's exploit, or the first production hit). Then N client
// threads hammer INSERT/SELECT with periodic TRUNCATEs; without immunity
// this deadlocks within seconds, with immunity it completes and reports
// throughput plus avoidance statistics.
//
//   $ ./minidb_server [clients] [seconds]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <latch>
#include <random>
#include <thread>
#include <vector>

#include "src/apps/exploits.h"
#include "src/apps/minidb.h"
#include "src/benchlib/trial.h"

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 8;
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 3;
  const std::string history =
      (std::filesystem::temp_directory_path() / "minidb_server.dimmunix").string();
  std::remove(history.c_str());

  // Step 1: capture the bug's signature once (restart-based recovery).
  const dimmunix::Exploit& exploit = dimmunix::FindExploit("mysql-37080");
  dimmunix::TrialResult first = dimmunix::RunTrial(
      [&] {
        dimmunix::Config config;
        config.history_path = history;
        config.monitor_period = std::chrono::milliseconds(20);
        dimmunix::Runtime runtime(config);
        exploit.run(runtime);
        return 0;
      },
      std::chrono::seconds(2));
  std::printf("exploit run: %s\n", first.deadlocked ? "deadlocked, signature saved" : "completed");

  // Step 2: serve clients with immunity on.
  dimmunix::Config config;
  config.history_path = history;
  dimmunix::Runtime runtime(config);
  dimmunix::MiniDb db(runtime);
  db.CreateTable("orders");

  std::atomic<bool> stop{false};
  std::atomic<long> queries{0};
  std::latch ready(clients + 1);
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      std::mt19937 rng(static_cast<unsigned>(c) * 31u + 7u);
      ready.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const unsigned op = rng() % 100;
        if (op < 60) {
          db.Insert("orders", static_cast<int>(rng() % 1000));
        } else if (op < 95) {
          (void)db.Count("orders");
        } else {
          db.Truncate("orders");  // the dangerous operation
        }
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  ready.arrive_and_wait();
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  stop.store(true);
  for (auto& worker : workers) {
    worker.join();
  }

  const auto& stats = runtime.engine().stats();
  std::printf("served %ld queries from %d clients in %ds (%.0f q/s)\n", queries.load(), clients,
              seconds, static_cast<double>(queries.load()) / seconds);
  std::printf("immunity: %llu yields, %llu lock acquisitions, 0 deadlocks\n",
              static_cast<unsigned long long>(stats.yields.load()),
              static_cast<unsigned long long>(stats.acquisitions.load()));
  std::remove(history.c_str());
  return 0;
}
