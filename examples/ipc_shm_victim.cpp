// Copyright (c) dimmunix-cpp authors. MIT license.
//
// ipc_shm_victim — two PROCESSES deadlocking on PTHREAD_PROCESS_SHARED
// mutexes in a shared-memory segment, with NO Dimmunix linkage. The
// cross-process counterpart of preload_victim:
//
//   $ export LD_PRELOAD=build/libdimmunix_preload.so
//   $ export DIMMUNIX_HISTORY=/tmp/shm.hist DIMMUNIX_IPC=/tmp/shm.arena
//   $ export DIMMUNIX_TAU_MS=20 DIMMUNIX_YIELD_TIMEOUT_MS=3000
//   $ ./ipc_shm_victim     # run 1: cross-process AB-BA deadlock; the
//                          # monitors see each other's edges through the
//                          # arena, archive the signature, exit code 3
//   $ ./ipc_shm_victim     # run 2: one process yields at its first lock,
//                          # the other completes and releases, exit code 0
//
// Process A locks M1, then M2 500 ms later; process B (staggered 200 ms)
// locks M2, then M1 500 ms later — a deterministic cross-process cycle.
// The parent watchdogs both children: if they are still alive after the
// deadline the deadlock persisted; it kills them and exits 3.

#include <pthread.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

namespace {

struct SharedLocks {
  pthread_mutex_t m1;
  pthread_mutex_t m2;
};

void InitSharedMutex(pthread_mutex_t* mutex) {
  pthread_mutexattr_t attr;
  pthread_mutexattr_init(&attr);
  pthread_mutexattr_setpshared(&attr, PTHREAD_PROCESS_SHARED);
  pthread_mutex_init(mutex, &attr);
  pthread_mutexattr_destroy(&attr);
}

[[noreturn]] void RunRole(SharedLocks* locks, bool role_a) {
  pthread_mutex_t* first = role_a ? &locks->m1 : &locks->m2;
  pthread_mutex_t* second = role_a ? &locks->m2 : &locks->m1;
  if (!role_a) {
    usleep(200 * 1000);  // stagger: A's first hold is visible before B locks
  }
  pthread_mutex_lock(first);
  usleep(500 * 1000);
  pthread_mutex_lock(second);
  usleep(50 * 1000);  // critical section
  pthread_mutex_unlock(second);
  pthread_mutex_unlock(first);
  // Normal exit (not _Exit): an ordinary program would run its atexit
  // handlers here, and an interposing runtime may have registered one (the
  // flight-recorder shutdown dump). Nothing was buffered on stdio before
  // the fork, so there is no double-flush hazard.
  std::exit(0);
}

}  // namespace

int main() {
  // A stale arena from a killed previous run would replay phantom edges
  // until the liveness sweep reclaims them; start clean instead.
  if (const char* arena = std::getenv("DIMMUNIX_IPC"); arena != nullptr) {
    ::unlink(arena);
  }

  void* region = ::mmap(nullptr, sizeof(SharedLocks), PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (region == MAP_FAILED) {
    std::perror("mmap");
    return 1;
  }
  auto* locks = static_cast<SharedLocks*>(region);
  InitSharedMutex(&locks->m1);
  InitSharedMutex(&locks->m2);

  const pid_t a = ::fork();
  if (a == 0) {
    RunRole(locks, /*role_a=*/true);
  }
  const pid_t b = ::fork();
  if (b == 0) {
    RunRole(locks, /*role_a=*/false);
  }

  // Watchdog: both children must finish well before the deadline unless the
  // cross-process deadlock persisted.
  int done = 0;
  bool failed = false;
  for (int elapsed_ms = 0; done < 2 && elapsed_ms < 12000; elapsed_ms += 50) {
    int status = 0;
    pid_t reaped;
    while (done < 2 && (reaped = ::waitpid(-1, &status, WNOHANG)) > 0) {
      ++done;
      failed = failed || !WIFEXITED(status) || WEXITSTATUS(status) != 0;
    }
    if (done < 2) {
      ::usleep(50 * 1000);
    }
  }
  if (done < 2) {
    std::fprintf(stderr, "deadlock persisted; killing children\n");
    ::kill(a, SIGKILL);
    ::kill(b, SIGKILL);
    while (::waitpid(-1, nullptr, 0) > 0) {
    }
    return 3;
  }
  if (failed) {
    std::fprintf(stderr, "a child failed\n");
    return 4;
  }
  std::printf("completed without deadlock\n");
  return 0;
}
