// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Message broker example: the ActiveMQ #336 scenario (listener churn racing
// active dispatch) running continuously under deadlock immunity — the
// "band-aid while the vendor fixes the bug" use case of §8.
//
//   $ ./message_broker [seconds]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "src/apps/activemq.h"
#include "src/apps/exploits.h"
#include "src/benchlib/trial.h"

int main(int argc, char** argv) {
  const int seconds = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::string history =
      (std::filesystem::temp_directory_path() / "broker.dimmunix").string();
  std::remove(history.c_str());

  // Capture the signature with the vendor's exploit first.
  const dimmunix::Exploit& exploit = dimmunix::FindExploit("activemq-336");
  dimmunix::TrialResult first = dimmunix::RunTrial(
      [&] {
        dimmunix::Config config;
        config.history_path = history;
        config.monitor_period = std::chrono::milliseconds(20);
        dimmunix::Runtime runtime(config);
        exploit.run(runtime);
        return 0;
      },
      std::chrono::seconds(2));
  std::printf("exploit run: %s\n", first.deadlocked ? "deadlocked, signature saved" : "completed");

  dimmunix::Config config;
  config.history_path = history;
  dimmunix::Runtime runtime(config);
  dimmunix::BrokerSession session(runtime);
  dimmunix::BrokerConsumer* consumer = session.CreateConsumer();

  std::atomic<bool> stop{false};
  std::atomic<long> dispatched{0};
  std::thread dispatcher([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      session.DispatchOne("tick");
      dispatched.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread subscriber([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      consumer->SetListener([](const std::string&) {});
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  stop.store(true);
  dispatcher.join();
  subscriber.join();

  const auto& stats = runtime.engine().stats();
  std::printf("dispatched %ld messages (%zu delivered) in %ds\n", dispatched.load(),
              consumer->received(), seconds);
  std::printf("immunity: %llu yields kept the broker deadlock-free\n",
              static_cast<unsigned long long>(stats.yields.load()));
  std::remove(history.c_str());
  return 0;
}
