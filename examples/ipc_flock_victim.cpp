// Copyright (c) dimmunix-cpp authors. MIT license.
//
// ipc_flock_victim — two PROCESSES deadlocking on flock(2) file locks (the
// SQLite-style pattern), with NO Dimmunix linkage:
//
//   $ export LD_PRELOAD=build/libdimmunix_preload.so
//   $ export DIMMUNIX_HISTORY=/tmp/fl.hist DIMMUNIX_IPC=/tmp/fl.arena
//   $ export DIMMUNIX_TAU_MS=20 DIMMUNIX_YIELD_TIMEOUT_MS=3000
//   $ ./ipc_flock_victim /tmp/fl.a /tmp/fl.b   # run 1: deadlock, exit 3
//   $ ./ipc_flock_victim /tmp/fl.a /tmp/fl.b   # run 2: immune, exit 0
//
// Process A flocks file1 then file2 (500 ms later); process B (staggered
// 200 ms) flocks file2 then file1. flock is per-open-file-description, so
// the two processes' exclusive locks conflict and the cycle is
// deterministic. Same watchdog protocol as ipc_shm_victim.

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

namespace {

[[noreturn]] void RunRole(const char* path1, const char* path2, bool role_a) {
  const char* first = role_a ? path1 : path2;
  const char* second = role_a ? path2 : path1;
  if (!role_a) {
    usleep(200 * 1000);
  }
  const int fd_first = ::open(first, O_RDWR | O_CREAT, 0644);
  const int fd_second = ::open(second, O_RDWR | O_CREAT, 0644);
  if (fd_first < 0 || fd_second < 0) {
    std::perror("open");
    std::_Exit(1);
  }
  if (::flock(fd_first, LOCK_EX) != 0) {
    std::_Exit(1);
  }
  usleep(500 * 1000);
  if (::flock(fd_second, LOCK_EX) != 0) {
    std::_Exit(1);
  }
  usleep(50 * 1000);  // critical section
  ::flock(fd_second, LOCK_UN);
  ::flock(fd_first, LOCK_UN);
  std::_Exit(0);
}

}  // namespace

int main(int argc, char** argv) {
  const char* path1 = argc > 1 ? argv[1] : "/tmp/ipc_flock_victim.file1";
  const char* path2 = argc > 2 ? argv[2] : "/tmp/ipc_flock_victim.file2";
  if (const char* arena = std::getenv("DIMMUNIX_IPC"); arena != nullptr) {
    ::unlink(arena);  // never replay a killed run's stale edges
  }

  const pid_t a = ::fork();
  if (a == 0) {
    RunRole(path1, path2, /*role_a=*/true);
  }
  const pid_t b = ::fork();
  if (b == 0) {
    RunRole(path1, path2, /*role_a=*/false);
  }

  int done = 0;
  bool failed = false;
  for (int elapsed_ms = 0; done < 2 && elapsed_ms < 12000; elapsed_ms += 50) {
    int status = 0;
    pid_t reaped;
    while (done < 2 && (reaped = ::waitpid(-1, &status, WNOHANG)) > 0) {
      ++done;
      failed = failed || !WIFEXITED(status) || WEXITSTATUS(status) != 0;
    }
    if (done < 2) {
      ::usleep(50 * 1000);
    }
  }
  if (done < 2) {
    std::fprintf(stderr, "deadlock persisted; killing children\n");
    ::kill(a, SIGKILL);
    ::kill(b, SIGKILL);
    while (::waitpid(-1, nullptr, 0) > 0) {
    }
    return 3;
  }
  if (failed) {
    std::fprintf(stderr, "a child failed\n");
    return 4;
  }
  std::printf("completed without deadlock\n");
  return 0;
}
