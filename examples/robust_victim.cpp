// Copyright (c) dimmunix-cpp authors. MIT license.
//
// robust_victim — robust-mutex death recovery with NO Dimmunix linkage,
// exercised under the LD_PRELOAD shim. Two phases:
//
//   phase 1 (in-process): a thread exits while holding a
//   PTHREAD_MUTEX_ROBUST mutex. The main thread's next lock returns
//   EOWNERDEAD; it repairs the state with pthread_mutex_consistent and
//   carries on. Under the shim, the corpse's engine-side hold must be
//   reaped at that moment or the lock stays "held" forever in the
//   avoidance engine's owner map.
//
//   phase 2 (cross-process): a forked child SIGKILLs itself while holding
//   a PTHREAD_MUTEX_ROBUST + PTHREAD_PROCESS_SHARED mutex in a MAP_SHARED
//   segment. The parent's lock returns EOWNERDEAD and recovers the same
//   way (the dead process's mirrored holds are the IPC arena sweep's job,
//   not the wrapper's).
//
// Prints "robust recovery ok" and exits 0 only if both phases observe
// EOWNERDEAD, repair, relock, and release cleanly.

#include <pthread.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace {

int InitRobustMutex(pthread_mutex_t* mutex, bool pshared) {
  pthread_mutexattr_t attr;
  pthread_mutexattr_init(&attr);
  pthread_mutexattr_setrobust(&attr, PTHREAD_MUTEX_ROBUST);
  if (pshared) {
    pthread_mutexattr_setpshared(&attr, PTHREAD_PROCESS_SHARED);
  }
  const int rc = pthread_mutex_init(mutex, &attr);
  pthread_mutexattr_destroy(&attr);
  return rc;
}

pthread_mutex_t g_local;

void* DieHolding(void*) {
  pthread_mutex_lock(&g_local);
  return nullptr;  // thread exits still holding g_local
}

// Returns 0 on clean EOWNERDEAD -> consistent -> unlock -> relock -> unlock.
int RecoverCycle(pthread_mutex_t* mutex, const char* phase) {
  int rc = pthread_mutex_lock(mutex);
  if (rc != EOWNERDEAD) {
    std::fprintf(stderr, "%s: expected EOWNERDEAD, got %d\n", phase, rc);
    return 1;
  }
  if ((rc = pthread_mutex_consistent(mutex)) != 0) {
    std::fprintf(stderr, "%s: pthread_mutex_consistent: %d\n", phase, rc);
    return 1;
  }
  pthread_mutex_unlock(mutex);
  // The mutex must be fully usable again — and under the shim, the engine
  // must agree it is free (a leaked corpse hold would leave it owned).
  if ((rc = pthread_mutex_lock(mutex)) != 0) {
    std::fprintf(stderr, "%s: relock after recovery: %d\n", phase, rc);
    return 1;
  }
  pthread_mutex_unlock(mutex);
  return 0;
}

int PhaseLocalThread() {
  if (InitRobustMutex(&g_local, /*pshared=*/false) != 0) {
    return 1;
  }
  pthread_t thread;
  pthread_create(&thread, nullptr, DieHolding, nullptr);
  pthread_join(thread, nullptr);
  return RecoverCycle(&g_local, "phase1");
}

int PhaseKilledProcess() {
  void* mem = mmap(nullptr, sizeof(pthread_mutex_t), PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    return 1;
  }
  pthread_mutex_t* mutex = static_cast<pthread_mutex_t*>(mem);
  if (InitRobustMutex(mutex, /*pshared=*/true) != 0) {
    return 1;
  }
  const pid_t child = fork();
  if (child < 0) {
    return 1;
  }
  if (child == 0) {
    pthread_mutex_lock(mutex);
    raise(SIGKILL);  // die mid-critical-section, no unlock, no cleanup
    _exit(9);        // unreachable
  }
  int status = 0;
  waitpid(child, &status, 0);
  if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
    std::fprintf(stderr, "phase2: child did not die by SIGKILL\n");
    return 1;
  }
  return RecoverCycle(mutex, "phase2");
}

}  // namespace

int main() {
  if (PhaseLocalThread() != 0) {
    return 1;
  }
  if (PhaseKilledProcess() != 0) {
    return 2;
  }
  std::printf("robust recovery ok\n");
  return 0;
}
