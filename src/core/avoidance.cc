// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/core/avoidance.h"

#include <algorithm>
#include <cassert>

#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/stack/capture.h"

namespace dimmunix {
namespace {

std::size_t StripeCountFor(const Config& config) {
  if (config.engine_stripes > 0) {
    return RoundUpPow2(static_cast<std::size_t>(config.engine_stripes));
  }
  return DefaultStripeCount();
}

// Engine re-entrancy guard. Under LD_PRELOAD interposition, the engine's own
// internal mutexes (a yielder's park_m, the monitor's run_m_) resolve to the
// interposed pthread symbols on threads that carry no shim-side guard (the
// monitor, the IPC bridge). Without this flag, a WakeYieldersOf — which
// holds the yield_m_ spin lock while touching a yielder's park_m — would
// recurse through the instrumented unlock back into Release ->
// WakeYieldersOf and spin on its own yield_m_ forever. Any entry point
// reached while another entry point is already on this thread's stack is an
// engine-internal lock operation and must not be instrumented.
thread_local bool tls_in_engine = false;

class ScopedEngineEntry {
 public:
  ScopedEngineEntry() : nested_(tls_in_engine) { tls_in_engine = true; }
  ~ScopedEngineEntry() {
    if (!nested_) {
      tls_in_engine = false;
    }
  }
  ScopedEngineEntry(const ScopedEngineEntry&) = delete;
  ScopedEngineEntry& operator=(const ScopedEngineEntry&) = delete;

  bool nested() const { return nested_; }

 private:
  const bool nested_;
};

}  // namespace

AvoidanceEngine::AvoidanceEngine(const Config& config, StackTable* stacks, History* history,
                                 EventQueue* queue, obs::Recorder* recorder)
    : config_(config),
      stacks_(stacks),
      history_(history),
      queue_(queue),
      recorder_(recorder),
      use_peterson_(config.use_peterson_guard),
      peterson_guard_(static_cast<std::size_t>(std::max(2, config.peterson_slots))),
      slot_stripe_mask_(StripeCountFor(config) - 1),
      slot_stripes_(std::make_unique<SlotStripe[]>(slot_stripe_mask_ + 1)),
      lock_owners_(slot_stripe_mask_ + 1) {
  auto initial = std::make_unique<SigGen>();  // version kStaleVersion, no entries
  gen_.store(initial.get(), std::memory_order_release);
  retired_gens_.push_back(std::move(initial));
}

AvoidanceEngine::~AvoidanceEngine() = default;

AvoidanceEngine::SlotEpochGuard::SlotEpochGuard(AvoidanceEngine& engine, ThreadId thread)
    : engine_(engine), thread_(thread) {
  // Epoch entry is rare — with the incremental matcher in front, only cache
  // rebuilds, snapshots, and fast-path validation churn land here — so the
  // wait and hold are *always* measured: the clock reads feed the
  // epoch_entries / epoch_stall_ns / epoch_hold_ns counters that
  // `dimctl status` reports with tracing off.
  const std::uint64_t wait_begin = obs::NowNs();
  if (engine_.use_peterson_) {
    assert(static_cast<std::size_t>(thread_) < engine_.peterson_guard_.slots() &&
           "peterson guard requires thread ids < peterson_slots");
    engine_.peterson_guard_.Lock(static_cast<std::size_t>(thread_));
  }
  for (std::size_t i = 0; i <= engine_.slot_stripe_mask_; ++i) {
    engine_.slot_stripes_[i].lock.Lock();
  }
  entered_ns_ = obs::NowNs();
  stall_ns_ = entered_ns_ - wait_begin;
  engine_.stats_.epoch_entries.fetch_add(1, std::memory_order_relaxed);
  engine_.stats_.epoch_stall_ns.fetch_add(stall_ns_, std::memory_order_relaxed);
}

AvoidanceEngine::SlotEpochGuard::~SlotEpochGuard() {
  // Hold time ends where the stripes release; the histogram/ring pushes
  // happen after the unlocks so the export work itself never extends the
  // epoch. Debug builds assert the configured hold bound — the epoch is
  // allowed to be slow-path-rare, never slow-path-long.
  const std::uint64_t end_ns = obs::NowNs();
  const std::uint64_t hold_ns = end_ns - entered_ns_;
  assert(hold_ns <= static_cast<std::uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            engine_.config_.epoch_hold_bound)
                            .count()) &&
         "stop-the-stripes epoch held past Config::epoch_hold_bound");
  for (std::size_t i = engine_.slot_stripe_mask_ + 1; i-- > 0;) {
    engine_.slot_stripes_[i].lock.Unlock();
  }
  if (engine_.use_peterson_) {
    engine_.peterson_guard_.Unlock(static_cast<std::size_t>(thread_));
  }
  engine_.stats_.epoch_hold_ns.fetch_add(hold_ns, std::memory_order_relaxed);
  obs::Recorder* recorder = engine_.recorder_;
  if (recorder != nullptr && recorder->timing()) {
    recorder->Latency(obs::HistoKind::kEpochHold, hold_ns);
    recorder->Span(obs::TraceEventType::kEpoch, end_ns, hold_ns, /*aux=*/0, /*mode=*/0,
                   /*data=*/stall_ns_);
  }
}

AvoidanceEngine::StackSlot* AvoidanceEngine::SlotFor(StackId id) {
  const std::size_t want = static_cast<std::size_t>(id);
  if (want < stack_slots_.size()) {
    return stack_slots_.Get(want);
  }
  std::lock_guard<SpinLock> guard(slot_growth_lock_);
  while (stack_slots_.size() <= want) {
    stack_slots_.Append();
  }
  return stack_slots_.Get(want);
}

std::vector<std::uint32_t> AvoidanceEngine::ComputeMemberships(StackId stack,
                                                               const SigGen& gen) const {
  std::vector<std::uint32_t> memberships;
  for (std::size_t e = 0; e < gen.entries.size(); ++e) {
    const SigGen::Entry& entry = gen.entries[e];
    const std::size_t positions =
        std::min(entry.sig_stacks.size(), std::size_t{1} << kPosBits);
    for (std::size_t j = 0; j < positions; ++j) {
      if (stacks_->MatchesAtDepth(stack, entry.sig_stacks[j], entry.depth)) {
        memberships.push_back(static_cast<std::uint32_t>((e << kPosBits) | j));
      }
    }
  }
  return memberships;
}

void AvoidanceEngine::EnsureMemberships(StackId stack, StackSlot* slot, const SigGen& gen) {
  if (slot->member_version != gen.version) {
    slot->memberships = ComputeMemberships(stack, gen);
    slot->member_version = gen.version;
  }
}

void AvoidanceEngine::AddTupleLocked(SlotStripe& stripe, StackId stack, StackSlot* slot,
                                     const AllowedTuple& tuple) {
  const bool matching = config_.stage == EngineStage::kFull;
  const SigGen* gen = nullptr;
  if (matching) {
    gen = CurrentGen();  // stable: rebuilds need every stripe, we hold one
    EnsureMemberships(stack, slot, *gen);
  }
  slot->tuples.push_back(tuple);
  ++stripe.version;
  if (slot->live_index < 0) {
    slot->live_index = static_cast<int>(stripe.live.size());
    stripe.live.push_back(stack);
  }
  if (matching) {
    // seq_cst: pairs with the seq_cst fast-reject loads so two racing
    // requesters cannot both miss each other's tentative tuple. The
    // fully_live gate preserves that argument: if requester A's fully_live
    // load misses requester B's increment, then in the seq_cst total order
    // A's live[] add precedes B's fully_live add — so B's candidate scan
    // (which runs after its own increment) observes A's tuple.
    for (const std::uint32_t pack : slot->memberships) {
      const std::size_t e = pack >> kPosBits;
      const std::size_t j = pack & ((1u << kPosBits) - 1);
      if (gen->entries[e].live[j].fetch_add(1, std::memory_order_seq_cst) == 0 &&
          gen->dead[e].fetch_sub(1, std::memory_order_seq_cst) == 1) {
        gen->fully_live.fetch_add(1, std::memory_order_seq_cst);
      }
    }
  }
}

void AvoidanceEngine::RemoveTupleLocked(SlotStripe& stripe, StackId stack, StackSlot* slot,
                                        ThreadId thread, LockId lock, bool held) {
  auto& tuples = slot->tuples;
  auto victim = tuples.end();
  for (auto it = tuples.begin(); it != tuples.end(); ++it) {
    if (it->thread == thread && it->lock == lock) {
      if (it->held == held) {
        victim = it;
        break;
      }
      if (victim == tuples.end()) {
        victim = it;
      }
    }
  }
  if (victim == tuples.end()) {
    return;
  }
  tuples.erase(victim);
  ++stripe.version;
  if (tuples.empty() && slot->live_index >= 0) {
    // Swap-remove from the stripe's live list.
    const std::size_t at = static_cast<std::size_t>(slot->live_index);
    const StackId moved = stripe.live.back();
    stripe.live[at] = moved;
    stripe.live.pop_back();
    if (moved != stack) {
      stack_slots_.Get(static_cast<std::size_t>(moved))->live_index = static_cast<int>(at);
    }
    slot->live_index = -1;
  }
  if (config_.stage == EngineStage::kFull) {
    const SigGen* gen = CurrentGen();
    // Invariant: a slot that held tuples has memberships current w.r.t. the
    // published generation (adds refresh lazily; rebuilds visit live slots).
    EnsureMemberships(stack, slot, *gen);
    for (const std::uint32_t pack : slot->memberships) {
      const std::size_t e = pack >> kPosBits;
      const std::size_t j = pack & ((1u << kPosBits) - 1);
      if (gen->entries[e].live[j].fetch_sub(1, std::memory_order_seq_cst) == 1 &&
          gen->dead[e].fetch_add(1, std::memory_order_seq_cst) == 0) {
        gen->fully_live.fetch_sub(1, std::memory_order_seq_cst);
      }
    }
  }
}

void AvoidanceEngine::AddTuple(StackId stack, const AllowedTuple& tuple) {
  StackSlot* slot = SlotFor(stack);
  SlotStripe& stripe = StripeOf(stack);
  std::lock_guard<SpinLock> guard(stripe.lock);
  AddTupleLocked(stripe, stack, slot, tuple);
}

void AvoidanceEngine::RemoveTuple(StackId stack, ThreadId thread, LockId lock, bool held) {
  StackSlot* slot = SlotFor(stack);
  SlotStripe& stripe = StripeOf(stack);
  std::lock_guard<SpinLock> guard(stripe.lock);
  RemoveTupleLocked(stripe, stack, slot, thread, lock, held);
}

const AvoidanceEngine::SigGen* AvoidanceEngine::AcquireGenRef(ThreadSlot& slot) const {
  // Classic hazard-pointer protocol: publish, then re-validate. If the
  // pointer is still current after the (seq_cst) publish, any reclaimer
  // that later supersedes it must also observe our hazard slot.
  for (;;) {
    const SigGen* gen = gen_.load(std::memory_order_seq_cst);
    slot.sig_gen_hazard.store(gen, std::memory_order_seq_cst);
    if (gen_.load(std::memory_order_seq_cst) == gen) {
      return gen;
    }
  }
}

void AvoidanceEngine::RefreshGen() {
  if (config_.stage != EngineStage::kFull) {
    return;
  }
  const ThreadId me = registry_.RegisterCurrentThread();
  std::lock_guard<SpinLock> sig_guard(sig_mutex_);
  // Read the version before the signatures: if the history mutates during
  // the build, the next staleness check triggers another rebuild.
  const std::uint64_t version = history_->version();
  if (CurrentGen()->version == version) {
    return;  // another thread already rebuilt
  }
  auto gen = std::make_unique<SigGen>();
  gen->version = version;
  history_->ForEach([&gen](int index, const Signature& sig) {
    if (sig.disabled) {
      return;
    }
    SigGen::Entry entry;
    entry.index = index;
    entry.depth = sig.match_depth;
    entry.sig_stacks = sig.stacks;
    entry.live = std::make_unique<std::atomic<std::int64_t>[]>(sig.stacks.size());
    gen->entries.push_back(std::move(entry));
  });
  gen->dead = std::make_unique<std::atomic<std::int32_t>[]>(gen->entries.size());
  {
    // Stop the stripes: recompute every live slot's memberships against the
    // new generation and seed its per-position live counters, then publish.
    SlotEpochGuard epoch(*this, me);
    for (std::size_t s = 0; s <= slot_stripe_mask_; ++s) {
      for (const StackId id : slot_stripes_[s].live) {
        StackSlot* slot = stack_slots_.Get(static_cast<std::size_t>(id));
        slot->memberships = ComputeMemberships(id, *gen);
        slot->member_version = gen->version;
        for (const std::uint32_t pack : slot->memberships) {
          gen->entries[pack >> kPosBits].live[pack & ((1u << kPosBits) - 1)].fetch_add(
              static_cast<std::int64_t>(slot->tuples.size()), std::memory_order_relaxed);
        }
      }
    }
    // Seed the O(1) fast-reject counters from the freshly computed live
    // counts. Safe to do non-transitionally: we hold every stripe, so no
    // Add/RemoveTupleLocked can interleave before the generation publishes.
    std::int64_t fully_live = 0;
    for (std::size_t e = 0; e < gen->entries.size(); ++e) {
      const SigGen::Entry& entry = gen->entries[e];
      std::int32_t dead = entry.sig_stacks.empty() ? 1 : 0;
      for (std::size_t j = 0; j < entry.sig_stacks.size(); ++j) {
        if (entry.live[j].load(std::memory_order_relaxed) <= 0) {
          ++dead;
        }
      }
      gen->dead[e].store(dead, std::memory_order_relaxed);
      if (dead == 0) {
        ++fully_live;
      }
    }
    gen->fully_live.store(fully_live, std::memory_order_relaxed);
    gen_.store(gen.get(), std::memory_order_seq_cst);
    retired_gens_.push_back(std::move(gen));

    // Reclaim superseded generations. Safe here because (a) we hold every
    // stripe, so no AddTuple/RemoveTuple/MatchAndRetire holds an old
    // pointer, and (b) lock-free readers pin theirs via a hazard slot —
    // published seq_cst before re-validating against gen_, so a reader
    // whose pointer was still current when it validated is visible to this
    // scan (its publish precedes our gen_ store in the seq_cst order).
    const SigGen* current = gen_.load(std::memory_order_relaxed);
    std::vector<const void*> hazards;
    const std::size_t threads = registry_.size();
    hazards.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      const void* hazard = registry_.Slot(static_cast<ThreadId>(t))
                               .sig_gen_hazard.load(std::memory_order_seq_cst);
      if (hazard != nullptr) {
        hazards.push_back(hazard);
      }
    }
    std::erase_if(retired_gens_, [&](const std::unique_ptr<SigGen>& g) {
      return g.get() != current &&
             std::find(hazards.begin(), hazards.end(), g.get()) == hazards.end();
    });
  }
}

bool AvoidanceEngine::AnyInstantiationPlausible(const SigGen& gen) const {
  // §5.6 fast reject: "in most cases, at least one of these sets is empty,
  // meaning there is no thread holding a lock in that stack configuration,
  // so the signature is not instantiated." The per-entry dead-position
  // counters reduce the signature scan to this single load.
  return gen.fully_live.load(std::memory_order_seq_cst) > 0;
}

bool AvoidanceEngine::CoverPositions(
    const SigGen::Entry& sig,
    const std::vector<std::vector<std::pair<StackId, AllowedTuple>>>& pools, std::size_t pos,
    CoverScratch& cover, ThreadId requester, LockId req_lock) {
  if (pos == sig.sig_stacks.size()) {
    return cover.requester_used;  // a valid instance must include the new allow edge
  }
  for (const auto& [candidate, tuple] : pools[pos]) {
    if (cover.UsesThread(tuple.thread) || !cover.used_locks.CanUse(tuple.lock, tuple.mode)) {
      continue;
    }
    const bool is_requester = (tuple.thread == requester && tuple.lock == req_lock);
    cover.used_threads.push_back(tuple.thread);
    cover.used_locks.Push(tuple.lock, tuple.mode);
    cover.chosen.push_back(tuple);
    cover.chosen_stacks.push_back(candidate);
    if (is_requester) {
      cover.requester_used = true;
    }
    if (CoverPositions(sig, pools, pos + 1, cover, requester, req_lock)) {
      return true;
    }
    if (is_requester) {
      cover.requester_used = false;
    }
    cover.chosen.pop_back();
    cover.chosen_stacks.pop_back();
    cover.used_threads.pop_back();
    cover.used_locks.Pop(tuple.lock);
  }
  return false;
}

std::optional<AvoidanceEngine::MatchResult> AvoidanceEngine::MatchAndRetire(
    ThreadId thread, LockId lock, StackId stack, ThreadSlot& slot, bool yield_on_match) {
  SlotEpochGuard epoch(*this, thread);
  // Cover-search span: how long the matcher held everyone else out looking
  // for an instantiation. aux carries the matched signature (kNoMatchAux on
  // a miss) so a Perfetto query can pin a convoy on one signature.
  const std::uint64_t search_begin =
      recorder_ != nullptr && recorder_->tracing() ? obs::NowNs() : 0;
  const auto record_search = [&](std::int64_t matched_signature) {
    if (search_begin != 0) {
      const std::uint64_t end_ns = obs::NowNs();
      recorder_->Span(obs::TraceEventType::kCoverSearch, end_ns, end_ns - search_begin,
                      matched_signature < 0 ? obs::kNoMatchAux
                                            : obs::SaturateAux(matched_signature));
    }
  };
  // The generation cannot be republished while we hold every stripe.
  const SigGen& gen = *CurrentGen();
  for (std::size_t e = 0; e < gen.entries.size(); ++e) {
    const SigGen::Entry& sig = gen.entries[e];
    if (sig.sig_stacks.empty()) {
      continue;
    }
    bool possible = true;
    for (std::size_t j = 0; j < sig.sig_stacks.size(); ++j) {
      if (sig.live[j].load(std::memory_order_relaxed) <= 0) {
        possible = false;
        break;
      }
    }
    if (!possible) {
      continue;
    }
    // Gather the live tuples that can occupy each position. Iterating live
    // slots (≈ two per running thread) beats iterating candidate stacks
    // (every interned stack matching the signature suffix).
    std::vector<std::vector<std::pair<StackId, AllowedTuple>>> pools(sig.sig_stacks.size());
    for (std::size_t s = 0; s <= slot_stripe_mask_; ++s) {
      for (const StackId id : slot_stripes_[s].live) {
        StackSlot* live_slot = stack_slots_.Get(static_cast<std::size_t>(id));
        EnsureMemberships(id, live_slot, gen);
        for (const std::uint32_t pack : live_slot->memberships) {
          if ((pack >> kPosBits) != e) {
            continue;
          }
          auto& pool = pools[pack & ((1u << kPosBits) - 1)];
          for (const AllowedTuple& tuple : live_slot->tuples) {
            pool.emplace_back(id, tuple);
          }
        }
      }
    }
    CoverScratch cover;
    if (!CoverPositions(sig, pools, 0, cover, thread, lock)) {
      continue;
    }
    MatchResult result;
    result.signature_index = sig.index;
    result.depth = sig.depth;
    // Deepest depth at which this same cover still matches — used by the
    // calibration fast-path (§5.5).
    int deepest = stacks_->max_depth();
    for (std::size_t j = 0; j < cover.chosen.size(); ++j) {
      deepest = std::min(deepest,
                         stacks_->DeepestMatchDepth(cover.chosen_stacks[j], sig.sig_stacks[j]));
    }
    result.deepest = std::max(deepest, sig.depth);
    for (std::size_t j = 0; j < cover.chosen.size(); ++j) {
      if (cover.chosen[j].thread == thread && cover.chosen[j].lock == lock) {
        continue;  // the requester itself
      }
      result.others.push_back(YieldCause{cover.chosen[j].thread, cover.chosen[j].lock,
                                         cover.chosen_stacks[j], cover.chosen[j].mode});
    }

    // Retire the tentative allow edge (the YIELD flips it into a request
    // edge, §5.4) and — in blocking mode — register the yield while the
    // epoch still excludes releasers: a releaser whose tuple we matched
    // cannot finish removing it (and thus cannot scan the yield set)
    // before we are registered, so its wake cannot be lost.
    RemoveTupleLocked(StripeOf(stack), stack, SlotFor(stack), thread, lock, /*held=*/false);
    if (yield_on_match) {
      RegisterYield(thread, slot, result);
    }
    record_search(result.signature_index);
    return result;
  }
  record_search(-1);
  return std::nullopt;
}

void AvoidanceEngine::RegisterYield(ThreadId thread, ThreadSlot& slot,
                                    const MatchResult& result) {
  {
    std::lock_guard<SpinLock> yield_guard(yield_m_);
    slot.yielding = true;
    slot.yield_causes = result.others;
    yielding_threads_.insert(thread);
    yield_count_.fetch_add(1, std::memory_order_seq_cst);
  }
  {
    std::lock_guard<std::mutex> park_guard(slot.park_m);
    slot.wake_pending = false;
  }
}

void AvoidanceEngine::UnregisterYield(ThreadId thread, ThreadSlot& slot) {
  std::lock_guard<SpinLock> yield_guard(yield_m_);
  slot.yielding = false;
  slot.yield_causes.clear();
  if (yielding_threads_.erase(thread) > 0) {
    yield_count_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

bool AvoidanceEngine::CoverStillStands(const MatchResult& result,
                                       const std::vector<std::uint64_t>& scan_versions) {
  for (const YieldCause& cause : result.others) {
    StackSlot* slot = SlotFor(cause.stack);
    const std::size_t s = StripeIndexOf(cause.stack);
    SlotStripe& stripe = slot_stripes_[s];
    std::lock_guard<SpinLock> guard(stripe.lock);
    if (stripe.version == scan_versions[s]) {
      continue;  // no add/remove since the scan — the pool copy is exact
    }
    bool present = false;
    for (const AllowedTuple& t : slot->tuples) {
      // The held flag may have flipped (allow -> hold on commit) since the
      // scan; the edge is the same instantiation either way.
      if (t.thread == cause.thread && t.lock == cause.lock && t.mode == cause.mode) {
        present = true;
        break;
      }
    }
    if (!present) {
      return false;
    }
  }
  return true;
}

AvoidanceEngine::FastMatchOutcome AvoidanceEngine::TryMatchIncremental(
    ThreadId thread, LockId lock, StackId stack, ThreadSlot& slot, bool yield_on_match,
    const SigGen& gen, MatchResult* result) {
  // Bounded validation churn: every retry means a matched tuple was retired
  // mid-decision. Persistent churn is real contention on the instantiation
  // itself, which only the epoch can arbitrate.
  constexpr int kFastMatchAttempts = 3;
  constexpr std::size_t kNotCandidate = ~std::size_t{0};
  // O(1) trivial reject (§5.6 common case): no signature has every position
  // live, so no instantiation can exist. No counter tick and no
  // match-duration sample — the histogram stays a picture of real cover
  // searches. Our own tentative tuple is already counted (AddTuple ran
  // before the match), so two racing requesters cannot both pass through.
  if (gen.fully_live.load(std::memory_order_seq_cst) == 0) {
    return FastMatchOutcome::kNoMatch;
  }
  // Scratch reuse matters beyond CPU time: every nanosecond spent here is
  // spent with the requester's tentative tuple live, and the window length
  // feeds quadratically into how often concurrent requesters see each other
  // as instantiation material.
  thread_local FastScratch scratch;
  std::uint64_t search_begin = 0;  // set lazily: trivial rejects skip the clock
  const auto record_search = [&](std::int64_t matched_signature) {
    if (search_begin != 0) {
      const std::uint64_t end_ns = obs::NowNs();
      recorder_->Latency(obs::HistoKind::kMatchDuration, end_ns - search_begin);
      recorder_->Span(obs::TraceEventType::kCoverSearch, end_ns, end_ns - search_begin,
                      matched_signature < 0 ? obs::kNoMatchAux
                                            : obs::SaturateAux(matched_signature));
    }
  };

  auto& scan_versions = scratch.scan_versions;
  scan_versions.assign(slot_stripe_mask_ + 1, 0);
  for (int attempt = 0; attempt < kFastMatchAttempts; ++attempt) {
    if (attempt > 0) {
      stats_.match_fast_retries.fetch_add(1, std::memory_order_relaxed);
    }
    // Candidate signatures: every position live (§5.6 fast reject,
    // re-evaluated per attempt — a retry means the population moved).
    auto& cands = scratch.cands;
    auto& cand_of = scratch.cand_of;
    cands.clear();
    cand_of.assign(gen.entries.size(), kNotCandidate);
    for (std::size_t e = 0; e < gen.entries.size(); ++e) {
      const SigGen::Entry& sig = gen.entries[e];
      if (sig.sig_stacks.empty()) {
        continue;
      }
      bool possible = true;
      for (std::size_t j = 0; j < sig.sig_stacks.size(); ++j) {
        if (sig.live[j].load(std::memory_order_seq_cst) <= 0) {
          possible = false;
          break;
        }
      }
      if (possible) {
        cand_of[e] = cands.size();
        cands.push_back(e);
      }
    }
    if (cands.empty()) {
      if (attempt == 0) {
        // Trivial reject (§5.6 common case): no scan ran, so no fast-path
        // counter tick and no match-duration sample — the histogram stays a
        // picture of real cover searches.
        return FastMatchOutcome::kNoMatch;
      }
      stats_.match_fast_path.fetch_add(1, std::memory_order_relaxed);
      record_search(-1);
      return FastMatchOutcome::kNoMatch;
    }
    if (search_begin == 0 && recorder_ != nullptr && recorder_->timing()) {
      search_begin = obs::NowNs();
    }

    // Copy every candidate position's live tuples, one stripe lock at a
    // time — never two, preserving the engine's single-stripe hot-path
    // invariant. A no-match over these copies is authoritative without
    // validation: the requester's tentative tuple was added *before* this
    // scan, so of two racing requesters at least one scan sees the other
    // (add-before-scan litmus, header comment). A slot whose membership
    // cache is stale w.r.t. the pinned generation means a rebuild
    // republished mid-request; only the epoch path may recompute
    // memberships (a recompute here would corrupt another generation's
    // live counters), so the decision falls back.
    auto& pools = scratch.pools;
    if (pools.size() < cands.size()) {
      pools.resize(cands.size());
    }
    for (std::size_t c = 0; c < cands.size(); ++c) {
      const std::size_t positions = gen.entries[cands[c]].sig_stacks.size();
      if (pools[c].size() < positions) {
        pools[c].resize(positions);
      }
      for (auto& pool : pools[c]) {
        pool.clear();  // clear, never shrink: capacity persists across requests
      }
    }
    for (std::size_t s = 0; s <= slot_stripe_mask_; ++s) {
      SlotStripe& stripe = slot_stripes_[s];
      std::lock_guard<SpinLock> guard(stripe.lock);
      scan_versions[s] = stripe.version;
      for (const StackId id : stripe.live) {
        StackSlot* live_slot = stack_slots_.Get(static_cast<std::size_t>(id));
        if (live_slot->member_version != gen.version) {
          record_search(-1);
          return FastMatchOutcome::kFallback;
        }
        for (const std::uint32_t pack : live_slot->memberships) {
          const std::size_t c = cand_of[pack >> kPosBits];
          if (c == kNotCandidate) {
            continue;
          }
          auto& pool = pools[c][pack & ((1u << kPosBits) - 1)];
          for (const AllowedTuple& tuple : live_slot->tuples) {
            pool.emplace_back(id, tuple);
          }
        }
      }
    }

    // Cover search on the private copies — same algorithm, zero shared
    // state. First matching signature wins, mirroring MatchAndRetire.
    MatchResult local;
    AcquireMode self_mode = AcquireMode::kExclusive;
    bool found = false;
    for (std::size_t c = 0; c < cands.size() && !found; ++c) {
      const SigGen::Entry& sig = gen.entries[cands[c]];
      CoverScratch& cover = scratch.cover;
      cover.Clear();
      if (!CoverPositions(sig, pools[c], 0, cover, thread, lock)) {
        continue;
      }
      local = MatchResult{};
      local.signature_index = sig.index;
      local.depth = sig.depth;
      int deepest = stacks_->max_depth();
      for (std::size_t j = 0; j < cover.chosen.size(); ++j) {
        deepest = std::min(
            deepest, stacks_->DeepestMatchDepth(cover.chosen_stacks[j], sig.sig_stacks[j]));
      }
      local.deepest = std::max(deepest, sig.depth);
      for (std::size_t j = 0; j < cover.chosen.size(); ++j) {
        if (cover.chosen[j].thread == thread && cover.chosen[j].lock == lock) {
          self_mode = cover.chosen[j].mode;
          continue;
        }
        local.others.push_back(YieldCause{cover.chosen[j].thread, cover.chosen[j].lock,
                                          cover.chosen_stacks[j], cover.chosen[j].mode});
      }
      found = true;
    }
    if (!found) {
      stats_.match_fast_path.fetch_add(1, std::memory_order_relaxed);
      record_search(-1);
      return FastMatchOutcome::kNoMatch;
    }

    // Commit: register the yield *before* retiring the allow edge, then
    // validate the matched cover is still standing. Ordering argument for
    // no lost wakes: if validation saw a cause tuple present, our stripe
    // critical section precedes the releaser's removal of that tuple, so
    // our (seq_cst) yield_count_ increment is visible to the releaser's
    // post-removal yield_count_ check — it will take yield_m_ and wake us.
    // Mutual validation by two requesters matched on each other's allow
    // tuples cannot both succeed: each removes its own tuple before
    // validating the other's, so the stripe-lock order forces one
    // validation to observe an absent tuple and retry.
    if (yield_on_match) {
      RegisterYield(thread, slot, local);
    }
    RemoveTuple(stack, thread, lock, /*held=*/false);
    if (CoverStillStands(local, scan_versions)) {
      stats_.match_fast_path.fetch_add(1, std::memory_order_relaxed);
      *result = std::move(local);
      record_search(result->signature_index);
      return FastMatchOutcome::kMatched;
    }
    // A matched tuple was retired under us: roll back (re-adding our
    // tentative tuple restores the add-before-scan protocol) and rescan.
    AddTuple(stack, AllowedTuple{thread, lock, false, self_mode});
    if (yield_on_match) {
      UnregisterYield(thread, slot);
    }
  }
  record_search(-1);
  return FastMatchOutcome::kFallback;
}

RequestDecision AvoidanceEngine::Request(ThreadId thread, LockId lock, AcquireMode mode,
                                         std::optional<MonoTime> deadline) {
  ScopedEngineEntry entry;
  if (!config_.enabled || entry.nested()) {
    return RequestDecision::kGo;
  }
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  ThreadSlot& slot = registry_.Slot(thread);
  // Acquire-latency span opens here and closes in Acquired(): it covers the
  // whole protocol including any yields, which is what an application thread
  // actually waits. Zero clock reads when metrics and tracing are both off.
  if (recorder_ != nullptr && recorder_->timing()) {
    slot.acquire_begin_ns = obs::NowNs();
  }

  // Global locks (IPC arena wired in, id carries kGlobalLockBit) get their
  // stacks proc-qualified and their wait/hold edges published fleet-wide;
  // for local locks `pub` stays null after one predictable branch.
  GlobalEdgePublisher* pub = global_pub_.load(std::memory_order_acquire);
  if (pub != nullptr && !IsGlobalLockId(lock)) {
    pub = nullptr;
  }

  if (config_.stage == EngineStage::kInstrumentationOnly) {
    // Figure 8 stage 1: intercept + capture + events only.
    const StackId stack = stacks_->Intern(CaptureStack());
    slot.pending_stack = stack;
    slot.pending_lock = lock;
    Event ev;
    ev.type = EventType::kAllow;
    ev.thread = thread;
    ev.lock = lock;
    ev.stack = stack;
    ev.mode = mode;
    queue_->Push(ev);
    stats_.gos.fetch_add(1, std::memory_order_relaxed);
    return RequestDecision::kGo;
  }

  std::vector<Frame> captured = CaptureStack();
  if (pub != nullptr) {
    captured.insert(captured.begin(), pub->ProcFrame());
  }
  const StackId stack = stacks_->Intern(captured);

  for (;;) {
    if (slot.acquisition_canceled.load(std::memory_order_acquire)) {
      slot.acquisition_canceled.store(false, std::memory_order_release);
      stats_.broken_acquisitions.fetch_add(1, std::memory_order_relaxed);
      if (pub != nullptr) {
        pub->ClearWait(thread, lock);
      }
      return RequestDecision::kBroken;
    }

    // Reentrant acquisition can never deadlock; skip avoidance (§6: a thread
    // re-entering a monitor returns immediately). An exclusive owner
    // re-requesting in any mode and a shared holder re-requesting shared are
    // reentrant; a shared holder requesting exclusive is an *upgrade* and
    // runs the full protocol — upgrade cycles are exactly the rwlock
    // deadlocks the engine must see. The thread's own holds live in its
    // slot, so this needs no lock-owner stripe round trip.
    bool reentrant = false;
    for (const ThreadSlot::Held& held : slot.held) {
      if (held.lock == lock) {
        reentrant = held.mode == AcquireMode::kExclusive || mode == AcquireMode::kShared;
        break;
      }
    }
    if (reentrant) {
      stats_.reentrant_acquisitions.fetch_add(1, std::memory_order_relaxed);
      return RequestDecision::kReentrant;
    }

    // Tentatively add the allow edge to the RAG cache (§5.4) — before the
    // fast reject, so two racing requesters cannot both miss each other.
    AddTuple(stack, AllowedTuple{thread, lock, false, mode});
    slot.pending_stack = stack;
    slot.pending_lock = lock;
    if (pub != nullptr) {
      pub->PublishWait(thread, lock, stack, mode);
    }

    std::optional<MatchResult> match;
    const bool skip_once = slot.skip_avoidance_once.exchange(false, std::memory_order_acq_rel);
    if (config_.stage == EngineStage::kFull && !skip_once) {
      const SigGen* gen = AcquireGenRef(slot);
      if (gen->version != history_->version()) {
        ReleaseGenRef(slot);
        RefreshGen();
        gen = AcquireGenRef(slot);
      }
      const bool yield_on_match = !config_.ignore_yield_decisions;
      bool need_epoch = false;
      if (config_.incremental_matcher) {
        // Decide from per-stripe snapshots; the hazard ref pins `gen` (and
        // its live counters) across the scan. The scan embeds the §5.6 fast
        // reject, so no separate plausibility pre-pass runs here.
        MatchResult fast;
        switch (TryMatchIncremental(thread, lock, stack, slot, yield_on_match, *gen, &fast)) {
          case FastMatchOutcome::kMatched:
            match = std::move(fast);
            break;
          case FastMatchOutcome::kNoMatch:
            break;
          case FastMatchOutcome::kFallback:
            need_epoch = true;
            break;
        }
      } else if (AnyInstantiationPlausible(*gen)) {
        need_epoch = true;
      }
      ReleaseGenRef(slot);
      if (need_epoch) {
        stats_.match_slow_path.fetch_add(1, std::memory_order_relaxed);
        match = MatchAndRetire(thread, lock, stack, slot, yield_on_match);
      }
      if (match.has_value() && yield_on_match &&
          yield_count_.load(std::memory_order_seq_cst) > 0) {
        // Our own allow edge was just retired (the YIELD flips it into a
        // request edge): any thread whose matched cover named it is parked
        // on an instantiation that no longer stands. Wake it to re-decide
        // now instead of riding out its yield timeout — spurious wakes are
        // harmless (the full request protocol reruns).
        WakeYieldersOf(thread, lock, stack);
      }
      if (pub != nullptr) {
        DIMMUNIX_LOG(kDebug) << "global request: thread " << thread << " lock " << lock
                             << " stack " << stack << " matched=" << match.has_value();
      }
    }

    if (!match.has_value() || config_.ignore_yield_decisions) {
      if (match.has_value()) {
        // Table 1's middle configuration: the decision is computed and
        // counted but not enforced. MatchAndRetire retired the allow edge;
        // restore it, since the thread proceeds to blocking on the lock.
        stats_.yields.fetch_add(1, std::memory_order_relaxed);
        AddTuple(stack, AllowedTuple{thread, lock, false, mode});
      }
      Event allow_ev;
      allow_ev.type = EventType::kAllow;
      allow_ev.thread = thread;
      allow_ev.lock = lock;
      allow_ev.stack = stack;
      allow_ev.mode = mode;
      BufferHotEvent(slot, std::move(allow_ev));
      stats_.gos.fetch_add(1, std::memory_order_relaxed);
      return RequestDecision::kGo;
    }

    // The kRequest event is only pushed on the yield path: for an immediate
    // GO the monitor-side RAG nets kRequest -> kAllow down to the kAllow
    // state anyway (same drain, same thread), so the uncontended fast path
    // skips the push. A parked thread, though, must be visible as waiting —
    // so the staged hot events (this thread's current holds) flush first,
    // keeping the RAG's view of the yielder complete and in order.
    FlushThreadEvents(slot);
    Event request_ev;
    request_ev.type = EventType::kRequest;
    request_ev.thread = thread;
    request_ev.lock = lock;
    request_ev.stack = stack;
    request_ev.mode = mode;
    queue_->Push(request_ev);

    Event yield_ev;
    yield_ev.type = EventType::kYield;
    yield_ev.thread = thread;
    yield_ev.lock = lock;
    yield_ev.stack = stack;
    yield_ev.mode = mode;
    yield_ev.causes = match->others;
    queue_->Push(yield_ev);

    Event avoided_ev;
    avoided_ev.type = EventType::kAvoided;
    avoided_ev.thread = thread;
    avoided_ev.lock = lock;
    avoided_ev.stack = stack;
    avoided_ev.mode = mode;
    avoided_ev.signature_index = match->signature_index;
    avoided_ev.match_depth = match->depth;
    avoided_ev.deepest_match_depth = match->deepest;
    avoided_ev.causes = match->others;
    avoided_ev.causes.push_back(YieldCause{thread, lock, stack, mode});
    queue_->Push(avoided_ev);

    history_->RecordAvoidance(match->signature_index);
    last_avoided_.store(match->signature_index, std::memory_order_relaxed);
    stats_.yields.fetch_add(1, std::memory_order_relaxed);
    // Cold path (one line per actual yield); the observable proof of
    // immunity for operators and the preload-smoke CI lane.
    DIMMUNIX_LOG(kInfo) << "avoidance: thread " << thread << " yields on lock " << lock
                        << " to dodge signature " << match->signature_index << " (depth "
                        << match->depth << ")";
    if (match->deepest >= stacks_->max_depth()) {
      stats_.depth_true_yields.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.depth_fp_yields.fetch_add(1, std::memory_order_relaxed);
    }

    if (pub != nullptr) {
      // Contention is one of the batching flush triggers: parking with our
      // wait edge still in the pending log would hide a forming
      // cross-process cycle from every peer for a full flush epoch.
      pub->FlushPending();
    }
    const std::uint64_t park_begin =
        recorder_ != nullptr && recorder_->timing() ? obs::NowNs() : 0;
    const int park_result = Park(slot, deadline);
    if (park_begin != 0) {
      const std::uint64_t park_end = obs::NowNs();
      const std::uint64_t park_ns = park_end - park_begin;
      recorder_->Latency(obs::HistoKind::kYieldDuration, park_ns);
      recorder_->Span(obs::TraceEventType::kYield, park_end, park_ns,
                      obs::SaturateAux(match->signature_index),
                      static_cast<std::uint8_t>(mode), static_cast<std::uint64_t>(lock));
    }

    UnregisterYield(thread, slot);

    Event wake_ev;
    wake_ev.type = EventType::kWake;
    wake_ev.thread = thread;
    wake_ev.lock = lock;
    wake_ev.stack = stack;
    wake_ev.mode = mode;
    queue_->Push(wake_ev);
    stats_.wakes.fetch_add(1, std::memory_order_relaxed);

    if (park_result == 1) {
      // §5.7: the system-wide bound on how long avoidance may hold a thread.
      stats_.yield_timeouts.fetch_add(1, std::memory_order_relaxed);
      history_->RecordAbort(match->signature_index);
      if (config_.auto_disable_aborts > 0 &&
          history_->Get(match->signature_index).abort_count >=
              static_cast<std::uint64_t>(config_.auto_disable_aborts)) {
        history_->SetDisabled(match->signature_index, true);
        stats_.signatures_disabled.fetch_add(1, std::memory_order_relaxed);
        NotifyHistoryChanged();
        DIMMUNIX_LOG(kWarn) << "signature " << match->signature_index
                            << " auto-disabled: too risky to avoid (abort bound reached)";
      }
      // Proceed despite the danger: the thread is released from the yield.
      AddTuple(stack, AllowedTuple{thread, lock, false, mode});
      slot.pending_stack = stack;
      slot.pending_lock = lock;
      Event allow_ev;
      allow_ev.type = EventType::kAllow;
      allow_ev.thread = thread;
      allow_ev.lock = lock;
      allow_ev.stack = stack;
      allow_ev.mode = mode;
      BufferHotEvent(slot, std::move(allow_ev));
      stats_.gos.fetch_add(1, std::memory_order_relaxed);
      return RequestDecision::kGo;
    }
    if (park_result == 2) {
      stats_.broken_acquisitions.fetch_add(1, std::memory_order_relaxed);
      if (pub != nullptr) {
        pub->ClearWait(thread, lock);
      }
      return RequestDecision::kBroken;
    }
    if (park_result == 3) {
      if (pub != nullptr) {
        pub->ClearWait(thread, lock);
      }
      return RequestDecision::kTimedOut;
    }
    // Woken (or starvation-broken): retry the request from scratch.
  }
}

RequestDecision AvoidanceEngine::RequestNonblocking(ThreadId thread, LockId lock,
                                                    AcquireMode mode) {
  ScopedEngineEntry entry;
  if (!config_.enabled || entry.nested()) {
    return RequestDecision::kGo;
  }
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  ThreadSlot& slot = registry_.Slot(thread);
  if (recorder_ != nullptr && recorder_->timing()) {
    slot.acquire_begin_ns = obs::NowNs();
  }
  GlobalEdgePublisher* pub = global_pub_.load(std::memory_order_acquire);
  if (pub != nullptr && !IsGlobalLockId(lock)) {
    pub = nullptr;
  }
  std::vector<Frame> captured = CaptureStack();
  if (pub != nullptr) {
    captured.insert(captured.begin(), pub->ProcFrame());
  }
  const StackId stack = stacks_->Intern(captured);

  bool reentrant = false;
  for (const ThreadSlot::Held& held : slot.held) {
    if (held.lock == lock) {
      reentrant = held.mode == AcquireMode::kExclusive || mode == AcquireMode::kShared;
      break;
    }
  }
  if (reentrant) {
    stats_.reentrant_acquisitions.fetch_add(1, std::memory_order_relaxed);
    return RequestDecision::kReentrant;  // caller resolves against lock kind
  }

  AddTuple(stack, AllowedTuple{thread, lock, false, mode});
  slot.pending_stack = stack;
  slot.pending_lock = lock;
  if (pub != nullptr) {
    pub->PublishWait(thread, lock, stack, mode);
  }

  if (config_.stage == EngineStage::kFull && !config_.ignore_yield_decisions) {
    const SigGen* gen = AcquireGenRef(slot);
    if (gen->version != history_->version()) {
      ReleaseGenRef(slot);
      RefreshGen();
      gen = AcquireGenRef(slot);
    }
    std::optional<MatchResult> match;
    bool need_epoch = false;
    if (config_.incremental_matcher) {
      MatchResult fast;
      switch (
          TryMatchIncremental(thread, lock, stack, slot, /*yield_on_match=*/false, *gen, &fast)) {
        case FastMatchOutcome::kMatched:
          match = std::move(fast);
          break;
        case FastMatchOutcome::kNoMatch:
          break;
        case FastMatchOutcome::kFallback:
          need_epoch = true;
          break;
      }
    } else if (AnyInstantiationPlausible(*gen)) {
      need_epoch = true;
    }
    ReleaseGenRef(slot);
    if (need_epoch) {
      stats_.match_slow_path.fetch_add(1, std::memory_order_relaxed);
      match = MatchAndRetire(thread, lock, stack, slot, /*yield_on_match=*/false);
    }
    if (match.has_value()) {
      stats_.yields.fetch_add(1, std::memory_order_relaxed);
      history_->RecordAvoidance(match->signature_index);
      last_avoided_.store(match->signature_index, std::memory_order_relaxed);
      // The kBusy answer permanently retires our allow edge; yielders whose
      // cover named it can re-decide now.
      if (yield_count_.load(std::memory_order_seq_cst) > 0) {
        WakeYieldersOf(thread, lock, stack);
      }
      if (pub != nullptr) {
        pub->ClearWait(thread, lock);
      }
      return RequestDecision::kBusy;  // refuse to enter the dangerous pattern
    }
  }

  Event allow_ev;
  allow_ev.type = EventType::kAllow;
  allow_ev.thread = thread;
  allow_ev.lock = lock;
  allow_ev.stack = stack;
  allow_ev.mode = mode;
  BufferHotEvent(slot, std::move(allow_ev));
  stats_.gos.fetch_add(1, std::memory_order_relaxed);
  return RequestDecision::kGo;
}

void AvoidanceEngine::Acquired(ThreadId thread, LockId lock, AcquireMode mode) {
  ScopedEngineEntry entry;
  if (!config_.enabled || entry.nested()) {
    return;
  }
  ThreadSlot& slot = registry_.Slot(thread);
  StackId stack = slot.pending_stack;
  bool already_holding = false;
  bool upgrade_retire = false;
  lock_owners_.WithStripe(lock, [&](auto& owners) {
    auto it = owners.find(lock);
    LockHolder* holder = it != owners.end() ? it->second.HolderFor(thread) : nullptr;
    if (holder != nullptr) {
      // Reentrant acquisition (exclusive re-lock or recursive shared hold).
      ++holder->count;
      stack = holder->stack;
      already_holding = true;
      if (mode == AcquireMode::kExclusive && it->second.mode == AcquireMode::kShared) {
        // A committed upgrade: the raw layer only grants exclusive over our
        // own shared hold when no other holder exists, so promote the entry
        // and retire the upgrade request's allow tuple — otherwise the owner
        // set stays kShared and the tuple lingers as a phantom allow edge.
        it->second.mode = AcquireMode::kExclusive;
        upgrade_retire = true;
      }
    } else if (it == owners.end()) {
      // First time this lock is seen: create its (permanent) entry.
      auto& info = owners[lock];
      info.mode = mode;
      info.holders.push_back(LockHolder{thread, stack, 1});
    } else if (mode == AcquireMode::kExclusive || it->second.holders.empty()) {
      // Free lock (released entries keep their map node and holder-vector
      // capacity as a tombstone, so the uncontended acquire/release cycle
      // never touches the allocator), or an exclusive grant (an exclusive
      // grant implies every previous holder is gone; replace defensively if
      // events raced).
      it->second.mode = mode;
      it->second.holders.clear();
      it->second.holders.push_back(LockHolder{thread, stack, 1});
    } else {
      // Additional shared holder joins the owner set.
      it->second.mode = AcquireMode::kShared;
      it->second.holders.push_back(LockHolder{thread, stack, 1});
    }
  });
  if (already_holding) {
    if (upgrade_retire && slot.pending_stack != kInvalidStackId) {
      RemoveTuple(slot.pending_stack, thread, lock, /*held=*/false);
    }
    for (auto& held : slot.held) {
      if (held.lock == lock) {
        ++held.count;
        if (upgrade_retire) {
          held.mode = AcquireMode::kExclusive;  // committed upgrade
        }
        break;
      }
    }
  } else {
    slot.held.push_back(ThreadSlot::Held{lock, stack, 1, mode});
    // Allow edge -> hold edge in the RAG cache.
    StackSlot* stack_slot = SlotFor(stack);
    SlotStripe& stripe = StripeOf(stack);
    std::lock_guard<SpinLock> guard(stripe.lock);
    bool found = false;
    for (auto& tuple : stack_slot->tuples) {
      if (tuple.thread == thread && tuple.lock == lock) {
        tuple.held = true;
        found = true;
        break;
      }
    }
    if (!found) {
      // Stage kInstrumentationOnly does not maintain tuples; kFull always
      // will have inserted one.
      if (config_.stage != EngineStage::kInstrumentationOnly) {
        AddTupleLocked(stripe, stack, stack_slot, AllowedTuple{thread, lock, true, mode});
      }
    }
  }
  if (GlobalEdgePublisher* pub = global_pub_.load(std::memory_order_acquire);
      pub != nullptr && IsGlobalLockId(lock)) {
    // Promotes the published wait row to a hold (reentrant holds bump the
    // row's count), making the acquisition visible fleet-wide.
    pub->PublishHold(thread, lock, stack, mode);
  }
  Event ev;
  ev.type = EventType::kAcquired;
  ev.thread = thread;
  ev.lock = lock;
  ev.stack = stack;
  ev.mode = mode;
  BufferHotEvent(slot, std::move(ev));
  stats_.acquisitions.fetch_add(1, std::memory_order_relaxed);
  if (slot.acquire_begin_ns != 0) {
    const std::uint64_t end_ns = obs::NowNs();
    const std::uint64_t latency_ns = end_ns - slot.acquire_begin_ns;
    slot.acquire_begin_ns = 0;
    if (recorder_ != nullptr) {
      recorder_->Latency(obs::HistoKind::kAcquireLatency, latency_ns);
      recorder_->Span(obs::TraceEventType::kAcquire, end_ns, latency_ns, /*aux=*/0,
                      static_cast<std::uint8_t>(mode), static_cast<std::uint64_t>(lock));
    }
  }
}

void AvoidanceEngine::WakeYieldersOf(ThreadId thread, LockId lock, StackId stack) {
  // Wake every thread whose yieldCause contains (thread, lock, stack) — the
  // Java version's yieldLock[Ti].notifyAll() (§6).
  std::lock_guard<SpinLock> yield_guard(yield_m_);
  for (ThreadId yielder : yielding_threads_) {
    ThreadSlot& yslot = registry_.Slot(yielder);
    bool matches = false;
    for (const YieldCause& cause : yslot.yield_causes) {
      if (cause.thread == thread && cause.lock == lock &&
          (cause.stack == stack || stack == kInvalidStackId)) {
        matches = true;
        break;
      }
    }
    if (matches) {
      std::lock_guard<std::mutex> park_guard(yslot.park_m);
      yslot.wake_pending = true;
      yslot.park_cv.notify_all();
    }
  }
}

void AvoidanceEngine::Release(ThreadId thread, LockId lock) {
  ScopedEngineEntry entry;
  if (!config_.enabled || entry.nested()) {
    return;
  }
  ThreadSlot& slot = registry_.Slot(thread);
  StackId stack = kInvalidStackId;
  AcquireMode mode = AcquireMode::kExclusive;
  bool final_release = false;
  lock_owners_.WithStripe(lock, [&](auto& owners) {
    auto it = owners.find(lock);
    if (it == owners.end()) {
      return;
    }
    LockOwnerInfo& info = it->second;
    mode = info.mode;
    if (LockHolder* holder = info.HolderFor(thread); holder != nullptr) {
      stack = holder->stack;
      if (--holder->count <= 0) {
        // This thread's hold ends (other shared holders may remain). A
        // fully-released entry stays in the map as a tombstone — every
        // reader treats empty holders as "free", and keeping the node (and
        // the holder vector's capacity) makes the next acquisition
        // allocation-free.
        final_release = true;
        info.holders.erase(info.holders.begin() + (holder - info.holders.data()));
      }
    }
  });
  for (auto it = slot.held.begin(); it != slot.held.end(); ++it) {
    if (it->lock == lock) {
      if (--it->count <= 0) {
        slot.held.erase(it);
      }
      break;
    }
  }
  if (GlobalEdgePublisher* pub = global_pub_.load(std::memory_order_acquire);
      pub != nullptr && IsGlobalLockId(lock) && stack != kInvalidStackId) {
    // Arena rows carry the reentrancy count, so every release of a held
    // global lock maps to one ClearHold; the row frees when the count hits
    // zero — exactly when final_release fires here.
    pub->ClearHold(thread, lock);
  }
  if (final_release) {
    RemoveTuple(stack, thread, lock, /*held=*/true);
    // Lock conditions changed in a way that could let yielders make
    // progress (§5.1: "Dimmunix reschedules the paused thread T whenever
    // lock conditions change"). yield_count_ lets the common no-yielders
    // case skip the yield-set lock: a yielder that matched our hold tuple
    // registered before we could remove that tuple (the match holds every
    // stripe), and the removal above synchronizes with its registration.
    if (yield_count_.load(std::memory_order_seq_cst) > 0) {
      WakeYieldersOf(thread, lock, stack);
    }
  }
  Event ev;
  ev.type = EventType::kRelease;
  ev.thread = thread;
  ev.lock = lock;
  ev.stack = stack;
  ev.mode = mode;
  BufferHotEvent(slot, std::move(ev));
  stats_.releases.fetch_add(1, std::memory_order_relaxed);
}

void AvoidanceEngine::CancelRequest(ThreadId thread, LockId lock, AcquireMode mode) {
  ScopedEngineEntry entry;
  if (!config_.enabled || entry.nested()) {
    return;
  }
  ThreadSlot& slot = registry_.Slot(thread);
  const StackId stack = slot.pending_stack;
  if (stack != kInvalidStackId) {
    RemoveTuple(stack, thread, lock, /*held=*/false);
    // A canceled request retires an allow edge other yielders may have
    // matched; let them re-decide instead of waiting out their timeout.
    if (yield_count_.load(std::memory_order_seq_cst) > 0) {
      WakeYieldersOf(thread, lock, stack);
    }
  }
  if (GlobalEdgePublisher* pub = global_pub_.load(std::memory_order_acquire);
      pub != nullptr && IsGlobalLockId(lock)) {
    pub->ClearWait(thread, lock);
  }
  Event ev;
  ev.type = EventType::kCancel;
  ev.thread = thread;
  ev.lock = lock;
  ev.stack = stack;
  ev.mode = mode;
  BufferHotEvent(slot, std::move(ev));
  stats_.trylock_cancels.fetch_add(1, std::memory_order_relaxed);
  if (slot.acquire_begin_ns != 0) {
    const std::uint64_t end_ns = obs::NowNs();
    const std::uint64_t latency_ns = end_ns - slot.acquire_begin_ns;
    slot.acquire_begin_ns = 0;
    if (recorder_ != nullptr && recorder_->tracing()) {
      recorder_->Span(obs::TraceEventType::kAcquireCancel, end_ns, latency_ns, /*aux=*/0,
                      static_cast<std::uint8_t>(mode), static_cast<std::uint64_t>(lock));
    }
  }
}

void AvoidanceEngine::BreakYield(ThreadId thread) {
  if (!registry_.Contains(thread)) {
    return;  // synthetic/stale id from the event stream
  }
  ThreadSlot& slot = registry_.Slot(thread);
  slot.skip_avoidance_once.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> park_guard(slot.park_m);
  slot.wake_pending = true;
  slot.park_cv.notify_all();
}

void AvoidanceEngine::CancelAcquisition(ThreadId thread) {
  if (!registry_.Contains(thread)) {
    return;  // synthetic/stale id from the event stream
  }
  ThreadSlot& slot = registry_.Slot(thread);
  slot.acquisition_canceled.store(true, std::memory_order_release);
  // The victim may be blocked in the raw mutex (canceler registered by the
  // sync layer) or parked in a yield (woken via its parking lot; Park
  // re-checks the canceled flag without consuming a wake).
  std::function<void()> canceler;
  {
    std::lock_guard<std::mutex> guard(slot.canceler_m);
    canceler = slot.acquisition_canceler;
  }
  if (canceler) {
    canceler();
  }
  {
    std::lock_guard<std::mutex> park_guard(slot.park_m);
    slot.park_cv.notify_all();
  }
}

void AvoidanceEngine::NotifyHistoryChanged() {
  RefreshGen();
}

// --- Hot-event staging -------------------------------------------------------

void AvoidanceEngine::BufferHotEvent(ThreadSlot& slot, Event&& ev) {
  bool flush = false;
  {
    std::lock_guard<SpinLock> guard(slot.ev_m);
    if (coalesce_events_.load(std::memory_order_relaxed)) {
      auto& buf = slot.ev_buf;
      const std::size_t n = buf.size();
      // An uncontended critical section stages allow -> acquired -> release
      // of the same lock back to back; the triple is a RAG no-op, so it
      // cancels here and the monitor queue never sees it. Same for the
      // trylock-miss pair allow -> cancel. The match must cover the whole
      // in-buffer prefix of the exchange: if the allow already flushed, the
      // later events must flush too or the RAG would keep a stale edge.
      if (ev.type == EventType::kRelease && n >= 2 &&
          buf[n - 1].type == EventType::kAcquired && buf[n - 1].lock == ev.lock &&
          buf[n - 2].type == EventType::kAllow && buf[n - 2].lock == ev.lock) {
        buf.pop_back();
        buf.pop_back();
        return;
      }
      if (ev.type == EventType::kCancel && n >= 1 &&
          buf[n - 1].type == EventType::kAllow && buf[n - 1].lock == ev.lock) {
        buf.pop_back();
        return;
      }
    }
    // Stamp at buffering time, INSIDE ev_m (coalesced-away events above
    // need no stamp): the monitor re-sorts its drain batch by seq, so
    // staged events interleave with directly-pushed ones (and with other
    // threads' staged events) in true emission order — without the seq, a
    // buffered acquired(L) could drain after another thread's later
    // acquired(L) and displace the live holder in the RAG. Stamping under
    // the same lock FlushAllThreadEvents takes per slot guarantees the
    // sweep can never miss an already-stamped event (a thread preempted
    // between stamp and push would otherwise hold a low seq hostage into a
    // later batch, past where stable_sort can restore order). Events
    // stamped after the sweep passes a slot drain one tick later; that
    // one-tick convergence window is inherent to staging, and the RAG's
    // additive kAcquired handling absorbs it.
    ev.seq = queue_->Stamp();
    slot.ev_buf.push_back(std::move(ev));
    flush = slot.ev_buf.size() >= kEventBufCap;
  }
  if (flush) {
    FlushThreadEvents(slot);
  }
}

void AvoidanceEngine::FlushThreadEvents(ThreadSlot& slot) {
  std::lock_guard<SpinLock> guard(slot.ev_m);
  for (Event& ev : slot.ev_buf) {
    queue_->PushStamped(std::move(ev));
  }
  slot.ev_buf.clear();
}

void AvoidanceEngine::FlushAllThreadEvents() {
  const std::size_t n = registry_.size();
  for (std::size_t i = 0; i < n; ++i) {
    FlushThreadEvents(registry_.Slot(static_cast<ThreadId>(i)));
  }
}

// --- Foreign-edge mirror (src/ipc bridge thread) -----------------------------
//
// These reproduce the tuple/owner-map/event effects of Request-allow,
// Cancel, Acquired, and Release for a thread that lives in another process.
// They never touch the ThreadRegistry: foreign ids (>= kForeignThreadBase)
// have no slot, and every monitor-side path already guards slot access with
// registry().Contains().

void AvoidanceEngine::MirrorForeignWait(ThreadId thread, LockId lock, StackId stack,
                                        AcquireMode mode) {
  ScopedEngineEntry entry;
  if (!config_.enabled || entry.nested() ||
      config_.stage == EngineStage::kInstrumentationOnly) {
    return;
  }
  AddTuple(stack, AllowedTuple{thread, lock, false, mode});
  DIMMUNIX_LOG(kDebug) << "foreign wait: thread " << thread << " lock " << lock << " stack "
                       << stack << " (" << stacks_->Describe(stack) << ")";
  Event ev;
  ev.type = EventType::kAllow;
  ev.thread = thread;
  ev.lock = lock;
  ev.stack = stack;
  ev.mode = mode;
  queue_->Push(ev);
}

void AvoidanceEngine::MirrorForeignWaitEnd(ThreadId thread, LockId lock, StackId stack,
                                           AcquireMode mode) {
  ScopedEngineEntry entry;
  if (!config_.enabled || entry.nested() ||
      config_.stage == EngineStage::kInstrumentationOnly) {
    return;
  }
  RemoveTuple(stack, thread, lock, /*held=*/false);
  // A withdrawn foreign wait dissolves any local instantiation built on it.
  if (yield_count_.load(std::memory_order_seq_cst) > 0) {
    WakeYieldersOf(thread, lock, stack);
  }
  Event ev;
  ev.type = EventType::kCancel;
  ev.thread = thread;
  ev.lock = lock;
  ev.stack = stack;
  ev.mode = mode;
  queue_->Push(ev);
}

void AvoidanceEngine::MirrorForeignHold(ThreadId thread, LockId lock, StackId stack,
                                        AcquireMode mode) {
  ScopedEngineEntry entry;
  if (!config_.enabled || entry.nested() ||
      config_.stage == EngineStage::kInstrumentationOnly) {
    return;
  }
  bool already_holding = false;
  lock_owners_.WithStripe(lock, [&](auto& owners) {
    auto it = owners.find(lock);
    LockHolder* holder = it != owners.end() ? it->second.HolderFor(thread) : nullptr;
    if (holder != nullptr) {
      ++holder->count;
      already_holding = true;
      if (mode == AcquireMode::kExclusive) {
        it->second.mode = AcquireMode::kExclusive;
      }
    } else if (it == owners.end()) {
      auto& info = owners[lock];
      info.mode = mode;
      info.holders.push_back(LockHolder{thread, stack, 1});
    } else if (it->second.holders.empty()) {
      // Tombstone of a fully released lock: reuse it as a free entry.
      it->second.mode = mode;
      it->second.holders.push_back(LockHolder{thread, stack, 1});
    } else {
      // Unlike Acquired(), a foreign edge must NEVER displace existing
      // holders: this snapshot can be one bridge tick stale, and a local
      // thread may have legitimately acquired the lock in between —
      // dropping its holder record would orphan its arena row and leave a
      // phantom hold fleet-wide. Join the holder set and leave the
      // recorded mode to the standing holders (each holder is retired
      // individually by its own release).
      it->second.holders.push_back(LockHolder{thread, stack, 1});
    }
  });
  if (!already_holding) {
    // Flip a standing foreign wait tuple into a hold, or add a fresh one —
    // the same allow -> hold transition Acquired() performs locally.
    StackSlot* stack_slot = SlotFor(stack);
    SlotStripe& stripe = StripeOf(stack);
    std::lock_guard<SpinLock> guard(stripe.lock);
    bool found = false;
    for (auto& tuple : stack_slot->tuples) {
      if (tuple.thread == thread && tuple.lock == lock) {
        tuple.held = true;
        found = true;
        break;
      }
    }
    if (!found) {
      AddTupleLocked(stripe, stack, stack_slot, AllowedTuple{thread, lock, true, mode});
    }
  }
  DIMMUNIX_LOG(kDebug) << "foreign hold: thread " << thread << " lock " << lock << " stack "
                       << stack << " (" << stacks_->Describe(stack) << ")";
  Event ev;
  ev.type = EventType::kAcquired;
  ev.thread = thread;
  ev.lock = lock;
  ev.stack = stack;
  ev.mode = mode;
  queue_->Push(ev);
}

void AvoidanceEngine::MirrorForeignRelease(ThreadId thread, LockId lock, StackId stack,
                                           AcquireMode mode) {
  ScopedEngineEntry entry;
  if (!config_.enabled || entry.nested() ||
      config_.stage == EngineStage::kInstrumentationOnly) {
    return;
  }
  bool final_release = false;
  lock_owners_.WithStripe(lock, [&](auto& owners) {
    auto it = owners.find(lock);
    if (it == owners.end()) {
      return;
    }
    if (LockHolder* holder = it->second.HolderFor(thread); holder != nullptr) {
      if (--holder->count <= 0) {
        final_release = true;
        it->second.holders.erase(it->second.holders.begin() +
                                 (holder - it->second.holders.data()));
        // Empty entries stay as tombstones, same as local Release().
      }
    }
  });
  if (final_release) {
    RemoveTuple(stack, thread, lock, /*held=*/true);
    // A foreign release changes lock conditions exactly like a local one:
    // yielders whose causes name this foreign hold can retry now. This is
    // the wake-up that lets a process resume once the peer it dodged has
    // finished its critical section.
    if (yield_count_.load(std::memory_order_seq_cst) > 0) {
      WakeYieldersOf(thread, lock, stack);
    }
  }
  Event ev;
  ev.type = EventType::kRelease;
  ev.thread = thread;
  ev.lock = lock;
  ev.stack = stack;
  ev.mode = mode;
  queue_->Push(ev);
}

int AvoidanceEngine::Park(ThreadSlot& slot, std::optional<MonoTime> deadline) {
  std::unique_lock<std::mutex> park_guard(slot.park_m);
  MonoTime bound = Now() + config_.yield_timeout;
  bool deadline_is_nearest = false;
  if (deadline.has_value() && *deadline < bound) {
    bound = *deadline;
    deadline_is_nearest = true;
  }
  while (!slot.wake_pending) {
    if (slot.acquisition_canceled.load(std::memory_order_acquire)) {
      slot.acquisition_canceled.store(false, std::memory_order_release);
      return 2;
    }
    if (slot.park_cv.wait_until(park_guard, bound) == std::cv_status::timeout) {
      if (!slot.wake_pending) {
        return deadline_is_nearest ? 3 : 1;
      }
      break;
    }
  }
  slot.wake_pending = false;
  return 0;
}

ThreadId AvoidanceEngine::LockOwner(LockId lock) const {
  auto* self = const_cast<AvoidanceEngine*>(this);
  return self->lock_owners_.WithStripe(lock, [&](auto& owners) {
    auto it = owners.find(lock);
    return (it == owners.end() || it->second.mode != AcquireMode::kExclusive ||
            it->second.holders.empty())
               ? kInvalidThreadId
               : it->second.holders.front().thread;
  });
}

bool AvoidanceEngine::HoldsLock(ThreadId thread, LockId lock) const {
  auto* self = const_cast<AvoidanceEngine*>(this);
  return self->lock_owners_.WithStripe(lock, [&](auto& owners) {
    auto it = owners.find(lock);
    return it != owners.end() && it->second.HolderFor(thread) != nullptr;
  });
}

std::size_t AvoidanceEngine::SharedHolderCount(LockId lock) const {
  auto* self = const_cast<AvoidanceEngine*>(this);
  return self->lock_owners_.WithStripe(lock, [&](auto& owners) {
    auto it = owners.find(lock);
    return (it == owners.end() || it->second.mode != AcquireMode::kShared)
               ? std::size_t{0}
               : it->second.holders.size();
  });
}

std::size_t AvoidanceEngine::AllowedCount(StackId id) const {
  auto* self = const_cast<AvoidanceEngine*>(this);
  if (static_cast<std::size_t>(id) >= self->stack_slots_.size()) {
    return 0;
  }
  StackSlot* slot = self->stack_slots_.Get(static_cast<std::size_t>(id));
  SlotStripe& stripe = self->StripeOf(id);
  std::lock_guard<SpinLock> guard(stripe.lock);
  return slot->tuples.size();
}

EngineView AvoidanceEngine::Snapshot() {
  const ThreadId me = registry_.RegisterCurrentThread();
  EngineView view;
  view.stripes = stripe_count();
  {
    SlotEpochGuard epoch(*this, me);
    view.signature_generation = CurrentGen()->version;
    for (std::size_t s = 0; s <= slot_stripe_mask_; ++s) {
      view.live_stacks += slot_stripes_[s].live.size();
      for (const StackId id : slot_stripes_[s].live) {
        view.allowed_tuples += stack_slots_.Get(static_cast<std::size_t>(id))->tuples.size();
      }
    }
    StripedMap<LockId, LockOwnerInfo>::AllStripesGuard owners(lock_owners_);
    for (std::size_t s = 0; s < lock_owners_.stripe_count(); ++s) {
      // Fully released locks linger as empty tombstone entries; only count
      // entries that currently have holders.
      for (const auto& [id, info] : lock_owners_.map_at(s)) {
        if (!info.holders.empty()) {
          ++view.tracked_locks;
        }
      }
    }
  }
  view.yielding_threads = static_cast<std::size_t>(
      std::max(0, yield_count_.load(std::memory_order_seq_cst)));
  return view;
}

}  // namespace dimmunix
