// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/core/avoidance.h"

#include <algorithm>
#include <cassert>

#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/stack/capture.h"

namespace dimmunix {

AvoidanceEngine::AvoidanceEngine(const Config& config, StackTable* stacks, History* history,
                                 EventQueue* queue)
    : config_(config),
      stacks_(stacks),
      history_(history),
      queue_(queue),
      use_peterson_(config.use_peterson_guard),
      peterson_guard_(static_cast<std::size_t>(std::max(2, config.peterson_slots))) {
  stacks_->AddNewStackObserver([this](const StackEntry& entry) { OnNewStack(entry); });
}

void AvoidanceEngine::GuardLock(ThreadId thread) {
  if (use_peterson_) {
    assert(static_cast<std::size_t>(thread) < peterson_guard_.slots() &&
           "peterson guard requires thread ids < peterson_slots");
    peterson_guard_.Lock(static_cast<std::size_t>(thread));
  } else {
    spin_guard_.Lock();
  }
}

void AvoidanceEngine::GuardUnlock(ThreadId thread) {
  if (use_peterson_) {
    peterson_guard_.Unlock(static_cast<std::size_t>(thread));
  } else {
    spin_guard_.Unlock();
  }
}

AvoidanceEngine::StackSlot& AvoidanceEngine::SlotFor(StackId id) {
  while (stack_slots_.size() <= static_cast<std::size_t>(id)) {
    stack_slots_.emplace_back();
  }
  return stack_slots_[static_cast<std::size_t>(id)];
}

void AvoidanceEngine::RemoveTuple(StackId stack, ThreadId thread, LockId lock, bool held) {
  // Prefer the edge kind being retired: during an upgrade a thread can have
  // both a shared hold tuple and an exclusive allow tuple for the same lock
  // in the same slot, and retiring the wrong one would corrupt matching.
  auto& tuples = SlotFor(stack).tuples;
  auto fallback = tuples.end();
  for (auto it = tuples.begin(); it != tuples.end(); ++it) {
    if (it->thread == thread && it->lock == lock) {
      if (it->held == held) {
        tuples.erase(it);
        return;
      }
      if (fallback == tuples.end()) {
        fallback = it;
      }
    }
  }
  if (fallback != tuples.end()) {
    tuples.erase(fallback);
  }
}

void AvoidanceEngine::RefreshSigCacheLocked() {
  const std::uint64_t version = history_->version();
  if (version == cached_history_version_) {
    return;
  }
  cached_history_version_ = version;
  sig_cache_.clear();
  history_->ForEach([this](int index, const Signature& sig) {
    if (sig.disabled) {
      return;
    }
    SigCacheEntry entry;
    entry.index = index;
    entry.depth = sig.match_depth;
    entry.sig_stacks = sig.stacks;
    entry.candidates.resize(sig.stacks.size());
    sig_cache_.push_back(std::move(entry));
  });
  // Resolve candidates outside the History lock (MatchingAtDepth takes the
  // stack-table lock).
  for (SigCacheEntry& entry : sig_cache_) {
    for (std::size_t j = 0; j < entry.sig_stacks.size(); ++j) {
      entry.candidates[j] = stacks_->MatchingAtDepth(entry.sig_stacks[j], entry.depth);
    }
  }
}

void AvoidanceEngine::OnNewStack(const StackEntry& entry) {
  // Called by StackTable::Intern (no table lock held). Keep per-signature
  // candidate lists incremental so matching stays O(1) in the number of
  // interned stacks.
  GuardLock(registry_.RegisterCurrentThread());
  for (SigCacheEntry& sig : sig_cache_) {
    for (std::size_t j = 0; j < sig.sig_stacks.size(); ++j) {
      if (stacks_->MatchesAtDepth(entry.id, sig.sig_stacks[j], sig.depth)) {
        auto& cands = sig.candidates[j];
        if (std::find(cands.begin(), cands.end(), entry.id) == cands.end()) {
          cands.push_back(entry.id);
        }
      }
    }
  }
  GuardUnlock(registry_.RegisterCurrentThread());
}

bool AvoidanceEngine::CoverPositions(const SigCacheEntry& sig, std::size_t pos,
                                     std::vector<AllowedTuple>& chosen,
                                     std::vector<StackId>& chosen_stacks,
                                     std::unordered_set<ThreadId>& used_threads,
                                     UsedLocks& used_locks, ThreadId requester, LockId req_lock,
                                     bool& requester_used) {
  if (pos == sig.sig_stacks.size()) {
    return requester_used;  // a valid instance must include the new allow edge
  }
  // Prune: if the requester has not been placed yet and no remaining
  // position could take it, this branch can still succeed only via later
  // positions — handled naturally by the recursion.
  for (StackId candidate : sig.candidates[pos]) {
    const auto& tuples = SlotFor(candidate).tuples;
    for (const AllowedTuple& tuple : tuples) {
      if (used_threads.count(tuple.thread) > 0 || !used_locks.CanUse(tuple.lock, tuple.mode)) {
        continue;
      }
      const bool is_requester = (tuple.thread == requester && tuple.lock == req_lock);
      used_threads.insert(tuple.thread);
      used_locks.Push(tuple.lock, tuple.mode);
      chosen.push_back(tuple);
      chosen_stacks.push_back(candidate);
      if (is_requester) {
        requester_used = true;
      }
      if (CoverPositions(sig, pos + 1, chosen, chosen_stacks, used_threads, used_locks, requester,
                         req_lock, requester_used)) {
        return true;
      }
      if (is_requester) {
        requester_used = false;
      }
      chosen.pop_back();
      chosen_stacks.pop_back();
      used_threads.erase(tuple.thread);
      used_locks.Pop(tuple.lock);
    }
  }
  return false;
}

std::optional<AvoidanceEngine::MatchResult> AvoidanceEngine::FindInstantiation(ThreadId thread,
                                                                               LockId lock,
                                                                               StackId stack) {
  (void)stack;  // the tentative tuple is already present in the Allowed sets
  RefreshSigCacheLocked();
  for (const SigCacheEntry& sig : sig_cache_) {
    // Fast reject (§5.6): "in most cases, at least one of these sets is
    // empty, meaning there is no thread holding a lock in that stack
    // configuration, so the signature is not instantiated."
    bool possible = true;
    for (std::size_t j = 0; j < sig.sig_stacks.size(); ++j) {
      bool any = false;
      for (StackId candidate : sig.candidates[j]) {
        if (!SlotFor(candidate).tuples.empty()) {
          any = true;
          break;
        }
      }
      if (!any) {
        possible = false;
        break;
      }
    }
    if (!possible) {
      continue;
    }
    std::vector<AllowedTuple> chosen;
    std::vector<StackId> chosen_stacks;
    std::unordered_set<ThreadId> used_threads;
    UsedLocks used_locks;
    bool requester_used = false;
    if (!CoverPositions(sig, 0, chosen, chosen_stacks, used_threads, used_locks, thread, lock,
                        requester_used)) {
      continue;
    }
    MatchResult result;
    result.signature_index = sig.index;
    result.depth = sig.depth;
    // Deepest depth at which this same cover still matches — used by the
    // calibration fast-path (§5.5).
    int deepest = stacks_->max_depth();
    for (std::size_t j = 0; j < chosen.size(); ++j) {
      deepest = std::min(deepest,
                         stacks_->DeepestMatchDepth(chosen_stacks[j], sig.sig_stacks[j]));
    }
    result.deepest = std::max(deepest, sig.depth);
    for (std::size_t j = 0; j < chosen.size(); ++j) {
      if (chosen[j].thread == thread && chosen[j].lock == lock) {
        continue;  // the requester itself
      }
      result.others.push_back(
          YieldCause{chosen[j].thread, chosen[j].lock, chosen_stacks[j], chosen[j].mode});
    }
    return result;
  }
  return std::nullopt;
}

RequestDecision AvoidanceEngine::Request(ThreadId thread, LockId lock, AcquireMode mode,
                                         std::optional<MonoTime> deadline) {
  if (!config_.enabled) {
    return RequestDecision::kGo;
  }
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  ThreadSlot& slot = registry_.Slot(thread);

  if (config_.stage == EngineStage::kInstrumentationOnly) {
    // Figure 8 stage 1: intercept + capture + events only.
    const StackId stack = stacks_->Intern(CaptureStack());
    slot.pending_stack = stack;
    slot.pending_lock = lock;
    Event ev;
    ev.type = EventType::kAllow;
    ev.thread = thread;
    ev.lock = lock;
    ev.stack = stack;
    ev.mode = mode;
    queue_->Push(ev);
    stats_.gos.fetch_add(1, std::memory_order_relaxed);
    return RequestDecision::kGo;
  }

  const StackId stack = stacks_->Intern(CaptureStack());

  for (;;) {
    if (slot.acquisition_canceled.load(std::memory_order_acquire)) {
      slot.acquisition_canceled.store(false, std::memory_order_release);
      stats_.broken_acquisitions.fetch_add(1, std::memory_order_relaxed);
      return RequestDecision::kBroken;
    }

    GuardLock(thread);

    // Reentrant acquisition can never deadlock; skip avoidance (§6: a thread
    // re-entering a monitor returns immediately). An exclusive owner
    // re-requesting in any mode and a shared holder re-requesting shared are
    // reentrant; a shared holder requesting exclusive is an *upgrade* and
    // runs the full protocol — upgrade cycles are exactly the rwlock
    // deadlocks the engine must see.
    auto owner_it = lock_owners_.find(lock);
    if (owner_it != lock_owners_.end() && owner_it->second.HolderFor(thread) != nullptr &&
        (owner_it->second.mode == AcquireMode::kExclusive || mode == AcquireMode::kShared)) {
      GuardUnlock(thread);
      stats_.reentrant_acquisitions.fetch_add(1, std::memory_order_relaxed);
      return RequestDecision::kReentrant;
    }

    Event request_ev;
    request_ev.type = EventType::kRequest;
    request_ev.thread = thread;
    request_ev.lock = lock;
    request_ev.stack = stack;
    request_ev.mode = mode;
    queue_->Push(request_ev);

    // Tentatively add the allow edge to the RAG cache (§5.4).
    SlotFor(stack).tuples.push_back(AllowedTuple{thread, lock, false, mode});
    slot.pending_stack = stack;
    slot.pending_lock = lock;

    std::optional<MatchResult> match;
    if (config_.stage == EngineStage::kFull && !slot.skip_avoidance_once) {
      match = FindInstantiation(thread, lock, stack);
    }

    if (!match.has_value() || config_.ignore_yield_decisions) {
      if (match.has_value()) {
        // Table 1's middle configuration: the decision is computed and
        // counted but not enforced.
        stats_.yields.fetch_add(1, std::memory_order_relaxed);
      }
      slot.skip_avoidance_once = false;
      // Keep the allow edge; drop any yield edges we still carried (§5.4).
      if (slot.yielding) {
        slot.yielding = false;
        slot.yield_causes.clear();
        yielding_threads_.erase(thread);
      }
      GuardUnlock(thread);
      Event allow_ev;
      allow_ev.type = EventType::kAllow;
      allow_ev.thread = thread;
      allow_ev.lock = lock;
      allow_ev.stack = stack;
      allow_ev.mode = mode;
      queue_->Push(allow_ev);
      stats_.gos.fetch_add(1, std::memory_order_relaxed);
      return RequestDecision::kGo;
    }

    // YIELD: flip the allow edge into a request edge and pause (§5.4).
    RemoveTuple(stack, thread, lock, /*held=*/false);
    slot.yielding = true;
    slot.yield_causes = match->others;
    yielding_threads_.insert(thread);
    {
      std::lock_guard<std::mutex> park_guard(slot.park_m);
      slot.wake_pending = false;
    }
    GuardUnlock(thread);

    Event yield_ev;
    yield_ev.type = EventType::kYield;
    yield_ev.thread = thread;
    yield_ev.lock = lock;
    yield_ev.stack = stack;
    yield_ev.mode = mode;
    yield_ev.causes = match->others;
    queue_->Push(yield_ev);

    Event avoided_ev;
    avoided_ev.type = EventType::kAvoided;
    avoided_ev.thread = thread;
    avoided_ev.lock = lock;
    avoided_ev.stack = stack;
    avoided_ev.mode = mode;
    avoided_ev.signature_index = match->signature_index;
    avoided_ev.match_depth = match->depth;
    avoided_ev.deepest_match_depth = match->deepest;
    avoided_ev.causes = match->others;
    avoided_ev.causes.push_back(YieldCause{thread, lock, stack, mode});
    queue_->Push(avoided_ev);

    history_->RecordAvoidance(match->signature_index);
    last_avoided_.store(match->signature_index, std::memory_order_relaxed);
    stats_.yields.fetch_add(1, std::memory_order_relaxed);
    if (match->deepest >= stacks_->max_depth()) {
      stats_.depth_true_yields.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.depth_fp_yields.fetch_add(1, std::memory_order_relaxed);
    }

    const int park_result = Park(slot, deadline);

    GuardLock(thread);
    slot.yielding = false;
    slot.yield_causes.clear();
    yielding_threads_.erase(thread);
    GuardUnlock(thread);

    Event wake_ev;
    wake_ev.type = EventType::kWake;
    wake_ev.thread = thread;
    wake_ev.lock = lock;
    wake_ev.stack = stack;
    wake_ev.mode = mode;
    queue_->Push(wake_ev);
    stats_.wakes.fetch_add(1, std::memory_order_relaxed);

    if (park_result == 1) {
      // §5.7: the system-wide bound on how long avoidance may hold a thread.
      stats_.yield_timeouts.fetch_add(1, std::memory_order_relaxed);
      history_->RecordAbort(match->signature_index);
      if (config_.auto_disable_aborts > 0 &&
          history_->Get(match->signature_index).abort_count >=
              static_cast<std::uint64_t>(config_.auto_disable_aborts)) {
        history_->SetDisabled(match->signature_index, true);
        stats_.signatures_disabled.fetch_add(1, std::memory_order_relaxed);
        NotifyHistoryChanged();
        DIMMUNIX_LOG(kWarn) << "signature " << match->signature_index
                            << " auto-disabled: too risky to avoid (abort bound reached)";
      }
      // Proceed despite the danger: the thread is released from the yield.
      GuardLock(thread);
      SlotFor(stack).tuples.push_back(AllowedTuple{thread, lock, false, mode});
      slot.pending_stack = stack;
      slot.pending_lock = lock;
      GuardUnlock(thread);
      Event allow_ev;
      allow_ev.type = EventType::kAllow;
      allow_ev.thread = thread;
      allow_ev.lock = lock;
      allow_ev.stack = stack;
      allow_ev.mode = mode;
      queue_->Push(allow_ev);
      stats_.gos.fetch_add(1, std::memory_order_relaxed);
      return RequestDecision::kGo;
    }
    if (park_result == 2) {
      stats_.broken_acquisitions.fetch_add(1, std::memory_order_relaxed);
      return RequestDecision::kBroken;
    }
    if (park_result == 3) {
      return RequestDecision::kTimedOut;
    }
    // Woken (or starvation-broken): retry the request from scratch.
  }
}

RequestDecision AvoidanceEngine::RequestNonblocking(ThreadId thread, LockId lock,
                                                    AcquireMode mode) {
  if (!config_.enabled) {
    return RequestDecision::kGo;
  }
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  ThreadSlot& slot = registry_.Slot(thread);
  const StackId stack = stacks_->Intern(CaptureStack());

  GuardLock(thread);
  auto owner_it = lock_owners_.find(lock);
  if (owner_it != lock_owners_.end() && owner_it->second.HolderFor(thread) != nullptr &&
      (owner_it->second.mode == AcquireMode::kExclusive || mode == AcquireMode::kShared)) {
    GuardUnlock(thread);
    stats_.reentrant_acquisitions.fetch_add(1, std::memory_order_relaxed);
    return RequestDecision::kReentrant;  // caller resolves against lock kind
  }
  SlotFor(stack).tuples.push_back(AllowedTuple{thread, lock, false, mode});
  slot.pending_stack = stack;
  slot.pending_lock = lock;
  std::optional<MatchResult> match;
  if (config_.stage == EngineStage::kFull) {
    match = FindInstantiation(thread, lock, stack);
  }
  if (match.has_value() && !config_.ignore_yield_decisions) {
    RemoveTuple(stack, thread, lock, /*held=*/false);
    GuardUnlock(thread);
    stats_.yields.fetch_add(1, std::memory_order_relaxed);
    history_->RecordAvoidance(match->signature_index);
    last_avoided_.store(match->signature_index, std::memory_order_relaxed);
    return RequestDecision::kBusy;  // refuse to enter the dangerous pattern
  }
  GuardUnlock(thread);
  Event allow_ev;
  allow_ev.type = EventType::kAllow;
  allow_ev.thread = thread;
  allow_ev.lock = lock;
  allow_ev.stack = stack;
  allow_ev.mode = mode;
  queue_->Push(allow_ev);
  stats_.gos.fetch_add(1, std::memory_order_relaxed);
  return RequestDecision::kGo;
}

void AvoidanceEngine::Acquired(ThreadId thread, LockId lock, AcquireMode mode) {
  if (!config_.enabled) {
    return;
  }
  ThreadSlot& slot = registry_.Slot(thread);
  GuardLock(thread);
  auto owner_it = lock_owners_.find(lock);
  StackId stack = slot.pending_stack;
  LockHolder* holder =
      owner_it != lock_owners_.end() ? owner_it->second.HolderFor(thread) : nullptr;
  if (holder != nullptr) {
    // Reentrant acquisition (exclusive re-lock or recursive shared hold).
    ++holder->count;
    stack = holder->stack;
    if (mode == AcquireMode::kExclusive && owner_it->second.mode == AcquireMode::kShared) {
      // A committed upgrade: the raw layer only grants exclusive over our
      // own shared hold when no other holder exists, so promote the entry
      // and retire the upgrade request's allow tuple — otherwise the owner
      // set stays kShared and the tuple lingers as a phantom allow edge.
      owner_it->second.mode = AcquireMode::kExclusive;
      if (slot.pending_stack != kInvalidStackId) {
        RemoveTuple(slot.pending_stack, thread, lock, /*held=*/false);
      }
    }
    for (auto& held : slot.held) {
      if (held.lock == lock) {
        ++held.count;
        break;
      }
    }
  } else {
    if (owner_it == lock_owners_.end() || mode == AcquireMode::kExclusive) {
      // Free lock, or an exclusive grant (an exclusive grant implies every
      // previous holder is gone; replace defensively if events raced).
      lock_owners_[lock] = LockOwnerInfo{mode, {LockHolder{thread, stack, 1}}};
    } else {
      // Additional shared holder joins the owner set.
      owner_it->second.mode = AcquireMode::kShared;
      owner_it->second.holders.push_back(LockHolder{thread, stack, 1});
    }
    slot.held.push_back(ThreadSlot::Held{lock, stack, 1});
    // Allow edge -> hold edge in the RAG cache.
    auto& tuples = SlotFor(stack).tuples;
    bool found = false;
    for (auto& tuple : tuples) {
      if (tuple.thread == thread && tuple.lock == lock) {
        tuple.held = true;
        found = true;
        break;
      }
    }
    if (!found) {
      // Stage kInstrumentationOnly does not maintain tuples; kFull always
      // will have inserted one.
      if (config_.stage != EngineStage::kInstrumentationOnly) {
        tuples.push_back(AllowedTuple{thread, lock, true, mode});
      }
    }
  }
  GuardUnlock(thread);
  Event ev;
  ev.type = EventType::kAcquired;
  ev.thread = thread;
  ev.lock = lock;
  ev.stack = stack;
  ev.mode = mode;
  queue_->Push(ev);
  stats_.acquisitions.fetch_add(1, std::memory_order_relaxed);
}

void AvoidanceEngine::WakeYieldersOf(ThreadId thread, LockId lock, StackId stack) {
  // Wake every thread whose yieldCause contains (thread, lock, stack) — the
  // Java version's yieldLock[Ti].notifyAll() (§6).
  for (ThreadId yielder : yielding_threads_) {
    ThreadSlot& yslot = registry_.Slot(yielder);
    bool matches = false;
    for (const YieldCause& cause : yslot.yield_causes) {
      if (cause.thread == thread && cause.lock == lock &&
          (cause.stack == stack || stack == kInvalidStackId)) {
        matches = true;
        break;
      }
    }
    if (matches) {
      std::lock_guard<std::mutex> park_guard(yslot.park_m);
      yslot.wake_pending = true;
      yslot.park_cv.notify_all();
    }
  }
}

void AvoidanceEngine::Release(ThreadId thread, LockId lock) {
  if (!config_.enabled) {
    return;
  }
  ThreadSlot& slot = registry_.Slot(thread);
  StackId stack = kInvalidStackId;
  AcquireMode mode = AcquireMode::kExclusive;
  bool final_release = false;
  GuardLock(thread);
  auto owner_it = lock_owners_.find(lock);
  if (owner_it != lock_owners_.end()) {
    LockOwnerInfo& info = owner_it->second;
    mode = info.mode;
    if (LockHolder* holder = info.HolderFor(thread); holder != nullptr) {
      stack = holder->stack;
      if (--holder->count <= 0) {
        // This thread's hold ends (other shared holders may remain).
        final_release = true;
        info.holders.erase(info.holders.begin() + (holder - info.holders.data()));
        if (info.holders.empty()) {
          lock_owners_.erase(owner_it);
        }
      }
    }
  }
  for (auto it = slot.held.begin(); it != slot.held.end(); ++it) {
    if (it->lock == lock) {
      if (--it->count <= 0) {
        slot.held.erase(it);
      }
      break;
    }
  }
  if (final_release) {
    RemoveTuple(stack, thread, lock, /*held=*/true);
    // Lock conditions changed in a way that could let yielders make
    // progress (§5.1: "Dimmunix reschedules the paused thread T whenever
    // lock conditions change").
    WakeYieldersOf(thread, lock, stack);
  }
  GuardUnlock(thread);
  Event ev;
  ev.type = EventType::kRelease;
  ev.thread = thread;
  ev.lock = lock;
  ev.stack = stack;
  ev.mode = mode;
  queue_->Push(ev);
  stats_.releases.fetch_add(1, std::memory_order_relaxed);
}

void AvoidanceEngine::CancelRequest(ThreadId thread, LockId lock, AcquireMode mode) {
  if (!config_.enabled) {
    return;
  }
  ThreadSlot& slot = registry_.Slot(thread);
  GuardLock(thread);
  const StackId stack = slot.pending_stack;
  if (stack != kInvalidStackId) {
    RemoveTuple(stack, thread, lock, /*held=*/false);
  }
  GuardUnlock(thread);
  Event ev;
  ev.type = EventType::kCancel;
  ev.thread = thread;
  ev.lock = lock;
  ev.stack = stack;
  ev.mode = mode;
  queue_->Push(ev);
  stats_.trylock_cancels.fetch_add(1, std::memory_order_relaxed);
}

void AvoidanceEngine::BreakYield(ThreadId thread) {
  if (!registry_.Contains(thread)) {
    return;  // synthetic/stale id from the event stream
  }
  ThreadSlot& slot = registry_.Slot(thread);
  GuardLock(thread);
  slot.skip_avoidance_once = true;
  GuardUnlock(thread);
  std::lock_guard<std::mutex> park_guard(slot.park_m);
  slot.wake_pending = true;
  slot.park_cv.notify_all();
}

void AvoidanceEngine::CancelAcquisition(ThreadId thread) {
  if (!registry_.Contains(thread)) {
    return;  // synthetic/stale id from the event stream
  }
  ThreadSlot& slot = registry_.Slot(thread);
  slot.acquisition_canceled.store(true, std::memory_order_release);
  // The victim may be blocked in the raw mutex (canceler registered by the
  // sync layer) or parked in a yield (woken via its parking lot; Park
  // re-checks the canceled flag without consuming a wake).
  std::function<void()> canceler;
  {
    std::lock_guard<std::mutex> guard(slot.canceler_m);
    canceler = slot.acquisition_canceler;
  }
  if (canceler) {
    canceler();
  }
  {
    std::lock_guard<std::mutex> park_guard(slot.park_m);
    slot.park_cv.notify_all();
  }
}

void AvoidanceEngine::NotifyHistoryChanged() {
  history_dirty_.fetch_add(1, std::memory_order_release);
  // The cache version check happens under the guard in FindInstantiation;
  // invalidate by resetting the cached version.
  GuardLock(registry_.RegisterCurrentThread());
  cached_history_version_ = ~0ULL;
  GuardUnlock(registry_.RegisterCurrentThread());
}

int AvoidanceEngine::Park(ThreadSlot& slot, std::optional<MonoTime> deadline) {
  std::unique_lock<std::mutex> park_guard(slot.park_m);
  MonoTime bound = Now() + config_.yield_timeout;
  bool deadline_is_nearest = false;
  if (deadline.has_value() && *deadline < bound) {
    bound = *deadline;
    deadline_is_nearest = true;
  }
  while (!slot.wake_pending) {
    if (slot.acquisition_canceled.load(std::memory_order_acquire)) {
      slot.acquisition_canceled.store(false, std::memory_order_release);
      return 2;
    }
    if (slot.park_cv.wait_until(park_guard, bound) == std::cv_status::timeout) {
      if (!slot.wake_pending) {
        return deadline_is_nearest ? 3 : 1;
      }
      break;
    }
  }
  slot.wake_pending = false;
  return 0;
}

ThreadId AvoidanceEngine::LockOwner(LockId lock) const {
  auto* self = const_cast<AvoidanceEngine*>(this);
  const ThreadId me = self->registry_.RegisterCurrentThread();
  self->GuardLock(me);
  auto it = lock_owners_.find(lock);
  const ThreadId owner =
      (it == lock_owners_.end() || it->second.mode != AcquireMode::kExclusive ||
       it->second.holders.empty())
          ? kInvalidThreadId
          : it->second.holders.front().thread;
  self->GuardUnlock(me);
  return owner;
}

std::size_t AvoidanceEngine::SharedHolderCount(LockId lock) const {
  auto* self = const_cast<AvoidanceEngine*>(this);
  const ThreadId me = self->registry_.RegisterCurrentThread();
  self->GuardLock(me);
  auto it = lock_owners_.find(lock);
  const std::size_t n = (it == lock_owners_.end() || it->second.mode != AcquireMode::kShared)
                            ? 0
                            : it->second.holders.size();
  self->GuardUnlock(me);
  return n;
}

std::size_t AvoidanceEngine::AllowedCount(StackId id) const {
  auto* self = const_cast<AvoidanceEngine*>(this);
  const ThreadId me = self->registry_.RegisterCurrentThread();
  self->GuardLock(me);
  std::size_t n = 0;
  if (static_cast<std::size_t>(id) < stack_slots_.size()) {
    n = stack_slots_[static_cast<std::size_t>(id)].tuples.size();
  }
  self->GuardUnlock(me);
  return n;
}

}  // namespace dimmunix
