// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/core/runtime.h"

#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "src/common/logging.h"
#include "src/fleet/net.h"
#include "src/obs/export.h"
#include "src/persist/file.h"

namespace dimmunix {
namespace {

// Runtime::Global() is leaked intentionally (see Global()), so its
// destructor never runs — the shutdown trace dump for that instance happens
// through this atexit hook instead. Only one runtime (the first with a dump
// path) registers; an embedded runtime that is destroyed normally clears the
// slot in ~Runtime and dumps from there.
std::atomic<Runtime*> g_dump_runtime{nullptr};

void DumpTraceAtExit() {
  if (Runtime* rt = g_dump_runtime.exchange(nullptr, std::memory_order_acq_rel)) {
    rt->DumpTraceNow();
  }
}

}  // namespace

Runtime::Runtime(Config config) : config_(std::move(config)) {
  obs::Recorder::Options rec_options;
  rec_options.trace_enabled = config_.trace_enabled;
  rec_options.ring_capacity = static_cast<std::size_t>(
      config_.trace_ring_size > 0 ? config_.trace_ring_size : 8192);
  rec_options.metrics_enabled = config_.metrics_enabled;
  recorder_ = std::make_unique<obs::Recorder>(rec_options);
  obs::HealthThresholds health_thresholds;
  health_thresholds.retry_ratio = config_.health_retry_ratio;
  health_thresholds.epoch_stall_pct = config_.health_epoch_stall_pct;
  health_thresholds.ipc_backlog = static_cast<std::uint64_t>(
      config_.health_ipc_backlog > 0 ? config_.health_ipc_backlog : 0);
  health_thresholds.ipc_flush_p99_us = static_cast<std::uint64_t>(
      config_.health_ipc_flush_p99_us > 0 ? config_.health_ipc_flush_p99_us : 0);
  health_thresholds.arena_pct = config_.health_arena_pct;
  health_thresholds.ring_drops_per_s = config_.health_ring_drops_per_s;
  health_thresholds.store_queue =
      static_cast<std::uint64_t>(config_.health_store_queue > 0 ? config_.health_store_queue : 0);
  health_thresholds.resync_stale_x = config_.health_resync_stale_x;
  health_thresholds.fire_ticks = config_.health_fire_ticks;
  health_thresholds.resolve_ticks = config_.health_resolve_ticks;
  health_ = std::make_unique<obs::HealthEngine>(health_thresholds);
  obs::IncidentLog::Options incident_options;
  incident_options.dir = config_.incident_dir;
  incident_options.max_files = config_.incident_max;
  incident_options.min_period = config_.incident_min_period;
  incidents_ =
      std::make_unique<obs::IncidentLog>(incident_options, recorder_.get(), health_.get());
  incidents_->SetRuntimeJsonProvider([this] { return RuntimeIncidentJson(); });
  stacks_ = std::make_unique<StackTable>(config_.max_match_depth);
  history_ = std::make_unique<History>(stacks_.get());
  queue_ = std::make_unique<EventQueue>();
  // "The deadlock history is loaded from disk into memory at startup time"
  // (§5.4) — performed by the store's startup compaction below (one parse,
  // under the file lock, folding any crashed predecessor's journal in).
  engine_ = std::make_unique<AvoidanceEngine>(config_, stacks_.get(), history_.get(),
                                              queue_.get(), recorder_.get());
  if (!config_.history_path.empty()) {
    persist::StoreOptions store_options;
    store_options.path = config_.history_path;
    store_options.journal_threshold = config_.journal_threshold;
    store_options.fsync_appends = config_.journal_fsync;
    store_options.resync_period = config_.history_resync_period;
    store_options.merge_on_start = config_.load_history_on_init;
    store_options.read_mostly = !config_.save_history_on_update;
    store_ = std::make_unique<persist::HistoryStore>(store_options, history_.get(),
                                                     stacks_.get(), recorder_.get());
    // Signatures merged from the shared file must take effect immediately:
    // the engine rebuilds its caches off the history version counter.
    store_->SetOnHistoryMerged([this] { engine_->NotifyHistoryChanged(); });
    store_->Start();
  }
  if (!config_.ipc_path.empty()) {
    ipc::IpcBridge::Options ipc_options;
    ipc_options.arena_path = config_.ipc_path;
    ipc_options.period = config_.ipc_bridge_period;
    ipc_options.flush = config_.ipc_flush_period;
    ipc_ = std::make_unique<ipc::IpcBridge>(ipc_options, engine_.get(), stacks_.get(),
                                            recorder_.get());
    std::string error;
    if (!ipc_->Start(&error)) {
      DIMMUNIX_LOG(kWarn) << "ipc: " << error << "; continuing without cross-process immunity";
      ipc_.reset();  // degraded but functional: single-process behavior
    }
  }
  monitor_ = std::make_unique<Monitor>(config_, stacks_.get(), history_.get(), queue_.get(),
                                       engine_.get(), store_.get(), recorder_.get());
  monitor_->SetIncidentLog(incidents_.get());
  if (config_.start_monitor) {
    monitor_->Start();
  }
  if (config_.health_enabled) {
    health_running_ = true;
    health_thread_ = std::thread([this] { HealthLoop(); });
  }
  if (!config_.control_socket_path.empty()) {
    control_ = std::make_unique<control::ControlServer>(this, config_.control_socket_path);
    if (!control_->Start()) {
      control_.reset();  // degraded but functional: no control plane
    }
  }
  if (!config_.trace_dump_path.empty()) {
    Runtime* expected = nullptr;
    if (g_dump_runtime.compare_exchange_strong(expected, this, std::memory_order_acq_rel)) {
      std::atexit(DumpTraceAtExit);
    }
  }
}

Runtime::~Runtime() {
  // The control server executes commands against the live runtime; it must
  // be fully stopped before any component is torn down. The bridge stops
  // before the monitor (it feeds the event queue and the engine); the store
  // stops after the monitor so the final drain's signatures still reach
  // disk.
  control_.reset();
  // The health evaluator reads every other component's snapshots, so it
  // stops right after the control plane (which reads *its* state) and
  // before anything it samples is torn down.
  StopHealthThread();
  if (ipc_) {
    ipc_->Stop();
  }
  monitor_->Stop();
  if (store_) {
    store_->Stop();
  }
  // A normally-destroyed runtime dumps here and unregisters from the atexit
  // hook (which would otherwise fire on a dangling pointer).
  Runtime* expected = this;
  g_dump_runtime.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel);
  if (!config_.trace_dump_path.empty()) {
    DumpTraceNow();
  }
}

bool Runtime::DumpTraceNow() {
  if (config_.trace_dump_path.empty()) {
    return false;
  }
  const std::string path = obs::ExpandPidPattern(config_.trace_dump_path,
                                                 static_cast<std::uint64_t>(::getpid()));
  std::string error;
  if (!obs::WriteChromeTraceFile(*recorder_, static_cast<std::uint64_t>(::getpid()), path,
                                 &error)) {
    DIMMUNIX_LOG(kError) << "obs: trace dump to " << path << " failed: " << error;
    return false;
  }
  DIMMUNIX_LOG(kInfo) << "obs: trace dumped to " << path;
  return true;
}

obs::HealthSample Runtime::CollectHealthSample() {
  obs::HealthSample sample;
  sample.now_ns = obs::NowNs();
  const EngineStatsSnapshot es = engine_->stats().Snapshot();
  sample.requests = es.requests;
  sample.match_fast_retries = es.match_fast_retries;
  sample.epoch_stall_ns = es.epoch_stall_ns;
  if (ipc_) {
    const ipc::IpcStatus st = ipc_->SnapshotStatus();
    sample.ipc_running = st.running;
    sample.ipc_pending_ops = st.pending_ops;
    sample.ipc_flush_p99_ns =
        recorder_->histogram(obs::HistoKind::kIpcFlush).Snapshot().Percentile(99.0);
    sample.arena_participants_cap = ipc::IpcArena::kParticipants;
    sample.arena_edges_cap = ipc::IpcArena::kEdgesPerParticipant;
    for (const ipc::ParticipantInfo& p : st.participants) {
      if (p.alive) {
        ++sample.arena_participants_used;
      }
      if (p.self) {
        sample.arena_edges_used = p.edges;
      }
    }
  }
  for (const obs::Recorder::RingTotals& ring : recorder_->SnapshotRingTotals()) {
    sample.ring_dropped += ring.dropped;
  }
  if (store_) {
    const persist::StoreStatsSnapshot ss = store_->stats();
    sample.store_running = true;
    sample.store_queued = ss.queued;
    sample.resync_period_ms =
        static_cast<std::uint64_t>(config_.history_resync_period.count() > 0
                                       ? config_.history_resync_period.count()
                                       : 0);
    sample.last_resync_age_ms = ss.last_resync_age_ms;
  }
  return sample;
}

void Runtime::RunHealthCheckNow() { health_->Tick(CollectHealthSample()); }

std::string Runtime::RuntimeIncidentJson() {
  // The bundle fragment for state the obs layer cannot see: IPC/arena
  // mirror stats and the history store. Everything here is a snapshot API.
  std::string out = "{\"ipc\":";
  if (ipc_) {
    const ipc::IpcStatus st = ipc_->SnapshotStatus();
    std::uint64_t alive = 0;
    std::uint64_t self_edges = 0;
    for (const ipc::ParticipantInfo& p : st.participants) {
      if (p.alive) {
        ++alive;
      }
      if (p.self) {
        self_edges = p.edges;
      }
    }
    out += "{\"running\":" + std::string(st.running ? "true" : "false") +
           ",\"participant\":" + std::to_string(st.participant) +
           ",\"participants_alive\":" + std::to_string(alive) +
           ",\"self_edges\":" + std::to_string(self_edges) +
           ",\"foreign_edges_mirrored\":" + std::to_string(st.foreign_edges_mirrored) +
           ",\"pending_ops\":" + std::to_string(st.pending_ops) +
           ",\"flushes\":" + std::to_string(st.flushes) +
           ",\"dropped_publishes\":" + std::to_string(st.dropped_publishes) + "}";
  } else {
    out += "null";
  }
  out += ",\"store\":";
  if (store_) {
    const persist::StoreStatsSnapshot ss = store_->stats();
    out += "{\"queued\":" + std::to_string(ss.queued) +
           ",\"appends\":" + std::to_string(ss.appends) +
           ",\"compactions\":" + std::to_string(ss.compactions) +
           ",\"io_errors\":" + std::to_string(ss.io_errors) +
           ",\"resyncs\":" + std::to_string(ss.resyncs) + "}";
  } else {
    out += "null";
  }
  out += ",\"signatures\":" + std::to_string(history_->size()) + "}";
  return out;
}

void Runtime::HealthLoop() {
  recorder_->NameThisThread("dimmunix-health");
  const auto period = config_.health_period.count() > 0
                          ? config_.health_period
                          : (config_.monitor_period.count() > 0
                                 ? config_.monitor_period
                                 : std::chrono::milliseconds(100));
  std::unique_lock<std::mutex> stop_guard(health_stop_m_);
  while (!health_stop_requested_) {
    stop_guard.unlock();
    RunHealthCheckNow();
    if (!config_.fleet_daemon.empty()) {
      PushAlertsToFleet();
    }
    stop_guard.lock();
    health_stop_cv_.wait_for(stop_guard, period, [this] { return health_stop_requested_; });
  }
}

void Runtime::StopHealthThread() {
  if (!health_running_) {
    return;
  }
  {
    std::lock_guard<std::mutex> guard(health_stop_m_);
    health_stop_requested_ = true;
  }
  health_stop_cv_.notify_all();
  health_thread_.join();
  health_running_ = false;
}

void Runtime::PushAlertsToFleet() {
  // One line per runtime: "reporter;active;total;age_ms;rule+rule" — pushed
  // on every raised-count change and refreshed every few ticks so the
  // daemon's table survives its staleness pruning. Health-thread only;
  // failures are silent (the daemon may simply not be up yet).
  const obs::HealthEngine::Summary summary = health_->GetSummary();
  ++health_ticks_since_push_;
  constexpr std::uint64_t kRefreshTicks = 10;
  if (summary.raised() == last_pushed_raised_ && health_ticks_since_push_ < kRefreshTicks) {
    return;
  }
  std::string rules;
  for (const obs::AlertSnapshot& alert : health_->Snapshot()) {
    if (alert.state == obs::AlertState::kFiring || alert.state == obs::AlertState::kActive) {
      if (!rules.empty()) {
        rules += '+';
      }
      rules += alert.rule;
    }
  }
  char host[256] = "unknown";
  ::gethostname(host, sizeof(host) - 1);
  std::string record = std::string(host) + ":" + std::to_string(::getpid()) + ";" +
                       std::to_string(summary.raised()) + ";" + std::to_string(summary.total) +
                       ";0;" + (rules.empty() ? "-" : rules);
  std::string reply;
  std::string error;
  if (fleet::QueryTcp(config_.fleet_daemon, "fleet alerts-report " + record,
                      std::chrono::milliseconds(500), &reply, &error)) {
    last_pushed_raised_ = summary.raised();
    health_ticks_since_push_ = 0;
  }
}

Runtime& Runtime::Global() {
  // Leaked intentionally: the global runtime must outlive all host-program
  // threads, including those still running at static destruction time.
  static Runtime* instance = new Runtime(Config::FromEnvironment());
  return *instance;
}

int Runtime::DisableLastAvoidedSignature() {
  const int index = engine_->last_avoided_signature();
  if (index < 0) {
    return -1;
  }
  history_->SetDisabled(index, true);
  engine_->NotifyHistoryChanged();
  PersistHistory();
  DIMMUNIX_LOG(kInfo) << "signature " << index << " disabled by user request";
  return index;
}

bool Runtime::SetSignatureDisabled(int index, bool disabled) {
  if (index < 0 || static_cast<std::size_t>(index) >= history_->size()) {
    return false;
  }
  history_->SetDisabled(index, disabled);
  engine_->NotifyHistoryChanged();
  PersistHistory();
  DIMMUNIX_LOG(kInfo) << "signature " << index << (disabled ? " disabled" : " enabled")
                      << " by operator request";
  return true;
}

bool Runtime::SetSignatureMatchDepth(int index, int depth) {
  if (index < 0 || static_cast<std::size_t>(index) >= history_->size() || depth < 1 ||
      depth > config_.max_match_depth) {
    return false;
  }
  history_->SetMatchDepth(index, depth);
  engine_->NotifyHistoryChanged();
  PersistHistory();
  DIMMUNIX_LOG(kInfo) << "signature " << index << " matching depth set to " << depth
                      << " by operator request";
  return true;
}

void Runtime::PersistHistory() {
  // Operator-facing mutations persist synchronously — when a disable
  // returns, it is durable (merged, not overwriting other processes' work).
  if (store_) {
    store_->SaveNow();
  } else if (!config_.history_path.empty()) {
    history_->Save(config_.history_path);
  }
}

bool Runtime::SaveHistoryNow() {
  if (!store_) {
    return false;
  }
  return store_->SaveNow();
}

bool Runtime::ExportHistoryTo(const std::string& path) {
  if (path.empty()) {
    return false;
  }
  if (store_) {
    return store_->ExportTo(path);
  }
  std::string error;
  if (!persist::SaveHistoryFile(path, history_->ExportImage(), &error)) {
    DIMMUNIX_LOG(kError) << "history export: " << error;
    return false;
  }
  return true;
}

int Runtime::MergeHistoryFrom(const std::string& path) {
  if (store_) {
    const int added = store_->MergeFrom(path);
    if (added > 0) {
      DIMMUNIX_LOG(kInfo) << "history: merged " << added << " signature(s) from " << path;
    }
    return added;
  }
  persist::HistoryImage image;
  const persist::LoadResult load = persist::LoadHistoryFile(path, &image);
  if (!load.ok() || load.status == persist::LoadStatus::kNotFound) {
    return -1;
  }
  const int added = history_->MergeImage(image, persist::MergePolicy::kPreferIncoming);
  engine_->NotifyHistoryChanged();
  return added;
}

void Runtime::RestartCalibrationAfterUpgrade() {
  if (!config_.calibration_enabled) {
    return;
  }
  const std::size_t count = history_->size();
  for (std::size_t i = 0; i < count; ++i) {
    history_->Mutate(static_cast<int>(i), [&](Signature& s) {
      s.calibration = CalibrationState(config_.max_match_depth, config_.calibration_na,
                                       config_.calibration_nt);
      s.match_depth = s.calibration.current_depth();
    });
  }
  engine_->NotifyHistoryChanged();
  DIMMUNIX_LOG(kInfo) << "calibration restarted for " << count << " signature(s) after upgrade";
}

bool Runtime::ReloadHistory() {
  if (config_.history_path.empty()) {
    return false;
  }
  const bool ok = history_->Load(config_.history_path);
  engine_->NotifyHistoryChanged();
  DIMMUNIX_LOG(kInfo) << "history reloaded from " << config_.history_path;
  return ok;
}

}  // namespace dimmunix
