// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/core/runtime.h"

#include "src/common/logging.h"

namespace dimmunix {

Runtime::Runtime(Config config) : config_(std::move(config)) {
  stacks_ = std::make_unique<StackTable>(config_.max_match_depth);
  history_ = std::make_unique<History>(stacks_.get());
  queue_ = std::make_unique<EventQueue>();
  if (config_.load_history_on_init && !config_.history_path.empty()) {
    history_->Load(config_.history_path);
  }
  engine_ = std::make_unique<AvoidanceEngine>(config_, stacks_.get(), history_.get(),
                                              queue_.get());
  monitor_ = std::make_unique<Monitor>(config_, stacks_.get(), history_.get(), queue_.get(),
                                       engine_.get());
  if (config_.start_monitor) {
    monitor_->Start();
  }
  if (!config_.control_socket_path.empty()) {
    control_ = std::make_unique<control::ControlServer>(this, config_.control_socket_path);
    if (!control_->Start()) {
      control_.reset();  // degraded but functional: no control plane
    }
  }
}

Runtime::~Runtime() {
  // The control server executes commands against the live runtime; it must
  // be fully stopped before any component is torn down.
  control_.reset();
  monitor_->Stop();
}

Runtime& Runtime::Global() {
  // Leaked intentionally: the global runtime must outlive all host-program
  // threads, including those still running at static destruction time.
  static Runtime* instance = new Runtime(Config::FromEnvironment());
  return *instance;
}

int Runtime::DisableLastAvoidedSignature() {
  const int index = engine_->last_avoided_signature();
  if (index < 0) {
    return -1;
  }
  history_->SetDisabled(index, true);
  engine_->NotifyHistoryChanged();
  PersistHistory();
  DIMMUNIX_LOG(kInfo) << "signature " << index << " disabled by user request";
  return index;
}

bool Runtime::SetSignatureDisabled(int index, bool disabled) {
  if (index < 0 || static_cast<std::size_t>(index) >= history_->size()) {
    return false;
  }
  history_->SetDisabled(index, disabled);
  engine_->NotifyHistoryChanged();
  PersistHistory();
  DIMMUNIX_LOG(kInfo) << "signature " << index << (disabled ? " disabled" : " enabled")
                      << " by operator request";
  return true;
}

bool Runtime::SetSignatureMatchDepth(int index, int depth) {
  if (index < 0 || static_cast<std::size_t>(index) >= history_->size() || depth < 1 ||
      depth > config_.max_match_depth) {
    return false;
  }
  history_->SetMatchDepth(index, depth);
  engine_->NotifyHistoryChanged();
  PersistHistory();
  DIMMUNIX_LOG(kInfo) << "signature " << index << " matching depth set to " << depth
                      << " by operator request";
  return true;
}

void Runtime::PersistHistory() {
  if (!config_.history_path.empty()) {
    history_->Save(config_.history_path);
  }
}

void Runtime::RestartCalibrationAfterUpgrade() {
  if (!config_.calibration_enabled) {
    return;
  }
  const std::size_t count = history_->size();
  for (std::size_t i = 0; i < count; ++i) {
    history_->Mutate(static_cast<int>(i), [&](Signature& s) {
      s.calibration = CalibrationState(config_.max_match_depth, config_.calibration_na,
                                       config_.calibration_nt);
      s.match_depth = s.calibration.current_depth();
    });
  }
  engine_->NotifyHistoryChanged();
  DIMMUNIX_LOG(kInfo) << "calibration restarted for " << count << " signature(s) after upgrade";
}

bool Runtime::ReloadHistory() {
  if (config_.history_path.empty()) {
    return false;
  }
  const bool ok = history_->Load(config_.history_path);
  engine_->NotifyHistoryChanged();
  DIMMUNIX_LOG(kInfo) << "history reloaded from " << config_.history_path;
  return ok;
}

}  // namespace dimmunix
