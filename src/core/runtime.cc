// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/core/runtime.h"

#include "src/common/logging.h"

namespace dimmunix {

Runtime::Runtime(Config config) : config_(std::move(config)) {
  stacks_ = std::make_unique<StackTable>(config_.max_match_depth);
  history_ = std::make_unique<History>(stacks_.get());
  queue_ = std::make_unique<EventQueue>();
  if (config_.load_history_on_init && !config_.history_path.empty()) {
    history_->Load(config_.history_path);
  }
  engine_ = std::make_unique<AvoidanceEngine>(config_, stacks_.get(), history_.get(),
                                              queue_.get());
  monitor_ = std::make_unique<Monitor>(config_, stacks_.get(), history_.get(), queue_.get(),
                                       engine_.get());
  if (config_.start_monitor) {
    monitor_->Start();
  }
}

Runtime::~Runtime() { monitor_->Stop(); }

Runtime& Runtime::Global() {
  // Leaked intentionally: the global runtime must outlive all host-program
  // threads, including those still running at static destruction time.
  static Runtime* instance = new Runtime(Config::FromEnvironment());
  return *instance;
}

int Runtime::DisableLastAvoidedSignature() {
  const int index = engine_->last_avoided_signature();
  if (index < 0) {
    return -1;
  }
  history_->SetDisabled(index, true);
  engine_->NotifyHistoryChanged();
  if (!config_.history_path.empty()) {
    history_->Save(config_.history_path);
  }
  DIMMUNIX_LOG(kInfo) << "signature " << index << " disabled by user request";
  return index;
}

void Runtime::RestartCalibrationAfterUpgrade() {
  if (!config_.calibration_enabled) {
    return;
  }
  const std::size_t count = history_->size();
  for (std::size_t i = 0; i < count; ++i) {
    history_->Mutate(static_cast<int>(i), [&](Signature& s) {
      s.calibration = CalibrationState(config_.max_match_depth, config_.calibration_na,
                                       config_.calibration_nt);
      s.match_depth = s.calibration.current_depth();
    });
  }
  engine_->NotifyHistoryChanged();
  DIMMUNIX_LOG(kInfo) << "calibration restarted for " << count << " signature(s) after upgrade";
}

bool Runtime::ReloadHistory() {
  if (config_.history_path.empty()) {
    return false;
  }
  const bool ok = history_->Load(config_.history_path);
  engine_->NotifyHistoryChanged();
  DIMMUNIX_LOG(kInfo) << "history reloaded from " << config_.history_path;
  return ok;
}

}  // namespace dimmunix
