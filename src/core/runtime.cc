// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/core/runtime.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>

#include "src/common/logging.h"
#include "src/obs/export.h"
#include "src/persist/file.h"

namespace dimmunix {
namespace {

// Runtime::Global() is leaked intentionally (see Global()), so its
// destructor never runs — the shutdown trace dump for that instance happens
// through this atexit hook instead. Only one runtime (the first with a dump
// path) registers; an embedded runtime that is destroyed normally clears the
// slot in ~Runtime and dumps from there.
std::atomic<Runtime*> g_dump_runtime{nullptr};

void DumpTraceAtExit() {
  if (Runtime* rt = g_dump_runtime.exchange(nullptr, std::memory_order_acq_rel)) {
    rt->DumpTraceNow();
  }
}

}  // namespace

Runtime::Runtime(Config config) : config_(std::move(config)) {
  obs::Recorder::Options rec_options;
  rec_options.trace_enabled = config_.trace_enabled;
  rec_options.ring_capacity = static_cast<std::size_t>(
      config_.trace_ring_size > 0 ? config_.trace_ring_size : 8192);
  rec_options.metrics_enabled = config_.metrics_enabled;
  recorder_ = std::make_unique<obs::Recorder>(rec_options);
  stacks_ = std::make_unique<StackTable>(config_.max_match_depth);
  history_ = std::make_unique<History>(stacks_.get());
  queue_ = std::make_unique<EventQueue>();
  // "The deadlock history is loaded from disk into memory at startup time"
  // (§5.4) — performed by the store's startup compaction below (one parse,
  // under the file lock, folding any crashed predecessor's journal in).
  engine_ = std::make_unique<AvoidanceEngine>(config_, stacks_.get(), history_.get(),
                                              queue_.get(), recorder_.get());
  if (!config_.history_path.empty()) {
    persist::StoreOptions store_options;
    store_options.path = config_.history_path;
    store_options.journal_threshold = config_.journal_threshold;
    store_options.fsync_appends = config_.journal_fsync;
    store_options.resync_period = config_.history_resync_period;
    store_options.merge_on_start = config_.load_history_on_init;
    store_options.read_mostly = !config_.save_history_on_update;
    store_ = std::make_unique<persist::HistoryStore>(store_options, history_.get(),
                                                     stacks_.get(), recorder_.get());
    // Signatures merged from the shared file must take effect immediately:
    // the engine rebuilds its caches off the history version counter.
    store_->SetOnHistoryMerged([this] { engine_->NotifyHistoryChanged(); });
    store_->Start();
  }
  if (!config_.ipc_path.empty()) {
    ipc::IpcBridge::Options ipc_options;
    ipc_options.arena_path = config_.ipc_path;
    ipc_options.period = config_.ipc_bridge_period;
    ipc_options.flush = config_.ipc_flush_period;
    ipc_ = std::make_unique<ipc::IpcBridge>(ipc_options, engine_.get(), stacks_.get(),
                                            recorder_.get());
    std::string error;
    if (!ipc_->Start(&error)) {
      DIMMUNIX_LOG(kWarn) << "ipc: " << error << "; continuing without cross-process immunity";
      ipc_.reset();  // degraded but functional: single-process behavior
    }
  }
  monitor_ = std::make_unique<Monitor>(config_, stacks_.get(), history_.get(), queue_.get(),
                                       engine_.get(), store_.get(), recorder_.get());
  if (config_.start_monitor) {
    monitor_->Start();
  }
  if (!config_.control_socket_path.empty()) {
    control_ = std::make_unique<control::ControlServer>(this, config_.control_socket_path);
    if (!control_->Start()) {
      control_.reset();  // degraded but functional: no control plane
    }
  }
  if (!config_.trace_dump_path.empty()) {
    Runtime* expected = nullptr;
    if (g_dump_runtime.compare_exchange_strong(expected, this, std::memory_order_acq_rel)) {
      std::atexit(DumpTraceAtExit);
    }
  }
}

Runtime::~Runtime() {
  // The control server executes commands against the live runtime; it must
  // be fully stopped before any component is torn down. The bridge stops
  // before the monitor (it feeds the event queue and the engine); the store
  // stops after the monitor so the final drain's signatures still reach
  // disk.
  control_.reset();
  if (ipc_) {
    ipc_->Stop();
  }
  monitor_->Stop();
  if (store_) {
    store_->Stop();
  }
  // A normally-destroyed runtime dumps here and unregisters from the atexit
  // hook (which would otherwise fire on a dangling pointer).
  Runtime* expected = this;
  g_dump_runtime.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel);
  if (!config_.trace_dump_path.empty()) {
    DumpTraceNow();
  }
}

bool Runtime::DumpTraceNow() {
  if (config_.trace_dump_path.empty()) {
    return false;
  }
  const std::string path = obs::ExpandPidPattern(config_.trace_dump_path,
                                                 static_cast<std::uint64_t>(::getpid()));
  std::string error;
  if (!obs::WriteChromeTraceFile(*recorder_, static_cast<std::uint64_t>(::getpid()), path,
                                 &error)) {
    DIMMUNIX_LOG(kError) << "obs: trace dump to " << path << " failed: " << error;
    return false;
  }
  DIMMUNIX_LOG(kInfo) << "obs: trace dumped to " << path;
  return true;
}

Runtime& Runtime::Global() {
  // Leaked intentionally: the global runtime must outlive all host-program
  // threads, including those still running at static destruction time.
  static Runtime* instance = new Runtime(Config::FromEnvironment());
  return *instance;
}

int Runtime::DisableLastAvoidedSignature() {
  const int index = engine_->last_avoided_signature();
  if (index < 0) {
    return -1;
  }
  history_->SetDisabled(index, true);
  engine_->NotifyHistoryChanged();
  PersistHistory();
  DIMMUNIX_LOG(kInfo) << "signature " << index << " disabled by user request";
  return index;
}

bool Runtime::SetSignatureDisabled(int index, bool disabled) {
  if (index < 0 || static_cast<std::size_t>(index) >= history_->size()) {
    return false;
  }
  history_->SetDisabled(index, disabled);
  engine_->NotifyHistoryChanged();
  PersistHistory();
  DIMMUNIX_LOG(kInfo) << "signature " << index << (disabled ? " disabled" : " enabled")
                      << " by operator request";
  return true;
}

bool Runtime::SetSignatureMatchDepth(int index, int depth) {
  if (index < 0 || static_cast<std::size_t>(index) >= history_->size() || depth < 1 ||
      depth > config_.max_match_depth) {
    return false;
  }
  history_->SetMatchDepth(index, depth);
  engine_->NotifyHistoryChanged();
  PersistHistory();
  DIMMUNIX_LOG(kInfo) << "signature " << index << " matching depth set to " << depth
                      << " by operator request";
  return true;
}

void Runtime::PersistHistory() {
  // Operator-facing mutations persist synchronously — when a disable
  // returns, it is durable (merged, not overwriting other processes' work).
  if (store_) {
    store_->SaveNow();
  } else if (!config_.history_path.empty()) {
    history_->Save(config_.history_path);
  }
}

bool Runtime::SaveHistoryNow() {
  if (!store_) {
    return false;
  }
  return store_->SaveNow();
}

bool Runtime::ExportHistoryTo(const std::string& path) {
  if (path.empty()) {
    return false;
  }
  if (store_) {
    return store_->ExportTo(path);
  }
  std::string error;
  if (!persist::SaveHistoryFile(path, history_->ExportImage(), &error)) {
    DIMMUNIX_LOG(kError) << "history export: " << error;
    return false;
  }
  return true;
}

int Runtime::MergeHistoryFrom(const std::string& path) {
  if (store_) {
    const int added = store_->MergeFrom(path);
    if (added > 0) {
      DIMMUNIX_LOG(kInfo) << "history: merged " << added << " signature(s) from " << path;
    }
    return added;
  }
  persist::HistoryImage image;
  const persist::LoadResult load = persist::LoadHistoryFile(path, &image);
  if (!load.ok() || load.status == persist::LoadStatus::kNotFound) {
    return -1;
  }
  const int added = history_->MergeImage(image, persist::MergePolicy::kPreferIncoming);
  engine_->NotifyHistoryChanged();
  return added;
}

void Runtime::RestartCalibrationAfterUpgrade() {
  if (!config_.calibration_enabled) {
    return;
  }
  const std::size_t count = history_->size();
  for (std::size_t i = 0; i < count; ++i) {
    history_->Mutate(static_cast<int>(i), [&](Signature& s) {
      s.calibration = CalibrationState(config_.max_match_depth, config_.calibration_na,
                                       config_.calibration_nt);
      s.match_depth = s.calibration.current_depth();
    });
  }
  engine_->NotifyHistoryChanged();
  DIMMUNIX_LOG(kInfo) << "calibration restarted for " << count << " signature(s) after upgrade";
}

bool Runtime::ReloadHistory() {
  if (config_.history_path.empty()) {
    return false;
  }
  const bool ok = history_->Load(config_.history_path);
  engine_->NotifyHistoryChanged();
  DIMMUNIX_LOG(kInfo) << "history reloaded from " << config_.history_path;
  return ok;
}

}  // namespace dimmunix
