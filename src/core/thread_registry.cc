// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/core/thread_registry.h"

#include <sys/syscall.h>
#include <unistd.h>

namespace dimmunix {
namespace {

// A thread may interact with several runtimes (tests instantiate isolated
// engines); the cache is a tiny linear map from registry uid to id. Keyed
// by uid, not pointer: a new registry can reuse a destroyed one's address.
struct TlsEntry {
  std::uint64_t registry_uid;
  ThreadId id;
};

thread_local std::vector<TlsEntry> tls_ids;

std::uint64_t NextRegistryUid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

ThreadRegistry::ThreadRegistry() : uid_(NextRegistryUid()) {}

ThreadId ThreadRegistry::RegisterCurrentThread() {
  for (const TlsEntry& entry : tls_ids) {
    if (entry.registry_uid == uid_) {
      return entry.id;
    }
  }
  ThreadId id;
  {
    std::lock_guard<SpinLock> guard(lock_);
    auto [slot, index] = slots_.Append();
    id = static_cast<ThreadId>(index);
    slot->id = id;
    slot->os_tid = static_cast<std::uint64_t>(::syscall(SYS_gettid));
  }
  tls_ids.push_back(TlsEntry{uid_, id});
  return id;
}

}  // namespace dimmunix
