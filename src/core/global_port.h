// Copyright (c) dimmunix-cpp authors. MIT license.
//
// The global-lock port: how the avoidance engine talks about locks whose
// identity and contention cross process boundaries (PTHREAD_PROCESS_SHARED
// mutexes in shm segments, flock(2)/fcntl(F_SETLKW) file locks).
//
// A LockId with kGlobalLockBit set names a *global* lock: its value is a
// stable cross-process identity hash (dev:inode:offset for file locks,
// backing-object:offset for shared mutexes — see src/ipc/global_id.h), so
// every participating process uses the same id for the same lock. Local
// locks are object addresses or small synthetic ids; on Linux user-space
// addresses never have bit 63 set, so the two spaces cannot collide.
//
// When a GlobalEdgePublisher is registered (src/ipc wires the shared-memory
// arena in), the engine
//   - prepends ProcFrame() — a stable process-identity frame — to the
//     captured stack of every global-lock request, making cross-process
//     signature tuples proc-qualified, and
//   - publishes wait/hold edge transitions for global locks so other
//     processes can fold them into their RAGs.
// Both happen only behind an IsGlobalLockId() branch: the single-process
// fast path stays untouched.
//
// Foreign threads mirrored from other processes get synthetic ThreadIds at
// kForeignThreadBase and above. They are never registered in the
// ThreadRegistry (Contains() is false), so monitor-side recovery paths
// no-op on them by construction.

#ifndef DIMMUNIX_CORE_GLOBAL_PORT_H_
#define DIMMUNIX_CORE_GLOBAL_PORT_H_

#include "src/event/event.h"
#include "src/stack/frame.h"

namespace dimmunix {

constexpr LockId kGlobalLockBit = 1ULL << 63;

inline bool IsGlobalLockId(LockId id) { return (id & kGlobalLockBit) != 0; }

// First synthetic id for threads mirrored from other processes. Dense local
// ids are registry indices (a few thousand at most), so the spaces are
// disjoint in practice; the engine never indexes the registry with an id at
// or above this base.
constexpr ThreadId kForeignThreadBase = 1 << 24;

inline bool IsForeignThreadId(ThreadId id) { return id >= kForeignThreadBase; }

// The byte range covered by an fcntl(2) record lock, attached to its arena
// edges so overlapping-but-distinct ranges can be made to conflict in the
// RAG the way they conflict in the kernel. `group` identifies the file
// (a hash of dev:inode) — ranges only interact within one group; group 0
// means "not a range lock". `len == kWholeFileRangeLen` covers to EOF
// (fcntl's l_len == 0) and overlaps everything at or past `start`.
struct LockRange {
  std::uint64_t group = 0;
  std::uint64_t start = 0;
  std::uint64_t len = 0;

  static constexpr std::uint64_t kWholeFileRangeLen = ~0ULL;

  bool valid() const { return group != 0; }
  bool Overlaps(const LockRange& other) const {
    if (group == 0 || group != other.group) {
      return false;
    }
    // [start, start+len) vs [other.start, other.start+other.len), with
    // saturating ends so to-EOF ranges behave as unbounded.
    const std::uint64_t end = len > ~0ULL - start ? ~0ULL : start + len;
    const std::uint64_t other_end =
        other.len > ~0ULL - other.start ? ~0ULL : other.start + other.len;
    return start < other_end && other.start < end;
  }
};

// Publisher side of the arena, as seen by the engine. Implemented by
// ipc::IpcBridge; every method must be cheap and lock-light — Publish/Clear
// run on the application thread that touched the global lock (never for
// local locks).
class GlobalEdgePublisher {
 public:
  virtual ~GlobalEdgePublisher() = default;

  // Stable identity frame of this process (DIMMUNIX_PROC_TAG or the
  // executable path), prepended to global-lock stacks at capture time.
  virtual Frame ProcFrame() const = 0;

  // The calling thread wants `lock` (request/allow edge standing).
  virtual void PublishWait(ThreadId thread, LockId lock, StackId stack, AcquireMode mode) = 0;
  // The wait ended without an acquisition (cancel, broken, timed out).
  virtual void ClearWait(ThreadId thread, LockId lock) = 0;
  // The calling thread holds `lock` (reentrant holds bump a count).
  virtual void PublishHold(ThreadId thread, LockId lock, StackId stack, AcquireMode mode) = 0;
  // Final release of this thread's hold (count reaching zero clears it).
  virtual void ClearHold(ThreadId thread, LockId lock) = 0;

  // Drains any deferred edge publications to the arena NOW. The engine
  // calls this right before parking a thread: local contention means our
  // pending edges may be part of a cross-process cycle, so they must stop
  // hiding in the batch. Default no-op for publishers that publish eagerly.
  virtual void FlushPending() {}
};

}  // namespace dimmunix

#endif  // DIMMUNIX_CORE_GLOBAL_PORT_H_
