// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Runtime — the public facade of the Dimmunix library.
//
// A Runtime owns one complete immunity system: stack table, persistent
// history, event queue, avoidance engine, and monitor thread. Most programs
// use a single process-wide runtime (Runtime::Global(), configured from
// DIMMUNIX_* environment variables); tests and benchmarks construct isolated
// instances.
//
// Typical embedding (see src/sync for ready-made lock types):
//
//   dimmunix::Config cfg;
//   cfg.history_path = "app.dimmunix";
//   dimmunix::Runtime rt(cfg);
//   dimmunix::sync::Mutex a(rt), b(rt);   // instrumented locks
//   ...
//
// The runtime loads the history at startup ("the deadlock history is loaded
// from disk into memory at startup time", §5.4) and the monitor persists
// every new signature immediately.

#ifndef DIMMUNIX_CORE_RUNTIME_H_
#define DIMMUNIX_CORE_RUNTIME_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "src/common/config.h"
#include "src/control/server.h"
#include "src/core/acquire.h"
#include "src/core/avoidance.h"
#include "src/core/monitor.h"
#include "src/event/event_queue.h"
#include "src/ipc/bridge.h"
#include "src/obs/health.h"
#include "src/obs/incident.h"
#include "src/obs/recorder.h"
#include "src/persist/store.h"
#include "src/signature/history.h"
#include "src/stack/stack_table.h"

namespace dimmunix {

class Runtime {
 public:
  explicit Runtime(Config config = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Process-wide instance, configured from the environment on first use.
  static Runtime& Global();

  // Registers the calling thread (idempotent) and returns its id.
  ThreadId RegisterCurrentThread() { return engine_->registry().RegisterCurrentThread(); }

  // --- Acquisition port (src/core/acquire.h) --------------------------------
  //
  // The only sanctioned way for lock adapters (sync types, interposition
  // shims) to run the avoidance protocol. Registers the calling thread,
  // runs request -> GO/YIELD, and returns the move-only handle that owes
  // exactly one Commit() or Cancel() when granted.

  // Blocking protocol; `deadline` (optional) bounds time spent yielding.
  AcquireOp BeginAcquire(LockId lock, AcquireMode mode,
                         std::optional<MonoTime> deadline = std::nullopt) {
    const ThreadId tid = RegisterCurrentThread();
    return AcquireOp(engine_.get(), tid, lock, mode, engine_->Request(tid, lock, mode, deadline));
  }

  // Nonblocking protocol for trylock adapters: Decision() == kBusy instead
  // of a yield when acquiring would instantiate a signature.
  AcquireOp TryBeginAcquire(LockId lock, AcquireMode mode) {
    const ThreadId tid = RegisterCurrentThread();
    return AcquireOp(engine_.get(), tid, lock, mode, engine_->RequestNonblocking(tid, lock, mode));
  }

  // The calling thread released `lock`. Mode is inferred from the owner set
  // (pthread_rwlock_unlock does not say which side it undoes).
  void EndRelease(LockId lock) { engine_->Release(RegisterCurrentThread(), lock); }

  // §8: hot-reload the history after a vendor shipped new signatures ("the
  // target program need not even be restarted").
  bool ReloadHistory();

  // --- Durable history operations (control plane: `dimctl history ...`) -----

  // Synchronously compacts the history to disk: journal folded into the v2
  // snapshot, other processes' signatures merged in, union written
  // atomically under the file lock. False without a history path.
  bool SaveHistoryNow();

  // Writes the current in-memory history to `path` (v2) — how an operator
  // ships signatures to another machine (§8 "vendors can ship signatures as
  // patches"). Works even when the runtime has no history file of its own.
  bool ExportHistoryTo(const std::string& path);

  // Merges signatures from `path` (v2 or legacy v1) into the live history;
  // the avoidance engine starts matching them immediately via the history
  // version counter. Returns the number of new signatures, or -1 if the
  // file cannot be read.
  int MergeHistoryFrom(const std::string& path);

  // §5.7 user workflow ("the same way s/he would enable pop-ups for a given
  // site"): disables the most recently avoided signature so it is never
  // avoided again. Returns the signature index, or -1 if nothing was ever
  // avoided.
  int DisableLastAvoidedSignature();

  // §8: "the calibration of matching precision is therefore re-enabled after
  // every upgrade for all signatures". Restarts every signature's
  // calibration ladder (no-op unless calibration is enabled).
  void RestartCalibrationAfterUpgrade();

  // Operator-facing signature mutations (control plane, tools). Both are
  // bounds-checked: false on an out-of-range index (or depth < 1 / > max);
  // on success the engine caches refresh and the history file (if any) is
  // persisted.
  bool SetSignatureDisabled(int index, bool disabled);
  bool SetSignatureMatchDepth(int index, int depth);

  // --- Observability (src/obs) ----------------------------------------------

  // The flight recorder: always present (metrics histograms are on unless
  // Config::metrics_enabled is off; trace rings record when tracing is
  // started via config or `dimctl trace start`).
  obs::Recorder& recorder() { return *recorder_; }
  const obs::Recorder& recorder() const { return *recorder_; }

  // Self-diagnosis (src/obs/health.h): always constructed, so `dimctl
  // alerts` works even when the evaluator thread is off; the thread runs
  // only while Config::health_enabled.
  obs::HealthEngine& health() { return *health_; }
  const obs::HealthEngine& health() const { return *health_; }

  // Incident forensics (src/obs/incident.h); inert unless
  // Config::incident_dir is set.
  obs::IncidentLog& incident_log() { return *incidents_; }
  const obs::IncidentLog& incident_log() const { return *incidents_; }

  // One evaluator pass: assemble a HealthSample from the live snapshots and
  // tick the HealthEngine. The background thread calls this every period;
  // public so tests (and the control plane, on demand) can run it
  // deterministically.
  void RunHealthCheckNow();

  // Writes the Chrome-trace JSON for this process's rings to
  // Config::trace_dump_path (with %p expanded to the pid). Called
  // automatically at destruction and at process exit (the leaked Global()
  // runtime registers an atexit hook); public so the control plane and tests
  // can force a dump. False when no dump path is configured or the write
  // fails.
  bool DumpTraceNow();

  const Config& config() const { return config_; }
  StackTable& stacks() { return *stacks_; }
  History& history() { return *history_; }
  EventQueue& events() { return *queue_; }
  AvoidanceEngine& engine() { return *engine_; }
  Monitor& monitor() { return *monitor_; }
  // Null unless Config::history_path was set.
  persist::HistoryStore* history_store() { return store_.get(); }
  // Null unless Config::ipc_path was set and the arena came up.
  ipc::IpcBridge* ipc_bridge() { return ipc_.get(); }
  // Null unless Config::control_socket_path was set and the socket came up.
  control::ControlServer* control_server() { return control_.get(); }

 private:
  void PersistHistory();
  obs::HealthSample CollectHealthSample();
  std::string RuntimeIncidentJson();
  void HealthLoop();
  void StopHealthThread();
  void PushAlertsToFleet();

  Config config_;
  // First member after config_: constructed before and destroyed after every
  // component that records into it.
  std::unique_ptr<obs::Recorder> recorder_;
  std::unique_ptr<obs::HealthEngine> health_;
  std::unique_ptr<obs::IncidentLog> incidents_;
  std::unique_ptr<StackTable> stacks_;
  std::unique_ptr<History> history_;
  std::unique_ptr<EventQueue> queue_;
  std::unique_ptr<persist::HistoryStore> store_;
  std::unique_ptr<AvoidanceEngine> engine_;
  std::unique_ptr<ipc::IpcBridge> ipc_;
  std::unique_ptr<Monitor> monitor_;
  std::unique_ptr<control::ControlServer> control_;

  // Health evaluator thread (never touches lock paths: it only reads the
  // stats snapshots and, on alert transitions, talks TCP to dimmunixd).
  std::mutex health_stop_m_;
  std::condition_variable health_stop_cv_;
  bool health_stop_requested_ = false;
  std::thread health_thread_;
  bool health_running_ = false;
  // Fleet alert-push state (health thread only).
  int last_pushed_raised_ = -1;
  std::uint64_t health_ticks_since_push_ = 0;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_CORE_RUNTIME_H_
