// Copyright (c) dimmunix-cpp authors. MIT license.
//
// The avoidance side of Dimmunix (§5.4): the request / acquired / release /
// cancel methods invoked by the lock instrumentation, the "RAG cache"
// (per-stack Allowed sets + a lock-owner map), signature-instantiation
// matching, and the yield parking/waking machinery.
//
// Everything here runs on the application's critical path; the expensive
// work (cycle detection, history file I/O, calibration verdicts) is done
// asynchronously by the monitor, which consumes the events this class
// enqueues.

#ifndef DIMMUNIX_CORE_AVOIDANCE_H_
#define DIMMUNIX_CORE_AVOIDANCE_H_

#include <chrono>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/clock.h"
#include "src/common/config.h"
#include "src/common/peterson_lock.h"
#include "src/common/spin_lock.h"
#include "src/core/stats.h"
#include "src/core/thread_registry.h"
#include "src/event/event_queue.h"
#include "src/signature/history.h"
#include "src/stack/stack_table.h"

namespace dimmunix {

// Outcome of the request protocol (blocking and nonblocking forms).
enum class RequestDecision {
  kGo,         // safe (w.r.t. history) to block waiting for the lock
  kReentrant,  // the caller already owns the lock; skip avoidance
  kBroken,     // acquisition canceled by deadlock recovery
  kTimedOut,   // the caller-supplied deadline expired while yielding
  kBusy,       // nonblocking only: acquiring would instantiate a signature
};

class AvoidanceEngine {
 public:
  AvoidanceEngine(const Config& config, StackTable* stacks, History* history, EventQueue* queue);

  AvoidanceEngine(const AvoidanceEngine&) = delete;
  AvoidanceEngine& operator=(const AvoidanceEngine&) = delete;

  // --- Instrumentation entry points -----------------------------------------
  //
  // Callers outside src/core must not invoke these directly: the
  // acquisition-port API (src/core/acquire.h, Runtime::BeginAcquire) owns
  // the full request/allow/yield/acquired/cancel sequence and is the only
  // sanctioned adapter surface. Tests drive them directly to pin down
  // engine semantics.

  // Blocking request: decides GO vs YIELD against the history; on YIELD the
  // calling thread is parked and the request transparently retried after
  // wake-up. Returns only with a final decision. `deadline` (optional)
  // bounds the total time spent yielding (used by timed lock acquisition).
  RequestDecision Request(ThreadId thread, LockId lock,
                          AcquireMode mode = AcquireMode::kExclusive,
                          std::optional<MonoTime> deadline = std::nullopt);

  // Nonblocking request for trylock: returns kBusy instead of yielding when
  // the acquisition would instantiate a signature (kGo / kReentrant
  // otherwise).
  RequestDecision RequestNonblocking(ThreadId thread, LockId lock,
                                     AcquireMode mode = AcquireMode::kExclusive);

  // The lock was actually acquired / released by `thread`. A lock has one
  // exclusive owner XOR n shared holders; Release infers the mode the lock
  // is held in (pthread_rwlock_unlock does not say which side it undoes).
  void Acquired(ThreadId thread, LockId lock, AcquireMode mode = AcquireMode::kExclusive);
  void Release(ThreadId thread, LockId lock);

  // Rolls back a granted request whose underlying acquisition did not happen
  // (trylock contention, timedlock timeout) — the pthreads `cancel` event of
  // §6.
  void CancelRequest(ThreadId thread, LockId lock,
                     AcquireMode mode = AcquireMode::kExclusive);

  // --- Monitor entry points ---------------------------------------------------

  // Breaks induced starvation (§3): wakes `thread` from its yield and lets
  // it pursue its most recently requested lock, skipping avoidance once.
  void BreakYield(ThreadId thread);

  // Deadlock recovery support: cancels `thread`'s in-flight underlying
  // acquisition via the canceler registered by the sync layer (no-op if the
  // thread is not cancellably blocked).
  void CancelAcquisition(ThreadId thread);

  // The history changed (signature added / disabled / depth changed):
  // invalidate the matching caches.
  void NotifyHistoryChanged();

  // --- Introspection -----------------------------------------------------------

  ThreadRegistry& registry() { return registry_; }
  EngineStats& stats() { return stats_; }
  const Config& config() const { return config_; }
  // Index of the most recently avoided signature, -1 if none yet. Supports
  // the §5.7 "disable the last avoided signature" user workflow (the
  // pop-up-blocker analogy).
  int last_avoided_signature() const {
    return last_avoided_.load(std::memory_order_relaxed);
  }
  // Exclusive owner of `lock`, if tracked (kInvalidThreadId when free or
  // held in shared mode).
  ThreadId LockOwner(LockId lock) const;
  // Number of threads currently holding `lock` in shared mode (0 when free
  // or exclusively owned).
  std::size_t SharedHolderCount(LockId lock) const;
  // Number of (thread, lock) tuples currently in stack `id`'s Allowed set.
  std::size_t AllowedCount(StackId id) const;

 private:
  struct AllowedTuple {
    ThreadId thread = kInvalidThreadId;
    LockId lock = kInvalidLockId;
    bool held = false;  // allow edge (false) vs hold edge (true)
    AcquireMode mode = AcquireMode::kExclusive;
  };

  // Per interned stack: the paper's Allowed set ("handles to all the threads
  // that are permitted to wait for locks while having call stack S;
  // Allowed includes those threads that have acquired and still hold the
  // locks", §5.6).
  struct StackSlot {
    std::vector<AllowedTuple> tuples;
  };

  // Mode-aware owner set: one exclusive owner XOR n shared holders, each
  // holder with its acquisition stack and a reentrancy count.
  struct LockHolder {
    ThreadId thread = kInvalidThreadId;
    StackId stack = kInvalidStackId;
    int count = 0;
  };
  struct LockOwnerInfo {
    AcquireMode mode = AcquireMode::kExclusive;
    std::vector<LockHolder> holders;  // size 1 when mode == kExclusive

    LockHolder* HolderFor(ThreadId thread) {
      for (LockHolder& h : holders) {
        if (h.thread == thread) {
          return &h;
        }
      }
      return nullptr;
    }
  };

  // Lock-usage bookkeeping for signature instantiation covers: a lock may be
  // reused across tuples only while every use (existing and new) is shared —
  // a reader-writer cycle legitimately visits one rwlock once per holder.
  struct UsedLocks {
    struct Use {
      int count = 0;
      bool exclusive = false;  // only ever true while count == 1
    };
    std::unordered_map<LockId, Use> uses;

    bool CanUse(LockId lock, AcquireMode mode) const {
      auto it = uses.find(lock);
      return it == uses.end() ||
             (!it->second.exclusive && mode == AcquireMode::kShared);
    }
    void Push(LockId lock, AcquireMode mode) {
      Use& use = uses[lock];
      ++use.count;
      use.exclusive = use.exclusive || mode == AcquireMode::kExclusive;
    }
    void Pop(LockId lock) {
      auto it = uses.find(lock);
      if (it != uses.end() && --it->second.count <= 0) {
        uses.erase(it);
      }
    }
  };

  // Cached, pre-resolved view of one active signature.
  struct SigCacheEntry {
    int index = -1;  // position in History
    int depth = 4;
    std::vector<StackId> sig_stacks;
    // candidates[j] = interned stacks matching sig_stacks[j] at `depth`.
    std::vector<std::vector<StackId>> candidates;
  };

  struct MatchResult {
    int signature_index = -1;
    int depth = 0;
    int deepest = 0;                  // deepest depth the same cover matches at
    std::vector<YieldCause> others;   // the signature instance minus the requester
  };

  // Engine guard: one mechanism chosen at construction (§5.6 uses a
  // generalized Peterson algorithm; we support it and a TAS spin lock).
  void GuardLock(ThreadId thread);
  void GuardUnlock(ThreadId thread);

  StackSlot& SlotFor(StackId id);  // grows stack_slots_; guard held
  // Removes (thread, lock)'s tuple from `stack`'s slot, preferring the edge
  // kind being retired (held: hold edge; !held: allow edge). Guard held.
  void RemoveTuple(StackId stack, ThreadId thread, LockId lock, bool held);  // guard held
  void RefreshSigCacheLocked();
  void OnNewStack(const StackEntry& entry);

  // Searches for an instantiation of any cached signature that includes the
  // tentative tuple (thread, lock, stack). Guard held.
  std::optional<MatchResult> FindInstantiation(ThreadId thread, LockId lock, StackId stack);
  bool CoverPositions(const SigCacheEntry& sig, std::size_t pos,
                      std::vector<AllowedTuple>& chosen, std::vector<StackId>& chosen_stacks,
                      std::unordered_set<ThreadId>& used_threads, UsedLocks& used_locks,
                      ThreadId requester, LockId req_lock, bool& requester_used);

  // Parks the calling thread until woken, canceled, or timed out.
  // Returns: 0 woken, 1 timeout(yield bound), 2 broken, 3 deadline.
  int Park(ThreadSlot& slot, std::optional<MonoTime> deadline);
  void WakeYieldersOf(ThreadId thread, LockId lock, StackId stack);  // guard held

  const Config config_;
  StackTable* stacks_;
  History* history_;
  EventQueue* queue_;
  ThreadRegistry registry_;
  EngineStats stats_;

  const bool use_peterson_;
  PetersonLock peterson_guard_;
  SpinLock spin_guard_;

  // --- State below is guarded by the engine guard ---------------------------
  std::deque<StackSlot> stack_slots_;  // indexed by StackId
  std::unordered_map<LockId, LockOwnerInfo> lock_owners_;
  std::unordered_set<ThreadId> yielding_threads_;
  std::vector<SigCacheEntry> sig_cache_;
  std::uint64_t cached_history_version_ = ~0ULL;
  std::atomic<std::uint64_t> history_dirty_{1};
  std::atomic<int> last_avoided_{-1};
};

}  // namespace dimmunix

#endif  // DIMMUNIX_CORE_AVOIDANCE_H_
