// Copyright (c) dimmunix-cpp authors. MIT license.
//
// The avoidance side of Dimmunix (§5.4): the request / acquired / release /
// cancel methods invoked by the lock instrumentation, the "RAG cache"
// (per-stack Allowed sets + a lock-owner map), signature-instantiation
// matching, and the yield parking/waking machinery.
//
// Everything here runs on the application's critical path; the expensive
// work (cycle detection, history file I/O, calibration verdicts) is done
// asynchronously by the monitor, which consumes the events this class
// enqueues.
//
// Concurrency design (the striped hot path)
// -----------------------------------------
// The engine used to serialize every entry point under one global guard.
// It now shards its mutable state:
//
//  * lock_owners_       — StripedMap keyed by LockId hash.
//  * Allowed-set slots  — dense per-StackId slots in an append-only slab,
//                         each guarded by the slot stripe chosen by StackId
//                         hash; a per-stripe list tracks slots that
//                         currently have tuples ("live" slots).
//  * EngineStats        — sharded counters (src/common/sharded_counter.h).
//  * stack interning    — lock-free in StackTable.
//  * yield set          — a dedicated small lock (yield_m_); releasers skip
//                         it entirely while no thread is yielding.
//
// A hot-path operation holds at most one stripe lock at a time. The only
// paths that need a consistent cross-stripe view take the "stop-the-
// stripes" epoch — every slot stripe in ascending order (optionally behind
// the §5.6 Peterson filter): the authoritative signature-instantiation
// search, signature-cache rebuilds after a history change, and Snapshot().
//
// Matching stays off the epoch in the common case: each signature-cache
// generation keeps one atomic live-tuple counter per signature position,
// maintained by tuple add/remove under slot stripe locks with seq_cst RMWs.
// A request first bumps its own tentative tuple, then reads the counters
// (the store-buffer litmus guarantees two racing requesters cannot both
// miss each other). When every position of some signature is live — an
// instantiation is plausible — the request runs the *incremental* cover
// search (TryMatchIncremental): it copies the candidate tuples one stripe
// lock at a time into private pools, runs the cover search on the copies,
// and on a match validates the chosen cover after registering its yield.
// The add-before-scan protocol makes a no-match answer authoritative
// without validation: if requester R1's scan of R2's stripe missed R2's
// tentative tuple, then R1's add happened before R1's scan, which happened
// before R2's add, which happened before R2's scan — so R2's scan sees R1.
// The stop-the-stripes epoch survives only as the rare slow path: cache
// rebuilds after history changes, Snapshot(), and fast-path validation
// churn (bounded retries, then the epoch arbitrates). Its hold time is
// counted (epoch_hold_ns) and bounded by Config::epoch_hold_bound in debug
// builds.
//
// Lock ordering (outermost first):
//   sig_mutex_ -> slot stripes (ascending) -> owner stripes (ascending)
//     -> yield_m_ -> ThreadSlot::park_m
// with single-stripe holders never taking a second stripe, and the history
// and stack-table locks used only as leaves.

#ifndef DIMMUNIX_CORE_AVOIDANCE_H_
#define DIMMUNIX_CORE_AVOIDANCE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/atomic_slab.h"
#include "src/common/clock.h"
#include "src/common/config.h"
#include "src/common/peterson_lock.h"
#include "src/common/spin_lock.h"
#include "src/common/striped_map.h"
#include "src/core/global_port.h"
#include "src/core/stats.h"
#include "src/core/thread_registry.h"
#include "src/event/event_queue.h"
#include "src/obs/recorder.h"
#include "src/signature/history.h"
#include "src/stack/stack_table.h"

namespace dimmunix {

// Outcome of the request protocol (blocking and nonblocking forms).
enum class RequestDecision {
  kGo,         // safe (w.r.t. history) to block waiting for the lock
  kReentrant,  // the caller already owns the lock; skip avoidance
  kBroken,     // acquisition canceled by deadlock recovery
  kTimedOut,   // the caller-supplied deadline expired while yielding
  kBusy,       // nonblocking only: acquiring would instantiate a signature
};

// Epoch-consistent summary of the engine's sharded state (dimctl `status`,
// stress tests). Produced by AvoidanceEngine::Snapshot().
struct EngineView {
  std::size_t stripes = 0;          // slot/owner stripe count
  std::size_t tracked_locks = 0;    // owner-map entries across all stripes
  std::size_t live_stacks = 0;      // stack slots with at least one tuple
  std::size_t allowed_tuples = 0;   // total tuples across all Allowed sets
  std::size_t yielding_threads = 0;
  std::uint64_t signature_generation = 0;  // history version the cache matches
};

class AvoidanceEngine {
 public:
  // `recorder` (optional) is the observability hub (src/obs): when present,
  // the engine records acquire/yield/epoch spans on its trace rings and
  // feeds its latency histograms; when null (tests wiring components by
  // hand) the instrumentation sites cost one null check.
  AvoidanceEngine(const Config& config, StackTable* stacks, History* history, EventQueue* queue,
                  obs::Recorder* recorder = nullptr);
  ~AvoidanceEngine();

  AvoidanceEngine(const AvoidanceEngine&) = delete;
  AvoidanceEngine& operator=(const AvoidanceEngine&) = delete;

  // --- Instrumentation entry points -----------------------------------------
  //
  // Callers outside src/core must not invoke these directly: the
  // acquisition-port API (src/core/acquire.h, Runtime::BeginAcquire) owns
  // the full request/allow/yield/acquired/cancel sequence and is the only
  // sanctioned adapter surface. Tests drive them directly to pin down
  // engine semantics.

  // Blocking request: decides GO vs YIELD against the history; on YIELD the
  // calling thread is parked and the request transparently retried after
  // wake-up. Returns only with a final decision. `deadline` (optional)
  // bounds the total time spent yielding (used by timed lock acquisition).
  RequestDecision Request(ThreadId thread, LockId lock,
                          AcquireMode mode = AcquireMode::kExclusive,
                          std::optional<MonoTime> deadline = std::nullopt);

  // Nonblocking request for trylock: returns kBusy instead of yielding when
  // the acquisition would instantiate a signature (kGo / kReentrant
  // otherwise).
  RequestDecision RequestNonblocking(ThreadId thread, LockId lock,
                                     AcquireMode mode = AcquireMode::kExclusive);

  // The lock was actually acquired / released by `thread`. A lock has one
  // exclusive owner XOR n shared holders; Release infers the mode the lock
  // is held in (pthread_rwlock_unlock does not say which side it undoes).
  void Acquired(ThreadId thread, LockId lock, AcquireMode mode = AcquireMode::kExclusive);
  void Release(ThreadId thread, LockId lock);

  // Rolls back a granted request whose underlying acquisition did not happen
  // (trylock contention, timedlock timeout) — the pthreads `cancel` event of
  // §6.
  void CancelRequest(ThreadId thread, LockId lock,
                     AcquireMode mode = AcquireMode::kExclusive);

  // --- Monitor entry points ---------------------------------------------------

  // Breaks induced starvation (§3): wakes `thread` from its yield and lets
  // it pursue its most recently requested lock, skipping avoidance once.
  void BreakYield(ThreadId thread);

  // Deadlock recovery support: cancels `thread`'s in-flight underlying
  // acquisition via the canceler registered by the sync layer (no-op if the
  // thread is not cancellably blocked).
  void CancelAcquisition(ThreadId thread);

  // The history changed (signature added / disabled / depth changed):
  // eagerly rebuild the signature-cache generation. (The hot path would
  // also notice the version change lazily; the eager rebuild keeps
  // control-plane mutations deterministic.)
  void NotifyHistoryChanged();

  // --- Hot-event staging ------------------------------------------------------
  //
  // kAllow/kAcquired/kRelease/kCancel events are staged in the emitting
  // thread's slot instead of hitting the monitor queue one atomic exchange
  // (plus one allocation) at a time. An uncontended critical section nets
  // to ZERO queue traffic: its allow+acquired+release triple cancels in the
  // buffer. Events that describe blocking (kRequest/kYield/...) flush the
  // buffer first, and the monitor sweeps every slot at the top of each
  // drain, so a wait edge is visible to detection within one monitor tick
  // even if its owner is parked on a real mutex. Events carry emission-time
  // sequence stamps; the drain re-sorts, so the RAG still applies them in
  // global emission order.

  // Publishes `slot`'s staged events to the monitor queue. Safe from any
  // thread (spin-guarded); called by the owner before blocking-path events
  // and by the monitor's per-tick sweep.
  void FlushThreadEvents(ThreadSlot& slot);
  // Sweeps all registered threads' staging buffers (monitor, shutdown).
  void FlushAllThreadEvents();
  // Calibration gate: while false-positive probes are open the calibrator
  // needs to observe every acquired/release, so triple-cancelling is
  // suspended (events still stage; they just all flush).
  void SetEventCoalescing(bool enabled) {
    coalesce_events_.store(enabled, std::memory_order_relaxed);
  }

  // --- Global-lock port (src/core/global_port.h) ------------------------------
  //
  // With a publisher registered, requests/holds of locks whose id carries
  // kGlobalLockBit are proc-qualified and published to the IPC arena; local
  // locks see exactly one predictable branch. Registered once during
  // Runtime construction, before application threads call in.
  void SetGlobalPublisher(GlobalEdgePublisher* publisher) {
    global_pub_.store(publisher, std::memory_order_release);
  }

  // --- Foreign-edge mirror (bridge thread) ------------------------------------
  //
  // Folds another process's wait/hold edges for global locks into the local
  // engine: the tuples join the Allowed sets (so signature matching sees
  // cross-process instantiations) and the matching events reach the monitor
  // (so the RAG's colored DFS finds cross-process cycles). `thread` is a
  // synthetic id at kForeignThreadBase or above — never a registry index.
  void MirrorForeignWait(ThreadId thread, LockId lock, StackId stack, AcquireMode mode);
  void MirrorForeignWaitEnd(ThreadId thread, LockId lock, StackId stack, AcquireMode mode);
  void MirrorForeignHold(ThreadId thread, LockId lock, StackId stack, AcquireMode mode);
  void MirrorForeignRelease(ThreadId thread, LockId lock, StackId stack, AcquireMode mode);

  // --- Introspection -----------------------------------------------------------

  ThreadRegistry& registry() { return registry_; }
  EngineStats& stats() { return stats_; }
  const Config& config() const { return config_; }
  std::size_t stripe_count() const { return slot_stripe_mask_ + 1; }
  // Index of the most recently avoided signature, -1 if none yet. Supports
  // the §5.7 "disable the last avoided signature" user workflow (the
  // pop-up-blocker analogy).
  int last_avoided_signature() const {
    return last_avoided_.load(std::memory_order_relaxed);
  }
  // Exclusive owner of `lock`, if tracked (kInvalidThreadId when free or
  // held in shared mode).
  ThreadId LockOwner(LockId lock) const;
  // True when `thread` is among `lock`'s tracked holders (any mode). Used
  // by adapters for locks with replace-on-relock kernel semantics (flock,
  // fcntl record locks) to model conversions correctly.
  bool HoldsLock(ThreadId thread, LockId lock) const;
  // Number of threads currently holding `lock` in shared mode (0 when free
  // or exclusively owned).
  std::size_t SharedHolderCount(LockId lock) const;
  // Number of (thread, lock) tuples currently in stack `id`'s Allowed set.
  std::size_t AllowedCount(StackId id) const;
  // Stop-the-stripes consistent summary (control plane, tests).
  EngineView Snapshot();

 private:
  struct AllowedTuple {
    ThreadId thread = kInvalidThreadId;
    LockId lock = kInvalidLockId;
    bool held = false;  // allow edge (false) vs hold edge (true)
    AcquireMode mode = AcquireMode::kExclusive;
  };

  // Per interned stack: the paper's Allowed set ("handles to all the threads
  // that are permitted to wait for locks while having call stack S;
  // Allowed includes those threads that have acquired and still hold the
  // locks", §5.6). Guarded by the slot stripe chosen by StackId hash.
  struct StackSlot {
    std::vector<AllowedTuple> tuples;
    // Position in the owning stripe's live-slot list; -1 while empty.
    int live_index = -1;
    // Which signature positions of which cache generation this stack can
    // occupy, packed as (entry_index << kPosBits) | position. Recomputed
    // lazily when the generation changes.
    std::uint64_t member_version = kStaleVersion;
    std::vector<std::uint32_t> memberships;
  };

  struct alignas(64) SlotStripe {
    SpinLock lock;
    std::vector<StackId> live;  // slots in this stripe with tuples
    // Bumped (under `lock`) on every tuple add/remove in this stripe. The
    // incremental matcher records the versions it scanned; an unchanged
    // version at validation time proves the whole stripe's tuple population
    // is exactly what the scan copied, skipping per-tuple presence checks.
    std::uint64_t version = 0;
  };

  // Mode-aware owner set: one exclusive owner XOR n shared holders, each
  // holder with its acquisition stack and a reentrancy count.
  struct LockHolder {
    ThreadId thread = kInvalidThreadId;
    StackId stack = kInvalidStackId;
    int count = 0;
  };
  struct LockOwnerInfo {
    AcquireMode mode = AcquireMode::kExclusive;
    std::vector<LockHolder> holders;  // size 1 when mode == kExclusive

    LockHolder* HolderFor(ThreadId thread) {
      for (LockHolder& h : holders) {
        if (h.thread == thread) {
          return &h;
        }
      }
      return nullptr;
    }
  };

  // Lock-usage bookkeeping for signature instantiation covers: a lock may be
  // reused across tuples only while every use (existing and new) is shared —
  // a reader-writer cycle legitimately visits one rwlock once per holder.
  // Vector-backed: covers hold at most a handful of locks, and the matcher
  // runs on the acquisition hot path where node allocations both cost time
  // and stretch the requester's tuple-live window.
  struct UsedLocks {
    struct Use {
      LockId lock = kInvalidLockId;
      int count = 0;
      bool exclusive = false;  // only ever true while count == 1
    };
    std::vector<Use> uses;

    void Clear() { uses.clear(); }
    bool CanUse(LockId lock, AcquireMode mode) const {
      for (const Use& use : uses) {
        if (use.lock == lock) {
          return !use.exclusive && mode == AcquireMode::kShared;
        }
      }
      return true;
    }
    void Push(LockId lock, AcquireMode mode) {
      for (Use& use : uses) {
        if (use.lock == lock) {
          ++use.count;
          use.exclusive = use.exclusive || mode == AcquireMode::kExclusive;
          return;
        }
      }
      uses.push_back(Use{lock, 1, mode == AcquireMode::kExclusive});
    }
    void Pop(LockId lock) {
      for (auto it = uses.begin(); it != uses.end(); ++it) {
        if (it->lock == lock) {
          if (--it->count <= 0) {
            uses.erase(it);
          }
          return;
        }
      }
    }
  };

  // Backtracking state for CoverPositions, reusable across attempts so the
  // hot path settles into zero allocations.
  struct CoverScratch {
    std::vector<AllowedTuple> chosen;
    std::vector<StackId> chosen_stacks;
    std::vector<ThreadId> used_threads;  // linear: covers are tiny
    UsedLocks used_locks;
    bool requester_used = false;

    void Clear() {
      chosen.clear();
      chosen_stacks.clear();
      used_threads.clear();
      used_locks.Clear();
      requester_used = false;
    }
    bool UsesThread(ThreadId thread) const {
      for (const ThreadId t : used_threads) {
        if (t == thread) {
          return true;
        }
      }
      return false;
    }
  };

  // Per-thread scratch for the incremental matcher: candidate indexes and
  // tuple pools keep their capacity between acquisitions, so the steady
  // state copies tuples without touching the allocator (shortening the
  // requester's own tuple-live window, which quadratically lowers the odds
  // other requesters coincide with it).
  struct FastScratch {
    std::vector<std::size_t> cands;
    std::vector<std::size_t> cand_of;
    std::vector<std::uint64_t> scan_versions;
    std::vector<std::vector<std::vector<std::pair<StackId, AllowedTuple>>>> pools;
    CoverScratch cover;
  };

  // One immutable generation of the signature cache. Generations are built
  // under sig_mutex_ + the epoch and published via an atomic pointer;
  // superseded generations are reclaimed by the next rebuild, sparing any
  // still pinned by a reader's hazard pointer (AcquireGenRef). Only the
  // per-position live counters mutate after publication.
  static constexpr std::uint64_t kStaleVersion = ~0ULL;
  static constexpr unsigned kPosBits = 10;  // max 1024 stacks per signature
  struct SigGen {
    std::uint64_t version = kStaleVersion;  // History::version() it reflects
    struct Entry {
      int index = -1;  // position in History
      int depth = 4;
      std::vector<StackId> sig_stacks;
      // live[j] = tuples currently present in slots matching sig_stacks[j]
      // at `depth`. seq_cst add/remove + seq_cst fast-reject reads.
      std::unique_ptr<std::atomic<std::int64_t>[]> live;
    };
    std::vector<Entry> entries;
    // dead[e] = positions of entries[e] whose live counter is zero (empty
    // signatures pin a sentinel 1 so they can never look fully live).
    // Maintained on live[] 0<->1 transitions by Add/RemoveTupleLocked.
    std::unique_ptr<std::atomic<std::int32_t>[]> dead;
    // Entries with dead[e] == 0 — the O(1) form of the §5.6 fast reject.
    // Zero means no signature can possibly be instantiated right now, which
    // is the steady state of a deadlock-free run: the matcher's per-request
    // cost collapses to this one load. seq_cst keeps the two-racing-
    // requesters argument (see AddTupleLocked) intact.
    mutable std::atomic<std::int64_t> fully_live{0};
  };

  struct MatchResult {
    int signature_index = -1;
    int depth = 0;
    int deepest = 0;                  // deepest depth the same cover matches at
    std::vector<YieldCause> others;   // the signature instance minus the requester
  };

  // Locks every slot stripe in ascending order (behind the Peterson filter
  // when configured); the holder has a consistent view of all Allowed sets.
  class SlotEpochGuard {
   public:
    SlotEpochGuard(AvoidanceEngine& engine, ThreadId thread);
    ~SlotEpochGuard();
    SlotEpochGuard(const SlotEpochGuard&) = delete;
    SlotEpochGuard& operator=(const SlotEpochGuard&) = delete;

   private:
    AvoidanceEngine& engine_;
    ThreadId thread_;
    // Steady-clock ns when the last stripe lock was taken; the destructor
    // turns it into the epoch-hold histogram sample and kEpoch trace span.
    std::uint64_t entered_ns_ = 0;
    std::uint64_t stall_ns_ = 0;  // time spent waiting to enter
  };

  std::size_t StripeIndexOf(StackId stack) const {
    return static_cast<std::size_t>(MixHash64(static_cast<std::uint64_t>(stack))) &
           slot_stripe_mask_;
  }
  SlotStripe& StripeOf(StackId stack) { return slot_stripes_[StripeIndexOf(stack)]; }

  // Slot accessor; creates slots up to `id` (serialized internally). The
  // returned pointer is stable; contents are guarded by StripeOf(id).
  StackSlot* SlotFor(StackId id);

  // Tuple bookkeeping. Caller must hold StripeOf(stack). These maintain the
  // stripe live list and the generation's per-position live counters.
  void AddTupleLocked(SlotStripe& stripe, StackId stack, StackSlot* slot,
                      const AllowedTuple& tuple);
  // Removes (thread, lock)'s tuple, preferring the edge kind being retired
  // (held: hold edge; !held: allow edge) — during an upgrade a thread can
  // have both a shared hold tuple and an exclusive allow tuple for the same
  // lock in the same slot.
  void RemoveTupleLocked(SlotStripe& stripe, StackId stack, StackSlot* slot,
                         ThreadId thread, LockId lock, bool held);
  // Convenience: lock the stripe, run the op.
  void AddTuple(StackId stack, const AllowedTuple& tuple);
  void RemoveTuple(StackId stack, ThreadId thread, LockId lock, bool held);

  // Refreshes `slot`'s membership cache against `gen` if stale. Caller
  // holds the slot's stripe.
  void EnsureMemberships(StackId stack, StackSlot* slot, const SigGen& gen);
  std::vector<std::uint32_t> ComputeMemberships(StackId stack, const SigGen& gen) const;

  // The current cache generation (never null). Stable while the caller
  // holds any slot stripe (rebuilds — and generation reclamation — require
  // all of them).
  const SigGen* CurrentGen() const { return gen_.load(std::memory_order_acquire); }
  // Lock-free generation access for callers that hold NO stripe: publishes
  // the pointer in the slot's hazard slot so RefreshGen's reclamation
  // spares it. Pair with ReleaseGenRef.
  const SigGen* AcquireGenRef(ThreadSlot& slot) const;
  static void ReleaseGenRef(ThreadSlot& slot) {
    slot.sig_gen_hazard.store(nullptr, std::memory_order_release);
  }
  // Rebuilds the generation if stale w.r.t. the history version, then
  // frees retired generations no thread still references.
  void RefreshGen();

  // Fast reject (§5.6): true when every position of at least one signature
  // has a live tuple — only then can an instantiation exist. Lock-free.
  bool AnyInstantiationPlausible(const SigGen& gen) const;

  // Authoritative search under the epoch. On a match in blocking mode
  // (yield_on_match), atomically retires the requester's allow tuple and
  // registers the yield; in nonblocking mode only retires the tuple.
  std::optional<MatchResult> MatchAndRetire(ThreadId thread, LockId lock, StackId stack,
                                            ThreadSlot& slot, bool yield_on_match);

  // Incremental cover search — the common-case replacement for the epoch.
  enum class FastMatchOutcome {
    kNoMatch,   // authoritative: no signature instantiation exists
    kMatched,   // *result holds the cover; tuple retired (+ yield registered)
    kFallback,  // could not decide locally; caller runs MatchAndRetire
  };
  // Scans the live slots one stripe lock at a time against `gen` (the
  // caller's pinned generation), copies candidate tuples into private
  // pools, and runs the cover search on the copies. On a match it performs
  // the same retire(+register) sequence as MatchAndRetire, then validates
  // the chosen cover is still standing; validation churn retries a bounded
  // number of times before handing the decision to the epoch. Falls back
  // (never recomputes) when any live slot's membership cache is stale
  // w.r.t. `gen` — only the epoch path may recompute memberships.
  FastMatchOutcome TryMatchIncremental(ThreadId thread, LockId lock, StackId stack,
                                       ThreadSlot& slot, bool yield_on_match, const SigGen& gen,
                                       MatchResult* result);
  // True when every non-requester tuple of `result`'s cover is still in its
  // slot (one stripe lock at a time). `scan_versions[s]` is the version
  // slot stripe `s` had during the pool scan: an unchanged stripe is valid
  // without a presence check.
  bool CoverStillStands(const MatchResult& result,
                        const std::vector<std::uint64_t>& scan_versions);
  // Yield-set bookkeeping shared by both matchers. Register takes yield_m_
  // then park_m; it must complete before the requester's allow tuple is
  // removed so a releaser that saw the tuple also sees yield_count_ > 0.
  void RegisterYield(ThreadId thread, ThreadSlot& slot, const MatchResult& result);
  void UnregisterYield(ThreadId thread, ThreadSlot& slot);

  bool CoverPositions(const SigGen::Entry& sig,
                      const std::vector<std::vector<std::pair<StackId, AllowedTuple>>>& pools,
                      std::size_t pos, CoverScratch& cover, ThreadId requester, LockId req_lock);

  // Stages a hot-path event in `slot`'s buffer (stamping it first), netting
  // out cancelling pairs, and flushes on overflow. See FlushThreadEvents.
  void BufferHotEvent(ThreadSlot& slot, Event&& ev);

  // Parks the calling thread until woken, canceled, or timed out.
  // Returns: 0 woken, 1 timeout(yield bound), 2 broken, 3 deadline.
  int Park(ThreadSlot& slot, std::optional<MonoTime> deadline);
  // Wakes every yielder whose causes include (thread, lock, stack). Takes
  // yield_m_; callers should skip via yield_count_ when nothing yields.
  void WakeYieldersOf(ThreadId thread, LockId lock, StackId stack);

  const Config config_;
  StackTable* stacks_;
  History* history_;
  EventQueue* queue_;
  obs::Recorder* recorder_;  // null when no observability hub is wired in
  ThreadRegistry registry_;
  EngineStats stats_;

  const bool use_peterson_;
  PetersonLock peterson_guard_;
  // Null unless the runtime wired an IPC arena in (Config::ipc_path).
  std::atomic<GlobalEdgePublisher*> global_pub_{nullptr};

  // --- Striped state ---------------------------------------------------------
  const std::size_t slot_stripe_mask_;
  std::unique_ptr<SlotStripe[]> slot_stripes_;
  AtomicSlab<StackSlot> stack_slots_;
  SpinLock slot_growth_lock_;  // serializes slab appends
  StripedMap<LockId, LockOwnerInfo> lock_owners_;

  // --- Signature cache generations ------------------------------------------
  SpinLock sig_mutex_;  // serializes RefreshGen
  std::atomic<const SigGen*> gen_;
  // Current + superseded generations. Guarded by sig_mutex_; superseded
  // entries are freed by the next rebuild once no hazard pointer (and no
  // stripe holder — the rebuild owns the epoch) can still reference them.
  std::vector<std::unique_ptr<SigGen>> retired_gens_;

  // --- Yield set -------------------------------------------------------------
  SpinLock yield_m_;
  std::unordered_set<ThreadId> yielding_threads_;  // guarded by yield_m_
  std::atomic<int> yield_count_{0};  // == yielding_threads_.size()

  std::atomic<int> last_avoided_{-1};

  // Hot-event staging: allow/acquired/release triples cancel in the slot
  // buffers unless the monitor suspends coalescing for open calibration
  // probes. Flush threshold bounds buffered state per thread.
  static constexpr std::size_t kEventBufCap = 32;
  std::atomic<bool> coalesce_events_{true};
};

}  // namespace dimmunix

#endif  // DIMMUNIX_CORE_AVOIDANCE_H_
