// Copyright (c) dimmunix-cpp authors. MIT license.
//
// The acquisition port — the single instrumentation surface every lock
// adapter funnels through. One AcquireOp owns one run of the paper's
// protocol for one lock acquisition:
//
//     Runtime::BeginAcquire(lock, mode[, deadline])   request -> GO | YIELD
//         op.Decision()                               kGo / kReentrant / ...
//         <block on the underlying primitive>
//         op.Commit()      the acquisition happened   (allow -> hold edge)
//      or op.Cancel()      it did not (trylock busy,  (§6 `cancel` rollback)
//                          timedlock timeout)
//
// Runtime::TryBeginAcquire is the nonblocking form: it reports kBusy
// instead of yielding when acquiring would instantiate a signature.
//
// The handle is move-only and its destructor enforces the
// exactly-one-of-Commit/Cancel contract: a granted op abandoned without
// either is rolled back (debug builds assert). Adapters therefore cannot
// leak an allow edge, whatever their error paths do.
//
// AcquireMode threads reader/writer semantics through the whole stack:
// kShared holds never conflict with each other, so an rwlock adapter gets
// correct cycle detection (reader-reader is never a cycle; writer-involved
// cycles still match signatures) with no protocol code of its own. See
// sync::Mutex, sync::SharedMutex, and src/interpose/preload.cc for the
// three shipped adapters.

#ifndef DIMMUNIX_CORE_ACQUIRE_H_
#define DIMMUNIX_CORE_ACQUIRE_H_

#include <optional>

#include "src/common/clock.h"
#include "src/core/avoidance.h"
#include "src/event/event.h"

namespace dimmunix {

class Runtime;

class AcquireOp {
 public:
  AcquireOp(AcquireOp&& other) noexcept
      : engine_(other.engine_),
        thread_(other.thread_),
        lock_(other.lock_),
        mode_(other.mode_),
        decision_(other.decision_),
        settled_(other.settled_) {
    other.settled_ = true;
  }
  AcquireOp& operator=(AcquireOp&&) = delete;
  AcquireOp(const AcquireOp&) = delete;
  AcquireOp& operator=(const AcquireOp&) = delete;

  ~AcquireOp();

  // The engine's verdict for this acquisition. kGo/kReentrant grant the
  // acquisition and oblige the caller to Commit() or Cancel(); kBroken,
  // kTimedOut, and kBusy are terminal — the engine already rolled back.
  RequestDecision Decision() const { return decision_; }
  bool Granted() const {
    return decision_ == RequestDecision::kGo || decision_ == RequestDecision::kReentrant;
  }

  // The underlying acquisition succeeded: emit `acquired`, flip the allow
  // edge into a hold edge in the owner set. Legal in any decision state —
  // an uncancellable adapter (the LD_PRELOAD shim) can end up holding the
  // real lock even after a kBroken grant rollback, and the hold must still
  // be recorded or the owner set and RAG go blind to it.
  void Commit();

  // The underlying acquisition did not happen (trylock contention,
  // timedlock timeout): emit `cancel`, retract the allow edge (§6). A no-op
  // for non-kGo decisions (nothing was added that is still standing).
  void Cancel();

  ThreadId thread() const { return thread_; }
  LockId lock() const { return lock_; }
  AcquireMode mode() const { return mode_; }

  // Per-thread slot for cancellable blocking on the raw primitive (the
  // monitor's deadlock recovery cancels through it).
  ThreadSlot& slot() { return engine_->registry().Slot(thread_); }

 private:
  friend class Runtime;
  AcquireOp(AvoidanceEngine* engine, ThreadId thread, LockId lock, AcquireMode mode,
            RequestDecision decision)
      : engine_(engine), thread_(thread), lock_(lock), mode_(mode), decision_(decision),
        settled_(false) {}

  AvoidanceEngine* engine_;
  ThreadId thread_;
  LockId lock_;
  AcquireMode mode_;
  RequestDecision decision_;
  bool settled_;  // Commit or Cancel already happened (or the op was moved)
};

}  // namespace dimmunix

#endif  // DIMMUNIX_CORE_ACQUIRE_H_
