// Copyright (c) dimmunix-cpp authors. MIT license.
//
// The monitor thread (Figure 1, §5.2): wakes every τ milliseconds, drains
// the lock-free event queue, updates the RAG, searches for deadlock and
// yield cycles, archives their signatures to the persistent history, breaks
// induced starvation, and runs calibration bookkeeping — all outside the
// application's critical path.

#ifndef DIMMUNIX_CORE_MONITOR_H_
#define DIMMUNIX_CORE_MONITOR_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "src/common/config.h"
#include "src/core/avoidance.h"
#include "src/core/calibrator.h"
#include "src/core/stats.h"
#include "src/event/event_queue.h"
#include "src/persist/store.h"
#include "src/rag/rag.h"
#include "src/signature/history.h"

namespace dimmunix {

namespace obs {
class IncidentLog;
}  // namespace obs

class Monitor {
 public:
  // `store` (optional) is the asynchronous history writer: when present,
  // persisting a signature is an O(1) enqueue and all file I/O happens on
  // the store's thread; when null (tests that wire components by hand) the
  // monitor falls back to a synchronous History::Save. `recorder` (optional)
  // is the src/obs flight recorder: each RunOnce emits a kMonitorPass span
  // when tracing is live.
  Monitor(const Config& config, StackTable* stacks, History* history, EventQueue* queue,
          AvoidanceEngine* engine, persist::HistoryStore* store = nullptr,
          obs::Recorder* recorder = nullptr);
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  // Starts/stops the background thread. Tests that want deterministic
  // behavior leave it stopped and call RunOnce() themselves.
  void Start();
  void Stop();

  // One monitor iteration: drain events, detect, archive, break starvation,
  // expire calibration probes. Safe to call when the thread is not running.
  void RunOnce();

  // Hooks (§3: "Dimmunix can provide a hook in the monitor thread for
  // programs to define more sophisticated deadlock recovery methods; the
  // hook can be invoked right after the deadlock signature is saved").
  using DeadlockHook = std::function<void(const DeadlockCycle&, int signature_index)>;
  using StarvationHook = std::function<void(const StarvationCycle&, int signature_index)>;
  using RestartHook = std::function<void()>;  // strong immunity
  void SetDeadlockHook(DeadlockHook hook);
  void SetStarvationHook(StarvationHook hook);
  void SetRestartHook(RestartHook hook);

  // Incident forensics sink (src/obs/incident.h). Null (the default for
  // hand-wired test monitors) disables capture; the Runtime wires its log
  // before Start(). Captures happen at the detect/avoid/break sites inside
  // RunOnce, with the iteration lock held.
  void SetIncidentLog(obs::IncidentLog* log);

  // Control-plane snapshot hook: copies the RAG's observable state while the
  // monitor iteration lock is held, so it is safe to call from any thread
  // even while the background loop is running.
  RagSnapshot SnapshotRag();

  MonitorStats& stats() { return stats_; }
  Rag& rag() { return rag_; }  // single-threaded access: tests drive RunOnce themselves
  Calibrator& calibrator() { return calibrator_; }

 private:
  void Loop();
  void DrainEvents();
  void HandleDeadlocks();
  void HandleStarvations();
  void HandleCalibration();
  int ArchiveSignature(SignatureKind kind, const std::vector<StackId>& stacks, bool* added);
  void PersistHistory(int signature_index);
  // Snapshot one incident bundle (no-op without a log). `threads` leads
  // with the responsible thread when the caller knows it.
  void CaptureIncident(const char* kind, int signature_index,
                       const std::vector<ThreadId>& threads);

  const Config config_;
  StackTable* stacks_;
  History* history_;
  EventQueue* queue_;
  AvoidanceEngine* engine_;
  persist::HistoryStore* store_;
  obs::Recorder* recorder_;
  obs::IncidentLog* incident_log_ = nullptr;
  Rag rag_;
  Calibrator calibrator_;
  MonitorStats stats_;

  DeadlockHook deadlock_hook_;
  StarvationHook starvation_hook_;
  RestartHook restart_hook_;

  std::mutex run_m_;  // serializes RunOnce vs. the background loop
  std::mutex stop_m_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
  bool running_ = false;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_CORE_MONITOR_H_
