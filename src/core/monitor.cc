// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/core/monitor.h"

#include <algorithm>

#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/obs/incident.h"
#include "src/persist/image.h"

namespace dimmunix {

Monitor::Monitor(const Config& config, StackTable* stacks, History* history, EventQueue* queue,
                 AvoidanceEngine* engine, persist::HistoryStore* store, obs::Recorder* recorder)
    : config_(config),
      stacks_(stacks),
      history_(history),
      queue_(queue),
      engine_(engine),
      store_(store),
      recorder_(recorder),
      calibrator_(config) {}

Monitor::~Monitor() { Stop(); }

void Monitor::Start() {
  if (running_) {
    return;
  }
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void Monitor::Stop() {
  if (!running_) {
    return;
  }
  {
    std::lock_guard<std::mutex> guard(stop_m_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  running_ = false;
  // Final drain so no detected state is lost at shutdown.
  RunOnce();
}

void Monitor::Loop() {
  if (recorder_ != nullptr) {
    recorder_->NameThisThread("dimmunix-monitor");
  }
  std::unique_lock<std::mutex> stop_guard(stop_m_);
  while (!stop_requested_) {
    stop_guard.unlock();
    RunOnce();
    stop_guard.lock();
    stop_cv_.wait_for(stop_guard, config_.monitor_period, [this] { return stop_requested_; });
  }
}

void Monitor::RunOnce() {
  std::lock_guard<std::mutex> run_guard(run_m_);
  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t pass_begin =
      recorder_ != nullptr && recorder_->tracing() ? obs::NowNs() : 0;
  const std::uint64_t events_before =
      pass_begin != 0 ? stats_.events_processed.load(std::memory_order_relaxed) : 0;
  DrainEvents();
  HandleDeadlocks();
  HandleStarvations();
  HandleCalibration();
  // Open false-positive probes need to observe every acquired/release, so
  // hot-event coalescing pauses while any probe window is live.
  engine_->SetEventCoalescing(!config_.calibration_enabled ||
                              calibrator_.open_probes() == 0);
  if (pass_begin != 0) {
    const std::uint64_t end_ns = obs::NowNs();
    recorder_->Span(obs::TraceEventType::kMonitorPass, end_ns, end_ns - pass_begin,
                    /*aux=*/0, /*mode=*/0,
                    stats_.events_processed.load(std::memory_order_relaxed) - events_before);
  }
}

RagSnapshot Monitor::SnapshotRag() {
  std::lock_guard<std::mutex> run_guard(run_m_);
  return rag_.Snapshot();
}

void Monitor::DrainEvents() {
  const bool probes_enabled = config_.calibration_enabled;
  // Sweep the per-thread staging buffers first: a thread that is parked (or
  // blocked on a real mutex) cannot flush its own buffered wait/hold edges,
  // and detection must see them within one monitor tick.
  engine_->FlushAllThreadEvents();
  // Staged events reach the queue out of global order (each buffer flushes
  // as a unit); their emission-time stamps restore it. Applying in emission
  // order keeps the §5.2 guarantee — a release of L drains before another
  // thread's subsequent acquired of L.
  std::vector<Event> batch;
  while (auto popped = queue_->Pop()) {
    batch.push_back(std::move(*popped));
  }
  std::stable_sort(batch.begin(), batch.end(),
                   [](const Event& a, const Event& b) { return a.seq < b.seq; });
  for (Event& drained : batch) {
    Event* event = &drained;
    stats_.events_processed.fetch_add(1, std::memory_order_relaxed);
    if (event->type == EventType::kAvoided) {
      if (probes_enabled) {
        std::unordered_map<ThreadId, std::vector<LockId>> held_seed;
        for (const YieldCause& cause : event->causes) {
          held_seed[cause.thread] = rag_.HeldLocks(cause.thread);
        }
        calibrator_.OnAvoided(*event, held_seed, Now());
        stats_.fp_probes_opened.fetch_add(1, std::memory_order_relaxed);
        // Calibration ladder bookkeeping (§5.5).
        const int sig = event->signature_index;
        bool ladder_done = false;
        bool recalibrate = false;
        int new_depth = -1;
        history_->Mutate(sig, [&](Signature& s) {
          if (s.calibration.calibrating()) {
            ladder_done = s.calibration.RecordAvoidance(event->deepest_match_depth);
            new_depth = s.calibration.current_depth();
            s.match_depth = new_depth;
          } else {
            recalibrate = s.calibration.CountTowardRecalibration();
            if (recalibrate) {
              s.calibration.Restart();
              new_depth = s.calibration.current_depth();
              s.match_depth = new_depth;
            }
          }
        });
        if (new_depth > 0) {
          engine_->NotifyHistoryChanged();
        }
        if (ladder_done) {
          DIMMUNIX_LOG(kInfo) << "calibration complete for signature " << sig << ": depth "
                              << new_depth;
        }
      }
      // Forensics: an avoidance IS the immunity working, but the operator
      // still wants to know why a thread was parked. The yielding thread
      // leads the list (it is the bundle's "responsible thread").
      if (incident_log_ != nullptr) {
        std::vector<ThreadId> involved;
        involved.push_back(event->thread);
        for (const YieldCause& cause : event->causes) {
          if (std::find(involved.begin(), involved.end(), cause.thread) == involved.end()) {
            involved.push_back(cause.thread);
          }
        }
        CaptureIncident("avoidance", event->signature_index, involved);
      }
      continue;
    }
    if (event->type == EventType::kAcquired || event->type == EventType::kRelease) {
      calibrator_.OnLockOp(*event);
    }
    rag_.Apply(*event);
  }
}

int Monitor::ArchiveSignature(SignatureKind kind, const std::vector<StackId>& stacks,
                              bool* added) {
  // Drop invalid labels (e.g. a hold edge whose stack was never seen — can
  // happen only for events predating engine startup).
  std::vector<StackId> clean;
  clean.reserve(stacks.size());
  for (StackId id : stacks) {
    if (id != kInvalidStackId) {
      clean.push_back(id);
    }
  }
  if (clean.empty()) {
    *added = false;
    return -1;
  }
  const int initial_depth = config_.calibration_enabled ? 1 : config_.default_match_depth;
  const int index = history_->Add(kind, std::move(clean), initial_depth, added);
  if (*added) {
    stats_.signatures_saved.fetch_add(1, std::memory_order_relaxed);
    if (config_.calibration_enabled) {
      history_->Mutate(index, [&](Signature& s) {
        s.calibration =
            CalibrationState(config_.max_match_depth, config_.calibration_na,
                             config_.calibration_nt);
        s.match_depth = s.calibration.current_depth();
      });
    }
    PersistHistory(index);
    engine_->NotifyHistoryChanged();
  }
  return index;
}

void Monitor::PersistHistory(int signature_index) {
  if (config_.history_path.empty() || !config_.save_history_on_update) {
    return;
  }
  if (store_ != nullptr) {
    // O(1) enqueue: the store's writer thread journals the delta, so file
    // I/O never delays the detection loop (or, worse, event draining).
    store_->NotifySignatureChanged(signature_index);
  } else {
    history_->Save(config_.history_path);
  }
}

void Monitor::HandleDeadlocks() {
  for (const DeadlockCycle& cycle : rag_.DetectDeadlocks()) {
    stats_.deadlocks_detected.fetch_add(1, std::memory_order_relaxed);
    bool added = false;
    const int index = ArchiveSignature(SignatureKind::kDeadlock, cycle.stacks, &added);
    DIMMUNIX_LOG(kInfo) << "deadlock detected: " << cycle.threads.size()
                        << " thread(s); signature " << index << (added ? " (new)" : " (known)");
    if (deadlock_hook_) {
      deadlock_hook_(cycle, index);
    }
    CaptureIncident("deadlock", index, cycle.threads);
    if (config_.deadlock_action == DeadlockAction::kBreakVictim && !cycle.threads.empty()) {
      // A cross-process cycle can contain foreign (bridge-mirrored)
      // threads; only a LOCAL thread's acquisition can be canceled from
      // here. Break the first local participant — if the cycle is entirely
      // foreign, its owners' monitors will break it on their side.
      for (const ThreadId victim : cycle.threads) {
        if (engine_->registry().Contains(victim)) {
          engine_->CancelAcquisition(victim);
          break;
        }
      }
    }
  }
}

void Monitor::HandleStarvations() {
  for (const StarvationCycle& cycle : rag_.DetectStarvations()) {
    stats_.starvations_detected.fetch_add(1, std::memory_order_relaxed);
    bool added = false;
    const int index = ArchiveSignature(SignatureKind::kStarvation, cycle.stacks, &added);
    DIMMUNIX_LOG(kInfo) << "induced starvation detected (starved thread " << cycle.starved
                        << "); signature " << index;
    if (starvation_hook_) {
      starvation_hook_(cycle, index);
    }
    CaptureIncident("starvation", index, cycle.threads);
    if (config_.immunity == ImmunityMode::kStrong) {
      // §5.4: "In strong immunity mode, the program is restarted every time
      // a starvation is encountered."
      stats_.restarts_requested.fetch_add(1, std::memory_order_relaxed);
      if (restart_hook_) {
        restart_hook_();
      }
    } else {
      // Weak immunity: break the starvation by releasing the yielding
      // thread that holds the most locks (§3).
      const ThreadId victim =
          cycle.break_victim != kInvalidThreadId ? cycle.break_victim : cycle.starved;
      engine_->BreakYield(victim);
      stats_.starvations_broken.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Monitor::HandleCalibration() {
  for (const ProbeVerdict& verdict : calibrator_.Expire(Now())) {
    if (verdict.false_positive) {
      stats_.false_positives.fetch_add(1, std::memory_order_relaxed);
      history_->RecordFalsePositive(verdict.signature_index);
    } else {
      stats_.true_positives.fetch_add(1, std::memory_order_relaxed);
    }
    bool obsolete = false;
    history_->Mutate(verdict.signature_index, [&](Signature& s) {
      s.calibration.RecordVerdict(verdict.depth, verdict.deepest, verdict.false_positive);
      // §8: "any signatures that encounter 100% false positive rate after
      // this recalibration can be automatically discarded as obsolete."
      // Checked on every verdict once the ladder settled, so lagging probe
      // windows still count.
      if (!s.disabled && !s.calibration.calibrating()) {
        const int chosen = s.calibration.current_depth();
        const bool enough_data =
            s.calibration.avoid_count(chosen) >= static_cast<std::uint32_t>(config_.calibration_na);
        if (enough_data && s.calibration.FpRate(chosen) >= 1.0) {
          s.disabled = true;
          obsolete = true;
        }
      }
    });
    if (obsolete) {
      stats_.signatures_discarded.fetch_add(1, std::memory_order_relaxed);
      engine_->NotifyHistoryChanged();
      PersistHistory(verdict.signature_index);
      DIMMUNIX_LOG(kInfo) << "signature " << verdict.signature_index
                          << " discarded as obsolete (100% FP after recalibration)";
    }
  }
}

void Monitor::CaptureIncident(const char* kind, int signature_index,
                              const std::vector<ThreadId>& threads) {
  if (incident_log_ == nullptr || !incident_log_->enabled()) {
    return;
  }
  obs::IncidentContext ctx;
  ctx.kind = kind;
  ctx.signature_index = signature_index;
  if (signature_index >= 0 && static_cast<std::size_t>(signature_index) < history_->size()) {
    const Signature sig = history_->Get(signature_index);
    ctx.match_depth = sig.match_depth;
    persist::SignatureRecord rec;
    rec.kind = static_cast<std::uint8_t>(sig.kind);
    rec.match_depth = sig.match_depth;
    for (const StackId stack : sig.stacks) {
      rec.stacks.push_back(stacks_->Get(stack).frames);
      ctx.signature_stacks.push_back(stacks_->Describe(stack));
    }
    ctx.signature_hash = persist::SignatureHash(rec);
  }
  ctx.threads = threads;
  // The responsible thread is the first LOCAL participant — foreign
  // (bridge-mirrored) threads have no ring in this process.
  for (const ThreadId thread : threads) {
    if (engine_->registry().Contains(thread)) {
      ctx.victim = thread;
      ctx.victim_os_tid = engine_->registry().Slot(thread).os_tid;
      break;
    }
  }
  ctx.rag = rag_.Snapshot();
  incident_log_->Capture(ctx);
}

void Monitor::SetIncidentLog(obs::IncidentLog* log) { incident_log_ = log; }

void Monitor::SetDeadlockHook(DeadlockHook hook) { deadlock_hook_ = std::move(hook); }
void Monitor::SetStarvationHook(StarvationHook hook) { starvation_hook_ = std::move(hook); }
void Monitor::SetRestartHook(RestartHook hook) { restart_hook_ = std::move(hook); }

}  // namespace dimmunix
