// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/core/acquire.h"

#include <cassert>

#include "src/common/logging.h"

namespace dimmunix {

AcquireOp::~AcquireOp() {
  if (settled_ || !Granted()) {
    return;
  }
  // A granted acquisition was abandoned without Commit or Cancel. Rolling
  // back is always safe (the allow edge is retracted); the adapter is buggy.
  assert(false && "AcquireOp dropped without Commit() or Cancel()");
  DIMMUNIX_LOG(kWarn) << "AcquireOp for lock " << lock_
                      << " dropped without Commit/Cancel; rolling back";
  Cancel();
}

void AcquireOp::Commit() {
  assert(!settled_ && "Commit() on an already-settled AcquireOp");
  if (settled_) {
    return;
  }
  settled_ = true;
  engine_->Acquired(thread_, lock_, mode_);
}

void AcquireOp::Cancel() {
  assert(!settled_ && "Cancel() on an already-settled AcquireOp");
  if (settled_) {
    return;
  }
  settled_ = true;
  if (decision_ != RequestDecision::kGo) {
    // Reentrant grants added no request edge; kBroken/kTimedOut/kBusy were
    // already rolled back by the engine. Nothing is standing.
    return;
  }
  engine_->CancelRequest(thread_, lock_, mode_);
}

}  // namespace dimmunix
