// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Dense per-runtime thread identities and per-thread engine state.
//
// §5.6: "we achieve O(1) lookup of thread and lock nodes, because they are
// kept in a preallocated vector ... data structures necessary for avoidance
// and detection are themselves embedded in the thread and lock nodes. For
// example, the set yieldCause containing all of a thread T's yield edges is
// directly accessible from the thread node T." ThreadSlot is that node; it
// also carries the parking lot used to implement yields (the Java version's
// per-thread yieldLock[T] object, §6).

#ifndef DIMMUNIX_CORE_THREAD_REGISTRY_H_
#define DIMMUNIX_CORE_THREAD_REGISTRY_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/atomic_slab.h"
#include "src/common/spin_lock.h"
#include "src/event/event.h"

namespace dimmunix {

struct ThreadSlot {
  ThreadId id = kInvalidThreadId;
  // OS thread id at registration time — what maps an engine ThreadId onto
  // its flight-recorder trace ring (incident forensics). Written once at
  // registration, read by the monitor thread.
  std::uint64_t os_tid = 0;

  // --- Parking lot (yield implementation; §6 yieldLock[T]) -----------------
  std::mutex park_m;
  std::condition_variable park_cv;
  bool wake_pending = false;  // guarded by park_m

  // --- Avoidance state -------------------------------------------------------
  // yield_causes/yielding are guarded by the engine's yield-set lock (they
  // are read by releasers waking yielders); pending_* and held are touched
  // only by the owning thread; skip_avoidance_once is set by the monitor's
  // starvation breaker and consumed by the owner, hence atomic.
  std::vector<YieldCause> yield_causes;  // yieldCause[T]
  bool yielding = false;
  std::atomic<bool> skip_avoidance_once{false};  // set when starvation is broken for T
  StackId pending_stack = kInvalidStackId;  // stack captured at Request time
  LockId pending_lock = kInvalidLockId;
  // Acquire-latency span start (src/obs): stamped at Request entry, consumed
  // at Acquired/CancelRequest. Owner thread only; 0 = no span open.
  std::uint64_t acquire_begin_ns = 0;

  struct Held {
    LockId lock = kInvalidLockId;
    StackId stack = kInvalidStackId;
    int count = 0;
    // Mode this thread holds the lock in (kShared promoted to kExclusive on
    // a committed upgrade). Lets Request answer the reentrancy question from
    // the thread's own slot without a lock-owner stripe round trip.
    AcquireMode mode = AcquireMode::kExclusive;
  };
  std::vector<Held> held;

  // Hot-path event staging (kAllow/kAcquired/kRelease/kCancel). The owner
  // thread appends; an uncontended allow+acquired+release triple cancels in
  // place and never reaches the monitor queue. Spin-guarded (not owner-only)
  // so the monitor can sweep the buffer of a thread that is blocked on a
  // real mutex — a deadlocked thread cannot flush its own wait edge.
  SpinLock ev_m;
  std::vector<Event> ev_buf;

  // Hazard pointer for the engine's signature-cache generation: while this
  // thread reads a generation without holding any stripe (the lock-free
  // staleness check + fast reject), it publishes the pointer here so cache
  // rebuilds do not reclaim that generation underneath it. Type-erased to
  // keep the registry independent of engine internals.
  std::atomic<const void*> sig_gen_hazard{nullptr};

  // --- Deadlock-recovery support --------------------------------------------
  // The sync layer registers a canceler while blocked on the underlying
  // mutex, so the monitor can break a deadlock victim out (guarded by
  // canceler_m).
  std::mutex canceler_m;
  std::function<void()> acquisition_canceler;
  std::atomic<bool> acquisition_canceled{false};
};

class ThreadRegistry {
 public:
  ThreadRegistry();
  ThreadRegistry(const ThreadRegistry&) = delete;
  ThreadRegistry& operator=(const ThreadRegistry&) = delete;

  // Returns the calling thread's id in this registry, registering it on
  // first use. O(1) after the first call (thread-local cache).
  ThreadId RegisterCurrentThread();

  // Lock-free: slots live in an append-only slab, so the lookup is two
  // acquire loads. The registry sits on every Request/Acquired/Release, so
  // it must not be a serialization point.
  ThreadSlot& Slot(ThreadId id) { return *slots_.Get(static_cast<std::size_t>(id)); }
  const ThreadSlot& Slot(ThreadId id) const {
    return *slots_.Get(static_cast<std::size_t>(id));
  }

  // True when `id` names a registered thread. Monitor-side operations can
  // receive ids from stale or synthetic events and must check first.
  bool Contains(ThreadId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < slots_.size();
  }

  std::size_t size() const { return slots_.size(); }

 private:
  // Distinguishes registry instances even when a new registry reuses a
  // destroyed one's address — the thread-local id cache is keyed by this.
  const std::uint64_t uid_;
  SpinLock lock_;  // serializes registration (slab append)
  AtomicSlab<ThreadSlot> slots_;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_CORE_THREAD_REGISTRY_H_
