// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Engine-wide counters surfaced to benchmarks (yields/second in Figure 5,
// FP counts in Figure 9) and to tests.

#ifndef DIMMUNIX_CORE_STATS_H_
#define DIMMUNIX_CORE_STATS_H_

#include <atomic>
#include <cstdint>

namespace dimmunix {

struct EngineStats {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> gos{0};
  std::atomic<std::uint64_t> yields{0};
  std::atomic<std::uint64_t> wakes{0};
  std::atomic<std::uint64_t> yield_timeouts{0};
  std::atomic<std::uint64_t> reentrant_acquisitions{0};
  std::atomic<std::uint64_t> acquisitions{0};
  std::atomic<std::uint64_t> releases{0};
  std::atomic<std::uint64_t> trylock_cancels{0};
  std::atomic<std::uint64_t> broken_acquisitions{0};
  std::atomic<std::uint64_t> signatures_disabled{0};
  // Figure 9 accounting: a yield whose signature cover still matches at the
  // maximum depth is a depth-true positive; one that matches only at the
  // (shallower) configured depth is a depth-false positive.
  std::atomic<std::uint64_t> depth_true_yields{0};
  std::atomic<std::uint64_t> depth_fp_yields{0};
};

struct MonitorStats {
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> events_processed{0};
  std::atomic<std::uint64_t> deadlocks_detected{0};
  std::atomic<std::uint64_t> starvations_detected{0};
  std::atomic<std::uint64_t> signatures_saved{0};
  std::atomic<std::uint64_t> starvations_broken{0};
  std::atomic<std::uint64_t> restarts_requested{0};
  std::atomic<std::uint64_t> fp_probes_opened{0};
  std::atomic<std::uint64_t> false_positives{0};
  std::atomic<std::uint64_t> true_positives{0};
  // Signatures auto-disabled as obsolete after a 100%-FP recalibration (§8).
  std::atomic<std::uint64_t> signatures_discarded{0};
};

}  // namespace dimmunix

#endif  // DIMMUNIX_CORE_STATS_H_
