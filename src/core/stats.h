// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Engine-wide counters surfaced to benchmarks (yields/second in Figure 5,
// FP counts in Figure 9), to tests, and to the control plane.
//
// Engine counters are sharded across cache lines (ShardedCounter): they are
// bumped several times per instrumented lock operation from every
// application thread, and a single atomic per counter would put a contended
// cache line back on the striped hot path. Increments stay exact — each
// lands on one shard — and Snapshot()/load() folds the shards into plain
// values, so readers on other threads (notably the control server's `stats`
// command) work with one coherent copy. Monitor counters are only written
// by the monitor thread and stay plain atomics.

#ifndef DIMMUNIX_CORE_STATS_H_
#define DIMMUNIX_CORE_STATS_H_

#include <atomic>
#include <cstdint>

#include "src/common/sharded_counter.h"

namespace dimmunix {

// Plain-value copies of the counters, safe to pass across threads.
struct EngineStatsSnapshot {
  std::uint64_t requests = 0;
  std::uint64_t gos = 0;
  std::uint64_t yields = 0;
  std::uint64_t wakes = 0;
  std::uint64_t yield_timeouts = 0;
  std::uint64_t reentrant_acquisitions = 0;
  std::uint64_t acquisitions = 0;
  std::uint64_t releases = 0;
  std::uint64_t trylock_cancels = 0;
  std::uint64_t broken_acquisitions = 0;
  std::uint64_t signatures_disabled = 0;
  std::uint64_t depth_true_yields = 0;
  std::uint64_t depth_fp_yields = 0;
  std::uint64_t epoch_entries = 0;
  std::uint64_t epoch_stall_ns = 0;
  std::uint64_t epoch_hold_ns = 0;
  std::uint64_t match_fast_path = 0;
  std::uint64_t match_slow_path = 0;
  std::uint64_t match_fast_retries = 0;
};

struct MonitorStatsSnapshot {
  std::uint64_t batches = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t deadlocks_detected = 0;
  std::uint64_t starvations_detected = 0;
  std::uint64_t signatures_saved = 0;
  std::uint64_t starvations_broken = 0;
  std::uint64_t restarts_requested = 0;
  std::uint64_t fp_probes_opened = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t true_positives = 0;
  std::uint64_t signatures_discarded = 0;
};

struct EngineStats {
  ShardedCounter requests;
  ShardedCounter gos;
  ShardedCounter yields;
  ShardedCounter wakes;
  ShardedCounter yield_timeouts;
  ShardedCounter reentrant_acquisitions;
  ShardedCounter acquisitions;
  ShardedCounter releases;
  ShardedCounter trylock_cancels;
  ShardedCounter broken_acquisitions;
  ShardedCounter signatures_disabled;
  // Figure 9 accounting: a yield whose signature cover still matches at the
  // maximum depth is a depth-true positive; one that matches only at the
  // (shallower) configured depth is a depth-false positive.
  ShardedCounter depth_true_yields;
  ShardedCounter depth_fp_yields;
  // Stop-the-stripes accounting (always on): entries into the slot epoch,
  // the total time spent waiting for the Peterson filter + every stripe lock
  // before each entry, and the total time the epoch was then held. With the
  // incremental matcher the epoch is the rare slow path, so epoch_entries
  // staying near zero under load is itself the signal that the tail fix
  // holds; the per-entry hold distribution is on the obs epoch-hold
  // histogram and bounded by Config::epoch_hold_bound in debug builds.
  ShardedCounter epoch_entries;
  ShardedCounter epoch_stall_ns;
  ShardedCounter epoch_hold_ns;
  // Cover-search routing: requests decided from per-stripe snapshots without
  // entering the epoch (fast) vs. requests that fell back to the
  // stop-the-stripes search (slow), plus fast-path validation retries.
  ShardedCounter match_fast_path;
  ShardedCounter match_slow_path;
  ShardedCounter match_fast_retries;

  EngineStatsSnapshot Snapshot() const {
    EngineStatsSnapshot s;
    s.requests = requests.load(std::memory_order_relaxed);
    s.gos = gos.load(std::memory_order_relaxed);
    s.yields = yields.load(std::memory_order_relaxed);
    s.wakes = wakes.load(std::memory_order_relaxed);
    s.yield_timeouts = yield_timeouts.load(std::memory_order_relaxed);
    s.reentrant_acquisitions = reentrant_acquisitions.load(std::memory_order_relaxed);
    s.acquisitions = acquisitions.load(std::memory_order_relaxed);
    s.releases = releases.load(std::memory_order_relaxed);
    s.trylock_cancels = trylock_cancels.load(std::memory_order_relaxed);
    s.broken_acquisitions = broken_acquisitions.load(std::memory_order_relaxed);
    s.signatures_disabled = signatures_disabled.load(std::memory_order_relaxed);
    s.depth_true_yields = depth_true_yields.load(std::memory_order_relaxed);
    s.depth_fp_yields = depth_fp_yields.load(std::memory_order_relaxed);
    s.epoch_entries = epoch_entries.load(std::memory_order_relaxed);
    s.epoch_stall_ns = epoch_stall_ns.load(std::memory_order_relaxed);
    s.epoch_hold_ns = epoch_hold_ns.load(std::memory_order_relaxed);
    s.match_fast_path = match_fast_path.load(std::memory_order_relaxed);
    s.match_slow_path = match_slow_path.load(std::memory_order_relaxed);
    s.match_fast_retries = match_fast_retries.load(std::memory_order_relaxed);
    return s;
  }
};

struct MonitorStats {
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> events_processed{0};
  std::atomic<std::uint64_t> deadlocks_detected{0};
  std::atomic<std::uint64_t> starvations_detected{0};
  std::atomic<std::uint64_t> signatures_saved{0};
  std::atomic<std::uint64_t> starvations_broken{0};
  std::atomic<std::uint64_t> restarts_requested{0};
  std::atomic<std::uint64_t> fp_probes_opened{0};
  std::atomic<std::uint64_t> false_positives{0};
  std::atomic<std::uint64_t> true_positives{0};
  // Signatures auto-disabled as obsolete after a 100%-FP recalibration (§8).
  std::atomic<std::uint64_t> signatures_discarded{0};

  MonitorStatsSnapshot Snapshot() const {
    MonitorStatsSnapshot s;
    s.batches = batches.load(std::memory_order_relaxed);
    s.events_processed = events_processed.load(std::memory_order_relaxed);
    s.deadlocks_detected = deadlocks_detected.load(std::memory_order_relaxed);
    s.starvations_detected = starvations_detected.load(std::memory_order_relaxed);
    s.signatures_saved = signatures_saved.load(std::memory_order_relaxed);
    s.starvations_broken = starvations_broken.load(std::memory_order_relaxed);
    s.restarts_requested = restarts_requested.load(std::memory_order_relaxed);
    s.fp_probes_opened = fp_probes_opened.load(std::memory_order_relaxed);
    s.false_positives = false_positives.load(std::memory_order_relaxed);
    s.true_positives = true_positives.load(std::memory_order_relaxed);
    s.signatures_discarded = signatures_discarded.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace dimmunix

#endif  // DIMMUNIX_CORE_STATS_H_
