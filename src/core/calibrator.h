// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Retrospective false-positive analysis (§5.5).
//
// "After deciding to avoid a given signature X, Dimmunix performs a
// retrospective analysis: all lock operations performed by threads involved
// in the potential deadlock are logged to the monitor thread, along with
// lock operations performed by the blocked thread after it was released from
// the yield. The monitor thread then looks for lock inversions in this log;
// if none are found, the avoidance was likely a FP."
//
// Implementation: every kAvoided event opens a *probe* listing the involved
// threads. While a probe is open, the calibrator shadows the acquired /
// release events of the involved threads (it also seeds each thread's held
// set from the monitor's RAG, so locks taken before the probe opened still
// participate in inversion detection). A lock inversion exists when one
// involved thread acquired y while holding x and another acquired x while
// holding y. When the probe's window expires, the verdict (FP or true
// positive) is reported for the signature/depth the avoidance used.

#ifndef DIMMUNIX_CORE_CALIBRATOR_H_
#define DIMMUNIX_CORE_CALIBRATOR_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/common/config.h"
#include "src/event/event.h"

namespace dimmunix {

struct ProbeVerdict {
  int signature_index = -1;
  int depth = 0;
  int deepest = 0;
  bool false_positive = false;
};

class Calibrator {
 public:
  explicit Calibrator(const Config& config) : config_(config) {}

  // Opens a probe for an avoidance. `held_seed` provides, per involved
  // thread, the locks it currently holds according to the RAG.
  void OnAvoided(const Event& event,
                 const std::unordered_map<ThreadId, std::vector<LockId>>& held_seed,
                 MonoTime now);

  // Feeds a lock-operation event (kAcquired / kRelease) to open probes.
  void OnLockOp(const Event& event);

  // Returns the verdicts of probes whose window ended or which collected
  // the maximum number of operations.
  std::vector<ProbeVerdict> Expire(MonoTime now);

  std::size_t open_probes() const { return probes_.size(); }

 private:
  struct Probe {
    int signature_index = -1;
    int depth = 0;
    int deepest = 0;
    MonoTime deadline;
    int ops_seen = 0;
    std::unordered_set<ThreadId> involved;
    // Current held-set per involved thread (seeded + updated from events).
    std::unordered_map<ThreadId, std::vector<LockId>> held;
    // Ordered (held, acquired) pairs per thread.
    std::unordered_map<ThreadId, std::vector<std::pair<LockId, LockId>>> pairs;
  };

  static bool HasInversion(const Probe& probe);

  const Config config_;
  std::deque<Probe> probes_;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_CORE_CALIBRATOR_H_
