// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/core/calibrator.h"

#include <algorithm>

namespace dimmunix {

void Calibrator::OnAvoided(const Event& event,
                           const std::unordered_map<ThreadId, std::vector<LockId>>& held_seed,
                           MonoTime now) {
  Probe probe;
  probe.signature_index = event.signature_index;
  probe.depth = event.match_depth;
  probe.deepest = event.deepest_match_depth;
  probe.deadline = now + config_.fp_probe_window;
  for (const YieldCause& cause : event.causes) {
    probe.involved.insert(cause.thread);
  }
  for (ThreadId thread : probe.involved) {
    auto it = held_seed.find(thread);
    if (it != held_seed.end()) {
      probe.held[thread] = it->second;
    }
  }
  probes_.push_back(std::move(probe));
}

void Calibrator::OnLockOp(const Event& event) {
  for (Probe& probe : probes_) {
    if (probe.involved.find(event.thread) == probe.involved.end()) {
      continue;
    }
    auto& held = probe.held[event.thread];
    if (event.type == EventType::kAcquired) {
      for (LockId h : held) {
        probe.pairs[event.thread].emplace_back(h, event.lock);
      }
      held.push_back(event.lock);
      ++probe.ops_seen;
    } else if (event.type == EventType::kRelease) {
      held.erase(std::remove(held.begin(), held.end(), event.lock), held.end());
      ++probe.ops_seen;
    }
  }
}

bool Calibrator::HasInversion(const Probe& probe) {
  // Inversion: thread A produced the ordered pair (x, y) and a *different*
  // thread B produced (y, x).
  for (const auto& [thread_a, pairs_a] : probe.pairs) {
    for (const auto& [x, y] : pairs_a) {
      for (const auto& [thread_b, pairs_b] : probe.pairs) {
        if (thread_b == thread_a) {
          continue;
        }
        for (const auto& [u, v] : pairs_b) {
          if (u == y && v == x) {
            return true;
          }
        }
      }
    }
  }
  return false;
}

std::vector<ProbeVerdict> Calibrator::Expire(MonoTime now) {
  std::vector<ProbeVerdict> verdicts;
  for (auto it = probes_.begin(); it != probes_.end();) {
    const bool window_over = now >= it->deadline;
    const bool saturated = it->ops_seen >= config_.fp_probe_max_ops;
    if (!window_over && !saturated) {
      ++it;
      continue;
    }
    ProbeVerdict verdict;
    verdict.signature_index = it->signature_index;
    verdict.depth = it->depth;
    verdict.deepest = it->deepest;
    verdict.false_positive = !HasInversion(*it);
    verdicts.push_back(verdict);
    it = probes_.erase(it);
  }
  return verdicts;
}

}  // namespace dimmunix
