// Copyright (c) dimmunix-cpp authors. MIT license.
//
// The shared-memory IPC arena: a crash-tolerant, fixed-layout mmap'd file
// (named by DIMMUNIX_IPC / Config::ipc_path) through which every
// participating process publishes its wait/hold edges for *global* locks
// (src/core/global_port.h), so each process's bridge thread can fold the
// others' edges into its local RAG and Allowed sets.
//
// Layout (all offsets 8-byte aligned; spec in docs/ipc-arena.md):
//
//   ArenaHeader        magic "DIMA", version, table geometry
//   Participant[P]     one slot per attached process instance: pid +
//                      /proc start-time (liveness identity), a claim
//                      generation, a heartbeat
//   EdgeRecord[P*E]    per-participant edge table: (thread, lock, wait|hold,
//                      mode, count, proc-qualified stack frames)
//
// Concurrency model:
//   * Each participant writes ONLY its own participant slot and edge rows;
//     there is no cross-process write contention on the hot path.
//   * Every mutable record is seqlock-published (odd seq = write in
//     progress); readers copy and retry, so a reader can never observe a
//     torn edge. Field accesses go through std::atomic_ref, which keeps the
//     same code correct for the in-process multi-runtime case (tests) and
//     visible to TSan.
//   * Crash tolerance: a SIGKILL'd participant leaves its slot claimed and
//     its edges standing. Liveness sweeps (kill(pid,0) + start-time
//     comparison, so pid reuse cannot resurrect a corpse) reclaim the slot:
//     exactly one sweeper wins the pid CAS, then clears the edges. Bridges
//     treat the disappearance as releases, so a dead holder can never wedge
//     the fleet.
//
// The arena holds NO pointers and no process-local values other than pids
// and thread ids interpreted relative to their participant slot; any
// process can mmap it at any address.

#ifndef DIMMUNIX_IPC_ARENA_H_
#define DIMMUNIX_IPC_ARENA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/spin_lock.h"
#include "src/core/global_port.h"

namespace dimmunix {
namespace ipc {

// One foreign wait/hold edge copied out of the arena.
struct ForeignEdge {
  int participant = -1;
  std::uint64_t generation = 0;  // claim generation of the publishing slot
  std::uint32_t pid = 0;
  ThreadId thread = kInvalidThreadId;  // publisher-local thread id
  LockId lock = kInvalidLockId;
  bool hold = false;  // false: wait (request/allow) edge
  AcquireMode mode = AcquireMode::kExclusive;
  std::uint32_t count = 0;  // reentrant hold depth (holds only)
  LockRange range;  // byte range for fcntl record locks (group 0 = none);
                    // zeroed unless the publishing slot speaks protocol >= 2
  std::vector<Frame> frames;  // proc-qualified stack, innermost first
};

// Control-plane summary of one participant slot.
struct ParticipantInfo {
  int index = -1;
  std::uint32_t pid = 0;
  std::uint64_t generation = 0;
  std::uint64_t start_time = 0;
  std::int64_t heartbeat_age_ms = -1;
  std::size_t edges = 0;
  std::uint32_t proto_version = 0;  // 0/1 = a v1 participant (no range data)
  std::uint32_t flush_seq = 0;      // completed pending-log flushes
  bool alive = false;
  bool self = false;
};

class IpcArena {
 public:
  static constexpr std::uint32_t kMagic = 0x414D4944;  // "DIMA" little-endian
  // Protocol v2 (docs/ipc-arena.md): same geometry as v1, but edge rows
  // carry an fcntl byte range in what used to be frames[10..11]+pad, and
  // participant slots publish proto_version + flush_seq in former pad
  // words. Openers accept v1 files unchanged; creators write v2.
  static constexpr std::uint16_t kVersion = 2;
  static constexpr std::uint16_t kMinVersion = 1;
  static constexpr int kParticipants = 64;
  static constexpr int kEdgesPerParticipant = 128;
  static constexpr int kMaxFrames = 10;

  // Opens (creating and initializing if absent) the arena at `path` and
  // claims a participant slot. Returns null with `*error` set when the file
  // cannot be mapped, has a wrong magic/version/geometry, or every
  // participant slot is taken by a live process.
  static std::unique_ptr<IpcArena> OpenOrCreate(const std::string& path, std::string* error);

  ~IpcArena();

  IpcArena(const IpcArena&) = delete;
  IpcArena& operator=(const IpcArena&) = delete;

  int participant_index() const { return self_index_; }
  std::uint64_t generation() const { return self_generation_; }
  const std::string& path() const { return path_; }

  // --- Local publishing (application threads; global locks only) -----------
  // One logical edge per (thread, lock); a hold published over a standing
  // wait reuses the row. Exception: a wait published over a standing hold —
  // a shared->exclusive upgrade — takes a SECOND row, so peers see both the
  // hold and the wait and can detect upgrade-upgrade cycles. Publishing is
  // drop-on-overflow: when all edge rows are in use the edge is counted in
  // dropped_publishes() and skipped — avoidance degrades to single-process
  // behavior, never blocks.
  void PublishWait(ThreadId thread, LockId lock, AcquireMode mode,
                   const std::vector<Frame>& frames, const LockRange& range = {});
  void ClearWait(ThreadId thread, LockId lock);
  void PublishHold(ThreadId thread, LockId lock, AcquireMode mode,
                   const std::vector<Frame>& frames, const LockRange& range = {});
  void ClearHold(ThreadId thread, LockId lock);

  std::uint64_t dropped_publishes() const;

  // Bumps this participant's published flush_seq (one completed drain of
  // the bridge's pending op-log; protocol v2 observability).
  void BumpFlushSeq();

  // --- Reading (bridge thread, control plane) -------------------------------
  // Copies every published edge of every *other* live-claimed participant.
  std::vector<ForeignEdge> SnapshotForeign() const;
  std::vector<ParticipantInfo> Participants() const;

  // Refreshes this participant's heartbeat (bridge tick).
  void Heartbeat();

  // Reclaims slots whose owner is gone (pid dead, or pid reused by a
  // process with a different start time). Returns slots reclaimed.
  int SweepDeadParticipants();

 private:
  IpcArena(std::string path, void* base, std::size_t size);

  struct Key {
    ThreadId thread;
    LockId lock;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  // Row accessors into the mapping.
  void* HeaderPtr() const;
  void* ParticipantPtr(int index) const;
  void* EdgePtr(int participant, int index) const;

  bool Claim(std::string* error);
  void ClearOwnEdgesLocked();

  // Publishes `hold`/`mode`/`frames`/`range` into row `row` under its seqlock.
  void WriteEdgeRow(int row, ThreadId thread, LockId lock, bool hold, AcquireMode mode,
                    std::uint32_t count, const std::vector<Frame>& frames,
                    const LockRange& range);
  void FreeEdgeRow(int row);

  const std::string path_;
  void* base_ = nullptr;
  std::size_t size_ = 0;
  int self_index_ = -1;
  std::uint64_t self_generation_ = 0;

  // Process-local index of this participant's published edges.
  mutable SpinLock local_m_;
  std::unordered_map<Key, int, KeyHash> rows_;  // (thread, lock) -> edge row
  // Distinct wait rows for shared->exclusive upgrades: when (thread, lock)
  // already has a hold row, its upgrade's wait edge gets a second row here
  // so the hold stays visible while the wait is published. Freed when the
  // upgrade commits (PublishHold) or is withdrawn (ClearWait).
  std::unordered_map<Key, int, KeyHash> upgrade_rows_;
  std::vector<int> free_rows_;
  std::uint64_t dropped_ = 0;
};

// Liveness probe shared with tests: the start time (clock ticks since boot,
// /proc/<pid>/stat field 22) of `pid`, or 0 when the process is gone.
std::uint64_t ProcessStartTime(std::uint32_t pid);

}  // namespace ipc
}  // namespace dimmunix

#endif  // DIMMUNIX_IPC_ARENA_H_
