// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/ipc/global_id.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/common/spin_lock.h"

namespace dimmunix {
namespace ipc {
namespace {

LockId Tagged(std::uint64_t h) {
  // The hash must carry the global bit and must not collapse to an invalid
  // id once tagged.
  LockId id = h | kGlobalLockBit;
  if (id == kGlobalLockBit) {
    id |= 1;
  }
  return id;
}

std::uint64_t IdentityHash(GlobalLockKind kind, std::uint64_t dev, std::uint64_t ino,
                           std::uint64_t offset, std::uint64_t length = 0) {
  std::uint64_t h = Fnv1a64(&kind, sizeof(kind));
  h = HashCombine(h, dev);
  h = HashCombine(h, ino);
  h = HashCombine(h, offset);
  if (length != 0) {
    // Folded in only when nonzero so pre-existing flock/shared-memory ids
    // (and persisted histories containing them) keep their values.
    h = HashCombine(h, length);
  }
  return h;
}

// One MAP_SHARED region of /proc/self/maps: [start, end) backed by
// (dev, inode) at file offset pgoff.
struct SharedRegion {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  std::uint64_t pgoff = 0;
  std::uint64_t dev = 0;
  std::uint64_t ino = 0;
};

SpinLock g_maps_lock;
std::vector<SharedRegion>* g_maps_cache = nullptr;  // sorted by start; leaked

// Parses /proc/self/maps, keeping only shared ('s') regions. Runs rarely
// (first global-mutex touch, or after a miss on a fresh mmap).
std::vector<SharedRegion> ParseSharedMaps() {
  std::vector<SharedRegion> regions;
  std::FILE* f = std::fopen("/proc/self/maps", "r");
  if (f == nullptr) {
    return regions;
  }
  char line[512];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    std::uint64_t start = 0;
    std::uint64_t end = 0;
    char perms[8] = {0};
    std::uint64_t pgoff = 0;
    unsigned dev_major = 0;
    unsigned dev_minor = 0;
    std::uint64_t ino = 0;
    if (std::sscanf(line, "%" SCNx64 "-%" SCNx64 " %7s %" SCNx64 " %x:%x %" SCNu64, &start,
                    &end, perms, &pgoff, &dev_major, &dev_minor, &ino) != 7) {
      continue;
    }
    if (perms[3] != 's') {
      continue;  // private mapping: cannot be a cross-process lock home
    }
    SharedRegion region;
    region.start = start;
    region.end = end;
    region.pgoff = pgoff;
    region.dev = (static_cast<std::uint64_t>(dev_major) << 32) | dev_minor;
    region.ino = ino;
    regions.push_back(region);
  }
  std::fclose(f);
  std::sort(regions.begin(), regions.end(),
            [](const SharedRegion& a, const SharedRegion& b) { return a.start < b.start; });
  return regions;
}

// Finds the cached shared region containing `addr`; nullopt-style via bool.
bool LookupRegion(std::uint64_t addr, SharedRegion* out) {
  std::lock_guard<SpinLock> guard(g_maps_lock);
  if (g_maps_cache != nullptr) {
    auto it = std::upper_bound(
        g_maps_cache->begin(), g_maps_cache->end(), addr,
        [](std::uint64_t a, const SharedRegion& r) { return a < r.start; });
    if (it != g_maps_cache->begin() && addr < std::prev(it)->end) {
      *out = *std::prev(it);
      return true;
    }
  }
  return false;
}

}  // namespace

LockId GlobalIdForFileLock(int fd, GlobalLockKind kind, std::uint64_t offset,
                           std::uint64_t length) {
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    return kInvalidLockId;
  }
  return Tagged(IdentityHash(kind, static_cast<std::uint64_t>(st.st_dev),
                             static_cast<std::uint64_t>(st.st_ino), offset, length));
}

LockId GlobalIdForSharedAddress(const void* addr) {
  const std::uint64_t a = reinterpret_cast<std::uint64_t>(addr);
  SharedRegion region;
  if (!LookupRegion(a, &region)) {
    // Miss: the mapping may postdate the cache. Re-parse once.
    auto fresh = ParseSharedMaps();
    {
      std::lock_guard<SpinLock> guard(g_maps_lock);
      if (g_maps_cache == nullptr) {
        g_maps_cache = new std::vector<SharedRegion>();
      }
      *g_maps_cache = std::move(fresh);
    }
    if (!LookupRegion(a, &region)) {
      region = SharedRegion{};  // unresolvable: fall through to address identity
    }
  }
  if (region.ino != 0 || region.dev != 0) {
    const std::uint64_t file_offset = region.pgoff + (a - region.start);
    return Tagged(
        IdentityHash(GlobalLockKind::kSharedMemory, region.dev, region.ino, file_offset));
  }
  // Anonymous shared memory: only reachable via fork(), which preserves the
  // address — use it directly.
  return Tagged(IdentityHash(GlobalLockKind::kSharedMemory, 0, 0, a));
}

void InvalidateMapsCache() {
  std::lock_guard<SpinLock> guard(g_maps_lock);
  if (g_maps_cache != nullptr) {
    g_maps_cache->clear();
  }
}

Frame ProcessIdentityFrame() {
  static const Frame frame = [] {
    std::string tag;
    if (const char* env = std::getenv("DIMMUNIX_PROC_TAG"); env != nullptr && *env != '\0') {
      tag = env;
    } else {
      char buf[512];
      const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
      tag = n > 0 ? std::string(buf, static_cast<std::size_t>(n)) : "unknown-exe";
    }
    return FrameFromName("proc:" + tag);
  }();
  return frame;
}

}  // namespace ipc
}  // namespace dimmunix
