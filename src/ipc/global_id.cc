// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/ipc/global_id.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/hash.h"
#include "src/common/sharded_counter.h"
#include "src/common/spin_lock.h"

namespace dimmunix {
namespace ipc {
namespace {

LockId Tagged(std::uint64_t h) {
  // The hash must carry the global bit and must not collapse to an invalid
  // id once tagged.
  LockId id = h | kGlobalLockBit;
  if (id == kGlobalLockBit) {
    id |= 1;
  }
  return id;
}

std::uint64_t IdentityHash(GlobalLockKind kind, std::uint64_t dev, std::uint64_t ino,
                           std::uint64_t offset, std::uint64_t length = 0) {
  std::uint64_t h = Fnv1a64(&kind, sizeof(kind));
  h = HashCombine(h, dev);
  h = HashCombine(h, ino);
  h = HashCombine(h, offset);
  if (length != 0) {
    // Folded in only when nonzero so pre-existing flock/shared-memory ids
    // (and persisted histories containing them) keep their values.
    h = HashCombine(h, length);
  }
  return h;
}

// One MAP_SHARED region of /proc/self/maps: [start, end) backed by
// (dev, inode) at file offset pgoff.
struct SharedRegion {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  std::uint64_t pgoff = 0;
  std::uint64_t dev = 0;
  std::uint64_t ino = 0;
};

SpinLock g_maps_lock;
std::vector<SharedRegion>* g_maps_cache = nullptr;  // sorted by start; leaked

// Parses /proc/self/maps, keeping only shared ('s') regions. Runs rarely
// (first global-mutex touch, or after a miss on a fresh mmap).
std::vector<SharedRegion> ParseSharedMaps() {
  std::vector<SharedRegion> regions;
  std::FILE* f = std::fopen("/proc/self/maps", "r");
  if (f == nullptr) {
    return regions;
  }
  char line[512];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    std::uint64_t start = 0;
    std::uint64_t end = 0;
    char perms[8] = {0};
    std::uint64_t pgoff = 0;
    unsigned dev_major = 0;
    unsigned dev_minor = 0;
    std::uint64_t ino = 0;
    if (std::sscanf(line, "%" SCNx64 "-%" SCNx64 " %7s %" SCNx64 " %x:%x %" SCNu64, &start,
                    &end, perms, &pgoff, &dev_major, &dev_minor, &ino) != 7) {
      continue;
    }
    if (perms[3] != 's') {
      continue;  // private mapping: cannot be a cross-process lock home
    }
    SharedRegion region;
    region.start = start;
    region.end = end;
    region.pgoff = pgoff;
    region.dev = (static_cast<std::uint64_t>(dev_major) << 32) | dev_minor;
    region.ino = ino;
    regions.push_back(region);
  }
  std::fclose(f);
  std::sort(regions.begin(), regions.end(),
            [](const SharedRegion& a, const SharedRegion& b) { return a.start < b.start; });
  return regions;
}

// Finds the cached shared region containing `addr`; nullopt-style via bool.
bool LookupRegion(std::uint64_t addr, SharedRegion* out) {
  std::lock_guard<SpinLock> guard(g_maps_lock);
  if (g_maps_cache != nullptr) {
    auto it = std::upper_bound(
        g_maps_cache->begin(), g_maps_cache->end(), addr,
        [](std::uint64_t a, const SharedRegion& r) { return a < r.start; });
    if (it != g_maps_cache->begin() && addr < std::prev(it)->end) {
      *out = *std::prev(it);
      return true;
    }
  }
  return false;
}

// --- per-thread resolution cache --------------------------------------------
// Direct-mapped thread_local slabs (no locks, no sharing) validated against
// global invalidation stamps: g_maps_epoch for addresses, g_fd_gen[fd] for
// descriptors. Capacity is fixed; DIMMUNIX_ID_CACHE picks how many entries
// are actually used (rounded down to a power of two, 0 disables).

constexpr std::size_t kCacheCapacity = 256;
constexpr int kMaxCachedFd = 4096;  // descriptors past this are never cached

std::atomic<std::uint64_t> g_maps_epoch{1};
std::atomic<std::uint32_t> g_fd_gen[kMaxCachedFd];

ShardedCounter g_cache_hits;
ShardedCounter g_cache_misses;

std::size_t CacheMask() {  // entries - 1, or SIZE_MAX when disabled
  static const std::size_t mask = [] {
    std::size_t entries = 64;
    if (const char* env = std::getenv("DIMMUNIX_ID_CACHE"); env != nullptr && *env != '\0') {
      const long v = std::strtol(env, nullptr, 10);
      entries = v <= 0 ? 0 : static_cast<std::size_t>(v);
    }
    if (entries == 0) {
      return ~std::size_t{0};
    }
    entries = std::min(entries, kCacheCapacity);
    while ((entries & (entries - 1)) != 0) {
      entries &= entries - 1;  // round down to a power of two
    }
    return entries - 1;
  }();
  return mask;
}

struct AddrCacheEntry {
  const void* addr = nullptr;
  std::uint64_t epoch = 0;
  LockId id = kInvalidLockId;
};

struct FdCacheEntry {
  int fd = -1;
  std::uint8_t kind = 0;
  std::uint32_t gen = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  LockId id = kInvalidLockId;
};

thread_local AddrCacheEntry t_addr_cache[kCacheCapacity];
thread_local FdCacheEntry t_fd_cache[kCacheCapacity];

std::size_t AddrSlot(const void* addr, std::size_t mask) {
  // Locks are at least word-aligned; shift the dead bits out before mixing.
  return static_cast<std::size_t>((reinterpret_cast<std::uint64_t>(addr) >> 3) *
                                  0x9E3779B97F4A7C15ULL >>
                                  32) &
         mask;
}

std::size_t FdSlot(int fd, GlobalLockKind kind, std::uint64_t offset, std::uint64_t length,
                   std::size_t mask) {
  std::uint64_t h = HashCombine(static_cast<std::uint64_t>(fd) + 0x2545F491,
                                static_cast<std::uint64_t>(kind));
  h = HashCombine(h, offset);
  h = HashCombine(h, length);
  return static_cast<std::size_t>(h) & mask;
}

// --- fcntl range registry ---------------------------------------------------
// Bounded and group-bucketed. All ranges of one file share a group (hash of
// kind:dev:ino), so the bridge's overlap scan touches one bucket instead of
// every range ever registered — the scan runs per foreign range edge on
// every mirror tick, under the same spinlock application threads use to
// register. Memory is bounded by least-recently-touched eviction at
// kMaxRegisteredRanges: entries are touched on (re)registration and on
// LookupLockRange (the publish path), so active locks stay resident, and an
// evicted-but-live range re-registers on its next slow-path resolution
// (close() cannot evict directly — ranges key on file identity, which a
// bare descriptor number no longer has at close time).

struct RangeEntry {
  LockRange range;
  std::uint64_t stamp = 0;  // last touch, from g_range_stamp
};

SpinLock g_range_lock;
std::uint64_t g_range_stamp = 0;  // under g_range_lock
std::unordered_map<LockId, RangeEntry>* g_ranges = nullptr;                        // leaked
std::unordered_map<std::uint64_t, std::vector<LockId>>* g_range_groups = nullptr;  // leaked

void EraseRangeLocked(LockId id) {
  auto it = g_ranges->find(id);
  if (it == g_ranges->end()) {
    return;
  }
  if (auto group_it = g_range_groups->find(it->second.range.group);
      group_it != g_range_groups->end()) {
    auto& ids = group_it->second;
    ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
    if (ids.empty()) {
      g_range_groups->erase(group_it);
    }
  }
  g_ranges->erase(it);
}

void RegisterRange(LockId id, const LockRange& range) {
  std::lock_guard<SpinLock> guard(g_range_lock);
  if (g_ranges == nullptr) {
    g_ranges = new std::unordered_map<LockId, RangeEntry>();
    g_range_groups = new std::unordered_map<std::uint64_t, std::vector<LockId>>();
  }
  auto [it, inserted] = g_ranges->try_emplace(id);
  if (inserted) {
    if (g_ranges->size() > kMaxRegisteredRanges) {
      // Evict the least-recently-touched entry. The scan is O(capacity) but
      // runs only on an over-cap insert, which the fd cache makes rare.
      LockId victim = kInvalidLockId;
      std::uint64_t oldest = ~std::uint64_t{0};
      for (const auto& [rid, e] : *g_ranges) {
        if (rid != id && e.stamp < oldest) {
          oldest = e.stamp;
          victim = rid;
        }
      }
      if (victim != kInvalidLockId) {
        EraseRangeLocked(victim);
      }
    }
    (*g_range_groups)[range.group].push_back(id);
  }
  // Re-registration refreshes in place: the id is a hash of the same
  // (kind, dev, ino, start, len) tuple, so its group cannot move.
  it->second.range = range;
  it->second.stamp = ++g_range_stamp;
}

}  // namespace

LockId GlobalIdForFileLock(int fd, GlobalLockKind kind, std::uint64_t offset,
                           std::uint64_t length) {
  const std::size_t mask = CacheMask();
  const bool cacheable = mask != ~std::size_t{0} && fd >= 0 && fd < kMaxCachedFd;
  std::uint32_t gen = 0;
  FdCacheEntry* entry = nullptr;
  if (cacheable) {
    gen = g_fd_gen[fd].load(std::memory_order_acquire);
    entry = &t_fd_cache[FdSlot(fd, kind, offset, length, mask)];
    if (entry->fd == fd && entry->kind == static_cast<std::uint8_t>(kind) &&
        entry->offset == offset && entry->length == length && entry->gen == gen) {
      g_cache_hits.fetch_add(1);
      return entry->id;
    }
  }
  g_cache_misses.fetch_add(1);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    return kInvalidLockId;
  }
  const std::uint64_t dev = static_cast<std::uint64_t>(st.st_dev);
  const std::uint64_t ino = static_cast<std::uint64_t>(st.st_ino);
  const LockId id = Tagged(IdentityHash(kind, dev, ino, offset, length));
  if (kind == GlobalLockKind::kFcntlRange) {
    // Record the byte range so the bridge can publish it and alias
    // overlapping foreign ranges onto this id (l_len 0 = to EOF).
    LockRange range;
    const std::uint64_t group = IdentityHash(kind, dev, ino, 0);
    range.group = group == 0 ? 1 : group;
    range.start = offset;
    range.len = length == 0 ? LockRange::kWholeFileRangeLen : length;
    RegisterRange(id, range);
  }
  if (cacheable) {
    *entry = FdCacheEntry{fd, static_cast<std::uint8_t>(kind), gen, offset, length, id};
  }
  return id;
}

LockId GlobalIdForSharedAddress(const void* addr) {
  const std::size_t mask = CacheMask();
  AddrCacheEntry* entry = nullptr;
  std::uint64_t epoch = 0;
  if (mask != ~std::size_t{0}) {
    // Stamp BEFORE resolving: an invalidation racing the slow path leaves a
    // stale-stamped entry that the next lookup rejects, never a stale id
    // that survives.
    epoch = g_maps_epoch.load(std::memory_order_acquire);
    entry = &t_addr_cache[AddrSlot(addr, mask)];
    if (entry->addr == addr && entry->epoch == epoch) {
      g_cache_hits.fetch_add(1);
      return entry->id;
    }
  }
  g_cache_misses.fetch_add(1);
  const std::uint64_t a = reinterpret_cast<std::uint64_t>(addr);
  SharedRegion region;
  if (!LookupRegion(a, &region)) {
    // Miss: the mapping may postdate the cache. Re-parse once.
    auto fresh = ParseSharedMaps();
    {
      std::lock_guard<SpinLock> guard(g_maps_lock);
      if (g_maps_cache == nullptr) {
        g_maps_cache = new std::vector<SharedRegion>();
      }
      *g_maps_cache = std::move(fresh);
    }
    if (!LookupRegion(a, &region)) {
      region = SharedRegion{};  // unresolvable: fall through to address identity
    }
  }
  LockId id;
  if (region.ino != 0 || region.dev != 0) {
    const std::uint64_t file_offset = region.pgoff + (a - region.start);
    id = Tagged(
        IdentityHash(GlobalLockKind::kSharedMemory, region.dev, region.ino, file_offset));
  } else {
    // Anonymous shared memory: only reachable via fork(), which preserves
    // the address — use it directly.
    id = Tagged(IdentityHash(GlobalLockKind::kSharedMemory, 0, 0, a));
  }
  if (entry != nullptr) {
    *entry = AddrCacheEntry{addr, epoch, id};
  }
  return id;
}

void InvalidateMapsCache() {
  {
    std::lock_guard<SpinLock> guard(g_maps_lock);
    if (g_maps_cache != nullptr) {
      g_maps_cache->clear();
    }
  }
  // Kill every thread's cached address resolutions too: entries carry the
  // epoch they were resolved under and are rejected once it moves.
  g_maps_epoch.fetch_add(1, std::memory_order_release);
}

void InvalidateFdCache(int fd) {
  if (fd >= 0 && fd < kMaxCachedFd) {
    g_fd_gen[fd].fetch_add(1, std::memory_order_release);
  }
}

GlobalIdCacheStats GlobalIdCacheCounters() {
  GlobalIdCacheStats stats;
  stats.hits = g_cache_hits.load();
  stats.misses = g_cache_misses.load();
  return stats;
}

LockRange LookupLockRange(LockId id) {
  std::lock_guard<SpinLock> guard(g_range_lock);
  if (g_ranges != nullptr) {
    if (auto it = g_ranges->find(id); it != g_ranges->end()) {
      it->second.stamp = ++g_range_stamp;  // publishing keeps a range resident
      return it->second.range;
    }
  }
  return LockRange{};
}

std::vector<LockId> OverlappingLockIds(const LockRange& range, LockId exclude) {
  std::vector<LockId> out;
  if (!range.valid()) {
    return out;
  }
  std::lock_guard<SpinLock> guard(g_range_lock);
  if (g_range_groups == nullptr) {
    return out;
  }
  auto group_it = g_range_groups->find(range.group);
  if (group_it == g_range_groups->end()) {
    return out;  // no local ranges on this file at all
  }
  for (const LockId id : group_it->second) {
    if (id == exclude) {
      continue;
    }
    if (auto it = g_ranges->find(id); it != g_ranges->end() &&
                                      it->second.range.Overlaps(range)) {
      out.push_back(id);
    }
  }
  return out;
}

Frame ProcessIdentityFrame() {
  static const Frame frame = [] {
    std::string tag;
    if (const char* env = std::getenv("DIMMUNIX_PROC_TAG"); env != nullptr && *env != '\0') {
      tag = env;
    } else {
      char buf[512];
      const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
      tag = n > 0 ? std::string(buf, static_cast<std::size_t>(n)) : "unknown-exe";
    }
    return FrameFromName("proc:" + tag);
  }();
  return frame;
}

}  // namespace ipc
}  // namespace dimmunix
