// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Stable cross-process lock identities (the "global" LockId space of
// src/core/global_port.h).
//
// A global lock must have the same LockId in every participating process,
// across address-space layouts and re-runs within one boot:
//
//   - file locks (flock(2), fcntl(F_SETLK*)): identity is the locked file's
//     (st_dev, st_ino) plus the locked range — byte offset and length (0/0
//     for flock, l_start/l_len for fcntl; l_len 0 = "to EOF") — and a kind
//     tag separating the two lock namespaces the kernel keeps disjoint;
//
//   - process-shared mutexes/rwlocks living in MAP_SHARED memory: identity
//     is the backing object of the mapping containing the address — (dev,
//     inode) from /proc/self/maps — plus the offset of the lock within the
//     file. Anonymous shared mappings (MAP_ANONYMOUS | MAP_SHARED, dev 0:0
//     inode 0) have no file identity, but are only shareable through
//     fork(), which preserves addresses — the virtual address itself is the
//     identity there.
//
// Resolution is cached at two levels. The /proc/self/maps parse is cached
// process-wide; a lookup miss (fresh mmap) triggers one re-parse. On top of
// that, each thread keeps a small direct-mapped slab (DIMMUNIX_ID_CACHE
// entries, default 64, 0 = off) of finished resolutions — address -> id and
// (fd, kind, range) -> id — so the steady state costs a few loads instead
// of a spinlock + binary search (addresses) or an fstat syscall (fds).
// Entries are stamped: the address cache against a global maps epoch
// (bumped by InvalidateMapsCache, which the preload shim calls from its
// munmap wrapper), the fd cache against a per-fd generation (bumped by
// InvalidateFdCache, called from the shim's close wrapper) — so mmap churn
// and fd reuse re-resolve instead of returning a stale identity. All of
// this is off the local-lock fast path: only adapters that already
// classified a lock as global call in here.

#ifndef DIMMUNIX_IPC_GLOBAL_ID_H_
#define DIMMUNIX_IPC_GLOBAL_ID_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/global_port.h"

namespace dimmunix {
namespace ipc {

// Disjoint lock namespaces that must never collide even on equal
// (dev, inode, offset) triples.
enum class GlobalLockKind : std::uint8_t {
  kFlock = 1,      // flock(2) — whole-file, per-open-file-description
  kFcntlRange = 2, // fcntl(F_SETLK*) POSIX record locks — per (file, range)
  kSharedMemory = 3,  // pthread objects in MAP_SHARED memory
};

// Identity of a file lock on the open file `fd`. Returns kInvalidLockId if
// fstat fails. The result has kGlobalLockBit set. `length` distinguishes
// fcntl ranges sharing a start: [0,100) and [0,10) are different kernel
// locks and must not alias one LockId (flock callers leave it 0).
LockId GlobalIdForFileLock(int fd, GlobalLockKind kind, std::uint64_t offset,
                           std::uint64_t length = 0);

// Identity of a process-shared pthread object at `addr`: resolves the
// MAP_SHARED mapping containing the address via the (cached) maps table.
// Falls back to the raw address (fork-shared anonymous memory) when the
// mapping is anonymous or cannot be resolved. Has kGlobalLockBit set.
LockId GlobalIdForSharedAddress(const void* addr);

// Drops the cached /proc/self/maps table and advances the maps epoch, so
// every thread's cached address resolutions die too. Call after any munmap
// of (potentially) shared memory — the shim's munmap wrapper does — and
// after fork. Cheap enough to call unconditionally.
void InvalidateMapsCache();

// Kills cached (fd, ...) resolutions for one descriptor. Call on close(fd)
// — the shim's close wrapper does — so a reused descriptor re-resolves.
void InvalidateFdCache(int fd);

// Cumulative per-thread-cache accounting, folded across threads. A miss is
// any resolution that had to run the slow path (spinlock/maps walk/fstat).
struct GlobalIdCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};
GlobalIdCacheStats GlobalIdCacheCounters();

// --- fcntl range registry ---------------------------------------------------
// Every fcntl-range resolution records its byte range here (process-wide,
// keyed by the resulting LockId), so the bridge can publish ranges into the
// arena and alias overlapping foreign ranges onto local ids. `l_len == 0`
// (to EOF) is stored as LockRange::kWholeFileRangeLen. The registry is
// bucketed by range group (one bucket per file) so overlap queries scan
// only that file's ranges, and bounded at kMaxRegisteredRanges entries with
// least-recently-touched eviction (touch = registration or LookupLockRange)
// so a process cycling through distinct ranges cannot grow it without
// bound. An evicted range re-registers on its next slow-path resolution.

inline constexpr std::size_t kMaxRegisteredRanges = 4096;

// The registered range of `id`, or an invalid (group 0) range for ids that
// are not fcntl ranges.
LockRange LookupLockRange(LockId id);

// Locally-registered lock ids (excluding `exclude`) whose range overlaps
// `range`. Used by the bridge to mirror a foreign range edge under every
// local id it would conflict with in the kernel.
std::vector<LockId> OverlappingLockIds(const LockRange& range, LockId exclude);

// Stable identity of this process for proc-qualifying signature stacks:
// DIMMUNIX_PROC_TAG when set, otherwise the resolved /proc/self/exe path.
// Same binary (or same tag) => same frame in every run, so fork-based
// fleets keep fully portable signatures.
Frame ProcessIdentityFrame();

}  // namespace ipc
}  // namespace dimmunix

#endif  // DIMMUNIX_IPC_GLOBAL_ID_H_
