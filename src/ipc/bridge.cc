// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/ipc/bridge.h"

#include <algorithm>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/ipc/global_id.h"

namespace dimmunix {
namespace ipc {

std::size_t IpcBridge::EdgeKeyHash::operator()(const EdgeKey& k) const {
  std::uint64_t h = HashCombine(static_cast<std::uint64_t>(k.participant), k.generation);
  h = HashCombine(h, static_cast<std::uint64_t>(k.thread));
  h = HashCombine(h, k.lock);
  h = HashCombine(h, k.hold ? 1u : 0u);
  return static_cast<std::size_t>(h);
}

std::size_t IpcBridge::ThreadKeyHash::operator()(const ThreadKey& k) const {
  std::uint64_t h = HashCombine(static_cast<std::uint64_t>(k.participant), k.generation);
  h = HashCombine(h, static_cast<std::uint64_t>(k.thread));
  return static_cast<std::size_t>(h);
}

std::size_t IpcBridge::PendingKeyHash::operator()(const PendingKey& k) const {
  return static_cast<std::size_t>(HashCombine(static_cast<std::uint64_t>(k.thread), k.lock));
}

IpcBridge::IpcBridge(Options options, AvoidanceEngine* engine, StackTable* stacks,
                     obs::Recorder* recorder)
    : options_(std::move(options)), engine_(engine), stacks_(stacks), recorder_(recorder) {}

IpcBridge::~IpcBridge() { Stop(); }

bool IpcBridge::Start(std::string* error) {
  arena_ = IpcArena::OpenOrCreate(options_.arena_path, error);
  if (arena_ == nullptr) {
    return false;
  }
  engine_->SetGlobalPublisher(this);
  // First mirror pass runs synchronously: a runtime constructed lazily by
  // the very lock call that needs a foreign hold (the LD_PRELOAD cold
  // start) must not race its own bridge thread for the first snapshot.
  Tick();
  if (options_.start_thread) {
    stop_requested_ = false;
    running_ = true;
    thread_ = std::thread([this] { Loop(); });
  }
  DIMMUNIX_LOG(kInfo) << "ipc: joined arena " << options_.arena_path << " as participant "
                      << arena_->participant_index() << " (generation "
                      << arena_->generation() << ")";
  return true;
}

void IpcBridge::Stop() {
  if (arena_ == nullptr) {
    return;
  }
  // Unhook the publisher first: application threads must not write to an
  // arena that is about to unmap.
  engine_->SetGlobalPublisher(nullptr);
  if (running_) {
    {
      std::lock_guard<std::mutex> guard(stop_m_);
      stop_requested_ = true;
    }
    stop_cv_.notify_all();
    thread_.join();
    running_ = false;
  }
  // Retract every mirrored foreign edge so the engine does not keep phantom
  // holders after the bridge is gone (a release wakes any local yielder).
  for (const auto& [key, m] : mirrored_) {
    RetireEdge(key, m);
  }
  mirrored_.clear();
  // Discard any undrained pending ops: the arena destructor clears this
  // participant's rows wholesale anyway, so replaying them would only
  // publish edges about to be scrubbed.
  {
    std::lock_guard<SpinLock> guard(pending_m_);
    pending_.clear();
    pending_ops_ = 0;
  }
  arena_.reset();  // clears own rows + releases the participant slot
}

void IpcBridge::Loop() {
  if (recorder_ != nullptr) {
    recorder_->NameThisThread("dimmunix-bridge");
  }
  // Two cadences on one thread: the mirror pass every `period`, the
  // pending-log drain every `flush` (usually much shorter). Wake at the
  // faster of the two; run a full Tick only when the mirror deadline has
  // passed, a bare FlushPending otherwise.
  const bool batching = options_.flush.count() > 0;
  const auto wake = batching && options_.flush < options_.period
                        ? std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              options_.flush)
                        : std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              options_.period);
  auto next_tick = std::chrono::steady_clock::now() + options_.period;
  std::unique_lock<std::mutex> guard(stop_m_);
  while (!stop_requested_) {
    guard.unlock();
    if (std::chrono::steady_clock::now() >= next_tick) {
      Tick();  // flushes pending first, then mirrors
      next_tick = std::chrono::steady_clock::now() + options_.period;
    } else {
      FlushPending();
    }
    guard.lock();
    stop_cv_.wait_for(guard, wake, [this] { return stop_requested_; });
  }
}

ThreadId IpcBridge::SyntheticTid(const ThreadKey& key) {
  auto it = synthetic_tids_.find(key);
  if (it != synthetic_tids_.end()) {
    return it->second;
  }
  const ThreadId tid = next_synthetic_++;
  synthetic_tids_.emplace(key, tid);
  return tid;
}

void IpcBridge::RetireEdge(const EdgeKey& key, const Mirrored& m) {
  if (m.hold) {
    engine_->MirrorForeignRelease(m.synthetic, key.lock, m.stack, m.mode);
  } else {
    engine_->MirrorForeignWaitEnd(m.synthetic, key.lock, m.stack, m.mode);
  }
}

void IpcBridge::Tick() {
  // Drain own pending ops first: a mirror pass should never run with this
  // process's publications staler than one flush interval.
  FlushPending();
  const std::uint64_t tick_begin =
      recorder_ != nullptr && recorder_->tracing() ? obs::NowNs() : 0;
  std::uint64_t edges_folded = 0;  // engine mutations this tick (folds + retires)
  ++tick_count_;
  arena_->Heartbeat();
  if (options_.sweep_every > 0 &&
      tick_count_ % static_cast<std::uint64_t>(options_.sweep_every) == 0) {
    reclaimed_total_ += static_cast<std::uint64_t>(arena_->SweepDeadParticipants());
  }

  // Three passes, retires strictly before folds. A wait -> hold promotion
  // rewrites one arena row, which under the kind-qualified EdgeKey appears
  // as one key vanishing and another appearing; retiring the stale wait
  // BEFORE folding the hold keeps the engine's tuple set from ever pairing
  // a fold with the wrong pre-existing tuple (RemoveTuple falls back to any
  // (thread, lock) match when the edge kind differs).
  const std::vector<ForeignEdge> edges = arena_->SnapshotForeign();

  // Expand each foreign edge to its fold targets: the published lock id
  // itself plus — for fcntl byte-range edges (protocol v2 publishers) —
  // every locally-registered range id that overlaps it. The kernel
  // conflicts on overlap, not id equality, so a foreign [0,16) wait must
  // appear in the local RAG under our [8,32) id too or the cycle has a gap.
  struct Target {
    const ForeignEdge* edge;
    LockId lock;
  };
  std::vector<Target> targets;
  targets.reserve(edges.size());
  for (const ForeignEdge& edge : edges) {
    targets.push_back(Target{&edge, edge.lock});
    if (edge.range.valid()) {
      for (const LockId alias : OverlappingLockIds(edge.range, edge.lock)) {
        targets.push_back(Target{&edge, alias});
      }
    }
  }

  // Pass 1: mark unchanged mirrored edges as seen; collect the rest.
  std::vector<Target> to_fold;
  for (const Target& target : targets) {
    const ForeignEdge& edge = *target.edge;
    const EdgeKey key{edge.participant, edge.generation, edge.thread, target.lock, edge.hold};
    auto it = mirrored_.find(key);
    if (it != mirrored_.end() && it->second.mode == edge.mode) {
      it->second.seen_tick = tick_count_;  // unchanged
      continue;
    }
    if (edge.frames.empty()) {
      continue;  // unpublishable record; skip (never mirror a stackless edge)
    }
    to_fold.push_back(target);
  }

  // Pass 2: anything not seen this tick disappeared — released, canceled,
  // promoted/demoted to the other edge kind, mode-changed, or the
  // participant died (sweep or slot reuse). Fold the removal in; releases
  // wake local yielders blocked on the vanished holder.
  for (auto it = mirrored_.begin(); it != mirrored_.end();) {
    if (it->second.seen_tick != tick_count_) {
      RetireEdge(it->first, it->second);
      it = mirrored_.erase(it);
      ++edges_folded;
    } else {
      ++it;
    }
  }

  // Pass 3: fold the new edges.
  for (const Target& target : to_fold) {
    const ForeignEdge* edge = target.edge;
    const EdgeKey key{edge->participant, edge->generation, edge->thread, target.lock,
                      edge->hold};
    const StackId stack = stacks_->Intern(edge->frames);
    const ThreadId tid =
        SyntheticTid(ThreadKey{edge->participant, edge->generation, edge->thread});
    if (edge->hold) {
      engine_->MirrorForeignHold(tid, target.lock, stack, edge->mode);
    } else {
      engine_->MirrorForeignWait(tid, target.lock, stack, edge->mode);
    }
    ++edges_folded;
    mirrored_.insert_or_assign(key,
                               Mirrored{tid, stack, edge->hold, edge->mode, tick_count_});
  }

  {
    std::lock_guard<std::mutex> guard(status_m_);
    status_ticks_ = tick_count_;
    status_mirrored_ = mirrored_.size();
    status_reclaimed_ = reclaimed_total_;
  }
  if (tick_begin != 0) {
    const std::uint64_t end_ns = obs::NowNs();
    recorder_->Span(obs::TraceEventType::kBridgeFold, end_ns, end_ns - tick_begin,
                    /*aux=*/0, /*mode=*/0, edges_folded);
  }
}

IpcStatus IpcBridge::SnapshotStatus() const {
  IpcStatus status;
  status.arena_path = options_.arena_path;
  const GlobalIdCacheStats cache = GlobalIdCacheCounters();
  status.id_cache_hits = cache.hits;
  status.id_cache_misses = cache.misses;
  if (arena_ == nullptr) {
    return status;
  }
  status.running = true;
  status.participant = arena_->participant_index();
  status.generation = arena_->generation();
  status.dropped_publishes = arena_->dropped_publishes();
  status.flushes = flush_count_.load(std::memory_order_relaxed);
  status.flush_ops = flush_ops_total_.load(std::memory_order_relaxed);
  {
    std::lock_guard<SpinLock> guard(pending_m_);
    status.pending_ops = pending_ops_;
  }
  {
    std::lock_guard<std::mutex> guard(status_m_);
    status.ticks = status_ticks_;
    status.foreign_edges_mirrored = status_mirrored_;
    status.participants_reclaimed = status_reclaimed_;
  }
  status.participants = arena_->Participants();
  return status;
}

Frame IpcBridge::ProcFrame() const { return ProcessIdentityFrame(); }

void IpcBridge::Append(ThreadId thread, LockId lock, OpKind kind, StackId stack,
                       AcquireMode mode) {
  bool overflow = false;
  {
    std::lock_guard<SpinLock> guard(pending_m_);
    PendingEntry& entry = pending_[PendingKey{thread, lock}];
    std::vector<PendingOp>& ops = entry.ops;
    // Coalesce against the trailing op of the same (thread, lock). The net
    // effect on the arena row is all that matters, so:
    //   Wait over trailing Wait         -> replace (mode/stack refresh)
    //   Hold over trailing Wait         -> replace (the commit subsumes the
    //                                      request; replay is one PublishHold,
    //                                      which bumps the hold count exactly
    //                                      like the eager wait+hold pair)
    //   ClearWait popping trailing Wait -> both vanish (canceled request)
    //   ClearHold popping trailing Hold -> both vanish (uncontended critical
    //                                      section: zero arena writes)
    // Popping to an EMPTY log is only a true no-op when the arena holds no
    // row for this key. If an earlier flush already published a wait, the
    // popped pair was the very thing that would have cleared (ClearWait) or
    // replaced (the grant's PublishHold) that row — so a compensating
    // ClearWait is enqueued in its place; the arena-row shadow in the entry
    // says when. (A standing hold row needs no compensation here: the
    // popped Hold/ClearHold pair nets to zero on its reentrant count.)
    const auto reconcile_flushed_wait = [&] {
      if (ops.empty() && entry.arena_wait) {
        ops.push_back(
            PendingOp{OpKind::kClearWait, kInvalidStackId, AcquireMode::kExclusive});
        ++pending_ops_;
      }
    };
    switch (kind) {
      case OpKind::kWait:
      case OpKind::kHold:
        if (!ops.empty() && ops.back().kind == OpKind::kWait) {
          ops.back() = PendingOp{kind, stack, mode};
        } else {
          ops.push_back(PendingOp{kind, stack, mode});
          ++pending_ops_;
        }
        break;
      case OpKind::kClearWait:
        if (!ops.empty() && ops.back().kind == OpKind::kWait) {
          ops.pop_back();
          --pending_ops_;
          reconcile_flushed_wait();
        } else {
          ops.push_back(PendingOp{kind, stack, mode});
          ++pending_ops_;
        }
        break;
      case OpKind::kClearHold:
        if (!ops.empty() && ops.back().kind == OpKind::kHold) {
          ops.pop_back();
          --pending_ops_;
          reconcile_flushed_wait();
        } else {
          ops.push_back(PendingOp{kind, stack, mode});
          ++pending_ops_;
        }
        break;
    }
    // Emptied keys stay in the map: the next op on the same (thread, lock)
    // reuses the node and the vector's capacity instead of re-allocating —
    // and the arena-row shadow must outlive the ops it was advanced by.
    overflow = pending_ops_ >= kPendingFlushCap;
  }
  if (overflow) {
    FlushPending();
  }
}

void IpcBridge::FlushPending() {
  // Peek without the flush lock: the common case (timer fired, nothing
  // pending) must cost two spinlock-free-ish operations, not a full drain
  // protocol.
  {
    std::lock_guard<SpinLock> guard(pending_m_);
    // pending_ may hold emptied-but-kept keys; the op counter is the truth.
    if (pending_ops_ == 0) {
      return;
    }
  }
  const bool timing = recorder_ != nullptr && recorder_->timing();
  const std::uint64_t begin_ns = timing ? obs::NowNs() : 0;
  std::uint64_t ops_drained = 0;
  std::uint64_t rows_written = 0;
  {
    // flush_m_ before detaching: a racing flusher that detached first could
    // otherwise replay a NEWER batch of some key's ops before ours. It also
    // guards flush_scratch_, which is reused across flushes so the steady
    // state drains with zero allocations (map nodes, per-key vector capacity
    // and the scratch buffer all persist).
    std::lock_guard<SpinLock> flush_guard(flush_m_);
    {
      std::lock_guard<SpinLock> guard(pending_m_);
      for (auto& [key, entry] : pending_) {
        for (const PendingOp& op : entry.ops) {
          flush_scratch_.emplace_back(key, op);
          // Advance the arena-row shadow at staging time, not at the actual
          // arena write below (which runs under flush_m_ only): an Append
          // racing the replay lands in a later batch that flush_m_ orders
          // strictly after this one, so a compensating ClearWait it decides
          // to enqueue can never be replayed ahead of these ops.
          switch (op.kind) {
            case OpKind::kWait:
              entry.arena_wait = true;
              break;
            case OpKind::kClearWait:
              entry.arena_wait = false;
              break;
            case OpKind::kHold:
              // PublishHold frees any standing wait/upgrade row.
              entry.arena_wait = false;
              ++entry.arena_holds;
              break;
            case OpKind::kClearHold:
              if (entry.arena_holds > 0) {
                --entry.arena_holds;
              }
              if (entry.arena_holds == 0) {
                // Freeing the last hold frees the (defensive) upgrade wait
                // row too; on a wait-state row ClearHold frees it outright.
                entry.arena_wait = false;
              }
              break;
          }
        }
        entry.ops.clear();
      }
      pending_ops_ = 0;
    }
    for (const auto& [key, op] : flush_scratch_) {
      switch (op.kind) {
        case OpKind::kWait:
          arena_->PublishWait(key.thread, key.lock, op.mode, stacks_->Get(op.stack).frames,
                              LookupLockRange(key.lock));
          ++rows_written;
          break;
        case OpKind::kClearWait:
          arena_->ClearWait(key.thread, key.lock);
          break;
        case OpKind::kHold:
          arena_->PublishHold(key.thread, key.lock, op.mode, stacks_->Get(op.stack).frames,
                              LookupLockRange(key.lock));
          ++rows_written;
          break;
        case OpKind::kClearHold:
          arena_->ClearHold(key.thread, key.lock);
          break;
      }
      ++ops_drained;
    }
    flush_scratch_.clear();
    if (ops_drained > 0) {
      arena_->BumpFlushSeq();
    }
  }
  flush_count_.fetch_add(1, std::memory_order_relaxed);
  flush_ops_total_.fetch_add(ops_drained, std::memory_order_relaxed);
  if (timing) {
    const std::uint64_t end_ns = obs::NowNs();
    recorder_->Latency(obs::HistoKind::kIpcFlush, end_ns - begin_ns);
    // The span's aux field is 16 bits; saturate instead of wrapping for
    // pathological drains (long timer stalls across many keys).
    const auto aux_rows =
        static_cast<std::uint16_t>(std::min<std::uint64_t>(rows_written, 0xFFFF));
    recorder_->Span(obs::TraceEventType::kIpcFlush, end_ns, end_ns - begin_ns, aux_rows,
                    /*mode=*/0, ops_drained);
  }
}

void IpcBridge::PublishWait(ThreadId thread, LockId lock, StackId stack, AcquireMode mode) {
  if (options_.flush.count() == 0) {
    arena_->PublishWait(thread, lock, mode, stacks_->Get(stack).frames, LookupLockRange(lock));
    return;
  }
  Append(thread, lock, OpKind::kWait, stack, mode);
}

void IpcBridge::ClearWait(ThreadId thread, LockId lock) {
  if (options_.flush.count() == 0) {
    arena_->ClearWait(thread, lock);
    return;
  }
  Append(thread, lock, OpKind::kClearWait, kInvalidStackId, AcquireMode::kExclusive);
}

void IpcBridge::PublishHold(ThreadId thread, LockId lock, StackId stack, AcquireMode mode) {
  if (options_.flush.count() == 0) {
    arena_->PublishHold(thread, lock, mode, stacks_->Get(stack).frames, LookupLockRange(lock));
    return;
  }
  Append(thread, lock, OpKind::kHold, stack, mode);
}

void IpcBridge::ClearHold(ThreadId thread, LockId lock) {
  if (options_.flush.count() == 0) {
    arena_->ClearHold(thread, lock);
    return;
  }
  Append(thread, lock, OpKind::kClearHold, kInvalidStackId, AcquireMode::kExclusive);
}

}  // namespace ipc
}  // namespace dimmunix
