// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/ipc/bridge.h"

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/ipc/global_id.h"

namespace dimmunix {
namespace ipc {

std::size_t IpcBridge::EdgeKeyHash::operator()(const EdgeKey& k) const {
  std::uint64_t h = HashCombine(static_cast<std::uint64_t>(k.participant), k.generation);
  h = HashCombine(h, static_cast<std::uint64_t>(k.thread));
  h = HashCombine(h, k.lock);
  h = HashCombine(h, k.hold ? 1u : 0u);
  return static_cast<std::size_t>(h);
}

std::size_t IpcBridge::ThreadKeyHash::operator()(const ThreadKey& k) const {
  std::uint64_t h = HashCombine(static_cast<std::uint64_t>(k.participant), k.generation);
  h = HashCombine(h, static_cast<std::uint64_t>(k.thread));
  return static_cast<std::size_t>(h);
}

IpcBridge::IpcBridge(Options options, AvoidanceEngine* engine, StackTable* stacks,
                     obs::Recorder* recorder)
    : options_(std::move(options)), engine_(engine), stacks_(stacks), recorder_(recorder) {}

IpcBridge::~IpcBridge() { Stop(); }

bool IpcBridge::Start(std::string* error) {
  arena_ = IpcArena::OpenOrCreate(options_.arena_path, error);
  if (arena_ == nullptr) {
    return false;
  }
  engine_->SetGlobalPublisher(this);
  // First mirror pass runs synchronously: a runtime constructed lazily by
  // the very lock call that needs a foreign hold (the LD_PRELOAD cold
  // start) must not race its own bridge thread for the first snapshot.
  Tick();
  if (options_.start_thread) {
    stop_requested_ = false;
    running_ = true;
    thread_ = std::thread([this] { Loop(); });
  }
  DIMMUNIX_LOG(kInfo) << "ipc: joined arena " << options_.arena_path << " as participant "
                      << arena_->participant_index() << " (generation "
                      << arena_->generation() << ")";
  return true;
}

void IpcBridge::Stop() {
  if (arena_ == nullptr) {
    return;
  }
  // Unhook the publisher first: application threads must not write to an
  // arena that is about to unmap.
  engine_->SetGlobalPublisher(nullptr);
  if (running_) {
    {
      std::lock_guard<std::mutex> guard(stop_m_);
      stop_requested_ = true;
    }
    stop_cv_.notify_all();
    thread_.join();
    running_ = false;
  }
  // Retract every mirrored foreign edge so the engine does not keep phantom
  // holders after the bridge is gone (a release wakes any local yielder).
  for (const auto& [key, m] : mirrored_) {
    RetireEdge(key, m);
  }
  mirrored_.clear();
  arena_.reset();  // clears own rows + releases the participant slot
}

void IpcBridge::Loop() {
  if (recorder_ != nullptr) {
    recorder_->NameThisThread("dimmunix-bridge");
  }
  std::unique_lock<std::mutex> guard(stop_m_);
  while (!stop_requested_) {
    guard.unlock();
    Tick();
    guard.lock();
    stop_cv_.wait_for(guard, options_.period, [this] { return stop_requested_; });
  }
}

ThreadId IpcBridge::SyntheticTid(const ThreadKey& key) {
  auto it = synthetic_tids_.find(key);
  if (it != synthetic_tids_.end()) {
    return it->second;
  }
  const ThreadId tid = next_synthetic_++;
  synthetic_tids_.emplace(key, tid);
  return tid;
}

void IpcBridge::RetireEdge(const EdgeKey& key, const Mirrored& m) {
  if (m.hold) {
    engine_->MirrorForeignRelease(m.synthetic, key.lock, m.stack, m.mode);
  } else {
    engine_->MirrorForeignWaitEnd(m.synthetic, key.lock, m.stack, m.mode);
  }
}

void IpcBridge::Tick() {
  const std::uint64_t tick_begin =
      recorder_ != nullptr && recorder_->tracing() ? obs::NowNs() : 0;
  std::uint64_t edges_folded = 0;  // engine mutations this tick (folds + retires)
  ++tick_count_;
  arena_->Heartbeat();
  if (options_.sweep_every > 0 &&
      tick_count_ % static_cast<std::uint64_t>(options_.sweep_every) == 0) {
    reclaimed_total_ += static_cast<std::uint64_t>(arena_->SweepDeadParticipants());
  }

  // Three passes, retires strictly before folds. A wait -> hold promotion
  // rewrites one arena row, which under the kind-qualified EdgeKey appears
  // as one key vanishing and another appearing; retiring the stale wait
  // BEFORE folding the hold keeps the engine's tuple set from ever pairing
  // a fold with the wrong pre-existing tuple (RemoveTuple falls back to any
  // (thread, lock) match when the edge kind differs).
  const std::vector<ForeignEdge> edges = arena_->SnapshotForeign();

  // Pass 1: mark unchanged mirrored edges as seen; collect the rest.
  std::vector<const ForeignEdge*> to_fold;
  for (const ForeignEdge& edge : edges) {
    const EdgeKey key{edge.participant, edge.generation, edge.thread, edge.lock, edge.hold};
    auto it = mirrored_.find(key);
    if (it != mirrored_.end() && it->second.mode == edge.mode) {
      it->second.seen_tick = tick_count_;  // unchanged
      continue;
    }
    if (edge.frames.empty()) {
      continue;  // unpublishable record; skip (never mirror a stackless edge)
    }
    to_fold.push_back(&edge);
  }

  // Pass 2: anything not seen this tick disappeared — released, canceled,
  // promoted/demoted to the other edge kind, mode-changed, or the
  // participant died (sweep or slot reuse). Fold the removal in; releases
  // wake local yielders blocked on the vanished holder.
  for (auto it = mirrored_.begin(); it != mirrored_.end();) {
    if (it->second.seen_tick != tick_count_) {
      RetireEdge(it->first, it->second);
      it = mirrored_.erase(it);
      ++edges_folded;
    } else {
      ++it;
    }
  }

  // Pass 3: fold the new edges.
  for (const ForeignEdge* edge : to_fold) {
    const EdgeKey key{edge->participant, edge->generation, edge->thread, edge->lock,
                      edge->hold};
    const StackId stack = stacks_->Intern(edge->frames);
    const ThreadId tid =
        SyntheticTid(ThreadKey{edge->participant, edge->generation, edge->thread});
    if (edge->hold) {
      engine_->MirrorForeignHold(tid, edge->lock, stack, edge->mode);
    } else {
      engine_->MirrorForeignWait(tid, edge->lock, stack, edge->mode);
    }
    ++edges_folded;
    mirrored_.insert_or_assign(key,
                               Mirrored{tid, stack, edge->hold, edge->mode, tick_count_});
  }

  {
    std::lock_guard<std::mutex> guard(status_m_);
    status_ticks_ = tick_count_;
    status_mirrored_ = mirrored_.size();
    status_reclaimed_ = reclaimed_total_;
  }
  if (tick_begin != 0) {
    const std::uint64_t end_ns = obs::NowNs();
    recorder_->Span(obs::TraceEventType::kBridgeFold, end_ns, end_ns - tick_begin,
                    /*aux=*/0, /*mode=*/0, edges_folded);
  }
}

IpcStatus IpcBridge::SnapshotStatus() const {
  IpcStatus status;
  status.arena_path = options_.arena_path;
  if (arena_ == nullptr) {
    return status;
  }
  status.running = true;
  status.participant = arena_->participant_index();
  status.generation = arena_->generation();
  status.dropped_publishes = arena_->dropped_publishes();
  {
    std::lock_guard<std::mutex> guard(status_m_);
    status.ticks = status_ticks_;
    status.foreign_edges_mirrored = status_mirrored_;
    status.participants_reclaimed = status_reclaimed_;
  }
  status.participants = arena_->Participants();
  return status;
}

Frame IpcBridge::ProcFrame() const { return ProcessIdentityFrame(); }

void IpcBridge::PublishWait(ThreadId thread, LockId lock, StackId stack, AcquireMode mode) {
  arena_->PublishWait(thread, lock, mode, stacks_->Get(stack).frames);
}

void IpcBridge::ClearWait(ThreadId thread, LockId lock) { arena_->ClearWait(thread, lock); }

void IpcBridge::PublishHold(ThreadId thread, LockId lock, StackId stack, AcquireMode mode) {
  arena_->PublishHold(thread, lock, mode, stacks_->Get(stack).frames);
}

void IpcBridge::ClearHold(ThreadId thread, LockId lock) { arena_->ClearHold(thread, lock); }

}  // namespace ipc
}  // namespace dimmunix
