// Copyright (c) dimmunix-cpp authors. MIT license.
//
// IpcBridge — the per-process glue between the avoidance engine and the
// shared-memory arena (src/ipc/arena.h). It plays both directions:
//
//   publisher (application threads, via the engine's global-lock port):
//     wait/hold transitions of global locks are *logged* into a per-process
//     pending op-log (a SpinLock'd map, no arena traffic) and drained to
//     this process's arena rows in batches — on contention (the engine
//     flushes before parking), on a short flush timer
//     (DIMMUNIX_IPC_FLUSH_US, default 2ms; 0 = eager v1 behavior), or when
//     the backlog crosses a cap. Uncontended acquire/release pairs coalesce
//     to nothing, so the uncontended global fast path never touches the
//     arena. The price is a publication lag bounded by one flush epoch;
//     docs/ipc-arena.md states the resulting detectability bound.
//
//   mirror (the bridge thread): every `period`, foreign participants' rows
//     are snapshot, diffed against the previously mirrored set, and the
//     delta folded into the local engine as synthetic-thread edges
//     (MirrorForeign*). The existing colored-DFS deadlock search and the
//     signature matcher then operate on cross-process cycles with no
//     changes of their own. Disappearing holds wake local yielders, so a
//     process parked to dodge a foreign peer resumes as soon as that peer
//     releases — or dies (liveness sweeps reclaim SIGKILL'd participants).
//
// Foreign (participant, claim-generation, thread) triples map to stable
// synthetic ThreadIds at kForeignThreadBase; a participant slot reuse gets
// fresh ids, so a corpse's edges can never be confused with its
// successor's.

#ifndef DIMMUNIX_IPC_BRIDGE_H_
#define DIMMUNIX_IPC_BRIDGE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/spin_lock.h"
#include "src/core/avoidance.h"
#include "src/core/global_port.h"
#include "src/ipc/arena.h"
#include "src/stack/stack_table.h"

namespace dimmunix {
namespace ipc {

// Control-plane summary (dimctl ipc).
struct IpcStatus {
  bool running = false;
  std::string arena_path;
  int participant = -1;
  std::uint64_t generation = 0;
  std::uint64_t ticks = 0;
  std::uint64_t foreign_edges_mirrored = 0;  // currently mirrored foreign edges
  std::uint64_t participants_reclaimed = 0;
  std::uint64_t dropped_publishes = 0;
  std::uint64_t flushes = 0;           // completed pending-log drains
  std::uint64_t flush_ops = 0;         // ops replayed across all drains
  std::uint64_t pending_ops = 0;       // ops waiting in the log right now
  std::uint64_t id_cache_hits = 0;     // global-ID cache (src/ipc/global_id.h)
  std::uint64_t id_cache_misses = 0;
  std::vector<ParticipantInfo> participants;
};

class IpcBridge : public GlobalEdgePublisher {
 public:
  struct Options {
    std::string arena_path;
    std::chrono::milliseconds period{25};
    // Pending-log drain cadence (DIMMUNIX_IPC_FLUSH_US). 0 disables
    // batching entirely: every publisher call writes the arena eagerly, the
    // v1 behavior. The engine additionally flushes before parking and the
    // log self-flushes past kPendingFlushCap, so this timer only bounds how
    // long an *uncontended* edge stays unpublished.
    std::chrono::microseconds flush{2000};
    int sweep_every = 8;         // liveness sweep every N ticks
    bool start_thread = true;    // false: tests drive Tick() themselves
  };

  // `engine` and `stacks` must outlive the bridge. `recorder` (optional) is
  // the src/obs flight recorder: each Tick that folds edges emits a
  // kBridgeFold span when tracing is live.
  IpcBridge(Options options, AvoidanceEngine* engine, StackTable* stacks,
            obs::Recorder* recorder = nullptr);
  ~IpcBridge() override;

  IpcBridge(const IpcBridge&) = delete;
  IpcBridge& operator=(const IpcBridge&) = delete;

  // Opens + claims the arena and (unless start_thread is off) starts the
  // mirror thread. False with `*error` set when the arena is unusable; the
  // runtime then continues without cross-process immunity.
  bool Start(std::string* error);

  // Retracts mirrored foreign edges from the engine, stops the thread, and
  // releases the participant slot. Idempotent. Like Runtime destruction
  // itself (whose teardown sequence calls this), it requires application
  // threads to be out of the engine: a thread still inside a global-lock
  // Request may have captured the publisher pointer before Stop() unhooked
  // it. Runtime::Global() is leaked intentionally for exactly this reason;
  // embedded runtimes must join their workers before destruction.
  void Stop();

  // One mirror iteration (heartbeat, sweep, snapshot, diff-fold). Called by
  // the background loop; public so tests run the bridge deterministically.
  void Tick();

  IpcStatus SnapshotStatus() const;
  IpcArena* arena() { return arena_.get(); }

  // --- GlobalEdgePublisher (application threads) ----------------------------
  Frame ProcFrame() const override;
  void PublishWait(ThreadId thread, LockId lock, StackId stack, AcquireMode mode) override;
  void ClearWait(ThreadId thread, LockId lock) override;
  void PublishHold(ThreadId thread, LockId lock, StackId stack, AcquireMode mode) override;
  void ClearHold(ThreadId thread, LockId lock) override;
  // Drains the pending op-log into the arena. Safe from any thread; the
  // engine calls it right before parking a global-lock waiter so a forming
  // cross-process cycle becomes arena-visible without waiting for the
  // timer. No-op when the log is empty or batching is off.
  void FlushPending() override;

  // Backlog size that triggers an inline flush from the publishing thread.
  static constexpr std::size_t kPendingFlushCap = 512;

 private:
  struct EdgeKey {
    int participant;
    std::uint64_t generation;
    ThreadId thread;
    LockId lock;
    // Edge kind is part of the identity: during a shared->exclusive upgrade
    // a foreign thread legitimately has BOTH a hold and a wait on the same
    // lock (two arena rows), and both must be mirrored side by side.
    bool hold;
    bool operator==(const EdgeKey&) const = default;
  };
  struct EdgeKeyHash {
    std::size_t operator()(const EdgeKey& k) const;
  };
  struct Mirrored {
    ThreadId synthetic = kInvalidThreadId;
    StackId stack = kInvalidStackId;
    bool hold = false;
    AcquireMode mode = AcquireMode::kExclusive;
    std::uint64_t seen_tick = 0;  // last snapshot containing this edge
  };
  struct ThreadKey {
    int participant;
    std::uint64_t generation;
    ThreadId thread;
    bool operator==(const ThreadKey&) const = default;
  };
  struct ThreadKeyHash {
    std::size_t operator()(const ThreadKey& k) const;
  };

  // --- Pending op-log (deferred publication, protocol v2) -------------------
  // Application threads append; any thread drains via FlushPending(). Both
  // locks are spin locks: publisher calls run inside interposed lock
  // operations under LD_PRELOAD, where a pthread mutex would recurse into
  // the engine. Lock order: flush_m_ -> pending_m_; appends take only
  // pending_m_.
  enum class OpKind : std::uint8_t { kWait, kClearWait, kHold, kClearHold };
  struct PendingOp {
    OpKind kind;
    StackId stack;  // kInvalidStackId for clears
    AcquireMode mode;
  };
  struct PendingKey {
    ThreadId thread;
    LockId lock;
    bool operator==(const PendingKey&) const = default;
  };
  struct PendingKeyHash {
    std::size_t operator()(const PendingKey& k) const;
  };
  struct PendingEntry {
    std::vector<PendingOp> ops;
    // Arena-row shadow, advanced as ops are staged for replay: whether the
    // arena currently shows a wait row for this key and how many published
    // holds stand. Append consults it so pop-coalescing never nets the log
    // to nothing while a flushed wait row is still standing — without it,
    // a Wait flushed early (pre-park contention flush, epoch timer, backlog
    // cap) followed by an in-log Hold/ClearHold annihilation would leave
    // peers mirroring a phantom waiter forever.
    bool arena_wait = false;
    std::uint32_t arena_holds = 0;
  };

  void Append(ThreadId thread, LockId lock, OpKind kind, StackId stack, AcquireMode mode);

  void Loop();
  ThreadId SyntheticTid(const ThreadKey& key);
  void RetireEdge(const EdgeKey& key, const Mirrored& m);

  const Options options_;
  AvoidanceEngine* engine_;
  StackTable* stacks_;
  obs::Recorder* recorder_;
  std::unique_ptr<IpcArena> arena_;

  // Pending op-log state. flush_m_ serializes drains end to end: the batch
  // is detached (under pending_m_) only AFTER flush_m_ is held, so two
  // racing flushers can never replay one key's ops out of order.
  SpinLock flush_m_;
  mutable SpinLock pending_m_;
  std::unordered_map<PendingKey, PendingEntry, PendingKeyHash> pending_;
  std::size_t pending_ops_ = 0;  // total ops across pending_ (under pending_m_)
  // Drain staging buffer, reused across flushes (guarded by flush_m_).
  std::vector<std::pair<PendingKey, PendingOp>> flush_scratch_;
  std::atomic<std::uint64_t> flush_count_{0};
  std::atomic<std::uint64_t> flush_ops_total_{0};

  // Mirror state (bridge thread only).
  std::unordered_map<EdgeKey, Mirrored, EdgeKeyHash> mirrored_;
  std::unordered_map<ThreadKey, ThreadId, ThreadKeyHash> synthetic_tids_;
  ThreadId next_synthetic_ = kForeignThreadBase;
  std::uint64_t tick_count_ = 0;
  std::uint64_t reclaimed_total_ = 0;

  mutable std::mutex status_m_;  // guards the IpcStatus copy fields below
  std::uint64_t status_ticks_ = 0;
  std::uint64_t status_mirrored_ = 0;
  std::uint64_t status_reclaimed_ = 0;

  std::mutex stop_m_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
  bool running_ = false;
};

}  // namespace ipc
}  // namespace dimmunix

#endif  // DIMMUNIX_IPC_BRIDGE_H_
