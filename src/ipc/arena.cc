// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/ipc/arena.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace dimmunix {
namespace ipc {
namespace {

// On-disk records. Every field is accessed through std::atomic_ref, so the
// structs hold plain integers; alignment is guaranteed by the layout
// (8-byte multiples from a page-aligned base).
struct ArenaHeader {
  std::uint32_t magic;
  std::uint16_t version;
  std::uint16_t reserved;
  std::uint32_t participants;
  std::uint32_t edges_per_participant;
  std::uint32_t participant_size;
  std::uint32_t edge_size;
  std::uint64_t pad[5];
};
static_assert(sizeof(ArenaHeader) == 64);

struct ParticipantRecord {
  std::uint32_t seq;
  std::uint32_t pid;              // 0 = free; CAS-claimed
  std::uint64_t start_time;       // 0 while the claim is being initialized
  std::uint64_t generation;       // bumped on every (re)claim of this slot
  std::uint64_t heartbeat_ns;     // CLOCK_MONOTONIC, same clock fleet-wide
  std::uint32_t proto_version;    // v2: protocol of the claimant (v1 pad: 0)
  std::uint32_t flush_seq;        // v2: completed pending-log flushes
  std::uint64_t pad[3];
};
static_assert(sizeof(ParticipantRecord) == 64);

struct EdgeRecord {
  std::uint32_t seq;
  std::uint8_t state;  // 0 free, 1 wait, 2 hold
  std::uint8_t mode;   // 0 exclusive, 1 shared
  std::uint16_t stack_len;
  std::int32_t thread;
  std::uint32_t count;
  std::uint64_t lock;
  std::uint64_t frames[IpcArena::kMaxFrames];
  // v2: the byte range of an fcntl record lock (v1 wrote frames 11/12 and
  // pad here — readers trust these only when the publisher's participant
  // slot says proto_version >= 2). range_group 0 = not a range lock.
  std::uint64_t range_group;
  std::uint64_t range_start;
  std::uint64_t range_len;
};
static_assert(sizeof(EdgeRecord) == 128);

constexpr std::uint8_t kEdgeFree = 0;
constexpr std::uint8_t kEdgeWait = 1;
constexpr std::uint8_t kEdgeHold = 2;

constexpr std::size_t kHeaderOff = 0;
constexpr std::size_t kParticipantsOff = sizeof(ArenaHeader);
constexpr std::size_t kEdgesOff =
    kParticipantsOff + sizeof(ParticipantRecord) * IpcArena::kParticipants;
constexpr std::size_t kArenaSize =
    kEdgesOff + sizeof(EdgeRecord) * IpcArena::kParticipants * IpcArena::kEdgesPerParticipant;

template <typename T>
std::atomic_ref<T> Ref(T& field) {
  return std::atomic_ref<T>(field);
}

std::uint64_t MonotonicNs() {
  struct timespec ts {};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// Copies one edge row consistently (seqlock read side). False when free —
// or when the row cannot be read consistently within a bounded number of
// attempts: a writer SIGKILL'd mid-publication leaves its seq odd forever,
// and a reader must treat that corpse's row as unreadable (the liveness
// sweep will scrub it) rather than spin the bridge thread for good.
bool ReadEdgeRow(const EdgeRecord* row, ForeignEdge* out) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::uint32_t s1 =
        Ref(const_cast<EdgeRecord*>(row)->seq).load(std::memory_order_acquire);
    if ((s1 & 1u) != 0) {
      continue;  // write in progress (or torn by a dead writer)
    }
    auto* r = const_cast<EdgeRecord*>(row);
    const std::uint8_t state = Ref(r->state).load(std::memory_order_relaxed);
    const std::uint8_t mode = Ref(r->mode).load(std::memory_order_relaxed);
    const std::uint16_t stack_len = Ref(r->stack_len).load(std::memory_order_relaxed);
    const std::int32_t thread = Ref(r->thread).load(std::memory_order_relaxed);
    const std::uint32_t count = Ref(r->count).load(std::memory_order_relaxed);
    const std::uint64_t lock = Ref(r->lock).load(std::memory_order_relaxed);
    std::uint64_t frames[IpcArena::kMaxFrames];
    const std::size_t n = std::min<std::size_t>(stack_len, IpcArena::kMaxFrames);
    for (std::size_t i = 0; i < n; ++i) {
      frames[i] = Ref(r->frames[i]).load(std::memory_order_relaxed);
    }
    const std::uint64_t range_group = Ref(r->range_group).load(std::memory_order_relaxed);
    const std::uint64_t range_start = Ref(r->range_start).load(std::memory_order_relaxed);
    const std::uint64_t range_len = Ref(r->range_len).load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint32_t s2 = Ref(r->seq).load(std::memory_order_relaxed);
    if (s1 != s2) {
      continue;  // raced a writer; retry
    }
    if (state == kEdgeFree) {
      return false;
    }
    out->thread = thread;
    out->lock = lock;
    out->hold = state == kEdgeHold;
    out->mode = mode == 1 ? AcquireMode::kShared : AcquireMode::kExclusive;
    out->count = count;
    out->range = LockRange{range_group, range_start, range_len};
    out->frames.assign(frames, frames + n);
    return true;
  }
  return false;  // persistently torn: reported free until scrubbed
}

// Forces an edge row to the free state with an EVEN final seq, whatever
// parity a dead writer left behind. Used when (re)claiming a slot and when
// sweeping a corpse — the paired-increment writer protocol would preserve
// a corpse's odd parity forever.
void ScrubEdgeRow(EdgeRecord* r) {
  const std::uint32_t s = Ref(r->seq).load(std::memory_order_relaxed);
  Ref(r->seq).store(s | 1u, std::memory_order_relaxed);  // write in progress
  std::atomic_thread_fence(std::memory_order_release);
  Ref(r->state).store(kEdgeFree, std::memory_order_relaxed);
  Ref(r->count).store(0, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  Ref(r->seq).store((s | 1u) + 1u, std::memory_order_release);  // even
}

}  // namespace

std::uint64_t ProcessStartTime(std::uint32_t pid) {
  char path[64];
  std::snprintf(path, sizeof(path), "/proc/%u/stat", pid);
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    return 0;
  }
  char buf[1024];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (n == 0) {
    return 0;
  }
  buf[n] = '\0';
  // Field 2 (comm) may contain spaces and parentheses; scan past the last ')'.
  const char* p = std::strrchr(buf, ')');
  if (p == nullptr) {
    return 0;
  }
  ++p;
  // Fields 3..21 precede starttime (field 22): consume the 20 separating
  // spaces so `p` lands on starttime itself.
  std::uint64_t start = 0;
  int field = 2;
  while (*p != '\0' && field < 22) {
    if (*p == ' ') {
      ++field;
    }
    ++p;
  }
  if (std::sscanf(p, "%" SCNu64, &start) != 1) {
    return 0;
  }
  return start;
}

std::size_t IpcArena::KeyHash::operator()(const Key& k) const {
  return static_cast<std::size_t>(
      HashCombine(static_cast<std::uint64_t>(k.thread) + 0x51ed2701, k.lock));
}

void* IpcArena::HeaderPtr() const { return static_cast<char*>(base_) + kHeaderOff; }

void* IpcArena::ParticipantPtr(int index) const {
  return static_cast<char*>(base_) + kParticipantsOff +
         sizeof(ParticipantRecord) * static_cast<std::size_t>(index);
}

void* IpcArena::EdgePtr(int participant, int index) const {
  return static_cast<char*>(base_) + kEdgesOff +
         sizeof(EdgeRecord) *
             (static_cast<std::size_t>(participant) * kEdgesPerParticipant +
              static_cast<std::size_t>(index));
}

IpcArena::IpcArena(std::string path, void* base, std::size_t size)
    : path_(std::move(path)), base_(base), size_(size) {
  free_rows_.reserve(kEdgesPerParticipant);
  for (int i = kEdgesPerParticipant; i-- > 0;) {
    free_rows_.push_back(i);
  }
}

std::unique_ptr<IpcArena> IpcArena::OpenOrCreate(const std::string& path, std::string* error) {
  auto fail = [&](const std::string& message) -> std::unique_ptr<IpcArena> {
    if (error != nullptr) {
      *error = message;
    }
    return nullptr;
  };

  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return fail("open(" + path + "): " + std::strerror(errno));
  }
  // Size the file only when it is fresh/empty; an existing file of any
  // other size is rejected BEFORE being touched — a misconfigured
  // DIMMUNIX_IPC pointing at real data must never be truncated.
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    return fail("fstat(" + path + "): " + std::strerror(saved));
  }
  if (st.st_size != 0 && st.st_size != static_cast<off_t>(kArenaSize)) {
    ::close(fd);
    return fail(path + ": not a Dimmunix IPC arena (unexpected size; refusing to truncate)");
  }
  if (st.st_size == 0 && ::ftruncate(fd, static_cast<off_t>(kArenaSize)) != 0) {
    const int saved = errno;
    ::close(fd);
    return fail("ftruncate(" + path + "): " + std::strerror(saved));
  }
  void* base = ::mmap(nullptr, kArenaSize, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    return fail("mmap(" + path + "): " + std::strerror(errno));
  }

  auto* header = static_cast<ArenaHeader*>(base);
  // First attacher initializes; the magic store (release) publishes the
  // geometry. Concurrent creators race benignly: they write identical
  // constants before either can observe the magic.
  std::uint32_t magic = Ref(header->magic).load(std::memory_order_acquire);
  if (magic == 0) {
    Ref(header->version).store(kVersion, std::memory_order_relaxed);
    Ref(header->participants).store(kParticipants, std::memory_order_relaxed);
    Ref(header->edges_per_participant).store(kEdgesPerParticipant, std::memory_order_relaxed);
    Ref(header->participant_size)
        .store(static_cast<std::uint32_t>(sizeof(ParticipantRecord)), std::memory_order_relaxed);
    Ref(header->edge_size)
        .store(static_cast<std::uint32_t>(sizeof(EdgeRecord)), std::memory_order_relaxed);
    Ref(header->magic).store(kMagic, std::memory_order_release);
    magic = kMagic;
  }
  if (magic != kMagic) {
    ::munmap(base, kArenaSize);
    return fail(path + ": not a Dimmunix IPC arena (bad magic)");
  }
  // v1 and v2 share the geometry byte-for-byte; accept both. (v1 binaries
  // reject v2-created files — that asymmetry IS the version negotiation,
  // see docs/ipc-arena.md.)
  const std::uint16_t version = Ref(header->version).load(std::memory_order_relaxed);
  if (version < kMinVersion || version > kVersion ||
      Ref(header->participants).load(std::memory_order_relaxed) != kParticipants ||
      Ref(header->edges_per_participant).load(std::memory_order_relaxed) !=
          kEdgesPerParticipant ||
      Ref(header->edge_size).load(std::memory_order_relaxed) != sizeof(EdgeRecord)) {
    ::munmap(base, kArenaSize);
    return fail(path + ": arena version/geometry mismatch (delete the file to re-create)");
  }

  std::unique_ptr<IpcArena> arena(new IpcArena(path, base, kArenaSize));
  std::string claim_error;
  if (!arena->Claim(&claim_error)) {
    return fail(claim_error);
  }
  return arena;
}

bool IpcArena::Claim(std::string* error) {
  const std::uint32_t pid = static_cast<std::uint32_t>(::getpid());
  const std::uint64_t start = ProcessStartTime(pid);
  for (int attempt = 0; attempt < 2; ++attempt) {
    for (int i = 0; i < kParticipants; ++i) {
      auto* p = static_cast<ParticipantRecord*>(ParticipantPtr(i));
      std::uint32_t expected = 0;
      if (!Ref(p->pid).compare_exchange_strong(expected, pid, std::memory_order_acq_rel)) {
        continue;
      }
      // Slot reserved (start_time still 0 => readers skip it). Scrub any
      // edges a crashed predecessor left — including rows with a torn
      // (odd) seq — then publish the claim.
      self_index_ = i;
      for (int e = 0; e < kEdgesPerParticipant; ++e) {
        ScrubEdgeRow(static_cast<EdgeRecord*>(EdgePtr(i, e)));
      }
      Ref(p->seq).fetch_add(1, std::memory_order_relaxed);  // odd: publishing
      std::atomic_thread_fence(std::memory_order_release);
      self_generation_ = Ref(p->generation).load(std::memory_order_relaxed) + 1;
      Ref(p->generation).store(self_generation_, std::memory_order_relaxed);
      Ref(p->heartbeat_ns).store(MonotonicNs(), std::memory_order_relaxed);
      Ref(p->proto_version)
          .store(static_cast<std::uint32_t>(kVersion), std::memory_order_relaxed);
      Ref(p->flush_seq).store(0, std::memory_order_relaxed);
      Ref(p->start_time).store(start, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_release);
      Ref(p->seq).fetch_add(1, std::memory_order_release);  // even: published
      return true;
    }
    // Every slot claimed: reclaim corpses and retry once.
    if (SweepDeadParticipants() == 0) {
      break;
    }
  }
  if (error != nullptr) {
    *error = path_ + ": all " + std::to_string(kParticipants) +
             " participant slots held by live processes";
  }
  return false;
}

IpcArena::~IpcArena() {
  if (base_ == nullptr) {
    return;
  }
  if (self_index_ >= 0) {
    // Clean shutdown: retract our edges so peers do not need a liveness
    // sweep to learn the locks are free, then release the slot.
    {
      std::lock_guard<SpinLock> guard(local_m_);
      ClearOwnEdgesLocked();
    }
    auto* p = static_cast<ParticipantRecord*>(ParticipantPtr(self_index_));
    Ref(p->seq).fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    Ref(p->start_time).store(0, std::memory_order_relaxed);
    Ref(p->heartbeat_ns).store(0, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    Ref(p->seq).fetch_add(1, std::memory_order_release);
    Ref(p->pid).store(0, std::memory_order_release);
  }
  ::munmap(base_, size_);
}

void IpcArena::ClearOwnEdgesLocked() {
  for (const auto& [key, row] : rows_) {
    FreeEdgeRow(row);
    free_rows_.push_back(row);
  }
  rows_.clear();
  for (const auto& [key, row] : upgrade_rows_) {
    FreeEdgeRow(row);
    free_rows_.push_back(row);
  }
  upgrade_rows_.clear();
}

void IpcArena::WriteEdgeRow(int row, ThreadId thread, LockId lock, bool hold, AcquireMode mode,
                            std::uint32_t count, const std::vector<Frame>& frames,
                            const LockRange& range) {
  auto* r = static_cast<EdgeRecord*>(EdgePtr(self_index_, row));
  Ref(r->seq).fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  const std::size_t n = std::min<std::size_t>(frames.size(), kMaxFrames);
  Ref(r->thread).store(thread, std::memory_order_relaxed);
  Ref(r->lock).store(lock, std::memory_order_relaxed);
  Ref(r->mode).store(mode == AcquireMode::kShared ? 1 : 0, std::memory_order_relaxed);
  Ref(r->count).store(count, std::memory_order_relaxed);
  Ref(r->stack_len).store(static_cast<std::uint16_t>(n), std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    Ref(r->frames[i]).store(frames[i], std::memory_order_relaxed);
  }
  Ref(r->range_group).store(range.group, std::memory_order_relaxed);
  Ref(r->range_start).store(range.start, std::memory_order_relaxed);
  Ref(r->range_len).store(range.len, std::memory_order_relaxed);
  Ref(r->state).store(hold ? kEdgeHold : kEdgeWait, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  Ref(r->seq).fetch_add(1, std::memory_order_release);
}

void IpcArena::FreeEdgeRow(int row) {
  auto* r = static_cast<EdgeRecord*>(EdgePtr(self_index_, row));
  Ref(r->seq).fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  Ref(r->state).store(kEdgeFree, std::memory_order_relaxed);
  Ref(r->count).store(0, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  Ref(r->seq).fetch_add(1, std::memory_order_release);
}

void IpcArena::PublishWait(ThreadId thread, LockId lock, AcquireMode mode,
                           const std::vector<Frame>& frames, const LockRange& range) {
  std::lock_guard<SpinLock> guard(local_m_);
  const Key key{thread, lock};
  auto it = rows_.find(key);
  int row = -1;
  if (it != rows_.end()) {
    row = it->second;
    auto* r = static_cast<EdgeRecord*>(EdgePtr(self_index_, row));
    if (Ref(r->state).load(std::memory_order_relaxed) == kEdgeHold) {
      // Upgrade request over our own standing hold (shared -> exclusive):
      // the hold row must stay visible — losing it would hide a held lock
      // from the fleet — so the wait gets a row of its own. Peers then
      // mirror this thread as simultaneously holding (shared) and waiting
      // (exclusive), the exact shape that makes upgrade-upgrade cycles
      // across processes detectable.
      auto up = upgrade_rows_.find(key);
      if (up != upgrade_rows_.end()) {
        row = up->second;  // re-publish (retry with a different stack/mode)
      } else if (!free_rows_.empty()) {
        row = free_rows_.back();
        free_rows_.pop_back();
        upgrade_rows_.emplace(key, row);
      } else {
        ++dropped_;
        return;
      }
    }
  } else if (!free_rows_.empty()) {
    row = free_rows_.back();
    free_rows_.pop_back();
    rows_.emplace(key, row);
  } else {
    ++dropped_;
    return;
  }
  WriteEdgeRow(row, thread, lock, /*hold=*/false, mode, 0, frames, range);
}

void IpcArena::ClearWait(ThreadId thread, LockId lock) {
  std::lock_guard<SpinLock> guard(local_m_);
  // A withdrawn upgrade (cancel / timeout / broken) retracts only the wait
  // row; the underlying shared hold stays published.
  if (auto up = upgrade_rows_.find(Key{thread, lock}); up != upgrade_rows_.end()) {
    FreeEdgeRow(up->second);
    free_rows_.push_back(up->second);
    upgrade_rows_.erase(up);
    return;
  }
  auto it = rows_.find(Key{thread, lock});
  if (it == rows_.end()) {
    return;
  }
  auto* r = static_cast<EdgeRecord*>(EdgePtr(self_index_, it->second));
  if (Ref(r->state).load(std::memory_order_relaxed) != kEdgeWait) {
    return;  // already promoted to a hold; nothing to retract
  }
  FreeEdgeRow(it->second);
  free_rows_.push_back(it->second);
  rows_.erase(it);
}

void IpcArena::PublishHold(ThreadId thread, LockId lock, AcquireMode mode,
                           const std::vector<Frame>& frames, const LockRange& range) {
  std::lock_guard<SpinLock> guard(local_m_);
  const Key key{thread, lock};
  // A committed upgrade ends its wait: free the distinct wait row before
  // rewriting the main row as the (now exclusive) hold.
  if (auto up = upgrade_rows_.find(key); up != upgrade_rows_.end()) {
    FreeEdgeRow(up->second);
    free_rows_.push_back(up->second);
    upgrade_rows_.erase(up);
  }
  auto it = rows_.find(key);
  int row = -1;
  std::uint32_t count = 1;
  if (it != rows_.end()) {
    row = it->second;
    auto* r = static_cast<EdgeRecord*>(EdgePtr(self_index_, row));
    if (Ref(r->state).load(std::memory_order_relaxed) == kEdgeHold) {
      count = Ref(r->count).load(std::memory_order_relaxed) + 1;  // reentrant
    }
  } else if (!free_rows_.empty()) {
    row = free_rows_.back();
    free_rows_.pop_back();
    rows_.emplace(key, row);
  } else {
    ++dropped_;
    return;
  }
  WriteEdgeRow(row, thread, lock, /*hold=*/true, mode, count, frames, range);
}

void IpcArena::ClearHold(ThreadId thread, LockId lock) {
  std::lock_guard<SpinLock> guard(local_m_);
  auto it = rows_.find(Key{thread, lock});
  if (it == rows_.end()) {
    return;
  }
  auto* r = static_cast<EdgeRecord*>(EdgePtr(self_index_, it->second));
  if (Ref(r->state).load(std::memory_order_relaxed) == kEdgeHold) {
    const std::uint32_t count = Ref(r->count).load(std::memory_order_relaxed);
    if (count > 1) {
      // Reentrant release: publish the decremented count, keep the row.
      Ref(r->seq).fetch_add(1, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_release);
      Ref(r->count).store(count - 1, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_release);
      Ref(r->seq).fetch_add(1, std::memory_order_release);
      return;
    }
  }
  // Defensive: a hold fully released while its upgrade wait row still
  // stands must not leak that row (the engine retracts the wait before the
  // hold on every path, so this is belt-and-braces).
  if (auto up = upgrade_rows_.find(Key{thread, lock}); up != upgrade_rows_.end()) {
    FreeEdgeRow(up->second);
    free_rows_.push_back(up->second);
    upgrade_rows_.erase(up);
  }
  FreeEdgeRow(it->second);
  free_rows_.push_back(it->second);
  rows_.erase(it);
}

std::uint64_t IpcArena::dropped_publishes() const {
  std::lock_guard<SpinLock> guard(local_m_);
  return dropped_;
}

void IpcArena::Heartbeat() {
  auto* p = static_cast<ParticipantRecord*>(ParticipantPtr(self_index_));
  Ref(p->heartbeat_ns).store(MonotonicNs(), std::memory_order_relaxed);
}

void IpcArena::BumpFlushSeq() {
  auto* p = static_cast<ParticipantRecord*>(ParticipantPtr(self_index_));
  Ref(p->flush_seq).fetch_add(1, std::memory_order_relaxed);
}

std::vector<ForeignEdge> IpcArena::SnapshotForeign() const {
  std::vector<ForeignEdge> edges;
  for (int i = 0; i < kParticipants; ++i) {
    if (i == self_index_) {
      continue;
    }
    auto* p = static_cast<ParticipantRecord*>(ParticipantPtr(i));
    const std::uint32_t pid = Ref(p->pid).load(std::memory_order_acquire);
    const std::uint64_t start = Ref(p->start_time).load(std::memory_order_acquire);
    const std::uint64_t generation = Ref(p->generation).load(std::memory_order_relaxed);
    if (pid == 0 || start == 0) {
      continue;  // free, or claim still being initialized
    }
    // A v1 participant's rows have stack material where v2 keeps the range
    // triple; never interpret it as a range.
    const bool trust_ranges =
        Ref(p->proto_version).load(std::memory_order_relaxed) >= 2;
    for (int e = 0; e < kEdgesPerParticipant; ++e) {
      ForeignEdge edge;
      if (!ReadEdgeRow(static_cast<const EdgeRecord*>(EdgePtr(i, e)), &edge)) {
        continue;
      }
      edge.participant = i;
      edge.generation = generation;
      edge.pid = pid;
      if (!trust_ranges) {
        edge.range = LockRange{};
      }
      edges.push_back(std::move(edge));
    }
  }
  return edges;
}

std::vector<ParticipantInfo> IpcArena::Participants() const {
  std::vector<ParticipantInfo> out;
  const std::uint64_t now = MonotonicNs();
  for (int i = 0; i < kParticipants; ++i) {
    auto* p = static_cast<ParticipantRecord*>(ParticipantPtr(i));
    const std::uint32_t pid = Ref(p->pid).load(std::memory_order_acquire);
    if (pid == 0) {
      continue;
    }
    ParticipantInfo info;
    info.index = i;
    info.pid = pid;
    info.generation = Ref(p->generation).load(std::memory_order_relaxed);
    info.start_time = Ref(p->start_time).load(std::memory_order_relaxed);
    info.proto_version = Ref(p->proto_version).load(std::memory_order_relaxed);
    info.flush_seq = Ref(p->flush_seq).load(std::memory_order_relaxed);
    const std::uint64_t hb = Ref(p->heartbeat_ns).load(std::memory_order_relaxed);
    info.heartbeat_age_ms =
        hb == 0 || hb > now ? -1 : static_cast<std::int64_t>((now - hb) / 1000000ULL);
    const std::uint64_t live_start = ProcessStartTime(pid);
    info.alive = live_start != 0 && live_start == info.start_time;
    info.self = i == self_index_;
    for (int e = 0; e < kEdgesPerParticipant; ++e) {
      ForeignEdge edge;
      if (ReadEdgeRow(static_cast<const EdgeRecord*>(EdgePtr(i, e)), &edge)) {
        ++info.edges;
      }
    }
    out.push_back(info);
  }
  return out;
}

int IpcArena::SweepDeadParticipants() {
  int reclaimed = 0;
  const std::uint32_t self_pid = static_cast<std::uint32_t>(::getpid());
  const std::uint64_t self_start = ProcessStartTime(self_pid);
  for (int i = 0; i < kParticipants; ++i) {
    if (i == self_index_) {
      continue;
    }
    auto* p = static_cast<ParticipantRecord*>(ParticipantPtr(i));
    std::uint32_t pid = Ref(p->pid).load(std::memory_order_acquire);
    const std::uint64_t claimed_start = Ref(p->start_time).load(std::memory_order_relaxed);
    if (pid == 0) {
      continue;  // free
    }
    const std::uint64_t live_start = ProcessStartTime(pid);
    if (live_start != 0 && (claimed_start == 0 || live_start == claimed_start)) {
      // Alive: either the published incarnation, or a claim/scrub in
      // progress by a process that is alive this instant. (A live pid with
      // a DIFFERENT start time falls through: the claimed incarnation is
      // dead, the pid merely reused.)
      continue;
    }
    // Dead (or the pid now names a different process). Take ownership of
    // the corpse's slot under OUR live identity: exactly one sweeper wins
    // the CAS, concurrent sweepers see a live owner and skip, and
    // claimants (who CAS 0 -> pid) stay excluded for the whole scrub. If
    // this process dies mid-scrub, the slot simply looks like its corpse
    // and the next sweep recovers it the same way.
    if (!Ref(p->pid).compare_exchange_strong(pid, self_pid, std::memory_order_acq_rel)) {
      continue;
    }
    Ref(p->start_time).store(self_start, std::memory_order_release);
    Ref(p->heartbeat_ns).store(0, std::memory_order_relaxed);
    for (int e = 0; e < kEdgesPerParticipant; ++e) {
      ScrubEdgeRow(static_cast<EdgeRecord*>(EdgePtr(i, e)));
    }
    // Scrub complete: unpublish, then release the slot to claimants.
    Ref(p->start_time).store(0, std::memory_order_release);
    Ref(p->pid).store(0, std::memory_order_release);
    DIMMUNIX_LOG(kInfo) << "ipc: reclaimed participant slot " << i << " (pid " << pid
                        << " gone)";
    ++reclaimed;
  }
  return reclaimed;
}

}  // namespace ipc
}  // namespace dimmunix
