// Copyright (c) dimmunix-cpp authors. MIT license.
//
// LD_PRELOAD pthread interposition — the "modified thread library" form of
// Dimmunix (§6) for unmodified Linux binaries:
//
//   LD_PRELOAD=libdimmunix_preload.so DIMMUNIX_HISTORY=app.hist ./app
//
// pthread_mutex_{lock,trylock,timedlock,unlock} are wrapped with the
// avoidance protocol; call stacks come from backtrace() with
// module-relative offsets, so signatures survive ASLR and re-runs. The
// engine's own internal synchronization (std::mutex, condvars) also reaches
// these symbols, so a thread-local reentrancy guard routes internal calls
// straight to the real implementation.
//
// Unlike the library form (src/sync), a blocked pthread acquisition cannot
// be cancelled — like the paper's NPTL implementation, recovery from an
// actual deadlock is restart-based; the value added is detection +
// signature persistence + avoidance on the next run.
//
// Setting DIMMUNIX_CONTROL=/path.sock additionally opens the control socket
// (src/control): Runtime::Global() is built from Config::FromEnvironment(),
// so a preloaded, unmodified binary can be driven live with `dimctl`
// (status / history / disable-last / reload / ...), which is the only way to
// reach those operations in this deployment mode.

#include <dlfcn.h>
#include <pthread.h>
#include <time.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "src/core/runtime.h"

namespace {

using LockFn = int (*)(pthread_mutex_t*);
using TimedLockFn = int (*)(pthread_mutex_t*, const struct timespec*);

LockFn real_lock = nullptr;
LockFn real_trylock = nullptr;
LockFn real_unlock = nullptr;
TimedLockFn real_timedlock = nullptr;

std::atomic<bool> initialized{false};
// Set while this thread is inside a wrapper (or inside runtime
// construction): nested pthread_mutex_* calls go straight through.
thread_local bool tls_in_hook = false;

void ResolveReal() {
  real_lock = reinterpret_cast<LockFn>(dlsym(RTLD_NEXT, "pthread_mutex_lock"));
  real_trylock = reinterpret_cast<LockFn>(dlsym(RTLD_NEXT, "pthread_mutex_trylock"));
  real_unlock = reinterpret_cast<LockFn>(dlsym(RTLD_NEXT, "pthread_mutex_unlock"));
  real_timedlock = reinterpret_cast<TimedLockFn>(dlsym(RTLD_NEXT, "pthread_mutex_timedlock"));
}

__attribute__((constructor)) void PreloadInit() {
  ResolveReal();
  initialized.store(true, std::memory_order_release);
}

dimmunix::Runtime* TryRuntime() {
  if (!initialized.load(std::memory_order_acquire) || tls_in_hook) {
    return nullptr;
  }
  tls_in_hook = true;
  dimmunix::Runtime* runtime = &dimmunix::Runtime::Global();
  tls_in_hook = false;
  return runtime;
}

}  // namespace

extern "C" int pthread_mutex_lock(pthread_mutex_t* mutex) {
  if (real_lock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_lock(mutex);
  }
  tls_in_hook = true;
  const dimmunix::ThreadId tid = runtime->RegisterCurrentThread();
  const dimmunix::LockId lock = reinterpret_cast<dimmunix::LockId>(mutex);
  const dimmunix::RequestDecision decision = runtime->engine().Request(tid, lock);
  tls_in_hook = false;
  const int rc = real_lock(mutex);
  tls_in_hook = true;
  if (rc == 0) {
    runtime->engine().Acquired(tid, lock);
  } else if (decision == dimmunix::RequestDecision::kGo) {
    runtime->engine().CancelRequest(tid, lock);
  }
  tls_in_hook = false;
  return rc;
}

extern "C" int pthread_mutex_trylock(pthread_mutex_t* mutex) {
  if (real_trylock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_trylock(mutex);
  }
  tls_in_hook = true;
  const dimmunix::ThreadId tid = runtime->RegisterCurrentThread();
  const dimmunix::LockId lock = reinterpret_cast<dimmunix::LockId>(mutex);
  if (!runtime->engine().RequestNonblocking(tid, lock)) {
    tls_in_hook = false;
    return EBUSY;  // dangerous pattern: report contention instead
  }
  tls_in_hook = false;
  const int rc = real_trylock(mutex);
  tls_in_hook = true;
  if (rc == 0) {
    runtime->engine().Acquired(tid, lock);
  } else {
    runtime->engine().CancelRequest(tid, lock);  // §6 cancel event
  }
  tls_in_hook = false;
  return rc;
}

extern "C" int pthread_mutex_timedlock(pthread_mutex_t* mutex, const struct timespec* abstime) {
  if (real_timedlock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_timedlock(mutex, abstime);
  }
  tls_in_hook = true;
  const dimmunix::ThreadId tid = runtime->RegisterCurrentThread();
  const dimmunix::LockId lock = reinterpret_cast<dimmunix::LockId>(mutex);
  const dimmunix::RequestDecision decision = runtime->engine().Request(tid, lock);
  tls_in_hook = false;
  const int rc = real_timedlock(mutex, abstime);
  tls_in_hook = true;
  if (rc == 0) {
    runtime->engine().Acquired(tid, lock);
  } else if (decision == dimmunix::RequestDecision::kGo) {
    runtime->engine().CancelRequest(tid, lock);  // timeout rollback (§6)
  }
  tls_in_hook = false;
  return rc;
}

extern "C" int pthread_mutex_unlock(pthread_mutex_t* mutex) {
  if (real_unlock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_unlock(mutex);
  }
  tls_in_hook = true;
  const dimmunix::ThreadId tid = runtime->RegisterCurrentThread();
  runtime->engine().Release(tid, reinterpret_cast<dimmunix::LockId>(mutex));
  tls_in_hook = false;
  return real_unlock(mutex);
}
