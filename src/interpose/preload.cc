// Copyright (c) dimmunix-cpp authors. MIT license.
//
// LD_PRELOAD pthread interposition — the "modified thread library" form of
// Dimmunix (§6) for unmodified Linux binaries:
//
//   LD_PRELOAD=libdimmunix_preload.so DIMMUNIX_HISTORY=app.hist ./app
//
// pthread_mutex_{lock,trylock,timedlock,unlock} and
// pthread_rwlock_{rdlock,tryrdlock,timedrdlock,wrlock,trywrlock,timedwrlock,
// unlock} are wrapped with the avoidance protocol through the acquisition
// port (src/core/acquire.h): every wrapper is a thin adapter that runs
// Runtime::BeginAcquire / TryBeginAcquire in the right AcquireMode
// (exclusive for mutexes and write locks, shared for read locks), calls the
// real pthread function, and settles the AcquireOp with Commit or Cancel.
// rwlock_unlock releases by lock identity alone — the engine's owner set
// knows which side the thread holds. Call stacks come from backtrace()
// with module-relative offsets, so signatures survive ASLR and re-runs.
// The engine's own internal synchronization (std::mutex, condvars) also
// reaches these symbols, so a thread-local reentrancy guard routes internal
// calls straight to the real implementation.
//
// Unlike the library form (src/sync), a blocked pthread acquisition cannot
// be cancelled — like the paper's NPTL implementation, recovery from an
// actual deadlock is restart-based; the value added is detection +
// signature persistence + avoidance on the next run.
//
// Setting DIMMUNIX_CONTROL=/path.sock additionally opens the control socket
// (src/control): Runtime::Global() is built from Config::FromEnvironment(),
// so a preloaded, unmodified binary can be driven live with `dimctl`
// (status / history / disable-last / reload / ...), which is the only way to
// reach those operations in this deployment mode.
//
// Cross-process immunity (DIMMUNIX_IPC set): acquisitions are classified at
// lock time. A PTHREAD_PROCESS_SHARED mutex/rwlock (glibc __kind/__shared
// inspection, plus the attr registry filled by interposed *_init) gets a
// stable cross-process LockId derived from its shared-memory backing
// (src/ipc/global_id.h) instead of its — per-process — address. flock(2)
// and fcntl(F_SETLK/F_SETLKW) byte-range locks are additionally interposed
// as exclusive/shared acquisitions of dev:inode:offset-identified global
// locks. fcntl OFD commands pass through untouched (the persistence layer
// itself locks history files with them).
//
// pthread_cond_wait/pthread_cond_timedwait are wrapped so the implicit
// mutex release and re-acquisition inside the wait keep the engine's owner
// map in step: EndRelease before the real call, and a nonblocking
// TryBeginAcquire + Commit after it (Commit records the hold in every
// decision state — the thread factually owns the mutex when the wait
// returns, and re-running the blocking protocol there could park a thread
// that already holds the lock).

#include <dlfcn.h>
#include <fcntl.h>
#include <pthread.h>
#include <stdarg.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_set>

#include <cerrno>

#include "src/common/spin_lock.h"
#include "src/core/global_port.h"
#include "src/core/runtime.h"
#include "src/ipc/global_id.h"

namespace {

using MutexFn = int (*)(pthread_mutex_t*);
using MutexTimedFn = int (*)(pthread_mutex_t*, const struct timespec*);
using RwlockFn = int (*)(pthread_rwlock_t*);
using RwlockTimedFn = int (*)(pthread_rwlock_t*, const struct timespec*);
using MutexInitFn = int (*)(pthread_mutex_t*, const pthread_mutexattr_t*);
using RwlockInitFn = int (*)(pthread_rwlock_t*, const pthread_rwlockattr_t*);
using CondWaitFn = int (*)(pthread_cond_t*, pthread_mutex_t*);
using CondTimedWaitFn = int (*)(pthread_cond_t*, pthread_mutex_t*, const struct timespec*);
using FlockFn = int (*)(int, int);
using FcntlFn = int (*)(int, int, void*);
using MunmapFn = int (*)(void*, size_t);
using CloseFn = int (*)(int);
using Dup2Fn = int (*)(int, int);
using Dup3Fn = int (*)(int, int, int);

MutexFn real_lock = nullptr;
MutexFn real_trylock = nullptr;
MutexFn real_unlock = nullptr;
MutexTimedFn real_timedlock = nullptr;

RwlockFn real_rdlock = nullptr;
RwlockFn real_tryrdlock = nullptr;
RwlockFn real_wrlock = nullptr;
RwlockFn real_trywrlock = nullptr;
RwlockFn real_rwunlock = nullptr;
RwlockTimedFn real_timedrdlock = nullptr;
RwlockTimedFn real_timedwrlock = nullptr;

MutexInitFn real_mutex_init = nullptr;
RwlockInitFn real_rwlock_init = nullptr;
CondWaitFn real_cond_wait = nullptr;
CondTimedWaitFn real_cond_timedwait = nullptr;
FlockFn real_flock = nullptr;
FcntlFn real_fcntl = nullptr;
MunmapFn real_munmap = nullptr;
CloseFn real_close = nullptr;
Dup2Fn real_dup2 = nullptr;
Dup3Fn real_dup3 = nullptr;

std::atomic<bool> initialized{false};
// Set while this thread is inside a wrapper (or inside runtime
// construction): nested pthread_mutex_*/pthread_rwlock_* calls go straight
// through.
thread_local bool tls_in_hook = false;

void ResolveReal() {
  real_lock = reinterpret_cast<MutexFn>(dlsym(RTLD_NEXT, "pthread_mutex_lock"));
  real_trylock = reinterpret_cast<MutexFn>(dlsym(RTLD_NEXT, "pthread_mutex_trylock"));
  real_unlock = reinterpret_cast<MutexFn>(dlsym(RTLD_NEXT, "pthread_mutex_unlock"));
  real_timedlock = reinterpret_cast<MutexTimedFn>(dlsym(RTLD_NEXT, "pthread_mutex_timedlock"));
  real_rdlock = reinterpret_cast<RwlockFn>(dlsym(RTLD_NEXT, "pthread_rwlock_rdlock"));
  real_tryrdlock = reinterpret_cast<RwlockFn>(dlsym(RTLD_NEXT, "pthread_rwlock_tryrdlock"));
  real_wrlock = reinterpret_cast<RwlockFn>(dlsym(RTLD_NEXT, "pthread_rwlock_wrlock"));
  real_trywrlock = reinterpret_cast<RwlockFn>(dlsym(RTLD_NEXT, "pthread_rwlock_trywrlock"));
  real_rwunlock = reinterpret_cast<RwlockFn>(dlsym(RTLD_NEXT, "pthread_rwlock_unlock"));
  real_timedrdlock =
      reinterpret_cast<RwlockTimedFn>(dlsym(RTLD_NEXT, "pthread_rwlock_timedrdlock"));
  real_timedwrlock =
      reinterpret_cast<RwlockTimedFn>(dlsym(RTLD_NEXT, "pthread_rwlock_timedwrlock"));
  real_mutex_init = reinterpret_cast<MutexInitFn>(dlsym(RTLD_NEXT, "pthread_mutex_init"));
  real_rwlock_init = reinterpret_cast<RwlockInitFn>(dlsym(RTLD_NEXT, "pthread_rwlock_init"));
  real_cond_wait = reinterpret_cast<CondWaitFn>(dlsym(RTLD_NEXT, "pthread_cond_wait"));
  real_cond_timedwait =
      reinterpret_cast<CondTimedWaitFn>(dlsym(RTLD_NEXT, "pthread_cond_timedwait"));
  real_flock = reinterpret_cast<FlockFn>(dlsym(RTLD_NEXT, "flock"));
  real_fcntl = reinterpret_cast<FcntlFn>(dlsym(RTLD_NEXT, "fcntl64"));
  if (real_fcntl == nullptr) {
    real_fcntl = reinterpret_cast<FcntlFn>(dlsym(RTLD_NEXT, "fcntl"));
  }
  real_munmap = reinterpret_cast<MunmapFn>(dlsym(RTLD_NEXT, "munmap"));
  real_close = reinterpret_cast<CloseFn>(dlsym(RTLD_NEXT, "close"));
  real_dup2 = reinterpret_cast<Dup2Fn>(dlsym(RTLD_NEXT, "dup2"));
  real_dup3 = reinterpret_cast<Dup3Fn>(dlsym(RTLD_NEXT, "dup3"));
}

__attribute__((constructor)) void PreloadInit() {
  ResolveReal();
  initialized.store(true, std::memory_order_release);
}

dimmunix::Runtime* TryRuntime() {
  if (!initialized.load(std::memory_order_acquire) || tls_in_hook) {
    return nullptr;
  }
  tls_in_hook = true;
  dimmunix::Runtime* runtime = &dimmunix::Runtime::Global();
  tls_in_hook = false;
  return runtime;
}

// --- Global-lock classification ---------------------------------------------
//
// Registry of lock objects whose interposed *_init saw a
// PTHREAD_PROCESS_SHARED attribute. Works on any libc, but only in the
// process that ran the init; the glibc field checks below classify shm
// objects initialized elsewhere too.

dimmunix::SpinLock& PsharedRegistryLock() {
  static dimmunix::SpinLock lock;
  return lock;
}

std::unordered_set<const void*>& PsharedRegistry() {
  static auto* set = new std::unordered_set<const void*>();
  return *set;
}

void PsharedRegister(const void* object) {
  std::lock_guard<dimmunix::SpinLock> guard(PsharedRegistryLock());
  PsharedRegistry().insert(object);
}

[[maybe_unused]] bool PsharedContains(const void* object) {
  std::lock_guard<dimmunix::SpinLock> guard(PsharedRegistryLock());
  return PsharedRegistry().count(object) > 0;
}

bool IsProcessSharedMutex(const pthread_mutex_t* mutex) {
#if defined(__GLIBC__)
  // glibc encodes pshared as PTHREAD_MUTEX_PSHARED_BIT (128) in __kind —
  // visible in every process mapping the shm segment, not just the
  // initializer, so the field is authoritative and the classification is
  // one load + bit test. The registry is NOT consulted here: probing a
  // global spinlock on every private-mutex operation would put a
  // serialization point back on the interposed hot path.
  return (mutex->__data.__kind & 128) != 0;
#else
  return PsharedContains(mutex);
#endif
}

bool IsProcessSharedRwlock(const pthread_rwlock_t* rwlock) {
#if defined(__GLIBC__)
  return rwlock->__data.__shared != 0;
#else
  return PsharedContains(rwlock);
#endif
}

// The engine-facing identity: global locks use their shared-memory backing
// (same id in every process), local locks their address.
dimmunix::LockId MutexLockId(pthread_mutex_t* mutex) {
  if (IsProcessSharedMutex(mutex)) {
    return dimmunix::ipc::GlobalIdForSharedAddress(mutex);
  }
  return reinterpret_cast<dimmunix::LockId>(mutex);
}

dimmunix::LockId RwlockLockId(pthread_rwlock_t* rwlock) {
  if (IsProcessSharedRwlock(rwlock)) {
    return dimmunix::ipc::GlobalIdForSharedAddress(rwlock);
  }
  return reinterpret_cast<dimmunix::LockId>(rwlock);
}

// Shared adapter bodies: every wrapper is the same protocol run, modulo the
// real function to call and the acquisition mode.

// A robust mutex returning EOWNERDEAD *is* an acquisition: the previous
// owner died holding it and the kernel handed it to us with the state
// flagged inconsistent. Without this, the corpse's hold would sit in the
// engine's owner map forever and every later waiter on this lock would
// appear to close a cycle through a dead thread. The corpse is released
// here only when it is a local registry thread — a dead *process*'s holds
// on a pshared mutex are mirrored as foreign synthetic threads and
// reclaimed by the IPC arena's liveness sweep, and reaping them twice
// would race with it.
void ReleaseCorpseHold(dimmunix::Runtime* runtime, dimmunix::LockId id) {
  const dimmunix::ThreadId owner = runtime->engine().LockOwner(id);
  if (owner == dimmunix::kInvalidThreadId || dimmunix::IsForeignThreadId(owner)) {
    return;
  }
  runtime->engine().Release(owner, id);
}

// EOWNERDEAD and 0 both mean "caller now owns the lock" (the caller is
// expected to repair the state and call pthread_mutex_consistent; either
// way the hold is real and must be recorded).
bool Acquired(int rc) { return rc == 0 || rc == EOWNERDEAD; }

template <typename Primitive>
int BlockingAcquire(dimmunix::Runtime* runtime, Primitive* primitive, dimmunix::LockId id,
                    int (*real)(Primitive*), dimmunix::AcquireMode mode) {
  tls_in_hook = true;
  dimmunix::AcquireOp op = runtime->BeginAcquire(id, mode);
  tls_in_hook = false;
  const int rc = real(primitive);
  tls_in_hook = true;
  // A pthread acquisition cannot be cancelled, so the real lock can succeed
  // even after a kBroken grant rollback — Commit records the hold in every
  // decision state, and Cancel is a no-op unless a kGo edge is standing.
  if (Acquired(rc)) {
    if (rc == EOWNERDEAD) {
      ReleaseCorpseHold(runtime, id);
    }
    op.Commit();
  } else {
    op.Cancel();
  }
  tls_in_hook = false;
  return rc;
}

template <typename Primitive>
int NonblockingAcquire(dimmunix::Runtime* runtime, Primitive* primitive, dimmunix::LockId id,
                       int (*real)(Primitive*), dimmunix::AcquireMode mode) {
  tls_in_hook = true;
  dimmunix::AcquireOp op = runtime->TryBeginAcquire(id, mode);
  if (!op.Granted()) {
    tls_in_hook = false;
    return EBUSY;  // dangerous pattern: report contention instead
  }
  tls_in_hook = false;
  const int rc = real(primitive);
  tls_in_hook = true;
  if (Acquired(rc)) {
    if (rc == EOWNERDEAD) {
      ReleaseCorpseHold(runtime, id);
    }
    op.Commit();
  } else {
    op.Cancel();  // §6 cancel event
  }
  tls_in_hook = false;
  return rc;
}

// pthread timed locks take a CLOCK_REALTIME absolute time; the engine's
// yield deadline is monotonic. Convert by remaining duration so an
// avoidance yield cannot outlive the caller's deadline.
dimmunix::MonoTime MonoDeadlineFrom(const struct timespec* abstime) {
  struct timespec now_rt {};
  clock_gettime(CLOCK_REALTIME, &now_rt);
  const auto remaining = std::chrono::seconds(abstime->tv_sec - now_rt.tv_sec) +
                         std::chrono::nanoseconds(abstime->tv_nsec - now_rt.tv_nsec);
  return dimmunix::Now() + std::chrono::duration_cast<dimmunix::Duration>(
                               std::max(remaining, decltype(remaining)::zero()));
}

template <typename Primitive>
int TimedAcquire(dimmunix::Runtime* runtime, Primitive* primitive, dimmunix::LockId id,
                 int (*real)(Primitive*, const struct timespec*), const struct timespec* abstime,
                 dimmunix::AcquireMode mode) {
  tls_in_hook = true;
  dimmunix::AcquireOp op = runtime->BeginAcquire(id, mode, MonoDeadlineFrom(abstime));
  tls_in_hook = false;
  const int rc = real(primitive, abstime);
  tls_in_hook = true;
  if (Acquired(rc)) {
    if (rc == EOWNERDEAD) {
      ReleaseCorpseHold(runtime, id);
    }
    op.Commit();  // recorded even after a kBroken rollback (see above)
  } else {
    op.Cancel();  // timeout rollback (§6)
  }
  tls_in_hook = false;
  return rc;
}

template <typename Primitive>
int InstrumentedRelease(dimmunix::Runtime* runtime, Primitive* primitive, dimmunix::LockId id,
                        int (*real)(Primitive*)) {
  tls_in_hook = true;
  runtime->EndRelease(id);
  tls_in_hook = false;
  return real(primitive);
}

}  // namespace

// --- pthread_mutex_* ---------------------------------------------------------

extern "C" int pthread_mutex_lock(pthread_mutex_t* mutex) {
  if (real_lock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_lock(mutex);
  }
  return BlockingAcquire(runtime, mutex, MutexLockId(mutex), real_lock,
                         dimmunix::AcquireMode::kExclusive);
}

extern "C" int pthread_mutex_trylock(pthread_mutex_t* mutex) {
  if (real_trylock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_trylock(mutex);
  }
  return NonblockingAcquire(runtime, mutex, MutexLockId(mutex), real_trylock,
                            dimmunix::AcquireMode::kExclusive);
}

extern "C" int pthread_mutex_timedlock(pthread_mutex_t* mutex, const struct timespec* abstime) {
  if (real_timedlock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_timedlock(mutex, abstime);
  }
  return TimedAcquire(runtime, mutex, MutexLockId(mutex), real_timedlock, abstime,
                      dimmunix::AcquireMode::kExclusive);
}

extern "C" int pthread_mutex_unlock(pthread_mutex_t* mutex) {
  if (real_unlock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_unlock(mutex);
  }
  return InstrumentedRelease(runtime, mutex, MutexLockId(mutex), real_unlock);
}

// --- pthread_rwlock_* --------------------------------------------------------

extern "C" int pthread_rwlock_rdlock(pthread_rwlock_t* rwlock) {
  if (real_rdlock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_rdlock(rwlock);
  }
  return BlockingAcquire(runtime, rwlock, RwlockLockId(rwlock), real_rdlock,
                         dimmunix::AcquireMode::kShared);
}

extern "C" int pthread_rwlock_tryrdlock(pthread_rwlock_t* rwlock) {
  if (real_tryrdlock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_tryrdlock(rwlock);
  }
  return NonblockingAcquire(runtime, rwlock, RwlockLockId(rwlock), real_tryrdlock,
                            dimmunix::AcquireMode::kShared);
}

extern "C" int pthread_rwlock_timedrdlock(pthread_rwlock_t* rwlock,
                                          const struct timespec* abstime) {
  if (real_timedrdlock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_timedrdlock(rwlock, abstime);
  }
  return TimedAcquire(runtime, rwlock, RwlockLockId(rwlock), real_timedrdlock, abstime,
                      dimmunix::AcquireMode::kShared);
}

extern "C" int pthread_rwlock_wrlock(pthread_rwlock_t* rwlock) {
  if (real_wrlock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_wrlock(rwlock);
  }
  return BlockingAcquire(runtime, rwlock, RwlockLockId(rwlock), real_wrlock,
                         dimmunix::AcquireMode::kExclusive);
}

extern "C" int pthread_rwlock_trywrlock(pthread_rwlock_t* rwlock) {
  if (real_trywrlock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_trywrlock(rwlock);
  }
  return NonblockingAcquire(runtime, rwlock, RwlockLockId(rwlock), real_trywrlock,
                            dimmunix::AcquireMode::kExclusive);
}

extern "C" int pthread_rwlock_timedwrlock(pthread_rwlock_t* rwlock,
                                          const struct timespec* abstime) {
  if (real_timedwrlock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_timedwrlock(rwlock, abstime);
  }
  return TimedAcquire(runtime, rwlock, RwlockLockId(rwlock), real_timedwrlock, abstime,
                      dimmunix::AcquireMode::kExclusive);
}

extern "C" int pthread_rwlock_unlock(pthread_rwlock_t* rwlock) {
  if (real_rwunlock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_rwunlock(rwlock);
  }
  return InstrumentedRelease(runtime, rwlock, RwlockLockId(rwlock), real_rwunlock);
}

// --- pthread_*_init (PTHREAD_PROCESS_SHARED classification) ------------------

extern "C" int pthread_mutex_init(pthread_mutex_t* mutex, const pthread_mutexattr_t* attr) {
  if (real_mutex_init == nullptr) {
    ResolveReal();
  }
  if (attr != nullptr) {
    int pshared = PTHREAD_PROCESS_PRIVATE;
    if (pthread_mutexattr_getpshared(attr, &pshared) == 0 &&
        pshared == PTHREAD_PROCESS_SHARED) {
      PsharedRegister(mutex);
    }
  }
  return real_mutex_init(mutex, attr);
}

extern "C" int pthread_rwlock_init(pthread_rwlock_t* rwlock, const pthread_rwlockattr_t* attr) {
  if (real_rwlock_init == nullptr) {
    ResolveReal();
  }
  if (attr != nullptr) {
    int pshared = PTHREAD_PROCESS_PRIVATE;
    if (pthread_rwlockattr_getpshared(attr, &pshared) == 0 &&
        pshared == PTHREAD_PROCESS_SHARED) {
      PsharedRegister(rwlock);
    }
  }
  return real_rwlock_init(rwlock, attr);
}

// --- pthread_cond_wait / pthread_cond_timedwait ------------------------------
//
// The wait atomically releases the mutex and re-acquires it before
// returning. Without interposition the engine's owner map keeps crediting
// the waiter with the mutex for the whole wait — a phantom hold edge that
// corrupts cycle detection and signature instantiation. The adapter models
// the release up front and records the re-acquisition afterwards;
// Commit() is legal in every decision state precisely for uncancellable
// adapters like this one (the thread really holds the mutex by then).

extern "C" int pthread_cond_wait(pthread_cond_t* cond, pthread_mutex_t* mutex) {
  if (real_cond_wait == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_cond_wait(cond, mutex);
  }
  const dimmunix::LockId id = MutexLockId(mutex);
  tls_in_hook = true;
  runtime->EndRelease(id);
  tls_in_hook = false;
  const int rc = real_cond_wait(cond, mutex);
  tls_in_hook = true;
  dimmunix::AcquireOp op = runtime->TryBeginAcquire(id, dimmunix::AcquireMode::kExclusive);
  op.Commit();
  tls_in_hook = false;
  return rc;
}

extern "C" int pthread_cond_timedwait(pthread_cond_t* cond, pthread_mutex_t* mutex,
                                      const struct timespec* abstime) {
  if (real_cond_timedwait == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_cond_timedwait(cond, mutex, abstime);
  }
  const dimmunix::LockId id = MutexLockId(mutex);
  tls_in_hook = true;
  runtime->EndRelease(id);
  tls_in_hook = false;
  const int rc = real_cond_timedwait(cond, mutex, abstime);
  tls_in_hook = true;
  // The mutex is re-acquired on success AND on ETIMEDOUT; record the hold
  // unconditionally (harmless no-op rebalance on EINVAL-style failures).
  dimmunix::AcquireOp op = runtime->TryBeginAcquire(id, dimmunix::AcquireMode::kExclusive);
  op.Commit();
  tls_in_hook = false;
  return rc;
}

// --- flock(2) ----------------------------------------------------------------
//
// Whole-file advisory locks: LOCK_EX/LOCK_SH acquire (exclusive/shared) a
// global lock identified by the file's dev:inode; LOCK_UN releases it. A
// conversion (SH -> EX on the same fd) runs the full protocol as an
// upgrade, like an rwlock upgrade.

extern "C" int flock(int fd, int operation) {
  if (real_flock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_flock(fd, operation);
  }
  const int op_kind = operation & (LOCK_SH | LOCK_EX | LOCK_UN);
  const dimmunix::LockId id =
      dimmunix::ipc::GlobalIdForFileLock(fd, dimmunix::ipc::GlobalLockKind::kFlock, 0);
  if (id == dimmunix::kInvalidLockId) {
    return real_flock(fd, operation);  // bad fd: let the real call set errno
  }
  if (op_kind == LOCK_UN) {
    tls_in_hook = true;
    runtime->EndRelease(id);
    tls_in_hook = false;
    return real_flock(fd, operation);
  }
  if (op_kind != LOCK_SH && op_kind != LOCK_EX) {
    return real_flock(fd, operation);
  }
  const dimmunix::AcquireMode mode = op_kind == LOCK_SH ? dimmunix::AcquireMode::kShared
                                                        : dimmunix::AcquireMode::kExclusive;
  // The kernel keeps ONE flock per open file description: re-locking
  // converts (replacing the old lock) rather than stacking. Retire any
  // hold the engine credits us with before the new acquisition, so a
  // single LOCK_UN never leaves a phantom reentrant hold — and restore it
  // if the conversion fails, because a failed conversion keeps the old
  // kernel lock and the engine must not go blind to it.
  tls_in_hook = true;
  const dimmunix::ThreadId self = runtime->RegisterCurrentThread();
  const bool converting = runtime->engine().HoldsLock(self, id);
  const dimmunix::AcquireMode held_mode = runtime->engine().LockOwner(id) == self
                                              ? dimmunix::AcquireMode::kExclusive
                                              : dimmunix::AcquireMode::kShared;
  if (converting) {
    runtime->EndRelease(id);
  }
  tls_in_hook = false;
  const auto restore_hold = [&] {
    if (!converting) {
      return;
    }
    tls_in_hook = true;
    dimmunix::AcquireOp keep = runtime->TryBeginAcquire(id, held_mode);
    keep.Commit();  // legal in any decision state: we factually still hold it
    tls_in_hook = false;
  };
  if ((operation & LOCK_NB) != 0) {
    tls_in_hook = true;
    dimmunix::AcquireOp op = runtime->TryBeginAcquire(id, mode);
    if (!op.Granted()) {
      tls_in_hook = false;
      restore_hold();
      errno = EWOULDBLOCK;  // dangerous pattern: report contention instead
      return -1;
    }
    tls_in_hook = false;
    const int rc = real_flock(fd, operation);
    tls_in_hook = true;
    if (rc == 0) {
      op.Commit();
    } else {
      op.Cancel();
    }
    tls_in_hook = false;
    if (rc != 0) {
      restore_hold();
    }
    return rc;
  }
  tls_in_hook = true;
  dimmunix::AcquireOp op = runtime->BeginAcquire(id, mode);
  tls_in_hook = false;
  const int rc = real_flock(fd, operation);
  tls_in_hook = true;
  if (rc == 0) {
    op.Commit();
  } else {
    op.Cancel();
  }
  tls_in_hook = false;
  if (rc != 0) {
    restore_hold();
  }
  return rc;
}

// --- fcntl(F_SETLK / F_SETLKW) -----------------------------------------------
//
// POSIX record locks: the global identity is dev:inode plus the range
// start. Only the classic per-process commands are instrumented; OFD
// commands (F_OFD_*) pass through — the persistence layer uses them on
// history files, and their orthogonal ownership semantics would double-
// count holds. Other fcntl commands forward their argument untouched.

int FcntlLock(dimmunix::Runtime* runtime, int fd, int cmd, struct flock* fl) {
  const bool blocking = cmd == F_SETLKW;
  const dimmunix::LockId id = dimmunix::ipc::GlobalIdForFileLock(
      fd, dimmunix::ipc::GlobalLockKind::kFcntlRange,
      static_cast<std::uint64_t>(fl->l_start), static_cast<std::uint64_t>(fl->l_len));
  if (id == dimmunix::kInvalidLockId) {
    return real_fcntl(fd, cmd, fl);
  }
  if (fl->l_type == F_UNLCK) {
    tls_in_hook = true;
    runtime->EndRelease(id);
    tls_in_hook = false;
    return real_fcntl(fd, cmd, fl);
  }
  if (fl->l_type != F_RDLCK && fl->l_type != F_WRLCK) {
    return real_fcntl(fd, cmd, fl);
  }
  const dimmunix::AcquireMode mode =
      fl->l_type == F_RDLCK ? dimmunix::AcquireMode::kShared : dimmunix::AcquireMode::kExclusive;
  // POSIX record locks convert in place like flock: re-locking a held
  // range replaces the lock. Retire any standing hold before the new
  // acquisition, and restore it on failure — a failed conversion keeps the
  // original kernel lock.
  tls_in_hook = true;
  const dimmunix::ThreadId self = runtime->RegisterCurrentThread();
  const bool converting = runtime->engine().HoldsLock(self, id);
  const dimmunix::AcquireMode held_mode = runtime->engine().LockOwner(id) == self
                                              ? dimmunix::AcquireMode::kExclusive
                                              : dimmunix::AcquireMode::kShared;
  if (converting) {
    runtime->EndRelease(id);
  }
  dimmunix::AcquireOp op =
      blocking ? runtime->BeginAcquire(id, mode) : runtime->TryBeginAcquire(id, mode);
  const auto restore_hold = [&] {
    if (!converting) {
      return;
    }
    tls_in_hook = true;
    dimmunix::AcquireOp keep = runtime->TryBeginAcquire(id, held_mode);
    keep.Commit();  // we factually still hold the original lock
    tls_in_hook = false;
  };
  if (!blocking && !op.Granted()) {
    tls_in_hook = false;
    restore_hold();
    errno = EAGAIN;  // dangerous pattern: report contention instead
    return -1;
  }
  tls_in_hook = false;
  const int rc = real_fcntl(fd, cmd, fl);
  tls_in_hook = true;
  if (rc == 0) {
    op.Commit();
  } else {
    op.Cancel();
  }
  tls_in_hook = false;
  if (rc != 0) {
    restore_hold();
  }
  return rc;
}

// --- Global-ID cache invalidation ---------------------------------------------
//
// The per-thread global-ID caches (src/ipc/global_id.h) stay correct only
// if mapping churn and fd reuse bump their stamps. These wrappers are the
// bump sites: munmap retires cached address resolutions (the unmapped
// region's pages may be remapped to a different backing object); close,
// dup2/dup3 (which implicitly close-and-reuse their target number in one
// call), and F_DUPFD results (a fresh number that may have last been
// closed through an unwrapped path) retire cached (fd, range) resolutions.
// All run AFTER the real call and cost one atomic bump — nothing here can
// fail or block.

extern "C" int munmap(void* addr, size_t length) {
  if (real_munmap == nullptr) {
    ResolveReal();
  }
  const int rc = real_munmap(addr, length);
  if (rc == 0 && initialized.load(std::memory_order_acquire)) {
    dimmunix::ipc::InvalidateMapsCache();
  }
  return rc;
}

extern "C" int close(int fd) {
  if (real_close == nullptr) {
    ResolveReal();
  }
  const int rc = real_close(fd);
  if (initialized.load(std::memory_order_acquire)) {
    dimmunix::ipc::InvalidateFdCache(fd);  // even on failure: the fd is gone
  }
  return rc;
}

extern "C" int dup2(int oldfd, int newfd) {
  if (real_dup2 == nullptr) {
    ResolveReal();
  }
  const int rc = real_dup2(oldfd, newfd);
  if (rc >= 0 && initialized.load(std::memory_order_acquire)) {
    // newfd now refers to oldfd's file; any cached identity for the old
    // object behind this number is stale (dup2(fd, fd) bumps harmlessly).
    dimmunix::ipc::InvalidateFdCache(newfd);
  }
  return rc;
}

extern "C" int dup3(int oldfd, int newfd, int flags) {
  if (real_dup3 == nullptr) {
    ResolveReal();
  }
  const int rc = real_dup3(oldfd, newfd, flags);
  if (rc >= 0 && initialized.load(std::memory_order_acquire)) {
    dimmunix::ipc::InvalidateFdCache(newfd);
  }
  return rc;
}

namespace {

// F_DUPFD / F_DUPFD_CLOEXEC hand back a fresh descriptor number. If that
// number's last close went through an unwrapped path (raw syscall, closed
// before the shim loaded), a cached identity could still be standing for
// it — bump its generation so the next resolution re-fstats.
void InvalidateIfDupResult(int cmd, int rc) {
  if (rc >= 0 && (cmd == F_DUPFD || cmd == F_DUPFD_CLOEXEC) &&
      initialized.load(std::memory_order_acquire)) {
    dimmunix::ipc::InvalidateFdCache(rc);
  }
}

}  // namespace

extern "C" int fcntl(int fd, int cmd, ...) {
  if (real_fcntl == nullptr) {
    ResolveReal();
  }
  va_list ap;
  va_start(ap, cmd);
  void* arg = va_arg(ap, void*);
  va_end(ap);
  if (cmd == F_SETLK || cmd == F_SETLKW) {
    dimmunix::Runtime* runtime = TryRuntime();
    if (runtime != nullptr && arg != nullptr) {
      return FcntlLock(runtime, fd, cmd, static_cast<struct flock*>(arg));
    }
  }
  const int rc = real_fcntl(fd, cmd, arg);
  InvalidateIfDupResult(cmd, rc);
  return rc;
}

extern "C" int fcntl64(int fd, int cmd, ...) {
  if (real_fcntl == nullptr) {
    ResolveReal();
  }
  va_list ap;
  va_start(ap, cmd);
  void* arg = va_arg(ap, void*);
  va_end(ap);
  if (cmd == F_SETLK || cmd == F_SETLKW) {
    dimmunix::Runtime* runtime = TryRuntime();
    if (runtime != nullptr && arg != nullptr) {
      return FcntlLock(runtime, fd, cmd, static_cast<struct flock*>(arg));
    }
  }
  const int rc = real_fcntl(fd, cmd, arg);
  InvalidateIfDupResult(cmd, rc);
  return rc;
}
