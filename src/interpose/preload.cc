// Copyright (c) dimmunix-cpp authors. MIT license.
//
// LD_PRELOAD pthread interposition — the "modified thread library" form of
// Dimmunix (§6) for unmodified Linux binaries:
//
//   LD_PRELOAD=libdimmunix_preload.so DIMMUNIX_HISTORY=app.hist ./app
//
// pthread_mutex_{lock,trylock,timedlock,unlock} and
// pthread_rwlock_{rdlock,tryrdlock,timedrdlock,wrlock,trywrlock,timedwrlock,
// unlock} are wrapped with the avoidance protocol through the acquisition
// port (src/core/acquire.h): every wrapper is a thin adapter that runs
// Runtime::BeginAcquire / TryBeginAcquire in the right AcquireMode
// (exclusive for mutexes and write locks, shared for read locks), calls the
// real pthread function, and settles the AcquireOp with Commit or Cancel.
// rwlock_unlock releases by lock identity alone — the engine's owner set
// knows which side the thread holds. Call stacks come from backtrace()
// with module-relative offsets, so signatures survive ASLR and re-runs.
// The engine's own internal synchronization (std::mutex, condvars) also
// reaches these symbols, so a thread-local reentrancy guard routes internal
// calls straight to the real implementation.
//
// Unlike the library form (src/sync), a blocked pthread acquisition cannot
// be cancelled — like the paper's NPTL implementation, recovery from an
// actual deadlock is restart-based; the value added is detection +
// signature persistence + avoidance on the next run.
//
// Setting DIMMUNIX_CONTROL=/path.sock additionally opens the control socket
// (src/control): Runtime::Global() is built from Config::FromEnvironment(),
// so a preloaded, unmodified binary can be driven live with `dimctl`
// (status / history / disable-last / reload / ...), which is the only way to
// reach those operations in this deployment mode.

#include <dlfcn.h>
#include <pthread.h>
#include <time.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/core/runtime.h"

namespace {

using MutexFn = int (*)(pthread_mutex_t*);
using MutexTimedFn = int (*)(pthread_mutex_t*, const struct timespec*);
using RwlockFn = int (*)(pthread_rwlock_t*);
using RwlockTimedFn = int (*)(pthread_rwlock_t*, const struct timespec*);

MutexFn real_lock = nullptr;
MutexFn real_trylock = nullptr;
MutexFn real_unlock = nullptr;
MutexTimedFn real_timedlock = nullptr;

RwlockFn real_rdlock = nullptr;
RwlockFn real_tryrdlock = nullptr;
RwlockFn real_wrlock = nullptr;
RwlockFn real_trywrlock = nullptr;
RwlockFn real_rwunlock = nullptr;
RwlockTimedFn real_timedrdlock = nullptr;
RwlockTimedFn real_timedwrlock = nullptr;

std::atomic<bool> initialized{false};
// Set while this thread is inside a wrapper (or inside runtime
// construction): nested pthread_mutex_*/pthread_rwlock_* calls go straight
// through.
thread_local bool tls_in_hook = false;

void ResolveReal() {
  real_lock = reinterpret_cast<MutexFn>(dlsym(RTLD_NEXT, "pthread_mutex_lock"));
  real_trylock = reinterpret_cast<MutexFn>(dlsym(RTLD_NEXT, "pthread_mutex_trylock"));
  real_unlock = reinterpret_cast<MutexFn>(dlsym(RTLD_NEXT, "pthread_mutex_unlock"));
  real_timedlock = reinterpret_cast<MutexTimedFn>(dlsym(RTLD_NEXT, "pthread_mutex_timedlock"));
  real_rdlock = reinterpret_cast<RwlockFn>(dlsym(RTLD_NEXT, "pthread_rwlock_rdlock"));
  real_tryrdlock = reinterpret_cast<RwlockFn>(dlsym(RTLD_NEXT, "pthread_rwlock_tryrdlock"));
  real_wrlock = reinterpret_cast<RwlockFn>(dlsym(RTLD_NEXT, "pthread_rwlock_wrlock"));
  real_trywrlock = reinterpret_cast<RwlockFn>(dlsym(RTLD_NEXT, "pthread_rwlock_trywrlock"));
  real_rwunlock = reinterpret_cast<RwlockFn>(dlsym(RTLD_NEXT, "pthread_rwlock_unlock"));
  real_timedrdlock =
      reinterpret_cast<RwlockTimedFn>(dlsym(RTLD_NEXT, "pthread_rwlock_timedrdlock"));
  real_timedwrlock =
      reinterpret_cast<RwlockTimedFn>(dlsym(RTLD_NEXT, "pthread_rwlock_timedwrlock"));
}

__attribute__((constructor)) void PreloadInit() {
  ResolveReal();
  initialized.store(true, std::memory_order_release);
}

dimmunix::Runtime* TryRuntime() {
  if (!initialized.load(std::memory_order_acquire) || tls_in_hook) {
    return nullptr;
  }
  tls_in_hook = true;
  dimmunix::Runtime* runtime = &dimmunix::Runtime::Global();
  tls_in_hook = false;
  return runtime;
}

// Shared adapter bodies: every wrapper is the same protocol run, modulo the
// real function to call and the acquisition mode.

template <typename Primitive>
int BlockingAcquire(dimmunix::Runtime* runtime, Primitive* primitive,
                    int (*real)(Primitive*), dimmunix::AcquireMode mode) {
  tls_in_hook = true;
  dimmunix::AcquireOp op =
      runtime->BeginAcquire(reinterpret_cast<dimmunix::LockId>(primitive), mode);
  tls_in_hook = false;
  const int rc = real(primitive);
  tls_in_hook = true;
  // A pthread acquisition cannot be cancelled, so the real lock can succeed
  // even after a kBroken grant rollback — Commit records the hold in every
  // decision state, and Cancel is a no-op unless a kGo edge is standing.
  if (rc == 0) {
    op.Commit();
  } else {
    op.Cancel();
  }
  tls_in_hook = false;
  return rc;
}

template <typename Primitive>
int NonblockingAcquire(dimmunix::Runtime* runtime, Primitive* primitive,
                       int (*real)(Primitive*), dimmunix::AcquireMode mode) {
  tls_in_hook = true;
  dimmunix::AcquireOp op =
      runtime->TryBeginAcquire(reinterpret_cast<dimmunix::LockId>(primitive), mode);
  if (!op.Granted()) {
    tls_in_hook = false;
    return EBUSY;  // dangerous pattern: report contention instead
  }
  tls_in_hook = false;
  const int rc = real(primitive);
  tls_in_hook = true;
  if (rc == 0) {
    op.Commit();
  } else {
    op.Cancel();  // §6 cancel event
  }
  tls_in_hook = false;
  return rc;
}

// pthread timed locks take a CLOCK_REALTIME absolute time; the engine's
// yield deadline is monotonic. Convert by remaining duration so an
// avoidance yield cannot outlive the caller's deadline.
dimmunix::MonoTime MonoDeadlineFrom(const struct timespec* abstime) {
  struct timespec now_rt {};
  clock_gettime(CLOCK_REALTIME, &now_rt);
  const auto remaining = std::chrono::seconds(abstime->tv_sec - now_rt.tv_sec) +
                         std::chrono::nanoseconds(abstime->tv_nsec - now_rt.tv_nsec);
  return dimmunix::Now() + std::chrono::duration_cast<dimmunix::Duration>(
                               std::max(remaining, decltype(remaining)::zero()));
}

template <typename Primitive>
int TimedAcquire(dimmunix::Runtime* runtime, Primitive* primitive,
                 int (*real)(Primitive*, const struct timespec*), const struct timespec* abstime,
                 dimmunix::AcquireMode mode) {
  tls_in_hook = true;
  dimmunix::AcquireOp op = runtime->BeginAcquire(reinterpret_cast<dimmunix::LockId>(primitive),
                                                 mode, MonoDeadlineFrom(abstime));
  tls_in_hook = false;
  const int rc = real(primitive, abstime);
  tls_in_hook = true;
  if (rc == 0) {
    op.Commit();  // recorded even after a kBroken rollback (see above)
  } else {
    op.Cancel();  // timeout rollback (§6)
  }
  tls_in_hook = false;
  return rc;
}

template <typename Primitive>
int InstrumentedRelease(dimmunix::Runtime* runtime, Primitive* primitive,
                        int (*real)(Primitive*)) {
  tls_in_hook = true;
  runtime->EndRelease(reinterpret_cast<dimmunix::LockId>(primitive));
  tls_in_hook = false;
  return real(primitive);
}

}  // namespace

// --- pthread_mutex_* ---------------------------------------------------------

extern "C" int pthread_mutex_lock(pthread_mutex_t* mutex) {
  if (real_lock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_lock(mutex);
  }
  return BlockingAcquire(runtime, mutex, real_lock, dimmunix::AcquireMode::kExclusive);
}

extern "C" int pthread_mutex_trylock(pthread_mutex_t* mutex) {
  if (real_trylock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_trylock(mutex);
  }
  return NonblockingAcquire(runtime, mutex, real_trylock, dimmunix::AcquireMode::kExclusive);
}

extern "C" int pthread_mutex_timedlock(pthread_mutex_t* mutex, const struct timespec* abstime) {
  if (real_timedlock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_timedlock(mutex, abstime);
  }
  return TimedAcquire(runtime, mutex, real_timedlock, abstime,
                      dimmunix::AcquireMode::kExclusive);
}

extern "C" int pthread_mutex_unlock(pthread_mutex_t* mutex) {
  if (real_unlock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_unlock(mutex);
  }
  return InstrumentedRelease(runtime, mutex, real_unlock);
}

// --- pthread_rwlock_* --------------------------------------------------------

extern "C" int pthread_rwlock_rdlock(pthread_rwlock_t* rwlock) {
  if (real_rdlock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_rdlock(rwlock);
  }
  return BlockingAcquire(runtime, rwlock, real_rdlock, dimmunix::AcquireMode::kShared);
}

extern "C" int pthread_rwlock_tryrdlock(pthread_rwlock_t* rwlock) {
  if (real_tryrdlock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_tryrdlock(rwlock);
  }
  return NonblockingAcquire(runtime, rwlock, real_tryrdlock, dimmunix::AcquireMode::kShared);
}

extern "C" int pthread_rwlock_timedrdlock(pthread_rwlock_t* rwlock,
                                          const struct timespec* abstime) {
  if (real_timedrdlock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_timedrdlock(rwlock, abstime);
  }
  return TimedAcquire(runtime, rwlock, real_timedrdlock, abstime,
                      dimmunix::AcquireMode::kShared);
}

extern "C" int pthread_rwlock_wrlock(pthread_rwlock_t* rwlock) {
  if (real_wrlock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_wrlock(rwlock);
  }
  return BlockingAcquire(runtime, rwlock, real_wrlock, dimmunix::AcquireMode::kExclusive);
}

extern "C" int pthread_rwlock_trywrlock(pthread_rwlock_t* rwlock) {
  if (real_trywrlock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_trywrlock(rwlock);
  }
  return NonblockingAcquire(runtime, rwlock, real_trywrlock, dimmunix::AcquireMode::kExclusive);
}

extern "C" int pthread_rwlock_timedwrlock(pthread_rwlock_t* rwlock,
                                          const struct timespec* abstime) {
  if (real_timedwrlock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_timedwrlock(rwlock, abstime);
  }
  return TimedAcquire(runtime, rwlock, real_timedwrlock, abstime,
                      dimmunix::AcquireMode::kExclusive);
}

extern "C" int pthread_rwlock_unlock(pthread_rwlock_t* rwlock) {
  if (real_rwunlock == nullptr) {
    ResolveReal();
  }
  dimmunix::Runtime* runtime = TryRuntime();
  if (runtime == nullptr) {
    return real_rwunlock(rwlock);
  }
  return InstrumentedRelease(runtime, rwlock, real_rwunlock);
}
