// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/rag/rag.h"

#include <algorithm>
#include <deque>

#include "src/core/global_port.h"

namespace dimmunix {

void Rag::Apply(const Event& event) {
  switch (event.type) {
    case EventType::kRequest: {
      ThreadNode& t = Thread(event.thread);
      t.wait = ThreadNode::Wait::kRequest;
      t.wait_lock = event.lock;
      t.wait_stack = event.stack;
      t.wait_mode = event.mode;
      touched_waiters_.insert(event.thread);
      break;
    }
    case EventType::kAllow: {
      ThreadNode& t = Thread(event.thread);
      t.wait = ThreadNode::Wait::kAllow;
      t.wait_lock = event.lock;
      t.wait_stack = event.stack;
      t.wait_mode = event.mode;
      // A GO decision retires any yield edges the thread still had (§5.4).
      if (!t.yields.empty()) {
        t.yields.clear();
      }
      touched_waiters_.insert(event.thread);
      break;
    }
    case EventType::kAcquired: {
      ThreadNode& t = Thread(event.thread);
      t.wait = ThreadNode::Wait::kNone;
      t.wait_lock = kInvalidLockId;
      LockNode& l = Lock(event.lock);
      if (LockNode::Holder* holder = l.HolderFor(event.thread); holder != nullptr) {
        ++holder->count;  // reentrant re-acquisition
        if (event.mode == AcquireMode::kExclusive) {
          l.mode = AcquireMode::kExclusive;  // committed upgrade promotes the hold
        }
      } else if (l.holders.empty()) {
        l.mode = event.mode;
        l.holders.assign(1, LockNode::Holder{event.thread, event.stack, 1});
        t.held.push_back(event.lock);
      } else if (event.mode == AcquireMode::kExclusive) {
        // An exclusive grant while another holder is still recorded: the
        // prior holder's release is in flight (staged events may drain one
        // tick late), so ADD rather than displace — displacing would erase
        // the live hold if THIS event is the late one. The duplicate
        // resolves when the in-flight release drains; it can never close a
        // false cycle because the stale holder's wait edges sort after its
        // release in emission order.
        l.mode = AcquireMode::kExclusive;
        l.holders.push_back(LockNode::Holder{event.thread, event.stack, 1});
        t.held.push_back(event.lock);
      } else {
        // Additional shared holder.
        l.mode = AcquireMode::kShared;
        l.holders.push_back(LockNode::Holder{event.thread, event.stack, 1});
        t.held.push_back(event.lock);
      }
      break;
    }
    case EventType::kRelease: {
      auto lock_it = locks_.find(event.lock);
      if (lock_it == locks_.end()) {
        break;
      }
      LockNode& l = lock_it->second;
      LockNode::Holder* holder = l.HolderFor(event.thread);
      if (holder == nullptr) {
        break;  // stale event (e.g. release drained after a restart)
      }
      if (--holder->count <= 0) {
        auto thread_it = threads_.find(event.thread);
        if (thread_it != threads_.end()) {
          auto& held = thread_it->second.held;
          held.erase(std::remove(held.begin(), held.end(), event.lock), held.end());
        }
        l.holders.erase(l.holders.begin() + (holder - l.holders.data()));
      }
      break;
    }
    case EventType::kYield: {
      ThreadNode& t = Thread(event.thread);
      // The tentative allow edge is flipped back into a request edge (§5.4).
      t.wait = ThreadNode::Wait::kRequest;
      t.wait_lock = event.lock;
      t.wait_stack = event.stack;
      t.wait_mode = event.mode;
      t.yields = event.causes;
      t.in_reported_starvation = false;
      touched_yielders_.insert(event.thread);
      // A new yield can complete a cycle through *other* threads' yields too.
      for (const YieldCause& cause : event.causes) {
        touched_yielders_.insert(cause.thread);
      }
      break;
    }
    case EventType::kWake: {
      ThreadNode& t = Thread(event.thread);
      t.yields.clear();
      t.in_reported_starvation = false;
      break;
    }
    case EventType::kCancel: {
      ThreadNode& t = Thread(event.thread);
      t.wait = ThreadNode::Wait::kNone;
      t.wait_lock = kInvalidLockId;
      t.yields.clear();
      t.in_reported_deadlock = false;
      t.in_reported_starvation = false;
      break;
    }
    case EventType::kThreadExit: {
      auto it = threads_.find(event.thread);
      if (it != threads_.end()) {
        for (LockId lock : it->second.held) {
          auto lock_it = locks_.find(lock);
          if (lock_it == locks_.end()) {
            continue;
          }
          auto& holders = lock_it->second.holders;
          holders.erase(std::remove_if(holders.begin(), holders.end(),
                                       [&](const LockNode::Holder& h) {
                                         return h.thread == event.thread;
                                       }),
                        holders.end());
        }
        threads_.erase(it);
      }
      break;
    }
    case EventType::kAvoided:
      break;  // consumed by the calibrator, not the graph
  }
}

void Rag::AppendWaitSuccessors(ThreadId thread, std::vector<ThreadId>* out) const {
  auto it = threads_.find(thread);
  if (it == threads_.end() || it->second.wait == ThreadNode::Wait::kNone) {
    return;
  }
  auto lock_it = locks_.find(it->second.wait_lock);
  if (lock_it == locks_.end()) {
    return;
  }
  const LockNode& l = lock_it->second;
  if (l.holders.empty()) {
    return;
  }
  // Shared request vs shared holders: no conflict, no edges — reader-reader
  // can never close a cycle. A shared request still conflicts with an
  // exclusive holder, and an exclusive request with every holder.
  if (it->second.wait_mode == AcquireMode::kShared && l.mode == AcquireMode::kShared) {
    return;
  }
  for (const LockNode::Holder& holder : l.holders) {
    if (holder.thread != thread) {  // self-hold (upgrade) is not a cycle edge
      out->push_back(holder.thread);
    }
  }
}

std::vector<DeadlockCycle> Rag::DetectDeadlocks() {
  std::vector<DeadlockCycle> result;
  // Colored DFS over the wait-for projection (thread -> conflicting holders
  // of the waited lock). Shared locks have several holders, so nodes can
  // have out-degree > 1; gray nodes are the current DFS path, black nodes
  // are exhausted across all starts in this batch.
  std::unordered_set<ThreadId> black;
  for (ThreadId start : touched_waiters_) {
    if (black.count(start) > 0) {
      continue;
    }
    struct Frame {
      ThreadId thread;
      std::vector<ThreadId> succs;
      std::size_t next = 0;
    };
    std::vector<Frame> path;
    std::unordered_map<ThreadId, std::size_t> gray;  // thread -> index in path

    auto push = [&](ThreadId tid) {
      Frame frame;
      frame.thread = tid;
      AppendWaitSuccessors(tid, &frame.succs);
      gray.emplace(tid, path.size());
      path.push_back(std::move(frame));
    };
    push(start);
    while (!path.empty()) {
      Frame& top = path.back();
      if (top.next >= top.succs.size()) {
        gray.erase(top.thread);
        black.insert(top.thread);
        path.pop_back();
        continue;
      }
      const ThreadId succ = top.succs[top.next++];
      if (black.count(succ) > 0) {
        continue;
      }
      auto seen = gray.find(succ);
      if (seen == gray.end()) {
        push(succ);
        continue;
      }
      // Cycle: path[seen->second..end].
      DeadlockCycle cycle;
      bool already_reported = true;
      for (std::size_t i = seen->second; i < path.size(); ++i) {
        const ThreadId tid = path[i].thread;
        const ThreadNode& node = threads_.at(tid);
        cycle.threads.push_back(tid);
        cycle.locks.push_back(node.wait_lock);
        already_reported = already_reported && node.in_reported_deadlock;
      }
      // Hold-edge labels: the stack with which each waited lock was
      // acquired by the holder that is the next thread on the cycle (a
      // shared lock can have holders outside the cycle).
      for (std::size_t i = 0; i < cycle.threads.size(); ++i) {
        const ThreadId next_thread = cycle.threads[(i + 1) % cycle.threads.size()];
        const LockNode& l = locks_.at(cycle.locks[i]);
        const LockNode::Holder* holder = l.HolderFor(next_thread);
        cycle.stacks.push_back(holder != nullptr ? holder->stack
                                                 : (l.holders.empty() ? kInvalidStackId
                                                                      : l.holders.front().stack));
      }
      if (!already_reported) {
        for (ThreadId tid : cycle.threads) {
          threads_.at(tid).in_reported_deadlock = true;
        }
        result.push_back(std::move(cycle));
      }
      // Keep exploring the remaining successors: a lock with several shared
      // holders can close more than one distinct cycle in the same batch
      // (the reported-flag dedup keeps each formation to one report).
    }
  }
  touched_waiters_.clear();
  return result;
}

void Rag::AppendSuccessors(ThreadId thread, std::vector<ThreadId>* out) const {
  auto it = threads_.find(thread);
  if (it == threads_.end()) {
    return;
  }
  for (const YieldCause& cause : it->second.yields) {
    out->push_back(cause.thread);
  }
  AppendWaitSuccessors(thread, out);
}

void Rag::BuildPredecessors(std::unordered_map<ThreadId, std::vector<ThreadId>>* preds) const {
  for (const auto& [tid, node] : threads_) {
    std::vector<ThreadId> succs;
    AppendSuccessors(tid, &succs);
    for (ThreadId s : succs) {
      (*preds)[s].push_back(tid);
    }
  }
}

std::vector<StarvationCycle> Rag::DetectStarvations() {
  std::vector<StarvationCycle> result;
  if (touched_yielders_.empty()) {
    return result;
  }
  std::unordered_map<ThreadId, std::vector<ThreadId>> preds;
  bool preds_built = false;

  for (ThreadId start : touched_yielders_) {
    auto it = threads_.find(start);
    if (it == threads_.end() || it->second.yields.empty() ||
        it->second.in_reported_starvation) {
      continue;
    }
    // R = nodes reachable from `start` beginning with its yield edges.
    std::vector<ThreadId> frontier;
    for (const YieldCause& cause : it->second.yields) {
      frontier.push_back(cause.thread);
    }
    std::unordered_set<ThreadId> reached;
    while (!frontier.empty()) {
      ThreadId t = frontier.back();
      frontier.pop_back();
      if (t == kInvalidThreadId || !reached.insert(t).second) {
        continue;
      }
      AppendSuccessors(t, &frontier);
    }
    if (reached.empty()) {
      continue;
    }
    // Back-reachability: which nodes can reach `start`?
    if (!preds_built) {
      BuildPredecessors(&preds);
      preds_built = true;
    }
    std::unordered_set<ThreadId> reaches_start;
    std::vector<ThreadId> rev{start};
    while (!rev.empty()) {
      ThreadId t = rev.back();
      rev.pop_back();
      auto pit = preds.find(t);
      if (pit == preds.end()) {
        continue;
      }
      for (ThreadId p : pit->second) {
        if (reaches_start.insert(p).second) {
          rev.push_back(p);
        }
      }
    }
    bool starved = true;
    for (ThreadId t : reached) {
      if (t != start && reaches_start.find(t) == reaches_start.end()) {
        starved = false;
        break;
      }
    }
    if (!starved) {
      continue;
    }
    // Build the report over the entanglement R ∪ {start}.
    StarvationCycle cycle;
    cycle.starved = start;
    reached.insert(start);
    int best_held = -1;
    for (ThreadId t : reached) {
      auto node_it = threads_.find(t);
      if (node_it == threads_.end()) {
        continue;
      }
      const ThreadNode& node = node_it->second;
      cycle.threads.push_back(t);
      node_it->second.in_reported_starvation = true;
      // Yield-edge labels inside the entanglement.
      for (const YieldCause& cause : node.yields) {
        if (reached.count(cause.thread) > 0) {
          cycle.stacks.push_back(cause.stack);
        }
      }
      // Hold-edge labels of locks held by entangled threads.
      for (LockId lock : node.held) {
        auto lock_it = locks_.find(lock);
        if (lock_it == locks_.end()) {
          continue;
        }
        if (const LockNode::Holder* holder = lock_it->second.HolderFor(t); holder != nullptr) {
          cycle.stacks.push_back(holder->stack);
        }
      }
      // Victim choice (§3): among *yielding* threads, the one holding the
      // most locks is released to pursue its most recent request.
      if (!node.yields.empty() && static_cast<int>(node.held.size()) > best_held) {
        best_held = static_cast<int>(node.held.size());
        cycle.break_victim = t;
      }
    }
    std::sort(cycle.stacks.begin(), cycle.stacks.end());
    result.push_back(std::move(cycle));
  }
  touched_yielders_.clear();
  return result;
}

bool Rag::HasWaitEdge(ThreadId thread) const {
  auto it = threads_.find(thread);
  return it != threads_.end() && it->second.wait != ThreadNode::Wait::kNone;
}

bool Rag::HoldsAnyLock(ThreadId thread) const { return HeldLockCount(thread) > 0; }

int Rag::HeldLockCount(ThreadId thread) const {
  auto it = threads_.find(thread);
  return it == threads_.end() ? 0 : static_cast<int>(it->second.held.size());
}

std::vector<LockId> Rag::HeldLocks(ThreadId thread) const {
  auto it = threads_.find(thread);
  return it == threads_.end() ? std::vector<LockId>{} : it->second.held;
}

std::size_t Rag::yield_edge_count() const {
  std::size_t n = 0;
  for (const auto& [tid, node] : threads_) {
    n += node.yields.size();
  }
  return n;
}

RagSnapshot Rag::Snapshot() const {
  RagSnapshot snap;
  snap.lock_count = locks_.size();
  snap.threads.reserve(threads_.size());
  for (const auto& [tid, node] : threads_) {
    RagThreadInfo info;
    info.id = tid;
    info.foreign = IsForeignThreadId(tid);
    info.waiting = node.wait != ThreadNode::Wait::kNone;
    info.wait_lock = info.waiting ? node.wait_lock : kInvalidLockId;
    info.wait_mode = node.wait_mode;
    for (LockId lock : node.held) {
      auto lock_it = locks_.find(lock);
      const AcquireMode mode =
          lock_it != locks_.end() ? lock_it->second.mode : AcquireMode::kExclusive;
      info.held.push_back(RagThreadInfo::HeldLock{lock, mode});
    }
    info.yield_edges = node.yields.size();
    snap.yield_edge_count += info.yield_edges;
    snap.threads.push_back(std::move(info));
  }
  std::sort(snap.threads.begin(), snap.threads.end(),
            [](const RagThreadInfo& a, const RagThreadInfo& b) { return a.id < b.id; });
  return snap;
}

}  // namespace dimmunix
