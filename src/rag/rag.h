// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Resource Allocation Graph (§5.1) — the monitor thread's authoritative view
// of the program's synchronization state, built lazily from the event queue.
//
// Vertices are threads T and locks L. Edges:
//   request: T -> L   thread wants L (pre-decision), in a mode (X or S)
//   allow:   T -> L   thread was allowed to block waiting for L
//   hold:    L -> T   T holds L; labeled with T's call stack at acquisition
//                     and the hold mode — one exclusive holder XOR n shared
//                     holders per lock
//   yield:   T -> T'  T was paused because of a lock T' acquired/waits for;
//                     labeled with the stack of the cause
//
// The RAG is a multiset of edges to support reentrant locks: a hold carries
// a count and becomes available only after as many releases as acquisitions.
//
// Detection (§5.2):
//  * deadlock  — a cycle made up exclusively of hold/allow/request edges.
//    The thread-level wait-for projection follows a waiter to every
//    *conflicting* holder of its waited lock: an exclusive request
//    conflicts with every holder, a shared request only with an exclusive
//    holder — shared-shared edges do not exist, so reader-reader is never
//    a false cycle. A shared lock can have several holders, so the
//    projection is a general digraph and cycles are found with a colored
//    DFS, restricted to threads touched by the latest event batch ("there
//    cannot be new cycles formed that involve exclusively old edges").
//  * induced starvation — a yield cycle: thread T is starved iff every node
//    reachable from T through T's yield edges (following any edge type
//    transitively) can in turn reach T. This reproduces the Figure 3
//    semantics: if some thread in the entanglement has an escape path that
//    does not lead back to T, nobody is starved yet.
//
// This class is single-threaded by design (only the monitor touches it); the
// avoidance-side "RAG cache" lives in src/core/avoidance.h.

#ifndef DIMMUNIX_RAG_RAG_H_
#define DIMMUNIX_RAG_RAG_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/event/event.h"
#include "src/stack/stack_table.h"

namespace dimmunix {

// A detected deadlock cycle, ready for signature extraction: the threads and
// locks on the cycle plus the stack labels of the hold edges (§5.3: "the
// signature of a cycle is a multiset containing the call stack labels of all
// hold edges and yield edges in that cycle").
struct DeadlockCycle {
  std::vector<ThreadId> threads;
  std::vector<LockId> locks;
  std::vector<StackId> stacks;  // hold-edge labels, one per lock on the cycle
};

// Per-thread slice of a RAG snapshot (control plane `rag` command).
struct RagThreadInfo {
  struct HeldLock {
    LockId lock = kInvalidLockId;
    AcquireMode mode = AcquireMode::kExclusive;
  };

  ThreadId id = kInvalidThreadId;
  bool waiting = false;            // has a request/allow edge out
  // True for threads mirrored from another process by the IPC bridge
  // (synthetic ids at kForeignThreadBase+): their edges are real, but they
  // cannot be parked, broken, or canceled from this process.
  bool foreign = false;
  LockId wait_lock = kInvalidLockId;
  AcquireMode wait_mode = AcquireMode::kExclusive;
  std::vector<HeldLock> held;      // locks currently held, with hold mode
  std::size_t yield_edges = 0;     // yield edges out of this thread
};

// A point-in-time copy of the graph's observable state, detached from the
// monitor thread so it can be formatted and shipped over the control socket.
struct RagSnapshot {
  std::vector<RagThreadInfo> threads;
  std::size_t lock_count = 0;
  std::size_t yield_edge_count = 0;
};

// A detected induced-starvation condition (yield cycle).
struct StarvationCycle {
  ThreadId starved = kInvalidThreadId;   // the thread whose yields are all trapped
  std::vector<ThreadId> threads;         // every thread in the entanglement
  std::vector<StackId> stacks;           // hold + yield edge labels in the subgraph
  // The thread inside the entanglement holding the most locks — the victim
  // §3 releases to break the starvation.
  ThreadId break_victim = kInvalidThreadId;
};

class Rag {
 public:
  Rag() = default;

  // Applies one drained event to the graph and remembers the touched thread
  // for incremental detection.
  void Apply(const Event& event);

  // Deadlock cycles formed by edges added since the previous call. Each
  // cycle is reported once (its threads are flagged; the flag clears when a
  // wait edge of the cycle is removed, e.g. after recovery).
  std::vector<DeadlockCycle> DetectDeadlocks();

  // Starvation conditions involving threads whose yield edges changed since
  // the previous call. Reported once per formation, like deadlocks.
  std::vector<StarvationCycle> DetectStarvations();

  // --- Introspection (tests, stats) ---------------------------------------
  bool HasWaitEdge(ThreadId thread) const;
  bool HoldsAnyLock(ThreadId thread) const;
  int HeldLockCount(ThreadId thread) const;
  std::vector<LockId> HeldLocks(ThreadId thread) const;
  std::size_t thread_count() const { return threads_.size(); }
  std::size_t lock_count() const { return locks_.size(); }
  std::size_t yield_edge_count() const;

  // Detached copy of the observable state; must be called from the monitor
  // thread (or with the monitor quiescent) like every other accessor here —
  // Monitor::SnapshotRag() provides the serialized entry point.
  RagSnapshot Snapshot() const;

 private:
  struct ThreadNode {
    // Wait edge (at most one): kNone when not waiting.
    enum class Wait : std::uint8_t { kNone, kRequest, kAllow } wait = Wait::kNone;
    LockId wait_lock = kInvalidLockId;
    StackId wait_stack = kInvalidStackId;
    AcquireMode wait_mode = AcquireMode::kExclusive;
    std::vector<YieldCause> yields;  // yield edges out of this thread
    std::vector<LockId> held;        // locks currently held (for victim choice)
    bool in_reported_deadlock = false;
    bool in_reported_starvation = false;
  };

  struct LockNode {
    struct Holder {
      ThreadId thread = kInvalidThreadId;
      StackId stack = kInvalidStackId;
      int count = 0;  // reentrant acquisitions outstanding
    };
    AcquireMode mode = AcquireMode::kExclusive;  // meaningful while held
    std::vector<Holder> holders;  // one exclusive XOR n shared

    Holder* HolderFor(ThreadId thread) {
      for (Holder& h : holders) {
        if (h.thread == thread) {
          return &h;
        }
      }
      return nullptr;
    }
    const Holder* HolderFor(ThreadId thread) const {
      return const_cast<LockNode*>(this)->HolderFor(thread);
    }
  };

  ThreadNode& Thread(ThreadId id) { return threads_[id]; }
  LockNode& Lock(LockId id) { return locks_[id]; }

  // Appends every *conflicting* holder of T's waited lock (self excluded):
  // exclusive requests conflict with every holder, shared requests only
  // with an exclusive holder.
  void AppendWaitSuccessors(ThreadId thread, std::vector<ThreadId>* out) const;

  // All successor *thread* nodes of `thread` following yield edges plus the
  // wait edges (through the lock to its conflicting holders). Used by
  // starvation search.
  void AppendSuccessors(ThreadId thread, std::vector<ThreadId>* out) const;
  // Predecessor relation of the same projection.
  void BuildPredecessors(std::unordered_map<ThreadId, std::vector<ThreadId>>* preds) const;

  std::unordered_map<ThreadId, ThreadNode> threads_;
  std::unordered_map<LockId, LockNode> locks_;
  std::unordered_set<ThreadId> touched_waiters_;
  std::unordered_set<ThreadId> touched_yielders_;
};

}  // namespace dimmunix

#endif  // DIMMUNIX_RAG_RAG_H_
