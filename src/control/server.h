// Copyright (c) dimmunix-cpp authors. MIT license.
//
// The control server: a UNIX-domain stream socket plus one background accept
// thread, turning the in-process operator methods on Runtime (§5.7 disable
// workflow, §8 history hot-reload) into operations reachable from outside
// the process — essential in the LD_PRELOAD deployment mode, where no
// application code can call into Dimmunix.
//
// Connection model: one command per connection. The client sends a single
// request line (see src/control/protocol.h), the server replies and closes.
// The accept loop multiplexes the listening socket against an internal stop
// pipe with poll(2), so Stop() never races a blocking accept.
//
// Lifecycle is owned by Runtime: the server starts when
// Config::control_socket_path is set (env: DIMMUNIX_CONTROL) and stops —
// removing the socket file — before the monitor shuts down.

#ifndef DIMMUNIX_CONTROL_SERVER_H_
#define DIMMUNIX_CONTROL_SERVER_H_

#include <atomic>
#include <string>
#include <thread>

namespace dimmunix {

class Runtime;

namespace control {

class ControlServer {
 public:
  // `runtime` must outlive the server.
  ControlServer(Runtime* runtime, std::string socket_path);
  ~ControlServer();

  ControlServer(const ControlServer&) = delete;
  ControlServer& operator=(const ControlServer&) = delete;

  // Binds + listens on the socket path (an existing stale socket file is
  // replaced) and starts the accept thread. Returns false — with a warning
  // logged — if the socket cannot be created; the runtime stays fully
  // functional without its control plane.
  bool Start();

  // Stops the accept thread and unlinks the socket file. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  const std::string& socket_path() const { return socket_path_; }

 private:
  void Loop();
  void ServeConnection(int fd);

  Runtime* runtime_;
  const std::string socket_path_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace control
}  // namespace dimmunix

#endif  // DIMMUNIX_CONTROL_SERVER_H_
