// Copyright (c) dimmunix-cpp authors. MIT license.
//
// Control-plane protocol: the line-oriented request/response language spoken
// over the UNIX-domain control socket (src/control/server.h) and by the
// `dimctl` CLI (tools/dimctl.cc).
//
// A request is a single text line: a command name plus space-separated
// arguments. The reply is one or more lines; the first is either "ok" or
// "err <reason>", payload lines follow as "key=value" pairs (or one record
// per line for listing commands), and the server closes the connection after
// the reply — one command per connection.
//
// Commands (§5.7 pop-up-blocker workflow, §8 upgrade workflow):
//   status                  one-screen summary of the runtime
//   stats                   every engine + monitor counter
//   history                 one line per signature (kind/depth/disabled/...)
//   disable <idx>           disable signature <idx> (never avoided again)
//   enable <idx>            re-enable signature <idx>
//   disable-last            disable the most recently avoided signature
//   history save            synchronously compact the history to disk
//   history merge <file>    merge signatures from <file> into the live
//                           history (vendor-shipped patches, §8); paths may
//                           not contain whitespace (line protocol)
//   history export <file>   write the current history to <file> (format v2)
//   reload                  hot-reload the history file (§8)
//   set-depth <idx> <d>     override signature <idx>'s matching depth
//   rag                     monitor-side thread/lock/yield-edge snapshot;
//                           wait/hold modes are tagged X (exclusive) or
//                           S (shared), e.g. "held_locks=140…:S"
//   ipc                     cross-process arena status: participant slots
//                           (pid/generation/liveness/edge counts), mirror
//                           statistics
//   config                  effective configuration
//   trace start             arm the flight-recorder rings
//   trace stop              disarm the rings (contents are kept)
//   trace dump              Chrome trace_event JSON of every ring (load the
//                           payload in Perfetto / chrome://tracing)
//   metrics                 every counter + latency histogram, Prometheus
//                           text exposition format
//   histo <name>            percentile readout of one latency histogram
//                           (acquire_latency_ns | yield_duration_ns |
//                           epoch_hold_ns)
//   alerts                  health-rules engine state: one line per rule
//                           (state/value/threshold/fired count)
//   incidents               list captured incident bundles (newest last)
//   incidents show <n>      payload of the n-th listed bundle, verbatim JSON
//   fleet status            summary of the attached dimmunixd daemon
//   fleet peers             per-peer gossip statistics
//   fleet push <addr>       sync with <addr> now, sending our records only
//   fleet pull <addr>       sync with <addr> now, merging its records only
//   fleet exec <cmd...>     run <cmd> on the daemon and every peer, replies
//                           prefixed per host
//   fleet alerts            fleet-wide health: one line per reporting host
//                           (which host is churning, and on which rules)
//   help                    list commands
//
// `fleet alerts-report <record>` is the machine half of `fleet alerts`:
// runtimes push their alert summaries to the attached daemon with it. It is
// parsed here (so the daemon reuses this parser) but not listed in help —
// operators read, runtimes write.
//
// The `fleet` verbs are executed by a dimmunixd daemon (src/fleet/daemon.h).
// When a runtime receives one over its UDS control socket, it proxies the
// line to the daemon named by Config::fleet_daemon (DIMMUNIX_FLEET) over TCP
// and relays the reply — `dimctl fleet status` works against an application
// process and against a daemon alike.
//
// `status` additionally reports HistoryStore health when a history file is
// configured: queued deltas, journal records since the last compaction, and
// the age of the last shared-file resync.
//
// This layer is deliberately socket-free: parsing, execution against a
// Runtime, and formatting are pure functions, unit-tested without any I/O.

#ifndef DIMMUNIX_CONTROL_PROTOCOL_H_
#define DIMMUNIX_CONTROL_PROTOCOL_H_

#include <optional>
#include <string>
#include <string_view>

namespace dimmunix {

class Runtime;

namespace control {

enum class CommandKind {
  kStatus,
  kStats,
  kHistory,
  kHistorySave,
  kHistoryMerge,
  kHistoryExport,
  kDisable,
  kEnable,
  kDisableLast,
  kReload,
  kSetDepth,
  kRag,
  kConfig,
  kIpc,
  kTraceStart,
  kTraceStop,
  kTraceDump,
  kMetrics,
  kHisto,
  kAlerts,
  kIncidents,
  kFleetStatus,
  kFleetPeers,
  kFleetPush,
  kFleetPull,
  kFleetExec,
  kFleetAlerts,
  kFleetAlertsReport,
  kHelp,
};

struct Request {
  CommandKind kind = CommandKind::kStatus;
  int index = -1;    // disable / enable / set-depth; incidents show <n>
  int depth = -1;    // set-depth
  std::string path;  // history merge / history export; histogram name (histo);
                     // peer address (fleet push / fleet pull)
  std::string rest;  // fleet exec: the command to fan out, verbatim;
                     // fleet alerts-report: the alert record(s)
};

// Parses one request line (trailing "\r\n" tolerated). On failure returns
// nullopt and, when `error` is non-null, stores a human-readable reason.
std::optional<Request> ParseRequest(std::string_view line, std::string* error);

// Executes `request` against `runtime` and returns the complete reply text
// (newline-terminated). Signature indices are bounds-checked here; an
// out-of-range index yields an "err" reply, never undefined behavior.
std::string ExecuteRequest(Runtime& runtime, const Request& request);

// Convenience: parse + execute, turning parse errors into "err ..." replies.
std::string HandleLine(Runtime& runtime, std::string_view line);

// The "help" payload (also the command list asserted by unit tests).
std::string HelpText();

}  // namespace control
}  // namespace dimmunix

#endif  // DIMMUNIX_CONTROL_PROTOCOL_H_
