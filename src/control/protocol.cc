// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/control/protocol.h"

#include <unistd.h>

#include <charconv>
#include <chrono>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/core/runtime.h"
#include "src/fleet/net.h"
#include "src/obs/export.h"
#include "src/obs/health.h"
#include "src/obs/incident.h"

namespace dimmunix {
namespace control {
namespace {

std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) {
      ++i;
    }
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') {
      ++i;
    }
    if (i > start) {
      tokens.push_back(line.substr(start, i - start));
    }
  }
  return tokens;
}

bool ParseInt(std::string_view token, int* out) {
  int value = 0;
  const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return false;
  }
  *out = value;
  return true;
}

bool SetError(std::string* error, std::string message) {
  if (error != nullptr) {
    *error = std::move(message);
  }
  return false;
}

std::string Err(const std::string& reason) { return "err " + reason + "\n"; }

const char* KindName(SignatureKind kind) {
  return kind == SignatureKind::kDeadlock ? "deadlock" : "starvation";
}

const char* ImmunityName(ImmunityMode mode) {
  return mode == ImmunityMode::kStrong ? "strong" : "weak";
}

// First "key=value" line of a daemon reply, or "" — used to condense a
// `fleet status` reply into the one-line summary `status` carries.
std::string ReplyValue(const std::string& reply, const std::string& key) {
  const std::string needle = key + "=";
  std::size_t pos = 0;
  while (pos < reply.size()) {
    std::size_t end = reply.find('\n', pos);
    if (end == std::string::npos) {
      end = reply.size();
    }
    if (reply.compare(pos, needle.size(), needle) == 0) {
      return reply.substr(pos + needle.size(), end - pos - needle.size());
    }
    pos = end + 1;
  }
  return {};
}

// The daemon-bound line for a fleet request (the runtime proxies it verbatim).
std::string FleetLineFor(const Request& request) {
  switch (request.kind) {
    case CommandKind::kFleetStatus:
      return "fleet status";
    case CommandKind::kFleetPeers:
      return "fleet peers";
    case CommandKind::kFleetPush:
      return "fleet push " + request.path;
    case CommandKind::kFleetPull:
      return "fleet pull " + request.path;
    case CommandKind::kFleetExec:
      return "fleet exec " + request.rest;
    case CommandKind::kFleetAlerts:
      return "fleet alerts";
    case CommandKind::kFleetAlertsReport:
      return "fleet alerts-report " + request.rest;
    default:
      return {};
  }
}

std::string DoFleetProxy(Runtime& rt, const Request& request) {
  const std::string& daemon = rt.config().fleet_daemon;
  if (daemon.empty()) {
    return Err("no fleet daemon attached (set DIMMUNIX_FLEET=host:port)");
  }
  std::string reply;
  std::string error;
  if (!fleet::QueryTcp(daemon, FleetLineFor(request), std::chrono::seconds(5), &reply, &error)) {
    return Err("fleet daemon " + daemon + " unreachable: " + error);
  }
  return reply;
}

const char* StageName(EngineStage stage) {
  switch (stage) {
    case EngineStage::kInstrumentationOnly:
      return "instr";
    case EngineStage::kDataStructures:
      return "data";
    case EngineStage::kFull:
      return "full";
  }
  return "full";
}

std::string DoStatus(Runtime& rt) {
  const EngineStatsSnapshot engine = rt.engine().stats().Snapshot();
  const MonitorStatsSnapshot monitor = rt.monitor().stats().Snapshot();
  std::size_t disabled = 0;
  rt.history().ForEach([&](int, const Signature& s) { disabled += s.disabled ? 1 : 0; });
  std::ostringstream out;
  out << "ok\n";
  out << "pid=" << ::getpid() << "\n";
  out << "enabled=" << (rt.config().enabled ? 1 : 0) << "\n";
  out << "immunity=" << ImmunityName(rt.config().immunity) << "\n";
  out << "stage=" << StageName(rt.config().stage) << "\n";
  out << "history_path=" << rt.config().history_path << "\n";
  out << "signatures=" << rt.history().size() << "\n";
  out << "signatures_disabled=" << disabled << "\n";
  out << "last_avoided=" << rt.engine().last_avoided_signature() << "\n";
  out << "avoidance_yields=" << engine.yields << "\n";
  out << "lock_requests=" << engine.requests << "\n";
  out << "monitor_batches=" << monitor.batches << "\n";
  out << "deadlocks_detected=" << monitor.deadlocks_detected << "\n";
  out << "starvations_detected=" << monitor.starvations_detected << "\n";
  // Stop-the-stripes accounting: with the incremental matcher the epoch is
  // the rare slow path, so epoch_entries staying near zero under load is
  // itself the tail-health signal; match_* show how cover searches routed.
  out << "epoch_entries=" << engine.epoch_entries << "\n";
  out << "epoch_stall_ns=" << engine.epoch_stall_ns << "\n";
  out << "epoch_hold_ns=" << engine.epoch_hold_ns << "\n";
  out << "match_fast_path=" << engine.match_fast_path << "\n";
  out << "match_slow_path=" << engine.match_slow_path << "\n";
  out << "tracing=" << (rt.recorder().tracing() ? 1 : 0) << "\n";
  // Self-diagnosis roll-up: raised (firing + active) over the rule count;
  // `alerts` has the per-rule breakdown.
  const obs::HealthEngine::Summary health = rt.health().GetSummary();
  out << "alerts=" << health.raised() << "/" << health.total << "\n";
  if (persist::HistoryStore* store = rt.history_store(); store != nullptr) {
    // HistoryStore health: is persistence keeping up, and how stale is our
    // view of the shared file?
    const persist::StoreStatsSnapshot s = store->stats();
    out << "store.queued=" << s.queued << "\n";
    out << "store.journal_since_compact=" << s.journal_since_compact << "\n";
    out << "store.appends=" << s.appends << "\n";
    out << "store.compactions=" << s.compactions << "\n";
    out << "store.foreign_merged=" << s.foreign_merged << "\n";
    out << "store.io_errors=" << s.io_errors << "\n";
    out << "store.resyncs=" << s.resyncs << "\n";
    out << "store.last_resync_age_ms=" << s.last_resync_age_ms << "\n";
  }
  if (ipc::IpcBridge* bridge = rt.ipc_bridge(); bridge != nullptr) {
    const ipc::IpcStatus s = bridge->SnapshotStatus();
    out << "ipc.participant=" << s.participant << "\n";
    out << "ipc.foreign_edges=" << s.foreign_edges_mirrored << "\n";
  }
  if (const std::string& daemon = rt.config().fleet_daemon; !daemon.empty()) {
    // One condensed line about the attached daemon. Short timeout: `status`
    // must stay snappy even when the daemon is down.
    std::string reply;
    std::string error;
    if (fleet::QueryTcp(daemon, "fleet status", std::chrono::seconds(1), &reply, &error) &&
        reply.compare(0, 2, "ok") == 0) {
      out << "fleet=" << daemon << ",peers=" << ReplyValue(reply, "peers")
          << ",last_sync_age_ms=" << ReplyValue(reply, "last_sync_age_ms")
          << ",in=" << ReplyValue(reply, "records_in")
          << ",out=" << ReplyValue(reply, "records_out") << "\n";
    } else {
      out << "fleet=unreachable(" << daemon << ")\n";
    }
  }
  return out.str();
}

std::string DoIpc(Runtime& rt) {
  ipc::IpcBridge* bridge = rt.ipc_bridge();
  if (bridge == nullptr) {
    return Err("no IPC arena configured (set DIMMUNIX_IPC)");
  }
  const ipc::IpcStatus s = bridge->SnapshotStatus();
  std::ostringstream out;
  out << "ok\n";
  out << "arena=" << s.arena_path << "\n";
  out << "participant=" << s.participant << "\n";
  out << "generation=" << s.generation << "\n";
  out << "ticks=" << s.ticks << "\n";
  out << "foreign_edges=" << s.foreign_edges_mirrored << "\n";
  out << "participants_reclaimed=" << s.participants_reclaimed << "\n";
  out << "dropped_publishes=" << s.dropped_publishes << "\n";
  out << "flushes=" << s.flushes << "\n";
  out << "flush_ops=" << s.flush_ops << "\n";
  out << "pending_ops=" << s.pending_ops << "\n";
  out << "id_cache_hits=" << s.id_cache_hits << "\n";
  out << "id_cache_misses=" << s.id_cache_misses << "\n";
  for (const ipc::ParticipantInfo& p : s.participants) {
    out << "participant " << p.index << " pid=" << p.pid << " generation=" << p.generation
        << " alive=" << (p.alive ? 1 : 0) << " self=" << (p.self ? 1 : 0)
        << " edges=" << p.edges << " heartbeat_age_ms=" << p.heartbeat_age_ms
        << " proto=" << p.proto_version << " flush_seq=" << p.flush_seq << "\n";
  }
  return out.str();
}

std::string DoStats(Runtime& rt) {
  const EngineStatsSnapshot e = rt.engine().stats().Snapshot();
  const MonitorStatsSnapshot m = rt.monitor().stats().Snapshot();
  std::ostringstream out;
  out << "ok\n";
  out << "engine.requests=" << e.requests << "\n";
  out << "engine.gos=" << e.gos << "\n";
  out << "engine.yields=" << e.yields << "\n";
  out << "engine.wakes=" << e.wakes << "\n";
  out << "engine.yield_timeouts=" << e.yield_timeouts << "\n";
  out << "engine.reentrant_acquisitions=" << e.reentrant_acquisitions << "\n";
  out << "engine.acquisitions=" << e.acquisitions << "\n";
  out << "engine.releases=" << e.releases << "\n";
  out << "engine.trylock_cancels=" << e.trylock_cancels << "\n";
  out << "engine.broken_acquisitions=" << e.broken_acquisitions << "\n";
  out << "engine.signatures_disabled=" << e.signatures_disabled << "\n";
  out << "engine.depth_true_yields=" << e.depth_true_yields << "\n";
  out << "engine.depth_fp_yields=" << e.depth_fp_yields << "\n";
  out << "engine.epoch_entries=" << e.epoch_entries << "\n";
  out << "engine.epoch_stall_ns=" << e.epoch_stall_ns << "\n";
  out << "engine.epoch_hold_ns=" << e.epoch_hold_ns << "\n";
  out << "engine.match_fast_path=" << e.match_fast_path << "\n";
  out << "engine.match_slow_path=" << e.match_slow_path << "\n";
  out << "engine.match_fast_retries=" << e.match_fast_retries << "\n";
  out << "monitor.batches=" << m.batches << "\n";
  out << "monitor.events_processed=" << m.events_processed << "\n";
  out << "monitor.deadlocks_detected=" << m.deadlocks_detected << "\n";
  out << "monitor.starvations_detected=" << m.starvations_detected << "\n";
  out << "monitor.signatures_saved=" << m.signatures_saved << "\n";
  out << "monitor.starvations_broken=" << m.starvations_broken << "\n";
  out << "monitor.restarts_requested=" << m.restarts_requested << "\n";
  out << "monitor.fp_probes_opened=" << m.fp_probes_opened << "\n";
  out << "monitor.false_positives=" << m.false_positives << "\n";
  out << "monitor.true_positives=" << m.true_positives << "\n";
  out << "monitor.signatures_discarded=" << m.signatures_discarded << "\n";
  return out.str();
}

std::string DoHistory(Runtime& rt) {
  // Copy under the history lock, format outside: History::lock_ sits on the
  // application's lock-acquisition hot path and must not be held across
  // per-signature stream formatting.
  std::vector<Signature> signatures;
  signatures.reserve(rt.history().size());
  rt.history().ForEach([&](int, const Signature& s) { signatures.push_back(s); });
  std::ostringstream out;
  out << "ok\n";
  for (std::size_t index = 0; index < signatures.size(); ++index) {
    const Signature& s = signatures[index];
    out << "sig " << index << " kind=" << KindName(s.kind) << " stacks=" << s.stacks.size()
        << " depth=" << s.match_depth << " disabled=" << (s.disabled ? 1 : 0)
        << " avoidance=" << s.avoidance_count << " abort=" << s.abort_count
        << " fp=" << s.fp_count << " calibrating=" << (s.calibration.calibrating() ? 1 : 0)
        << "\n";
  }
  return out.str();
}

std::string DoRag(Runtime& rt) {
  const RagSnapshot snap = rt.monitor().SnapshotRag();
  std::ostringstream out;
  out << "ok\n";
  out << "threads=" << snap.threads.size() << "\n";
  out << "locks=" << snap.lock_count << "\n";
  out << "yield_edges=" << snap.yield_edge_count << "\n";
  for (const RagThreadInfo& t : snap.threads) {
    out << "thread " << t.id << " waiting=" << (t.waiting ? 1 : 0);
    if (t.foreign) {
      out << " foreign=1";  // mirrored from another process by the IPC bridge
    }
    if (t.waiting) {
      out << " wait_lock=" << t.wait_lock << " wait_mode=" << AcquireModeTag(t.wait_mode);
    }
    out << " held=" << t.held.size() << " yields=" << t.yield_edges;
    if (!t.held.empty()) {
      // Each hold is tagged with its mode: 123:X (exclusive) / 456:S (shared).
      out << " held_locks=";
      for (std::size_t i = 0; i < t.held.size(); ++i) {
        out << (i == 0 ? "" : ",") << t.held[i].lock << ':' << AcquireModeTag(t.held[i].mode);
      }
    }
    out << "\n";
  }
  return out.str();
}

std::string DoConfig(Runtime& rt) {
  const Config& c = rt.config();
  std::ostringstream out;
  out << "ok\n";
  out << "enabled=" << (c.enabled ? 1 : 0) << "\n";
  out << "monitor_period_ms=" << c.monitor_period.count() << "\n";
  out << "default_match_depth=" << c.default_match_depth << "\n";
  out << "max_match_depth=" << c.max_match_depth << "\n";
  out << "calibration_enabled=" << (c.calibration_enabled ? 1 : 0) << "\n";
  out << "calibration_na=" << c.calibration_na << "\n";
  out << "calibration_nt=" << c.calibration_nt << "\n";
  out << "immunity=" << ImmunityName(c.immunity) << "\n";
  out << "stage=" << StageName(c.stage) << "\n";
  out << "yield_timeout_ms=" << c.yield_timeout.count() << "\n";
  out << "auto_disable_aborts=" << c.auto_disable_aborts << "\n";
  out << "ignore_yield_decisions=" << (c.ignore_yield_decisions ? 1 : 0) << "\n";
  out << "use_peterson_guard=" << (c.use_peterson_guard ? 1 : 0) << "\n";
  out << "engine_stripes=" << rt.engine().stripe_count() << "\n";
  out << "history_path=" << c.history_path << "\n";
  out << "journal_threshold=" << c.journal_threshold << "\n";
  out << "journal_fsync=" << (c.journal_fsync ? 1 : 0) << "\n";
  out << "history_resync_ms=" << c.history_resync_period.count() << "\n";
  out << "ipc_path=" << c.ipc_path << "\n";
  out << "ipc_bridge_period_ms=" << c.ipc_bridge_period.count() << "\n";
  out << "control_socket_path=" << c.control_socket_path << "\n";
  out << "fleet_daemon=" << c.fleet_daemon << "\n";
  return out.str();
}

std::string DoSetDisabled(Runtime& rt, int index, bool disabled) {
  if (!rt.SetSignatureDisabled(index, disabled)) {
    return Err("signature index out of range");
  }
  std::ostringstream out;
  out << "ok\nindex=" << index << "\ndisabled=" << (disabled ? 1 : 0) << "\n";
  return out.str();
}

std::string DoDisableLast(Runtime& rt) {
  const int index = rt.DisableLastAvoidedSignature();
  if (index < 0) {
    return Err("no signature has been avoided yet");
  }
  const Signature sig = rt.history().Get(index);
  std::ostringstream out;
  out << "ok\nindex=" << index << "\navoidance=" << sig.avoidance_count << "\n";
  return out.str();
}

std::string DoReload(Runtime& rt) {
  if (rt.config().history_path.empty()) {
    return Err("no history file configured");
  }
  const bool ok = rt.ReloadHistory();
  std::ostringstream out;
  out << "ok\nreloaded=" << (ok ? 1 : 0) << "\nsignatures=" << rt.history().size() << "\n";
  return out.str();
}

std::string DoSetDepth(Runtime& rt, int index, int depth) {
  if (!rt.SetSignatureMatchDepth(index, depth)) {
    return Err("signature index or depth out of range");
  }
  std::ostringstream out;
  out << "ok\nindex=" << index << "\ndepth=" << depth << "\n";
  return out.str();
}

std::string DoHistorySave(Runtime& rt) {
  if (rt.config().history_path.empty()) {
    return Err("no history file configured");
  }
  if (!rt.SaveHistoryNow()) {
    return Err("history save failed (see process log)");
  }
  std::ostringstream out;
  out << "ok\nsaved=1\nsignatures=" << rt.history().size() << "\n";
  return out.str();
}

std::string DoHistoryMerge(Runtime& rt, const std::string& path) {
  const int added = rt.MergeHistoryFrom(path);
  if (added < 0) {
    return Err("cannot read " + path);
  }
  std::ostringstream out;
  out << "ok\nmerged_new=" << added << "\nsignatures=" << rt.history().size() << "\n";
  return out.str();
}

std::string DoHistoryExport(Runtime& rt, const std::string& path) {
  if (!rt.ExportHistoryTo(path)) {
    return Err("cannot write " + path);
  }
  std::ostringstream out;
  out << "ok\nexported=" << rt.history().size() << "\npath=" << path << "\n";
  return out.str();
}

std::string DoTraceSetEnabled(Runtime& rt, bool enabled) {
  if (enabled) {
    rt.recorder().StartTracing();
  } else {
    rt.recorder().StopTracing();
  }
  std::ostringstream out;
  out << "ok\ntracing=" << (enabled ? 1 : 0) << "\n";
  return out.str();
}

std::string DoTraceDump(Runtime& rt) {
  // The payload *is* the Chrome trace document; `dimctl trace dump > t.json`
  // produces a file Perfetto loads directly.
  return "ok\n" + obs::ChromeTraceJson(rt.recorder(), static_cast<std::uint64_t>(::getpid()));
}

std::string DoMetrics(Runtime& rt) {
  const EngineStatsSnapshot e = rt.engine().stats().Snapshot();
  const MonitorStatsSnapshot m = rt.monitor().stats().Snapshot();
  std::string out = "ok\n";
  obs::AppendPromCounter(&out, "dimmunix_lock_requests_total",
                         "Avoidance-protocol lock requests.", e.requests);
  obs::AppendPromCounter(&out, "dimmunix_lock_acquisitions_total",
                         "Committed lock acquisitions.", e.acquisitions);
  obs::AppendPromCounter(&out, "dimmunix_lock_releases_total", "Lock releases.", e.releases);
  obs::AppendPromCounter(&out, "dimmunix_avoidance_yields_total",
                         "Threads parked to dodge a deadlock signature.", e.yields);
  obs::AppendPromCounter(&out, "dimmunix_avoidance_wakes_total",
                         "Parked threads resumed after lock conditions changed.", e.wakes);
  obs::AppendPromCounter(&out, "dimmunix_yield_timeouts_total",
                         "Yields released by the global avoidance time bound.",
                         e.yield_timeouts);
  obs::AppendPromCounter(&out, "dimmunix_trylock_cancels_total",
                         "Trylock requests canceled after a busy grant.", e.trylock_cancels);
  obs::AppendPromCounter(&out, "dimmunix_broken_acquisitions_total",
                         "Acquisitions broken out of a detected deadlock.",
                         e.broken_acquisitions);
  obs::AppendPromCounter(&out, "dimmunix_epoch_entries_total",
                         "Entries into the stop-the-stripes epoch guard.", e.epoch_entries);
  obs::AppendPromCounter(&out, "dimmunix_epoch_stall_nanoseconds_total",
                         "Total time spent queueing for the epoch guard.", e.epoch_stall_ns);
  obs::AppendPromCounter(&out, "dimmunix_epoch_hold_nanoseconds_total",
                         "Total time the epoch guard was held.", e.epoch_hold_ns);
  obs::AppendPromCounter(&out, "dimmunix_match_fast_path_total",
                         "Cover searches decided from per-stripe snapshots.", e.match_fast_path);
  obs::AppendPromCounter(&out, "dimmunix_match_slow_path_total",
                         "Cover searches that fell back to the epoch.", e.match_slow_path);
  obs::AppendPromCounter(&out, "dimmunix_match_fast_retries_total",
                         "Fast-path cover validations that had to rescan.",
                         e.match_fast_retries);
  obs::AppendPromCounter(&out, "dimmunix_monitor_batches_total",
                         "Monitor detection passes.", m.batches);
  obs::AppendPromCounter(&out, "dimmunix_monitor_events_total",
                         "Events drained from the lock-free queue.", m.events_processed);
  obs::AppendPromCounter(&out, "dimmunix_deadlocks_detected_total",
                         "Deadlock cycles detected and archived.", m.deadlocks_detected);
  obs::AppendPromCounter(&out, "dimmunix_starvations_detected_total",
                         "Avoidance-induced starvation cycles detected.",
                         m.starvations_detected);
  obs::AppendPromGauge(&out, "dimmunix_signatures", "Signatures in the live history.",
                       static_cast<std::uint64_t>(rt.history().size()));
  obs::AppendPromGauge(&out, "dimmunix_tracing_active",
                       "1 while the flight-recorder rings are armed.",
                       rt.recorder().tracing() ? 1 : 0);
  // Self-diagnosis plane: per-rule alert gauges plus incident-log counters.
  const obs::HealthEngine::Summary health = rt.health().GetSummary();
  obs::AppendPromCounter(&out, "dimmunix_health_ticks_total",
                         "Health-rules evaluator passes.", health.ticks);
  obs::AppendPromGauge(&out, "dimmunix_alerts_raised",
                       "Health rules currently firing or active.",
                       static_cast<std::uint64_t>(health.raised()));
  const std::vector<obs::AlertSnapshot> alerts = rt.health().Snapshot();
  obs::AppendPromFamily(&out, "dimmunix_alert_active",
                        "1 while the labeled health rule is firing or active.", "gauge");
  for (const obs::AlertSnapshot& a : alerts) {
    const bool raised =
        a.state == obs::AlertState::kFiring || a.state == obs::AlertState::kActive;
    obs::AppendPromSample(&out, "dimmunix_alert_active",
                          "rule=\"" + obs::PromLabelEscape(a.rule) + "\"", raised ? 1 : 0);
  }
  obs::AppendPromFamily(&out, "dimmunix_alert_fired_total",
                        "Times the labeled health rule transitioned into firing.", "counter");
  for (const obs::AlertSnapshot& a : alerts) {
    obs::AppendPromSample(&out, "dimmunix_alert_fired_total",
                          "rule=\"" + obs::PromLabelEscape(a.rule) + "\"", a.fired_count);
  }
  const obs::IncidentLog::Stats inc = rt.incident_log().GetStats();
  obs::AppendPromCounter(&out, "dimmunix_incidents_captured_total",
                         "Incident bundles written to the forensics ring.", inc.captured);
  obs::AppendPromCounter(&out, "dimmunix_incidents_suppressed_total",
                         "Incident captures skipped by the rate limit.", inc.suppressed);
  obs::AppendPromCounter(&out, "dimmunix_incidents_errors_total",
                         "Incident bundle write failures.", inc.errors);
  if (persist::HistoryStore* store = rt.history_store(); store != nullptr) {
    const persist::StoreStatsSnapshot s = store->stats();
    obs::AppendPromCounter(&out, "dimmunix_store_appends_total",
                           "Journal records appended.", s.appends);
    obs::AppendPromCounter(&out, "dimmunix_store_compactions_total",
                           "History snapshot compactions.", s.compactions);
    obs::AppendPromCounter(&out, "dimmunix_store_foreign_merged_total",
                           "Signatures learned from the shared history file.",
                           s.foreign_merged);
    obs::AppendPromCounter(&out, "dimmunix_store_io_errors_total",
                           "History persistence I/O errors.", s.io_errors);
  }
  if (ipc::IpcBridge* bridge = rt.ipc_bridge(); bridge != nullptr) {
    const ipc::IpcStatus s = bridge->SnapshotStatus();
    obs::AppendPromCounter(&out, "dimmunix_ipc_ticks_total", "IPC mirror passes.", s.ticks);
    obs::AppendPromGauge(&out, "dimmunix_ipc_foreign_edges",
                         "Foreign edges currently mirrored into the local RAG.",
                         s.foreign_edges_mirrored);
    obs::AppendPromCounter(&out, "dimmunix_ipc_flushes_total",
                           "Pending-log drains into the arena.", s.flushes);
    obs::AppendPromCounter(&out, "dimmunix_ipc_flush_ops_total",
                           "Edge operations replayed by flushes.", s.flush_ops);
    obs::AppendPromGauge(&out, "dimmunix_ipc_pending_ops",
                         "Edge operations waiting in the pending log.", s.pending_ops);
    obs::AppendPromCounter(&out, "dimmunix_global_id_cache_hits_total",
                           "Global-ID resolutions served from the per-thread cache.",
                           s.id_cache_hits);
    obs::AppendPromCounter(&out, "dimmunix_global_id_cache_misses_total",
                           "Global-ID resolutions that ran the slow path.",
                           s.id_cache_misses);
  }
  // Per-thread flight-recorder ring accounting. Labeled by the OS tid (the
  // ring identity) plus the thread's registered name when it has one —
  // `dropped_total` climbing on one thread is the churn locator.
  const std::vector<obs::Recorder::RingTotals> rings = rt.recorder().SnapshotRingTotals();
  obs::AppendPromFamily(&out, "dimmunix_trace_ring_written_total",
                        "Trace events recorded per flight-recorder ring.", "counter");
  for (const obs::Recorder::RingTotals& r : rings) {
    obs::AppendPromSample(&out, "dimmunix_trace_ring_written_total",
                          "thread=\"" + std::to_string(r.tid) + "\",name=\"" +
                              obs::PromLabelEscape(r.name) + "\"",
                          r.written);
  }
  obs::AppendPromFamily(&out, "dimmunix_trace_ring_dropped_total",
                        "Trace events lost to ring overwrite per ring.", "counter");
  for (const obs::Recorder::RingTotals& r : rings) {
    obs::AppendPromSample(&out, "dimmunix_trace_ring_dropped_total",
                          "thread=\"" + std::to_string(r.tid) + "\",name=\"" +
                              obs::PromLabelEscape(r.name) + "\"",
                          r.dropped);
  }
  for (int kind = 0; kind < obs::kHistoKindCount; ++kind) {
    const obs::HistoKind k = static_cast<obs::HistoKind>(kind);
    obs::AppendPromHistogram(&out, std::string("dimmunix_") + obs::HistoName(k),
                             "Latency histogram (nanoseconds), log-linear buckets.",
                             rt.recorder().histogram(k).Snapshot());
  }
  return out;
}

std::string DoHisto(Runtime& rt, const std::string& name) {
  const int kind = obs::HistoKindFromName(name);
  if (kind < 0) {
    return Err("unknown histogram '" + name +
               "' (try acquire_latency_ns | yield_duration_ns | epoch_hold_ns | "
               "match_duration_ns | ipc_flush_ns)");
  }
  return "ok\n" +
         obs::HistoReadout(rt.recorder().histogram(static_cast<obs::HistoKind>(kind)).Snapshot());
}

std::string DoAlerts(Runtime& rt) {
  const obs::HealthEngine::Summary summary = rt.health().GetSummary();
  std::ostringstream out;
  out << "ok\n";
  out << "alerts_raised=" << summary.raised() << "\n";
  out << "alerts_firing=" << summary.firing << "\n";
  out << "alerts_active=" << summary.active << "\n";
  out << "alerts_resolved=" << summary.resolved << "\n";
  out << "alerts_total=" << summary.total << "\n";
  out << "health_ticks=" << summary.ticks << "\n";
  out << "fired_total=" << summary.fired_total << "\n";
  for (const obs::AlertSnapshot& a : rt.health().Snapshot()) {
    out << "alert " << a.rule << " state=" << obs::AlertStateName(a.state) << " value=" << a.value
        << " threshold=" << a.threshold << " fired=" << a.fired_count << " signal=\"" << a.signal
        << "\"\n";
  }
  return out.str();
}

std::string DoIncidents(Runtime& rt, int index) {
  const obs::IncidentLog& log = rt.incident_log();
  if (!log.enabled()) {
    return Err("incident forensics disabled (set DIMMUNIX_INCIDENT_DIR)");
  }
  const std::vector<std::string> names = log.List();
  if (index >= 0) {
    if (static_cast<std::size_t>(index) >= names.size()) {
      return Err("incident index out of range (have " + std::to_string(names.size()) + ")");
    }
    std::ifstream file(log.dir() + "/" + names[static_cast<std::size_t>(index)],
                       std::ios::binary);
    if (!file) {
      return Err("cannot read " + names[static_cast<std::size_t>(index)]);
    }
    std::ostringstream body;
    body << file.rdbuf();
    // The payload *is* the bundle: `dimctl incidents show 0 | tail -n +2`
    // pipes straight into a JSON tool.
    return "ok\n" + body.str();
  }
  const obs::IncidentLog::Stats stats = log.GetStats();
  std::ostringstream out;
  out << "ok\n";
  out << "dir=" << log.dir() << "\n";
  out << "count=" << names.size() << "\n";
  out << "captured=" << stats.captured << "\n";
  out << "suppressed=" << stats.suppressed << "\n";
  out << "errors=" << stats.errors << "\n";
  for (std::size_t i = 0; i < names.size(); ++i) {
    out << "incident " << i << " " << names[i] << "\n";
  }
  return out.str();
}

}  // namespace

std::string HelpText() {
  return
      "status                  runtime summary\n"
      "stats                   engine + monitor counters\n"
      "history                 per-signature state\n"
      "history save            compact the history to disk now\n"
      "history merge <file>    merge signatures from <file> into the live history\n"
      "history export <file>   write the current history to <file> (v2)\n"
      "disable <idx>           disable a signature\n"
      "enable <idx>            re-enable a signature\n"
      "disable-last            disable the most recently avoided signature\n"
      "reload                  hot-reload the history file\n"
      "set-depth <idx> <d>     override a signature's matching depth\n"
      "rag                     thread/lock/yield-edge snapshot\n"
      "ipc                     cross-process arena participants + mirror stats\n"
      "config                  effective configuration\n"
      "trace start             arm the flight-recorder rings\n"
      "trace stop              disarm the rings (contents kept)\n"
      "trace dump              Chrome trace JSON of every ring (Perfetto-loadable)\n"
      "metrics                 counters + histograms, Prometheus text format\n"
      "histo <name>            percentile readout of one latency histogram\n"
      "alerts                  health-rules state, one line per rule\n"
      "incidents               list captured incident bundles\n"
      "incidents show <n>      one bundle's JSON payload, verbatim\n"
      "fleet status            attached dimmunixd summary\n"
      "fleet peers             per-peer gossip statistics\n"
      "fleet push <addr>       sync with <addr> now, send-only\n"
      "fleet pull <addr>       sync with <addr> now, merge-only\n"
      "fleet exec <cmd...>     run <cmd> on the daemon and every peer\n"
      "fleet alerts            fleet-wide health: per-host alert summaries\n"
      "help                    this text\n";
}

std::optional<Request> ParseRequest(std::string_view line, std::string* error) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  const std::vector<std::string_view> tokens = Tokenize(line);
  if (tokens.empty()) {
    SetError(error, "empty command");
    return std::nullopt;
  }
  const std::string_view name = tokens[0];
  Request request;
  std::size_t want_args = 0;
  if (name == "status") {
    request.kind = CommandKind::kStatus;
  } else if (name == "stats") {
    request.kind = CommandKind::kStats;
  } else if (name == "history") {
    // "history" lists; "history save|merge|export" are the durable ops.
    if (tokens.size() == 1) {
      request.kind = CommandKind::kHistory;
      return request;
    }
    const std::string_view sub = tokens[1];
    if (sub == "save" && tokens.size() == 2) {
      request.kind = CommandKind::kHistorySave;
      return request;
    }
    if ((sub == "merge" || sub == "export") && tokens.size() == 3) {
      request.kind = sub == "merge" ? CommandKind::kHistoryMerge : CommandKind::kHistoryExport;
      request.path = std::string(tokens[2]);
      return request;
    }
    SetError(error,
             "usage: history | history save | history merge <file> | history export <file>");
    return std::nullopt;
  } else if (name == "trace") {
    if (tokens.size() == 2) {
      const std::string_view sub = tokens[1];
      if (sub == "start") {
        request.kind = CommandKind::kTraceStart;
        return request;
      }
      if (sub == "stop") {
        request.kind = CommandKind::kTraceStop;
        return request;
      }
      if (sub == "dump") {
        request.kind = CommandKind::kTraceDump;
        return request;
      }
    }
    SetError(error, "usage: trace start | trace stop | trace dump");
    return std::nullopt;
  } else if (name == "fleet") {
    if (tokens.size() >= 2) {
      const std::string_view sub = tokens[1];
      if (sub == "status" && tokens.size() == 2) {
        request.kind = CommandKind::kFleetStatus;
        return request;
      }
      if (sub == "peers" && tokens.size() == 2) {
        request.kind = CommandKind::kFleetPeers;
        return request;
      }
      if ((sub == "push" || sub == "pull") && tokens.size() == 3) {
        request.kind = sub == "push" ? CommandKind::kFleetPush : CommandKind::kFleetPull;
        request.path = std::string(tokens[2]);
        return request;
      }
      if (sub == "exec" && tokens.size() >= 3) {
        request.kind = CommandKind::kFleetExec;
        for (std::size_t i = 2; i < tokens.size(); ++i) {
          if (i > 2) {
            request.rest += ' ';
          }
          request.rest += std::string(tokens[i]);
        }
        return request;
      }
      if (sub == "alerts" && tokens.size() == 2) {
        request.kind = CommandKind::kFleetAlerts;
        return request;
      }
      if (sub == "alerts-report" && tokens.size() >= 3) {
        // Machine verb: runtimes pushing their alert summaries to the
        // daemon. One record per token.
        request.kind = CommandKind::kFleetAlertsReport;
        for (std::size_t i = 2; i < tokens.size(); ++i) {
          if (i > 2) {
            request.rest += ' ';
          }
          request.rest += std::string(tokens[i]);
        }
        return request;
      }
    }
    SetError(error,
             "usage: fleet status | fleet peers | fleet push <addr> | fleet pull <addr> | "
             "fleet exec <cmd...> | fleet alerts");
    return std::nullopt;
  } else if (name == "metrics") {
    request.kind = CommandKind::kMetrics;
  } else if (name == "alerts") {
    request.kind = CommandKind::kAlerts;
  } else if (name == "incidents") {
    // "incidents" lists; "incidents show <n>" returns one bundle.
    if (tokens.size() == 1) {
      request.kind = CommandKind::kIncidents;
      return request;
    }
    if (tokens.size() == 3 && tokens[1] == "show" && ParseInt(tokens[2], &request.index) &&
        request.index >= 0) {
      request.kind = CommandKind::kIncidents;
      return request;
    }
    SetError(error, "usage: incidents | incidents show <n>");
    return std::nullopt;
  } else if (name == "histo") {
    if (tokens.size() != 2) {
      SetError(error, "usage: histo <name>");
      return std::nullopt;
    }
    request.kind = CommandKind::kHisto;
    request.path = std::string(tokens[1]);
    return request;
  } else if (name == "disable") {
    request.kind = CommandKind::kDisable;
    want_args = 1;
  } else if (name == "enable") {
    request.kind = CommandKind::kEnable;
    want_args = 1;
  } else if (name == "disable-last") {
    request.kind = CommandKind::kDisableLast;
  } else if (name == "reload") {
    request.kind = CommandKind::kReload;
  } else if (name == "set-depth") {
    request.kind = CommandKind::kSetDepth;
    want_args = 2;
  } else if (name == "rag") {
    request.kind = CommandKind::kRag;
  } else if (name == "ipc") {
    request.kind = CommandKind::kIpc;
  } else if (name == "config") {
    request.kind = CommandKind::kConfig;
  } else if (name == "help") {
    request.kind = CommandKind::kHelp;
  } else {
    SetError(error, "unknown command '" + std::string(name) + "' (try 'help')");
    return std::nullopt;
  }
  if (tokens.size() - 1 != want_args) {
    SetError(error, "command '" + std::string(name) + "' expects " + std::to_string(want_args) +
                        " argument(s)");
    return std::nullopt;
  }
  if (want_args >= 1) {
    if (!ParseInt(tokens[1], &request.index) || request.index < 0) {
      SetError(error, "invalid signature index '" + std::string(tokens[1]) + "'");
      return std::nullopt;
    }
  }
  if (want_args >= 2) {
    if (!ParseInt(tokens[2], &request.depth) || request.depth < 1) {
      SetError(error, "invalid depth '" + std::string(tokens[2]) + "'");
      return std::nullopt;
    }
  }
  return request;
}

std::string ExecuteRequest(Runtime& runtime, const Request& request) {
  switch (request.kind) {
    case CommandKind::kStatus:
      return DoStatus(runtime);
    case CommandKind::kStats:
      return DoStats(runtime);
    case CommandKind::kHistory:
      return DoHistory(runtime);
    case CommandKind::kHistorySave:
      return DoHistorySave(runtime);
    case CommandKind::kHistoryMerge:
      return DoHistoryMerge(runtime, request.path);
    case CommandKind::kHistoryExport:
      return DoHistoryExport(runtime, request.path);
    case CommandKind::kDisable:
      return DoSetDisabled(runtime, request.index, true);
    case CommandKind::kEnable:
      return DoSetDisabled(runtime, request.index, false);
    case CommandKind::kDisableLast:
      return DoDisableLast(runtime);
    case CommandKind::kReload:
      return DoReload(runtime);
    case CommandKind::kSetDepth:
      return DoSetDepth(runtime, request.index, request.depth);
    case CommandKind::kRag:
      return DoRag(runtime);
    case CommandKind::kConfig:
      return DoConfig(runtime);
    case CommandKind::kIpc:
      return DoIpc(runtime);
    case CommandKind::kTraceStart:
      return DoTraceSetEnabled(runtime, true);
    case CommandKind::kTraceStop:
      return DoTraceSetEnabled(runtime, false);
    case CommandKind::kTraceDump:
      return DoTraceDump(runtime);
    case CommandKind::kMetrics:
      return DoMetrics(runtime);
    case CommandKind::kHisto:
      return DoHisto(runtime, request.path);
    case CommandKind::kAlerts:
      return DoAlerts(runtime);
    case CommandKind::kIncidents:
      return DoIncidents(runtime, request.index);
    case CommandKind::kFleetStatus:
    case CommandKind::kFleetPeers:
    case CommandKind::kFleetPush:
    case CommandKind::kFleetPull:
    case CommandKind::kFleetExec:
    case CommandKind::kFleetAlerts:
    case CommandKind::kFleetAlertsReport:
      return DoFleetProxy(runtime, request);
    case CommandKind::kHelp:
      return "ok\n" + HelpText();
  }
  return Err("unhandled command");
}

std::string HandleLine(Runtime& runtime, std::string_view line) {
  std::string error;
  const std::optional<Request> request = ParseRequest(line, &error);
  if (!request.has_value()) {
    return Err(error);
  }
  return ExecuteRequest(runtime, *request);
}

}  // namespace control
}  // namespace dimmunix
