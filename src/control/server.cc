// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/control/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/common/logging.h"
#include "src/control/protocol.h"

namespace dimmunix {
namespace control {
namespace {

// Request lines are tiny; anything longer than this is malformed.
constexpr std::size_t kMaxRequestBytes = 4096;

void CloseIfOpen(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

bool WriteAll(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    // MSG_NOSIGNAL: a client that disconnected before reading the reply must
    // yield EPIPE here, not a process-killing SIGPIPE — this server runs
    // inside the application being protected.
    const ssize_t n =
        ::send(fd, data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ControlServer::ControlServer(Runtime* runtime, std::string socket_path)
    : runtime_(runtime), socket_path_(std::move(socket_path)) {}

ControlServer::~ControlServer() { Stop(); }

bool ControlServer::Start() {
  if (running()) {
    return true;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    DIMMUNIX_LOG(kWarn) << "control socket path too long (" << socket_path_.size()
                        << " bytes): " << socket_path_;
    return false;
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  // A socket file may already exist: stale (crashed predecessor — replace
  // it) or live (another process, e.g. the parent that this child inherited
  // DIMMUNIX_CONTROL from — leave it alone or we would hijack and then
  // orphan the parent's control plane).
  const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe >= 0) {
    const bool live =
        ::connect(probe, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0;
    ::close(probe);
    if (live) {
      DIMMUNIX_LOG(kWarn) << "control socket " << socket_path_
                          << " is in use by a live server; not starting";
      return false;
    }
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    DIMMUNIX_LOG(kWarn) << "control socket() failed: " << std::strerror(errno);
    return false;
  }
  // Replace a stale socket left by a crashed predecessor.
  ::unlink(socket_path_.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 8) != 0) {
    DIMMUNIX_LOG(kWarn) << "control bind/listen on " << socket_path_
                        << " failed: " << std::strerror(errno);
    CloseIfOpen(listen_fd_);
    return false;
  }
  if (::pipe(stop_pipe_) != 0) {
    DIMMUNIX_LOG(kWarn) << "control stop pipe failed: " << std::strerror(errno);
    CloseIfOpen(listen_fd_);
    return false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  DIMMUNIX_LOG(kInfo) << "control server listening on " << socket_path_;
  return true;
}

void ControlServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  // Wake the poll() in the accept loop.
  const char byte = 0;
  (void)!::write(stop_pipe_[1], &byte, 1);
  thread_.join();
  CloseIfOpen(listen_fd_);
  CloseIfOpen(stop_pipe_[0]);
  CloseIfOpen(stop_pipe_[1]);
  ::unlink(socket_path_.c_str());
}

void ControlServer::Loop() {
  while (running()) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      DIMMUNIX_LOG(kWarn) << "control poll() failed: " << std::strerror(errno);
      return;
    }
    if (fds[1].revents != 0 || !running()) {
      return;
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      continue;
    }
    ServeConnection(conn);
    ::close(conn);
  }
}

void ControlServer::ServeConnection(int fd) {
  // A slow or silent client must not wedge the single-threaded accept loop
  // (and thus Stop()): the *whole connection* gets one 5-second deadline,
  // enforced by shrinking SO_RCVTIMEO to the time remaining before each
  // read — a drip-feeding client cannot reset the clock.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  // Symmetrically, a client that sends a request but never drains the reply
  // must not block the loop in send() once the socket buffer fills.
  timeval send_timeout{/*tv_sec=*/5, /*tv_usec=*/0};
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout, sizeof(send_timeout));
  std::string line;
  char buf[256];
  while (line.find('\n') == std::string::npos && line.size() < kMaxRequestBytes) {
    const auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      return;  // connection deadline exhausted
    }
    timeval timeout{};
    timeout.tv_sec = static_cast<time_t>(remaining.count() / 1000000);
    timeout.tv_usec = static_cast<suseconds_t>(remaining.count() % 1000000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // client went away or timed out
    }
    if (n == 0) {
      break;  // EOF: treat what we have as the request line
    }
    line.append(buf, static_cast<std::size_t>(n));
  }
  if (const std::size_t nl = line.find('\n'); nl != std::string::npos) {
    line.resize(nl);
  } else if (line.size() >= kMaxRequestBytes) {
    WriteAll(fd, "err request line too long\n");
    return;
  }
  WriteAll(fd, HandleLine(*runtime_, line));
}

}  // namespace control
}  // namespace dimmunix
