// Copyright (c) dimmunix-cpp authors. MIT license.
//
// HistoryStore — the asynchronous, crash-safe, multi-process-aware writer
// behind History persistence.
//
// The paper's promise is that immunity *persists* (§5.4, §8), but writing
// the whole history synchronously from the monitor kept file I/O inside the
// detection loop, and concurrent processes sharing one DIMMUNIX_HISTORY
// simply overwrote each other. The store fixes both:
//
//  * Async: producers (monitor thread, control plane) enqueue a signature
//    index on a lock-free MPSC queue (src/common/mpsc_queue.h) and return
//    immediately; a background thread snapshots the signature and appends
//    one CRC-protected record to <history>.journal. History I/O is off
//    every other thread entirely.
//
//  * Crash-safe: an append is one write(2); SIGKILL mid-append tears at
//    most the final record, which replay drops. Snapshots are
//    write-tmp-fsync-rename. There is no instant at which the on-disk
//    history is unloadable.
//
//  * Shared: after `journal_threshold` appends the store compacts — under
//    the fcntl FileLock it loads the file (picking up other processes'
//    signatures), merges them into the live History (whose version counter
//    makes the avoidance engine refresh its caches), and atomically writes
//    the union. With `resync_period` set, the same load-merge runs
//    periodically even without local changes, so a `dimctl disable` or a
//    vendor-shipped signature in one process propagates to every process
//    sharing the file — no restart (§8).

#ifndef DIMMUNIX_PERSIST_STORE_H_
#define DIMMUNIX_PERSIST_STORE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/mpsc_queue.h"
#include "src/obs/recorder.h"
#include "src/persist/file.h"
#include "src/persist/image.h"

namespace dimmunix {

class History;
class StackTable;
struct Signature;

namespace persist {

struct StoreOptions {
  std::string path;           // the history file; never empty
  int journal_threshold = 64;  // appends before a snapshot compaction
  bool fsync_appends = false;  // fsync(2) every journal append
  // Start() runs a synchronizing compaction (fold a crashed predecessor's
  // journal, pull in other processes' signatures, guarantee the file
  // exists). False when the runtime was told not to load history at init
  // (Config::load_history_on_init) — the file is then left untouched until
  // an explicit reload/save.
  bool merge_on_start = true;
  // True when Config::save_history_on_update is off: startup/resync
  // compactions become read-only (no file creation, no v1->v2 rewrite)
  // unless there is a journal to fold. Explicit SaveNow/threshold
  // compactions still write — the operator asked.
  bool read_mostly = false;
  // > 0: periodically load-merge the shared file even without local writes,
  // consuming signatures and operator actions from other processes live.
  std::chrono::milliseconds resync_period{0};
};

struct StoreStatsSnapshot {
  std::uint64_t appends = 0;         // journal records written
  std::uint64_t compactions = 0;     // snapshot rewrites
  std::uint64_t foreign_merged = 0;  // signatures learned from the shared file
  std::uint64_t io_errors = 0;
  // Operator-facing health (dimctl status):
  std::uint64_t queued = 0;               // deltas enqueued, not yet journaled
  std::uint64_t journal_since_compact = 0;  // records appended since the last compaction
  std::uint64_t resyncs = 0;              // load-merge passes over the shared file
  std::int64_t last_resync_age_ms = -1;   // ms since the last resync; -1 = never
};

class HistoryStore {
 public:
  // `history` and `stacks` must outlive the store. `recorder` (optional) is
  // the src/obs flight recorder: journal appends and compactions emit
  // kStoreFlush/kStoreCompact spans when tracing is live.
  HistoryStore(StoreOptions options, History* history, StackTable* stacks,
               obs::Recorder* recorder = nullptr);
  ~HistoryStore();  // Stop()

  HistoryStore(const HistoryStore&) = delete;
  HistoryStore& operator=(const HistoryStore&) = delete;

  // Starts the writer thread and makes sure the history file exists on disk
  // (an empty v2 snapshot if this is the first run), so operators and tests
  // can watch for the file as soon as the runtime is up.
  void Start();

  // Drains pending deltas, runs a final compaction if anything is dirty,
  // and joins the thread. Idempotent.
  void Stop();

  // Producer side, any thread, O(1), no I/O: records that signature `index`
  // was added or changed. The writer thread persists it asynchronously.
  void NotifySignatureChanged(int index);

  // Synchronous lock-merge-save compaction (control plane, operator ops):
  // on return the file durably contains the live history merged with every
  // other process's signatures. Safe from any thread.
  bool SaveNow();

  // Writes the current in-memory history to `path` (v2), without touching
  // the store's own file. For `dimctl history export` / vendor patches.
  bool ExportTo(const std::string& path);

  // Loads `path` and merges its signatures into the live History (file wins
  // operator knobs, §8 semantics), then persists. Returns the number of new
  // signatures, or -1 on a load failure.
  int MergeFrom(const std::string& path);

  // Invoked (from the calling/writer thread) whenever the store changed the
  // live History — the runtime wires this to the engine's cache refresh.
  void SetOnHistoryMerged(std::function<void()> fn);

  StoreStatsSnapshot stats() const;
  const std::string& path() const { return options_.path; }

 private:
  void Loop();
  void DrainQueue();  // writer thread (or post-join) only
  void AppendDelta(int index);
  // `sync_only` marks startup/resync compactions, which honor read_mostly;
  // explicit saves and journal-threshold compactions always write.
  bool Compact(MergePolicy policy, bool sync_only = false);
  SignatureRecord RecordFor(const Signature& sig) const;

  const StoreOptions options_;
  History* history_;
  StackTable* stacks_;
  obs::Recorder* recorder_;
  std::function<void()> on_merged_;

  MpscQueue<int> queue_;  // changed signature indices awaiting a journal append
  std::mutex cv_m_;
  std::condition_variable cv_;
  bool wake_ = false;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;

  std::mutex io_m_;  // serializes this process's journal/compaction I/O
  int appends_since_compact_ = 0;  // guarded by io_m_
  bool dirty_ = false;             // guarded by io_m_

  std::atomic<std::uint64_t> stat_appends_{0};
  std::atomic<std::uint64_t> stat_compactions_{0};
  std::atomic<std::uint64_t> stat_foreign_{0};
  std::atomic<std::uint64_t> stat_io_errors_{0};
  std::atomic<std::uint64_t> stat_queued_{0};         // producer inc, writer dec
  std::atomic<std::uint64_t> stat_since_compact_{0};  // mirrors appends_since_compact_
  std::atomic<std::uint64_t> stat_resyncs_{0};
  std::atomic<std::int64_t> stat_last_resync_ms_{-1};  // steady-clock ms, -1 = never
};

}  // namespace persist
}  // namespace dimmunix

#endif  // DIMMUNIX_PERSIST_STORE_H_
