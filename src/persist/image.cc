// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/persist/image.h"

#include <algorithm>

namespace dimmunix {
namespace persist {

void SignatureRecord::Canonicalize() { std::sort(stacks.begin(), stacks.end()); }

bool SignatureRecord::SameSignatureAs(const SignatureRecord& other) const {
  return stacks == other.stacks;
}

int HistoryImage::Find(const SignatureRecord& rec) const {
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].SameSignatureAs(rec)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

MergeStats MergeInto(HistoryImage* dst, const HistoryImage& src, MergePolicy policy) {
  MergeStats stats;
  for (const SignatureRecord& incoming : src.records) {
    SignatureRecord rec = incoming;
    rec.Canonicalize();
    const int index = dst->Find(rec);
    if (index < 0) {
      dst->records.push_back(std::move(rec));
      ++stats.added;
      continue;
    }
    SignatureRecord& mine = dst->records[static_cast<std::size_t>(index)];
    bool changed = false;
    // Counters only ever grow; max() never rolls a live value back.
    if (rec.avoidance_count > mine.avoidance_count) {
      mine.avoidance_count = rec.avoidance_count;
      changed = true;
    }
    if (rec.abort_count > mine.abort_count) {
      mine.abort_count = rec.abort_count;
      changed = true;
    }
    if (rec.fp_count > mine.fp_count) {
      mine.fp_count = rec.fp_count;
      changed = true;
    }
    const bool knobs_differ =
        mine.disabled != rec.disabled || mine.match_depth != rec.match_depth;
    if (rec.knob_epoch > mine.knob_epoch) {
      // The incoming copy has seen more operator actions: adopt its knobs.
      mine.disabled = rec.disabled;
      mine.match_depth = rec.match_depth;
      mine.knob_epoch = rec.knob_epoch;
      changed = true;
    } else if (rec.knob_epoch == mine.knob_epoch &&
               policy == MergePolicy::kPreferIncoming && knobs_differ) {
      mine.disabled = rec.disabled;
      mine.match_depth = rec.match_depth;
      changed = true;
    }
    if (changed) {
      ++stats.updated;
    }
  }
  return stats;
}

}  // namespace persist
}  // namespace dimmunix
