// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/persist/image.h"

#include <algorithm>
#include <unordered_map>

#include "src/common/hash.h"

namespace dimmunix {
namespace persist {

void SignatureRecord::Canonicalize() { std::sort(stacks.begin(), stacks.end()); }

bool SignatureRecord::SameSignatureAs(const SignatureRecord& other) const {
  return stacks == other.stacks;
}

int HistoryImage::Find(const SignatureRecord& rec) const {
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].SameSignatureAs(rec)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

MergeStats MergeInto(HistoryImage* dst, const HistoryImage& src, MergePolicy policy) {
  MergeStats stats;
  for (const SignatureRecord& incoming : src.records) {
    SignatureRecord rec = incoming;
    rec.Canonicalize();
    const int index = dst->Find(rec);
    if (index < 0) {
      dst->records.push_back(std::move(rec));
      ++stats.added;
      continue;
    }
    SignatureRecord& mine = dst->records[static_cast<std::size_t>(index)];
    bool changed = false;
    // Counters only ever grow; max() never rolls a live value back.
    if (rec.avoidance_count > mine.avoidance_count) {
      mine.avoidance_count = rec.avoidance_count;
      changed = true;
    }
    if (rec.abort_count > mine.abort_count) {
      mine.abort_count = rec.abort_count;
      changed = true;
    }
    if (rec.fp_count > mine.fp_count) {
      mine.fp_count = rec.fp_count;
      changed = true;
    }
    const bool knobs_differ =
        mine.disabled != rec.disabled || mine.match_depth != rec.match_depth;
    if (rec.knob_epoch > mine.knob_epoch) {
      // The incoming copy has seen more operator actions: adopt its knobs.
      mine.disabled = rec.disabled;
      mine.match_depth = rec.match_depth;
      mine.knob_epoch = rec.knob_epoch;
      changed = true;
    } else if (rec.knob_epoch == mine.knob_epoch &&
               policy == MergePolicy::kPreferIncoming && knobs_differ) {
      mine.disabled = rec.disabled;
      mine.match_depth = rec.match_depth;
      changed = true;
    }
    if (changed) {
      ++stats.updated;
    }
  }
  return stats;
}

std::uint64_t SignatureHash(const SignatureRecord& rec) {
  // Hash each stack independently, then fold the sorted per-stack hashes:
  // the result is invariant under stack order, so callers never need to
  // Canonicalize() first.
  std::vector<std::uint64_t> stack_hashes;
  stack_hashes.reserve(rec.stacks.size());
  for (const std::vector<Frame>& stack : rec.stacks) {
    stack_hashes.push_back(Fnv1a64(stack.data(), stack.size() * sizeof(Frame)));
  }
  std::sort(stack_hashes.begin(), stack_hashes.end());
  std::uint64_t h = Fnv1a64(nullptr, 0);
  h = HashCombine(h, stack_hashes.size());
  for (const std::uint64_t sh : stack_hashes) {
    h = HashCombine(h, sh);
  }
  return h;
}

std::vector<DigestEntry> DigestOf(const HistoryImage& image) {
  std::vector<DigestEntry> digest;
  digest.reserve(image.records.size());
  for (const SignatureRecord& rec : image.records) {
    digest.push_back({SignatureHash(rec), rec.knob_epoch});
  }
  std::sort(digest.begin(), digest.end(),
            [](const DigestEntry& a, const DigestEntry& b) { return a.hash < b.hash; });
  return digest;
}

HistoryImage DeltaAgainst(const HistoryImage& image, const std::vector<DigestEntry>& have) {
  std::unordered_map<std::uint64_t, std::uint16_t> known;
  known.reserve(have.size());
  for (const DigestEntry& entry : have) {
    // Duplicate hashes in a (malformed) digest: keep the newest epoch, so we
    // never ship a record the peer already has at that epoch.
    auto [it, inserted] = known.emplace(entry.hash, entry.knob_epoch);
    if (!inserted && entry.knob_epoch > it->second) {
      it->second = entry.knob_epoch;
    }
  }
  HistoryImage delta;
  for (const SignatureRecord& rec : image.records) {
    const auto it = known.find(SignatureHash(rec));
    if (it == known.end() || rec.knob_epoch > it->second) {
      delta.records.push_back(rec);
    }
  }
  return delta;
}

ImageDiff DiffImages(const HistoryImage& a, const HistoryImage& b) {
  struct Knobs {
    std::uint16_t epoch;
    bool disabled;
    std::int32_t depth;
  };
  std::unordered_map<std::uint64_t, Knobs> in_b;
  in_b.reserve(b.records.size());
  for (const SignatureRecord& rec : b.records) {
    in_b[SignatureHash(rec)] = {rec.knob_epoch, rec.disabled, rec.match_depth};
  }
  ImageDiff diff;
  for (const SignatureRecord& rec : a.records) {
    const std::uint64_t hash = SignatureHash(rec);
    const auto it = in_b.find(hash);
    if (it == in_b.end()) {
      diff.only_in_a.push_back(hash);
      continue;
    }
    const Knobs& other = it->second;
    if (other.epoch != rec.knob_epoch || other.disabled != rec.disabled ||
        other.depth != rec.match_depth) {
      diff.knob_differs.push_back({hash, rec.knob_epoch, other.epoch});
    }
    in_b.erase(it);  // what remains at the end exists only in b
  }
  for (const auto& [hash, knobs] : in_b) {
    (void)knobs;
    diff.only_in_b.push_back(hash);
  }
  std::sort(diff.only_in_a.begin(), diff.only_in_a.end());
  std::sort(diff.only_in_b.begin(), diff.only_in_b.end());
  std::sort(diff.knob_differs.begin(), diff.knob_differs.end(),
            [](const ImageDiff::KnobDiff& x, const ImageDiff::KnobDiff& y) {
              return x.hash < y.hash;
            });
  return diff;
}

}  // namespace persist
}  // namespace dimmunix
