// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/persist/format.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <sstream>

namespace dimmunix {
namespace persist {
namespace {

// Sanity bound: no single record is ever remotely this large; a length
// beyond it means we are reading garbage, not a record.
constexpr std::uint32_t kMaxRecordBytes = 16u << 20;

// --- little-endian primitives ----------------------------------------------

void PutU16(std::string* out, std::uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::size_t remaining() const { return bytes_.size() - pos_; }
  std::size_t pos() const { return pos_; }

  bool Skip(std::size_t n) {
    if (remaining() < n) {
      return false;
    }
    pos_ += n;
    return true;
  }

  bool GetU16(std::uint16_t* v) {
    if (remaining() < 2) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 2; ++i) {
      *v |= static_cast<std::uint16_t>(static_cast<unsigned char>(bytes_[pos_ + i]) << (8 * i));
    }
    pos_ += 2;
    return true;
  }

  bool GetU8(std::uint8_t* v) {
    if (remaining() < 1) {
      return false;
    }
    *v = static_cast<unsigned char>(bytes_[pos_++]);
    return true;
  }

  bool GetU32(std::uint32_t* v) {
    if (remaining() < 4) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool GetU64(std::uint64_t* v) {
    if (remaining() < 8) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  std::string_view Slice(std::size_t offset, std::size_t len) const {
    return bytes_.substr(offset, len);
  }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// Record payload field block shared by the snapshot and journal encodings
// (everything except the stacks, which differ: indexed vs. inline).
void PutRecordFields(std::string* out, const SignatureRecord& rec) {
  out->push_back(static_cast<char>(rec.kind));
  out->push_back(static_cast<char>(rec.disabled ? 1 : 0));
  PutU16(out, rec.knob_epoch);
  PutU32(out, static_cast<std::uint32_t>(rec.match_depth));
  PutU64(out, rec.avoidance_count);
  PutU64(out, rec.abort_count);
  PutU64(out, rec.fp_count);
}

bool GetRecordFields(Reader* in, SignatureRecord* rec) {
  std::uint8_t kind = 0;
  std::uint8_t disabled = 0;
  std::uint32_t depth = 0;
  if (!in->GetU8(&kind) || !in->GetU8(&disabled) || !in->GetU16(&rec->knob_epoch) ||
      !in->GetU32(&depth) || !in->GetU64(&rec->avoidance_count) ||
      !in->GetU64(&rec->abort_count) || !in->GetU64(&rec->fp_count)) {
    return false;
  }
  rec->kind = kind;
  rec->disabled = disabled != 0;
  rec->match_depth = static_cast<std::int32_t>(depth);
  if (rec->match_depth < 1) {
    rec->match_depth = 1;
  }
  return true;
}

void NoteDropped(LoadResult* result, std::size_t count, const char* why) {
  result->records_dropped += count;
  if (!result->message.empty()) {
    result->message += "; ";
  }
  result->message += why;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t len) {
  // Table-free bitwise CRC-32 (reflected 0xEDB88320). Records are small and
  // persistence is off the hot path; simplicity beats a 1 KiB table.
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= p[i];
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return crc ^ 0xffffffffu;
}

// --- Snapshot v2 -----------------------------------------------------------
//
//   [0,4)   magic "DIMX"
//   [4,8)   u32 version (2)
//   [8,12)  u32 stack_count
//   [12,16) u32 signature_count
//   [16,20) u32 crc of bytes [0,16)
//   stack section, stack_count times:
//     u32 frame_count, frame_count * u64 frames, u32 crc of the preceding
//     payload (frame_count + frames)
//   record section, signature_count times:
//     u32 payload_len, u32 payload_crc, payload:
//       fields (see PutRecordFields), u32 stack_ref_count,
//       stack_ref_count * u32 indices into the stack section

std::string EncodeSnapshotV2(const HistoryImage& image) {
  // Intern stacks in first-use order over the (canonicalized) records so the
  // encoding is a pure function of the image.
  std::map<std::vector<Frame>, std::uint32_t> stack_index;
  std::vector<const std::vector<Frame>*> stack_order;
  std::vector<SignatureRecord> records = image.records;
  for (SignatureRecord& rec : records) {
    rec.Canonicalize();
  }
  for (const SignatureRecord& rec : records) {
    for (const std::vector<Frame>& stack : rec.stacks) {
      if (stack_index.emplace(stack, static_cast<std::uint32_t>(stack_index.size())).second) {
        stack_order.push_back(&stack_index.find(stack)->first);
      }
    }
  }

  std::string out;
  out.append(kSnapshotMagic);
  PutU32(&out, kFormatVersion);
  PutU32(&out, static_cast<std::uint32_t>(stack_order.size()));
  PutU32(&out, static_cast<std::uint32_t>(records.size()));
  PutU32(&out, Crc32(out.data(), out.size()));

  for (const std::vector<Frame>* stack : stack_order) {
    std::string payload;
    PutU32(&payload, static_cast<std::uint32_t>(stack->size()));
    for (Frame frame : *stack) {
      PutU64(&payload, frame);
    }
    out += payload;
    PutU32(&out, Crc32(payload.data(), payload.size()));
  }

  for (const SignatureRecord& rec : records) {
    std::string payload;
    PutRecordFields(&payload, rec);
    PutU32(&payload, static_cast<std::uint32_t>(rec.stacks.size()));
    for (const std::vector<Frame>& stack : rec.stacks) {
      PutU32(&payload, stack_index.at(stack));
    }
    PutU32(&out, static_cast<std::uint32_t>(payload.size()));
    PutU32(&out, Crc32(payload.data(), payload.size()));
    out += payload;
  }
  return out;
}

bool DecodeSnapshotV2(std::string_view bytes, HistoryImage* image, LoadResult* result) {
  Reader in(bytes);
  result->format_version = 2;
  if (bytes.size() < 20 || bytes.substr(0, 4) != kSnapshotMagic) {
    result->status = LoadStatus::kCorrupt;
    result->message = "bad magic";
    return false;
  }
  in.Skip(4);
  std::uint32_t version = 0;
  std::uint32_t stack_count = 0;
  std::uint32_t sig_count = 0;
  std::uint32_t header_crc = 0;
  in.GetU32(&version);
  in.GetU32(&stack_count);
  in.GetU32(&sig_count);
  in.GetU32(&header_crc);
  if (Crc32(bytes.data(), 16) != header_crc) {
    result->status = LoadStatus::kCorrupt;
    result->message = "header CRC mismatch";
    return false;
  }
  if (version != kFormatVersion) {
    result->status = LoadStatus::kCorrupt;
    result->message = "unsupported version " + std::to_string(version);
    return false;
  }

  // Stack section: any damage here poisons every record that references it,
  // so it is all-or-nothing. Counts come from the (CRC-consistent but
  // possibly crafted) file: never reserve more than the remaining bytes
  // could possibly encode, or a hostile count turns into a bad_alloc that
  // terminates the host process.
  std::vector<std::vector<Frame>> stacks;
  stacks.reserve(std::min<std::size_t>(stack_count, in.remaining() / 8));
  for (std::uint32_t s = 0; s < stack_count; ++s) {
    const std::size_t payload_start = in.pos();
    std::uint32_t frame_count = 0;
    if (!in.GetU32(&frame_count) || frame_count > kMaxRecordBytes / 8 ||
        in.remaining() < frame_count * 8ull + 4) {
      result->status = LoadStatus::kCorrupt;
      result->message = "truncated stack section";
      return false;
    }
    std::vector<Frame> frames(frame_count);
    for (std::uint32_t f = 0; f < frame_count; ++f) {
      in.GetU64(&frames[f]);
    }
    const std::string_view payload = in.Slice(payload_start, in.pos() - payload_start);
    std::uint32_t crc = 0;
    in.GetU32(&crc);
    if (Crc32(payload.data(), payload.size()) != crc) {
      result->status = LoadStatus::kCorrupt;
      result->message = "stack section CRC mismatch";
      return false;
    }
    stacks.push_back(std::move(frames));
  }

  // Record section: per-record CRC means damage is local — drop the bad
  // record, keep the rest.
  for (std::uint32_t r = 0; r < sig_count; ++r) {
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    if (!in.GetU32(&len) || !in.GetU32(&crc) || len > kMaxRecordBytes ||
        in.remaining() < len) {
      NoteDropped(result, sig_count - r, "truncated record section");
      break;
    }
    const std::string_view payload = in.Slice(in.pos(), len);
    in.Skip(len);
    if (Crc32(payload.data(), payload.size()) != crc) {
      NoteDropped(result, 1, "record CRC mismatch");
      continue;
    }
    Reader rp(payload);
    SignatureRecord rec;
    std::uint32_t ref_count = 0;
    if (!GetRecordFields(&rp, &rec) || !rp.GetU32(&ref_count)) {
      NoteDropped(result, 1, "malformed record");
      continue;
    }
    bool refs_ok = true;
    rec.stacks.reserve(std::min<std::size_t>(ref_count, rp.remaining() / 4));
    for (std::uint32_t i = 0; i < ref_count; ++i) {
      std::uint32_t ref = 0;
      if (!rp.GetU32(&ref) || ref >= stacks.size()) {
        refs_ok = false;
        break;
      }
      rec.stacks.push_back(stacks[ref]);
    }
    if (!refs_ok || rec.stacks.empty()) {
      NoteDropped(result, 1, "record references missing stack");
      continue;
    }
    rec.Canonicalize();
    image->records.push_back(std::move(rec));
    ++result->records_loaded;
  }
  return true;
}

// --- Journal ---------------------------------------------------------------
//
//   header: magic "DIMJ", u32 version, u32 snapshot_crc (CRC-32 of the
//           snapshot file this journal extends; 0 = none), u32 crc of
//           bytes [0,12)
//   records: u32 payload_len, u32 payload_crc, payload:
//     fields (see PutRecordFields), u32 stack_count,
//     per stack: u32 frame_count, frame_count * u64 frames

std::string EncodeJournalHeader(std::uint32_t snapshot_crc) {
  std::string out;
  out.append(kJournalMagic);
  PutU32(&out, kFormatVersion);
  PutU32(&out, snapshot_crc);
  PutU32(&out, Crc32(out.data(), out.size()));
  return out;
}

std::string EncodeJournalRecord(const SignatureRecord& record) {
  SignatureRecord rec = record;
  rec.Canonicalize();
  std::string payload;
  PutRecordFields(&payload, rec);
  PutU32(&payload, static_cast<std::uint32_t>(rec.stacks.size()));
  for (const std::vector<Frame>& stack : rec.stacks) {
    PutU32(&payload, static_cast<std::uint32_t>(stack.size()));
    for (Frame frame : stack) {
      PutU64(&payload, frame);
    }
  }
  std::string out;
  PutU32(&out, static_cast<std::uint32_t>(payload.size()));
  PutU32(&out, Crc32(payload.data(), payload.size()));
  out += payload;
  return out;
}

void ReplayJournal(std::string_view bytes, HistoryImage* image, LoadResult* result,
                   std::uint32_t current_snapshot_crc) {
  Reader in(bytes);
  if (bytes.size() < 16 || bytes.substr(0, 4) != kJournalMagic) {
    NoteDropped(result, 1, "journal: bad magic");
    return;
  }
  in.Skip(4);
  std::uint32_t version = 0;
  std::uint32_t snapshot_crc = 0;
  std::uint32_t header_crc = 0;
  in.GetU32(&version);
  in.GetU32(&snapshot_crc);
  in.GetU32(&header_crc);
  if (Crc32(bytes.data(), 12) != header_crc || version != kFormatVersion) {
    NoteDropped(result, 1, "journal: bad header");
    return;
  }
  // Mismatched binding: the snapshot was rewritten after this journal was
  // created (the rename-then-unlink crash window). The journal's records
  // are then *older* than the snapshot — keep presence and counters, but
  // never let them roll back the snapshot's operator knobs.
  const MergePolicy policy = snapshot_crc == current_snapshot_crc
                                 ? MergePolicy::kPreferIncoming
                                 : MergePolicy::kPreferExisting;
  if (policy == MergePolicy::kPreferExisting) {
    NoteDropped(result, 0, "journal predates snapshot: knob updates ignored");
  }
  while (in.remaining() > 0) {
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    if (!in.GetU32(&len) || !in.GetU32(&crc) || len > kMaxRecordBytes ||
        in.remaining() < len) {
      // Torn tail: the crash window of an append. Record boundaries after
      // the tear are unknowable, so this ends the replay.
      NoteDropped(result, 1, "journal: torn trailing record");
      return;
    }
    const std::string_view payload = in.Slice(in.pos(), len);
    in.Skip(len);
    if (Crc32(payload.data(), payload.size()) != crc) {
      NoteDropped(result, 1, "journal: record CRC mismatch");
      return;
    }
    Reader rp(payload);
    SignatureRecord rec;
    std::uint32_t stack_count = 0;
    if (!GetRecordFields(&rp, &rec) || !rp.GetU32(&stack_count)) {
      NoteDropped(result, 1, "journal: malformed record");
      return;
    }
    bool stacks_ok = stack_count > 0;
    rec.stacks.reserve(std::min<std::size_t>(stack_count, rp.remaining() / 4));
    for (std::uint32_t s = 0; s < stack_count && stacks_ok; ++s) {
      std::uint32_t frame_count = 0;
      if (!rp.GetU32(&frame_count) || frame_count > kMaxRecordBytes / 8) {
        stacks_ok = false;
        break;
      }
      std::vector<Frame> frames(frame_count);
      for (std::uint32_t f = 0; f < frame_count; ++f) {
        if (!rp.GetU64(&frames[f])) {
          stacks_ok = false;
          break;
        }
      }
      rec.stacks.push_back(std::move(frames));
    }
    if (!stacks_ok) {
      NoteDropped(result, 1, "journal: malformed record stacks");
      return;
    }
    HistoryImage delta;
    rec.Canonicalize();
    delta.records.push_back(std::move(rec));
    MergeInto(image, delta, policy);
    ++result->records_loaded;
    ++result->journal_records;
  }
}

// --- Legacy v1 text --------------------------------------------------------

bool LooksLikeTextV1(std::string_view bytes) {
  return bytes.substr(0, 1) == "#" || bytes.empty();
}

void ParseTextV1(std::string_view text, HistoryImage* image, LoadResult* result) {
  result->format_version = 1;
  std::istringstream in{std::string(text)};
  std::string line;
  SignatureRecord rec;
  bool in_signature = false;

  auto flush = [&]() {
    if (rec.stacks.empty()) {
      return;
    }
    rec.Canonicalize();
    image->records.push_back(rec);
    ++result->records_loaded;
    rec = SignatureRecord{};
  };

  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    if (tok == "sig") {
      rec = SignatureRecord{};
      in_signature = true;
      std::string field;
      while (ls >> field) {
        const auto eq = field.find('=');
        if (eq == std::string::npos) {
          continue;
        }
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (key == "kind") {
          rec.kind = (value == "starvation") ? 1 : 0;
        } else if (key == "depth") {
          rec.match_depth = std::max(1, std::atoi(value.c_str()));
        } else if (key == "disabled") {
          rec.disabled = (value == "1");
        } else if (key == "avoided") {
          rec.avoidance_count = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "aborts") {
          rec.abort_count = std::strtoull(value.c_str(), nullptr, 10);
        }
      }
    } else if (tok == "stack" && in_signature) {
      std::vector<Frame> frames;
      std::string frame_tok;
      while (ls >> frame_tok) {
        frames.push_back(std::strtoull(frame_tok.c_str(), nullptr, 16));
      }
      if (!frames.empty()) {
        rec.stacks.push_back(std::move(frames));
      }
    } else if (tok == "end") {
      flush();
      in_signature = false;
    } else {
      NoteDropped(result, 0, "v1: unrecognized line skipped");
    }
  }
  flush();
}

}  // namespace persist
}  // namespace dimmunix
