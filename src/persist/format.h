// Copyright (c) dimmunix-cpp authors. MIT license.
//
// On-disk encodings of a HistoryImage. Three formats live here, all pure
// (bytes in, bytes out — no file descriptors, see src/persist/file.h for
// the I/O and locking around them):
//
//  * Snapshot v2 (magic "DIMX") — the durable binary format. Versioned
//    header with its own CRC, an interned-stack section (each distinct call
//    stack stored once), then one CRC-protected record per signature
//    referencing stacks by index. Full layout: docs/history-format.md.
//
//  * Journal (magic "DIMJ") — the append-only delta sidecar
//    (<history>.journal). Each record is a self-contained signature snapshot
//    (stacks inline) so a record is mergeable without the snapshot's intern
//    table. Appends are single write(2) calls; a crash can only tear the
//    final record, and replay drops the torn tail.
//
//  * Legacy v1 ("# dimmunix history v1") — the original human-readable text
//    format. Read-only: v1 files load forever, but every save writes v2
//    (history_tool upgrade converts in place).
//
// Decoders are tolerant by default: a record whose CRC fails or that runs
// past the end of the buffer is dropped and counted in
// LoadResult::records_dropped; everything salvageable loads. Strict
// consumers (history_tool validate) reject any drop.

#ifndef DIMMUNIX_PERSIST_FORMAT_H_
#define DIMMUNIX_PERSIST_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/persist/image.h"

namespace dimmunix {
namespace persist {

inline constexpr std::string_view kSnapshotMagic = "DIMX";
inline constexpr std::string_view kJournalMagic = "DIMJ";
inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr std::string_view kTextHeaderV1 = "# dimmunix history v1";

// CRC-32 (IEEE 802.3 polynomial, reflected), the checksum behind every
// header and record. Crc32("123456789") == 0xCBF43926.
std::uint32_t Crc32(const void* data, std::size_t len);

enum class LoadStatus {
  kOk,        // loaded (possibly with dropped records — see records_dropped)
  kNotFound,  // no file: an empty immune system, not an error
  kIoError,   // the file exists but could not be read
  kCorrupt,   // unrecognizable header / unusable stack section
};

struct LoadResult {
  LoadStatus status = LoadStatus::kOk;
  int format_version = 0;           // 1 or 2 once a header was recognized
  std::size_t records_loaded = 0;   // records decoded successfully
  std::size_t records_dropped = 0;  // CRC-failed / torn / malformed records
  std::size_t journal_records = 0;  // of records_loaded, how many came from a journal
  std::string message;              // human-readable detail for warnings

  // The caller got a usable (possibly empty) image.
  bool ok() const { return status == LoadStatus::kOk || status == LoadStatus::kNotFound; }
  // Nothing was lost: what validate requires.
  bool clean() const { return ok() && records_dropped == 0; }
};

// --- Snapshot v2 -----------------------------------------------------------

std::string EncodeSnapshotV2(const HistoryImage& image);

// Appends decoded records to `image`. Returns false (status kCorrupt) when
// the header or the stack section is unusable; individual bad records are
// dropped and counted, not fatal.
bool DecodeSnapshotV2(std::string_view bytes, HistoryImage* image, LoadResult* result);

// --- Journal ---------------------------------------------------------------

// The journal header embeds the CRC-32 of the snapshot file it extends
// (`snapshot_crc`, 0 when there is no snapshot yet). That binding lets a
// loader detect the one crash window where a journal outlives a *newer*
// snapshot — SIGKILL between a compaction's rename and its journal unlink —
// and demote the stale journal's knob updates (see ReplayJournal).
std::string EncodeJournalHeader(std::uint32_t snapshot_crc = 0);
std::string EncodeJournalRecord(const SignatureRecord& record);

// Replays journal bytes into `image`. A journal whose header binding equals
// `current_snapshot_crc` is fresh: records merge with kPreferIncoming (they
// are newer than the snapshot). A mismatched binding means the journal
// predates the snapshot on disk; its records then merge with
// kPreferExisting — signature presence and counter maxima still land, but
// stale operator knobs (disabled flag, depth) cannot roll the newer
// snapshot back. Stops at the first torn/corrupt record — everything after
// a tear is unrecoverable because record boundaries are lost.
void ReplayJournal(std::string_view bytes, HistoryImage* image, LoadResult* result,
                   std::uint32_t current_snapshot_crc = 0);

// --- Legacy v1 text --------------------------------------------------------

// True if `bytes` starts with the v1 text header.
bool LooksLikeTextV1(std::string_view bytes);

void ParseTextV1(std::string_view text, HistoryImage* image, LoadResult* result);

}  // namespace persist
}  // namespace dimmunix

#endif  // DIMMUNIX_PERSIST_FORMAT_H_
