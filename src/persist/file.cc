// Copyright (c) dimmunix-cpp authors. MIT license.

#include "src/persist/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/logging.h"

namespace dimmunix {
namespace persist {
namespace {

// Distinguishes concurrent savers within one process (two Runtimes sharing a
// history path in tests); the pid distinguishes processes.
std::atomic<std::uint64_t> g_tmp_seq{0};

bool ReadWholeFile(const std::string& path, std::string* out, bool* missing) {
  *missing = false;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *missing = (errno == ENOENT);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return false;
  }
  *out = buf.str();
  return true;
}

bool WriteAllFd(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool SetError(std::string* error, std::string message) {
  if (error != nullptr) {
    *error = std::move(message);
  }
  return false;
}

}  // namespace

std::string JournalPathFor(const std::string& history_path) { return history_path + ".journal"; }

std::string LockPathFor(const std::string& history_path) { return history_path + ".lock"; }

LoadResult LoadHistoryFile(const std::string& path, HistoryImage* image,
                           const LoadOptions& options) {
  LoadResult result;
  FileLock lock(LockPathFor(path));
  if (options.take_lock) {
    lock.Acquire();  // degraded (lockless) on failure; load still proceeds
  }

  std::string bytes;
  bool missing = false;
  const bool snapshot_read = ReadWholeFile(path, &bytes, &missing);
  if (!snapshot_read && !missing) {
    result.status = LoadStatus::kIoError;
    result.message = "cannot read " + path;
    return result;
  }
  const std::uint32_t snapshot_crc = snapshot_read ? Crc32(bytes.data(), bytes.size()) : 0;

  if (snapshot_read) {
    if (bytes.substr(0, 4) == kSnapshotMagic) {
      DecodeSnapshotV2(bytes, image, &result);
    } else if (LooksLikeTextV1(bytes)) {
      ParseTextV1(bytes, image, &result);
    } else {
      result.status = LoadStatus::kCorrupt;
      result.message = "unrecognized history format";
    }
  } else {
    result.status = LoadStatus::kNotFound;
  }

  if (options.with_journal && result.status != LoadStatus::kIoError) {
    std::string jbytes;
    bool jmissing = false;
    if (ReadWholeFile(JournalPathFor(path), &jbytes, &jmissing)) {
      // A journal can outlive a corrupt/missing snapshot (e.g. the process
      // died before its first compaction); its records are still good. A
      // corrupt snapshot still counts as loss so validate rejects the file.
      if (result.status == LoadStatus::kCorrupt) {
        ++result.records_dropped;
      }
      if (result.status == LoadStatus::kCorrupt || result.status == LoadStatus::kNotFound) {
        result.status = LoadStatus::kOk;
        if (result.format_version == 0) {
          result.format_version = 2;
        }
      }
      ReplayJournal(jbytes, image, &result, snapshot_crc);
    }
  }
  return result;
}

bool SaveHistoryFile(const std::string& path, const HistoryImage& image, std::string* error,
                     const SaveOptions& options) {
  FileLock lock(LockPathFor(path));
  if (options.take_lock) {
    lock.Acquire();
  }
  const std::string encoded = EncodeSnapshotV2(image);
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(g_tmp_seq.fetch_add(1, std::memory_order_relaxed));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return SetError(error, "cannot create " + tmp + ": " + std::strerror(errno));
  }
  const bool wrote = WriteAllFd(fd, encoded);
  // fsync before rename: the rename must never land pointing at data the
  // kernel has not flushed, or a power cut yields a torn "atomic" snapshot.
  const bool synced = wrote && ::fsync(fd) == 0;
  ::close(fd);
  if (!wrote || !synced) {
    ::unlink(tmp.c_str());
    return SetError(error, "cannot write " + tmp + ": " + std::strerror(errno));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string reason = std::strerror(errno);
    ::unlink(tmp.c_str());
    return SetError(error, "rename to " + path + " failed: " + reason);
  }
  // The snapshot now supersedes every journal record. Crash between rename
  // and unlink is benign: replaying a stale journal re-applies records that
  // are duplicates (or older counters, which max() ignores).
  ::unlink(JournalPathFor(path).c_str());
  return true;
}

bool AppendJournalRecord(const std::string& history_path, const SignatureRecord& record,
                         bool fsync_after, FileLock* held_lock) {
  FileLock own_lock(LockPathFor(history_path));
  if (held_lock == nullptr) {
    own_lock.Acquire();
  }
  const std::string journal = JournalPathFor(history_path);
  const int fd = ::open(journal.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    DIMMUNIX_LOG(kError) << "persist: cannot open journal " << journal << ": "
                         << std::strerror(errno);
    return false;
  }
  struct stat st {};
  std::string data;
  if (::fstat(fd, &st) == 0 && st.st_size == 0) {
    // A new journal binds itself to the snapshot it extends (its CRC; 0 if
    // none), so loads can tell a live journal from one orphaned by the
    // rename-then-unlink crash window. Header + first record go out in one
    // write: a crash never leaves a journal whose header is torn.
    std::string snapshot_bytes;
    bool snapshot_missing = false;
    std::uint32_t snapshot_crc = 0;
    if (ReadWholeFile(history_path, &snapshot_bytes, &snapshot_missing)) {
      snapshot_crc = Crc32(snapshot_bytes.data(), snapshot_bytes.size());
    }
    data = EncodeJournalHeader(snapshot_crc);
  }
  data += EncodeJournalRecord(record);
  const bool ok = WriteAllFd(fd, data);
  if (ok && fsync_after) {
    ::fsync(fd);
  }
  ::close(fd);
  if (!ok) {
    DIMMUNIX_LOG(kError) << "persist: journal append to " << journal << " failed: "
                         << std::strerror(errno);
  }
  return ok;
}

bool MergeIntoFile(const std::string& path, const HistoryImage& image, MergeStats* stats,
                   std::string* error) {
  FileLock lock(LockPathFor(path));
  lock.Acquire();
  HistoryImage on_disk;
  const LoadResult load =
      LoadHistoryFile(path, &on_disk, LoadOptions{/*with_journal=*/true, /*take_lock=*/false});
  if (!load.ok()) {
    return SetError(error, load.message.empty() ? ("cannot load " + path) : load.message);
  }
  const MergeStats merged = MergeInto(&on_disk, image, MergePolicy::kPreferIncoming);
  if (stats != nullptr) {
    *stats = merged;
  }
  return SaveHistoryFile(path, on_disk, error, SaveOptions{/*take_lock=*/false});
}

void RemoveHistoryFiles(const std::string& path) {
  ::unlink(path.c_str());
  ::unlink(JournalPathFor(path).c_str());
  ::unlink(LockPathFor(path).c_str());
}

LoadResult ValidateHistoryFile(const std::string& path) {
  HistoryImage image;
  LoadResult result = LoadHistoryFile(path, &image);
  if (result.ok() && result.records_dropped > 0) {
    result.status = LoadStatus::kCorrupt;
    if (result.message.empty()) {
      result.message = "records dropped";
    }
  }
  return result;
}

}  // namespace persist
}  // namespace dimmunix
