// Copyright (c) dimmunix-cpp authors. MIT license.
//
// FileLock — a blocking, exclusive fcntl(2) advisory lock on a sidecar file
// (<history>.lock). This is the cross-process half of the persistence
// protocol: every writer (journal append, compaction, history_tool) takes
// it around load-merge-save, so N instrumented processes sharing one
// DIMMUNIX_HISTORY never lose each other's signatures. The lock dies with
// the process, so a SIGKILLed holder can never wedge the fleet.
//
// Classic POSIX fcntl record locks do not conflict within one process, and
// closing *any* descriptor of a locked file drops all of the process's
// locks on it — both would break two Runtimes sharing one history path in
// one process. FileLock therefore uses open-file-description locks
// (F_OFD_SETLKW) where available: the lock is scoped to this object's fd,
// so FileLocks exclude each other even in-process and a Release() only ever
// releases its own lock. On platforms without OFD locks it degrades to
// F_SETLKW (cross-process exclusion only; HistoryStore's own threads are
// serialized by its mutex regardless).

#ifndef DIMMUNIX_PERSIST_LOCKFILE_H_
#define DIMMUNIX_PERSIST_LOCKFILE_H_

#include <string>

namespace dimmunix {
namespace persist {

class FileLock {
 public:
  explicit FileLock(std::string path);
  ~FileLock();  // releases if held

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  // Opens (creating if needed) and takes the exclusive lock, blocking until
  // granted. Returns false if the lock file cannot be opened — callers
  // degrade to lockless operation rather than losing the save.
  bool Acquire();

  void Release();

  bool held() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

 private:
  const std::string path_;
  int fd_ = -1;
};

}  // namespace persist
}  // namespace dimmunix

#endif  // DIMMUNIX_PERSIST_LOCKFILE_H_
